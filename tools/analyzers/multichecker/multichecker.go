// Package multichecker drives a set of analysis.Analyzers in the two
// modes cmd/nettrailsvet runs in:
//
//   - as a vettool: `go vet -vettool=$(nettrailsvet) ./...` invokes the
//     binary once per package with a vet.cfg describing source files
//     and export data (the same unitchecker protocol x/tools speaks),
//     after a `-V=full` handshake that lets cmd/go cache results;
//   - standalone: `nettrailsvet ./...` loads packages itself through
//     `go list -export`, which is how the self-hosting test sweeps the
//     repo inside `go test`.
//
// Diagnostics print as file:line:col: analyzer: message. Exit status 2
// means findings, matching go vet; 1 means the tool itself failed.
package multichecker

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"sort"

	"repro/tools/analyzers/analysis"
	"repro/tools/analyzers/load"
)

// vetConfig mirrors cmd/go's vet.cfg JSON (the fields this driver
// consumes).
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// Main runs the analyzers per the command line and exits.
func Main(name string, analyzers ...*analysis.Analyzer) {
	versionFlag := flag.String("V", "", "print version and exit (cmd/go handshake)")
	flagsFlag := flag.Bool("flags", false, "print the tool's flag schema as JSON and exit (cmd/go handshake)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [package pattern ...]\n", name)
		fmt.Fprintf(os.Stderr, "   or: go vet -vettool=$(command -v %s) [package pattern ...]\n\n", name)
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "%s: %s\n\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *versionFlag != "" {
		// cmd/go wants `<name> version <non-devel-token>`; hashing the
		// executable makes the version honest across rebuilds, so vet
		// result caching invalidates exactly when the tool changes.
		printVersion(name)
		return
	}
	if *flagsFlag {
		// cmd/go asks which flags the tool accepts so it can validate
		// the vet command line. This driver exposes none: every
		// analyzer always runs.
		fmt.Println("[]")
		return
	}

	args := flag.Args()
	if len(args) == 1 && len(args[0]) > 4 && args[0][len(args[0])-4:] == ".cfg" {
		os.Exit(runVetCfg(args[0], analyzers))
	}
	if len(args) == 0 {
		flag.Usage()
		os.Exit(1)
	}
	os.Exit(runStandalone(args, analyzers))
}

func printVersion(name string) {
	version := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			_, _ = io.Copy(h, f)
			f.Close()
			version = fmt.Sprintf("repro-%x", h.Sum(nil)[:12])
		}
	}
	fmt.Printf("%s version %s\n", name, version)
}

// runVetCfg analyzes the single package a vet.cfg describes.
func runVetCfg(cfgFile string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// The driver keeps no cross-package facts, but cmd/go expects the
	// output file to exist after every run.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	fset := token.NewFileSet()
	imp := load.NewImporter(fset, cfg.PackageFile, cfg.ImportMap)
	pkg, err := load.Check(cfg.ImportPath, fset, cfg.GoFiles, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "%s: %v\n", cfg.ImportPath, err)
		return 1
	}
	diags := RunAnalyzers(pkg, analyzers)
	printDiags(fset, diags)
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// runStandalone loads the patterns itself and analyzes every matched
// package.
func runStandalone(patterns []string, analyzers []*analysis.Analyzer) int {
	pkgs, err := load.Packages(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	exit := 0
	for _, pkg := range pkgs {
		diags := RunAnalyzers(pkg, analyzers)
		printDiags(pkg.Fset, diags)
		if len(diags) > 0 {
			exit = 2
		}
	}
	return exit
}

// Diagnostic pairs a finding with the analyzer that produced it.
type Diagnostic struct {
	Analyzer string
	analysis.Diagnostic
}

// RunAnalyzers applies every analyzer to one package, drops
// //lint:allow-suppressed findings, and returns the rest sorted by
// position. Exported for the self-hosting test.
func RunAnalyzers(pkg *load.Package, analyzers []*analysis.Analyzer) []Diagnostic {
	supp := analysis.NewSuppressions(pkg.Fset, pkg.Syntax)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			if supp.Allowed(name, d.Pos) {
				return
			}
			diags = append(diags, Diagnostic{Analyzer: name, Diagnostic: d})
		}
		if _, err := a.Run(pass); err != nil {
			diags = append(diags, Diagnostic{
				Analyzer:   a.Name,
				Diagnostic: analysis.Diagnostic{Message: fmt.Sprintf("analyzer failed: %v", err)},
			})
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(diags[i].Pos), pkg.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return diags
}

func printDiags(fset *token.FileSet, diags []Diagnostic) {
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
}
