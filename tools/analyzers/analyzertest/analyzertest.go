// Package analyzertest runs one analyzer over a fixture package and
// checks its diagnostics against `// want` annotations, in the style
// of golang.org/x/tools/go/analysis/analysistest:
//
//	for k := range m { sink = append(sink, k) } // want `unsorted map range`
//
// Each `// want` comment carries one or more quoted (double- or
// back-quoted) regular expressions; every diagnostic the analyzer
// emits on that line must match one of them, and every annotation must
// be matched by a diagnostic. Fixture packages live under
// testdata/src/<name>/ and are type-checked with a caller-chosen
// import path, so scope-limited analyzers can be pointed at fixtures
// as if they lived inside the package trees they police.
package analyzertest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/tools/analyzers/analysis"
	"repro/tools/analyzers/load"
	"repro/tools/analyzers/multichecker"
)

// want is one expected-diagnostic annotation.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run type-checks the fixture package in dir as importPath and applies
// the analyzer, failing t on any mismatch between diagnostics and
// `// want` annotations.
func Run(t *testing.T, dir, importPath string, a *analysis.Analyzer) {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no fixture files in %s (%v)", dir, err)
	}
	sort.Strings(files)

	fset := token.NewFileSet()
	imports, err := load.ImportsOf(fset, files)
	if err != nil {
		t.Fatalf("parsing fixture imports: %v", err)
	}
	root, err := load.ModuleRoot(".")
	if err != nil {
		t.Fatalf("finding module root: %v", err)
	}
	exports, err := load.Exports(root, imports...)
	if err != nil {
		t.Fatalf("resolving fixture imports: %v", err)
	}
	pkg, err := load.Check(importPath, fset, files, load.NewImporter(fset, exports, nil))
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}

	wants := parseWants(t, pkg)
	diags := multichecker.RunAnalyzers(pkg, []*analysis.Analyzer{a})

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if !claim(wants, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// claim marks the first unmatched want on (file, line) whose regexp
// matches msg.
func claim(wants []*want, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// parseWants extracts every `// want` annotation from the fixture.
func parseWants(t *testing.T, pkg *load.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, "want "))
				for rest != "" {
					var lit string
					var err error
					switch rest[0] {
					case '"':
						end := strings.Index(rest[1:], `"`)
						if end < 0 {
							t.Fatalf("%s: unterminated want string", pos)
						}
						lit, err = strconv.Unquote(rest[:end+2])
						rest = strings.TrimSpace(rest[end+2:])
					case '`':
						end := strings.Index(rest[1:], "`")
						if end < 0 {
							t.Fatalf("%s: unterminated want string", pos)
						}
						lit = rest[1 : end+1]
						rest = strings.TrimSpace(rest[end+2:])
					default:
						t.Fatalf("%s: malformed want annotation %q", pos, text)
					}
					if err != nil {
						t.Fatalf("%s: bad want string: %v", pos, err)
					}
					re, err := regexp.Compile(lit)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, lit, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: lit})
				}
			}
		}
	}
	return wants
}
