// Package walltime flags wall-clock and ambient-randomness reads in
// the deterministic simulation core. Inside
// internal/{simnet,engine,eval,rel,provenance,provstore,nettransport}
// the only clock is the virtual instant (simnet.Time) and the only randomness is a seeded
// *rand.Rand owned by the scenario: a stray time.Now or global
// rand.Intn makes two runs of the same trace diverge, which breaks the
// byte-parity guarantee every provenance digest rests on.
//
// Seeded construction (rand.New, rand.NewSource and the v2
// equivalents) stays legal — determinism comes from owning the seed,
// not from avoiding the package.
package walltime

import (
	"go/ast"
	"go/types"

	"repro/tools/analyzers/analysis"
)

// Analyzer is the walltime check.
var Analyzer = &analysis.Analyzer{
	Name: "walltime",
	Doc: "forbid wall-clock time and ambient randomness in the deterministic simulation core " +
		"(virtual instants are the only clock; randomness must come from a scenario-seeded *rand.Rand)",
	Run: run,
}

// scope is the deterministic core: packages whose behavior must be a
// pure function of (program, trace, seed).
var scope = []string{
	"repro/internal/simnet",
	"repro/internal/engine",
	"repro/internal/eval",
	"repro/internal/rel",
	"repro/internal/provenance",
	// The snapshot store persists the deterministic core's output:
	// every timestamp it writes must be a virtual instant carried in
	// the publish metadata (VersionInput.Time), never the wall clock —
	// otherwise two runs of the same trace produce different bytes on
	// disk and the byte-parity acceptance checks break.
	"repro/internal/provstore",
	// The TCP transport carries the epoch protocol between real
	// processes. Its data plane (framing, exchange ordering, dedup)
	// must stay deterministic; only the loss-recovery edges — dial
	// backoff and retransmit timeouts — may touch the wall clock, and
	// each such site carries a //lint:allow walltime justification.
	"repro/internal/nettransport",
}

// forbiddenTime is every package-level reader of the wall clock or
// wall-clock-driven scheduler in package time.
var forbiddenTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"AfterFunc": true, "Tick": true, "NewTimer": true,
	"NewTicker": true, "Sleep": true,
}

// allowedRand is the deterministic, explicitly-seeded subset of
// math/rand and math/rand/v2.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true,
	"NewChaCha8": true, "NewZipf": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !analysis.InScope(pass.Pkg.Path(), scope...) {
		return nil, nil
	}
	for _, f := range pass.NonTestFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, isSel := n.(*ast.SelectorExpr)
			if !isSel {
				return true
			}
			pkgPath, name, ok := pass.PkgFunc(sel)
			if !ok {
				return true
			}
			// Type references (*rand.Rand fields, rand.Source params)
			// are fine — only calling into the packages is the hazard.
			if _, isType := pass.TypesInfo.Uses[sel.Sel].(*types.TypeName); isType {
				return true
			}
			switch pkgPath {
			case "time":
				if forbiddenTime[name] {
					pass.Reportf(n.Pos(),
						"wall-clock time.%s in the deterministic core: virtual instants (simnet.Time) are the only clock here", name)
				}
			case "math/rand", "math/rand/v2":
				if !allowedRand[name] {
					pass.Reportf(n.Pos(),
						"ambient randomness rand.%s in the deterministic core: draw from a scenario-seeded *rand.Rand instead", name)
				}
			}
			return true
		})
	}
	return nil, nil
}
