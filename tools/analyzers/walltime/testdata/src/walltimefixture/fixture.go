// Package walltimefixture exercises the walltime analyzer: the
// deterministic core may only read virtual clocks and draw from
// scenario-seeded randomness. The test harness type-checks this
// package as repro/internal/simnet/walltimefixture so the scope gate
// admits it.
package walltimefixture

import (
	"math/rand"
	"time"
)

// sim owns its randomness. The *rand.Rand type reference and the
// seeded constructors are legal: determinism comes from owning the
// seed, not from avoiding the package.
type sim struct {
	rng *rand.Rand
}

func newSim(seed int64) *sim {
	return &sim{rng: rand.New(rand.NewSource(seed))}
}

func (s *sim) draw() int {
	return s.rng.Intn(10)
}

func wallClock() time.Duration {
	start := time.Now()          // want `wall-clock time\.Now in the deterministic core`
	time.Sleep(time.Millisecond) // want `wall-clock time\.Sleep in the deterministic core`
	return time.Since(start)     // want `wall-clock time\.Since in the deterministic core`
}

func ambient() int {
	return rand.Intn(10) // want `ambient randomness rand\.Intn in the deterministic core`
}

func suppressed() time.Time {
	//lint:allow walltime fixture proves justified suppressions are honored
	return time.Now()
}
