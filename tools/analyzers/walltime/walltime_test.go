package walltime_test

import (
	"testing"

	"repro/tools/analyzers/analyzertest"
	"repro/tools/analyzers/walltime"
)

// The fixture is type-checked as a package inside the deterministic
// core so the scope gate admits it; the same files analyzed under an
// out-of-scope path must produce nothing.
func TestWalltime(t *testing.T) {
	analyzertest.Run(t, "testdata/src/walltimefixture",
		"repro/internal/simnet/walltimefixture", walltime.Analyzer)
}

// TestWalltimeProvstoreScope proves the on-disk snapshot store is part
// of the deterministic core: the identical fixture analyzed under a
// provstore path must produce the same findings, so store timestamps
// can only come from the virtual clock carried in publish metadata
// (provstore.VersionInput.Time), never time.Now.
func TestWalltimeProvstoreScope(t *testing.T) {
	analyzertest.Run(t, "testdata/src/walltimefixture",
		"repro/internal/provstore/walltimefixture", walltime.Analyzer)
}
