package ctxflow_test

import (
	"testing"

	"repro/tools/analyzers/analyzertest"
	"repro/tools/analyzers/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analyzertest.Run(t, "testdata/src/ctxfixture",
		"repro/internal/server/ctxfixture", ctxflow.Analyzer)
}
