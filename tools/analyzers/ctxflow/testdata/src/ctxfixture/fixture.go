// Package ctxfixture exercises the ctxflow analyzer: fresh root
// contexts mid-chain and dropped ctx parameters are flagged; threading
// the caller's ctx, discarding it explicitly with _, and justified
// compatibility wrappers are legal. The test harness type-checks this
// package as repro/internal/server/ctxfixture so the scope gate
// admits it.
package ctxfixture

import "context"

type result struct{}

// query threads the caller's ctx: the chain stays unbroken.
func query(ctx context.Context) (*result, error) {
	return queryContext(ctx)
}

func queryContext(ctx context.Context) (*result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &result{}, nil
}

func detached() (*result, error) {
	return queryContext(context.Background()) // want `context\.Background starts a fresh root mid-chain`
}

func parked() (*result, error) {
	return queryContext(context.TODO()) // want `context\.TODO starts a fresh root mid-chain`
}

func dropped(ctx context.Context, n int) int { // want `context parameter ctx is dropped`
	return n * 2
}

// blank discards the context explicitly: the signature makes no
// promise, so nothing is flagged.
func blank(_ context.Context, n int) int {
	return n * 2
}

var litHandler = func(ctx context.Context) *result { // want `context parameter ctx is dropped`
	return &result{}
}

func compat() (*result, error) {
	//lint:allow ctxflow context-free compatibility entry point exercised by the suppression test
	return queryContext(context.Background())
}
