// Package ctxflow keeps the cancellation chain of the serving stack
// unbroken. PR 4 threaded context cancellation from the HTTP client
// through the gateway fan-out, the walk core's continuations, and the
// SDK: a client disconnect or ?timeout= deadline aborts the traversal
// everywhere. That chain has two statically-detectable failure modes:
//
//   - minting a fresh root context (context.Background / context.TODO)
//     mid-chain, which detaches everything downstream from the caller's
//     cancellation; and
//   - accepting a ctx parameter and never using it, which silently
//     drops the chain on the floor while the signature still promises
//     cancellation.
//
// Compatibility wrappers that deliberately start a fresh root (the
// context-free Query entry points) carry //lint:allow ctxflow
// justifications.
//
// The TCP cluster transport (internal/nettransport) is in scope too:
// Dial's caller owns the lifetime of every dial retry and blocked
// exchange, so the transport must thread the caller's ctx rather than
// minting its own root.
package ctxflow

import (
	"go/ast"
	"go/types"

	"repro/tools/analyzers/analysis"
)

// Analyzer is the ctxflow check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "forbid fresh root contexts and dropped ctx parameters in the serving stack " +
		"(server handlers, gateway fan-out, walk continuations, SDK calls), where the " +
		"client-disconnect cancellation chain must stay unbroken",
	Run: run,
}

// scope covers every tier the cancellation chain crosses.
var scope = []string{
	"repro/internal/server",
	"repro/internal/gateway",
	"repro/internal/provgraph",
	"repro/internal/provquery",
	"repro/internal/nettransport",
	"repro/client",
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !analysis.InScope(pass.Pkg.Path(), scope...) {
		return nil, nil
	}
	files := pass.NonTestFiles()

	// used collects every object the package references, so dropped
	// parameters are those whose object never appears.
	used := map[types.Object]bool{}
	for _, obj := range pass.TypesInfo.Uses {
		used[obj] = true
	}

	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if pkgPath, name, ok := pass.PkgFunc(n); ok && pkgPath == "context" &&
					(name == "Background" || name == "TODO") {
					pass.Reportf(n.Pos(),
						"context.%s starts a fresh root mid-chain: thread the caller's ctx instead so client disconnects still cancel the walk", name)
				}
			case *ast.FuncDecl:
				if n.Body != nil {
					checkParams(pass, n.Type, used)
				}
			case *ast.FuncLit:
				checkParams(pass, n.Type, used)
			}
			return true
		})
	}
	return nil, nil
}

// checkParams flags named context.Context parameters the function body
// never reads.
func checkParams(pass *analysis.Pass, ft *ast.FuncType, used map[types.Object]bool) {
	if ft.Params == nil {
		return
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := pass.TypesInfo.Defs[name]
			if obj == nil || !isContext(obj.Type()) {
				continue
			}
			if !used[obj] {
				pass.Reportf(name.Pos(),
					"context parameter %s is dropped: the cancellation chain ends here while the signature promises it continues", name.Name)
			}
		}
	}
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	n := analysis.NamedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
