// Package load type-checks packages for the nettrailsvet analyzers
// using only the standard library. Import resolution reads gc export
// data: either files named by a `go vet` vet.cfg (PackageFile) or the
// build-cache files reported by `go list -export` (standalone and test
// drivers). Only the package under analysis is parsed from source;
// every dependency comes from export data, which is what keeps a
// whole-module sweep fast.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	Path    string
	Dir     string
	GoFiles []string
	Fset    *token.FileSet
	Syntax  []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Importer resolves import paths to *types.Package through gc export
// data files on disk.
type Importer struct {
	// Exports maps canonical package path -> export data file.
	Exports map[string]string
	// ImportMap maps import path as written in source -> canonical
	// package path (vet.cfg semantics; may be nil).
	ImportMap map[string]string

	imp types.Importer
}

// NewImporter builds an importer over the export file map.
func NewImporter(fset *token.FileSet, exports, importMap map[string]string) *Importer {
	im := &Importer{Exports: exports, ImportMap: importMap}
	im.imp = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := im.Exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return im
}

// Import implements types.Importer.
func (im *Importer) Import(path string) (*types.Package, error) {
	if canon, ok := im.ImportMap[path]; ok {
		path = canon
	}
	return im.imp.Import(path)
}

// Check parses the named files and type-checks them as one package
// with the given canonical import path.
func Check(path string, fset *token.FileSet, files []string, imp types.Importer) (*Package, error) {
	pkg := &Package{Path: path, GoFiles: files, Fset: fset}
	if len(files) > 0 {
		pkg.Dir = filepath.Dir(files[0])
	}
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Syntax = append(pkg.Syntax, f)
	}
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, pkg.Syntax, pkg.Info)
	if err != nil {
		return nil, err
	}
	pkg.Types = tpkg
	return pkg, nil
}

// ---- go list loading ---------------------------------------------------

// listPackage is the subset of `go list -json` output the loader uses.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	GoFiles    []string
	DepOnly    bool
	Incomplete bool
}

// goList runs `go list -export -deps -json` in dir over the patterns
// and returns every package in the dependency closure.
func goList(dir string, patterns []string) ([]listPackage, error) {
	args := []string{"list", "-export", "-deps", "-json=ImportPath,Dir,Export,Standard,GoFiles,DepOnly,Incomplete"}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Packages loads, parses, and type-checks every package matching the
// patterns (resolved relative to dir, a directory inside the module).
// Dependencies are consumed as export data only.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := NewImporter(fset, exports, nil)
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Incomplete {
			continue
		}
		files := make([]string, 0, len(p.GoFiles))
		for _, f := range p.GoFiles {
			files = append(files, filepath.Join(p.Dir, f))
		}
		if len(files) == 0 {
			continue
		}
		pkg, err := Check(p.ImportPath, fset, files, imp)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", p.ImportPath, err)
		}
		pkg.Dir = p.Dir
		out = append(out, pkg)
	}
	return out, nil
}

// Exports resolves export data files for the given packages (and their
// dependency closures) without type-checking anything — the raw
// material for a custom Check call, used by the analyzertest harness
// to resolve a fixture's imports.
func Exports(dir string, pkgs ...string) (map[string]string, error) {
	if len(pkgs) == 0 {
		return map[string]string{}, nil
	}
	listed, err := goList(dir, pkgs)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// ModuleRoot walks upward from dir to the directory holding go.mod.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// ImportsOf parses just the import clauses of the given files.
func ImportsOf(fset *token.FileSet, files []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if !seen[path] {
				seen[path] = true
				out = append(out, path)
			}
		}
	}
	return out, nil
}
