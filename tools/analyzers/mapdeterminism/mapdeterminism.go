// Package mapdeterminism flags map iteration whose order can leak into
// externally-visible bytes. Go randomizes map iteration order on
// purpose; inside the deterministic core
// (internal/{engine,eval,rel,provenance,provgraph,simnet,server,gateway})
// every wire message, digest, JSON body, and version sequence must be a
// pure function of the snapshot — an unsorted `range` over a map that
// appends to a slice, writes to a stream/hash, or sends on a channel is
// the single most likely way to break the byte-parity guarantees
// (parallel == serial, sharded == single-process).
//
// Order-insensitive uses stay legal: building another map (JSON
// encoding sorts map keys), counting, or the canonical
// collect-then-sort idiom —
//
//	keys := make([]string, 0, len(m))
//	for k := range m { keys = append(keys, k) }
//	sort.Strings(keys)
//
// is recognized when the appended-to slice is passed to a sort/slices
// call after the loop in the same statement sequence.
package mapdeterminism

import (
	"go/ast"
	"go/types"

	"repro/tools/analyzers/analysis"
)

// Analyzer is the mapdeterminism check.
var Analyzer = &analysis.Analyzer{
	Name: "mapdeterminism",
	Doc: "forbid map-iteration order from reaching ordered sinks (slice appends without a " +
		"subsequent sort, stream/hash writes, channel sends) in the deterministic core, " +
		"where every output must be byte-identical across runs",
	Run: run,
}

var scope = []string{
	"repro/internal/engine",
	"repro/internal/eval",
	"repro/internal/rel",
	"repro/internal/provenance",
	"repro/internal/provgraph",
	"repro/internal/simnet",
	"repro/internal/server",
	"repro/internal/gateway",
}

// writeMethods are stream-sink method names: writing inside a map
// range emits bytes in iteration order, which no later sort can fix.
var writeMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "Fprint": true, "Fprintf": true, "Fprintln": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !analysis.InScope(pass.Pkg.Path(), scope...) {
		return nil, nil
	}
	for _, f := range pass.NonTestFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkFunc(pass, body)
			}
			return true
		})
	}
	return nil, nil
}

// checkFunc examines every map range statement in one function body.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		// Function literals are separate functions; the top-level walk
		// in run visits them on their own.
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if isMapRange(pass, rng) {
			checkMapRange(pass, body, rng)
		}
		return true
	})
}

// checkMapRange inspects one `range <map>` body for ordered sinks.
func checkMapRange(pass *analysis.Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt) {
	mapText := types.ExprString(rng.X)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(),
				"send inside range over map %s delivers values in random iteration order; iterate sorted keys instead", mapText)
		case *ast.CallExpr:
			checkStreamWrite(pass, n, mapText)
		case *ast.AssignStmt:
			checkAppend(pass, funcBody, rng, n, mapText)
		case *ast.RangeStmt:
			// A nested map range is flagged on its own (by checkFunc);
			// skip its body here so each sink is attributed to the
			// innermost map whose order it captures. Nested slice
			// ranges are still scanned: their sinks inherit this map's
			// order.
			if n != rng && isMapRange(pass, n) {
				return false
			}
		}
		return true
	})
}

// isMapRange reports whether rng iterates a map.
func isMapRange(pass *analysis.Pass, rng *ast.RangeStmt) bool {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkStreamWrite flags byte-emitting calls inside the loop body.
func checkStreamWrite(pass *analysis.Pass, call *ast.CallExpr, mapText string) {
	// Package-level printers: fmt.Fprint*, io.WriteString.
	if pkgPath, name, ok := pass.PkgFunc(call.Fun); ok {
		if (pkgPath == "fmt" && (name == "Fprint" || name == "Fprintf" || name == "Fprintln")) ||
			(pkgPath == "io" && name == "WriteString") {
			pass.Reportf(call.Pos(),
				"%s.%s inside range over map %s emits bytes in random iteration order; sort the keys first", pkgPath, name, mapText)
		}
		return
	}
	// Writer/hash/builder methods.
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !writeMethods[sel.Sel.Name] {
		return
	}
	// Only methods (not conversions or field calls) with a receiver
	// that looks like a byte sink: io.Writer-implementing or hash.
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || tv.Type == nil {
		return
	}
	if !hasMethod(tv.Type, "Write") && !hasMethod(tv.Type, "WriteString") {
		return
	}
	pass.Reportf(call.Pos(),
		"%s.%s inside range over map %s emits bytes in random iteration order; sort the keys first",
		types.ExprString(sel.X), sel.Sel.Name, mapText)
}

func hasMethod(t types.Type, name string) bool {
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	if _, ok := t.Underlying().(*types.Pointer); !ok {
		return hasPtrMethod(t, name)
	}
	return false
}

func hasPtrMethod(t types.Type, name string) bool {
	ms := types.NewMethodSet(types.NewPointer(t))
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	return false
}

// checkAppend flags `dst = append(dst, ...)` inside the loop when dst
// outlives the loop and is not sorted afterwards.
func checkAppend(pass *analysis.Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt, as *ast.AssignStmt, mapText string) {
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "append" || len(call.Args) == 0 || i >= len(as.Lhs) {
			continue
		}
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
			continue
		}
		dst := as.Lhs[i]
		dstText := types.ExprString(dst)
		// Appending to a loop-local accumulator orders only data from a
		// single iteration — harmless.
		if declaredWithin(pass, dst, rng) {
			continue
		}
		if sortedAfter(pass, funcBody, rng, dstText) {
			continue
		}
		pass.Reportf(as.Pos(),
			"append to %s inside range over map %s captures random iteration order and %s is never sorted afterwards; sort the keys (or the result) before it reaches wire/digest/JSON output",
			dstText, mapText, dstText)
	}
}

// declaredWithin reports whether the root identifier of expr is
// declared inside the range statement.
func declaredWithin(pass *analysis.Pass, expr ast.Expr, rng *ast.RangeStmt) bool {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[e]
			if obj == nil {
				obj = pass.TypesInfo.Defs[e]
			}
			return obj != nil && analysis.Within(obj.Pos(), rng)
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return false
		}
	}
}

// sortedAfter reports whether, somewhere after the range statement in
// the enclosing function body, dstText is passed to a sort.* or
// slices.Sort* call — the canonical collect-then-sort idiom.
func sortedAfter(pass *analysis.Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt, dstText string) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rng.End() {
			return true
		}
		pkgPath, name, ok := pass.PkgFunc(call.Fun)
		if !ok {
			return true
		}
		isSort := (pkgPath == "sort") || (pkgPath == "slices" && len(name) >= 4 && name[:4] == "Sort")
		if !isSort {
			return true
		}
		for _, arg := range call.Args {
			if exprContains(arg, dstText) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// exprContains reports whether arg is, or syntactically wraps, the
// expression printed as dstText (e.g. sort.Sort(byName(keys))).
func exprContains(arg ast.Expr, dstText string) bool {
	if types.ExprString(arg) == dstText {
		return true
	}
	found := false
	ast.Inspect(arg, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && types.ExprString(e) == dstText {
			found = true
			return false
		}
		return !found
	})
	return found
}
