package mapdeterminism_test

import (
	"testing"

	"repro/tools/analyzers/analyzertest"
	"repro/tools/analyzers/mapdeterminism"
)

func TestMapdeterminism(t *testing.T) {
	analyzertest.Run(t, "testdata/src/mdfixture",
		"repro/internal/eval/mdfixture", mapdeterminism.Analyzer)
}
