// Package mdfixture exercises the mapdeterminism analyzer: map
// iteration order reaching ordered sinks (appends without a later
// sort, stream writes, channel sends) is flagged; collect-then-sort,
// map-to-map copies, and loop-local accumulators are legal. The test
// harness type-checks this package as repro/internal/eval/mdfixture
// so the scope gate admits it.
package mdfixture

import (
	"bytes"
	"fmt"
	"io"
	"sort"
)

// keysUnsorted leaks iteration order into the returned slice.
func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to out inside range over map m captures random iteration order`
	}
	return out
}

// keysSorted is the canonical collect-then-sort idiom.
func keysSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// invert builds another map: order-insensitive (JSON encoding sorts
// map keys).
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// dump emits bytes in iteration order through every stream shape.
func dump(w io.Writer, m map[string]int) {
	var buf bytes.Buffer
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt\.Fprintf inside range over map m emits bytes`
		buf.WriteString(k)              // want `buf\.WriteString inside range over map m emits bytes`
		_, _ = io.WriteString(w, k)     // want `io\.WriteString inside range over map m emits bytes`
	}
}

// publish delivers keys on a channel in iteration order.
func publish(m map[string]int, ch chan<- string) {
	for k := range m {
		ch <- k // want `send inside range over map m delivers values in random iteration order`
	}
}

// perEntry appends only to a loop-local accumulator: one iteration's
// data has no cross-key order to leak.
func perEntry(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var acc []int
		acc = append(acc, vs...)
		total += len(acc)
	}
	return total
}

// flatten shows a nested slice range inheriting the outer map's order.
func flatten(m map[string][]string) []string {
	var out []string
	for _, vs := range m {
		for _, v := range vs {
			out = append(out, v) // want `append to out inside range over map m captures random iteration order`
		}
	}
	return out
}

// histogram feeds an order-insensitive sum; the suppression documents
// that and keeps the finding out of the report.
func histogram(m map[string]int) int {
	var counts []int
	for _, v := range m {
		//lint:allow mapdeterminism counts feed an order-insensitive sum in this fixture
		counts = append(counts, v)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	return total
}
