// Package frozenwrite enforces the copy-on-publish discipline
// statically. A published server.Snapshot, a provenance.View, and the
// other frozen view types are shared across goroutines with no locks —
// correctness rests on nothing ever mutating them after the freeze
// point. That discipline was convention only; this analyzer makes it
// checkable:
//
//   - a write through a value of a frozen type (field assignment, map
//     store, delete, copy into a field/element) is flagged…
//   - …unless the value is provably pre-publish: a local variable the
//     same function built from a composite literal (`snap :=
//     &Snapshot{…}; snap.Tables[a] = …` is the sanctioned builder
//     pattern — the value is not yet visible to anyone else).
//
// Frozen types are the registry below plus any same-package type whose
// doc comment carries a `nettrails:frozen` marker, so new frozen view
// types opt in with one doc line.
package frozenwrite

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/tools/analyzers/analysis"
)

// Analyzer is the frozenwrite check.
var Analyzer = &analysis.Analyzer{
	Name: "frozenwrite",
	Doc: "forbid mutation of published snapshot/view values (copy-on-publish discipline): " +
		"writes through frozen types are only legal on locals freshly built from composite " +
		"literals, i.e. before publish",
	Run: run,
}

var scope = []string{
	"repro/internal/server",
	"repro/internal/gateway",
	"repro/internal/provenance",
	"repro/internal/provquery",
	"repro/internal/logstore",
	"repro/internal/provgraph",
	"repro/internal/rel",
	"repro/internal/provstore",
}

// frozen is the cross-package registry of published-immutable types.
// Same-package types can opt in instead with a `nettrails:frozen` doc
// marker (which these carry too, as documentation).
var frozen = map[string]bool{
	"repro/internal/server.Snapshot": true,
	"repro/internal/server.ring":     true,
	"repro/internal/server.NodeInfo": true,
	"repro/internal/provenance.View": true,
	// The persistent sorted-table view: chunks are shared with the live
	// table and with other Frozen versions, so any write through a
	// Frozen corrupts every version sharing the chunk.
	"repro/internal/rel.Frozen": true,
	// The snapshot store's read path: a sealed segment's mmapped bytes
	// and its succinct trie index are shared by every concurrent reader
	// with no locks — immutable from seal to close.
	"repro/internal/provstore.Trie":          true,
	"repro/internal/provstore.sealedSegment": true,
	// logstore.Store is deliberately absent: it is a live collector
	// (Add mutates it during the run); only the FromSorted handoff
	// inside a published Snapshot is frozen, and that is enforced by
	// the length-capped reslice in the publisher.
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !analysis.InScope(pass.Pkg.Path(), scope...) {
		return nil, nil
	}
	files := pass.NonTestFiles()
	marked := markedTypes(pass, files)
	isFrozen := func(t types.Type) (string, bool) {
		n := analysis.NamedOf(t)
		if n == nil {
			return "", false
		}
		obj := n.Obj()
		if obj.Pkg() == nil {
			return "", false
		}
		full := obj.Pkg().Path() + "." + obj.Name()
		if frozen[full] || marked[obj] {
			return obj.Name(), true
		}
		return "", false
	}

	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkFunc(pass, body, isFrozen)
			}
			return true
		})
	}
	return nil, nil
}

// markedTypes collects same-package types whose declaration docs carry
// the nettrails:frozen marker.
func markedTypes(pass *analysis.Pass, files []*ast.File) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc.Text()
				if doc == "" {
					doc = gd.Doc.Text()
				}
				if strings.Contains(doc, "nettrails:frozen") {
					if obj := pass.TypesInfo.Defs[ts.Name]; obj != nil {
						out[obj] = true
					}
				}
			}
		}
	}
	return out
}

// checkFunc scans one function body for post-freeze writes.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt, isFrozen func(types.Type) (string, bool)) {
	fresh := freshLocals(pass, body, isFrozen)

	report := func(pos token.Pos, target ast.Expr, typeName string) {
		pass.Reportf(pos,
			"write to %s mutates frozen %s after the freeze point: snapshots are copy-on-publish — build a fresh value and swap it in (or //lint:allow frozenwrite <why> if provably pre-publish)",
			types.ExprString(target), typeName)
	}

	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit && n.Pos() != body.Pos() {
			// Function literals get their own checkFunc pass (with
			// their own fresh-local tracking) from run's walk.
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if name, root, ok := frozenTarget(pass, lhs, isFrozen); ok && !fresh[root] {
					report(n.Pos(), lhs, name)
				}
			}
		case *ast.IncDecStmt:
			if name, root, ok := frozenTarget(pass, n.X, isFrozen); ok && !fresh[root] {
				report(n.Pos(), n.X, name)
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && len(n.Args) > 0 {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin &&
					(id.Name == "delete" || id.Name == "copy" || id.Name == "clear") {
					if name, root, ok := frozenTarget(pass, n.Args[0], isFrozen); ok && !fresh[root] {
						report(n.Pos(), n.Args[0], name)
					}
				}
			}
		}
		return true
	})
}

// frozenTarget reports whether writing through expr mutates shared
// state reachable from a frozen type: some prefix of the
// selector/index chain has a frozen type, AND the chain reaches that
// state through a reference (pointer, map, or slice). A chain of plain
// value selectors rooted at a value-typed local (`ni := snap.Info[a];
// ni.Tuples = 7`) only writes the function's own copy and stays legal.
// It returns the frozen type's name and the chain's root object (nil
// when the root is not a simple identifier).
func frozenTarget(pass *analysis.Pass, expr ast.Expr, isFrozen func(types.Type) (string, bool)) (string, types.Object, bool) {
	var root types.Object
	var frozenName string
	found := false
	sawRef := false
	for e := expr; ; {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if name, ok := typeFrozen(pass, x.X, isFrozen); ok {
				frozenName, found = name, true
			}
			if isRefType(pass, x.X) {
				sawRef = true
			}
			e = x.X
			continue
		case *ast.IndexExpr:
			if name, ok := typeFrozen(pass, x.X, isFrozen); ok {
				frozenName, found = name, true
			}
			// Indexing a map or slice dereferences shared backing
			// storage (an array index on a value array does not).
			if tv, ok := pass.TypesInfo.Types[x.X]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Map, *types.Slice, *types.Pointer:
					sawRef = true
				}
			}
			e = x.X
			continue
		case *ast.StarExpr:
			if name, ok := typeFrozen(pass, x, isFrozen); ok {
				frozenName, found = name, true
			}
			sawRef = true
			e = x.X
			continue
		case *ast.ParenExpr:
			e = x.X
			continue
		case *ast.Ident:
			root = pass.TypesInfo.Uses[x]
			if root == nil {
				root = pass.TypesInfo.Defs[x]
			}
		}
		break
	}
	return frozenName, root, found && sawRef
}

// isRefType reports whether e's type is a pointer (selecting through
// it auto-dereferences into shared memory).
func isRefType(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isPtr := tv.Type.Underlying().(*types.Pointer)
	return isPtr
}

// typeFrozen resolves an expression's type against the frozen set.
func typeFrozen(pass *analysis.Pass, e ast.Expr, isFrozen func(types.Type) (string, bool)) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return "", false
	}
	return isFrozen(tv.Type)
}

// freshLocals collects local variables assigned from composite
// literals of frozen types anywhere in the body: the builder pattern.
// Writes through them are pre-publish by construction. (The builder
// publishes by handing the value off — after which the static name is
// normally never written again; if it is, that is exactly the bug this
// analyzer exists to catch, reported when the value escapes first.)
func freshLocals(pass *analysis.Pass, body *ast.BlockStmt, isFrozen func(types.Type) (string, bool)) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isCompositeOfFrozen(pass, rhs, isFrozen) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj != nil {
					fresh[obj] = true
				}
			}
		}
		return true
	})
	return fresh
}

// isCompositeOfFrozen matches `T{…}` and `&T{…}` for frozen T.
func isCompositeOfFrozen(pass *analysis.Pass, e ast.Expr, isFrozen func(types.Type) (string, bool)) bool {
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = u.X
	}
	cl, ok := e.(*ast.CompositeLit)
	if !ok {
		return false
	}
	_, frozen := typeFrozen(pass, cl, isFrozen)
	return frozen
}
