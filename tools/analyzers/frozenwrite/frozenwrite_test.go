package frozenwrite_test

import (
	"testing"

	"repro/tools/analyzers/analyzertest"
	"repro/tools/analyzers/frozenwrite"
)

func TestFrozenwrite(t *testing.T) {
	analyzertest.Run(t, "testdata/src/fwfixture",
		"repro/internal/server/fwfixture", frozenwrite.Analyzer)
}

// TestFrozenwriteRelFrozen type-checks a mirror of the persistent
// table view as repro/internal/rel itself, proving the cross-package
// registry entry flags post-publish writes to rel.Frozen without any
// doc marker on the type.
func TestFrozenwriteRelFrozen(t *testing.T) {
	analyzertest.Run(t, "testdata/src/relfixture",
		"repro/internal/rel", frozenwrite.Analyzer)
}

// TestFrozenwriteProvstore type-checks a mirror of the snapshot
// store's read-path types as repro/internal/provstore, proving the
// registry entries for the mmap-backed sealed segment and its succinct
// trie index flag post-seal writes without any doc marker.
func TestFrozenwriteProvstore(t *testing.T) {
	analyzertest.Run(t, "testdata/src/provstorefixture",
		"repro/internal/provstore", frozenwrite.Analyzer)
}
