package frozenwrite_test

import (
	"testing"

	"repro/tools/analyzers/analyzertest"
	"repro/tools/analyzers/frozenwrite"
)

func TestFrozenwrite(t *testing.T) {
	analyzertest.Run(t, "testdata/src/fwfixture",
		"repro/internal/server/fwfixture", frozenwrite.Analyzer)
}
