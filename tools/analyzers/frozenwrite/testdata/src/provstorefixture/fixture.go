// Package provstore mirrors the shape of the real
// repro/internal/provstore read-path types. The test type-checks this
// package as repro/internal/provstore itself, so the diagnostics below
// prove the cross-package registry entries
// ("repro/internal/provstore.Trie", ".sealedSegment") catch writes on
// their own — a sealed segment's mmapped bytes and its trie index are
// served to concurrent readers with no locks, so nothing may ever
// write through them after the seal.
package provstore

// bitvec stands in for the real rank/select bit vector.
type bitvec struct {
	bits []uint64
	n    int
}

// Trie is the registry-protected succinct index (no doc marker on
// purpose; see the package comment).
type Trie struct {
	labels   []byte
	hasChild *bitvec
	values   []uint64
}

// sealedSegment is the registry-protected mmap-backed segment.
type sealedSegment struct {
	name string
	last uint64
	data []byte
	trie *Trie
}

// buildTrie is the sanctioned builder: the local is fresh from a
// composite literal, so filling it before handoff is legal.
func buildTrie(keys [][]byte) *Trie {
	t := &Trie{hasChild: &bitvec{}}
	for _, k := range keys {
		t.labels = append(t.labels, k...)
		t.values = append(t.values, uint64(len(k)))
	}
	return t
}

// mutateSealed writes through values that arrived from outside: every
// shape must be flagged via the registry alone.
func mutateSealed(s *sealedSegment, t *Trie) {
	s.last = 9            // want `write to s\.last mutates frozen sealedSegment`
	s.data[0] = 0         // want `write to s\.data\[0\] mutates frozen sealedSegment`
	s.trie.values[0] = 1  // want `write to s\.trie\.values\[0\] mutates frozen sealedSegment`
	t.labels = nil        // want `write to t\.labels mutates frozen Trie`
	t.hasChild.bits = nil // want `write to t\.hasChild\.bits mutates frozen Trie`
}

// readOnly proves lookups and value copies stay legal.
func readOnly(s *sealedSegment, t *Trie) int {
	n := len(s.data) + len(t.labels)
	if s.trie != nil {
		n += len(s.trie.values)
	}
	return n
}
