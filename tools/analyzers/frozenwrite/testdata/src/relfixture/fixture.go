// Package rel mirrors the shape of the real repro/internal/rel
// persistent-table types. Unlike the fwfixture package, Frozen here
// carries NO nettrails:frozen marker: the test type-checks this
// package as repro/internal/rel, so the diagnostics below prove the
// cross-package registry entry ("repro/internal/rel.Frozen") catches
// writes on its own — exactly how the real type is protected in the
// packages that consume it.
package rel

// Tuple stands in for the real tuple value type.
type Tuple struct {
	Rel string
}

type chunk struct {
	gen uint64
	ts  []Tuple
}

// Frozen is the registry-protected persistent view (no doc marker on
// purpose; see the package comment).
type Frozen struct {
	version uint64
	chunks  []*chunk
	n       int
	flat    []Tuple
}

// Table is live and unconstrained.
type Table struct {
	frozen *Frozen
	gen    uint64
}

// freeze is the sanctioned builder: the local is fresh from a
// composite literal, so stamping fields before handoff is legal.
func (t *Table) freeze(chunks []*chunk, n int) *Frozen {
	f := &Frozen{version: 1, chunks: chunks}
	f.n = n
	t.frozen = f // Table is not frozen; caching the handoff is fine.
	t.gen++
	return f
}

// mutatePublished writes through a Frozen that arrived from outside:
// every shape must be flagged via the registry alone.
func mutatePublished(f *Frozen) {
	f.n = 9                     // want `write to f\.n mutates frozen Frozen`
	f.version++                 // want `write to f\.version mutates frozen Frozen`
	f.flat = nil                // want `write to f\.flat mutates frozen Frozen`
	f.chunks[0].ts[0] = Tuple{} // want `write to f\.chunks\[0\]\.ts\[0\] mutates frozen Frozen`
}

// memoize documents why its single write is safe, the same pattern the
// real Frozen.Tuples uses for its sync.Once flatten cache.
func memoize(f *Frozen) []Tuple {
	if f.flat == nil {
		flat := make([]Tuple, 0, f.n)
		for _, c := range f.chunks {
			flat = append(flat, c.ts...)
		}
		//lint:allow frozenwrite fixture mirror of the sync.Once memoization in the real Frozen.Tuples
		f.flat = flat
	}
	return f.flat
}

// readOnly proves reads and value copies stay legal.
func readOnly(f *Frozen) int {
	n := f.n
	for _, c := range f.chunks {
		n += len(c.ts)
	}
	return n
}
