// Package fwfixture exercises the frozenwrite analyzer. View opts
// into the frozen discipline with the nettrails:frozen doc marker —
// the same mechanism new view types in the real tree use — so the
// fixture needs nothing from the cross-package registry. The test
// harness type-checks this package as repro/internal/server/fwfixture
// so the scope gate admits it.
package fwfixture

// View is this fixture's published-immutable snapshot type.
//
// nettrails:frozen
type View struct {
	Tables map[string]int
	Count  int
}

// Live carries no marker: writes through it are unconstrained.
type Live struct {
	Tables map[string]int
}

// build is the sanctioned builder pattern: the local is fresh from a
// composite literal, so every write is pre-publish by construction.
func build(names []string) *View {
	v := &View{Tables: map[string]int{}}
	for i, n := range names {
		v.Tables[n] = i
		v.Count++
	}
	return v
}

// mutatePublished writes through a pointer that arrived from outside:
// every shape of post-freeze mutation is flagged.
func mutatePublished(v *View) {
	v.Count = 7           // want `write to v\.Count mutates frozen View`
	v.Tables["x"] = 1     // want `write to v\.Tables\["x"\] mutates frozen View`
	v.Count++             // want `write to v\.Count mutates frozen View`
	delete(v.Tables, "x") // want `write to v\.Tables mutates frozen View`
}

// valueCopy owns its plain fields — writing Count touches only the
// local copy — but the map still shares backing storage with the
// published view.
func valueCopy(v View) int {
	v.Count = 1
	v.Tables["x"] = 1 // want `write to v\.Tables\["x"\] mutates frozen View`
	return v.Count
}

// mutateLive is legal: Live is not frozen.
func mutateLive(l *Live) {
	l.Tables["x"] = 1
}

// reset documents why its write is safe; the suppression keeps the
// finding out of the report.
func reset(old *View) *View {
	//lint:allow frozenwrite fixture exercising the suppression syntax on a provably unshared value
	old.Count = 0
	return old
}
