package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// InScope reports whether pkgPath equals, or lives under, one of the
// root package paths. Every nettrailsvet analyzer polices a specific
// slice of the tree (the deterministic core, the serving tiers); code
// outside an analyzer's scope is never flagged, so e.g. wall-clock
// reads in cmd/ main loops stay legal.
func InScope(pkgPath string, roots ...string) bool {
	for _, r := range roots {
		if pkgPath == r || strings.HasPrefix(pkgPath, r+"/") {
			return true
		}
	}
	return false
}

// NonTestFiles filters the pass's files down to production sources.
// The determinism/immutability contracts bind the engine and serving
// code; tests may freely measure wall time, spin goroutines, or poke
// snapshots they own.
func (p *Pass) NonTestFiles() []*ast.File {
	var out []*ast.File
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out
}

// PkgFunc resolves a call or selector to (package path, function name)
// when the expression is a direct pkgname.Func reference; ok is false
// for method calls, locals, and anything else.
func (p *Pass) PkgFunc(e ast.Expr) (pkgPath, name string, ok bool) {
	sel, isSel := e.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := p.TypesInfo.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// NamedOf unwraps pointers and returns the named type behind t, or nil.
func NamedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n
	}
	// A *Named whose underlying is a pointer was handled above; here t
	// may itself be a pointer type expression like *Snapshot.
	if ptr, ok := t.(*types.Pointer); ok {
		if n, ok := ptr.Elem().(*types.Named); ok {
			return n
		}
	}
	return nil
}

// Within reports whether pos falls inside node's source span.
func Within(pos token.Pos, node ast.Node) bool {
	return node != nil && pos >= node.Pos() && pos <= node.End()
}
