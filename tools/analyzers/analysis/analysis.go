// Package analysis is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis vocabulary: an Analyzer holds a
// name, a doc string, and a Run function over a Pass; a Pass gives the
// Run function one type-checked package and a sink for Diagnostics.
//
// The repo cannot vendor x/tools (the build must work from the standard
// library alone), so nettrailsvet's checkers are written against this
// shim instead. The API is deliberately shaped like the upstream one:
// if x/tools ever becomes available, each analyzer ports by changing
// one import line.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name is the short identifier used in diagnostics and in
	// //lint:allow suppression comments.
	Name string
	// Doc explains what the analyzer enforces and why.
	Doc string
	// Run applies the check to one package.
	Run func(*Pass) (interface{}, error)
}

// Pass is one analyzer applied to one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver sets it; analyzers
	// normally call Reportf.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ---- suppression -------------------------------------------------------

// Suppressions indexes //lint:allow comments so drivers can drop
// deliberately-accepted findings. The syntax is
//
//	//lint:allow <analyzer> <justification>
//
// on the flagged line or on the line immediately above it. The
// justification is mandatory: a bare //lint:allow <analyzer> does not
// suppress anything, so every suppression in the tree documents why
// the invariant is safe to break there.
type Suppressions struct {
	fset *token.FileSet
	// byLine maps file -> line -> analyzer names allowed there.
	byLine map[string]map[int][]string
}

// NewSuppressions scans the files' comments for //lint:allow
// directives.
func NewSuppressions(fset *token.FileSet, files []*ast.File) *Suppressions {
	s := &Suppressions{fset: fset, byLine: map[string]map[int][]string{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:allow") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, "lint:allow"))
				// fields[0] is the analyzer, the rest the justification;
				// both are required.
				if len(fields) < 2 {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					s.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], fields[0])
			}
		}
	}
	return s
}

// Allowed reports whether a diagnostic from the named analyzer at pos
// is suppressed by a //lint:allow on the same line or the line above.
func (s *Suppressions) Allowed(analyzer string, pos token.Pos) bool {
	p := s.fset.Position(pos)
	lines := s.byLine[p.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, name := range lines[line] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}
