package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestInScope(t *testing.T) {
	roots := []string{"repro/internal/simnet", "repro/internal/eval"}
	cases := []struct {
		path string
		want bool
	}{
		{"repro/internal/simnet", true},
		{"repro/internal/simnet/sub", true},
		{"repro/internal/eval", true},
		// Prefixes only count on a path boundary.
		{"repro/internal/simnetx", false},
		{"repro/internal/evaluation", false},
		{"repro/internal/server", false},
		{"", false},
	}
	for _, c := range cases {
		if got := InScope(c.path, roots...); got != c.want {
			t.Errorf("InScope(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

const suppressionSrc = `package p

func a() {
	_ = 1 //lint:allow walltime same-line justification
}

func b() {
	//lint:allow walltime line-above justification
	_ = 2
}

func c() {
	//lint:allow walltime
	_ = 3
}

func d() {
	_ = 4
}
`

func TestSuppressions(t *testing.T) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", suppressionSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSuppressions(fset, []*ast.File{file})

	tf := fset.File(file.Pos())
	cases := []struct {
		line     int
		analyzer string
		want     bool
		why      string
	}{
		{4, "walltime", true, "same-line suppression"},
		{9, "walltime", true, "line-above suppression"},
		{9, "ctxflow", false, "wrong analyzer name"},
		{14, "walltime", false, "bare directive without justification"},
		{18, "walltime", false, "no directive at all"},
	}
	for _, c := range cases {
		if got := s.Allowed(c.analyzer, tf.LineStart(c.line)); got != c.want {
			t.Errorf("Allowed(%s, line %d) = %v, want %v (%s)", c.analyzer, c.line, got, c.want, c.why)
		}
	}
}
