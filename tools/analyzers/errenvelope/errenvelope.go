// Package errenvelope enforces the v1 API's error contract in the
// serving tiers. Every failure leaving internal/server or
// internal/gateway must be the uniform machine-readable envelope
// ({"error":{"code":...,"message":...}}) with a code drawn from the
// stable catalog in internal/server/errors.go — clients branch on
// those strings, so an ad-hoc http.Error body or a typo'd code literal
// is a silent contract break no test may happen to cover. Three checks:
//
//   - plain-text escape hatches (http.Error, http.NotFound) and direct
//     WriteHeader calls with 4xx/5xx constants are flagged: the
//     envelope helpers (WriteErr, WriteAPIError, Errf) are the only
//     sanctioned way to report failure;
//   - the code argument of Errf/WriteErr must reference a catalog
//     constant (Err*), never a raw string literal;
//   - every catalog constant must appear in docs/API.md, so the
//     documented contract and the compiled one cannot drift.
package errenvelope

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"

	"repro/tools/analyzers/analysis"
)

// Analyzer is the errenvelope check.
var Analyzer = &analysis.Analyzer{
	Name: "errenvelope",
	Doc: "HTTP failures in the serving tiers must use the uniform error envelope " +
		"(WriteErr/WriteAPIError/Errf) with catalog error codes, and every catalog " +
		"code must be documented in docs/API.md",
	Run: run,
}

var scope = []string{
	"repro/internal/server",
	"repro/internal/gateway",
}

// codeArg maps envelope helpers to the index of their error-code
// argument.
var codeArg = map[string]int{
	"Errf":     1,
	"WriteErr": 2,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !analysis.InScope(pass.Pkg.Path(), scope...) {
		return nil, nil
	}
	files := pass.NonTestFiles()
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkEscapeHatch(pass, call)
			checkWriteHeader(pass, call)
			checkCodeArg(pass, call)
			return true
		})
	}
	checkCatalogDocs(pass, files)
	return nil, nil
}

// checkEscapeHatch flags net/http's plain-text error writers.
func checkEscapeHatch(pass *analysis.Pass, call *ast.CallExpr) {
	pkgPath, name, ok := pass.PkgFunc(call.Fun)
	if !ok || pkgPath != "net/http" {
		return
	}
	if name == "Error" || name == "NotFound" {
		pass.Reportf(call.Pos(),
			"http.%s writes a plain-text error, bypassing the v1 envelope: use WriteErr/WriteAPIError with a catalog code", name)
	}
}

// checkWriteHeader flags WriteHeader calls with a constant 4xx/5xx
// status: an error status without an envelope body is a bare,
// contract-free failure. (Non-constant statuses flow through WriteJSON
// and the helpers, which are the sanctioned paths.)
func checkWriteHeader(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "WriteHeader" || len(call.Args) != 1 {
		return
	}
	// Only http.ResponseWriter receivers matter; WriteHeader on other
	// types is unrelated.
	if !isResponseWriter(pass.TypesInfo.Types[sel.X].Type) {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return
	}
	if code, ok := constant.Int64Val(tv.Value); ok && code >= 400 {
		pass.Reportf(call.Pos(),
			"WriteHeader(%d) reports an error without the envelope body: use WriteErr/WriteAPIError with a catalog code", code)
	}
}

// isResponseWriter reports whether t is (or implements by name)
// net/http.ResponseWriter.
func isResponseWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if n := analysis.NamedOf(t); n != nil {
		obj := n.Obj()
		if obj.Name() == "ResponseWriter" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http" {
			return true
		}
	}
	// Concrete recorder types that implement the interface: check
	// structurally for the canonical method triple.
	ms := types.NewMethodSet(t)
	has := func(name string) bool {
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == name {
				return true
			}
		}
		return false
	}
	return has("Header") && has("Write") && has("WriteHeader")
}

// checkCodeArg requires the code argument of the envelope helpers to
// reference a catalog constant.
func checkCodeArg(pass *analysis.Pass, call *ast.CallExpr) {
	var callee types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		callee = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		callee = pass.TypesInfo.Uses[fun.Sel]
	}
	fn, ok := callee.(*types.Func)
	if !ok {
		return
	}
	idx, ok := codeArg[fn.Name()]
	if !ok || fn.Pkg() == nil || len(call.Args) <= idx {
		return
	}
	// The helper must be ours: package server, or the package under
	// analysis (fixtures declare their own).
	if fn.Pkg().Path() != "repro/internal/server" && fn.Pkg() != pass.Pkg {
		return
	}
	arg := call.Args[idx]
	switch a := arg.(type) {
	case *ast.BasicLit:
		pass.Reportf(arg.Pos(),
			"raw error-code literal %s: reference a catalog constant (Err*) so the stable contract stays greppable and typo-proof", a.Value)
	case *ast.Ident, *ast.SelectorExpr:
		var obj types.Object
		if id, ok := a.(*ast.Ident); ok {
			obj = pass.TypesInfo.Uses[id]
		} else {
			obj = pass.TypesInfo.Uses[a.(*ast.SelectorExpr).Sel]
		}
		if c, ok := obj.(*types.Const); ok && !strings.HasPrefix(c.Name(), "Err") {
			pass.Reportf(arg.Pos(),
				"error code %s is a constant outside the Err* catalog: add it to the catalog (and docs/API.md) or use an existing code", c.Name())
		}
	}
}

// checkCatalogDocs cross-checks the catalog against docs/API.md in the
// package that declares Err* string constants.
func checkCatalogDocs(pass *analysis.Pass, files []*ast.File) {
	type code struct {
		name  string
		value string
		pos   token.Pos
	}
	var catalog []code
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if !strings.HasPrefix(name.Name, "Err") {
						continue
					}
					c, ok := pass.TypesInfo.Defs[name].(*types.Const)
					if !ok || c.Val().Kind() != constant.String {
						continue
					}
					catalog = append(catalog, code{name: name.Name, value: constant.StringVal(c.Val()), pos: name.Pos()})
				}
			}
		}
	}
	if len(catalog) == 0 {
		return
	}
	doc, docPath, err := findAPIDoc(pass.Fset.Position(catalog[0].pos).Filename)
	if err != nil {
		pass.Reportf(catalog[0].pos,
			"error-code catalog declared here but docs/API.md was not found above %s: the contract must be documented",
			filepath.Dir(pass.Fset.Position(catalog[0].pos).Filename))
		return
	}
	for _, c := range catalog {
		if !strings.Contains(doc, c.value) {
			pass.Reportf(c.pos,
				"catalog code %q (%s) is not documented in %s: clients branch on it, so it is part of the public contract",
				c.value, c.name, docPath)
		}
	}
}

// findAPIDoc walks upward from the declaring file's directory looking
// for docs/API.md.
func findAPIDoc(fromFile string) (content, path string, err error) {
	dir := filepath.Dir(fromFile)
	for {
		cand := filepath.Join(dir, "docs", "API.md")
		if data, err := os.ReadFile(cand); err == nil {
			return string(data), cand, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", os.ErrNotExist
		}
		dir = parent
	}
}
