package errenvelope_test

import (
	"testing"

	"repro/tools/analyzers/analyzertest"
	"repro/tools/analyzers/errenvelope"
)

func TestErrenvelope(t *testing.T) {
	analyzertest.Run(t, "testdata/src/envfixture",
		"repro/internal/server/envfixture", errenvelope.Analyzer)
}
