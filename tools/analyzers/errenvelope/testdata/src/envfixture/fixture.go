// Package envfixture exercises the errenvelope analyzer. It declares
// its own miniature envelope helpers and Err* catalog; the analyzer
// accepts helpers from the package under analysis precisely so
// fixtures like this one can be self-contained. The adjacent
// docs/API.md documents bad_query but not ghost_code. The test
// harness type-checks this package as
// repro/internal/server/envfixture so the scope gate admits it.
package envfixture

import (
	"fmt"
	"net/http"
)

// The fixture's error-code catalog.
const (
	ErrBadQuery = "bad_query"
	ErrGhost    = "ghost_code" // want `catalog code "ghost_code" \(ErrGhost\) is not documented`
)

// notACode is a string constant outside the catalog.
const notACode = "nope"

// Errf mirrors the serving tier's envelope constructor (code is
// argument 1).
func Errf(status int, code, format string, args ...interface{}) error {
	return fmt.Errorf("%d %s: %s", status, code, fmt.Sprintf(format, args...))
}

// WriteErr mirrors the serving tier's envelope writer (code is
// argument 2).
func WriteErr(w http.ResponseWriter, status int, code, format string, args ...interface{}) {
	w.WriteHeader(status)
	fmt.Fprintf(w, "%s: %s", code, fmt.Sprintf(format, args...))
}

func handler(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "boom", http.StatusInternalServerError) // want `http\.Error writes a plain-text error`
	http.NotFound(w, r)                                   // want `http\.NotFound writes a plain-text error`
	w.WriteHeader(http.StatusBadRequest)                  // want `WriteHeader\(400\) reports an error without the envelope body`
	w.WriteHeader(http.StatusOK)                          // success statuses carry no envelope: legal
	WriteErr(w, http.StatusBadRequest, ErrBadQuery, "bad query %q", r.URL.Path)
	WriteErr(w, http.StatusBadRequest, "bad_query", "inline") // want `raw error-code literal "bad_query"`
	_ = Errf(http.StatusBadRequest, notACode, "outside")      // want `error code notACode is a constant outside the Err\* catalog`
}

func probe(w http.ResponseWriter) {
	//lint:allow errenvelope bare-status probe endpoint kept to exercise the suppression path
	w.WriteHeader(http.StatusServiceUnavailable)
}
