// docscheck keeps the documentation honest: it walks the repo's
// operator-facing markdown (README.md plus docs/) and fails when the
// docs drift from the code they describe. Three checks:
//
//   - relative markdown links must point at files that exist;
//   - `go run ./cmd/<name>` commands inside shell code fences must
//     name a real command, and every -flag they pass must be defined
//     by that command's flag set;
//   - `make <target>` commands must name a real Makefile target.
//
// It is wired up as `make docs-check` and runs in CI, so a renamed
// flag, a deleted doc, or a stale quickstart breaks the build instead
// of the next reader.
//
// Usage: docscheck [-root dir] [paths...]  (default: README.md docs)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

var (
	linkRe    = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)
	fenceRe   = regexp.MustCompile("^```")
	goRunRe   = regexp.MustCompile(`go run (\./[a-zA-Z0-9_/.-]+)`)
	makeRe    = regexp.MustCompile(`\bmake ([a-zA-Z0-9_.-]+)`)
	flagDefRe = regexp.MustCompile(`flag\.[A-Za-z0-9]+\("([a-zA-Z0-9_.-]+)"`)
	flagUseRe = regexp.MustCompile(`^-([a-zA-Z][a-zA-Z0-9_.-]*)`)
	targetRe  = regexp.MustCompile(`(?m)^([A-Za-z0-9_.-]+):`)
)

func main() {
	root := flag.String("root", ".", "repository root the docs and commands resolve against")
	flag.Parse()
	paths := flag.Args()
	if len(paths) == 0 {
		paths = []string{"README.md", "docs"}
	}

	var files []string
	for _, p := range paths {
		full := filepath.Join(*root, p)
		st, err := os.Stat(full)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			os.Exit(1)
		}
		if st.IsDir() {
			ents, err := os.ReadDir(full)
			if err != nil {
				fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
				os.Exit(1)
			}
			for _, e := range ents {
				if !e.IsDir() && strings.HasSuffix(e.Name(), ".md") {
					files = append(files, filepath.Join(full, e.Name()))
				}
			}
		} else {
			files = append(files, full)
		}
	}

	var problems []string
	for _, f := range files {
		problems = append(problems, checkFile(*root, f)...)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "docscheck: "+p)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d file(s) clean\n", len(files))
}

// checkFile runs every check over one markdown file.
func checkFile(root, path string) []string {
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{err.Error()}
	}
	var problems []string
	add := func(line int, format string, args ...interface{}) {
		problems = append(problems, fmt.Sprintf("%s:%d: %s", path, line, fmt.Sprintf(format, args...)))
	}

	lines := strings.Split(string(data), "\n")
	inFence := false
	for i, line := range lines {
		lineNo := i + 1
		if fenceRe.MatchString(strings.TrimSpace(line)) {
			inFence = !inFence
			continue
		}
		if !inFence {
			// Relative links must resolve.
			for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
					continue
				}
				if i := strings.IndexByte(target, '#'); i >= 0 {
					target = target[:i]
				}
				if target == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(path), target)
				if _, err := os.Stat(resolved); err != nil {
					add(lineNo, "broken link %q", m[1])
				}
			}
			continue
		}
		// Inside a code fence: join continuation lines, then check the
		// command-shaped ones.
		if i > 0 && strings.HasSuffix(strings.TrimSpace(lines[i-1]), "\\") {
			continue // already consumed by the joined command below
		}
		cmd := strings.TrimSpace(line)
		for j := i; strings.HasSuffix(cmd, "\\") && j+1 < len(lines); j++ {
			cmd = strings.TrimSuffix(cmd, "\\") + " " + strings.TrimSpace(lines[j+1])
		}
		problems = append(problems, checkCommand(root, path, lineNo, cmd)...)
	}
	return problems
}

// checkCommand validates one joined shell command from a code fence.
func checkCommand(root, path string, lineNo int, cmd string) []string {
	var problems []string
	add := func(format string, args ...interface{}) {
		problems = append(problems, fmt.Sprintf("%s:%d: %s", path, lineNo, fmt.Sprintf(format, args...)))
	}

	if m := goRunRe.FindStringSubmatch(cmd); m != nil {
		pkg := m[1]
		dir := filepath.Join(root, pkg)
		if _, err := os.Stat(dir); err != nil {
			add("go run %s: no such package directory", pkg)
			return problems
		}
		defined, err := definedFlags(dir)
		if err != nil {
			add("go run %s: %v", pkg, err)
			return problems
		}
		if defined == nil {
			return problems // not a main package with flags (e.g. examples)
		}
		rest := cmd[strings.Index(cmd, pkg)+len(pkg):]
		for _, tok := range strings.Fields(rest) {
			fm := flagUseRe.FindStringSubmatch(tok)
			if fm == nil {
				continue
			}
			name := fm[1]
			if i := strings.IndexByte(name, '='); i >= 0 {
				name = name[:i]
			}
			if !defined[name] {
				add("go run %s: flag -%s is not defined by %s", pkg, name, pkg)
			}
		}
	}

	for _, m := range makeRe.FindAllStringSubmatch(cmd, -1) {
		target := m[1]
		ok, err := makefileHasTarget(root, target)
		if err != nil {
			add("%v", err)
		} else if !ok {
			add("make %s: no such Makefile target", target)
		}
	}
	return problems
}

// definedFlags collects the flag names a command's package registers;
// nil (no error) when the package defines no flags at all.
func definedFlags(dir string) (map[string]bool, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var defined map[string]bool
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		for _, m := range flagDefRe.FindAllStringSubmatch(string(src), -1) {
			if defined == nil {
				defined = map[string]bool{}
			}
			defined[m[1]] = true
		}
	}
	return defined, nil
}

func makefileHasTarget(root, target string) (bool, error) {
	data, err := os.ReadFile(filepath.Join(root, "Makefile"))
	if err != nil {
		return false, err
	}
	for _, m := range targetRe.FindAllStringSubmatch(string(data), -1) {
		for _, t := range strings.Fields(m[1]) {
			if t == target {
				return true, nil
			}
		}
	}
	return false, nil
}
