package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays out a scratch repo for the checker to walk.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, content := range files {
		full := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestChecksCatchDrift(t *testing.T) {
	root := writeTree(t, map[string]string{
		"Makefile": "all: build\nbuild:\n\ttrue\n",
		"cmd/demo/main.go": `package main
import "flag"
func main() {
	_ = flag.String("listen", "", "")
	_ = flag.Int("nodes", 4, "")
}`,
		"docs/good.md": "See [the readme](../README.md).\n" +
			"```sh\ngo run ./cmd/demo -listen :8080 \\\n    -nodes 9\nmake build\n```\n",
		"README.md": "hello [docs](docs/good.md)\n",
		"docs/bad.md": "A [broken link](missing.md).\n" +
			"```sh\ngo run ./cmd/demo -port 80\ngo run ./cmd/ghost\nmake deploy\n```\n",
	})

	if got := checkFile(root, filepath.Join(root, "docs", "good.md")); len(got) != 0 {
		t.Fatalf("good.md flagged: %v", got)
	}
	if got := checkFile(root, filepath.Join(root, "README.md")); len(got) != 0 {
		t.Fatalf("README.md flagged: %v", got)
	}

	got := checkFile(root, filepath.Join(root, "docs", "bad.md"))
	want := []string{"broken link", "flag -port", "no such package directory", "make deploy"}
	if len(got) != len(want) {
		t.Fatalf("bad.md: got %d problems %v, want %d", len(got), got, len(want))
	}
	for i, w := range want {
		if !strings.Contains(got[i], w) {
			t.Fatalf("problem %d = %q, want mention of %q", i, got[i], w)
		}
	}
}

// TestRepoDocsAreClean runs the real checks over the repository's own
// README and docs — the same gate `make docs-check` applies in CI.
func TestRepoDocsAreClean(t *testing.T) {
	root := "../.."
	var problems []string
	for _, p := range []string{"README.md", "docs"} {
		st, err := os.Stat(filepath.Join(root, p))
		if err != nil {
			t.Fatal(err)
		}
		if st.IsDir() {
			ents, err := os.ReadDir(filepath.Join(root, p))
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range ents {
				if strings.HasSuffix(e.Name(), ".md") {
					problems = append(problems, checkFile(root, filepath.Join(root, p, e.Name()))...)
				}
			}
		} else {
			problems = append(problems, checkFile(root, filepath.Join(root, p))...)
		}
	}
	for _, p := range problems {
		t.Error(p)
	}
}
