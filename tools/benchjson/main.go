// benchjson converts `go test -bench` output on stdin into a JSON
// array on stdout, one object per benchmark result, so CI can archive
// performance trajectories (see `make bench`, which emits
// BENCH_parallel.json).
//
// Input lines look like:
//
//	BenchmarkParallelPathVector/p=4-8  5  54067539 ns/op  123 msgs/op
//
// Everything that is not a benchmark result line is ignored.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func parseLine(line string) (result, bool) {
	f := strings.Fields(strings.TrimSpace(line))
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: f[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		r.Metrics[f[i+1]] = v
	}
	if len(r.Metrics) == 0 {
		return result{}, false
	}
	return r, true
}

func main() {
	results := []result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
