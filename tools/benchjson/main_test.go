package main

import "testing"

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkParallelPathVector/p=4-8  \t5  54067539 ns/op  123.5 msgs/op")
	if !ok {
		t.Fatal("line should parse")
	}
	if r.Name != "BenchmarkParallelPathVector/p=4-8" || r.Iterations != 5 {
		t.Fatalf("parsed %+v", r)
	}
	if r.Metrics["ns/op"] != 54067539 || r.Metrics["msgs/op"] != 123.5 {
		t.Fatalf("metrics %+v", r.Metrics)
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \trepro\t0.9s",
		"BenchmarkBroken notanumber 12 ns/op",
		"BenchmarkNoMetrics 5",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("line %q should not parse", line)
		}
	}
}
