// Benchmark harness: one benchmark (family) per experiment in
// EXPERIMENTS.md / DESIGN.md §3. The SIGMOD'11 paper is a demonstration
// paper, so the "figures" are demo scenarios; each benchmark regenerates
// the corresponding scenario and reports the metrics the demo shows
// (convergence traffic, provenance maintenance overhead, query traffic
// with and without optimizations, scaling).
package nettrails_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	nettrails "repro"
	"repro/client"
	"repro/internal/engine"
	"repro/internal/gateway"
	"repro/internal/protocols"
	"repro/internal/provquery"
	"repro/internal/routeviews"
	"repro/internal/scenario"
	"repro/internal/server"
)

func mustSystem(b *testing.B, program string, n int, edges []protocols.Edge) *nettrails.System {
	b.Helper()
	sys, err := nettrails.NewSystem(program, nettrails.NodeNames(n))
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range edges {
		if err := sys.AddLink(e.A, e.B, e.Cost); err != nil {
			b.Fatal(err)
		}
	}
	return sys
}

func diamond() []protocols.Edge {
	return []protocols.Edge{
		{A: "n1", B: "n2", Cost: 1}, {A: "n1", B: "n3", Cost: 1},
		{A: "n2", B: "n4", Cost: 1}, {A: "n3", B: "n4", Cost: 1},
	}
}

// BenchmarkFig2ProvenanceRender (E2): build MINCOST provenance on the
// diamond and render the Figure 2 exploration (proof tree + tuple card).
func BenchmarkFig2ProvenanceRender(b *testing.B) {
	sys := mustSystem(b, nettrails.MinCost, 4, diamond())
	mc := nettrails.Tuple("mincost", nettrails.Addr("n1"), nettrails.Addr("n4"), nettrails.Int(2))
	res, err := sys.Lineage("n1", mc)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = nettrails.RenderProof(res.Root)
		_ = nettrails.RenderTupleCard(mc, "n1")
	}
}

// BenchmarkDemo1Maintenance* (E3): incremental maintenance cost of one
// topology change (link removal + re-insertion) after convergence, for
// each declarative protocol of demo use case 1.
func benchMaintenance(b *testing.B, program string) {
	sys := mustSystem(b, program, 6, protocols.RingTopology(6, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.RemoveLink("n2", "n3", 1); err != nil {
			b.Fatal(err)
		}
		if err := sys.AddLink("n2", "n3", 1); err != nil {
			b.Fatal(err)
		}
	}
	msgs, bytes, _ := sys.Engine.Net.Totals()
	b.ReportMetric(float64(msgs)/float64(b.N), "msgs/op")
	b.ReportMetric(float64(bytes)/float64(b.N), "bytes/op")
}

func BenchmarkDemo1MaintenanceMincost(b *testing.B)    { benchMaintenance(b, nettrails.MinCost) }
func BenchmarkDemo1MaintenancePathVector(b *testing.B) { benchMaintenance(b, nettrails.PathVector) }
func BenchmarkDemo1MaintenanceDSR(b *testing.B)        { benchMaintenance(b, nettrails.DSR) }
func BenchmarkDemo1MaintenanceDistVector(b *testing.B) {
	benchMaintenance(b, nettrails.DistanceVector)
}

// BenchmarkDemo2BGPProvenance (E4): legacy-application provenance
// capture: replay RouteViews-style announce/withdraw events through the
// proxied BGP deployment.
func BenchmarkDemo2BGPProvenance(b *testing.B) {
	d, err := nettrails.NewBGPDeployment(
		[]string{"AS1", "AS2", "AS3", "AS4", "AS5"},
		[]nettrails.ASLink{
			{A: "AS1", B: "AS2", Rel: nettrails.PeerOf},
			{A: "AS1", B: "AS3", Rel: nettrails.CustomerOf},
			{A: "AS2", B: "AS4", Rel: nettrails.CustomerOf},
			{A: "AS3", B: "AS5", Rel: nettrails.CustomerOf},
			{A: "AS4", B: "AS5", Rel: nettrails.CustomerOf},
		})
	if err != nil {
		b.Fatal(err)
	}
	events, err := d.GenerateTrace(200, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	done := 0
	for i := 0; i < b.N; i++ {
		ev := events[i%len(events)]
		var err error
		if ev.Type == 0 {
			err = d.Originate(ev.Origin, ev.Prefix)
		} else {
			// Replaying out of order can withdraw a dead prefix; the
			// speaker treats that as a no-op, which is fine for
			// throughput measurement.
			err = d.Withdraw(ev.Origin, ev.Prefix)
		}
		if err != nil {
			b.Fatal(err)
		}
		done++
	}
	b.ReportMetric(float64(done), "events")
}

// BenchmarkQuery* (E5): the three demo query types plus full lineage,
// over a 6-node line (5-hop derivation chains).
func benchQuery(b *testing.B, typ provquery.QueryType) {
	sys := mustSystem(b, nettrails.MinCost, 6, protocols.LineTopology(6, 1))
	mc := nettrails.Tuple("mincost", nettrails.Addr("n1"), nettrails.Addr("n6"), nettrails.Int(5))
	var msgs, bytes int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sys.Query.Query(typ, "n1", mc, provquery.Options{})
		if err != nil {
			b.Fatal(err)
		}
		msgs += res.Stats.Messages
		bytes += res.Stats.Bytes
	}
	b.ReportMetric(float64(msgs)/float64(b.N), "msgs/op")
	b.ReportMetric(float64(bytes)/float64(b.N), "bytes/op")
}

func BenchmarkQueryLineage(b *testing.B)    { benchQuery(b, provquery.Lineage) }
func BenchmarkQueryBaseTuples(b *testing.B) { benchQuery(b, provquery.BaseTuples) }
func BenchmarkQueryNodes(b *testing.B)      { benchQuery(b, provquery.Nodes) }
func BenchmarkQueryDerivCount(b *testing.B) { benchQuery(b, provquery.DerivCount) }

// BenchmarkQueryOpt* (E6): the optimization study — caching and
// threshold pruning reduce query traffic (the demo's closing claim).
func benchQueryOpt(b *testing.B, opts provquery.Options) {
	// A wider diamond stack gives multiple alternative derivations so
	// pruning has something to cut.
	edges := []protocols.Edge{
		{A: "n1", B: "n2", Cost: 1}, {A: "n1", B: "n3", Cost: 1},
		{A: "n2", B: "n4", Cost: 1}, {A: "n3", B: "n4", Cost: 1},
		{A: "n4", B: "n5", Cost: 1}, {A: "n4", B: "n6", Cost: 1},
		{A: "n5", B: "n7", Cost: 1}, {A: "n6", B: "n7", Cost: 1},
	}
	sys := mustSystem(b, nettrails.MinCost, 7, edges)
	mc := nettrails.Tuple("mincost", nettrails.Addr("n1"), nettrails.Addr("n7"), nettrails.Int(4))
	var msgs, bytes, hits int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sys.Query.Query(provquery.BaseTuples, "n1", mc, opts)
		if err != nil {
			b.Fatal(err)
		}
		msgs += res.Stats.Messages
		bytes += res.Stats.Bytes
		hits += res.Stats.CacheHits
	}
	b.ReportMetric(float64(msgs)/float64(b.N), "msgs/op")
	b.ReportMetric(float64(bytes)/float64(b.N), "bytes/op")
	b.ReportMetric(float64(hits)/float64(b.N), "cachehits/op")
}

func BenchmarkQueryOptNone(b *testing.B) { benchQueryOpt(b, provquery.Options{}) }
func BenchmarkQueryOptCache(b *testing.B) {
	benchQueryOpt(b, provquery.Options{UseCache: true})
}
func BenchmarkQueryOptPrune(b *testing.B) {
	benchQueryOpt(b, provquery.Options{Threshold: 1})
}
func BenchmarkQueryOptCachePrune(b *testing.B) {
	benchQueryOpt(b, provquery.Options{UseCache: true, Threshold: 1})
}
func BenchmarkQueryOptSequential(b *testing.B) {
	benchQueryOpt(b, provquery.Options{Sequential: true})
}

// BenchmarkScalingMaintenance (E7): full convergence of MINCOST on
// square grids of growing size; reports provenance maintenance overhead
// (prov entries, delta traffic) per network size.
func BenchmarkScalingMaintenance(b *testing.B) {
	for _, side := range []int{2, 3, 4, 5, 6} {
		n := side * side
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			var msgs, bytes, prov int
			for i := 0; i < b.N; i++ {
				sys := mustSystem(b, nettrails.MinCost, n, protocols.GridTopology(side, side, 1))
				m, by, _ := sys.Engine.Net.Totals()
				msgs += m
				bytes += by
				for _, addr := range sys.Engine.Nodes() {
					nd, _ := sys.Engine.Node(addr)
					prov += nd.Prov.Statistics().ProvEntries
				}
			}
			b.ReportMetric(float64(msgs)/float64(b.N), "msgs/op")
			b.ReportMetric(float64(bytes)/float64(b.N), "bytes/op")
			b.ReportMetric(float64(prov)/float64(b.N), "proventries")
		})
	}
}

// BenchmarkScalingQuery (E7): lineage query latency/traffic vs. network
// size (corner-to-corner tuple on the grid).
func BenchmarkScalingQuery(b *testing.B) {
	for _, side := range []int{2, 3, 4, 5, 6} {
		n := side * side
		sys := mustSystem(b, nettrails.MinCost, n, protocols.GridTopology(side, side, 1))
		dist := int64(2 * (side - 1))
		mc := nettrails.Tuple("mincost",
			nettrails.Addr("n1"), nettrails.Addr(protocols.NodeName(n)), nettrails.Int(dist))
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			var msgs int
			for i := 0; i < b.N; i++ {
				res, err := sys.Lineage("n1", mc)
				if err != nil {
					b.Fatal(err)
				}
				msgs += res.Stats.Messages
			}
			b.ReportMetric(float64(msgs)/float64(b.N), "msgs/op")
		})
	}
}

// BenchmarkCascadeDeletion (E8): the cascading-effect analysis — delete
// a well-connected link after convergence and measure the provenance
// update cascade.
func BenchmarkCascadeDeletion(b *testing.B) {
	side := 4
	n := side * side
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys := mustSystem(b, nettrails.MinCost, n, protocols.GridTopology(side, side, 1))
		sys.Engine.Net.ResetTraffic()
		b.StartTimer()
		if err := sys.RemoveLink("n6", "n7", 1); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		msgs, _, _ := sys.Engine.Net.Totals()
		b.ReportMetric(float64(msgs), "cascade_msgs")
		b.StartTimer()
	}
}

// BenchmarkAblationProvenance{Off,On} (design-choice ablation from
// DESIGN.md): the cost of ExSPAN maintenance itself — full MINCOST
// convergence on a 4x4 grid with provenance tracking disabled vs.
// enabled. ExSPAN's claim is that maintenance is a modest constant
// factor on execution.
func benchAblation(b *testing.B, provenance bool) {
	side := 4
	n := side * side
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := engine.New(nettrails.MinCost, nettrails.NodeNames(n), engine.Options{
			Seed: 1, Provenance: provenance,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range protocols.GridTopology(side, side, 1) {
			if err := eng.AddBiLink(e.A, e.B, e.Cost); err != nil {
				b.Fatal(err)
			}
		}
		eng.RunQuiescent()
	}
}

func BenchmarkAblationProvenanceOff(b *testing.B) { benchAblation(b, false) }
func BenchmarkAblationProvenanceOn(b *testing.B)  { benchAblation(b, true) }

// BenchmarkParallelPathVector (E9): the epoch scheduler's speedup on
// protocol convergence — PATHVECTOR (the heaviest demo protocol: path
// lists grow with hop count) on a 16-node grid, serial vs parallel
// worker pools. State is identical at every parallelism level; only
// wall-clock and message counts change.
func benchParallelConvergence(b *testing.B, program string, n int, edges []protocols.Edge, parallelism int) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Engine construction (parse/analyze/localize/compile) is
		// identical at every parallelism level; keep it out of the
		// timed region so ns/op compares only the convergence work the
		// sweep is about.
		b.StopTimer()
		eng, err := engine.New(program, nettrails.NodeNames(n), engine.Options{
			Seed: 1, Provenance: true, Parallelism: parallelism,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for _, e := range edges {
			if err := eng.AddBiLink(e.A, e.B, e.Cost); err != nil {
				b.Fatal(err)
			}
		}
		eng.RunQuiescent()
	}
}

func BenchmarkParallelPathVector(b *testing.B) {
	edges := protocols.GridTopology(4, 4, 1)
	for _, p := range parallelismLevels() {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			benchParallelConvergence(b, nettrails.PathVector, 16, edges, p)
		})
	}
}

func BenchmarkParallelMincost(b *testing.B) {
	edges := protocols.GridTopology(5, 5, 1)
	for _, p := range parallelismLevels() {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			benchParallelConvergence(b, nettrails.MinCost, 25, edges, p)
		})
	}
}

// BenchmarkParallelBGP (E9): the legacy-application workload under the
// epoch scheduler — an 8-AS deployment replaying a 100-event
// RouteViews-style trace, serial vs parallel.
func BenchmarkParallelBGP(b *testing.B) {
	ases := make([]string, 8)
	for i := range ases {
		ases[i] = fmt.Sprintf("AS%d", i+1)
	}
	links := []nettrails.ASLink{
		{A: "AS1", B: "AS2", Rel: nettrails.PeerOf},
		{A: "AS1", B: "AS3", Rel: nettrails.CustomerOf},
		{A: "AS2", B: "AS4", Rel: nettrails.CustomerOf},
		{A: "AS3", B: "AS5", Rel: nettrails.CustomerOf},
		{A: "AS4", B: "AS6", Rel: nettrails.CustomerOf},
		{A: "AS5", B: "AS7", Rel: nettrails.CustomerOf},
		{A: "AS6", B: "AS8", Rel: nettrails.CustomerOf},
		{A: "AS7", B: "AS8", Rel: nettrails.PeerOf},
	}
	// The trace is deterministic for a fixed seed: generate it once,
	// outside every timed region.
	setup, err := nettrails.NewBGPDeployment(ases, links, nettrails.Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	events, err := setup.GenerateTrace(100, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range parallelismLevels() {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				d, err := nettrails.NewBGPDeployment(ases, links, nettrails.Config{
					Seed: 1, Parallelism: p,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := d.ReplayTrace(events); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// parallelismLevels returns the worker counts the parallel benchmarks
// sweep: serial, a small pool, and the machine's full width.
func parallelismLevels() []int {
	levels := []int{1, 4}
	if n := runtime.NumCPU(); n > 4 {
		levels = append(levels, n)
	}
	return levels
}

// BenchmarkServeQueries (E10): the query-serving workload — N
// concurrent HTTP clients issuing provenance queries against a live
// 8-AS BGP deployment whose simulation thread keeps replaying a
// RouteViews-style trace. Epoch-snapshot isolation means the clients
// read frozen versioned views: the simulation never waits for a
// reader and every request sees one consistent virtual instant.
// Reported versions/op > 0 confirms the simulation really advanced
// while clients were querying.
func BenchmarkServeQueries(b *testing.B) {
	ases := make([]string, 8)
	for i := range ases {
		ases[i] = fmt.Sprintf("AS%d", i+1)
	}
	links := []nettrails.ASLink{
		{A: "AS1", B: "AS2", Rel: nettrails.PeerOf},
		{A: "AS1", B: "AS3", Rel: nettrails.CustomerOf},
		{A: "AS2", B: "AS4", Rel: nettrails.CustomerOf},
		{A: "AS3", B: "AS5", Rel: nettrails.CustomerOf},
		{A: "AS4", B: "AS6", Rel: nettrails.CustomerOf},
		{A: "AS5", B: "AS7", Rel: nettrails.CustomerOf},
		{A: "AS6", B: "AS8", Rel: nettrails.CustomerOf},
		{A: "AS7", B: "AS8", Rel: nettrails.PeerOf},
	}
	for _, clients := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			d, err := nettrails.NewBGPDeployment(ases, links, nettrails.Config{Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			// A sentinel prefix outside the generated trace's 10.x pool:
			// it is never withdrawn, so the queried tuple exists in every
			// published snapshot.
			if err := d.Originate("AS1", "192.0.2.0/24"); err != nil {
				b.Fatal(err)
			}
			events, err := d.GenerateTrace(60, 1)
			if err != nil {
				b.Fatal(err)
			}
			pub, err := server.NewPublisher(d.Eng, server.DefaultRetain)
			if err != nil {
				b.Fatal(err)
			}
			ts := httptest.NewServer(server.New(pub, server.Info{Protocol: "bgp"}))
			defer ts.Close()

			// The simulation thread: replay the trace in a loop until the
			// clients are done. Every quiescence publishes snapshots.
			stop := make(chan struct{})
			simDone := make(chan struct{})
			go func() {
				defer close(simDone)
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					ev := events[i%len(events)]
					if ev.Type == 0 {
						err = d.Originate(ev.Origin, ev.Prefix)
					} else {
						err = d.Withdraw(ev.Origin, ev.Prefix)
					}
					if err != nil {
						b.Error(err)
						return
					}
				}
			}()

			startVersion := pub.Current().Version
			const query = `{"q":"lineage of routeEntry(@'AS1',\"192.0.2.0/24\")"}`
			var failures atomic.Int64
			// Exactly `clients` concurrent client goroutines draining a
			// shared ticket counter (RunParallel would multiply the
			// level by GOMAXPROCS and mislabel the sweep).
			var next atomic.Int64
			b.ResetTimer()
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					client := ts.Client()
					for next.Add(1) <= int64(b.N) {
						resp, err := client.Post(ts.URL+"/query", "application/json",
							strings.NewReader(query))
						if err != nil {
							failures.Add(1)
							continue
						}
						if resp.StatusCode != http.StatusOK {
							failures.Add(1)
						}
						resp.Body.Close()
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			close(stop)
			<-simDone
			if n := failures.Load(); n > 0 {
				b.Fatalf("%d/%d queries failed", n, b.N)
			}
			b.ReportMetric(float64(pub.Current().Version-startVersion)/float64(b.N), "versions/op")
		})
	}
}

// BenchmarkPublish (E14): the epoch-snapshot publish path itself. The
// persistent-table/incremental-view design makes publish cost O(delta)
// — proportional to the tuples that changed since the last epoch, not
// to the network's state or node count. The sweep measures exactly
// that: per-epoch publish time (churn excluded via StopTimer) for
// deltas of 1, 10, and 100 tuples, over two deployments whose state
// sizes differ by orders of magnitude:
//
//   - as8:    the 8-AS BGP deployment seeded by replaying its 200-event
//     RouteViews-style trace
//   - as1000: a generated 1000-AS internet-like topology (the
//     RouteViews-scale graph of the slow scenario suite)
//
// The acceptance claim is the delta=1 ratio between the two: with 125x
// the nodes, publish stays within a small constant (the residual is
// pass 1's per-node version probe — three pointer loads per node, no
// allocation). Each churned tuple is inserted and deleted before the
// timed publish, so state size stays fixed across iterations while the
// touched nodes' versions move.
func BenchmarkPublish(b *testing.B) {
	churn := func(b *testing.B, d *nettrails.BGPDeployment, ases []string, seq, k int) {
		b.Helper()
		for j := 0; j < k; j++ {
			as := ases[(seq+j)%len(ases)]
			t := nettrails.Tuple("inputRoute",
				nettrails.Addr(as), nettrails.Addr("bench"),
				nettrails.Str(fmt.Sprintf("198.51.%d.0/24", j%200)),
				nettrails.List(nettrails.Addr("bench")))
			if err := d.Eng.InsertFact(t); err != nil {
				b.Fatal(err)
			}
			if err := d.Eng.DeleteFact(t); err != nil {
				b.Fatal(err)
			}
		}
	}
	sweep := func(b *testing.B, d *nettrails.BGPDeployment, ases []string) {
		pub, err := server.NewPublisher(d.Eng, server.DefaultRetain)
		if err != nil {
			b.Fatal(err)
		}
		// Manual publishes only: epoch-observer publishes during the
		// untimed churn would leave nothing for the timed region.
		pub.Detach()
		for _, k := range []int{1, 10, 100} {
			b.Run(fmt.Sprintf("delta=%d", k), func(b *testing.B) {
				b.ReportAllocs()
				start := pub.Current().Version
				seq := 0
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					churn(b, d, ases, seq, k)
					seq += k
					b.StartTimer()
					pub.Publish()
				}
				b.StopTimer()
				if got := pub.Current().Version - start; got != uint64(b.N) {
					b.Fatalf("published %d versions over %d epochs", got, b.N)
				}
			})
		}
	}

	b.Run("as8", func(b *testing.B) {
		ases := make([]string, 8)
		for i := range ases {
			ases[i] = fmt.Sprintf("AS%d", i+1)
		}
		links := []nettrails.ASLink{
			{A: "AS1", B: "AS2", Rel: nettrails.PeerOf},
			{A: "AS1", B: "AS3", Rel: nettrails.CustomerOf},
			{A: "AS2", B: "AS4", Rel: nettrails.CustomerOf},
			{A: "AS3", B: "AS5", Rel: nettrails.CustomerOf},
			{A: "AS4", B: "AS6", Rel: nettrails.CustomerOf},
			{A: "AS5", B: "AS7", Rel: nettrails.CustomerOf},
			{A: "AS6", B: "AS8", Rel: nettrails.CustomerOf},
			{A: "AS7", B: "AS8", Rel: nettrails.PeerOf},
		}
		d, err := nettrails.NewBGPDeployment(ases, links, nettrails.Config{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		events, err := d.GenerateTrace(200, 1)
		if err != nil {
			b.Fatal(err)
		}
		if err := d.ReplayTrace(events); err != nil {
			b.Fatal(err)
		}
		sweep(b, d, ases)
	})

	b.Run("as1000", func(b *testing.B) {
		g, err := routeviews.GenerateASGraph(routeviews.ASGraphOptions{Nodes: 1000, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		d, err := nettrails.NewBGPDeployment(g.ASes, scenario.Links(g), nettrails.Config{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		// Seed real routing state without a full-graph cascade per event:
		// a handful of origination waves through the speakers.
		for i := 0; i < 4; i++ {
			if err := d.Originate(g.ASes[i*251%len(g.ASes)], fmt.Sprintf("10.%d.0.0/16", i)); err != nil {
				b.Fatal(err)
			}
		}
		sweep(b, d, g.ASes)
	})
}

// BenchmarkEvalDeltaThroughput: microbenchmark of the single-node
// incremental engine (deltas through a two-way join with aggregate).
func BenchmarkEvalDeltaThroughput(b *testing.B) {
	sys := mustSystem(b, nettrails.MinCost, 2, nil)
	n1, _ := sys.Engine.Node("n1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := int64(i%50 + 1)
		t := nettrails.Tuple("link", nettrails.Addr("n1"), nettrails.Addr("n2"), nettrails.Int(c))
		if err := n1.InsertFact(t); err != nil {
			b.Fatal(err)
		}
		sys.Engine.RunQuiescent()
		if err := n1.DeleteFact(t); err != nil {
			b.Fatal(err)
		}
		sys.Engine.RunQuiescent()
	}
}

// BenchmarkQueryCache (E11): the serving-path win of the per-version
// sub-proof cache. Repeated pinned-version queries against an immutable
// snapshot skip re-traversal entirely:
//   - cold:      a full provgraph traversal per query (Snapshot.Query)
//   - warm:      the same query through the sub-proof cache
//     (Snapshot.CachedQuery; everything after the first is a hit)
//   - http-warm: the same through POST /query, i.e. cache win net of
//     HTTP + JSON overhead
//
// Hit/miss counters are asserted so a silently dead cache fails the
// benchmark instead of reporting fiction.
func BenchmarkQueryCache(b *testing.B) {
	side := 5
	n := side * side
	e, err := engine.New(nettrails.MinCost, nettrails.NodeNames(n), engine.Options{
		Seed: 1, Provenance: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, ed := range protocols.GridTopology(side, side, 1) {
		if err := e.AddBiLink(ed.A, ed.B, ed.Cost); err != nil {
			b.Fatal(err)
		}
	}
	e.RunQuiescent()
	pub, err := server.NewPublisher(e, server.DefaultRetain)
	if err != nil {
		b.Fatal(err)
	}
	snap := pub.Current()
	// Corner-to-corner lineage: the most expensive query type over the
	// longest derivation chains the grid offers.
	mc := nettrails.Tuple("mincost",
		nettrails.Addr("n1"), nettrails.Addr(protocols.NodeName(n)), nettrails.Int(int64(2*(side-1))))

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := snap.Query(provquery.Lineage, "n1", mc, provquery.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("warm", func(b *testing.B) {
		hits := 0
		for i := 0; i < b.N; i++ {
			res, hit, err := snap.CachedQuery(provquery.Lineage, "n1", mc, provquery.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if hit {
				hits++
			}
			if res.Root == nil {
				b.Fatal("no proof")
			}
		}
		if b.N > 1 && hits == 0 {
			b.Fatal("sub-proof cache never hit")
		}
		b.ReportMetric(float64(hits)/float64(b.N), "hits/op")
	})

	// The HTTP pair uses count queries: their responses are a few bytes,
	// so the comparison isolates traversal-vs-cache on the serving path
	// instead of measuring JSON serialization of a big proof tree.
	ts := httptest.NewServer(server.New(pub, server.Info{Protocol: "mincost"}))
	defer ts.Close()
	postQuery := func(b *testing.B, body string, wantCache string) {
		b.Helper()
		resp, err := ts.Client().Post(ts.URL+"/query", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		if got := resp.Header.Get("X-Cache"); wantCache != "" && got != wantCache {
			b.Fatalf("X-Cache = %s, want %s", got, wantCache)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	tupleLit := fmt.Sprintf("mincost(@'n1','%s',%d)", protocols.NodeName(n), 2*(side-1))

	// coldKey never repeats, not even across the growing b.N reruns a
	// benchmark makes.
	coldKey := 1000000
	b.Run("http-cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// A distinct (never-pruning) threshold per request gives each
			// its own cache key: every query is a full traversal, like a
			// server without the sub-proof cache.
			coldKey++
			body := fmt.Sprintf(`{"type":"count","tuple":"%s","version":%d,"options":{"threshold":%d}}`,
				tupleLit, snap.Version, coldKey)
			postQuery(b, body, "MISS")
		}
	})

	b.Run("http-warm", func(b *testing.B) {
		body := fmt.Sprintf(`{"type":"count","tuple":"%s","version":%d}`, tupleLit, snap.Version)
		startHits, _ := snap.CacheCounters()
		want := ""
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			postQuery(b, body, want)
			want = "HIT" // everything after the first request must hit
		}
		b.StopTimer()
		// Delta, not the cumulative counter: the snapshot's cache is
		// shared with the other sub-benchmarks and earlier b.N reruns.
		hits, _ := snap.CacheCounters()
		b.ReportMetric(float64(hits-startHits)/float64(b.N), "hits/op")
	})
}

// BenchmarkAPIBatch (E12): the v1 API's batch endpoint, driven
// through the public Go SDK against a pinned snapshot. The workload is
// 12 count queries (4 distinct deep proofs, each repeated 3x; count
// responses are a few bytes, so the sweep isolates traversal-vs-cache
// on the serving path instead of JSON size):
//
//   - sequential:     12 individual POST /v1/query round trips
//   - batch:          the same 12 queries in one POST /v1/query/batch —
//     repeats inside the batch hit the snapshot's shared sub-proof
//     cache (hits/op asserts it), and 11 round trips disappear
//   - batch-nosharing: 12 all-distinct queries in one batch — every
//     element is a full cold traversal, i.e. what the batch would cost
//     without the shared cache
//
// Cache keys are fresh per iteration, so every iteration pays the same
// cold work and the comparison stays honest across reruns.
func BenchmarkAPIBatch(b *testing.B) {
	side := 4
	n := side * side
	e, err := engine.New(nettrails.MinCost, nettrails.NodeNames(n), engine.Options{
		Seed: 1, Provenance: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, ed := range protocols.GridTopology(side, side, 1) {
		if err := e.AddBiLink(ed.A, ed.B, ed.Cost); err != nil {
			b.Fatal(err)
		}
	}
	e.RunQuiescent()
	pub, err := server.NewPublisher(e, server.DefaultRetain)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(server.New(pub, server.Info{Protocol: "mincost"}))
	defer ts.Close()
	c, err := client.New(ts.URL, client.WithHTTPClient(ts.Client()))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := c.PinCurrent(context.Background()); err != nil {
		b.Fatal(err)
	}

	distinct := []string{
		"mincost(@'n1','n16',6)",
		"mincost(@'n1','n4',3)",
		"mincost(@'n1','n13',3)",
		"mincost(@'n1','n8',4)",
	}
	const repeats = 3
	// keyBase mints per-iteration-fresh (never-pruning) thresholds, i.e.
	// fresh cache keys, and never repeats across the growing b.N reruns
	// (staying within the API's maxOptionValue bound).
	keyBase := 1000
	// workload builds the 12 queries; allDistinct breaks the in-batch
	// repetition so no element can reuse another's sub-proof.
	workload := func(key int, allDistinct bool) []client.BatchQuery {
		var qs []client.BatchQuery
		for r := 0; r < repeats; r++ {
			for i, tuple := range distinct {
				k := key + i
				if allDistinct {
					k = key + r*len(distinct) + i
				}
				qs = append(qs, client.BatchQuery{
					Type: "count", Tuple: tuple,
					Options: &client.Options{Threshold: k},
				})
			}
		}
		return qs
	}
	step := repeats * len(distinct)
	checkBatch := func(b *testing.B, res *client.BatchResult) {
		b.Helper()
		for _, item := range res.Results {
			if item.Err != nil || item.Result.Count == nil {
				b.Fatalf("batch item: %+v", item)
			}
		}
	}

	b.Run("sequential", func(b *testing.B) {
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			keyBase += step
			for _, q := range workload(keyBase, false) {
				res, err := c.Count(ctx, q.Tuple, client.WithOptions(*q.Options))
				if err != nil {
					b.Fatal(err)
				}
				if res.Count == nil {
					b.Fatal("no count")
				}
			}
		}
	})

	b.Run("batch", func(b *testing.B) {
		ctx := context.Background()
		hits := 0
		for i := 0; i < b.N; i++ {
			keyBase += step
			res, err := c.QueryBatch(ctx, workload(keyBase, false))
			if err != nil {
				b.Fatal(err)
			}
			checkBatch(b, res)
			hits += res.CacheHits
		}
		want := (repeats - 1) * len(distinct)
		if hits < want*b.N {
			b.Fatalf("batch cache sharing broken: %d hits over %d iterations, want %d/iter",
				hits, b.N, want)
		}
		b.ReportMetric(float64(hits)/float64(b.N), "hits/op")
	})

	b.Run("batch-nosharing", func(b *testing.B) {
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			keyBase += step
			res, err := c.QueryBatch(ctx, workload(keyBase, true))
			if err != nil {
				b.Fatal(err)
			}
			checkBatch(b, res)
		}
	})
}

// BenchmarkShardedQuery (E13): the sharded serving tier. The same
// deep corner-to-corner lineage is answered three ways over identical
// deterministic state:
//
//   - direct:            one single-process nettrailsd holding every
//     partition (the PR-4 baseline)
//   - gateway-colocated: a 3-shard deployment queried through a
//     gateway colocated with shard 0 — local walk steps read the
//     colocated snapshot, the rest fan out over HTTP
//   - gateway-remote:    the same 3 shards behind a pure gateway
//     (cmd/nettrailsgw's shape): every partition read crosses HTTP
//
// Fresh never-pruning thresholds per iteration keep every query a
// cold traversal, so the sweep prices federation itself (the
// hops/op metric counts real downstream shard requests) rather than
// result caching. On the 1-CPU dev container the absolute numbers
// mostly show HTTP round-trip cost; see docs/DEPLOYMENT.md.
func BenchmarkShardedQuery(b *testing.B) {
	side := 4
	buildEngine := func() *engine.Engine {
		e, err := engine.New(nettrails.MinCost, nettrails.NodeNames(side*side), engine.Options{
			Seed: 1, Provenance: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, ed := range protocols.GridTopology(side, side, 1) {
			if err := e.AddBiLink(ed.A, ed.B, ed.Cost); err != nil {
				b.Fatal(err)
			}
		}
		e.RunQuiescent()
		return e
	}

	singlePub, err := server.NewPublisher(buildEngine(), server.DefaultRetain)
	if err != nil {
		b.Fatal(err)
	}
	single := httptest.NewServer(server.New(singlePub, server.Info{Protocol: "mincost"}))
	defer single.Close()

	const total = 3
	urls := make([]string, total)
	for i := 0; i < total; i++ {
		pub, err := server.NewShardedPublisher(buildEngine(), server.DefaultRetain,
			server.ShardSpec{Index: i, Total: total})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(server.New(pub, server.Info{Protocol: "mincost"}))
		defer ts.Close()
		urls[i] = ts.URL
	}

	remoteGW, err := gateway.New(context.Background(), urls,
		gateway.WithInfo(server.Info{Protocol: "mincost"}))
	if err != nil {
		b.Fatal(err)
	}
	remote := httptest.NewServer(remoteGW)
	defer remote.Close()

	localPub, err := server.NewShardedPublisher(buildEngine(), server.DefaultRetain,
		server.ShardSpec{Index: 0, Total: total})
	if err != nil {
		b.Fatal(err)
	}
	colocGW, err := gateway.New(context.Background(), urls[1:],
		gateway.WithLocal(localPub), gateway.WithInfo(server.Info{Protocol: "mincost"}))
	if err != nil {
		b.Fatal(err)
	}
	coloc := httptest.NewServer(colocGW)
	defer coloc.Close()

	// Fresh cache keys per query across all reruns.
	keyBase := 1000
	run := func(b *testing.B, url string, countHops bool) {
		hops := 0
		for i := 0; i < b.N; i++ {
			keyBase++
			body := fmt.Sprintf(
				`{"type":"lineage","tuple":"mincost(@'n1','n16',6)","version":1,"options":{"threshold":%d}}`,
				keyBase)
			resp, err := http.Post(url+"/v1/query", "application/json", strings.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			out, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				b.Fatalf("query: %v %d %s", err, resp.StatusCode, out)
			}
			if countHops {
				h, _ := strconv.Atoi(resp.Header.Get("X-Shard-Hops"))
				hops += h
			}
		}
		if countHops {
			b.ReportMetric(float64(hops)/float64(b.N), "hops/op")
		}
	}

	b.Run("direct", func(b *testing.B) { run(b, single.URL, false) })
	b.Run("gateway-colocated", func(b *testing.B) { run(b, coloc.URL, true) })
	b.Run("gateway-remote", func(b *testing.B) { run(b, remote.URL, true) })
}
