package main

import (
	"testing"

	"repro/tools/analyzers/analysis"
	"repro/tools/analyzers/ctxflow"
	"repro/tools/analyzers/errenvelope"
	"repro/tools/analyzers/frozenwrite"
	"repro/tools/analyzers/load"
	"repro/tools/analyzers/mapdeterminism"
	"repro/tools/analyzers/multichecker"
	"repro/tools/analyzers/walltime"
)

// TestRepoSelfHostClean sweeps the whole module with every analyzer
// and requires zero findings: every true positive has been fixed and
// every deliberate exception carries a justified //lint:allow. This is
// the same sweep `make vet` runs through go vet -vettool, kept inside
// `go test ./...` so the invariants hold even where only the tier-1
// command runs.
func TestRepoSelfHostClean(t *testing.T) {
	if testing.Short() {
		t.Skip("self-host sweep shells out to go list -export over the module")
	}
	analyzers := []*analysis.Analyzer{
		mapdeterminism.Analyzer,
		frozenwrite.Analyzer,
		ctxflow.Analyzer,
		errenvelope.Analyzer,
		walltime.Analyzer,
	}
	root, err := load.ModuleRoot(".")
	if err != nil {
		t.Fatalf("finding module root: %v", err)
	}
	pkgs, err := load.Packages(root, "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	analyzed := 0
	for _, pkg := range pkgs {
		for _, d := range multichecker.RunAnalyzers(pkg, analyzers) {
			t.Errorf("%s: %s: %s", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
		analyzed++
	}
	t.Logf("analyzed %d packages", analyzed)
}
