// nettrailsvet is the repo's custom static-analysis suite: five
// analyzers that enforce the invariants the whole reproduction rests
// on — determinism (mapdeterminism, walltime), snapshot immutability
// (frozenwrite), the cancellation chain (ctxflow), and the v1 error
// contract (errenvelope). See docs/ANALYZERS.md for what each one
// enforces and why.
//
// It runs two ways:
//
//	go vet -vettool=$(pwd)/bin/nettrailsvet ./...   # make vet / CI
//	go run ./cmd/nettrailsvet ./...                 # standalone
//
// Findings are suppressed per line with a justified
// `//lint:allow <analyzer> <why>` comment.
package main

import (
	"repro/tools/analyzers/ctxflow"
	"repro/tools/analyzers/errenvelope"
	"repro/tools/analyzers/frozenwrite"
	"repro/tools/analyzers/mapdeterminism"
	"repro/tools/analyzers/multichecker"
	"repro/tools/analyzers/walltime"
)

func main() {
	multichecker.Main("nettrailsvet",
		mapdeterminism.Analyzer,
		frozenwrite.Analyzer,
		ctxflow.Analyzer,
		errenvelope.Analyzer,
		walltime.Analyzer,
	)
}
