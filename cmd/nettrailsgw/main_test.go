package main

import (
	"bufio"
	"context"
	"fmt"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/client"
	"repro/internal/testutil"
)

// buildBinary builds one of the repo's commands into a temp dir.
func buildBinary(t *testing.T, pkg, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// startProcess launches a daemon binary on an ephemeral port and
// returns the base URL it prints.
func startProcess(t *testing.T, bin string, args ...string) string {
	t.Helper()
	// Registered before the process-kill cleanup below, so the leak
	// verdict is reached after the process is gone and its stdout
	// scanner goroutine has drained to EOF.
	testutil.CheckGoroutines(t)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})
	urlCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		found := false
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 && !found {
				found = true
				urlCh <- strings.Fields(line[i+len("listening on "):])[0]
			}
		}
	}()
	select {
	case url := <-urlCh:
		return url
	case <-time.After(30 * time.Second):
		t.Fatalf("%s never reported its listen address", bin)
		return ""
	}
}

// TestVersionFlag: -version prints build metadata and exits 0.
func TestVersionFlag(t *testing.T) {
	bin := buildBinary(t, ".", "nettrailsgw")
	out, err := exec.Command(bin, "-version").CombinedOutput()
	if err != nil {
		t.Fatalf("-version: %v\n%s", err, out)
	}
	if text := string(out); !strings.Contains(text, "repro") || !strings.Contains(text, "go1") {
		t.Fatalf("-version output = %q", text)
	}
}

// TestRequireDataFlag: -require-data gates the gateway boot on every
// shard running a durable snapshot store, so deep-history guarantees
// hold deployment-wide.
func TestRequireDataFlag(t *testing.T) {
	nettrailsd := buildBinary(t, "repro/cmd/nettrailsd", "nettrailsd")
	nettrailsgw := buildBinary(t, ".", "nettrailsgw")

	// A storeless shard fails the gate before any serving starts.
	bare := startProcess(t, nettrailsd, "-listen", "127.0.0.1:0",
		"-protocol", "mincost", "-topology", "line", "-nodes", "3", "-churn", "0")
	out, err := exec.Command(nettrailsgw, "-peers", bare, "-require-data").CombinedOutput()
	if err == nil {
		t.Fatalf("-require-data accepted a storeless shard:\n%s", out)
	}
	if !strings.Contains(string(out), "without a snapshot store") {
		t.Fatalf("-require-data failure does not name the cause: %s", out)
	}

	// With -data on the shard, the same gate passes and the gateway
	// serves (and reports the shard's protocol).
	durable := startProcess(t, nettrailsd, "-listen", "127.0.0.1:0",
		"-protocol", "mincost", "-topology", "line", "-nodes", "3", "-churn", "0",
		"-data", t.TempDir())
	gwURL := startProcess(t, nettrailsgw,
		"-listen", "127.0.0.1:0", "-peers", durable, "-require-data")
	c, err := client.New(gwURL)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Protocol != "mincost" {
		t.Fatalf("gateway health = %+v", h)
	}
}

// TestSmokeShardedDeployment boots a real 3-shard deployment — three
// nettrailsd processes with -shard i/3 — federates them behind a
// nettrailsgw process, and drives the full query surface through the
// SDK.
func TestSmokeShardedDeployment(t *testing.T) {
	nettrailsd := buildBinary(t, "repro/cmd/nettrailsd", "nettrailsd")
	nettrailsgw := buildBinary(t, ".", "nettrailsgw")

	var peers []string
	for i := 0; i < 3; i++ {
		url := startProcess(t, nettrailsd,
			"-listen", "127.0.0.1:0",
			"-protocol", "mincost", "-topology", "grid", "-nodes", "9",
			"-shard", fmt.Sprintf("%d/3", i), "-churn", "0")
		peers = append(peers, url)
	}
	gwURL := startProcess(t, nettrailsgw,
		"-listen", "127.0.0.1:0", "-peers", strings.Join(peers, ","))

	c, err := client.New(gwURL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Protocol != "mincost" || h.Version == 0 {
		t.Fatalf("gateway health = %+v", h)
	}

	ns, err := c.Nodes(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns.Nodes) != 9 {
		t.Fatalf("gateway merged %d nodes, want 9", len(ns.Nodes))
	}

	// Cross-shard lineage: the corner-to-corner proof spans all three
	// shards' partitions.
	res, err := c.Lineage(ctx, "mincost(@'n1','n9',4)")
	if err != nil {
		t.Fatal(err)
	}
	if res.Proof == nil || !strings.Contains(res.Text, "mincost(@n1, n9, 4)") {
		t.Fatalf("federated lineage = %+v", res)
	}
	if res.Stats.Messages == 0 {
		t.Fatalf("federated lineage charged no modeled messages: %+v", res.Stats)
	}

	// State routes through the gateway to the owning shard.
	st, err := c.State(ctx, "n5", client.Rel("mincost"))
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Tables["mincost"]) == 0 {
		t.Fatalf("state via gateway = %+v", st)
	}

	// Batch shares one pinned version and the gateway's result cache.
	batch, err := c.QueryBatch(ctx, []client.BatchQuery{
		{Q: "bases of mincost(@'n1','n9',4)"},
		{Type: "count", Tuple: "mincost(@'n1','n9',4)"},
		{Q: "bases of mincost(@'n1','n9',4)"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 3 || batch.Results[1].Result.Count == nil {
		t.Fatalf("batch = %+v", batch)
	}
	if batch.CacheHits == 0 {
		t.Fatalf("repeated batch element was not cache-served: %+v", batch)
	}

	// Typed errors pass through the federation unchanged.
	if _, err := c.Lineage(ctx, "mincost(@'n1','n9',99)"); !client.IsCode(err, client.CodeNoProvenance) {
		t.Fatalf("unknown tuple error = %v", err)
	}

	// Querying a shard directly for a cross-shard traversal refuses
	// with wrong_shard — the gateway is the integration point.
	shard0, err := client.New(peers[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shard0.Lineage(ctx, "mincost(@'n1','n9',4)"); !client.IsCode(err, client.CodeWrongShard) {
		t.Fatalf("direct cross-shard query error = %v", err)
	}
}
