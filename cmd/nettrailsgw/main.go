// nettrailsgw is the federating query gateway of a sharded NetTrails
// deployment. Point it at every nettrailsd shard (-peers) and it
// serves the same /v1 query surface as a single daemon — answering
// each query by running the shared provenance graph walk itself and
// fanning batched, version-pinned partition reads out to the shards
// that own each vertex's node (see internal/gateway and
// docs/DEPLOYMENT.md).
//
// Usage:
//
//	nettrailsd -shard 0/3 -churn 0 -listen 127.0.0.1:8081 &
//	nettrailsd -shard 1/3 -churn 0 -listen 127.0.0.1:8082 &
//	nettrailsd -shard 2/3 -churn 0 -listen 127.0.0.1:8083 &
//	nettrailsgw -listen 127.0.0.1:8080 \
//	    -peers http://127.0.0.1:8081,http://127.0.0.1:8082,http://127.0.0.1:8083
//	curl -s localhost:8080/v1/healthz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/client"
	"repro/internal/buildinfo"
	"repro/internal/gateway"
	"repro/internal/server"
)

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "nettrailsgw: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	listen := flag.String("listen", "127.0.0.1:8080", "HTTP listen address (use :0 for an ephemeral port)")
	peers := flag.String("peers", "", "comma-separated base URLs of every nettrailsd shard (required)")
	maxDepth := flag.Int("maxdepth", 0, "cap the proof depth of every served query (0 = uncapped)")
	maxNodes := flag.Int("maxnodes", 0, "cap the proof vertices of every served query (0 = uncapped)")
	timeout := flag.Duration("timeout", 30*time.Second, "server-default deadline for each query's traversal and cap on per-request ?timeout= (0 disables)")
	requireData := flag.Bool("require-data", false, "refuse to start unless every shard runs a durable snapshot store (-data), so deep-history queries and disk-backed pins work deployment-wide")
	drain := flag.Duration("drain", 5*time.Second, "how long shutdown waits for in-flight HTTP queries to finish")
	showVersion := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *showVersion {
		buildinfo.PrintVersion("nettrailsgw")
		return
	}
	if *peers == "" {
		fail("-peers is required (comma-separated shard URLs)")
	}
	var urls []string
	for _, u := range strings.Split(*peers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}

	// The protocol label travels from the shards: ask one for its
	// health so /v1/healthz reports the same workload name everywhere.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	protocol := ""
	if c, err := client.New(urls[0]); err == nil {
		if h, err := c.Health(ctx); err == nil {
			protocol = h.Protocol
		}
	}
	if *requireData {
		// Deep-history guarantees hold only when every shard persists
		// its slice: a single storeless shard reintroduces
		// snapshot_evicted for any pin that aged out of its ring.
		for _, u := range urls {
			c, err := client.New(u)
			if err == nil {
				var h *client.Health
				if h, err = c.Health(ctx); err == nil && h.Store == nil {
					cancel()
					fail("-require-data: shard %s runs without a snapshot store (start it with -data)", u)
				}
			}
			if err != nil {
				cancel()
				fail("-require-data: shard %s: %v", u, err)
			}
		}
	}

	g, err := gateway.New(ctx, urls, gateway.WithInfo(server.Info{
		Protocol: protocol,
		MaxDepth: *maxDepth,
		MaxNodes: *maxNodes,
		Timeout:  *timeout,
	}))
	cancel()
	if err != nil {
		fail("%v", err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("nettrailsgw: listening on http://%s (protocol=%s shards=%d nodes=%d)\n",
		ln.Addr(), protocol, g.Shards(), len(g.Nodes()))

	httpSrv := &http.Server{Handler: g.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		if err != nil && err != http.ErrServerClosed && !errors.Is(err, net.ErrClosed) {
			fail("%v", err)
		}
	case sig := <-sigs:
		// Graceful shutdown: drain in-flight federated queries (their
		// downstream reads abort with them); a second signal aborts.
		fmt.Printf("nettrailsgw: %s: shutting down (draining for up to %s)\n", sig, *drain)
		sctx, scancel := context.WithTimeout(context.Background(), *drain)
		go func() {
			<-sigs
			scancel()
		}()
		if err := httpSrv.Shutdown(sctx); err != nil {
			scancel()
			fail("shutdown: %v", err)
		}
		scancel()
		if err := <-serveErr; err != nil && err != http.ErrServerClosed && !errors.Is(err, net.ErrClosed) {
			fail("%v", err)
		}
	}
	fmt.Println("nettrailsgw: stopped")
}
