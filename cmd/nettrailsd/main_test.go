package main

import (
	"bufio"
	"context"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/client"
	"repro/internal/testutil"
)

func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "nettrailsd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startDaemon launches nettrailsd on an ephemeral port and returns an
// SDK client for it plus the running process (for signal-driven
// tests), leaving the process running until test cleanup. The daemon's
// remaining output accumulates in the returned buffer.
func startDaemon(t *testing.T, args ...string) (*client.Client, *exec.Cmd, *syncBuffer) {
	t.Helper()
	// Registered before the process-kill cleanup below, so the leak
	// verdict is reached after the daemon is gone and its stdout
	// scanner goroutine has drained to EOF.
	testutil.CheckGoroutines(t)
	bin := buildBinary(t)
	cmd := exec.Command(bin, append([]string{"-listen", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})
	sc := bufio.NewScanner(stdout)
	deadline := time.After(30 * time.Second)
	urlCh := make(chan string, 1)
	out := &syncBuffer{eof: make(chan struct{})}
	go func() {
		// The loop ends at EOF, i.e. when the daemon exits and the pipe's
		// write end closes — after every line it ever printed is read.
		defer close(out.eof)
		found := false
		for sc.Scan() {
			line := sc.Text()
			out.append(line)
			if i := strings.Index(line, "listening on "); i >= 0 && !found {
				found = true
				urlCh <- strings.Fields(line[i+len("listening on "):])[0]
			}
		}
	}()
	select {
	case url := <-urlCh:
		c, err := client.New(url)
		if err != nil {
			t.Fatal(err)
		}
		return c, cmd, out
	case <-deadline:
		t.Fatal("daemon never reported its listen address")
		return nil, nil, nil
	}
}

// syncBuffer collects daemon output across goroutines; eof closes once
// every line the daemon ever printed has been collected.
type syncBuffer struct {
	mu    sync.Mutex
	lines []string
	eof   chan struct{}
}

func (b *syncBuffer) append(line string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lines = append(b.lines, line)
}

func (b *syncBuffer) contains(sub string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, l := range b.lines {
		if strings.Contains(l, sub) {
			return true
		}
	}
	return false
}

// TestVersionFlag: -version prints the build metadata and exits 0
// without starting a server.
func TestVersionFlag(t *testing.T) {
	bin := buildBinary(t)
	out, err := exec.Command(bin, "-version").CombinedOutput()
	if err != nil {
		t.Fatalf("-version: %v\n%s", err, out)
	}
	if text := string(out); !strings.Contains(text, "repro") || !strings.Contains(text, "go1") {
		t.Fatalf("-version output = %q", text)
	}
}

// TestSmokeSDKEndToEnd boots the daemon on the quickstart scenario
// (MINCOST, 3-node line) and drives the full v1 surface through the
// public Go SDK: health, build info, nodes, state, textual and typed
// queries, batch, and DOT export.
func TestSmokeSDKEndToEnd(t *testing.T) {
	c, _, _ := startDaemon(t, "-protocol", "mincost", "-topology", "line", "-nodes", "3")
	ctx := context.Background()

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Nodes != 3 || h.Version == 0 {
		t.Fatalf("health = %+v", h)
	}

	bi, err := c.ServerVersion(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if bi.Module != "repro" || !strings.HasPrefix(bi.GoVersion, "go") {
		t.Fatalf("server version = %+v", bi)
	}

	ns, err := c.Nodes(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns.Nodes) != 3 || ns.Nodes[0].Addr != "n1" {
		t.Fatalf("nodes = %+v", ns)
	}

	st, err := c.State(ctx, "n1", client.Rel("mincost"))
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Tables["mincost"]) == 0 {
		t.Fatalf("state = %+v", st)
	}

	res, err := c.Query(ctx, "lineage of mincost(@'n1','n3',2)")
	if err != nil {
		t.Fatal(err)
	}
	if res.Type != "lineage" || res.Proof == nil || !strings.Contains(res.Text, "mincost(@n1, n3, 2)") {
		t.Fatalf("query = %+v", res)
	}

	batch, err := c.QueryBatch(ctx, []client.BatchQuery{
		{Q: "bases of mincost(@'n1','n3',2)"},
		{Type: "count", Tuple: "mincost(@'n1','n3',2)"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 2 || batch.Results[0].Err != nil || batch.Results[1].Result.Count == nil {
		t.Fatalf("batch = %+v", batch)
	}

	dot, err := c.ProofDOT(ctx, "mincost(@'n1','n3',2)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot.Graph, "digraph provenance") {
		t.Fatalf("dot = %+v", dot)
	}

	// Typed errors flow through the daemon too.
	if _, err := c.Lineage(ctx, "mincost(@'n1','n3',99)"); !client.IsCode(err, client.CodeNoProvenance) {
		t.Fatalf("unknown tuple error = %v", err)
	}
}

// TestSmokeShardFlag: -shard i/N publishes only the owned slice,
// reports it on /v1/healthz and /v1/shards, and refuses state reads
// for nodes another shard owns.
func TestSmokeShardFlag(t *testing.T) {
	c, _, out := startDaemon(t, "-protocol", "mincost", "-topology", "grid", "-nodes", "9",
		"-shard", "1/3", "-churn", "50ms")
	ctx := context.Background()

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Shard 1 of 3 over the sorted n1..n9 owns positions 1,4,7.
	if h.Nodes != 3 {
		t.Fatalf("shard health reports %d nodes, want 3", h.Nodes)
	}

	sh, err := c.Shards(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Shard.Index != 1 || sh.Shard.Total != 3 ||
		len(sh.Nodes) != 3 || len(sh.AllNodes) != 9 || sh.Nodes[0] != "n2" {
		t.Fatalf("shards = %+v", sh)
	}

	if _, err := c.State(ctx, "n2"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.State(ctx, "n1"); !client.IsCode(err, client.CodeWrongShard) {
		t.Fatalf("state for unowned node = %v, want %s", err, client.CodeWrongShard)
	}

	// The daemon warns that wall-clock churn drifts sharded versions.
	deadline := time.Now().Add(10 * time.Second)
	for !out.contains("lets shard versions drift") {
		if time.Now().After(deadline) {
			t.Fatal("missing churn-drift warning in sharded daemon output")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Bad specs fail fast.
	bin := buildBinary(t)
	if err := exec.Command(bin, "-shard", "3/3").Run(); err == nil {
		t.Fatal("-shard 3/3 unexpectedly accepted")
	}
	if err := exec.Command(bin, "-shard", "banana").Run(); err == nil {
		t.Fatal("-shard banana unexpectedly accepted")
	}
	// Trailing garbage must not parse as a plausible shard.
	if err := exec.Command(bin, "-shard", "1/3x").Run(); err == nil {
		t.Fatal("-shard 1/3x unexpectedly accepted")
	}
}

// TestSmokeChurnAdvancesVersionsAndPinnedReadsAgree checks the daemon
// end to end through the SDK: churn advances snapshot versions while
// concurrent version-pinned queries return identical results.
func TestSmokeChurnAdvancesVersionsAndPinnedReadsAgree(t *testing.T) {
	c, _, _ := startDaemon(t, "-protocol", "mincost", "-topology", "ring", "-nodes", "4",
		"-churn", "30ms")
	ctx := context.Background()

	version := func() uint64 {
		h, err := c.Health(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return h.Version
	}

	v0 := version()
	deadline := time.Now().Add(30 * time.Second)
	for version() == v0 {
		if time.Now().After(deadline) {
			t.Fatal("snapshot version never advanced under churn")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Pin whatever is current and read it twice concurrently.
	v := version()
	var wg sync.WaitGroup
	replies := make([]*client.QueryResult, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			replies[i], errs[i] = c.Bases(ctx, "mincost(@'n1','n3',2)", client.At(v))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		// The pinned version may age out mid-flight under churn; that
		// is a clean, typed outcome, not a failure.
		if err != nil && !client.IsCode(err, client.CodeSnapshotEvicted) {
			t.Fatalf("pinned read %d: %v", i, err)
		}
	}
	if errs[0] == nil && errs[1] == nil {
		// Cache observability differs per request; the snapshot-determined
		// payload must not.
		replies[0].Cache, replies[1].Cache = client.CacheInfo{}, client.CacheInfo{}
		if !reflect.DeepEqual(replies[0], replies[1]) {
			t.Fatalf("pinned reads diverged:\n%+v\nvs\n%+v", replies[0], replies[1])
		}
		if replies[0].Version != v {
			t.Fatalf("pinned read answered version %d, want %d", replies[0].Version, v)
		}
	}
}

// TestSmokeDataFlag boots the daemon with a durable snapshot store,
// drives a deep-history query through the SDK, restarts the process on
// the same directory, and requires the version sequence to resume and
// the history to survive.
func TestSmokeDataFlag(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-protocol", "mincost", "-topology", "line", "-nodes", "3",
		"-churn", "20ms", "-retain", "4", "-data", dir, "-store-sync", "8"}
	c, cmd, out := startDaemon(t, args...)
	ctx := context.Background()

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Store == nil {
		t.Fatalf("health with -data = %+v (store missing)", h)
	}
	if !out.contains("snapshot store at") {
		t.Fatal("daemon did not report its snapshot store on startup")
	}

	// Deep history: the base link fact exists from the first version.
	hf, err := c.HistoryFirst(ctx, "link(@'n1','n2',1)", "")
	if err != nil {
		t.Fatal(err)
	}
	if hf.Node != "n1" || hf.FirstVersion == 0 {
		t.Fatalf("history/first = %+v", hf)
	}

	// Let churn advance the version chain, then shut down cleanly.
	deadline := time.Now().Add(30 * time.Second)
	v := h.Version
	for v <= h.Version {
		if time.Now().After(deadline) {
			t.Fatal("version never advanced under churn")
		}
		time.Sleep(20 * time.Millisecond)
		h2, err := c.Health(ctx)
		if err != nil {
			t.Fatal(err)
		}
		v = h2.Version
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-out.eof:
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit within 30s of SIGTERM")
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exited uncleanly: %v", err)
	}

	// Restart over the same directory: the sequence resumes past the
	// last served version and early history still answers.
	c2, _, _ := startDaemon(t, args...)
	h2, err := c2.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Version <= v {
		t.Fatalf("restart minted version %d, want > %d", h2.Version, v)
	}
	if h2.Store == nil || h2.Store.Oldest != 1 {
		t.Fatalf("restarted store health = %+v", h2.Store)
	}
	hf2, err := c2.HistoryFirst(ctx, "link(@'n1','n2',1)", "")
	if err != nil {
		t.Fatal(err)
	}
	if hf2.FirstVersion != hf.FirstVersion {
		t.Fatalf("first version drifted across restart: %d vs %d", hf2.FirstVersion, hf.FirstVersion)
	}

	// Store knobs without -data fail the boot.
	bin := buildBinary(t)
	if err := exec.Command(bin, "-store-retain", "5").Run(); err == nil {
		t.Fatal("-store-retain without -data unexpectedly accepted")
	}
}

// TestGracefulShutdown sends SIGTERM to a churning daemon and requires
// a clean exit: the churn loop stops at an epoch boundary, in-flight
// queries drain through http.Server.Shutdown, and the process reports
// "stopped" with exit status 0 instead of dying mid-epoch.
func TestGracefulShutdown(t *testing.T) {
	c, cmd, out := startDaemon(t, "-protocol", "mincost", "-topology", "ring", "-nodes", "4",
		"-churn", "20ms", "-drain", "10s")

	// Make sure the daemon is really serving (and churning) first.
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond) // let at least one churn tick land

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Wait for output EOF first: the daemon exiting closes the pipe's
	// write end, and only then is calling Wait (which closes the read
	// end) free of losing the final lines.
	select {
	case <-out.eof:
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit within 30s of SIGTERM")
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exited uncleanly after SIGTERM: %v", err)
	}
	if !out.contains("shutting down") || !out.contains("nettrailsd: stopped") {
		t.Fatalf("missing shutdown messages in output: %v", out.lines)
	}
	// The listener must actually be gone.
	if _, err := c.Health(context.Background()); err == nil {
		t.Fatal("daemon still serving after clean exit")
	}
}
