package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "nettrailsd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startDaemon launches nettrailsd on an ephemeral port and returns its
// base URL, leaving the process running until test cleanup.
func startDaemon(t *testing.T, args ...string) string {
	t.Helper()
	bin := buildBinary(t)
	cmd := exec.Command(bin, append([]string{"-listen", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})
	sc := bufio.NewScanner(stdout)
	deadline := time.After(30 * time.Second)
	urlCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				urlCh <- strings.Fields(line[i+len("listening on "):])[0]
				return
			}
		}
	}()
	select {
	case url := <-urlCh:
		return url
	case <-deadline:
		t.Fatal("daemon never reported its listen address")
		return ""
	}
}

// TestSmokeHealthzAndQuery boots the daemon on the quickstart scenario
// (MINCOST, 3-node line) and drives the two core endpoints.
func TestSmokeHealthzAndQuery(t *testing.T) {
	url := startDaemon(t, "-protocol", "mincost", "-topology", "line", "-nodes", "3")

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		OK      bool   `json:"ok"`
		Nodes   int    `json:"nodes"`
		Version uint64 `json:"version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !h.OK || h.Nodes != 3 || h.Version == 0 {
		t.Fatalf("healthz = %+v", h)
	}

	resp, err = http.Post(url+"/query", "application/json",
		strings.NewReader(`{"q":"lineage of mincost(@'n1','n3',2)"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	var q struct {
		Type  string          `json:"type"`
		Proof json.RawMessage `json:"proof"`
		Text  string          `json:"text"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&q); err != nil {
		t.Fatal(err)
	}
	if q.Type != "lineage" || len(q.Proof) == 0 || !strings.Contains(q.Text, "mincost(@n1, n3, 2)") {
		t.Fatalf("query = %+v", q)
	}
}

// TestSmokeChurnAdvancesVersionsAndPinnedReadsAgree checks the daemon
// end to end: churn advances snapshot versions while concurrent
// version-pinned queries stay byte-identical.
func TestSmokeChurnAdvancesVersionsAndPinnedReadsAgree(t *testing.T) {
	url := startDaemon(t, "-protocol", "mincost", "-topology", "ring", "-nodes", "4",
		"-churn", "30ms")

	version := func() uint64 {
		resp, err := http.Get(url + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h struct {
			Version uint64 `json:"version"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h.Version
	}

	v0 := version()
	deadline := time.Now().Add(30 * time.Second)
	for version() == v0 {
		if time.Now().After(deadline) {
			t.Fatal("snapshot version never advanced under churn")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Pin whatever is current and read it twice concurrently.
	v := version()
	body := fmt.Sprintf(`{"q":"bases of mincost(@'n1','n3',2)","version":%d}`, v)
	var wg sync.WaitGroup
	replies := make([][]byte, 2)
	codes := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(url+"/query", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			if _, err := buf.ReadFrom(resp.Body); err != nil {
				t.Error(err)
				return
			}
			codes[i] = resp.StatusCode
			replies[i] = buf.Bytes()
		}(i)
	}
	wg.Wait()
	if codes[0] != codes[1] || !bytes.Equal(replies[0], replies[1]) {
		t.Fatalf("pinned reads diverged:\n%d %s\nvs\n%d %s",
			codes[0], replies[0], codes[1], replies[1])
	}
}
