package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "nettrailsd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startDaemon launches nettrailsd on an ephemeral port and returns its
// base URL plus the running process (for signal-driven tests), leaving
// the process running until test cleanup. The daemon's remaining output
// accumulates in the returned buffer.
func startDaemon(t *testing.T, args ...string) (string, *exec.Cmd, *syncBuffer) {
	t.Helper()
	bin := buildBinary(t)
	cmd := exec.Command(bin, append([]string{"-listen", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})
	sc := bufio.NewScanner(stdout)
	deadline := time.After(30 * time.Second)
	urlCh := make(chan string, 1)
	out := &syncBuffer{eof: make(chan struct{})}
	go func() {
		// The loop ends at EOF, i.e. when the daemon exits and the pipe's
		// write end closes — after every line it ever printed is read.
		defer close(out.eof)
		found := false
		for sc.Scan() {
			line := sc.Text()
			out.append(line)
			if i := strings.Index(line, "listening on "); i >= 0 && !found {
				found = true
				urlCh <- strings.Fields(line[i+len("listening on "):])[0]
			}
		}
	}()
	select {
	case url := <-urlCh:
		return url, cmd, out
	case <-deadline:
		t.Fatal("daemon never reported its listen address")
		return "", nil, nil
	}
}

// syncBuffer collects daemon output across goroutines; eof closes once
// every line the daemon ever printed has been collected.
type syncBuffer struct {
	mu    sync.Mutex
	lines []string
	eof   chan struct{}
}

func (b *syncBuffer) append(line string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lines = append(b.lines, line)
}

func (b *syncBuffer) contains(sub string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, l := range b.lines {
		if strings.Contains(l, sub) {
			return true
		}
	}
	return false
}

// TestSmokeHealthzAndQuery boots the daemon on the quickstart scenario
// (MINCOST, 3-node line) and drives the two core endpoints.
func TestSmokeHealthzAndQuery(t *testing.T) {
	url, _, _ := startDaemon(t, "-protocol", "mincost", "-topology", "line", "-nodes", "3")

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		OK      bool   `json:"ok"`
		Nodes   int    `json:"nodes"`
		Version uint64 `json:"version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !h.OK || h.Nodes != 3 || h.Version == 0 {
		t.Fatalf("healthz = %+v", h)
	}

	resp, err = http.Post(url+"/query", "application/json",
		strings.NewReader(`{"q":"lineage of mincost(@'n1','n3',2)"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	var q struct {
		Type  string          `json:"type"`
		Proof json.RawMessage `json:"proof"`
		Text  string          `json:"text"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&q); err != nil {
		t.Fatal(err)
	}
	if q.Type != "lineage" || len(q.Proof) == 0 || !strings.Contains(q.Text, "mincost(@n1, n3, 2)") {
		t.Fatalf("query = %+v", q)
	}
}

// TestSmokeChurnAdvancesVersionsAndPinnedReadsAgree checks the daemon
// end to end: churn advances snapshot versions while concurrent
// version-pinned queries stay byte-identical.
func TestSmokeChurnAdvancesVersionsAndPinnedReadsAgree(t *testing.T) {
	url, _, _ := startDaemon(t, "-protocol", "mincost", "-topology", "ring", "-nodes", "4",
		"-churn", "30ms")

	version := func() uint64 {
		resp, err := http.Get(url + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h struct {
			Version uint64 `json:"version"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h.Version
	}

	v0 := version()
	deadline := time.Now().Add(30 * time.Second)
	for version() == v0 {
		if time.Now().After(deadline) {
			t.Fatal("snapshot version never advanced under churn")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Pin whatever is current and read it twice concurrently.
	v := version()
	body := fmt.Sprintf(`{"q":"bases of mincost(@'n1','n3',2)","version":%d}`, v)
	var wg sync.WaitGroup
	replies := make([][]byte, 2)
	codes := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(url+"/query", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			if _, err := buf.ReadFrom(resp.Body); err != nil {
				t.Error(err)
				return
			}
			codes[i] = resp.StatusCode
			replies[i] = buf.Bytes()
		}(i)
	}
	wg.Wait()
	if codes[0] != codes[1] || !bytes.Equal(replies[0], replies[1]) {
		t.Fatalf("pinned reads diverged:\n%d %s\nvs\n%d %s",
			codes[0], replies[0], codes[1], replies[1])
	}
}

// TestGracefulShutdown sends SIGTERM to a churning daemon and requires
// a clean exit: the churn loop stops at an epoch boundary, in-flight
// queries drain through http.Server.Shutdown, and the process reports
// "stopped" with exit status 0 instead of dying mid-epoch.
func TestGracefulShutdown(t *testing.T) {
	url, cmd, out := startDaemon(t, "-protocol", "mincost", "-topology", "ring", "-nodes", "4",
		"-churn", "20ms", "-drain", "10s")

	// Make sure the daemon is really serving (and churning) first.
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	time.Sleep(60 * time.Millisecond) // let at least one churn tick land

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Wait for output EOF first: the daemon exiting closes the pipe's
	// write end, and only then is calling Wait (which closes the read
	// end) free of losing the final lines.
	select {
	case <-out.eof:
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit within 30s of SIGTERM")
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exited uncleanly after SIGTERM: %v", err)
	}
	if !out.contains("shutting down") || !out.contains("nettrailsd: stopped") {
		t.Fatalf("missing shutdown messages in output: %v", out.lines)
	}
	// The listener must actually be gone.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("daemon still serving after clean exit")
	}
}
