// nettrailsd serves provenance queries over HTTP against a live
// NetTrails simulation — the daemon form of the paper's interactive
// demonstration. It boots the same protocol/topology scenarios as
// cmd/nettrails, keeps the simulation advancing with periodic topology
// churn, and publishes an immutable snapshot after every epoch so any
// number of concurrent HTTP readers query consistent virtual instants
// without ever blocking the simulation (see internal/server and
// docs/API.md).
//
// Usage examples:
//
//	nettrailsd -listen 127.0.0.1:8080
//	nettrailsd -protocol pathvector -topology grid -nodes 16 -churn 100ms
//	curl -s localhost:8080/v1/healthz
//	curl -s -X POST localhost:8080/v1/query \
//	     -d '{"q":"lineage of mincost(@'\''n1'\'','\''n3'\'',2)"}'
//
// With -shard i/N the daemon publishes and serves only its slice of
// the network's provenance partitions; run N such processes and put
// cmd/nettrailsgw in front to federate queries across them (see
// docs/DEPLOYMENT.md for the full topology walkthrough).
//
// The HTTP surface is versioned under /v1/ (legacy unversioned paths
// remain as deprecated aliases); repro/client is the typed Go SDK for
// it. See docs/API.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	nettrails "repro"
	"repro/internal/buildinfo"
	"repro/internal/nettransport"
	"repro/internal/protocols"
	"repro/internal/provstore"
	"repro/internal/server"
)

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "nettrailsd: "+format+"\n", args...)
	os.Exit(1)
}

// parseShard parses the -shard flag's "i/N" form (0-based index).
// An empty value means unsharded. Parsing is strict — a malformed
// spec must fail the boot, never run as a plausible-looking shard.
func parseShard(s string) (server.ShardSpec, error) {
	if s == "" {
		return server.ShardSpec{}, nil
	}
	var spec server.ShardSpec
	idx, total, ok := strings.Cut(s, "/")
	if ok {
		var err1, err2 error
		spec.Index, err1 = strconv.Atoi(idx)
		spec.Total, err2 = strconv.Atoi(total)
		ok = err1 == nil && err2 == nil
	}
	if !ok {
		return spec, fmt.Errorf("bad -shard %q (want \"i/N\", e.g. 0/3)", s)
	}
	if spec.Total < 1 || spec.Index < 0 || spec.Index >= spec.Total {
		return spec, fmt.Errorf("bad -shard %q: need 0 <= i < N", s)
	}
	return spec, nil
}

func main() {
	listen := flag.String("listen", "127.0.0.1:8080", "HTTP listen address (use :0 for an ephemeral port)")
	protocol := flag.String("protocol", "mincost", "mincost, pathvector, dsr, distancevector")
	topology := flag.String("topology", "line", "line, ring, star, grid, random")
	nodes := flag.Int("nodes", 4, "number of nodes (grid uses the nearest square)")
	cost := flag.Int64("cost", 1, "link cost for regular topologies")
	seed := flag.Int64("seed", 1, "random seed")
	parallelism := flag.Int("parallelism", runtime.NumCPU(), "epoch-scheduler workers (<=1 serial, results identical)")
	churn := flag.Duration("churn", 200*time.Millisecond, "wall-clock interval between link flaps keeping the simulation advancing (0 disables)")
	retain := flag.Int("retain", server.DefaultRetain, "how many recent snapshot versions stay pinnable")
	drain := flag.Duration("drain", 5*time.Second, "how long shutdown waits for in-flight HTTP queries to finish")
	maxDepth := flag.Int("maxdepth", 0, "cap the proof depth of every served query (0 = uncapped)")
	maxNodes := flag.Int("maxnodes", 0, "cap the proof vertices of every served query (0 = uncapped)")
	timeout := flag.Duration("timeout", 30*time.Second, "server-default deadline for each query's traversal and cap on per-request ?timeout= (0 disables)")
	shard := flag.String("shard", "", "serve only shard i of N (\"i/N\", 0-based): publish this slice of the provenance partitions and answer wrong_shard for the rest; federate with nettrailsgw")
	transport := flag.String("transport", "mem", "mem (single process) or tcp (one member of a multi-process engine cluster; implies the shard from -self/-peers)")
	peers := flag.String("peers", "", "comma-separated host:port list of every cluster member's engine port, in rank order (tcp only)")
	self := flag.Int("self", 0, "this process's rank in -peers (tcp only)")
	data := flag.String("data", "", "directory for the on-disk snapshot store: every published version persists there, pinned reads of ring-evicted versions fall back to it, and a restart resumes the version sequence (empty disables)")
	storeRetain := flag.Int("store-retain", 0, "how many newest versions the snapshot store keeps on disk; older segments are deleted whole (0 keeps everything; needs -data)")
	storeSync := flag.Int("store-sync", 1, "fsync the snapshot store every N appended versions (1 = every version durable before it is served; needs -data)")
	showVersion := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *showVersion {
		buildinfo.PrintVersion("nettrailsd")
		return
	}

	programs := map[string]string{
		"mincost":        nettrails.MinCost,
		"pathvector":     nettrails.PathVector,
		"dsr":            nettrails.DSR,
		"distancevector": nettrails.DistanceVector,
	}
	prog, ok := programs[*protocol]
	if !ok {
		fail("unknown protocol %q", *protocol)
	}

	var edges []protocols.Edge
	n := *nodes
	switch *topology {
	case "line":
		edges = protocols.LineTopology(n, *cost)
	case "ring":
		edges = protocols.RingTopology(n, *cost)
	case "star":
		edges = protocols.StarTopology(n, *cost)
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		n = side * side
		edges = protocols.GridTopology(side, side, *cost)
	case "random":
		edges = protocols.RandomTopology(n, n/2, 4, *seed)
	default:
		fail("unknown topology %q", *topology)
	}

	sys, err := nettrails.NewSystem(prog, nettrails.NodeNames(n),
		nettrails.Config{Seed: *seed, Parallelism: *parallelism})
	if err != nil {
		fail("%v", err)
	}

	spec, err := parseShard(*shard)
	if err != nil {
		fail("%v", err)
	}

	// Cluster membership must be in place before the first link event:
	// every epoch advance after EnableCluster is a barrier with the
	// peer processes, so all members replay the same boot script in
	// lockstep and each serves the shard its rank owns.
	var tr *nettransport.Transport
	if *transport == "tcp" {
		if *shard != "" {
			fail("-shard conflicts with -transport tcp: the cluster rank implies the shard")
		}
		addrs, err := nettransport.SplitPeers(*peers)
		if err != nil {
			fail("%v", err)
		}
		if *self < 0 || *self >= len(addrs) {
			fail("-self %d out of range for %d peers", *self, len(addrs))
		}
		churnSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "churn" {
				churnSet = true
			}
		})
		if churnSet && *churn > 0 {
			fail("-churn %s cannot run under -transport tcp: wall-clock link flaps tick independently per process and desynchronize the epoch barriers; use -churn 0", *churn)
		}
		if *churn > 0 {
			fmt.Println("nettrailsd: -transport tcp disables churn (epoch barriers need identical scripts in every process)")
			*churn = 0
		}
		tr, err = nettransport.Dial(context.Background(), *self, addrs, nettransport.Options{})
		if err != nil {
			fail("%v", err)
		}
		defer tr.Close()
		if err := sys.Engine.EnableCluster(tr); err != nil {
			fail("%v", err)
		}
		spec = server.ShardSpec{Index: *self, Total: len(addrs)}
	} else if *transport != "mem" {
		fail("unknown transport %q", *transport)
	}

	for _, e := range edges {
		if err := sys.AddLink(e.A, e.B, e.Cost); err != nil {
			fail("%v", err)
		}
	}
	var store *provstore.Store
	if *data != "" {
		all := sys.Engine.Nodes()
		store, err = provstore.Open(*data, provstore.Options{
			AllNodes:  all,
			Owned:     spec.OwnedNodes(all),
			Shard:     provstore.ShardInfo{Index: spec.Index, Total: spec.Total},
			Retain:    *storeRetain,
			SyncEvery: *storeSync,
		})
		if err != nil {
			fail("%v", err)
		}
	} else if *storeRetain != 0 || *storeSync != 1 {
		fail("-store-retain/-store-sync need -data")
	}
	pub, err := server.NewPublisherWithOptions(sys.Engine,
		server.PublisherOptions{Retain: *retain, Shard: spec, Store: store})
	if err != nil {
		fail("%v", err)
	}
	srv := server.New(pub, server.Info{
		Protocol: *protocol,
		MaxDepth: *maxDepth,
		MaxNodes: *maxNodes,
		Timeout:  *timeout,
	})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fail("%v", err)
	}
	snap := pub.Current()
	shardNote := ""
	if !spec.Unsharded() {
		shardNote = fmt.Sprintf(" shard=%s owned=%d", spec, len(snap.Nodes))
	}
	fmt.Printf("nettrailsd: listening on http://%s (protocol=%s nodes=%d links=%d version=%d%s)\n",
		ln.Addr(), *protocol, n, len(edges), snap.Version, shardNote)
	if store != nil {
		oldest, _ := pub.Versions()
		fmt.Printf("nettrailsd: snapshot store at %s (versions %d-%d durable)\n",
			*data, oldest, store.DurableVersion())
	}
	if !spec.Unsharded() && *churn > 0 {
		// Wall-clock churn ticks independently per process, so sibling
		// shards drift apart and gateway pins degrade to
		// snapshot_evicted. Deterministic sharded serving wants a
		// frozen topology (or identical external stimulus).
		fmt.Printf("nettrailsd: warning: -churn %s with -shard %s lets shard versions drift; use -churn 0 for aligned snapshots\n",
			*churn, spec)
	}

	// The churn goroutine is the simulation thread: from here on, only
	// it touches the engine. It keeps virtual time (and snapshot
	// versions) moving by flapping one topology link per tick; every
	// epoch inside each flap publishes a fresh consistent snapshot for
	// the HTTP readers. churnDone signals that the goroutine has fully
	// stopped — never mid-epoch — so shutdown tears nothing out from
	// under a running flap.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	stop := make(chan struct{})
	churnDone := make(chan struct{})
	if *churn > 0 && len(edges) > 0 {
		go func() {
			defer close(churnDone)
			tick := time.NewTicker(*churn)
			defer tick.Stop()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				e := edges[i%len(edges)]
				if err := sys.RemoveLink(e.A, e.B, e.Cost); err != nil {
					fail("churn remove %s-%s: %v", e.A, e.B, err)
				}
				if err := sys.AddLink(e.A, e.B, e.Cost); err != nil {
					fail("churn re-add %s-%s: %v", e.A, e.B, err)
				}
			}
		}()
	} else {
		close(churnDone)
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		if err != nil && err != http.ErrServerClosed && !errors.Is(err, net.ErrClosed) {
			fail("%v", err)
		}
	case sig := <-sigs:
		// Graceful shutdown: stop the churn loop at an epoch boundary,
		// then drain in-flight HTTP queries before exiting. A second
		// signal aborts the drain.
		fmt.Printf("nettrailsd: %s: shutting down (draining for up to %s)\n", sig, *drain)
		close(stop)
		<-churnDone
		pub.Detach()
		if tr != nil {
			// The simulation thread is stopped, so no exchange is in
			// flight: drain the cluster transport now so peers see an
			// orderly goodbye rather than a dead connection.
			if err := tr.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "nettrailsd: transport close: %v\n", err)
			}
		}
		if store != nil {
			// The simulation thread is stopped; make everything published
			// durable before the HTTP drain (readers may still hit the
			// store's mmapped segments until Serve returns, so it is
			// closed only after the drain below).
			if err := store.Sync(); err != nil {
				fmt.Fprintf(os.Stderr, "nettrailsd: store sync: %v\n", err)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		go func() {
			<-sigs
			cancel()
		}()
		if err := httpSrv.Shutdown(ctx); err != nil {
			cancel()
			fail("shutdown: %v", err)
		}
		cancel()
		if err := <-serveErr; err != nil && err != http.ErrServerClosed && !errors.Is(err, net.ErrClosed) {
			fail("%v", err)
		}
	}
	if store != nil {
		if err := store.Close(); err != nil {
			fail("store close: %v", err)
		}
	}
	fmt.Println("nettrailsd: stopped")
}
