// ndlogc is the NDlog compiler front-end: it shows a program's
// compilation pipeline — the source, the localization rewrite
// (link-restricted splitting), and the ExSPAN provenance rewrite
// (prov/ruleExec maintenance rules).
//
// Usage:
//
//	ndlogc -protocol mincost
//	ndlogc program.ndlog
package main

import (
	"flag"
	"fmt"
	"os"

	nettrails "repro"
	"repro/internal/buildinfo"
)

var builtins = map[string]string{
	"mincost":        nettrails.MinCost,
	"pathvector":     nettrails.PathVector,
	"dsr":            nettrails.DSR,
	"distancevector": nettrails.DistanceVector,
}

func main() {
	protocol := flag.String("protocol", "", "builtin protocol: mincost, pathvector, dsr, distancevector")
	stage := flag.String("stage", "all", "which stage to print: source, localized, provenance, all")
	showVersion := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *showVersion {
		buildinfo.PrintVersion("ndlogc")
		return
	}

	var src string
	switch {
	case *protocol != "":
		p, ok := builtins[*protocol]
		if !ok {
			fmt.Fprintf(os.Stderr, "ndlogc: unknown protocol %q\n", *protocol)
			os.Exit(2)
		}
		src = p
	case flag.NArg() == 1:
		b, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "ndlogc: %v\n", err)
			os.Exit(1)
		}
		src = string(b)
	default:
		fmt.Fprintln(os.Stderr, "usage: ndlogc [-stage source|localized|provenance|all] (-protocol NAME | FILE)")
		os.Exit(2)
	}

	source, localized, withProv, err := nettrails.CompileReport(src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ndlogc: %v\n", err)
		os.Exit(1)
	}
	show := func(title, body string) {
		fmt.Printf("=== %s ===\n%s\n", title, body)
	}
	switch *stage {
	case "source":
		show("source", source)
	case "localized":
		show("localized", localized)
	case "provenance":
		show("provenance rewrite", withProv)
	case "all":
		show("source", source)
		show("localized", localized)
		show("provenance rewrite", withProv)
	default:
		fmt.Fprintf(os.Stderr, "ndlogc: unknown stage %q\n", *stage)
		os.Exit(2)
	}
}
