package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildBinary compiles the command under test into a temp dir and
// returns the executable path.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "ndlogc")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestSmokeCompileBuiltin runs the compiler front-end on the protocol
// the quickstart example executes and checks all three pipeline stages
// appear.
func TestSmokeCompileBuiltin(t *testing.T) {
	bin := buildBinary(t)
	out, err := exec.Command(bin, "-protocol", "mincost").CombinedOutput()
	if err != nil {
		t.Fatalf("ndlogc -protocol mincost: %v\n%s", err, out)
	}
	text := string(out)
	if len(text) == 0 {
		t.Fatal("empty output")
	}
	for _, section := range []string{"=== source ===", "=== localized ===", "=== provenance rewrite ==="} {
		if !strings.Contains(text, section) {
			t.Errorf("output missing %q:\n%s", section, text)
		}
	}
}

// TestSmokeCompileFile feeds a program file (the quickstart protocol
// written to disk) through the file-argument path.
func TestSmokeCompileFile(t *testing.T) {
	bin := buildBinary(t)
	src := `
materialize(link, infinity, infinity, keys(1,2)).
materialize(cost, infinity, infinity, keys(1,2,3)).
mc1 cost(@S,D,C) :- link(@S,D,C).
`
	file := filepath.Join(t.TempDir(), "prog.ndlog")
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "-stage", "localized", file).CombinedOutput()
	if err != nil {
		t.Fatalf("ndlogc %s: %v\n%s", file, err, out)
	}
	if !strings.Contains(string(out), "mc1") {
		t.Errorf("localized output missing rule:\n%s", out)
	}
}

// TestSmokeBadUsageExits verifies the compiler fails fast with a
// non-zero exit on unknown input instead of emitting garbage.
func TestSmokeBadUsageExits(t *testing.T) {
	bin := buildBinary(t)
	err := exec.Command(bin, "-protocol", "nosuch").Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() == 0 {
		t.Fatalf("expected non-zero exit, got %v", err)
	}
}

// TestVersionFlag: -version prints the build metadata and exits 0.
func TestVersionFlag(t *testing.T) {
	bin := buildBinary(t)
	out, err := exec.Command(bin, "-version").CombinedOutput()
	if err != nil {
		t.Fatalf("-version: %v\n%s", err, out)
	}
	if text := string(out); !strings.Contains(text, "repro") || !strings.Contains(text, "go1") {
		t.Fatalf("-version output = %q", text)
	}
}
