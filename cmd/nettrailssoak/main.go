// nettrailssoak is the scenario load generator: it boots one
// adversarial scenario as a full two-shape deployment (single-process
// daemon + 3-shard gateway, exactly as the acceptance tests do), runs
// the scenario's oracle checks once to prove the deployment answers
// correctly, and then replays the check query mix against the gateway
// at configurable concurrency while churning every arm's engine with
// synthetic base-fact events. The result is a BENCH_scenarios.json
// report: query latency percentiles per check, cache hit rate,
// publish rate under churn, and status counts.
//
// Usage examples:
//
//	nettrailssoak -list
//	nettrailssoak -scenario route-leak
//	nettrailssoak -scenario prefix-hijack -hijack-nodes 200 -clients 16 -queries 5000
//	nettrailssoak -out BENCH_scenarios.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/scenario"
)

func main() {
	var (
		name    = flag.String("scenario", "prefix-hijack", "scenario to soak (see -list); prefix-hijack is parameterized by -hijack-nodes")
		nodes   = flag.Int("hijack-nodes", 64, "AS count of the generated prefix-hijack topology")
		seed    = flag.Int64("seed", 1, "seed of the generated topology and replay")
		clients = flag.Int("clients", 8, "concurrent HTTP clients against the gateway")
		queries = flag.Int("queries", 2000, "total queries across all clients")
		churn   = flag.Int("churn", 200, "engine churn events applied during the run (0 disables churn)")
		out     = flag.String("out", "BENCH_scenarios.json", "report path (- for stdout)")
		list    = flag.Bool("list", false, "list scenarios and exit")
	)
	flag.Parse()

	if *list {
		for _, sc := range scenario.Catalog() {
			fmt.Printf("%-24s %s\n", sc.Name, sc.Description)
		}
		return
	}

	sc, err := pick(*name, *nodes, *seed)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "booting %s (single + %d shards + gateway)...\n", sc.Name, scenario.ShardCount)
	d, err := scenario.Boot(sc)
	if err != nil {
		fail(err)
	}
	defer d.Close()

	fmt.Fprintf(os.Stderr, "soaking: %d clients, %d queries, %d churn events\n", *clients, *queries, *churn)
	report, err := d.Soak(scenario.SoakOptions{Clients: *clients, Queries: *queries, ChurnEvents: *churn})
	if err != nil {
		fail(err)
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fail(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %.0f queries/s, cache hit rate %.2f, %d versions published\n",
		*out, report.ThroughputPerSec, report.CacheHitRate, report.PublishedVersions)
}

// pick resolves a scenario by name; "prefix-hijack" takes its size and
// seed from the flags, the rest come from the catalog as-is.
func pick(name string, nodes int, seed int64) (scenario.Scenario, error) {
	if name == "prefix-hijack" {
		return scenario.PrefixHijack(nodes, seed), nil
	}
	for _, sc := range scenario.Catalog() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return scenario.Scenario{}, fmt.Errorf("unknown scenario %q (try -list)", name)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "nettrailssoak:", err)
	os.Exit(1)
}
