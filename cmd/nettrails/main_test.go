package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "nettrails")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestSmokeQuickstartLineage mirrors examples/quickstart on the CLI:
// MINCOST on a 3-node line, then the lineage of the derived n1→n3
// tuple.
func TestSmokeQuickstartLineage(t *testing.T) {
	bin := buildBinary(t)
	out, err := exec.Command(bin,
		"-protocol", "mincost", "-topology", "line", "-nodes", "3",
		"-query", "lineage", "-tuple", "mincost(@'n1','n3',2)").CombinedOutput()
	if err != nil {
		t.Fatalf("nettrails: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"converged: 3 nodes", "mincost(@n1, n3, 2)", "query cost:"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

// TestSmokeParallelismFlagMatchesSerial runs the same scenario with
// -parallelism 1 and -parallelism 8 and requires identical protocol
// state (the CLI face of the determinism guarantee). Only the traffic
// line may differ: the parallel scheduler coalesces per-link delta
// batches, so it sends fewer (but byte-equivalent) messages.
func TestSmokeParallelismFlagMatchesSerial(t *testing.T) {
	bin := buildBinary(t)
	run := func(par string) (tables, traffic string) {
		out, err := exec.Command(bin,
			"-protocol", "pathvector", "-topology", "ring", "-nodes", "8",
			"-parallelism", par, "-tables", "n1").CombinedOutput()
		if err != nil {
			t.Fatalf("nettrails -parallelism %s: %v\n%s", par, err, out)
		}
		var rest []string
		for _, line := range strings.Split(string(out), "\n") {
			if strings.HasPrefix(line, "execution traffic:") {
				traffic = line
				continue
			}
			rest = append(rest, line)
		}
		return strings.Join(rest, "\n"), traffic
	}
	serial, serialTraffic := run("1")
	parallel, parallelTraffic := run("8")
	if serial != parallel {
		t.Errorf("state diverged between -parallelism 1 and 8:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
	if !strings.Contains(serial, "table bestpath") {
		t.Errorf("tables output missing bestpath:\n%s", serial)
	}
	if serialTraffic == "" || parallelTraffic == "" {
		t.Fatalf("traffic lines missing: %q, %q", serialTraffic, parallelTraffic)
	}
}

// TestSmokeTextQuery exercises the -q textual query path.
func TestSmokeTextQuery(t *testing.T) {
	bin := buildBinary(t)
	out, err := exec.Command(bin,
		"-protocol", "mincost", "-topology", "line", "-nodes", "3",
		"-q", "bases of mincost(@'n1','n3',2)").CombinedOutput()
	if err != nil {
		t.Fatalf("nettrails -q: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "link(@") {
		t.Errorf("bases output missing link tuples:\n%s", out)
	}
}

// TestVersionFlag: -version prints the build metadata and exits 0.
func TestVersionFlag(t *testing.T) {
	bin := buildBinary(t)
	out, err := exec.Command(bin, "-version").CombinedOutput()
	if err != nil {
		t.Fatalf("-version: %v\n%s", err, out)
	}
	if text := string(out); !strings.Contains(text, "repro") || !strings.Contains(text, "go1") {
		t.Fatalf("-version output = %q", text)
	}
}
