// nettrails runs a declarative protocol over a generated topology,
// then answers provenance queries about the resulting state — the
// command-line version of the paper's demonstration.
//
// Usage examples:
//
//	nettrails -protocol mincost -topology line -nodes 5 \
//	          -query lineage -tuple "mincost(@'n1','n5',4)"
//	nettrails -protocol pathvector -topology ring -nodes 6 -tables n1
//	nettrails -protocol mincost -topology grid -nodes 9 \
//	          -query count -tuple "mincost(@'n1','n9',4)" -threshold 1
//	nettrails -protocol pathvector -topology grid -nodes 16 \
//	          -parallelism 8 -tables n1
//
// With -transport tcp the same run becomes one member of a
// multi-process engine cluster: every process executes the identical
// script and they exchange epoch-stamped delta frames over real TCP
// sockets, so N processes converge to byte-identical state. Start one
// process per peer address, e.g. for a 3-member cluster:
//
//	nettrails -transport tcp -peers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 \
//	          -self 0 -protocol pathvector -topology grid -nodes 16 -digests
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	nettrails "repro"
	"repro/internal/buildinfo"
	"repro/internal/nettransport"
	"repro/internal/protocols"
	"repro/internal/provquery"
	"repro/internal/server"
)

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "nettrails: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	protocol := flag.String("protocol", "mincost", "mincost, pathvector, dsr, distancevector")
	topology := flag.String("topology", "line", "line, ring, star, grid, random")
	nodes := flag.Int("nodes", 4, "number of nodes (grid uses the nearest square)")
	cost := flag.Int64("cost", 1, "link cost for regular topologies")
	seed := flag.Int64("seed", 1, "random seed")
	parallelism := flag.Int("parallelism", 1, "epoch-scheduler workers (<=1 serial, results identical; try runtime.NumCPU)")
	query := flag.String("query", "", "lineage, bases, nodes, count")
	tupleLit := flag.String("tuple", "", "tuple literal, e.g. mincost(@'n1','n3',2)")
	at := flag.String("at", "", "node to query at (default: the tuple's location)")
	threshold := flag.Int("threshold", 0, "prune after N alternative derivations")
	cache := flag.Bool("cache", false, "enable per-node result caching")
	sequential := flag.Bool("seq", false, "sequential (DFS) traversal")
	tables := flag.String("tables", "", "print this node's tables and exit")
	showTopo := flag.Bool("topo", false, "print the topology after convergence")
	textQuery := flag.String("q", "", `textual query, e.g. "lineage of mincost(@'n1','n3',2) with cache"`)
	dot := flag.Bool("dot", false, "emit lineage results as Graphviz DOT instead of a text tree")
	transport := flag.String("transport", "mem", "mem (single process) or tcp (one member of a multi-process engine cluster)")
	peers := flag.String("peers", "", "comma-separated host:port list of every cluster member, in rank order (tcp only)")
	self := flag.Int("self", 0, "this process's rank in -peers (tcp only)")
	digests := flag.Bool("digests", false, "print per-node snapshot digests after convergence (this member's shard when clustered)")
	showVersion := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *showVersion {
		buildinfo.PrintVersion("nettrails")
		return
	}
	emitDOT = *dot

	programs := map[string]string{
		"mincost":        nettrails.MinCost,
		"pathvector":     nettrails.PathVector,
		"dsr":            nettrails.DSR,
		"distancevector": nettrails.DistanceVector,
	}
	prog, ok := programs[*protocol]
	if !ok {
		fail("unknown protocol %q", *protocol)
	}

	var edges []protocols.Edge
	n := *nodes
	switch *topology {
	case "line":
		edges = protocols.LineTopology(n, *cost)
	case "ring":
		edges = protocols.RingTopology(n, *cost)
	case "star":
		edges = protocols.StarTopology(n, *cost)
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		n = side * side
		edges = protocols.GridTopology(side, side, *cost)
	case "random":
		edges = protocols.RandomTopology(n, n/2, 4, *seed)
	default:
		fail("unknown topology %q", *topology)
	}

	sys, err := nettrails.NewSystem(prog, nettrails.NodeNames(n),
		nettrails.Config{Seed: *seed, Parallelism: *parallelism})
	if err != nil {
		fail("%v", err)
	}

	// Cluster membership must be in place before the first link event:
	// every epoch advance after EnableCluster is a barrier with the
	// peer processes.
	var tr *nettransport.Transport
	shard := server.ShardSpec{}
	if *transport == "tcp" {
		if *query != "" || *textQuery != "" {
			fail("-query/-q cannot run under -transport tcp; use -digests to compare state")
		}
		addrs, err := nettransport.SplitPeers(*peers)
		if err != nil {
			fail("%v", err)
		}
		if *self < 0 || *self >= len(addrs) {
			fail("-self %d out of range for %d peers", *self, len(addrs))
		}
		tr, err = nettransport.Dial(context.Background(), *self, addrs, nettransport.Options{})
		if err != nil {
			fail("%v", err)
		}
		defer tr.Close()
		if err := sys.Engine.EnableCluster(tr); err != nil {
			fail("%v", err)
		}
		shard = server.ShardSpec{Index: *self, Total: len(addrs)}
	} else if *transport != "mem" {
		fail("unknown transport %q", *transport)
	}

	var pub *server.Publisher
	if *digests {
		pub, err = server.NewPublisherWithOptions(sys.Engine,
			server.PublisherOptions{Retain: 1, Shard: shard})
		if err != nil {
			fail("%v", err)
		}
	}

	start := time.Now()
	for _, e := range edges {
		if err := sys.AddLink(e.A, e.B, e.Cost); err != nil {
			fail("%v", err)
		}
	}
	wall := time.Since(start)
	fmt.Printf("converged: %d nodes, %d links, protocol %s\n", n, len(edges), *protocol)
	msgs, bytes, _ := sys.Engine.Net.Totals()
	fmt.Printf("execution traffic: %d messages, %d bytes\n", msgs, bytes)
	if tr != nil {
		st := sys.Engine.ClusterStats()
		fmt.Printf("cluster-stats member=%d epochs=%d rounds=%d frames_out=%d frames_in=%d bytes_out=%d bytes_in=%d wall_ns=%d\n",
			*self, st.Epochs, st.Rounds, st.FramesOut, st.FramesIn, st.BytesOut, st.BytesIn, wall.Nanoseconds())
	}
	if pub != nil {
		// The run-stats line is deliberately tied to -digests: the
		// default output must stay byte-identical across runs of the
		// same seed, and wall-clock timings are not.
		fmt.Printf("run-stats wall_ns=%d\n", wall.Nanoseconds())
		snap := pub.Current()
		fmt.Printf("snapshot version=%d time=%d\n", snap.Version, snap.Time)
		for _, addr := range snap.Nodes {
			d, ok := snap.NodeDigest(addr)
			if !ok {
				fail("no digest for node %s", addr)
			}
			fmt.Printf("digest %s %s\n", addr, d)
		}
	}

	if *showTopo {
		fmt.Print(sys.RenderTopology())
	}
	if *tables != "" {
		node, ok := sys.Engine.Node(*tables)
		if !ok {
			fail("unknown node %q", *tables)
		}
		for _, relName := range node.RT.Store.TableNames() {
			ts, err := node.Tuples(relName)
			if err != nil {
				fail("%v", err)
			}
			fmt.Printf("table %s (%d tuples)\n", relName, len(ts))
			for _, t := range ts {
				fmt.Println("  ", t)
			}
		}
		return
	}
	if *textQuery != "" {
		res, err := sys.QueryText(*textQuery)
		if err != nil {
			fail("%v", err)
		}
		printResult(res)
		return
	}
	if *query == "" {
		return
	}
	if *tupleLit == "" {
		fail("-query requires -tuple")
	}
	t, err := nettrails.ParseTuple(*tupleLit)
	if err != nil {
		fail("%v", err)
	}
	where := *at
	if where == "" {
		loc, ok := t.LocCol0()
		if !ok {
			fail("tuple has no location; pass -at")
		}
		where = loc
	}
	opts := nettrails.QueryOptions{UseCache: *cache, Threshold: *threshold, Sequential: *sequential}
	var res *provquery.Result
	switch *query {
	case "lineage":
		res, err = sys.Lineage(where, t, opts)
	case "bases":
		res, err = sys.BaseTuples(where, t, opts)
	case "nodes":
		res, err = sys.ParticipatingNodes(where, t, opts)
	case "count":
		res, err = sys.DerivationCount(where, t, opts)
	default:
		fail("unknown query %q", *query)
	}
	if err != nil {
		fail("%v", err)
	}
	printResult(res)
}

var emitDOT bool

func printResult(res *provquery.Result) {
	switch res.Type {
	case provquery.Lineage:
		if emitDOT {
			fmt.Print(nettrails.RenderProofDOT(res.Root))
			break
		}
		fmt.Print(nettrails.RenderProof(res.Root))
	case provquery.BaseTuples:
		for _, b := range res.Bases {
			fmt.Printf("%s (at %s)\n", b.Tuple, b.Loc)
		}
	case provquery.Nodes:
		fmt.Println(res.Nodes)
	case provquery.DerivCount:
		fmt.Printf("%d alternative derivations", res.Count)
		if res.Pruned {
			fmt.Print(" (pruned)")
		}
		if res.Truncated {
			fmt.Print(" (truncated: lower bound)")
		}
		fmt.Println()
	}
	fmt.Printf("query cost: %d messages, %d bytes, %dus latency, %d cache hits\n",
		res.Stats.Messages, res.Stats.Bytes, int64(res.Stats.Latency), res.Stats.CacheHits)
}
