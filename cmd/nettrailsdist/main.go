// nettrailsdist is the distributed-engine benchmark and acceptance
// orchestrator: it builds the nettrails CLI, runs the same
// protocol/topology script as one plain process and as 2- and
// 3-member engine clusters of real OS processes over loopback TCP,
// proves the shapes byte-identical (every per-node snapshot digest of
// every cluster member must equal the single-process digest), and
// writes a BENCH_dist.json report with epoch throughput and
// epoch-cut latency per shape.
//
// Usage examples:
//
//	nettrailsdist
//	nettrailsdist -protocol pathvector -topology grid -nodes 16 -out BENCH_dist.json
//	nettrailsdist -procs 1,2,3 -out -
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "nettrailsdist: "+format+"\n", args...)
	os.Exit(1)
}

// MemberStats is one cluster member's protocol counters, parsed from
// its cluster-stats output line.
type MemberStats struct {
	Member    int    `json:"member"`
	Epochs    uint64 `json:"epochs"`
	Rounds    uint64 `json:"rounds"`
	FramesOut uint64 `json:"framesOut"`
	FramesIn  uint64 `json:"framesIn"`
	BytesOut  uint64 `json:"bytesOut"`
	BytesIn   uint64 `json:"bytesIn"`
	WallNS    int64  `json:"wallNs"`
}

// Shape is the measured result of running the script at one process
// count.
type Shape struct {
	Procs int `json:"procs"`
	// Epochs is the number of global virtual instants the run agreed
	// on and advanced through (identical at every shape: the script is
	// deterministic).
	Epochs uint64 `json:"epochs"`
	// WallNS is the slowest member's wall-clock time for the whole
	// link script (the cluster moves at the pace of its slowest
	// member).
	WallNS       int64   `json:"wallNs"`
	EpochsPerSec float64 `json:"epochsPerSec"`
	// CutLatencyNS is the mean wall-clock cost of agreeing one epoch
	// cut and advancing to it (WallNS / Epochs).
	CutLatencyNS int64         `json:"cutLatencyNs"`
	FramesOut    uint64        `json:"framesOut"`
	BytesOut     uint64        `json:"bytesOut"`
	Members      []MemberStats `json:"members,omitempty"`
}

// Report is the BENCH_dist.json schema.
type Report struct {
	Protocol        string  `json:"protocol"`
	Topology        string  `json:"topology"`
	Nodes           int     `json:"nodes"`
	Seed            int64   `json:"seed"`
	SnapshotVersion uint64  `json:"snapshotVersion"`
	DigestNodes     int     `json:"digestNodes"`
	Parity          string  `json:"parity"`
	Shapes          []Shape `json:"shapes"`
}

// runOutput is everything parsed from one process's stdout.
type runOutput struct {
	digests map[string]string
	version uint64
	wallNS  int64
	stats   *MemberStats
}

func parseOutput(out string) (runOutput, error) {
	r := runOutput{digests: map[string]string{}}
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "digest":
			if len(fields) != 3 {
				return r, fmt.Errorf("bad digest line %q", line)
			}
			r.digests[fields[1]] = fields[2]
		case "snapshot", "run-stats", "cluster-stats":
			kv := map[string]uint64{}
			for _, f := range fields[1:] {
				k, v, ok := strings.Cut(f, "=")
				if !ok {
					return r, fmt.Errorf("bad stats field %q in %q", f, line)
				}
				n, err := strconv.ParseUint(v, 10, 64)
				if err != nil {
					return r, fmt.Errorf("bad stats value %q in %q", f, line)
				}
				kv[k] = n
			}
			switch fields[0] {
			case "snapshot":
				r.version = kv["version"]
			case "run-stats":
				r.wallNS = int64(kv["wall_ns"])
			case "cluster-stats":
				r.stats = &MemberStats{
					Member:    int(kv["member"]),
					Epochs:    kv["epochs"],
					Rounds:    kv["rounds"],
					FramesOut: kv["frames_out"],
					FramesIn:  kv["frames_in"],
					BytesOut:  kv["bytes_out"],
					BytesIn:   kv["bytes_in"],
					WallNS:    int64(kv["wall_ns"]),
				}
			}
		}
	}
	if len(r.digests) == 0 {
		return r, fmt.Errorf("no digest lines in output:\n%s", out)
	}
	return r, nil
}

// freePorts binds count ephemeral loopback listeners, records their
// addresses, and releases them for the spawned processes to claim.
func freePorts(count int) ([]string, error) {
	addrs := make([]string, count)
	lns := make([]net.Listener, count)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs, nil
}

func main() {
	protocol := flag.String("protocol", "pathvector", "protocol to converge (pathvector derives across node boundaries, so remote deltas really cross the wire)")
	topology := flag.String("topology", "grid", "topology generator passed through to nettrails")
	nodes := flag.Int("nodes", 16, "node count passed through to nettrails")
	seed := flag.Int64("seed", 1, "seed passed through to nettrails")
	procsList := flag.String("procs", "1,2,3", "comma-separated process counts to measure")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-shape deadline")
	out := flag.String("out", "BENCH_dist.json", "report path (- for stdout)")
	flag.Parse()

	var procs []int
	for _, f := range strings.Split(*procsList, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || p < 1 {
			fail("bad -procs entry %q", f)
		}
		procs = append(procs, p)
	}
	sort.Ints(procs)

	bin := filepath.Join(os.TempDir(), fmt.Sprintf("nettrails-dist-%d", os.Getpid()))
	build := exec.Command("go", "build", "-o", bin, "./cmd/nettrails")
	if msg, err := build.CombinedOutput(); err != nil {
		fail("go build: %v\n%s", err, msg)
	}
	defer os.Remove(bin)

	base := []string{
		"-protocol", *protocol, "-topology", *topology,
		"-nodes", strconv.Itoa(*nodes), "-seed", strconv.FormatInt(*seed, 10),
		"-digests",
	}

	// The plain single-process run is the parity reference: every
	// cluster member's digests must match it byte for byte.
	fmt.Fprintf(os.Stderr, "nettrailsdist: reference run (%s on %s/%d)\n", *protocol, *topology, *nodes)
	refCtx, refCancel := context.WithTimeout(context.Background(), *timeout)
	refOut, err := exec.CommandContext(refCtx, bin, base...).CombinedOutput()
	refCancel()
	if err != nil {
		fail("reference run: %v\n%s", err, refOut)
	}
	ref, err := parseOutput(string(refOut))
	if err != nil {
		fail("reference run: %v", err)
	}

	report := Report{
		Protocol:        *protocol,
		Topology:        *topology,
		Nodes:           *nodes,
		Seed:            *seed,
		SnapshotVersion: ref.version,
		DigestNodes:     len(ref.digests),
		Parity:          "byte-identical",
	}

	var clusterEpochs uint64
	singleShape := -1
	for _, p := range procs {
		if p == 1 {
			// The 1-process point: no cluster protocol, so its epoch
			// count is filled in from the (identical, deterministic)
			// cluster runs below.
			report.Shapes = append(report.Shapes, Shape{Procs: 1, WallNS: ref.wallNS})
			singleShape = len(report.Shapes) - 1
			continue
		}

		addrs, err := freePorts(p)
		if err != nil {
			fail("ports for %d procs: %v", p, err)
		}
		peers := strings.Join(addrs, ",")
		fmt.Fprintf(os.Stderr, "nettrailsdist: %d-process TCP cluster on %s\n", p, peers)

		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		outputs := make([][]byte, p)
		errs := make([]error, p)
		done := make(chan int, p)
		for i := 0; i < p; i++ {
			go func(rank int) {
				args := append(append([]string{}, base...),
					"-transport", "tcp", "-peers", peers, "-self", strconv.Itoa(rank))
				outputs[rank], errs[rank] = exec.CommandContext(ctx, bin, args...).CombinedOutput()
				done <- rank
			}(i)
		}
		for i := 0; i < p; i++ {
			<-done
		}
		cancel()

		shape := Shape{Procs: p}
		for rank := 0; rank < p; rank++ {
			if errs[rank] != nil {
				fail("%d-process member %d: %v\n%s", p, rank, errs[rank], outputs[rank])
			}
			m, err := parseOutput(string(outputs[rank]))
			if err != nil {
				fail("%d-process member %d: %v", p, rank, err)
			}
			if m.stats == nil {
				fail("%d-process member %d printed no cluster-stats:\n%s", p, rank, outputs[rank])
			}
			if m.version != ref.version {
				fail("%d-process member %d at snapshot version %d, reference at %d", p, rank, m.version, ref.version)
			}
			for addr, d := range m.digests {
				want, ok := ref.digests[addr]
				if !ok {
					fail("%d-process member %d owns unknown node %s", p, rank, addr)
				}
				if d != want {
					fail("byte parity broken: node %s digest %s at %d-process member %d, reference %s",
						addr, d, p, rank, want)
				}
				delete(ref.digests, addr)
			}
			if shape.Epochs == 0 {
				shape.Epochs = m.stats.Epochs
			} else if m.stats.Epochs != shape.Epochs {
				fail("%d-process members disagree on epoch count: %d vs %d", p, m.stats.Epochs, shape.Epochs)
			}
			if m.stats.WallNS > shape.WallNS {
				shape.WallNS = m.stats.WallNS
			}
			shape.FramesOut += m.stats.FramesOut
			shape.BytesOut += m.stats.BytesOut
			shape.Members = append(shape.Members, *m.stats)
		}
		if len(ref.digests) != 0 {
			var missing []string
			for addr := range ref.digests {
				missing = append(missing, addr)
			}
			sort.Strings(missing)
			fail("%d-process cluster covered no shard owning %s", p, strings.Join(missing, ","))
		}
		// Refill the reference map for the next shape.
		ref, err = parseOutput(string(refOut))
		if err != nil {
			fail("reference reparse: %v", err)
		}

		if clusterEpochs == 0 {
			clusterEpochs = shape.Epochs
		} else if shape.Epochs != clusterEpochs {
			fail("shapes disagree on epoch count: %d vs %d", shape.Epochs, clusterEpochs)
		}
		report.Shapes = append(report.Shapes, shape)
	}

	if singleShape >= 0 {
		report.Shapes[singleShape].Epochs = clusterEpochs
	}
	for i := range report.Shapes {
		s := &report.Shapes[i]
		if s.Epochs > 0 && s.WallNS > 0 {
			s.EpochsPerSec = float64(s.Epochs) / (float64(s.WallNS) / 1e9)
			s.CutLatencyNS = s.WallNS / int64(s.Epochs)
		}
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fail("%v", err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fail("%v", err)
	}
	for _, s := range report.Shapes {
		fmt.Fprintf(os.Stderr, "nettrailsdist: %d proc(s): %d epochs, %.0f epochs/s, cut %.2fms\n",
			s.Procs, s.Epochs, s.EpochsPerSec, float64(s.CutLatencyNS)/1e6)
	}
	fmt.Fprintf(os.Stderr, "nettrailsdist: wrote %s (parity %s over %d nodes at %v procs)\n",
		*out, report.Parity, report.DigestNodes, procs)
}
