package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "replay")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestSmokeMincostReplay runs the Figure 2 walkthrough end to end and
// checks the captured instants are listed.
func TestSmokeMincostReplay(t *testing.T) {
	bin := buildBinary(t)
	out, err := exec.Command(bin, "-demo", "mincost").CombinedOutput()
	if err != nil {
		t.Fatalf("replay -demo mincost: %v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "captured") || !strings.Contains(text, "final topology:") {
		t.Errorf("unexpected replay output:\n%s", text)
	}
}

// TestSmokeMincostInspectInstant drills into one captured instant,
// exercising the tables view and tuple card.
func TestSmokeMincostInspectInstant(t *testing.T) {
	bin := buildBinary(t)
	out, err := exec.Command(bin, "-demo", "mincost", "-at", "3", "-node", "n1").CombinedOutput()
	if err != nil {
		t.Fatalf("replay -at 3: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "mincost") {
		t.Errorf("inspection output missing tables:\n%s", out)
	}
}

// TestSmokeBGPReplay runs the legacy-application demo.
func TestSmokeBGPReplay(t *testing.T) {
	bin := buildBinary(t)
	out, err := exec.Command(bin, "-demo", "bgp").CombinedOutput()
	if err != nil {
		t.Fatalf("replay -demo bgp: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "replayed 80 trace events") {
		t.Errorf("unexpected BGP replay output:\n%s", out)
	}
}

// TestVersionFlag: -version prints the build metadata and exits 0.
func TestVersionFlag(t *testing.T) {
	bin := buildBinary(t)
	out, err := exec.Command(bin, "-version").CombinedOutput()
	if err != nil {
		t.Fatalf("-version: %v\n%s", err, out)
	}
	if text := string(out); !strings.Contains(text, "repro") || !strings.Contains(text, "go1") {
		t.Fatalf("-version output = %q", text)
	}
}
