// replay runs a demo scenario while periodically capturing system
// snapshots into the central Log Store, then replays them — the
// command-line analogue of the paper's interactive visualizer session
// (pause the network at a time T, inspect a node's tables, drill into a
// tuple's provenance).
//
// Usage:
//
//	replay -demo mincost           # Figure 2 walkthrough with churn
//	replay -demo bgp               # legacy BGP scenario
//	replay -demo mincost -at 3     # inspect the 3rd captured instant
package main

import (
	"flag"
	"fmt"
	"os"

	nettrails "repro"
	"repro/internal/buildinfo"
	"repro/internal/viz"
)

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "replay: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	demo := flag.String("demo", "mincost", "mincost or bgp")
	at := flag.Int("at", -1, "inspect the i-th captured instant (default: replay all)")
	node := flag.String("node", "n1", "node to inspect at -at")
	showVersion := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *showVersion {
		buildinfo.PrintVersion("replay")
		return
	}

	switch *demo {
	case "mincost":
		runMincost(*at, *node)
	case "bgp":
		runBGP()
	default:
		fail("unknown demo %q", *demo)
	}
}

func runMincost(at int, node string) {
	sys, err := nettrails.NewSystem(nettrails.MinCost, nettrails.NodeNames(4))
	if err != nil {
		fail("%v", err)
	}
	snapshotThen := func(step string, f func() error) {
		if err := f(); err != nil {
			fail("%s: %v", step, err)
		}
		if err := sys.Snapshot(); err != nil {
			fail("snapshot after %s: %v", step, err)
		}
	}
	snapshotThen("link n1-n2", func() error { return sys.AddLink("n1", "n2", 1) })
	snapshotThen("link n2-n3", func() error { return sys.AddLink("n2", "n3", 1) })
	snapshotThen("link n3-n4", func() error { return sys.AddLink("n3", "n4", 1) })
	snapshotThen("link n1-n4", func() error { return sys.AddLink("n1", "n4", 5) })
	snapshotThen("fail n2-n3", func() error { return sys.RemoveLink("n2", "n3", 1) })

	times := sys.Log.Times()
	fmt.Printf("captured %d instants over %d snapshots\n\n", len(times), sys.Log.Len())

	if at >= 0 {
		if at >= len(times) {
			fail("-at %d out of range (have %d instants)", at, len(times))
		}
		view := sys.Log.At(times[at])
		sn, ok := view[node]
		if !ok {
			fail("no snapshot of %s at instant %d", node, at)
		}
		fmt.Print(viz.TablesView(sn))
		// Drill into the first mincost tuple, as in Figure 2(c).
		if mcs := sn.Tables["mincost"].Tuples(); len(mcs) > 0 {
			fmt.Println()
			fmt.Print(nettrails.RenderTupleCard(mcs[0], node))
			res, err := sys.Lineage(node, mcs[0])
			if err == nil {
				fmt.Println("\ncurrent provenance:")
				fmt.Print(nettrails.RenderProof(res.Root))
			}
		}
		return
	}
	// Full replay ticker.
	for i, tm := range times {
		view := sys.Log.At(tm)
		fmt.Printf("[%d] %s\n", i, viz.SnapshotSummary(tm, view))
	}
	fmt.Println("\nfinal topology:")
	fmt.Print(sys.RenderTopology())
}

func runBGP() {
	d, err := nettrails.NewBGPDeployment(
		[]string{"AS1", "AS2", "AS3", "AS4"},
		[]nettrails.ASLink{
			{A: "AS1", B: "AS2", Rel: nettrails.PeerOf},
			{A: "AS1", B: "AS3", Rel: nettrails.CustomerOf},
			{A: "AS2", B: "AS4", Rel: nettrails.CustomerOf},
		})
	if err != nil {
		fail("%v", err)
	}
	events, err := d.GenerateTrace(80, 7)
	if err != nil {
		fail("%v", err)
	}
	if err := d.ReplayTrace(events); err != nil {
		fail("%v", err)
	}
	fmt.Printf("replayed %d trace events\n", len(events))
	for _, as := range d.Eng.Nodes() {
		re, err := d.RouteEntries(as)
		if err != nil {
			fail("%v", err)
		}
		fmt.Printf("%s: %d routing entries, %d updates sent, %d received\n",
			as, len(re), d.Speakers[as].UpdatesSent, d.Speakers[as].UpdatesReceived)
		if len(re) > 0 {
			prefix, _ := re[0].Vals[1].AsString()
			res, err := d.RouteLineage(as, prefix)
			if err == nil {
				fmt.Printf("  lineage of %s:\n", prefix)
				fmt.Print(indent(nettrails.RenderProofFocused(res.Root, 4), "  "))
			}
		}
	}
}

func indent(s, pad string) string {
	out := ""
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			if start < i {
				out += pad + s[start:i] + "\n"
			}
			start = i + 1
		}
	}
	return out
}
