// nettrailsfsck is the offline provstore inspector: it verifies a
// snapshot-store directory without opening it for writing and reports
// what recovery would see. Checks cover the manifest, every record's
// CRC, both directions of each sealed segment's succinct trie indexes,
// the dense version chain with its resolution-vector invariants, blob
// resolvability for every retained version, orphaned blobs, and the
// active segment's torn tail.
//
// Usage:
//
//	nettrailsfsck -data /var/lib/nettrails/prov
//	nettrailsfsck -data shard0-store -verbose
//
// Exit status 0 means the store is clean (orphans and a torn tail are
// informational — recovery handles both); 1 means integrity
// violations were found; 2 means the check itself failed.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/provstore"
)

func main() {
	var (
		data    = flag.String("data", "", "provstore directory to check (required)")
		verbose = flag.Bool("verbose", false, "print per-segment detail while scanning")
	)
	flag.Parse()
	if *data == "" {
		fmt.Fprintln(os.Stderr, "nettrailsfsck: -data is required")
		flag.Usage()
		os.Exit(2)
	}
	os.Exit(run(*data, *verbose))
}

func run(dir string, verbose bool) int {
	rep, err := provstore.Fsck(dir, os.Stdout, verbose)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nettrailsfsck: %v\n", err)
		return 2
	}
	fmt.Printf("segments: %d sealed, %d active\n", rep.SealedSegments, rep.ActiveSegments)
	fmt.Printf("records:  %d (%d blobs, %d orphaned)\n", rep.Records, rep.Blobs, rep.OrphanBlobs)
	if rep.LastVersion != 0 {
		fmt.Printf("versions: %d-%d\n", rep.FirstVersion, rep.LastVersion)
	} else {
		fmt.Printf("versions: none\n")
	}
	if rep.TornTailBytes != 0 {
		fmt.Printf("torn tail: %d bytes (recovery will truncate)\n", rep.TornTailBytes)
	}
	if !rep.Ok() {
		for _, p := range rep.Problems {
			fmt.Printf("PROBLEM: %s\n", p)
		}
		fmt.Printf("%d problems found\n", len(rep.Problems))
		return 1
	}
	fmt.Println("clean")
	return 0
}
