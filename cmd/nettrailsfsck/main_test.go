package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/provenance"
	"repro/internal/provstore"
	"repro/internal/rel"
)

func buildStore(t *testing.T, dir string, versions int) {
	t.Helper()
	st, err := provstore.Open(dir, provstore.Options{
		AllNodes:     []string{"n0"},
		Owned:        []string{"n0"},
		SealVersions: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl := rel.NewTable(rel.NewSchema("link", 2))
	prov := provenance.NewStore("n0")
	for v := 1; v <= versions; v++ {
		tp := rel.NewTuple("link", rel.Addr("n0"), rel.Int(int64(v)))
		tbl.Apply(tp, 1)
		prov.AddBase(tp)
		in := provstore.VersionInput{Version: uint64(v), Time: int64(v), States: []provstore.NodeState{{
			OwnedIdx: 0,
			Info:     provstore.Info{Tuples: tbl.Len(), Prov: prov.Statistics()},
			Tables:   map[string]*rel.Frozen{"link": tbl.Freeze()},
			View:     prov.View(),
		}}}
		if err := st.Append(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFsckCleanStore(t *testing.T) {
	dir := t.TempDir()
	buildStore(t, dir, 11)
	if code := run(dir, true); code != 0 {
		t.Fatalf("clean store: exit %d", code)
	}
}

func TestFsckDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	buildStore(t, dir, 11)
	// Flip a byte in the middle of the first sealed segment's records.
	path := filepath.Join(dir, "seg-00000001.seg")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	if code := run(dir, false); code != 1 {
		t.Fatalf("corrupt store: exit %d, want 1", code)
	}
}

func TestFsckMissingDir(t *testing.T) {
	// A directory with no manifest and no segments is an empty store.
	if code := run(t.TempDir(), false); code != 0 {
		t.Fatal("empty directory should be a clean (empty) store")
	}
}
