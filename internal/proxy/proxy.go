// Package proxy implements NetTrails' legacy-application integration:
// a per-node interposition layer that observes the messages entering
// and leaving an unmodified ("black box") application, converts them to
// tuples, and applies NDlog "maybe" rules (h ?- b) to infer the causal
// relationships the application does not expose. Matched rules become
// provenance derivations; unmatched outputs are recorded as base
// (origin) tuples — e.g. a BGP speaker originating its own prefix.
//
// The paper's running example is rule br1:
//
//	br1 outputRoute(@AS,R2,Prefix,Route2) ?-
//	      inputRoute(@AS,R1,Prefix,Route1),
//	      f_isExtend(Route2,Route1,AS) == 1.
//
// The proxy also links message transmission across nodes: when an
// observed input arrived from another node's observed output, it
// records a transmission derivation so lineage traversals can continue
// at the sender.
package proxy

import (
	"fmt"

	"repro/internal/eval"
	"repro/internal/ndlog"
	"repro/internal/provenance"
	"repro/internal/rel"
)

// TransmitRule is the synthetic rule name used for cross-node message
// transmission edges (receiver's input tuple derived from sender's
// output tuple).
const TransmitRule = "proxy_transmit"

// Proxy observes one legacy application instance at one node.
type Proxy struct {
	addr  string
	rules []*ndlog.Rule
	funcs *eval.FuncRegistry
	prov  *provenance.Store

	// inputs: relation -> observed input tuples currently valid.
	inputs map[string][]rel.Tuple
	// outs remembers, per output VID, the stack of observation batches
	// (each batch = the firings recorded for one ObserveOutput call; an
	// empty batch marks an origin/base observation). RetractOutput
	// replays the recorded batch instead of re-matching, because by the
	// time an output is retracted its matching inputs are often already
	// gone (withdrawal cascades run cause-first).
	outs map[rel.ID][][]eval.Firing

	// Matched counts maybe-rule matches; Unmatched counts outputs
	// recorded as origins.
	Matched   int
	Unmatched int

	// OnError observes rule evaluation problems (nil: ignore).
	OnError func(error)
}

// New creates a proxy for the node with the given maybe rules. Non-maybe
// rules in the program are ignored; the rules must be analyzed (use
// ndlog.Analyze on the enclosing program first).
func New(addr string, prog *ndlog.Program, prov *provenance.Store) (*Proxy, error) {
	if prov == nil {
		return nil, fmt.Errorf("proxy: nil provenance store")
	}
	p := &Proxy{
		addr:   addr,
		funcs:  eval.NewFuncRegistry(),
		prov:   prov,
		inputs: map[string][]rel.Tuple{},
		outs:   map[rel.ID][][]eval.Firing{},
	}
	for _, r := range prog.Rules {
		if r.Maybe {
			p.rules = append(p.rules, r)
		}
	}
	if len(p.rules) == 0 {
		return nil, fmt.Errorf("proxy: program has no maybe rules")
	}
	return p, nil
}

// Rules returns the maybe rules in use.
func (p *Proxy) Rules() []*ndlog.Rule { return p.rules }

// ObserveInput records a message entering the black box. When the
// message was produced by another node's observed output, pass the
// sender's address and output tuple as origin; the proxy then records a
// transmission derivation instead of a base entry. senderProv may be
// nil when the sender is outside the observed system (e.g. an external
// trace feed), in which case the input is recorded as a base tuple.
func (p *Proxy) ObserveInput(t rel.Tuple, senderAddr string, senderOutput *rel.Tuple, senderProv *provenance.Store) {
	p.inputs[t.Rel] = append(p.inputs[t.Rel], t)
	if senderOutput == nil || senderProv == nil {
		p.prov.AddBase(t)
		return
	}
	// Transmission edge: exec at the sender over its output tuple;
	// derivation entry at the receiver.
	f := eval.Firing{
		RuleName:  TransmitRule,
		Inputs:    []rel.Tuple{*senderOutput},
		Output:    t,
		OutputLoc: p.addr,
		Sign:      1,
	}
	e := senderProv.RecordFiring(f)
	p.prov.ApplyRemote(t, e, 1)
}

// RetractInput removes a previously observed input (e.g. a withdrawn
// route) and its base provenance. Transmission-derived inputs should be
// retracted with RetractTransmitted.
func (p *Proxy) RetractInput(t rel.Tuple) {
	p.removeInput(t)
	p.prov.RemoveBase(t)
}

// RetractTransmitted removes an input that carried a transmission edge.
func (p *Proxy) RetractTransmitted(t rel.Tuple, senderAddr string, senderOutput rel.Tuple, senderProv *provenance.Store) {
	p.removeInput(t)
	f := eval.Firing{
		RuleName:  TransmitRule,
		Inputs:    []rel.Tuple{senderOutput},
		Output:    t,
		OutputLoc: p.addr,
		Sign:      -1,
	}
	e := senderProv.RecordFiring(f)
	p.prov.ApplyRemote(t, e, -1)
}

func (p *Proxy) removeInput(t rel.Tuple) {
	list := p.inputs[t.Rel]
	for i, x := range list {
		if x.Equal(t) {
			list[i] = list[len(list)-1]
			p.inputs[t.Rel] = list[:len(list)-1]
			return
		}
	}
}

// ObserveOutput records a message leaving the black box. Every maybe
// rule whose head matches the output is evaluated against the observed
// inputs; each satisfied body becomes one derivation of the output
// tuple. If no rule matches, the output is recorded as an origin (base)
// tuple. It returns the number of derivations recorded.
func (p *Proxy) ObserveOutput(t rel.Tuple) int {
	var batch []eval.Firing
	for _, r := range p.rules {
		batch = append(batch, p.matchRule(r, t)...)
	}
	for _, f := range batch {
		p.prov.RecordFiring(f)
	}
	vid := t.VID()
	p.outs[vid] = append(p.outs[vid], batch)
	if len(batch) == 0 {
		p.prov.AddBase(t)
		p.Unmatched++
		return 0
	}
	p.Matched++
	return len(batch)
}

// RetractOutput removes an output's derivations (or its base entry when
// it was an origin), replaying the recorded observation batch.
func (p *Proxy) RetractOutput(t rel.Tuple) {
	vid := t.VID()
	stack := p.outs[vid]
	if len(stack) == 0 {
		// Never observed (or already fully retracted): best effort.
		p.prov.RemoveBase(t)
		return
	}
	batch := stack[len(stack)-1]
	stack = stack[:len(stack)-1]
	if len(stack) == 0 {
		delete(p.outs, vid)
	} else {
		p.outs[vid] = stack
	}
	if len(batch) == 0 {
		p.prov.RemoveBase(t)
		return
	}
	for _, f := range batch {
		f.Sign = -1
		p.prov.RecordFiring(f)
	}
}

// matchRule finds body matches of a maybe rule for the observed output
// tuple and returns one firing per match (not yet recorded).
func (p *Proxy) matchRule(r *ndlog.Rule, out rel.Tuple) []eval.Firing {
	if r.Head.Rel != out.Rel || len(r.Head.Args) != len(out.Vals) {
		return nil
	}
	// Bind head variables from the observed output.
	b := eval.Binding{}
	if !eval.MatchAtom(r.Head, out, b) {
		return nil
	}
	var firings []eval.Firing
	var walk func(terms []ndlog.Term, b eval.Binding, inputs []rel.Tuple)
	walk = func(terms []ndlog.Term, b eval.Binding, inputs []rel.Tuple) {
		if len(terms) == 0 {
			firings = append(firings, eval.Firing{
				RuleName:  r.Label,
				Inputs:    append([]rel.Tuple(nil), inputs...),
				Output:    out,
				OutputLoc: p.addr,
				Sign:      1,
			})
			return
		}
		switch term := terms[0].(type) {
		case *ndlog.Atom:
			for _, in := range p.inputs[term.Rel] {
				nb := b.Clone()
				if eval.MatchAtom(term, in, nb) {
					walk(terms[1:], nb, append(inputs, in))
				}
			}
		case *ndlog.Cond:
			ok, err := eval.EvalCond(term, b, p.funcs)
			if err != nil {
				if p.OnError != nil {
					p.OnError(fmt.Errorf("proxy: rule %s: %w", r.Label, err))
				}
				return
			}
			if ok {
				walk(terms[1:], b, inputs)
			}
		case *ndlog.Assign:
			v, err := eval.EvalExpr(term.Expr, b, p.funcs)
			if err != nil {
				if p.OnError != nil {
					p.OnError(fmt.Errorf("proxy: rule %s: %w", r.Label, err))
				}
				return
			}
			nb := b.Clone()
			nb[term.Var] = v
			walk(terms[1:], nb, inputs)
		}
	}
	walk(r.Body, b, nil)
	return firings
}

// InputCount returns the number of currently observed inputs for a
// relation.
func (p *Proxy) InputCount(relName string) int { return len(p.inputs[relName]) }
