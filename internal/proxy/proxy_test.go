package proxy

import (
	"testing"

	"repro/internal/ndlog"
	"repro/internal/provenance"
	"repro/internal/rel"
)

const maybeSrc = `
materialize(inputRoute, infinity, infinity, keys(1,2,3,4)).
materialize(outputRoute, infinity, infinity, keys(1,2,3,4)).
re1 routeEntry(@AS,Prefix) :- outputRoute(@AS,R,Prefix,Path).
br1 outputRoute(@AS,R2,Prefix,Route2) ?- inputRoute(@AS,R1,Prefix,Route1), f_isExtend(Route2,Route1,AS) == 1.
`

func newProxy(t *testing.T, addr string) (*Proxy, *provenance.Store) {
	t.Helper()
	prog := ndlog.MustParse(maybeSrc)
	if _, err := ndlog.Analyze(prog); err != nil {
		t.Fatal(err)
	}
	st := provenance.NewStore(addr)
	p, err := New(addr, prog, st)
	if err != nil {
		t.Fatal(err)
	}
	p.OnError = func(err error) { t.Errorf("proxy error: %v", err) }
	return p, st
}

func path(ases ...string) rel.Value {
	vs := make([]rel.Value, len(ases))
	for i, a := range ases {
		vs[i] = rel.Addr(a)
	}
	return rel.List(vs...)
}

func inR(as, from, prefix string, p rel.Value) rel.Tuple {
	return rel.NewTuple("inputRoute", rel.Addr(as), rel.Addr(from), rel.Str(prefix), p)
}

func outR(as, to, prefix string, p rel.Value) rel.Tuple {
	return rel.NewTuple("outputRoute", rel.Addr(as), rel.Addr(to), rel.Str(prefix), p)
}

func TestNewRequiresMaybeRules(t *testing.T) {
	prog := ndlog.MustParse(`r1 a(@S) :- b(@S).`)
	if _, err := New("n", prog, provenance.NewStore("n")); err == nil {
		t.Fatal("program without maybe rules must be rejected")
	}
	if _, err := New("n", ndlog.MustParse(maybeSrc), nil); err == nil {
		t.Fatal("nil store must be rejected")
	}
}

func TestMaybeMatchCreatesDerivation(t *testing.T) {
	p, st := newProxy(t, "AS2")
	in := inR("AS2", "AS1", "10.0.0.0/24", path("AS1"))
	p.ObserveInput(in, "", nil, nil)
	out := outR("AS2", "AS3", "10.0.0.0/24", path("AS2", "AS1"))
	n := p.ObserveOutput(out)
	if n != 1 || p.Matched != 1 {
		t.Fatalf("matches = %d, Matched = %d", n, p.Matched)
	}
	derivs, ok := st.Derivations(out.VID())
	if !ok || len(derivs) != 1 || derivs[0].RID.IsZero() {
		t.Fatalf("derivs = %v %v", derivs, ok)
	}
	exec, ok := st.Exec(derivs[0].RID)
	if !ok || exec.Rule != "br1" || exec.VIDs[0] != in.VID() {
		t.Fatalf("exec = %+v", exec)
	}
}

func TestNoMatchRecordsOrigin(t *testing.T) {
	p, st := newProxy(t, "AS1")
	out := outR("AS1", "AS2", "10.0.0.0/24", path("AS1"))
	if n := p.ObserveOutput(out); n != 0 {
		t.Fatalf("matches = %d", n)
	}
	derivs, ok := st.Derivations(out.VID())
	if !ok || !derivs[0].RID.IsZero() {
		t.Fatalf("origin derivs = %v", derivs)
	}
	if p.Unmatched != 1 {
		t.Fatalf("Unmatched = %d", p.Unmatched)
	}
}

func TestMismatchedExtensionDoesNotMatch(t *testing.T) {
	p, _ := newProxy(t, "AS2")
	p.ObserveInput(inR("AS2", "AS1", "10.0.0.0/24", path("AS1")), "", nil, nil)
	// Wrong prefix string.
	if n := p.ObserveOutput(outR("AS2", "AS3", "10.9.0.0/24", path("AS2", "AS1"))); n != 0 {
		t.Fatal("different prefix must not match")
	}
	// Path not an extension.
	if n := p.ObserveOutput(outR("AS2", "AS3", "10.0.0.0/24", path("AS9", "AS1"))); n != 0 {
		t.Fatal("non-extension must not match")
	}
}

func TestMultipleCandidateInputs(t *testing.T) {
	// Two different inputs whose paths the output extends: both become
	// derivations ("maybe" semantics keeps all possibilities).
	p, st := newProxy(t, "AS3")
	i1 := inR("AS3", "AS1", "10.0.0.0/24", path("AS2", "AS1"))
	i2 := inR("AS3", "AS2", "10.0.0.0/24", path("AS2", "AS1"))
	p.ObserveInput(i1, "", nil, nil)
	p.ObserveInput(i2, "", nil, nil)
	out := outR("AS3", "AS4", "10.0.0.0/24", path("AS3", "AS2", "AS1"))
	if n := p.ObserveOutput(out); n != 2 {
		t.Fatalf("matches = %d, want 2", n)
	}
	derivs, _ := st.Derivations(out.VID())
	if len(derivs) != 2 {
		t.Fatalf("derivs = %v", derivs)
	}
}

func TestRetractOutputReplaysRecordedBatch(t *testing.T) {
	p, st := newProxy(t, "AS2")
	in := inR("AS2", "AS1", "10.0.0.0/24", path("AS1"))
	p.ObserveInput(in, "", nil, nil)
	out := outR("AS2", "AS3", "10.0.0.0/24", path("AS2", "AS1"))
	p.ObserveOutput(out)
	// Retract the input FIRST (withdrawal cascades run cause-first),
	// then the output: the derivation must still be cleaned up.
	p.RetractInput(in)
	p.RetractOutput(out)
	if _, ok := st.Derivations(out.VID()); ok {
		t.Fatal("output derivation leaked")
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if st.Statistics().ProvEntries != 0 {
		t.Fatalf("stale entries: %+v", st.Statistics())
	}
}

func TestRetractOriginOutput(t *testing.T) {
	p, st := newProxy(t, "AS1")
	out := outR("AS1", "AS2", "10.0.0.0/24", path("AS1"))
	p.ObserveOutput(out)
	p.RetractOutput(out)
	if _, ok := st.Derivations(out.VID()); ok {
		t.Fatal("origin base entry leaked")
	}
}

func TestRetractUnknownOutputIsBestEffort(t *testing.T) {
	p, st := newProxy(t, "AS1")
	p.RetractOutput(outR("AS1", "AS2", "p", path("AS1")))
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTransmissionEdgeLinksNodes(t *testing.T) {
	pa, sa := newProxy(t, "AS1")
	pb, sb := newProxy(t, "AS2")
	_ = pa
	senderOut := outR("AS1", "AS2", "10.0.0.0/24", path("AS1"))
	sa.AddBase(senderOut) // AS1 observed its own output as origin
	in := inR("AS2", "AS1", "10.0.0.0/24", path("AS1"))
	pb.ObserveInput(in, "AS1", &senderOut, sa)
	derivs, ok := sb.Derivations(in.VID())
	if !ok || len(derivs) != 1 {
		t.Fatalf("derivs = %v %v", derivs, ok)
	}
	if derivs[0].RLoc != "AS1" {
		t.Fatalf("transmission RLoc = %s", derivs[0].RLoc)
	}
	exec, ok := sa.Exec(derivs[0].RID)
	if !ok || exec.Rule != TransmitRule {
		t.Fatalf("sender exec = %+v %v", exec, ok)
	}
	// Retract the transmission.
	pb.RetractTransmitted(in, "AS1", senderOut, sa)
	if _, ok := sb.Derivations(in.VID()); ok {
		t.Fatal("transmission derivation leaked")
	}
	if _, ok := sa.Exec(derivs[0].RID); ok {
		t.Fatal("sender exec leaked")
	}
	if err := sa.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := sb.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInputCountTracking(t *testing.T) {
	p, _ := newProxy(t, "AS2")
	in := inR("AS2", "AS1", "p", path("AS1"))
	p.ObserveInput(in, "", nil, nil)
	if p.InputCount("inputRoute") != 1 {
		t.Fatal("input not tracked")
	}
	p.RetractInput(in)
	if p.InputCount("inputRoute") != 0 {
		t.Fatal("input not removed")
	}
}

func TestObserveOutputTwiceRetractOnce(t *testing.T) {
	p, st := newProxy(t, "AS2")
	in := inR("AS2", "AS1", "p", path("AS1"))
	p.ObserveInput(in, "", nil, nil)
	out := outR("AS2", "AS3", "p", path("AS2", "AS1"))
	p.ObserveOutput(out)
	p.ObserveOutput(out)
	p.RetractOutput(out)
	// One observation batch remains.
	if _, ok := st.Derivations(out.VID()); !ok {
		t.Fatal("remaining observation lost")
	}
	p.RetractOutput(out)
	if _, ok := st.Derivations(out.VID()); ok {
		t.Fatal("derivation leaked after final retract")
	}
}
