// Package simnet is a deterministic discrete-event network simulator,
// standing in for ns-3 in the NetTrails architecture. It provides nodes
// with message handlers, point-to-point links with latency and loss,
// link up/down dynamics, position-based radio connectivity for mobile
// scenarios, timers, and per-link/per-kind traffic accounting used by
// the provenance query-optimization experiments.
//
// Everything is deterministic given the seed: events are ordered by
// (time, sequence number) and the only randomness is the seeded PRNG
// used for message loss.
package simnet

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Time is simulated time in microseconds.
type Time int64

// Millisecond and friends express common durations in simulated time.
const (
	Microsecond Time = 1
	Millisecond Time = 1000
	Second      Time = 1000 * Millisecond
)

// Message is one network message between nodes.
type Message struct {
	From    string
	To      string
	Kind    string // traffic category, e.g. "delta", "query", "snapshot"
	Payload interface{}
	Size    int // bytes, for traffic accounting
	// Reliable marks control-plane traffic carried over a reliable
	// transport (RapidNet ships tuple deltas over TCP): it is never
	// dropped by link loss or link-down state and falls back to
	// DefaultLatency routing when the direct link is unavailable,
	// overriding DirectOnly.
	Reliable bool
}

// Handler consumes messages delivered to a node.
type Handler func(m Message)

// LinkStats accumulates traffic over one link (both directions).
type LinkStats struct {
	Messages int
	Bytes    int
	Drops    int
}

// Link is an undirected point-to-point connection.
type Link struct {
	A, B    string
	Latency Time
	Loss    float64 // probability each message is dropped
	Up      bool
	Stats   LinkStats
}

type linkKey struct{ a, b string }

func keyFor(a, b string) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{a, b}
}

type event struct {
	at  Time
	seq uint64
	// Exactly one of fn/msg is set: fn for timers and callbacks, msg
	// for message deliveries. Keeping deliveries first-class (instead
	// of closing over them) lets NextEpoch hand them to an external
	// scheduler that fans one virtual instant out over many workers.
	fn  func()
	msg *Message
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Position is a 2-D coordinate for radio-range connectivity.
type Position struct{ X, Y float64 }

// Dist returns the Euclidean distance between positions.
func (p Position) Dist(q Position) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

type node struct {
	name    string
	handler Handler
	pos     Position
	sent    LinkStats
	recv    LinkStats
}

// KindStats accumulates traffic by message kind.
type KindStats struct {
	Messages int
	Bytes    int
}

// Network is the simulator instance.
type Network struct {
	now    Time
	seq    uint64
	events eventHeap
	nodes  map[string]*node
	links  map[linkKey]*Link
	rng    *rand.Rand

	// DefaultLatency applies to node pairs without a direct link,
	// modelling IP connectivity between non-adjacent nodes (provenance
	// queries travel over IP, not over protocol links). Set
	// DirectOnly to drop such traffic instead.
	DefaultLatency Time
	DirectOnly     bool

	kinds map[string]*KindStats

	totalMsgs  int
	totalBytes int
	totalDrops int

	// SendHook, when set, sees every message that survived routing and
	// loss, immediately before it is enqueued. Returning true claims the
	// message: it is NOT enqueued locally and no sequence number is
	// consumed (sender-side accounting has already happened). A
	// distributed engine uses this to intercept traffic addressed to
	// nodes owned by a remote process; the claimed message re-enters the
	// owning process via InjectAt. deliverAt is the virtual instant the
	// message would have been delivered locally.
	SendHook func(m Message, deliverAt Time) bool
}

// New creates an empty network with the given PRNG seed.
func New(seed int64) *Network {
	return &Network{
		nodes:          map[string]*node{},
		links:          map[linkKey]*Link{},
		rng:            rand.New(rand.NewSource(seed)),
		DefaultLatency: 1 * Millisecond,
		kinds:          map[string]*KindStats{},
	}
}

// Now returns the current simulated time.
func (n *Network) Now() Time { return n.now }

// AddNode registers a node; replacing an existing handler is an error.
func (n *Network) AddNode(name string, h Handler) error {
	if name == "" {
		return fmt.Errorf("simnet: empty node name")
	}
	if _, ok := n.nodes[name]; ok {
		return fmt.Errorf("simnet: node %s already exists", name)
	}
	n.nodes[name] = &node{name: name, handler: h}
	return nil
}

// SetHandler replaces a node's message handler.
func (n *Network) SetHandler(name string, h Handler) error {
	nd, ok := n.nodes[name]
	if !ok {
		return fmt.Errorf("simnet: unknown node %s", name)
	}
	nd.handler = h
	return nil
}

// Nodes returns all node names, sorted.
func (n *Network) Nodes() []string {
	out := make([]string, 0, len(n.nodes))
	for name := range n.nodes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// HasNode reports whether the node exists.
func (n *Network) HasNode(name string) bool {
	_, ok := n.nodes[name]
	return ok
}

// Connect creates (or re-activates) an undirected link.
func (n *Network) Connect(a, b string, latency Time) (*Link, error) {
	if a == b {
		return nil, fmt.Errorf("simnet: self-link %s", a)
	}
	if !n.HasNode(a) || !n.HasNode(b) {
		return nil, fmt.Errorf("simnet: connect %s-%s: unknown node", a, b)
	}
	k := keyFor(a, b)
	if l, ok := n.links[k]; ok {
		l.Latency = latency
		l.Up = true
		return l, nil
	}
	l := &Link{A: k.a, B: k.b, Latency: latency, Up: true}
	n.links[k] = l
	return l, nil
}

// Disconnect removes a link entirely.
func (n *Network) Disconnect(a, b string) {
	delete(n.links, keyFor(a, b))
}

// SetLinkUp marks a link up or down; unknown links are ignored.
func (n *Network) SetLinkUp(a, b string, up bool) {
	if l, ok := n.links[keyFor(a, b)]; ok {
		l.Up = up
	}
}

// LinkBetween returns the link between two nodes, if any.
func (n *Network) LinkBetween(a, b string) (*Link, bool) {
	l, ok := n.links[keyFor(a, b)]
	return l, ok
}

// Links returns all links sorted by endpoints.
func (n *Network) Links() []*Link {
	out := make([]*Link, 0, len(n.links))
	for _, l := range n.links {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Neighbors returns the nodes connected to name by an up link, sorted.
func (n *Network) Neighbors(name string) []string {
	var out []string
	for _, l := range n.links {
		if !l.Up {
			continue
		}
		if l.A == name {
			out = append(out, l.B)
		} else if l.B == name {
			out = append(out, l.A)
		}
	}
	sort.Strings(out)
	return out
}

// SetPosition places a node for radio-range connectivity.
func (n *Network) SetPosition(name string, p Position) error {
	nd, ok := n.nodes[name]
	if !ok {
		return fmt.Errorf("simnet: unknown node %s", name)
	}
	nd.pos = p
	return nil
}

// PositionOf returns a node's position.
func (n *Network) PositionOf(name string) (Position, bool) {
	nd, ok := n.nodes[name]
	if !ok {
		return Position{}, false
	}
	return nd.pos, true
}

// InRange reports whether two nodes are within radio range r.
func (n *Network) InRange(a, b string, r float64) bool {
	na, ok1 := n.nodes[a]
	nb, ok2 := n.nodes[b]
	return ok1 && ok2 && na.pos.Dist(nb.pos) <= r
}

// Send schedules delivery of a message. Direct links use their latency
// and loss; node pairs without a link use DefaultLatency unless
// DirectOnly is set, in which case the message is dropped. Local sends
// (from == to) are delivered after a zero-latency scheduling step.
func (n *Network) Send(m Message) {
	if _, ok := n.nodes[m.To]; !ok {
		n.totalDrops++
		return
	}
	var latency Time
	var link *Link
	if m.From != m.To {
		if l, ok := n.links[keyFor(m.From, m.To)]; ok {
			link = l
			switch {
			case !l.Up:
				if !m.Reliable {
					l.Stats.Drops++
					n.totalDrops++
					return
				}
				link = nil // rerouted around the down link
				latency = n.DefaultLatency
			case !m.Reliable && l.Loss > 0 && n.rng.Float64() < l.Loss:
				l.Stats.Drops++
				n.totalDrops++
				return
			default:
				latency = l.Latency
			}
		} else if n.DirectOnly && !m.Reliable {
			n.totalDrops++
			return
		} else {
			latency = n.DefaultLatency
		}
	}
	n.account(m, link)
	if n.SendHook != nil && n.SendHook(m, n.now+latency) {
		return
	}
	msg := m
	n.seq++
	heap.Push(&n.events, &event{at: n.now + latency, seq: n.seq, msg: &msg})
}

// InjectAt enqueues a delivery of m at the absolute virtual time at,
// bypassing routing, loss, and sender-side accounting (the sending
// process already accounted for it before its SendHook claimed the
// message). at must not precede the current clock.
func (n *Network) InjectAt(at Time, m Message) {
	if at < n.now {
		at = n.now
	}
	msg := m
	n.seq++
	heap.Push(&n.events, &event{at: at, seq: n.seq, msg: &msg})
}

// PeekTime returns the virtual timestamp of the earliest pending event;
// ok is false when the queue is empty.
func (n *Network) PeekTime() (Time, bool) {
	if n.events.Len() == 0 {
		return 0, false
	}
	return n.events[0].at, true
}

// AdvanceTo moves the clock forward to t without executing anything.
// It is a no-op when t is in the past. Distributed engine processes use
// it to stay in lockstep with peers that own the next virtual instant.
func (n *Network) AdvanceTo(t Time) {
	if t > n.now {
		n.now = t
	}
}

// Deliver invokes the destination handler of a message delivery event,
// updating the destination's receive counters. It is used by Step and
// by external epoch schedulers replaying events drained with
// NextEpoch. Deliver only touches state owned by the destination node,
// so concurrent calls are safe as long as every in-flight call targets
// a distinct destination and nothing else mutates the network.
func (n *Network) Deliver(m *Message) {
	nd, ok := n.nodes[m.To]
	if !ok || nd.handler == nil {
		return
	}
	nd.recv.Messages++
	nd.recv.Bytes += m.Size
	nd.handler(*m)
}

func (n *Network) account(m Message, l *Link) {
	n.totalMsgs++
	n.totalBytes += m.Size
	if nd, ok := n.nodes[m.From]; ok {
		nd.sent.Messages++
		nd.sent.Bytes += m.Size
	}
	if l != nil {
		l.Stats.Messages++
		l.Stats.Bytes += m.Size
	}
	ks, ok := n.kinds[m.Kind]
	if !ok {
		ks = &KindStats{}
		n.kinds[m.Kind] = ks
	}
	ks.Messages++
	ks.Bytes += m.Size
}

// After schedules fn to run after delay.
func (n *Network) After(delay Time, fn func()) {
	if delay < 0 {
		delay = 0
	}
	n.schedule(delay, fn)
}

func (n *Network) schedule(delay Time, fn func()) {
	n.seq++
	heap.Push(&n.events, &event{at: n.now + delay, seq: n.seq, fn: fn})
}

// Step executes the next event; it reports false when the queue is
// empty.
func (n *Network) Step() bool {
	if n.events.Len() == 0 {
		return false
	}
	e := heap.Pop(&n.events).(*event)
	n.now = e.at
	if e.msg != nil {
		n.Deliver(e.msg)
	} else {
		e.fn()
	}
	return true
}

// EpochEvent is one scheduled event drained by NextEpoch: either a
// message delivery (Msg != nil) or a timer/callback (Fn != nil).
type EpochEvent struct {
	// Seq is the event's schedule sequence number; it totally orders
	// the events of an epoch and lets schedulers that execute them out
	// of order merge their effects back deterministically.
	Seq uint64
	Msg *Message
	Fn  func()
}

// Epoch is the batch of all events sharing the earliest pending
// virtual timestamp, in schedule (Seq) order.
type Epoch struct {
	At     Time
	Events []EpochEvent
}

// NextEpoch pops every pending event that shares the earliest
// timestamp, advances the clock to it, and returns the batch. ok is
// false when the queue is empty.
//
// Executing the drained events is the caller's responsibility: run Fn
// events inline and hand Msg events to Deliver. Executing them in Seq
// order reproduces Step/Run exactly; executing deliveries concurrently
// (one worker per destination, Seq order within each destination) is
// the parallel schedule used by internal/engine. Events the caller
// drops are lost.
func (n *Network) NextEpoch() (Epoch, bool) {
	if n.events.Len() == 0 {
		return Epoch{}, false
	}
	at := n.events[0].at
	ep := Epoch{At: at}
	for n.events.Len() > 0 && n.events[0].at == at {
		e := heap.Pop(&n.events).(*event)
		ep.Events = append(ep.Events, EpochEvent{Seq: e.seq, Msg: e.msg, Fn: e.fn})
	}
	n.now = at
	return ep, true
}

// Run drains the event queue up to maxEvents (0 = unlimited) and returns
// the number of events executed.
func (n *Network) Run(maxEvents int) int {
	count := 0
	for n.Step() {
		count++
		if maxEvents > 0 && count >= maxEvents {
			break
		}
	}
	return count
}

// RunUntil executes events with time <= deadline and returns the count.
func (n *Network) RunUntil(deadline Time) int {
	count := 0
	for n.events.Len() > 0 && n.events[0].at <= deadline {
		n.Step()
		count++
	}
	if n.now < deadline {
		n.now = deadline
	}
	return count
}

// Pending reports the number of queued events.
func (n *Network) Pending() int { return n.events.Len() }

// Totals returns total messages, bytes, and drops since creation.
func (n *Network) Totals() (msgs, bytes, drops int) {
	return n.totalMsgs, n.totalBytes, n.totalDrops
}

// KindTotals returns traffic per message kind (copy).
func (n *Network) KindTotals() map[string]KindStats {
	out := make(map[string]KindStats, len(n.kinds))
	for k, v := range n.kinds {
		out[k] = *v
	}
	return out
}

// NodeTraffic returns the sent/received stats of a node.
func (n *Network) NodeTraffic(name string) (sent, recv LinkStats, ok bool) {
	nd, found := n.nodes[name]
	if !found {
		return LinkStats{}, LinkStats{}, false
	}
	return nd.sent, nd.recv, true
}

// ResetTraffic zeroes all traffic counters (links, nodes, kinds,
// totals), used to isolate per-experiment measurements.
func (n *Network) ResetTraffic() {
	n.totalMsgs, n.totalBytes, n.totalDrops = 0, 0, 0
	n.kinds = map[string]*KindStats{}
	for _, l := range n.links {
		l.Stats = LinkStats{}
	}
	for _, nd := range n.nodes {
		nd.sent = LinkStats{}
		nd.recv = LinkStats{}
	}
}
