package simnet

import "testing"

func TestReliableDeliversOverDownLink(t *testing.T) {
	n, got := twoNodes(t)
	n.DefaultLatency = 9 * Millisecond
	l, _ := n.Connect("a", "b", Millisecond)
	n.SetLinkUp("a", "b", false)
	n.Send(Message{From: "a", To: "b", Reliable: true})
	n.Run(0)
	if len(*got) != 1 {
		t.Fatal("reliable message dropped over down link")
	}
	// Rerouted: default latency, and the link's stats do not count it.
	if n.Now() != 9*Millisecond {
		t.Fatalf("now = %d, want default-latency delivery", n.Now())
	}
	if l.Stats.Messages != 0 || l.Stats.Drops != 0 {
		t.Fatalf("down link accounted rerouted traffic: %+v", l.Stats)
	}
}

func TestReliableIgnoresLoss(t *testing.T) {
	n := New(5)
	delivered := 0
	n.AddNode("a", nil)
	n.AddNode("b", func(Message) { delivered++ })
	l, _ := n.Connect("a", "b", Millisecond)
	l.Loss = 1.0 // drop everything unreliable
	for i := 0; i < 20; i++ {
		n.Send(Message{From: "a", To: "b", Reliable: true})
	}
	n.Run(0)
	if delivered != 20 {
		t.Fatalf("delivered %d of 20 reliable messages", delivered)
	}
	if l.Stats.Drops != 0 {
		t.Fatalf("drops = %d", l.Stats.Drops)
	}
	// Unreliable traffic still drops.
	n.Send(Message{From: "a", To: "b"})
	n.Run(0)
	if delivered != 20 || l.Stats.Drops != 1 {
		t.Fatalf("loss stopped applying: delivered=%d drops=%d", delivered, l.Stats.Drops)
	}
}

func TestReliableOverridesDirectOnly(t *testing.T) {
	n, got := twoNodes(t)
	n.DirectOnly = true
	n.Send(Message{From: "a", To: "b", Reliable: true})
	n.Run(0)
	if len(*got) != 1 {
		t.Fatal("reliable message dropped under DirectOnly")
	}
}

func TestReliableToUnknownNodeStillDrops(t *testing.T) {
	n, _ := twoNodes(t)
	n.Send(Message{From: "a", To: "zz", Reliable: true})
	_, _, drops := n.Totals()
	if drops != 1 {
		t.Fatalf("drops = %d", drops)
	}
}

func TestReliableUsesLinkLatencyWhenUp(t *testing.T) {
	n, got := twoNodes(t)
	n.DefaultLatency = 9 * Millisecond
	n.Connect("a", "b", 2*Millisecond)
	n.Send(Message{From: "a", To: "b", Reliable: true})
	n.Run(0)
	if len(*got) != 1 || n.Now() != 2*Millisecond {
		t.Fatalf("got=%d now=%d", len(*got), n.Now())
	}
}
