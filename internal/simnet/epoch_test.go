package simnet

import (
	"reflect"
	"testing"
)

// twoNodeNet builds a pair of connected nodes whose handlers append
// delivered payloads to the returned log.
func twoNodeNet(t *testing.T, latency Time) (*Network, *[]string) {
	t.Helper()
	n := New(1)
	var log []string
	mk := func(name string) Handler {
		return func(m Message) { log = append(log, name+":"+m.Payload.(string)) }
	}
	if err := n.AddNode("a", mk("a")); err != nil {
		t.Fatal(err)
	}
	if err := n.AddNode("b", mk("b")); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Connect("a", "b", latency); err != nil {
		t.Fatal(err)
	}
	return n, &log
}

func TestNextEpochGroupsEarliestTimestamp(t *testing.T) {
	n, _ := twoNodeNet(t, 5)
	n.Send(Message{From: "a", To: "b", Kind: "x", Payload: "m1"})
	n.Send(Message{From: "b", To: "a", Kind: "x", Payload: "m2"})
	n.After(9, func() {})

	ep, ok := n.NextEpoch()
	if !ok {
		t.Fatal("expected an epoch")
	}
	if ep.At != 5 || len(ep.Events) != 2 {
		t.Fatalf("epoch = at %d with %d events, want at 5 with 2", ep.At, len(ep.Events))
	}
	if n.Now() != 5 {
		t.Fatalf("clock = %d, want 5", n.Now())
	}
	for i, ev := range ep.Events {
		if ev.Msg == nil {
			t.Fatalf("event %d is not a delivery", i)
		}
	}
	if ep.Events[0].Seq >= ep.Events[1].Seq {
		t.Fatalf("events out of schedule order: %d, %d", ep.Events[0].Seq, ep.Events[1].Seq)
	}
	// The timer at t=9 forms its own later epoch.
	ep2, ok := n.NextEpoch()
	if !ok || ep2.At != 9 || len(ep2.Events) != 1 || ep2.Events[0].Fn == nil {
		t.Fatalf("second epoch = %+v, ok=%v", ep2, ok)
	}
	if _, ok := n.NextEpoch(); ok {
		t.Fatal("queue should be drained")
	}
}

func TestNextEpochDeliverMatchesRun(t *testing.T) {
	build := func() (*Network, *[]string) {
		n, log := twoNodeNet(t, 3)
		// A chain: delivering m1 at b triggers a reply, plus a timer
		// in the same instant as the reply's arrival.
		if err := n.SetHandler("b", func(m Message) {
			*log = append(*log, "b:"+m.Payload.(string))
			if m.Payload.(string) == "ping" {
				n.Send(Message{From: "b", To: "a", Kind: "x", Payload: "pong"})
			}
		}); err != nil {
			t.Fatal(err)
		}
		n.Send(Message{From: "a", To: "b", Kind: "x", Payload: "ping"})
		n.After(6, func() { *log = append(*log, "timer") })
		return n, log
	}

	serial, serialLog := build()
	serial.Run(0)

	epoch, epochLog := build()
	for {
		ep, ok := epoch.NextEpoch()
		if !ok {
			break
		}
		for _, ev := range ep.Events {
			if ev.Msg != nil {
				epoch.Deliver(ev.Msg)
			} else {
				ev.Fn()
			}
		}
	}

	if !reflect.DeepEqual(*serialLog, *epochLog) {
		t.Fatalf("epoch replay diverged: serial %v, epoch %v", *serialLog, *epochLog)
	}
	if serial.Now() != epoch.Now() {
		t.Fatalf("clocks diverged: %d vs %d", serial.Now(), epoch.Now())
	}
	sm, sb, _ := serial.Totals()
	em, eb, _ := epoch.Totals()
	if sm != em || sb != eb {
		t.Fatalf("traffic diverged: %d/%d vs %d/%d", sm, sb, em, eb)
	}
}

func TestDeliverAccountsReceiveTraffic(t *testing.T) {
	n, log := twoNodeNet(t, 1)
	n.Send(Message{From: "a", To: "b", Kind: "x", Payload: "m", Size: 40})
	ep, ok := n.NextEpoch()
	if !ok || len(ep.Events) != 1 {
		t.Fatalf("epoch = %+v, ok=%v", ep, ok)
	}
	n.Deliver(ep.Events[0].Msg)
	if len(*log) != 1 || (*log)[0] != "b:m" {
		t.Fatalf("log = %v", *log)
	}
	_, recv, ok := n.NodeTraffic("b")
	if !ok || recv.Messages != 1 || recv.Bytes != 40 {
		t.Fatalf("recv stats = %+v", recv)
	}
}
