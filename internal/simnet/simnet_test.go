package simnet

import (
	"testing"
)

func twoNodes(t *testing.T) (*Network, *[]Message) {
	t.Helper()
	n := New(1)
	var got []Message
	if err := n.AddNode("a", nil); err != nil {
		t.Fatal(err)
	}
	if err := n.AddNode("b", func(m Message) { got = append(got, m) }); err != nil {
		t.Fatal(err)
	}
	return n, &got
}

func TestAddNodeErrors(t *testing.T) {
	n := New(1)
	if err := n.AddNode("", nil); err == nil {
		t.Fatal("empty name must error")
	}
	if err := n.AddNode("a", nil); err != nil {
		t.Fatal(err)
	}
	if err := n.AddNode("a", nil); err == nil {
		t.Fatal("duplicate must error")
	}
	if err := n.SetHandler("zz", nil); err == nil {
		t.Fatal("unknown node must error")
	}
}

func TestSendOverLink(t *testing.T) {
	n, got := twoNodes(t)
	if _, err := n.Connect("a", "b", 5*Millisecond); err != nil {
		t.Fatal(err)
	}
	n.Send(Message{From: "a", To: "b", Kind: "delta", Size: 100})
	if len(*got) != 0 {
		t.Fatal("delivery must be asynchronous")
	}
	n.Run(0)
	if len(*got) != 1 || (*got)[0].Size != 100 {
		t.Fatalf("got = %v", *got)
	}
	if n.Now() != 5*Millisecond {
		t.Fatalf("now = %d", n.Now())
	}
	l, _ := n.LinkBetween("a", "b")
	if l.Stats.Messages != 1 || l.Stats.Bytes != 100 {
		t.Fatalf("link stats = %+v", l.Stats)
	}
}

func TestSendWithoutLinkUsesDefaultLatency(t *testing.T) {
	n, got := twoNodes(t)
	n.DefaultLatency = 7 * Millisecond
	n.Send(Message{From: "a", To: "b"})
	n.Run(0)
	if len(*got) != 1 || n.Now() != 7*Millisecond {
		t.Fatalf("got=%d now=%d", len(*got), n.Now())
	}
}

func TestDirectOnlyDropsUnlinked(t *testing.T) {
	n, got := twoNodes(t)
	n.DirectOnly = true
	n.Send(Message{From: "a", To: "b"})
	n.Run(0)
	if len(*got) != 0 {
		t.Fatal("message should be dropped")
	}
	_, _, drops := n.Totals()
	if drops != 1 {
		t.Fatalf("drops = %d", drops)
	}
}

func TestDownLinkDrops(t *testing.T) {
	n, got := twoNodes(t)
	n.Connect("a", "b", Millisecond)
	n.SetLinkUp("a", "b", false)
	n.Send(Message{From: "a", To: "b"})
	n.Run(0)
	if len(*got) != 0 {
		t.Fatal("message over down link must drop")
	}
	l, _ := n.LinkBetween("a", "b")
	if l.Stats.Drops != 1 {
		t.Fatalf("link drops = %d", l.Stats.Drops)
	}
	n.SetLinkUp("a", "b", true)
	n.Send(Message{From: "a", To: "b"})
	n.Run(0)
	if len(*got) != 1 {
		t.Fatal("message after link restore must deliver")
	}
}

func TestLossyLinkDeterministic(t *testing.T) {
	run := func(seed int64) int {
		n := New(seed)
		delivered := 0
		n.AddNode("a", nil)
		n.AddNode("b", func(Message) { delivered++ })
		l, _ := n.Connect("a", "b", Millisecond)
		l.Loss = 0.5
		for i := 0; i < 100; i++ {
			n.Send(Message{From: "a", To: "b"})
		}
		n.Run(0)
		return delivered
	}
	a, b := run(42), run(42)
	if a != b {
		t.Fatalf("same seed delivered %d vs %d", a, b)
	}
	if a == 0 || a == 100 {
		t.Fatalf("loss 0.5 delivered %d of 100", a)
	}
}

func TestSendToUnknownNode(t *testing.T) {
	n, _ := twoNodes(t)
	n.Send(Message{From: "a", To: "zz"})
	_, _, drops := n.Totals()
	if drops != 1 {
		t.Fatalf("drops = %d", drops)
	}
}

func TestLocalSendDeliversAsync(t *testing.T) {
	n := New(1)
	var got []Message
	n.AddNode("a", func(m Message) { got = append(got, m) })
	n.Send(Message{From: "a", To: "a"})
	if len(got) != 0 {
		t.Fatal("local send must still be scheduled")
	}
	n.Run(0)
	if len(got) != 1 || n.Now() != 0 {
		t.Fatalf("got=%d now=%d", len(got), n.Now())
	}
}

func TestEventOrderingDeterministic(t *testing.T) {
	n := New(1)
	var order []int
	n.After(10, func() { order = append(order, 2) })
	n.After(5, func() { order = append(order, 1) })
	n.After(10, func() { order = append(order, 3) }) // same time: FIFO by seq
	n.Run(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	n := New(1)
	fired := 0
	n.After(5, func() { fired++ })
	n.After(50, func() { fired++ })
	count := n.RunUntil(10)
	if count != 1 || fired != 1 {
		t.Fatalf("count=%d fired=%d", count, fired)
	}
	if n.Now() != 10 {
		t.Fatalf("now = %d", n.Now())
	}
	if n.Pending() != 1 {
		t.Fatalf("pending = %d", n.Pending())
	}
}

func TestNeighborsAndLinks(t *testing.T) {
	n := New(1)
	for _, name := range []string{"a", "b", "c"} {
		n.AddNode(name, nil)
	}
	n.Connect("a", "b", Millisecond)
	n.Connect("a", "c", Millisecond)
	nb := n.Neighbors("a")
	if len(nb) != 2 || nb[0] != "b" || nb[1] != "c" {
		t.Fatalf("neighbors = %v", nb)
	}
	n.SetLinkUp("a", "b", false)
	nb = n.Neighbors("a")
	if len(nb) != 1 || nb[0] != "c" {
		t.Fatalf("neighbors after down = %v", nb)
	}
	if len(n.Links()) != 2 {
		t.Fatalf("links = %v", n.Links())
	}
	n.Disconnect("a", "b")
	if len(n.Links()) != 1 {
		t.Fatalf("links after disconnect = %v", n.Links())
	}
	if _, err := n.Connect("a", "a", 0); err == nil {
		t.Fatal("self link must error")
	}
	if _, err := n.Connect("a", "zz", 0); err == nil {
		t.Fatal("unknown node must error")
	}
	// Reconnect re-activates with new latency.
	n.SetLinkUp("a", "c", false)
	l, err := n.Connect("a", "c", 9*Millisecond)
	if err != nil || !l.Up || l.Latency != 9*Millisecond {
		t.Fatalf("reconnect: %v %+v", err, l)
	}
}

func TestKindAndNodeAccounting(t *testing.T) {
	n, _ := twoNodes(t)
	n.Connect("a", "b", Millisecond)
	n.Send(Message{From: "a", To: "b", Kind: "delta", Size: 10})
	n.Send(Message{From: "a", To: "b", Kind: "query", Size: 20})
	n.Send(Message{From: "a", To: "b", Kind: "query", Size: 30})
	n.Run(0)
	kinds := n.KindTotals()
	if kinds["delta"].Messages != 1 || kinds["query"].Messages != 2 || kinds["query"].Bytes != 50 {
		t.Fatalf("kinds = %+v", kinds)
	}
	sent, _, ok := n.NodeTraffic("a")
	if !ok || sent.Messages != 3 || sent.Bytes != 60 {
		t.Fatalf("a sent = %+v", sent)
	}
	_, recv, _ := n.NodeTraffic("b")
	if recv.Messages != 3 {
		t.Fatalf("b recv = %+v", recv)
	}
	msgs, bytes, _ := n.Totals()
	if msgs != 3 || bytes != 60 {
		t.Fatalf("totals = %d %d", msgs, bytes)
	}
	n.ResetTraffic()
	msgs, bytes, _ = n.Totals()
	if msgs != 0 || bytes != 0 || len(n.KindTotals()) != 0 {
		t.Fatal("ResetTraffic incomplete")
	}
	if _, _, ok := n.NodeTraffic("zz"); ok {
		t.Fatal("unknown node traffic should report !ok")
	}
}

func TestPositionsAndRange(t *testing.T) {
	n := New(1)
	n.AddNode("a", nil)
	n.AddNode("b", nil)
	if err := n.SetPosition("a", Position{0, 0}); err != nil {
		t.Fatal(err)
	}
	n.SetPosition("b", Position{3, 4})
	if !n.InRange("a", "b", 5) {
		t.Fatal("distance 5 should be in range 5")
	}
	if n.InRange("a", "b", 4.9) {
		t.Fatal("should be out of range")
	}
	if err := n.SetPosition("zz", Position{}); err == nil {
		t.Fatal("unknown node must error")
	}
	p, ok := n.PositionOf("b")
	if !ok || p.X != 3 {
		t.Fatalf("pos = %v %v", p, ok)
	}
	if _, ok := n.PositionOf("zz"); ok {
		t.Fatal("phantom position")
	}
}

func TestMobilityScatterAndStep(t *testing.T) {
	n := New(7)
	for _, name := range []string{"a", "b", "c", "d"} {
		n.AddNode(name, nil)
	}
	m := NewMobilityModel(n, 7, 100, 100, 40, 5)
	var ups, downs int
	m.OnLinkUp = func(a, b string) { ups++ }
	m.OnLinkDown = func(a, b string) { downs++ }
	m.Scatter()
	initialUps := ups
	if len(m.AdjacentPairs()) != initialUps {
		t.Fatalf("pairs %d != ups %d", len(m.AdjacentPairs()), initialUps)
	}
	// Walk for a while; connectivity must change at some point with
	// these parameters.
	for i := 0; i < 200; i++ {
		m.Step()
	}
	if ups == initialUps && downs == 0 {
		t.Fatal("mobility produced no connectivity changes in 200 steps")
	}
	// Adjacency is symmetric and matches InRange.
	for _, p := range m.AdjacentPairs() {
		if !n.InRange(p[0], p[1], 40) {
			t.Fatalf("adjacent pair %v out of range", p)
		}
		if !m.Adjacent(p[0], p[1]) || !m.Adjacent(p[1], p[0]) {
			t.Fatal("Adjacent not symmetric")
		}
	}
}

func TestMobilityDeterministic(t *testing.T) {
	run := func() []string {
		n := New(3)
		for _, name := range []string{"a", "b", "c"} {
			n.AddNode(name, nil)
		}
		m := NewMobilityModel(n, 3, 50, 50, 25, 4)
		var log []string
		m.OnLinkUp = func(a, b string) { log = append(log, "+"+a+b) }
		m.OnLinkDown = func(a, b string) { log = append(log, "-"+a+b) }
		m.Scatter()
		for i := 0; i < 50; i++ {
			m.Step()
		}
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different log lengths %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("log diverges at %d: %s vs %s", i, a[i], b[i])
		}
	}
}
