package simnet

import (
	"math/rand"
	"sort"
)

// Waypoint mobility for the DSR (mobile ad-hoc) scenario: each node
// walks toward a random waypoint inside a bounding box; when it arrives
// it picks a new one. Connectivity is radio-range based; the model
// reports link appearance/disappearance so the protocol layer can
// maintain link base tuples.

// MobilityModel moves nodes and recomputes range-based connectivity.
type MobilityModel struct {
	net    *Network
	rng    *rand.Rand
	Width  float64
	Height float64
	Range  float64 // radio range
	Speed  float64 // distance units per step

	waypoints map[string]Position
	adjacent  map[linkKey]bool

	// OnLinkUp/OnLinkDown fire when range connectivity changes.
	OnLinkUp   func(a, b string)
	OnLinkDown func(a, b string)
}

// NewMobilityModel creates a model over the network's nodes.
func NewMobilityModel(net *Network, seed int64, width, height, radioRange, speed float64) *MobilityModel {
	return &MobilityModel{
		net:       net,
		rng:       rand.New(rand.NewSource(seed)),
		Width:     width,
		Height:    height,
		Range:     radioRange,
		Speed:     speed,
		waypoints: map[string]Position{},
		adjacent:  map[linkKey]bool{},
	}
}

// Scatter places every node uniformly at random and computes initial
// connectivity (firing OnLinkUp for each in-range pair).
func (m *MobilityModel) Scatter() {
	for _, name := range m.net.Nodes() {
		p := Position{X: m.rng.Float64() * m.Width, Y: m.rng.Float64() * m.Height}
		_ = m.net.SetPosition(name, p)
		m.waypoints[name] = m.newWaypoint()
	}
	m.refreshLinks()
}

func (m *MobilityModel) newWaypoint() Position {
	return Position{X: m.rng.Float64() * m.Width, Y: m.rng.Float64() * m.Height}
}

// Step moves every node one speed-step toward its waypoint and updates
// connectivity.
func (m *MobilityModel) Step() {
	for _, name := range m.net.Nodes() {
		pos, _ := m.net.PositionOf(name)
		wp := m.waypoints[name]
		d := pos.Dist(wp)
		if d <= m.Speed {
			_ = m.net.SetPosition(name, wp)
			m.waypoints[name] = m.newWaypoint()
			continue
		}
		frac := m.Speed / d
		_ = m.net.SetPosition(name, Position{
			X: pos.X + (wp.X-pos.X)*frac,
			Y: pos.Y + (wp.Y-pos.Y)*frac,
		})
	}
	m.refreshLinks()
}

// refreshLinks recomputes pairwise connectivity and fires callbacks for
// changes, in deterministic (sorted) order.
func (m *MobilityModel) refreshLinks() {
	nodes := m.net.Nodes()
	next := map[linkKey]bool{}
	for i, a := range nodes {
		for _, b := range nodes[i+1:] {
			if m.net.InRange(a, b, m.Range) {
				next[keyFor(a, b)] = true
			}
		}
	}
	var ups, downs []linkKey
	for k := range next {
		if !m.adjacent[k] {
			ups = append(ups, k)
		}
	}
	for k := range m.adjacent {
		if !next[k] {
			downs = append(downs, k)
		}
	}
	sort.Slice(ups, func(i, j int) bool {
		if ups[i].a != ups[j].a {
			return ups[i].a < ups[j].a
		}
		return ups[i].b < ups[j].b
	})
	sort.Slice(downs, func(i, j int) bool {
		if downs[i].a != downs[j].a {
			return downs[i].a < downs[j].a
		}
		return downs[i].b < downs[j].b
	})
	m.adjacent = next
	for _, k := range downs {
		m.net.SetLinkUp(k.a, k.b, false)
		if m.OnLinkDown != nil {
			m.OnLinkDown(k.a, k.b)
		}
	}
	for _, k := range ups {
		if _, ok := m.net.LinkBetween(k.a, k.b); !ok {
			_, _ = m.net.Connect(k.a, k.b, 1*Millisecond)
		} else {
			m.net.SetLinkUp(k.a, k.b, true)
		}
		if m.OnLinkUp != nil {
			m.OnLinkUp(k.a, k.b)
		}
	}
}

// Adjacent reports current range connectivity between two nodes.
func (m *MobilityModel) Adjacent(a, b string) bool { return m.adjacent[keyFor(a, b)] }

// AdjacentPairs returns all in-range pairs, sorted.
func (m *MobilityModel) AdjacentPairs() [][2]string {
	var keys []linkKey
	for k := range m.adjacent {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	out := make([][2]string, len(keys))
	for i, k := range keys {
		out[i] = [2]string{k.a, k.b}
	}
	return out
}
