package simnet

import (
	"errors"
	"fmt"
	"sync"
)

// Transport is the cross-process exchange primitive behind the
// distributed engine. One Exchange call is both the epoch barrier and
// the all-to-all data move for one protocol step: every member calls
// Exchange with the same step and phase, contributes its payload, and
// unblocks only once every peer's payload for that step has arrived.
// The result is indexed by member rank; the caller's own slot is nil.
//
// Steps are strictly increasing per member; phase disambiguates the
// sub-steps within one engine round (frames vs propose). Implementations
// must deliver payloads intact and in step order — the engine's
// determinism proof assumes a reliable, ordered exchange, so transports
// over lossy media (internal/nettransport over TCP with fault
// injection) must repair or fail loudly, never deliver corrupt or
// reordered data.
//
// The in-memory implementation is MemCluster (shared-memory barriers);
// internal/nettransport provides the TCP implementation.
type Transport interface {
	// Exchange publishes payload for (step, phase), waits for all
	// peers' payloads for the same (step, phase), and returns them
	// indexed by member rank (own slot nil). It is an error to reuse or
	// decrease step, and to call Exchange after Close.
	Exchange(step uint64, phase uint8, payload []byte) ([][]byte, error)
	// Self returns this member's rank in [0, Size).
	Self() int
	// Size returns the number of members.
	Size() int
	// Close tears the member down. Peers blocked in Exchange waiting on
	// this member fail with ErrClosed rather than hanging.
	Close() error
}

// ErrClosed is returned by Exchange once any member of the cluster has
// been closed (locally or, for MemCluster, any peer).
var ErrClosed = errors.New("transport: closed")

// MemCluster is the in-memory Transport: n members exchanging payloads
// through shared memory under one lock. It exists so the distributed
// engine protocol can be exercised hermetically (no sockets) and so
// in-process multi-engine tests stay fast and deterministic.
type MemCluster struct {
	mu     sync.Mutex
	cond   *sync.Cond
	size   int
	closed bool
	// slots[step][phase] accumulates payloads for one exchange. Entries
	// are garbage-collected once all members have read them.
	slots map[memKey]*memSlot
}

type memKey struct {
	step  uint64
	phase uint8
}

type memSlot struct {
	payloads [][]byte
	present  int
	read     int
}

// NewMemCluster creates an in-memory cluster of n members.
func NewMemCluster(n int) *MemCluster {
	c := &MemCluster{size: n, slots: map[memKey]*memSlot{}}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Member returns the Transport handle for rank self.
func (c *MemCluster) Member(self int) Transport {
	if self < 0 || self >= c.size {
		panic(fmt.Sprintf("simnet: member rank %d out of range [0,%d)", self, c.size))
	}
	return &memMember{c: c, self: self}
}

// Close marks the whole cluster closed, waking every blocked Exchange.
func (c *MemCluster) Close() error {
	c.mu.Lock()
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
	return nil
}

type memMember struct {
	c    *MemCluster
	self int
	step uint64
	init bool
}

func (m *memMember) Self() int    { return m.self }
func (m *memMember) Size() int    { return m.c.size }
func (m *memMember) Close() error { return m.c.Close() }

func (m *memMember) Exchange(step uint64, phase uint8, payload []byte) ([][]byte, error) {
	if m.init && step <= m.step {
		return nil, fmt.Errorf("transport: step %d not after %d", step, m.step)
	}
	m.init, m.step = true, step

	c := m.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	k := memKey{step, phase}
	s, ok := c.slots[k]
	if !ok {
		s = &memSlot{payloads: make([][]byte, c.size)}
		c.slots[k] = s
	}
	s.payloads[m.self] = payload
	s.present++
	c.cond.Broadcast()
	for s.present < c.size && !c.closed {
		c.cond.Wait()
	}
	if c.closed && s.present < c.size {
		return nil, ErrClosed
	}
	out := make([][]byte, c.size)
	copy(out, s.payloads)
	out[m.self] = nil
	s.read++
	if s.read == c.size {
		delete(c.slots, k)
	}
	return out, nil
}
