// Package provgraph is the single traversal core of the provenance
// query engine: one recursive graph-walk over the distributed
// provenance graph G(V,E), shared by every evaluation mode. The walk is
// written in continuation-passing style and parameterized by a Source,
// so the same merge/cycle/threshold/limit logic serves
//
//   - the live distributed traversal (internal/provquery.Client), where
//     cross-node expansions become request/response messages over the
//     simulated network and continuations fire on message delivery, and
//   - the snapshot traversal (internal/provquery.SnapshotClient), where
//     continuations fire synchronously against frozen partition views
//     and the network cost is modeled instead of measured.
//
// Query features — new query types, traversal limits, caching — are
// implemented here exactly once and inherited by both adapters.
package provgraph

import (
	"sort"

	"repro/internal/rel"
	"repro/internal/simnet"
)

// QueryType selects what the traversal computes.
type QueryType int

// Query types offered by the demonstration.
const (
	// Lineage returns the full proof tree of a tuple.
	Lineage QueryType = iota
	// BaseTuples returns the set of base tuples the result depends on.
	BaseTuples
	// Nodes returns the set of nodes that participated in any
	// derivation of the tuple.
	Nodes
	// DerivCount returns the total number of alternative proof trees.
	DerivCount
)

// String names the query type as the API and query language spell it.
func (t QueryType) String() string {
	switch t {
	case Lineage:
		return "lineage"
	case BaseTuples:
		return "base-tuples"
	case Nodes:
		return "nodes"
	case DerivCount:
		return "deriv-count"
	}
	return "unknown"
}

// Options tunes a query.
type Options struct {
	// UseCache reuses previously computed sub-results at each node
	// (invalidated whenever the node's provenance partition changes).
	// Ignored while MaxDepth or MaxNodes is set: limit-truncated
	// sub-results depend on where in the walk they were computed and
	// must not be reused.
	UseCache bool
	// Threshold, when > 0, bounds the number of alternative derivations
	// explored per tuple; results are then lower bounds marked Pruned.
	Threshold int
	// Sequential explores children one at a time (DFS order) instead of
	// issuing all sub-queries concurrently (BFS). Message counts match;
	// latency differs.
	Sequential bool
	// MaxDepth, when > 0, bounds the derivation chain: tuples MaxDepth
	// or more levels below the queried tuple are returned unexpanded
	// and marked Truncated (MaxDepth 1 expands only the root). Depth is
	// a property of the path, so the truncation frontier is identical
	// in every evaluation mode.
	MaxDepth int
	// MaxNodes, when > 0, bounds the total number of tuple vertices the
	// walk resolves; once the budget is spent, further vertices are
	// returned unexpanded and marked Truncated. The budget is consumed
	// in visit order: with Sequential (DFS) the frontier is identical
	// across evaluation modes, while concurrent (BFS) order may place
	// it differently live vs. snapshot.
	MaxNodes int
}

// Limited reports whether any traversal limit is set.
func (o Options) Limited() bool { return o.MaxDepth > 0 || o.MaxNodes > 0 }

// TupleAt is a tuple together with its home node.
type TupleAt struct {
	Tuple rel.Tuple
	Loc   string
}

// ProofDeriv is one derivation step in a proof tree.
type ProofDeriv struct {
	RID      rel.ID
	Rule     string
	RLoc     string
	Children []*ProofNode
}

// ProofNode is one tuple vertex in a proof tree.
type ProofNode struct {
	VID       rel.ID
	Tuple     rel.Tuple
	Loc       string
	Base      bool
	Cycle     bool // traversal met this tuple again on its own path
	Pruned    bool // some derivations were not explored (threshold)
	Truncated bool // expansion stopped by maxdepth/maxnodes
	Derivs    []*ProofDeriv
}

// Size counts the tuple vertices in the proof tree.
func (p *ProofNode) Size() int {
	n := 1
	for _, d := range p.Derivs {
		for _, c := range d.Children {
			n += c.Size()
		}
	}
	return n
}

// Depth returns the longest derivation chain length.
func (p *ProofNode) Depth() int {
	max := 0
	for _, d := range p.Derivs {
		for _, c := range d.Children {
			if d := c.Depth(); d > max {
				max = d
			}
		}
	}
	return max + 1
}

// Stats reports a query's cost.
type Stats struct {
	Messages int
	Bytes    int
	Latency  simnet.Time
	// CacheHits counts sub-results served from per-node caches during
	// the traversal itself (Options.UseCache on the live path).
	CacheHits int
	// SubProofHits / SubProofMisses report the serving-layer sub-proof
	// cache counters observed when this result was produced (set by
	// internal/server when answering from a pinned snapshot; zero on
	// direct traversals).
	SubProofHits   int
	SubProofMisses int
}

// Result is a completed query.
type Result struct {
	Type      QueryType
	Root      *ProofNode // Lineage
	Bases     []TupleAt  // BaseTuples
	Nodes     []string   // Nodes
	Count     int        // DerivCount
	Pruned    bool
	Truncated bool
	Stats     Stats
}

// SubResult is the partial result a walk accumulates per subtree; on
// the live path it is what travels between nodes.
type SubResult struct {
	Node      *ProofNode
	Bases     []TupleAt
	Nodes     map[string]bool
	Count     int
	Pruned    bool
	Truncated bool
}

// NewResult assembles a finished Result from the root sub-result.
// Stats are left zero: each adapter fills in its own cost measurement
// (measured traffic live, modeled traffic on snapshots).
func NewResult(typ QueryType, out SubResult) *Result {
	res := &Result{Type: typ, Pruned: out.Pruned, Truncated: out.Truncated}
	switch typ {
	case Lineage:
		res.Root = out.Node
	case BaseTuples:
		res.Bases = DedupBases(out.Bases)
	case Nodes:
		for n := range out.Nodes {
			res.Nodes = append(res.Nodes, n)
		}
		sort.Strings(res.Nodes)
	case DerivCount:
		res.Count = out.Count
	}
	return res
}

// DedupBases drops duplicate base tuples and sorts deterministically.
func DedupBases(in []TupleAt) []TupleAt {
	seen := map[rel.ID]bool{}
	var out []TupleAt
	for _, b := range in {
		vid := b.Tuple.VID()
		if !seen[vid] {
			seen[vid] = true
			out = append(out, b)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tuple.Compare(out[j].Tuple) < 0 })
	return out
}

// CycleResult is the sub-result for a tuple the walk met again on its
// own derivation path: a leaf marked Cycle contributing no derivations.
func CycleResult(vid rel.ID, tuple rel.Tuple, loc string) SubResult {
	return SubResult{
		Node:  &ProofNode{VID: vid, Tuple: tuple, Loc: loc, Cycle: true},
		Nodes: map[string]bool{loc: true},
		Count: 0,
	}
}

// MissingResult is the sub-result for an id with no provenance at loc.
func MissingResult(id rel.ID, loc string) SubResult {
	return SubResult{
		Node:  &ProofNode{VID: id, Loc: loc},
		Nodes: map[string]bool{loc: true},
		Count: 0,
	}
}

// TruncatedResult is the sub-result for a tuple the walk refused to
// expand because a traversal limit (maxdepth/maxnodes) was reached.
func TruncatedResult(vid rel.ID, tuple rel.Tuple, loc string) SubResult {
	return SubResult{
		Node:      &ProofNode{VID: vid, Tuple: tuple, Loc: loc, Truncated: true},
		Nodes:     map[string]bool{loc: true},
		Count:     0,
		Truncated: true,
	}
}

// MergeInto folds a derivation-level result into a tuple-level result.
func MergeInto(acc *SubResult, r SubResult) {
	if r.Node != nil && acc.Node != nil {
		acc.Node.Derivs = append(acc.Node.Derivs, r.Node.Derivs...)
	}
	acc.Bases = append(acc.Bases, r.Bases...)
	for n := range r.Nodes {
		acc.Nodes[n] = true
	}
	acc.Count += r.Count
	acc.Pruned = acc.Pruned || r.Pruned
	acc.Truncated = acc.Truncated || r.Truncated
}

// Thunk is a deferred sub-query: invoked, it eventually calls cont with
// its sub-result (immediately on snapshots, on message delivery live).
type Thunk func(cont func(SubResult))

// RunAll executes thunks either concurrently (all issued before any
// completion) or sequentially (each issued from the previous one's
// continuation), then calls done with results in order.
func RunAll(thunks []Thunk, sequential bool, done func([]SubResult)) {
	n := len(thunks)
	if n == 0 {
		done(nil)
		return
	}
	results := make([]SubResult, n)
	if sequential {
		var step func(i int)
		step = func(i int) {
			if i == n {
				done(results)
				return
			}
			thunks[i](func(r SubResult) {
				results[i] = r
				step(i + 1)
			})
		}
		step(0)
		return
	}
	remaining := n
	for i, th := range thunks {
		i := i
		th(func(r SubResult) {
			results[i] = r
			remaining--
			if remaining == 0 {
				done(results)
			}
		})
	}
}

// RequestSize approximates the wire size of a query request carrying a
// visited path of the given length.
func RequestSize(visited int) int { return 64 + 20*visited }

// ResponseSize approximates the wire size of a sub-result by type:
// lineage ships tree structure, base-tuples ships tuples, nodes ships
// addresses, counts ship integers. This is what makes the cheaper query
// types measurably cheaper, as in ExSPAN.
func ResponseSize(typ QueryType, r SubResult) int {
	switch typ {
	case Lineage:
		n := 0
		if r.Node != nil {
			for _, d := range r.Node.Derivs {
				for _, c := range d.Children {
					n += c.Size()
				}
			}
		}
		return 48 + 96*n
	case BaseTuples:
		n := 48
		for _, b := range r.Bases {
			n += len(rel.MarshalTuple(b.Tuple)) + 8
		}
		return n
	case Nodes:
		return 48 + 16*len(r.Nodes)
	case DerivCount:
		return 56
	}
	return 48
}
