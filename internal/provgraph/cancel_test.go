package provgraph

import (
	"context"
	"errors"
	"testing"

	"repro/internal/provenance"
	"repro/internal/rel"
	"repro/internal/testutil"
)

// cancellingSource cancels the walk's context from inside the graph —
// after a fixed number of Derivations lookups — so tests can prove the
// traversal stops mid-walk instead of draining the rest of the graph.
type cancellingSource struct {
	*fakeSource
	calls  int
	after  int
	cancel context.CancelFunc
}

func (c *cancellingSource) Derivations(loc string, vid rel.ID) ([]provenance.Entry, bool) {
	c.calls++
	if c.calls == c.after {
		c.cancel()
	}
	return c.fakeSource.Derivations(loc, vid)
}

// TestWalkCancelledMidWalkStopsExpanding: cancelling the context while
// the walk is deep inside a long chain aborts the remaining expansion
// — the walk still unwinds (the continuation fires) but resolves only
// the vertices visited before the cancellation, and Err reports why.
func TestWalkCancelledMidWalkStopsExpanding(t *testing.T) {
	testutil.CheckGoroutines(t)
	const depth = 200
	const after = 5
	f := newFakeSource()
	vid, loc := chain(f, depth)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := &cancellingSource{fakeSource: f, after: after, cancel: cancel}
	w := NewWalkContext(ctx, src, Lineage, Options{})

	done := false
	w.ResolveTuple(loc, vid, nil, func(SubResult) { done = true })
	if !done {
		t.Fatal("aborted walk never fired its continuation")
	}
	if err := w.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", err)
	}
	// The vertex whose Derivations call fired the cancel still
	// completes; everything below it must not be expanded.
	if got := w.Resolved(); got > after+1 {
		t.Fatalf("walk resolved %d vertices after cancellation at call %d (chain depth %d)",
			got, after, depth)
	}
	if src.calls >= depth {
		t.Fatalf("walk consulted the source %d times, i.e. drained the whole chain", src.calls)
	}
}

// TestWalkExpiredDeadlineResolvesNothing: a context that is already
// past its deadline aborts the walk at the very first vertex.
func TestWalkExpiredDeadlineResolvesNothing(t *testing.T) {
	testutil.CheckGoroutines(t)
	f := newFakeSource()
	vid, loc := chain(f, 10)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w := NewWalkContext(ctx, f, Lineage, Options{})
	done := false
	w.ResolveTuple(loc, vid, nil, func(SubResult) { done = true })
	if !done {
		t.Fatal("aborted walk never fired its continuation")
	}
	if w.Resolved() != 0 {
		t.Fatalf("walk resolved %d vertices under a dead context", w.Resolved())
	}
	if err := w.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", err)
	}
}

// TestWalkAbortNeverCaches: an aborted walk's partial accumulators
// must not be written into per-node caches, where a later full walk
// would wrongly reuse them.
func TestWalkAbortNeverCaches(t *testing.T) {
	testutil.CheckGoroutines(t)
	const depth = 50
	f := newFakeSource()
	vid, loc := chain(f, depth)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := &cancellingSource{fakeSource: f, after: 3, cancel: cancel}
	w := NewWalkContext(ctx, src, Lineage, Options{UseCache: true})
	w.ResolveTuple(loc, vid, nil, func(SubResult) {})
	if w.Err() == nil {
		t.Fatal("walk was not aborted")
	}
	if f.puts != 0 {
		t.Fatalf("aborted walk wrote %d cache entries", f.puts)
	}

	// The same walk run to completion afterwards sees clean caches and
	// produces the full proof.
	out := run(t, NewWalk(f, Lineage, Options{UseCache: true}), loc, vid)
	if res := NewResult(Lineage, out); res.Root == nil || res.Root.Size() != depth+1 {
		t.Fatalf("post-abort walk damaged: got %d vertices, want %d", res.Root.Size(), depth+1)
	}
}
