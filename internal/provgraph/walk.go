package provgraph

import (
	"context"
	"time"

	"repro/internal/provenance"
	"repro/internal/rel"
)

// Source supplies a Walk with one system's provenance partitions and
// its cross-node hop mechanism. The walk only ever reads partition data
// for the location it is currently at; it crosses to another node
// exclusively through ExpandRemote, so an implementation decides what a
// hop costs (real messages live, modeled counters on snapshots).
type Source interface {
	// TupleOf resolves a pinned VID to its tuple value at loc.
	TupleOf(loc string, vid rel.ID) (rel.Tuple, bool)
	// Derivations returns the derivation entries of a tuple at loc in
	// deterministic order; ok is false when the tuple is unknown there.
	Derivations(loc string, vid rel.ID) ([]provenance.Entry, bool)
	// Exec returns the rule execution recorded for rid at loc.
	Exec(loc string, rid rel.ID) (provenance.ExecEntry, bool)
	// ExpandRemote evaluates rule execution rid at node loc — where it
	// executed — on behalf of node from, eventually calling cont with
	// the derivation-level sub-result. Implementations account the
	// request/response cost of the hop and re-enter the walk at loc via
	// w.ExpandExecLocal.
	ExpandRemote(w *Walk, from, loc string, rid rel.ID, visited []rel.ID, cont func(SubResult))
	// CacheGet/CachePut back Options.UseCache with a per-node
	// sub-result cache. Implementations that do not cache return
	// ok=false and ignore puts.
	CacheGet(loc string, key CacheKey) (SubResult, bool)
	CachePut(loc string, key CacheKey, res SubResult)
}

// CacheKey identifies a cacheable per-node sub-result: the tuple, what
// is being computed about it, and the only option that changes the
// value path-independently (threshold). Traversal limits are excluded —
// the walk bypasses the cache entirely while they are set.
type CacheKey struct {
	VID       rel.ID
	Type      QueryType
	Threshold int
}

// Walk is one query's traversal state: the query parameters plus the
// node budget shared across every location the walk reaches. A Walk is
// driven by exactly one evaluation at a time (the simulation thread
// live, one goroutine on snapshots) and is not safe for concurrent use.
type Walk struct {
	Type QueryType
	Opts Options
	src  Source
	ctx  context.Context

	resolved int // tuple vertices resolved so far (MaxNodes budget)
	err      error
}

// NewWalk prepares a traversal of the given type over src, without a
// cancellation context (the walk runs to completion).
func NewWalk(src Source, typ QueryType, opts Options) *Walk {
	//lint:allow ctxflow context-free compatibility entry point: a walk without cancellation runs to completion by design
	return NewWalkContext(context.Background(), src, typ, opts)
}

// NewWalkContext prepares a traversal whose expansion aborts once ctx
// is cancelled or its deadline passes. The walk still unwinds cleanly —
// every outstanding continuation fires with an empty sub-result — but
// the final result is partial and Err reports why; adapters must turn
// an aborted walk into an error, never into a Result.
func NewWalkContext(ctx context.Context, src Source, typ QueryType, opts Options) *Walk {
	return &Walk{Type: typ, Opts: opts, src: src, ctx: ctx}
}

// Err returns nil while the walk is live, and the context's error once
// cancellation or a deadline stopped the traversal mid-walk.
func (w *Walk) Err() error { return w.err }

// Resolved returns how many tuple vertices the walk has resolved so
// far — the cancellation tests use it to prove an aborted walk stopped
// early instead of draining the whole graph.
func (w *Walk) Resolved() int { return w.resolved }

// abort checks the walk's context; once it fires, every pending
// expansion short-circuits with an empty sub-result so the in-flight
// continuation tree drains immediately. The deadline is compared
// directly instead of waiting for ctx.Err(), so a passed deadline
// aborts at the very next vertex regardless of timer granularity.
func (w *Walk) abort(cont func(SubResult)) bool {
	if w.err == nil {
		if err := w.ctx.Err(); err != nil {
			w.err = err
		} else if d, ok := w.ctx.Deadline(); ok && !time.Now().Before(d) {
			w.err = context.DeadlineExceeded
		}
	}
	if w.err != nil {
		cont(SubResult{Nodes: map[string]bool{}})
		return true
	}
	return false
}

func (w *Walk) useCache() bool { return w.Opts.UseCache && !w.Opts.Limited() }

func (w *Walk) cacheKey(vid rel.ID) CacheKey {
	return CacheKey{VID: vid, Type: w.Type, Threshold: w.Opts.Threshold}
}

// ResolveTuple computes the sub-result for the tuple vid stored at loc:
// cycle detection on the visited path, traversal limits, per-node cache
// lookup, threshold pruning, and one derivation branch per prov entry.
func (w *Walk) ResolveTuple(loc string, vid rel.ID, visited []rel.ID, cont func(SubResult)) {
	if w.abort(cont) {
		return
	}
	for _, seen := range visited {
		if seen == vid {
			tuple, _ := w.src.TupleOf(loc, vid)
			cont(CycleResult(vid, tuple, loc))
			return
		}
	}
	if w.Opts.MaxDepth > 0 && len(visited) >= w.Opts.MaxDepth {
		tuple, _ := w.src.TupleOf(loc, vid)
		cont(TruncatedResult(vid, tuple, loc))
		return
	}
	if w.Opts.MaxNodes > 0 && w.resolved >= w.Opts.MaxNodes {
		tuple, _ := w.src.TupleOf(loc, vid)
		cont(TruncatedResult(vid, tuple, loc))
		return
	}
	w.resolved++
	if w.useCache() {
		if res, ok := w.src.CacheGet(loc, w.cacheKey(vid)); ok {
			cont(res)
			return
		}
	}
	tuple, ok := w.src.TupleOf(loc, vid)
	if !ok {
		cont(MissingResult(vid, loc))
		return
	}
	derivs, ok := w.src.Derivations(loc, vid)
	if !ok {
		cont(MissingResult(vid, loc))
		return
	}
	pruned := false
	if w.Opts.Threshold > 0 && len(derivs) > w.Opts.Threshold {
		derivs = derivs[:w.Opts.Threshold]
		pruned = true
	}
	node := &ProofNode{VID: vid, Tuple: tuple, Loc: loc, Pruned: pruned}
	acc := SubResult{
		Node:   node,
		Nodes:  map[string]bool{loc: true},
		Pruned: pruned,
	}
	childVisited := append(append([]rel.ID(nil), visited...), vid)

	var thunks []Thunk
	for _, d := range derivs {
		d := d
		if d.RID.IsZero() {
			node.Base = true
			acc.Bases = append(acc.Bases, TupleAt{Tuple: tuple, Loc: loc})
			acc.Count++
			continue
		}
		thunks = append(thunks, func(cont func(SubResult)) {
			if d.RLoc == loc {
				w.ExpandExecLocal(loc, d.RID, childVisited, cont)
			} else {
				w.src.ExpandRemote(w, loc, d.RLoc, d.RID, childVisited, cont)
			}
		})
	}
	RunAll(thunks, w.Opts.Sequential, func(results []SubResult) {
		for _, r := range results {
			MergeInto(&acc, r)
		}
		// An aborted walk's accumulator is partial: never cache it.
		if w.useCache() && w.err == nil {
			w.src.CachePut(loc, w.cacheKey(vid), acc)
		}
		cont(acc)
	})
}

// ExpandExecLocal resolves a rule execution at the node where it ran:
// all its input tuples are local; each is resolved (possibly recursing
// to other nodes) and combined into a derivation-level result.
func (w *Walk) ExpandExecLocal(loc string, rid rel.ID, visited []rel.ID, cont func(SubResult)) {
	if w.abort(cont) {
		return
	}
	exec, ok := w.src.Exec(loc, rid)
	if !ok {
		cont(MissingResult(rid, loc))
		return
	}
	var thunks []Thunk
	for _, vid := range exec.VIDs {
		vid := vid
		thunks = append(thunks, func(cont func(SubResult)) {
			w.ResolveTuple(loc, vid, visited, cont)
		})
	}
	RunAll(thunks, w.Opts.Sequential, func(results []SubResult) {
		deriv := &ProofDeriv{RID: rid, Rule: exec.Rule, RLoc: loc}
		out := SubResult{
			Nodes: map[string]bool{loc: true},
			Count: 1,
		}
		for _, r := range results {
			if r.Node != nil {
				deriv.Children = append(deriv.Children, r.Node)
			}
			out.Bases = append(out.Bases, r.Bases...)
			for n := range r.Nodes {
				out.Nodes[n] = true
			}
			out.Count *= r.Count
			out.Pruned = out.Pruned || r.Pruned
			out.Truncated = out.Truncated || r.Truncated
		}
		out.Node = &ProofNode{Derivs: []*ProofDeriv{deriv}} // carrier; merged by caller
		cont(out)
	})
}
