package provgraph

import (
	"fmt"
	"testing"

	"repro/internal/provenance"
	"repro/internal/rel"
)

// fakeSource is an in-memory multi-node provenance graph with
// synchronous hops, for exercising the walk without an engine. It
// records hop and cache traffic so tests can assert on the walk's
// interaction with its Source.
type fakeSource struct {
	tuples map[string]map[rel.ID]rel.Tuple
	derivs map[string]map[rel.ID][]provenance.Entry
	execs  map[string]map[rel.ID]provenance.ExecEntry

	hops    int
	cache   map[string]map[CacheKey]SubResult
	gets    int
	hits    int
	puts    int
	noCache bool // CacheGet always misses, CachePut drops
}

func newFakeSource() *fakeSource {
	return &fakeSource{
		tuples: map[string]map[rel.ID]rel.Tuple{},
		derivs: map[string]map[rel.ID][]provenance.Entry{},
		execs:  map[string]map[rel.ID]provenance.ExecEntry{},
		cache:  map[string]map[CacheKey]SubResult{},
	}
}

func (f *fakeSource) node(loc string) {
	if f.tuples[loc] == nil {
		f.tuples[loc] = map[rel.ID]rel.Tuple{}
		f.derivs[loc] = map[rel.ID][]provenance.Entry{}
		f.execs[loc] = map[rel.ID]provenance.ExecEntry{}
		f.cache[loc] = map[CacheKey]SubResult{}
	}
}

// base registers a base tuple at loc and returns its VID.
func (f *fakeSource) base(loc, name string) rel.ID {
	f.node(loc)
	t := rel.NewTuple(name, rel.Addr(loc))
	vid := t.VID()
	f.tuples[loc][vid] = t
	f.derivs[loc][vid] = append(f.derivs[loc][vid], provenance.Entry{VID: vid})
	return vid
}

// derived registers a tuple at loc derived by a rule executed at rloc
// over the input VIDs (which must be registered at rloc), and returns
// the new tuple's VID.
func (f *fakeSource) derived(loc, name, rule, rloc string, inputs ...rel.ID) rel.ID {
	f.node(loc)
	f.node(rloc)
	t := rel.NewTuple(name, rel.Addr(loc))
	vid := t.VID()
	f.tuples[loc][vid] = t
	rid := rel.HashParts([]byte(rule), []byte(rloc), vid[:])
	f.derivs[loc][vid] = append(f.derivs[loc][vid], provenance.Entry{VID: vid, RID: rid, RLoc: rloc})
	f.execs[rloc][rid] = provenance.ExecEntry{RID: rid, Rule: rule, VIDs: inputs}
	return vid
}

func (f *fakeSource) TupleOf(loc string, vid rel.ID) (rel.Tuple, bool) {
	t, ok := f.tuples[loc][vid]
	return t, ok
}

func (f *fakeSource) Derivations(loc string, vid rel.ID) ([]provenance.Entry, bool) {
	d, ok := f.derivs[loc][vid]
	return d, ok
}

func (f *fakeSource) Exec(loc string, rid rel.ID) (provenance.ExecEntry, bool) {
	e, ok := f.execs[loc][rid]
	return e, ok
}

func (f *fakeSource) ExpandRemote(w *Walk, from, loc string, rid rel.ID, visited []rel.ID, cont func(SubResult)) {
	f.hops++
	w.ExpandExecLocal(loc, rid, visited, cont)
}

func (f *fakeSource) CacheGet(loc string, key CacheKey) (SubResult, bool) {
	f.gets++
	if f.noCache {
		return SubResult{}, false
	}
	r, ok := f.cache[loc][key]
	if ok {
		f.hits++
	}
	return r, ok
}

func (f *fakeSource) CachePut(loc string, key CacheKey, res SubResult) {
	f.puts++
	if f.noCache {
		return
	}
	f.cache[loc][key] = res
}

// chain builds a cross-node derivation chain of the given length:
// d_n@n_n <- ... <- d_1@n_1 <- base@n_0, each rule executing at the
// derived tuple's own node over the previous node's tuple. Returns the
// top VID and its location.
func chain(f *fakeSource, length int) (rel.ID, string) {
	vid := f.base("h0", "b")
	loc := "h0"
	for i := 1; i <= length; i++ {
		at := fmt.Sprintf("h%d", i)
		// The rule executes at the previous hop (where its input lives)
		// and the derived tuple lands one node further, so every level
		// costs one remote expansion.
		vid = f.derived(at, fmt.Sprintf("d%d", i), fmt.Sprintf("r%d", i), loc, vid)
		loc = at
	}
	return vid, loc
}

func run(t *testing.T, w *Walk, loc string, vid rel.ID) SubResult {
	t.Helper()
	var out *SubResult
	w.ResolveTuple(loc, vid, nil, func(r SubResult) { out = &r })
	if out == nil {
		t.Fatal("walk did not complete synchronously")
	}
	return *out
}

func TestWalkLineageChain(t *testing.T) {
	f := newFakeSource()
	vid, loc := chain(f, 3)
	out := run(t, NewWalk(f, Lineage, Options{}), loc, vid)
	res := NewResult(Lineage, out)
	if res.Root == nil || res.Root.Size() != 4 {
		t.Fatalf("expected 4-vertex proof, got %+v", res.Root)
	}
	if res.Root.Depth() != 4 {
		t.Fatalf("depth = %d, want 4", res.Root.Depth())
	}
	if f.hops != 3 {
		t.Fatalf("remote hops = %d, want 3", f.hops)
	}
	if res.Truncated || res.Pruned {
		t.Fatalf("unexpected truncation/pruning: %+v", res)
	}
}

func TestWalkBasesNodesCount(t *testing.T) {
	f := newFakeSource()
	// Two alternative derivations of top@a: via m1@b and via m2@c, each
	// over the same base@a.
	base := f.base("a", "ground")
	m1 := f.derived("b", "m1", "rb", "a", base)
	m2 := f.derived("c", "m2", "rc", "a", base)
	top := f.derived("a", "top", "ra1", "b", m1)
	tt := f.tuples["a"][top]
	rid2 := rel.HashParts([]byte("ra2"), []byte("c"), top[:])
	f.derivs["a"][top] = append(f.derivs["a"][top], provenance.Entry{VID: top, RID: rid2, RLoc: "c"})
	f.execs["c"][rid2] = provenance.ExecEntry{RID: rid2, Rule: "ra2", VIDs: []rel.ID{m2}}
	_ = tt

	out := run(t, NewWalk(f, DerivCount, Options{}), "a", top)
	if out.Count != 2 {
		t.Fatalf("count = %d, want 2", out.Count)
	}
	out = run(t, NewWalk(f, BaseTuples, Options{}), "a", top)
	bases := DedupBases(out.Bases)
	if len(bases) != 1 || bases[0].Tuple.Rel != "ground" {
		t.Fatalf("bases = %v", bases)
	}
	res := NewResult(Nodes, run(t, NewWalk(f, Nodes, Options{}), "a", top))
	if got := fmt.Sprint(res.Nodes); got != "[a b c]" {
		t.Fatalf("nodes = %s, want [a b c]", got)
	}
}

func TestWalkThresholdPrunes(t *testing.T) {
	f := newFakeSource()
	base := f.base("a", "ground")
	top := f.derived("a", "top", "r1", "a", base)
	rid2 := rel.HashParts([]byte("r2"), []byte("a"), top[:])
	f.derivs["a"][top] = append(f.derivs["a"][top], provenance.Entry{VID: top, RID: rid2, RLoc: "a"})
	f.execs["a"][rid2] = provenance.ExecEntry{RID: rid2, Rule: "r2", VIDs: []rel.ID{base}}

	out := run(t, NewWalk(f, DerivCount, Options{Threshold: 1}), "a", top)
	if out.Count != 1 || !out.Pruned {
		t.Fatalf("threshold run = count %d pruned %v, want 1/true", out.Count, out.Pruned)
	}
}

func TestWalkCycleDetection(t *testing.T) {
	f := newFakeSource()
	// a <- b <- a: manufacture a two-tuple cycle.
	ta := rel.NewTuple("ca", rel.Addr("a"))
	tb := rel.NewTuple("cb", rel.Addr("a"))
	va, vb := ta.VID(), tb.VID()
	f.node("a")
	f.tuples["a"][va], f.tuples["a"][vb] = ta, tb
	ra := rel.HashParts([]byte("ra"), va[:])
	rb := rel.HashParts([]byte("rb"), vb[:])
	f.derivs["a"][va] = []provenance.Entry{{VID: va, RID: ra, RLoc: "a"}}
	f.derivs["a"][vb] = []provenance.Entry{{VID: vb, RID: rb, RLoc: "a"}}
	f.execs["a"][ra] = provenance.ExecEntry{RID: ra, Rule: "ra", VIDs: []rel.ID{vb}}
	f.execs["a"][rb] = provenance.ExecEntry{RID: rb, Rule: "rb", VIDs: []rel.ID{va}}

	out := run(t, NewWalk(f, Lineage, Options{}), "a", va)
	leaf := out.Node.Derivs[0].Children[0].Derivs[0].Children[0]
	if leaf.VID != va || !leaf.Cycle {
		t.Fatalf("expected cycle leaf back at the root tuple, got %+v", leaf)
	}
	if out.Count != 0 {
		t.Fatalf("a pure cycle has no finite derivation, count = %d", out.Count)
	}
}

func TestWalkMaxDepthTruncates(t *testing.T) {
	f := newFakeSource()
	vid, loc := chain(f, 5)
	out := run(t, NewWalk(f, Lineage, Options{MaxDepth: 2}), loc, vid)
	if !out.Truncated {
		t.Fatal("expected Truncated")
	}
	if got := out.Node.Depth(); got != 3 { // 2 expanded levels + truncated frontier vertex
		t.Fatalf("depth = %d, want 3", got)
	}
	frontier := out.Node.Derivs[0].Children[0].Derivs[0].Children[0]
	if !frontier.Truncated || len(frontier.Derivs) != 0 {
		t.Fatalf("frontier not truncated: %+v", frontier)
	}
	if frontier.Tuple.Rel == "" {
		t.Fatal("truncated vertex should still carry its tuple for display")
	}
	// Unlimited walk on the same graph is not truncated.
	if out := run(t, NewWalk(f, Lineage, Options{}), loc, vid); out.Truncated {
		t.Fatal("unlimited walk reported truncation")
	}
}

func TestWalkMaxNodesTruncates(t *testing.T) {
	f := newFakeSource()
	vid, loc := chain(f, 5)
	out := run(t, NewWalk(f, Lineage, Options{MaxNodes: 3, Sequential: true}), loc, vid)
	if !out.Truncated {
		t.Fatal("expected Truncated")
	}
	if got := out.Node.Size(); got != 4 { // 3 resolved + 1 truncated frontier vertex
		t.Fatalf("size = %d, want 4", got)
	}
	if out := run(t, NewWalk(f, Lineage, Options{MaxNodes: 100}), loc, vid); out.Truncated {
		t.Fatal("generous budget reported truncation")
	}
}

func TestWalkCacheHooks(t *testing.T) {
	f := newFakeSource()
	// Two derivations of top share the sub-proof of mid: with UseCache
	// the second expansion must be served from the cache.
	base := f.base("a", "ground")
	mid := f.derived("a", "mid", "rm", "a", base)
	top := f.derived("a", "top", "r1", "a", mid)
	rid2 := rel.HashParts([]byte("r2"), top[:])
	f.derivs["a"][top] = append(f.derivs["a"][top], provenance.Entry{VID: top, RID: rid2, RLoc: "a"})
	f.execs["a"][rid2] = provenance.ExecEntry{RID: rid2, Rule: "r2", VIDs: []rel.ID{mid}}

	out := run(t, NewWalk(f, DerivCount, Options{UseCache: true}), "a", top)
	if out.Count != 2 {
		t.Fatalf("count = %d, want 2", out.Count)
	}
	if f.hits != 1 {
		t.Fatalf("cache hits = %d, want 1 (shared mid sub-proof)", f.hits)
	}

	// With a traversal limit set the cache must be bypassed entirely.
	f.gets, f.puts = 0, 0
	_ = run(t, NewWalk(f, DerivCount, Options{UseCache: true, MaxDepth: 10}), "a", top)
	if f.gets != 0 || f.puts != 0 {
		t.Fatalf("limited walk touched the cache: %d gets, %d puts", f.gets, f.puts)
	}
}

func TestWalkMissingVertex(t *testing.T) {
	f := newFakeSource()
	f.node("a")
	var ghost rel.ID
	ghost[0] = 0xff
	out := run(t, NewWalk(f, Lineage, Options{}), "a", ghost)
	if out.Node == nil || out.Node.VID != ghost || out.Count != 0 {
		t.Fatalf("missing vertex result = %+v", out)
	}
}
