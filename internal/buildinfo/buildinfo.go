// Package buildinfo exposes the binary's embedded build metadata —
// module path and version, the Go toolchain, and selected build
// settings — in one place for the four cmd/ binaries' -version flags
// and the HTTP API's GET /v1/version endpoint.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
)

// Info is the build metadata of the running binary.
type Info struct {
	// Module is the main module path (e.g. "repro").
	Module string `json:"module"`
	// Version is the main module version; "(devel)" for source builds.
	Version string `json:"version"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"goVersion"`
	// Settings carries the build settings debug.ReadBuildInfo records
	// (vcs revision, build flags, target platform, ...).
	Settings map[string]string `json:"settings,omitempty"`
}

// Get reads the running binary's build information. Binaries built
// without module support (never the case for this repo) fall back to
// the runtime version alone.
func Get() Info {
	info := Info{Version: "(unknown)", GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	info.Module = bi.Main.Path
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	if bi.GoVersion != "" {
		info.GoVersion = bi.GoVersion
	}
	if len(bi.Settings) > 0 {
		info.Settings = make(map[string]string, len(bi.Settings))
		for _, s := range bi.Settings {
			if s.Value != "" {
				info.Settings[s.Key] = s.Value
			}
		}
	}
	return info
}

// String renders the info as the one-line form the -version flags
// print: "name module/version go1.x (key=value ...)" with only the
// identifying settings included.
func (i Info) String() string {
	parts := []string{i.Module, i.Version, i.GoVersion}
	var settings []string
	for _, key := range []string{"vcs.revision", "vcs.time", "GOOS", "GOARCH"} {
		if v, ok := i.Settings[key]; ok {
			settings = append(settings, key+"="+v)
		}
	}
	sort.Strings(settings)
	if len(settings) > 0 {
		parts = append(parts, "("+strings.Join(settings, " ")+")")
	}
	return strings.Join(parts, " ")
}

// PrintVersion writes "name: <info>" to stdout — the body of every
// cmd/ binary's -version flag.
func PrintVersion(name string) {
	fmt.Printf("%s: %s\n", name, Get())
}
