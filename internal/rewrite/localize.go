// Package rewrite implements NDlog's two compile-time program
// transformations:
//
//  1. Localization (Loo et al., "Declarative Networking"): rules whose
//     bodies span two nodes are split into link-restricted local rules
//     plus an intermediate relation shipped across the connecting link
//     atom.
//  2. The ExSPAN provenance rewrite (Zhou et al., SIGMOD 2010): given a
//     program, emit additional rules that define the distributed
//     provenance relations prov(@Loc,VID,RID,RLoc) and
//     ruleExec(@RLoc,RID,Rule,VIDList) as views over the program's
//     derivations.
package rewrite

import (
	"fmt"
	"sort"

	"repro/internal/ndlog"
)

// Localize rewrites every multi-location rule into link-restricted local
// rules. The returned program is new; the input is not mutated. Rules
// already local (all body atoms at one location variable) pass through
// unchanged. Bodies spanning more than two location variables, or two
// locations with no connecting atom, are rejected.
func Localize(p *ndlog.Program) (*ndlog.Program, error) {
	out := &ndlog.Program{Name: p.Name}
	for _, m := range p.Materialized {
		out.Materialized = append(out.Materialized, &ndlog.MaterializeDecl{
			Name: m.Name, Lifetime: m.Lifetime, Size: m.Size, Keys: append([]int(nil), m.Keys...),
		})
	}
	for _, r := range p.Rules {
		if r.Maybe || len(r.Body) == 0 {
			out.Rules = append(out.Rules, r.Clone())
			continue
		}
		locs := bodyLocVars(r)
		switch len(locs) {
		case 0:
			return nil, fmt.Errorf("rewrite: rule %s: no body location variables", ruleName(r))
		case 1:
			out.Rules = append(out.Rules, r.Clone())
		case 2:
			stage1, stage2, decl, err := splitRule(r)
			if err != nil {
				return nil, err
			}
			out.Materialized = append(out.Materialized, decl)
			out.Rules = append(out.Rules, stage1, stage2)
		default:
			return nil, fmt.Errorf("rewrite: rule %s: body spans %d locations; NDlog rules must be link-restricted (≤2)", ruleName(r), len(locs))
		}
	}
	return out, nil
}

func ruleName(r *ndlog.Rule) string {
	if r.Label != "" {
		return r.Label
	}
	return r.Head.Rel
}

// bodyLocVars returns the distinct location variables of the body atoms,
// sorted for determinism.
func bodyLocVars(r *ndlog.Rule) []string {
	set := map[string]bool{}
	for _, a := range r.BodyAtoms() {
		if lv, ok := a.LocVar(); ok {
			set[lv] = true
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// splitRule performs the two-location rewrite. It finds a connecting
// atom (an atom at location X that mentions the other location variable
// Y), evaluates everything X-local first, ships an intermediate tuple to
// Y, and finishes there.
func splitRule(r *ndlog.Rule) (stage1, stage2 *ndlog.Rule, decl *ndlog.MaterializeDecl, err error) {
	name := ruleName(r)
	locs := bodyLocVars(r)
	// Find origin: a body atom whose location variable is one of the two
	// and whose arguments mention the other.
	var origin, remote string
	for _, a := range r.BodyAtoms() {
		lv, _ := a.LocVar()
		other := locs[0]
		if lv == locs[0] {
			other = locs[1]
		}
		vars := map[string]bool{}
		a.Vars(vars)
		if vars[other] {
			origin, remote = lv, other
			break
		}
	}
	if origin == "" {
		return nil, nil, nil, fmt.Errorf("rewrite: rule %s: not link-restricted (no body atom connects %s and %s)", name, locs[0], locs[1])
	}

	// Partition terms between the stages. Atoms go by location; a
	// condition or assignment goes to stage 1 iff its variables are all
	// bound by stage-1 atoms or earlier stage-1 assignments.
	bound1 := map[string]bool{}
	for _, a := range r.BodyAtoms() {
		if lv, _ := a.LocVar(); lv == origin {
			a.Vars(bound1)
		}
	}
	var body1, body2 []ndlog.Term
	for _, t := range r.Body {
		switch t := t.(type) {
		case *ndlog.Atom:
			if lv, _ := t.LocVar(); lv == origin {
				body1 = append(body1, cloneTerm(t))
			} else {
				body2 = append(body2, cloneTerm(t))
			}
		case *ndlog.Assign:
			vars := map[string]bool{}
			t.Expr.ExprVars(vars)
			if allIn(vars, bound1) {
				body1 = append(body1, cloneTerm(t))
				bound1[t.Var] = true
			} else {
				body2 = append(body2, cloneTerm(t))
			}
		case *ndlog.Cond:
			vars := map[string]bool{}
			t.Vars(vars)
			if allIn(vars, bound1) {
				body1 = append(body1, cloneTerm(t))
			} else {
				body2 = append(body2, cloneTerm(t))
			}
		}
	}

	// Variables the intermediate must carry: everything stage 2 or the
	// head reads that stage 1 binds, with the remote location variable
	// first (it becomes the @ column).
	need := map[string]bool{}
	r.Head.Vars(need)
	for _, t := range body2 {
		t.Vars(need)
	}
	// Assignments in stage 2 bind their own targets.
	for _, t := range body2 {
		if a, ok := t.(*ndlog.Assign); ok {
			delete(need, a.Var)
		}
	}
	var carry []string
	for v := range need {
		if v != remote && bound1[v] {
			carry = append(carry, v)
		}
	}
	sort.Strings(carry)

	interName := fmt.Sprintf("e_%s_%s", name, remote)
	interArgs := []ndlog.Arg{&ndlog.VarArg{Name: remote}}
	for _, v := range carry {
		interArgs = append(interArgs, &ndlog.VarArg{Name: v})
	}
	interHead := &ndlog.Atom{Rel: interName, Args: interArgs, LocArg: 0}

	stage1 = &ndlog.Rule{Label: name + "_loc1", Head: interHead, Body: body1}
	stage2Body := append([]ndlog.Term{interHead.Clone()}, body2...)
	stage2 = &ndlog.Rule{Label: name + "_loc2", Head: r.Head.Clone(), Body: stage2Body}

	// The intermediate is materialized so deletions propagate through
	// counting and late-arriving remote-side tuples can still join.
	keys := make([]int, len(interArgs))
	for i := range keys {
		keys[i] = i + 1
	}
	decl = &ndlog.MaterializeDecl{Name: interName, Lifetime: "infinity", Size: "infinity", Keys: keys}
	return stage1, stage2, decl, nil
}

func allIn(vars, bound map[string]bool) bool {
	for v := range vars {
		if !bound[v] {
			return false
		}
	}
	return true
}

func cloneTerm(t ndlog.Term) ndlog.Term {
	switch t := t.(type) {
	case *ndlog.Atom:
		return t.Clone()
	case *ndlog.Cond, *ndlog.Assign:
		// Clone via a throwaway rule to reuse the AST deep copy.
		r := &ndlog.Rule{Head: &ndlog.Atom{Rel: "x"}, Body: []ndlog.Term{t}}
		return r.Clone().Body[0]
	}
	panic("rewrite: unknown term type")
}
