package rewrite

import (
	"strings"
	"testing"

	"repro/internal/eval"
	"repro/internal/ndlog"
	"repro/internal/rel"
)

func linkT(s, d string, c int64) rel.Tuple {
	return rel.NewTuple("link", rel.Addr(s), rel.Addr(d), rel.Int(c))
}

func TestProvenanceRewriteShape(t *testing.T) {
	src := `
materialize(link, infinity, infinity, keys(1,2)).
materialize(reach, infinity, infinity, keys(1,2)).
r1 reach(@S,D) :- link(@S,D,_).
`
	p := ndlog.MustParse(src)
	out, err := Provenance(p, ProvenanceOptions{SkipAggregates: true})
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"materialize(prov", "materialize(ruleExec",
		"r1_pr1 ruleExec(@S, PrRID, \"r1\", PrVIDs)",
		"r1_pr2 prov(@S, PrVID, PrRID, S)",
		"f_mkvid(\"link\", S, D, PrWild0)",
		"f_mkrid(\"r1\", S, PrVIDs)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("rewrite output missing %q:\n%s", want, text)
		}
	}
	// The augmented program must analyze and compile.
	a, err := ndlog.Analyze(out)
	if err != nil {
		t.Fatalf("augmented program invalid: %v\n%s", err, text)
	}
	if _, err := eval.Compile(a); err != nil {
		t.Fatalf("augmented program does not compile: %v", err)
	}
}

func TestProvenanceRewriteSkipsMaybeFactsAndAggs(t *testing.T) {
	src := `
materialize(cost, infinity, infinity, keys(1,2,3)).
materialize(best, infinity, infinity, keys(1,2)).
f1 cost(@'a','b',1).
m1 best(@S,D,min<C>) :- cost(@S,D,C).
br1 outr(@S,R2) ?- inr(@S,R1), f_isExtend(R2,R1,S) == 1.
`
	p := ndlog.MustParse(src)
	out, err := Provenance(p, ProvenanceOptions{SkipAggregates: true})
	if err != nil {
		t.Fatal(err)
	}
	// Only the original 3 rules; no _pr rules.
	if len(out.Rules) != 3 {
		t.Fatalf("rules = %d:\n%s", len(out.Rules), out)
	}
	// With SkipAggregates=false the aggregate rule is an error.
	if _, err := Provenance(p, ProvenanceOptions{SkipAggregates: false}); err == nil {
		t.Fatal("aggregate provenance rewrite should be rejected")
	}
}

// TestRewriteRulesAgreeWithRuntimeHook executes the provenance-rewritten
// program and cross-checks the rule-defined ruleExec/prov tables against
// the firings reported by the runtime hook: same RIDs, same cardinality.
// This validates that the displayed ExSPAN rewrite and the hook-based
// maintenance engine implement the same semantics.
func TestRewriteRulesAgreeWithRuntimeHook(t *testing.T) {
	src := `
materialize(link, infinity, infinity, keys(1,2)).
materialize(reach, infinity, infinity, keys(1,2)).
r1 reach(@S,D) :- link(@S,D,_).
r2 reach(@S,D) :- link(@S,D,_), link(@S,D,_).
`
	p := ndlog.MustParse(src)
	aug, err := Provenance(p, ProvenanceOptions{SkipAggregates: true})
	if err != nil {
		t.Fatal(err)
	}
	a, err := ndlog.Analyze(aug)
	if err != nil {
		t.Fatal(err)
	}
	c, err := eval.Compile(a)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := eval.NewRuntime("a", c, nil)
	if err != nil {
		t.Fatal(err)
	}
	rt.ErrFn = func(e error) { t.Errorf("eval: %v", e) }
	hookRIDs := map[rel.ID]int{}
	rt.FireFn = func(f eval.Firing) {
		if strings.HasSuffix(f.RuleName, "_pr1") || strings.HasSuffix(f.RuleName, "_pr2") {
			return // provenance-of-provenance is not tracked
		}
		vids := make([]rel.ID, len(f.Inputs))
		for i, in := range f.Inputs {
			vids[i] = in.VID()
		}
		hookRIDs[eval.RuleExecID(f.RuleName, "a", vids)] += f.Sign
	}
	if err := rt.InsertBase(linkT("a", "b", 1)); err != nil {
		t.Fatal(err)
	}
	if err := rt.InsertBase(linkT("a", "c", 2)); err != nil {
		t.Fatal(err)
	}

	exec, err := rt.Store.Table(RuleExecRel)
	if err != nil {
		t.Fatal(err)
	}
	tableRIDs := map[rel.ID]int{}
	for _, tp := range exec.Tuples() {
		id, ok := tp.Vals[1].AsID()
		if !ok {
			t.Fatalf("ruleExec RID column not an ID: %v", tp)
		}
		tableRIDs[id]++
	}
	for id, n := range hookRIDs {
		if n <= 0 {
			continue
		}
		if tableRIDs[id] == 0 {
			t.Errorf("hook RID %s missing from ruleExec table", id.Short())
		}
	}
	for id := range tableRIDs {
		if hookRIDs[id] <= 0 {
			t.Errorf("ruleExec table has RID %s the hook never fired", id.Short())
		}
	}
	// prov table: one entry per (tuple, derivation).
	prov, err := rt.Store.Table(ProvRel)
	if err != nil {
		t.Fatal(err)
	}
	if prov.Len() != exec.Len() {
		t.Fatalf("prov (%d) and ruleExec (%d) cardinality mismatch", prov.Len(), exec.Len())
	}
	// Deleting a base tuple must retract its provenance rows too.
	if err := rt.DeleteBase(linkT("a", "b", 1)); err != nil {
		t.Fatal(err)
	}
	for _, tp := range prov.Tuples() {
		if strings.Contains(tp.String(), "b") && !strings.Contains(tp.String(), "c") {
			// crude but effective: no prov rows should reference only b-derivations
			t.Fatalf("stale prov row after deletion: %v", tp)
		}
	}
}
