package rewrite

import (
	"fmt"
	"sort"

	"repro/internal/ndlog"
)

// DeletionSafety inspects a program for rules whose deletions the
// counting-based maintenance engine cannot handle exactly.
//
// Counting retracts a derived tuple when its last recorded derivation
// is retracted. That is exact when the derivation graph is acyclic,
// which holds for "derivation-height-monotone" recursion: every trip
// around a recursive cycle strictly grows some bounded measure (a path
// list checked with f_member, a cost bounded by a comparison, an
// aggregate that dampens re-derivation). Pure cyclic recursion like
//
//	reach(@N,X,Z) :- edge(@N,X,Y), reach(@N,Y,Z).
//
// can build mutually-supporting derivations around a graph cycle that
// survive the deletion of their original base support (the classic
// DRed motivation). DeletionSafety returns a warning for every
// recursive rule with no damping evidence: no aggregate head and no
// body condition. The check is a heuristic — a vacuous condition
// defeats it — but it flags exactly the textbook-unsafe shapes while
// accepting all of the demonstration protocols.
func DeletionSafety(p *ndlog.Program) []string {
	// Relation dependency graph: head depends on body relations.
	deps := map[string]map[string]bool{}
	for _, r := range p.Rules {
		if r.Maybe || len(r.Body) == 0 {
			continue
		}
		m := deps[r.Head.Rel]
		if m == nil {
			m = map[string]bool{}
			deps[r.Head.Rel] = m
		}
		for _, a := range r.BodyAtoms() {
			m[a.Rel] = true
		}
	}
	scc := stronglyConnected(deps)
	comp := map[string]int{}
	for i, c := range scc {
		for _, n := range c {
			comp[n] = i
		}
	}
	inCycle := func(a, b string) bool {
		ca, ok1 := comp[a]
		cb, ok2 := comp[b]
		if !ok1 || !ok2 || ca != cb {
			return false
		}
		// Same component: recursive only if the component has a cycle
		// (size > 1, or a self-loop).
		if len(scc[ca]) > 1 {
			return true
		}
		return deps[a][a]
	}

	damped := func(r *ndlog.Rule) bool {
		if r.Head.HasAgg() {
			return true
		}
		for _, t := range r.Body {
			if _, ok := t.(*ndlog.Cond); ok {
				return true
			}
		}
		return false
	}
	isRecursive := func(r *ndlog.Rule) bool {
		for _, a := range r.BodyAtoms() {
			if inCycle(r.Head.Rel, a.Rel) {
				return true
			}
		}
		return false
	}
	// recursiveRulesFor: relation -> its recursive rules.
	recRules := map[string][]*ndlog.Rule{}
	for _, r := range p.Rules {
		if r.Maybe || len(r.Body) == 0 {
			continue
		}
		if isRecursive(r) {
			recRules[r.Head.Rel] = append(recRules[r.Head.Rel], r)
		}
	}

	var warnings []string
	for _, r := range p.Rules {
		if r.Maybe || len(r.Body) == 0 || !isRecursive(r) || damped(r) {
			continue
		}
		// An undamped recursive rule is still fine when every cycle
		// through it must pass a damped rule: each of its in-SCC body
		// atoms is derived, on any cycle, by one of that relation's
		// recursive rules — if those are all damped, the cycle is
		// damped. (One-level check; deeper indirection is flagged
		// conservatively.)
		safe := true
		for _, a := range r.BodyAtoms() {
			if !inCycle(r.Head.Rel, a.Rel) {
				continue
			}
			for _, rr := range recRules[a.Rel] {
				if rr != r && !damped(rr) {
					safe = false
				}
			}
			if len(recRules[a.Rel]) == 1 && recRules[a.Rel][0] == r {
				// The only cycle edge for this atom is the rule itself:
				// a direct self-cycle with no damping.
				safe = false
			}
		}
		if safe {
			continue
		}
		warnings = append(warnings, fmt.Sprintf(
			"rule %s: recursive without aggregate or condition; deletions over cyclic data may leave self-supporting derivations (counting is exact only for derivation-height-monotone recursion; see DESIGN.md §5)",
			ruleName(r)))
	}
	sort.Strings(warnings)
	return warnings
}

// stronglyConnected returns the SCCs of the dependency graph (Tarjan).
func stronglyConnected(deps map[string]map[string]bool) [][]string {
	nodes := map[string]bool{}
	for a, m := range deps {
		nodes[a] = true
		for b := range m {
			nodes[b] = true
		}
	}
	names := make([]string, 0, len(nodes))
	for n := range nodes {
		names = append(names, n)
	}
	sort.Strings(names)

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var out [][]string
	counter := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		var succ []string
		for w := range deps[v] {
			succ = append(succ, w)
		}
		sort.Strings(succ)
		for _, w := range succ {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Strings(comp)
			out = append(out, comp)
		}
	}
	for _, n := range names {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
	return out
}
