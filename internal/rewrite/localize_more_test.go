package rewrite

import (
	"testing"

	"repro/internal/eval"
	"repro/internal/ndlog"
	"repro/internal/rel"
)

// TestLocalizeHeadAtThirdVariable covers a rule whose head location is
// bound in the body but is neither of the two body locations: the
// stage-2 runtime send handles the final hop.
func TestLocalizeHeadAtThirdVariable(t *testing.T) {
	src := `
materialize(link, infinity, infinity, keys(1,2)).
materialize(owner, infinity, infinity, keys(1,2)).
materialize(report, infinity, infinity, keys(1,2,3)).
r1 report(@O,S,D) :- link(@S,Z,_), owner(@Z,O), D := Z.
`
	p := ndlog.MustParse(src)
	out, err := Localize(p)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ndlog.Analyze(out)
	if err != nil {
		t.Fatalf("localized invalid: %v\n%s", err, out)
	}
	c, err := eval.Compile(a)
	if err != nil {
		t.Fatal(err)
	}
	// Execute over three hand-wired runtimes.
	rts := map[string]*eval.Runtime{}
	type msg struct {
		dst string
		d   eval.Delta
	}
	var inflight []msg
	for _, n := range []string{"s", "z", "o"} {
		rt, err := eval.NewRuntime(n, c, nil)
		if err != nil {
			t.Fatal(err)
		}
		rt.ErrFn = func(e error) { t.Errorf("eval: %v", e) }
		rt.SendFn = func(dst string, d eval.Delta, f *eval.Firing) {
			inflight = append(inflight, msg{dst, d})
		}
		rts[n] = rt
	}
	pump := func() {
		for len(inflight) > 0 {
			m := inflight[0]
			inflight = inflight[1:]
			rts[m.dst].ReceiveRemote(m.d)
		}
	}
	if err := rts["s"].InsertBase(rel.NewTuple("link", rel.Addr("s"), rel.Addr("z"), rel.Int(1))); err != nil {
		t.Fatal(err)
	}
	pump()
	if err := rts["z"].InsertBase(rel.NewTuple("owner", rel.Addr("z"), rel.Addr("o"))); err != nil {
		t.Fatal(err)
	}
	pump()
	tbl, err := rts["o"].Store.Table("report")
	if err != nil {
		t.Fatal(err)
	}
	ts := tbl.Tuples()
	if len(ts) != 1 || ts[0].String() != "report(@o, s, z)" {
		t.Fatalf("report at o = %v", ts)
	}
}

// TestLocalizeCarriesOnlyNeededVariables: the intermediate relation
// ships exactly the variables stage 2 and the head consume.
func TestLocalizeCarriesOnlyNeededVariables(t *testing.T) {
	src := `
materialize(link, infinity, infinity, keys(1,2)).
materialize(big, infinity, infinity, keys(1,2)).
materialize(out, infinity, infinity, keys(1,2)).
r1 out(@S,D) :- link(@S,Z,Unused), big(@Z,D).
`
	out, err := Localize(ndlog.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	stage1 := out.Rules[0]
	// Carried: Z (loc) + S; Unused must not travel.
	if len(stage1.Head.Args) != 2 {
		t.Fatalf("intermediate arity = %d: %s", len(stage1.Head.Args), stage1)
	}
	for _, a := range stage1.Head.Args {
		if v, ok := a.(*ndlog.VarArg); ok && v.Name == "Unused" {
			t.Fatalf("unused variable shipped: %s", stage1)
		}
	}
}

// TestLocalizeDeterministic: two runs produce identical programs.
func TestLocalizeDeterministic(t *testing.T) {
	src := `
materialize(link, infinity, infinity, keys(1,2)).
materialize(path, infinity, infinity, keys(1,2,3)).
p2 path(@S,D,C) :- link(@S,Z,C1), path(@Z,D,C2), C := C1 + C2, C < 9.
`
	a, err := Localize(ndlog.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Localize(ndlog.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("nondeterministic localization:\n%s\nvs\n%s", a, b)
	}
}
