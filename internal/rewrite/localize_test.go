package rewrite

import (
	"strings"
	"testing"

	"repro/internal/eval"
	"repro/internal/ndlog"
)

const pathSrc = `
materialize(link, infinity, infinity, keys(1,2)).
materialize(path, infinity, infinity, keys(1,2,3)).
p1 path(@S,D,C) :- link(@S,D,C).
p2 path(@S,D,C) :- link(@S,Z,C1), path(@Z,D,C2), C := C1 + C2.
`

func TestLocalizePassthroughLocalRules(t *testing.T) {
	src := `
materialize(link, infinity, infinity, keys(1,2)).
materialize(reach, infinity, infinity, keys(1,2)).
r1 reach(@S,D) :- link(@S,D,_).
`
	p := ndlog.MustParse(src)
	out, err := Localize(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rules) != 1 || out.Rules[0].String() != p.Rules[0].String() {
		t.Fatalf("local rule changed: %v", out.Rules)
	}
	// Input must not be aliased.
	out.Rules[0].Head.Rel = "mutated"
	if p.Rules[0].Head.Rel != "reach" {
		t.Fatal("Localize aliased the input program")
	}
}

func TestLocalizeSplitsTwoLocationRule(t *testing.T) {
	p := ndlog.MustParse(pathSrc)
	out, err := Localize(p)
	if err != nil {
		t.Fatal(err)
	}
	// p1 unchanged, p2 split into two.
	if len(out.Rules) != 3 {
		t.Fatalf("rules = %d: %v", len(out.Rules), out)
	}
	s1, s2 := out.Rules[1], out.Rules[2]
	if s1.Label != "p2_loc1" || s2.Label != "p2_loc2" {
		t.Fatalf("labels = %s, %s", s1.Label, s2.Label)
	}
	// Stage 1 is at S, ships to Z.
	if lv, _ := s1.Head.LocVar(); lv != "Z" {
		t.Fatalf("intermediate head loc = %s, want Z", lv)
	}
	if len(s1.BodyAtoms()) != 1 || s1.BodyAtoms()[0].Rel != "link" {
		t.Fatalf("stage1 body = %v", s1.Body)
	}
	// Stage 2 joins the intermediate with path at Z and computes C.
	if got := s2.Head.String(); got != "path(@S, D, C)" {
		t.Fatalf("stage2 head = %s", got)
	}
	foundAssign := false
	for _, term := range s2.Body {
		if _, ok := term.(*ndlog.Assign); ok {
			foundAssign = true
		}
	}
	if !foundAssign {
		t.Fatal("assignment C := C1+C2 must move to stage 2 (C2 bound at Z)")
	}
	// The result must be analyzable and compilable.
	a, err := ndlog.Analyze(out)
	if err != nil {
		t.Fatalf("localized program does not analyze: %v\n%s", err, out)
	}
	if _, err := eval.Compile(a); err != nil {
		t.Fatalf("localized program does not compile: %v\n%s", err, out)
	}
	// Intermediate relation got a materialize declaration.
	names := map[string]bool{}
	for _, m := range out.Materialized {
		names[m.Name] = true
	}
	if !names["e_p2_Z"] {
		t.Fatalf("intermediate not materialized: %v", out.Materialized)
	}
}

func TestLocalizeConditionPlacement(t *testing.T) {
	src := `
materialize(link, infinity, infinity, keys(1,2)).
materialize(path, infinity, infinity, keys(1,2,3)).
p2 path(@S,D,C) :- link(@S,Z,C1), path(@Z,D,C2), C1 < 10, C2 < 20, C := C1 + C2.
`
	p := ndlog.MustParse(src)
	out, err := Localize(p)
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := out.Rules[0], out.Rules[1]
	if !strings.Contains(s1.String(), "C1 < 10") {
		t.Fatalf("origin-local condition should stay in stage 1:\n%s", s1)
	}
	if !strings.Contains(s2.String(), "C2 < 20") {
		t.Fatalf("remote condition should be in stage 2:\n%s", s2)
	}
	if _, err := ndlog.Analyze(out); err != nil {
		t.Fatalf("localized program invalid: %v", err)
	}
}

func TestLocalizeReverseLinkDirection(t *testing.T) {
	// The connecting atom lives at the remote side: path(@Z,...) does
	// not mention S, but link(@S,Z,...) mentions Z, so origin is S even
	// when atoms are written in the other order.
	src := `
materialize(link, infinity, infinity, keys(1,2)).
materialize(path, infinity, infinity, keys(1,2,3)).
p2 path(@S,D,C) :- path(@Z,D,C2), link(@S,Z,C1), C := C1 + C2.
`
	out, err := Localize(ndlog.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rules) != 2 {
		t.Fatalf("rules = %v", out.Rules)
	}
	if _, err := ndlog.Analyze(out); err != nil {
		t.Fatalf("invalid: %v\n%s", err, out)
	}
}

func TestLocalizeRejectsThreeLocations(t *testing.T) {
	src := `r1 h(@X) :- a(@X,Y), b(@Y,Z), c(@Z,X).`
	_, err := Localize(ndlog.MustParse(src))
	if err == nil || !strings.Contains(err.Error(), "link-restricted") {
		t.Fatalf("err = %v", err)
	}
}

func TestLocalizeRejectsDisconnected(t *testing.T) {
	src := `r1 h(@X,Y) :- a(@X,V), b(@Y,V).`
	_, err := Localize(ndlog.MustParse(src))
	if err == nil || !strings.Contains(err.Error(), "link-restricted") {
		t.Fatalf("err = %v", err)
	}
}

func TestLocalizeMaybeAndFactsUntouched(t *testing.T) {
	src := `
f1 link(@'a','b',1).
br1 outr(@AS,R2) ?- inr(@AS,R1), f_isExtend(R2,R1,AS) == 1.
`
	p := ndlog.MustParse(src)
	out, err := Localize(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rules) != 2 {
		t.Fatalf("rules = %v", out.Rules)
	}
	if !out.Rules[1].Maybe {
		t.Fatal("maybe rule lost its marker")
	}
}

func TestLocalizedMincostExecutesDistributed(t *testing.T) {
	// End-to-end check at the eval level: run the two stages manually on
	// two runtimes connected by a hand-rolled send loop.
	p := ndlog.MustParse(pathSrc)
	loc, err := Localize(p)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ndlog.Analyze(loc)
	if err != nil {
		t.Fatal(err)
	}
	c, err := eval.Compile(a)
	if err != nil {
		t.Fatal(err)
	}
	rts := map[string]*eval.Runtime{}
	type msg struct {
		dst string
		d   eval.Delta
	}
	var inflight []msg
	for _, n := range []string{"a", "b", "c"} {
		rt, err := eval.NewRuntime(n, c, nil)
		if err != nil {
			t.Fatal(err)
		}
		rt.ErrFn = func(e error) { t.Errorf("eval: %v", e) }
		rt.SendFn = func(dst string, d eval.Delta, f *eval.Firing) {
			inflight = append(inflight, msg{dst, d})
		}
		rts[n] = rt
	}
	pump := func() {
		for len(inflight) > 0 {
			m := inflight[0]
			inflight = inflight[1:]
			rt, ok := rts[m.dst]
			if !ok {
				t.Fatalf("message to unknown node %s", m.dst)
			}
			rt.ReceiveRemote(m.d)
		}
	}
	// Chain a->b->c.
	ins := func(n, s, d string, cost int64) {
		if err := rts[n].InsertBase(linkT(s, d, cost)); err != nil {
			t.Fatal(err)
		}
		pump()
	}
	ins("a", "a", "b", 1)
	ins("b", "b", "c", 2)
	// path(a,c,3) should exist at a.
	tbl, err := rts["a"].Store.Table("path")
	if err != nil {
		t.Fatal(err)
	}
	want := "path(@a, c, 3)"
	found := false
	for _, tp := range tbl.Tuples() {
		if tp.String() == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing %s; have %v", want, tbl.Tuples())
	}
	// Delete link b->c: path(a,c,3) must retract transitively.
	if err := rts["b"].DeleteBase(linkT("b", "c", 2)); err != nil {
		t.Fatal(err)
	}
	pump()
	for _, tp := range tbl.Tuples() {
		if strings.Contains(tp.String(), "c, 3") {
			t.Fatalf("stale path after deletion: %v", tbl.Tuples())
		}
	}
}
