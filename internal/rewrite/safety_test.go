package rewrite

import (
	"strings"
	"testing"

	"repro/internal/ndlog"
)

func TestDeletionSafetyFlagsPureRecursion(t *testing.T) {
	src := `
materialize(edge, infinity, infinity, keys(1,2,3)).
materialize(reach, infinity, infinity, keys(1,2,3)).
r1 reach(@N,X,Y) :- edge(@N,X,Y).
r2 reach(@N,X,Z) :- edge(@N,X,Y), reach(@N,Y,Z).
`
	warnings := DeletionSafety(ndlog.MustParse(src))
	if len(warnings) != 1 || !strings.Contains(warnings[0], "rule r2") {
		t.Fatalf("warnings = %v", warnings)
	}
}

func TestDeletionSafetyAcceptsDemoProtocols(t *testing.T) {
	// All four demo protocols are derivation-height-monotone: their
	// recursion is damped by bounds, f_member loop checks, or
	// aggregates.
	programs := map[string]string{
		"mincost": `
materialize(link, infinity, infinity, keys(1,2)).
materialize(cost, infinity, infinity, keys(1,2,3)).
materialize(mincost, infinity, infinity, keys(1,2)).
mc1 cost(@S,D,C) :- link(@S,D,C).
mc2 cost(@S,D,C) :- link(@S,Z,C1), mincost(@Z,D,C2), S != D, C := C1 + C2, C < 64.
mc3 mincost(@S,D,min<C>) :- cost(@S,D,C).
`,
		"dsr": `
materialize(link, infinity, infinity, keys(1,2)).
materialize(route, infinity, infinity, keys(1,2,3)).
dsr1 route(@S,D,P) :- link(@S,D,_), P := f_initlist(S,D).
dsr2 route(@S,D,P) :- link(@S,Z,_), route(@Z,D,P2), f_member(P2,S) == 0, P := f_prepend(S,P2).
`,
	}
	for name, src := range programs {
		if w := DeletionSafety(ndlog.MustParse(src)); len(w) != 0 {
			t.Errorf("%s flagged: %v", name, w)
		}
	}
}

func TestDeletionSafetyMutualRecursion(t *testing.T) {
	// Mutual recursion through two relations is still a cycle.
	src := `
r1 a(@N,X) :- b(@N,X).
r2 b(@N,X) :- a(@N,X), c(@N,X).
`
	warnings := DeletionSafety(ndlog.MustParse(src))
	if len(warnings) != 2 {
		t.Fatalf("warnings = %v", warnings)
	}
}

func TestDeletionSafetyNonRecursiveClean(t *testing.T) {
	src := `
r1 a(@N,X) :- b(@N,X).
r2 c(@N,X) :- a(@N,X), b(@N,X).
`
	if w := DeletionSafety(ndlog.MustParse(src)); len(w) != 0 {
		t.Fatalf("warnings = %v", w)
	}
}
