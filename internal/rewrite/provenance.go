package rewrite

import (
	"fmt"

	"repro/internal/ndlog"
	"repro/internal/rel"
)

// Provenance relation names used across the platform.
const (
	ProvRel     = "prov"     // prov(@Loc, VID, RID, RLoc)
	RuleExecRel = "ruleExec" // ruleExec(@RLoc, RID, Rule, VIDList)
)

// ProvenanceOptions configures the rewrite.
type ProvenanceOptions struct {
	// SkipAggregates leaves aggregate rules out of the rewrite (their
	// provenance is maintained by the runtime's aggregate machinery,
	// which knows the winning contributions). Default true.
	SkipAggregates bool
}

// Provenance applies ExSPAN's automatic rule rewriting: it returns a new
// program containing the input program plus, for every executable rule,
// two provenance-maintenance rules that define ruleExec and prov as
// views over the rule's body. Run it after Localize so every generated
// rule is single-location in the body.
//
// For a rule  R  h(@H, ...) :- b1(@L, ...), ..., bn(@L, ...), conds:
//
//	R_pr1 ruleExec(@L, RID, "R", VIDs) :- b1...bn, conds,
//	       VIDs := f_mklist(f_mkvid("b1", ...), ..., f_mkvid("bn", ...)),
//	       RID  := f_mkrid("R", L, VIDs).
//	R_pr2 prov(@H, VID, RID, L) :- b1...bn, conds, <head assigns>,
//	       VID := f_mkvid("h", H, ...), VIDs := ..., RID := ....
//
// Base tuples get prov entries with the zero RID from the engine, not
// from rewrite rules.
func Provenance(p *ndlog.Program, opts ProvenanceOptions) (*ndlog.Program, error) {
	out := &ndlog.Program{Name: p.Name}
	for _, m := range p.Materialized {
		out.Materialized = append(out.Materialized, m)
	}
	out.Rules = append(out.Rules, p.Rules...)

	out.Materialized = append(out.Materialized,
		&ndlog.MaterializeDecl{Name: ProvRel, Lifetime: "infinity", Size: "infinity", Keys: []int{1, 2, 3, 4}},
		&ndlog.MaterializeDecl{Name: RuleExecRel, Lifetime: "infinity", Size: "infinity", Keys: []int{1, 2}},
	)

	for _, r := range p.Rules {
		if r.Maybe || len(r.Body) == 0 {
			continue
		}
		if r.Head.HasAgg() && opts.SkipAggregates {
			continue
		}
		if r.Head.HasAgg() {
			return nil, fmt.Errorf("rewrite: rule %s: aggregate provenance cannot be expressed as rewrite rules; use the runtime hook", ruleName(r))
		}
		pr1, pr2, err := provRulesFor(r)
		if err != nil {
			return nil, err
		}
		out.Rules = append(out.Rules, pr1, pr2)
	}
	return out, nil
}

// provRulesFor builds the two maintenance rules for one executable rule.
func provRulesFor(r *ndlog.Rule) (*ndlog.Rule, *ndlog.Rule, error) {
	name := ruleName(r)
	body := freshenWildcards(r)
	atoms := atomsOf(body)
	if len(atoms) == 0 {
		return nil, nil, fmt.Errorf("rewrite: rule %s has no body atoms", name)
	}
	locVar, ok := atoms[0].LocVar()
	if !ok {
		return nil, nil, fmt.Errorf("rewrite: rule %s: body location is not a variable; localize first", name)
	}
	for _, a := range atoms[1:] {
		lv, ok := a.LocVar()
		if !ok || lv != locVar {
			return nil, nil, fmt.Errorf("rewrite: rule %s: body not single-location; localize first", name)
		}
	}

	// VIDs := f_mklist(f_mkvid("b1", args...), ...)
	vidCalls := make([]ndlog.Expr, len(atoms))
	for i, a := range atoms {
		call := &ndlog.CallExpr{Func: "f_mkvid", Args: []ndlog.Expr{&ndlog.ConstExpr{Val: rel.Str(a.Rel)}}}
		for _, arg := range a.Args {
			e, err := argExpr(arg)
			if err != nil {
				return nil, nil, fmt.Errorf("rewrite: rule %s: %v", name, err)
			}
			call.Args = append(call.Args, e)
		}
		vidCalls[i] = call
	}
	vidsVar := "PrVIDs"
	ridVar := "PrRID"
	vidAssign := &ndlog.Assign{Var: vidsVar, Expr: &ndlog.CallExpr{Func: "f_mklist", Args: vidCalls}}
	ridAssign := &ndlog.Assign{Var: ridVar, Expr: &ndlog.CallExpr{
		Func: "f_mkrid",
		Args: []ndlog.Expr{
			&ndlog.ConstExpr{Val: rel.Str(name)},
			&ndlog.VarExpr{Name: locVar},
			&ndlog.VarExpr{Name: vidsVar},
		},
	}}

	// R_pr1: ruleExec(@L, RID, "R", VIDs)
	pr1 := &ndlog.Rule{
		Label: name + "_pr1",
		Head: &ndlog.Atom{
			Rel:    RuleExecRel,
			LocArg: 0,
			Args: []ndlog.Arg{
				&ndlog.VarArg{Name: locVar},
				&ndlog.VarArg{Name: ridVar},
				&ndlog.ConstArg{Val: rel.Str(name)},
				&ndlog.VarArg{Name: vidsVar},
			},
		},
		Body: append(cloneBody(body), vidAssign, ridAssign),
	}

	// R_pr2: prov(@H, VID, RID, L) — the head VID needs the head's
	// attribute values, available from the body binding.
	headVIDCall := &ndlog.CallExpr{Func: "f_mkvid", Args: []ndlog.Expr{&ndlog.ConstExpr{Val: rel.Str(r.Head.Rel)}}}
	for _, arg := range r.Head.Args {
		e, err := argExpr(arg)
		if err != nil {
			return nil, nil, fmt.Errorf("rewrite: rule %s head: %v", name, err)
		}
		headVIDCall.Args = append(headVIDCall.Args, e)
	}
	headLoc, ok := r.Head.LocVar()
	var headLocArg ndlog.Arg = &ndlog.VarArg{Name: headLoc}
	if !ok {
		ca, isConst := r.Head.Args[r.Head.LocArg].(*ndlog.ConstArg)
		if !isConst {
			return nil, nil, fmt.Errorf("rewrite: rule %s: unsupported head location argument", name)
		}
		headLocArg = &ndlog.ConstArg{Val: ca.Val}
	}
	vidVar := "PrVID"
	pr2 := &ndlog.Rule{
		Label: name + "_pr2",
		Head: &ndlog.Atom{
			Rel:    ProvRel,
			LocArg: 0,
			Args: []ndlog.Arg{
				headLocArg,
				&ndlog.VarArg{Name: vidVar},
				&ndlog.VarArg{Name: ridVar},
				&ndlog.VarArg{Name: locVar},
			},
		},
		Body: append(cloneBody(body),
			vidAssign,
			ridAssign,
			&ndlog.Assign{Var: vidVar, Expr: headVIDCall},
		),
	}
	return pr1, pr2, nil
}

func atomsOf(body []ndlog.Term) []*ndlog.Atom {
	var out []*ndlog.Atom
	for _, t := range body {
		if a, ok := t.(*ndlog.Atom); ok {
			out = append(out, a)
		}
	}
	return out
}

func cloneBody(body []ndlog.Term) []ndlog.Term {
	out := make([]ndlog.Term, len(body))
	for i, t := range body {
		out[i] = cloneTerm(t)
	}
	return out
}

// freshenWildcards replaces _ arguments with fresh variables so tuple
// VIDs can be computed over full attribute lists.
func freshenWildcards(r *ndlog.Rule) []ndlog.Term {
	body := cloneBody(r.Body)
	n := 0
	for _, t := range body {
		a, ok := t.(*ndlog.Atom)
		if !ok {
			continue
		}
		for i, arg := range a.Args {
			if _, wild := arg.(*ndlog.Wildcard); wild {
				a.Args[i] = &ndlog.VarArg{Name: fmt.Sprintf("PrWild%d", n)}
				n++
			}
		}
	}
	return body
}

// argExpr converts a head/body argument into an expression for VID
// computation.
func argExpr(arg ndlog.Arg) (ndlog.Expr, error) {
	switch arg := arg.(type) {
	case *ndlog.VarArg:
		return &ndlog.VarExpr{Name: arg.Name}, nil
	case *ndlog.ConstArg:
		return &ndlog.ConstExpr{Val: arg.Val}, nil
	default:
		return nil, fmt.Errorf("cannot take VID of argument %s", arg)
	}
}
