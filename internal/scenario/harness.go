package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sort"
	"sync"

	"repro/internal/gateway"
	"repro/internal/provstore"
	"repro/internal/rel"
	"repro/internal/server"
	"repro/internal/simnet"
)

// ShardCount is the sharded arm's size. Three shards is the smallest
// deployment where a federated walk must cross shard boundaries in
// both directions.
const ShardCount = 3

// markRetain is the snapshot retention of every arm: generous, so
// every mark recorded during a replay stays pinnable for the checks.
const markRetain = 4096

// Deployment is a booted scenario: four engine builds serving the
// identical replayed state, reachable over HTTP as a single-process
// daemon and as a sharded deployment behind a gateway.
type Deployment struct {
	Scenario Scenario
	// Marks maps replay labels to snapshot versions; identical in
	// all four arms (Boot asserts it).
	Marks map[string]uint64
	// Checks are the scenario's oracle checks, from the single arm.
	Checks []Check

	// Single and Gateway are the two query endpoints every check is
	// answered by; Shards are the gateway's backends.
	Single  *httptest.Server
	Gateway *httptest.Server
	Shards  []*httptest.Server

	// Stores holds each arm's snapshot store when the deployment was
	// booted with BootOptions.DataDir: index 0 is the single-process
	// arm, 1..ShardCount the shard arms. Close closes them.
	Stores []*provstore.Store

	// SinglePub publishes the single-process arm; ShardPubs the
	// shard arms. Their engines may be driven further (soak churn)
	// from ONE goroutine, in lockstep, replaying identical events.
	SinglePub *server.Publisher
	ShardPubs []*server.Publisher

	// ClusterPubs publishes the distributed arm: member i of a
	// ShardCount-member engine cluster (each a real process's worth of
	// engine, exchanging epoch frames over the in-memory transport)
	// colocated with a shard-i publisher. Boot asserts every member's
	// marks, versions, and per-node snapshot digests match the
	// single-process arm. Empty when booted with Resume.
	ClusterPubs []*server.Publisher

	churnFact func(k int) rel.Tuple
	closers   []func()
}

// Close shuts every HTTP server down.
func (d *Deployment) Close() {
	for i := len(d.closers) - 1; i >= 0; i-- {
		d.closers[i]()
	}
}

// BootOptions tunes a scenario boot beyond the defaults — primarily
// to attach a durable snapshot store to every arm so the harness can
// assert the disk-fallback and restart contracts with the same
// byte-parity rigor as live serving.
type BootOptions struct {
	// Retain is every arm's in-memory ring retention (default
	// markRetain, generous enough that marks never evict). Small
	// values force mark-pinned checks through the disk fallback.
	Retain int
	// DataDir, when non-empty, attaches a provstore to every arm: the
	// single process under DataDir/single, shard i under
	// DataDir/shard<i>. Booting again over the same directory resumes
	// each arm's version sequence from its store.
	DataDir string
	// Store tweaks each arm's store options after the harness fills
	// in the deployment identity (node sets, shard coordinates).
	Store func(*provstore.Options)
	// Resume skips the scenario replay: engines boot fresh and the
	// deployment answers pinned reads purely from its stores — the
	// restart arm of the durability acceptance test. Requires a
	// DataDir holding stores from a previous boot; no marks are
	// recorded.
	Resume bool
}

// Boot builds the four arms of a scenario, replays it into each, and
// wires the HTTP servers and gateway. The four replays must mint
// identical mark versions and identical current versions — any drift
// is a determinism bug and fails the boot.
func Boot(sc Scenario) (*Deployment, error) {
	return BootWithOptions(sc, BootOptions{})
}

// BootWithOptions is Boot with explicit retention, durable stores,
// and restart behavior.
func BootWithOptions(sc Scenario, o BootOptions) (*Deployment, error) {
	retain := o.Retain
	if retain <= 0 {
		retain = markRetain
	}
	d := &Deployment{Scenario: sc}
	ok := false
	defer func() {
		if !ok {
			d.Close()
		}
	}()

	boot := func(shard server.ShardSpec, armDir string) (*server.Publisher, map[string]uint64, *Instance, error) {
		inst, err := sc.NewInstance()
		if err != nil {
			return nil, nil, nil, err
		}
		var st *provstore.Store
		if armDir != "" {
			all := inst.Eng.Nodes()
			popts := provstore.Options{
				AllNodes: all,
				Owned:    shard.OwnedNodes(all),
				Shard:    provstore.ShardInfo{Index: shard.Index, Total: shard.Total},
			}
			if o.Store != nil {
				o.Store(&popts)
			}
			if st, err = provstore.Open(armDir, popts); err != nil {
				return nil, nil, nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
			}
			// Closers run in reverse: the store closes after the HTTP
			// server that reads from it.
			d.Stores = append(d.Stores, st)
			d.closers = append(d.closers, func() { st.Close() })
		}
		// Attach before the replay so every epoch of the scenario is
		// published and marks can name intermediate versions.
		pub, err := server.NewPublisherWithOptions(inst.Eng,
			server.PublisherOptions{Retain: retain, Shard: shard, Store: st})
		if err != nil {
			return nil, nil, nil, err
		}
		marks := map[string]uint64{}
		if !o.Resume {
			if err := inst.Replay(func(label string) {
				marks[label] = pub.Current().Version
			}); err != nil {
				return nil, nil, nil, fmt.Errorf("scenario %s: replay: %w", sc.Name, err)
			}
		}
		return pub, marks, inst, nil
	}

	singleDir, shardDir := "", func(int) string { return "" }
	if o.DataDir != "" {
		singleDir = filepath.Join(o.DataDir, "single")
		shardDir = func(i int) string { return filepath.Join(o.DataDir, fmt.Sprintf("shard%d", i)) }
	}

	pub, marks, inst, err := boot(server.ShardSpec{}, singleDir)
	if err != nil {
		return nil, err
	}
	d.SinglePub = pub
	d.Marks = marks
	d.churnFact = inst.ChurnFact
	if inst.Checks != nil {
		d.Checks = inst.Checks()
	}
	d.Single = httptest.NewServer(server.New(pub, sc.Info))
	d.closers = append(d.closers, d.Single.Close)

	urls := make([]string, ShardCount)
	for i := 0; i < ShardCount; i++ {
		spub, smarks, _, err := boot(server.ShardSpec{Index: i, Total: ShardCount}, shardDir(i))
		if err != nil {
			return nil, err
		}
		if !reflect.DeepEqual(smarks, d.Marks) {
			return nil, fmt.Errorf("scenario %s: shard %d marks %v diverge from single-process marks %v",
				sc.Name, i, smarks, d.Marks)
		}
		if sv, v := spub.Current().Version, pub.Current().Version; sv != v {
			return nil, fmt.Errorf("scenario %s: shard %d at version %d, single process at %d", sc.Name, i, sv, v)
		}
		ts := httptest.NewServer(server.New(spub, sc.Info))
		d.closers = append(d.closers, ts.Close)
		d.ShardPubs = append(d.ShardPubs, spub)
		d.Shards = append(d.Shards, ts)
		urls[i] = ts.URL
	}

	// Fifth arm: the distributed engine. Skipped on Resume boots (the
	// arm replays; Resume boots serve purely from stores).
	if !o.Resume {
		if err := d.bootCluster(sc, retain); err != nil {
			return nil, err
		}
	}

	gw, err := gateway.New(context.Background(), urls, gateway.WithInfo(sc.Info))
	if err != nil {
		return nil, err
	}
	d.Gateway = httptest.NewServer(gw)
	d.closers = append(d.closers, d.Gateway.Close)
	ok = true
	return d, nil
}

// bootCluster builds and replays the distributed arm: ShardCount full
// engines, each clustered over one member of an in-memory transport and
// publishing through a colocated shard publisher, replay the scenario
// concurrently (the replays run in lockstep — every quiescent drive is
// a sequence of transport barriers). The arm must be indistinguishable
// from the others: identical marks, identical version sequence, and
// per-node snapshot digests byte-equal to the single-process arm at
// every mark and at the final state.
func (d *Deployment) bootCluster(sc Scenario, retain int) error {
	mc := simnet.NewMemCluster(ShardCount)
	d.closers = append(d.closers, func() { mc.Close() })
	type member struct {
		inst  *Instance
		pub   *server.Publisher
		marks map[string]uint64
	}
	members := make([]*member, ShardCount)
	for i := range members {
		inst, err := sc.NewInstance()
		if err != nil {
			return fmt.Errorf("scenario %s: cluster member %d: %w", sc.Name, i, err)
		}
		// Enable before attaching the publisher: the constructor's
		// initial publish must already know the member's owned slice,
		// and the publisher attaches as the cut observer.
		if err := inst.Eng.EnableCluster(mc.Member(i)); err != nil {
			return fmt.Errorf("scenario %s: cluster member %d: %w", sc.Name, i, err)
		}
		pub, err := server.NewPublisherWithOptions(inst.Eng,
			server.PublisherOptions{Retain: retain, Shard: server.ShardSpec{Index: i, Total: ShardCount}})
		if err != nil {
			return fmt.Errorf("scenario %s: cluster member %d: %w", sc.Name, i, err)
		}
		members[i] = &member{inst: inst, pub: pub, marks: map[string]uint64{}}
	}

	var wg sync.WaitGroup
	errs := make(chan error, ShardCount)
	for i, m := range members {
		wg.Add(1)
		go func(rank int, m *member) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mc.Close() // unblock peers parked in a barrier
					errs <- fmt.Errorf("scenario %s: cluster member %d: %v", sc.Name, rank, r)
				}
			}()
			if err := m.inst.Replay(func(label string) {
				m.marks[label] = m.pub.Current().Version
			}); err != nil {
				mc.Close()
				errs <- fmt.Errorf("scenario %s: cluster member %d: replay: %w", sc.Name, rank, err)
			}
		}(i, m)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}

	single := d.SinglePub.Current()
	for i, m := range members {
		if !reflect.DeepEqual(m.marks, d.Marks) {
			return fmt.Errorf("scenario %s: cluster member %d marks %v diverge from single-process marks %v",
				sc.Name, i, m.marks, d.Marks)
		}
		if cv := m.pub.Current().Version; cv != single.Version {
			return fmt.Errorf("scenario %s: cluster member %d at version %d, single process at %d",
				sc.Name, i, cv, single.Version)
		}
		d.ClusterPubs = append(d.ClusterPubs, m.pub)
	}

	// Byte parity at every mark and at the final state: each member's
	// owned partitions must hash identically to the single process's.
	// (Versions evicted from a small retention ring cannot be pinned and
	// are skipped; the final state always checks.)
	versions := map[uint64]string{single.Version: "final state"}
	for label, v := range d.Marks {
		versions[v] = fmt.Sprintf("mark %q", label)
	}
	for v, what := range versions {
		ss, ok := d.SinglePub.At(v)
		if !ok {
			continue
		}
		for i, m := range members {
			ms, ok := m.pub.At(v)
			if !ok {
				continue
			}
			if ms.Time != ss.Time {
				return fmt.Errorf("scenario %s: %s (version %d): cluster member %d at virtual time %d, single process at %d",
					sc.Name, what, v, i, ms.Time, ss.Time)
			}
			for _, addr := range ms.Nodes {
				md, _ := ms.NodeDigest(addr)
				sd, ok := ss.NodeDigest(addr)
				if !ok {
					return fmt.Errorf("scenario %s: %s (version %d): single process lacks node %s", sc.Name, what, v, addr)
				}
				if md != sd {
					return fmt.Errorf("scenario %s: %s (version %d): node %s digest diverges between single process and cluster member %d",
						sc.Name, what, v, addr, i)
				}
			}
		}
	}
	return nil
}

// CheckResult is one evaluated check: the shared status, the (parity
// -verified) body, and the decoded response when the check succeeded.
type CheckResult struct {
	Check    Check
	Status   int
	Body     []byte
	Response *server.QueryResponse // nil for error checks
}

// RunCheck answers one check against both the single process and the
// gateway, asserts byte-parity, status, error code, and the oracle.
func (d *Deployment) RunCheck(c Check) (*CheckResult, error) {
	version, err := d.resolveMark(c.AtMark)
	if err != nil {
		return nil, fmt.Errorf("check %s: %w", c.Name, err)
	}
	req := server.QueryRequest{Q: c.Query, Version: version}
	body, err := json.Marshal(&req)
	if err != nil {
		return nil, err
	}

	sStatus, sBody, err := post(d.Single.URL+"/v1/query", body)
	if err != nil {
		return nil, fmt.Errorf("check %s: single: %w", c.Name, err)
	}
	gStatus, gBody, err := post(d.Gateway.URL+"/v1/query", body)
	if err != nil {
		return nil, fmt.Errorf("check %s: gateway: %w", c.Name, err)
	}
	if sStatus != gStatus || !bytes.Equal(sBody, gBody) {
		return nil, fmt.Errorf("check %s: parity broken for %s:\nsingle  %d %s\ngateway %d %s",
			c.Name, c.Query, sStatus, sBody, gStatus, gBody)
	}

	want := c.WantStatus
	if want == 0 {
		want = http.StatusOK
	}
	if sStatus != want {
		return nil, fmt.Errorf("check %s: %s returned %d, want %d: %s", c.Name, c.Query, sStatus, want, sBody)
	}
	res := &CheckResult{Check: c, Status: sStatus, Body: sBody}
	if sStatus != http.StatusOK {
		var env struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if err := json.Unmarshal(sBody, &env); err != nil {
			return nil, fmt.Errorf("check %s: undecodable error envelope %s: %w", c.Name, sBody, err)
		}
		if c.WantErrCode != "" && env.Error.Code != c.WantErrCode {
			return nil, fmt.Errorf("check %s: error code %q, want %q (%s)", c.Name, env.Error.Code, c.WantErrCode, sBody)
		}
		return res, nil
	}
	var qr server.QueryResponse
	if err := json.Unmarshal(sBody, &qr); err != nil {
		return nil, fmt.Errorf("check %s: undecodable response %s: %w", c.Name, sBody, err)
	}
	res.Response = &qr
	if c.Oracle != nil {
		if err := c.Oracle.Eval(&qr); err != nil {
			return nil, fmt.Errorf("check %s (%s): %w\nbody: %s", c.Name, c.Query, err, sBody)
		}
	}
	return res, nil
}

// RunChecks evaluates every check of the booted scenario.
func (d *Deployment) RunChecks() ([]*CheckResult, error) {
	var out []*CheckResult
	for _, c := range d.Checks {
		r, err := d.RunCheck(c)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

func (d *Deployment) resolveMark(label string) (uint64, error) {
	if label == "" {
		return 0, nil // current snapshot
	}
	v, ok := d.Marks[label]
	if !ok {
		return 0, fmt.Errorf("unknown mark %q (have %v)", label, d.Marks)
	}
	return v, nil
}

func post(url string, body []byte) (int, []byte, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, b, nil
}

// Eval applies the oracle to a decoded query response.
func (o *Oracle) Eval(r *server.QueryResponse) error {
	participants := participants(r)
	if o.CauseNode != "" {
		if !participants[o.CauseNode] {
			return fmt.Errorf("cause node %s does not participate in the answer (has %v)",
				o.CauseNode, keys(participants))
		}
		if o.WithinDepth > 0 && r.Proof != nil {
			depth, found := proofDepth(r.Proof, o.CauseNode)
			if !found {
				return fmt.Errorf("cause node %s not in the proof tree", o.CauseNode)
			}
			if depth > o.WithinDepth {
				return fmt.Errorf("cause node %s first appears at proof depth %d, want <= %d",
					o.CauseNode, depth, o.WithinDepth)
			}
		}
	}
	if o.AbsentNode != "" && participants[o.AbsentNode] {
		return fmt.Errorf("node %s participates in the answer but must not", o.AbsentNode)
	}
	if o.AllBasesRel != "" {
		if len(r.Bases) == 0 {
			return fmt.Errorf("no base tuples returned, want only %s bases", o.AllBasesRel)
		}
		for _, b := range r.Bases {
			if b.Rel != o.AllBasesRel {
				return fmt.Errorf("base %s is a %s tuple, want only %s bases", b.Text, b.Rel, o.AllBasesRel)
			}
		}
	}
	if o.MinCount > 0 {
		if r.Count == nil {
			return fmt.Errorf("no derivation count in the answer")
		}
		if *r.Count < o.MinCount {
			return fmt.Errorf("derivation count %d, want >= %d", *r.Count, o.MinCount)
		}
	}
	return nil
}

// participants collects every node that appears in the answer: the
// nodes list, base-tuple locations (column 0 of located tuples), and
// proof-tree vertices.
func participants(r *server.QueryResponse) map[string]bool {
	out := map[string]bool{}
	for _, n := range r.Nodes {
		out[n] = true
	}
	for _, b := range r.Bases {
		if len(b.Vals) > 0 {
			out[b.Vals[0]] = true
		}
	}
	var walk func(p *server.ProofJSON)
	walk = func(p *server.ProofJSON) {
		if p.Loc != "" {
			out[p.Loc] = true
		}
		for _, d := range p.Derivs {
			for i := range d.Children {
				walk(&d.Children[i])
			}
		}
	}
	if r.Proof != nil {
		walk(r.Proof)
	}
	return out
}

// proofDepth returns the shallowest tuple depth at which a node
// appears in the proof tree (the root tuple is depth 0).
func proofDepth(root *server.ProofJSON, node string) (int, bool) {
	type item struct {
		p     *server.ProofJSON
		depth int
	}
	queue := []item{{root, 0}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if it.p.Loc == node {
			return it.depth, true
		}
		for _, d := range it.p.Derivs {
			for i := range d.Children {
				queue = append(queue, item{&d.Children[i], it.depth + 1})
			}
		}
	}
	return 0, false
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
