package scenario

import (
	"testing"

	"repro/internal/testutil"
)

// TestSoakSmall runs the load generator end to end at a tiny size:
// the oracle suite must pass first, every query must succeed, and the
// churn loop must mint snapshot versions while clients are in flight.
func TestSoakSmall(t *testing.T) {
	testutil.CheckGoroutines(t)
	d, err := Boot(PrefixHijack(12, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	report, err := d.Soak(SoakOptions{Clients: 4, Queries: 120, ChurnEvents: 20})
	if err != nil {
		t.Fatal(err)
	}
	if report.ChecksPassed != len(d.Checks) {
		t.Fatalf("checks passed = %d, want %d", report.ChecksPassed, len(d.Checks))
	}
	if report.PublishedVersions < 20 {
		t.Fatalf("churn minted %d versions, want >= 20", report.PublishedVersions)
	}
	var total int64
	for code, n := range report.Statuses {
		if code != "200" && code != "404" {
			t.Fatalf("unexpected status %s x%d", code, n)
		}
		total += n
	}
	if total != 120 {
		t.Fatalf("answered %d queries, want 120", total)
	}
	if report.CacheHits+report.CacheMisses != 120 {
		t.Fatalf("cache verdicts %d+%d do not cover 120 queries", report.CacheHits, report.CacheMisses)
	}
	for name, ls := range report.Latency {
		if ls.Count == 0 || ls.MaxUs <= 0 {
			t.Fatalf("check %s has an empty latency summary: %+v", name, ls)
		}
	}
	// Versions stayed aligned across arms through the churn.
	want := d.SinglePub.Current().Version
	for i, pub := range d.ShardPubs {
		if got := pub.Current().Version; got != want {
			t.Fatalf("after churn, shard %d at version %d, single at %d", i, got, want)
		}
	}
}

// TestSoakNoChurnFact documents the contract for scenarios without a
// churn fact: churn must be explicitly disabled.
func TestSoakNoChurnFact(t *testing.T) {
	testutil.CheckGoroutines(t)
	sc := RouteLeak()
	inner := sc.NewInstance
	sc.NewInstance = func() (*Instance, error) {
		inst, err := inner()
		if err != nil {
			return nil, err
		}
		inst.ChurnFact = nil
		return inst, nil
	}
	d, err := Boot(sc)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.Soak(SoakOptions{Clients: 2, Queries: 20, ChurnEvents: 10}); err == nil {
		t.Fatal("Soak ran churn without a churn fact")
	}
	if report, err := d.Soak(SoakOptions{Clients: 2, Queries: 20, ChurnEvents: 0}); err != nil {
		t.Fatal(err)
	} else if report.PublishedVersions != 0 {
		t.Fatalf("churnless soak minted %d versions", report.PublishedVersions)
	}
}
