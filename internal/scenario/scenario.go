// Package scenario is the adversarial acceptance harness of the
// reproduction: each Scenario bundles a topology, an injected fault
// (prefix hijack, route leak, link-flap storm, partition, mobility),
// and an expected-provenance oracle — the assertion that querying the
// anomalous tuple's provenance surfaces the injected cause.
//
// Every scenario runs through BOTH deployment shapes the repo serves:
// a single-process daemon and a 3-shard deployment behind the
// federating gateway. The harness replays the identical deterministic
// event sequence into four engine builds (one single + three shards),
// records snapshot-version "marks" at named points of the replay, and
// then answers every check twice — once against the single process,
// once through the gateway — asserting the HTTP bodies are
// byte-identical before the oracle even runs. Root-cause accuracy and
// distributed-serving parity are one test.
package scenario

import (
	"fmt"
	"strings"

	nettrails "repro"
	"repro/internal/engine"
	"repro/internal/rel"
	"repro/internal/routeviews"
	"repro/internal/server"
)

// Scenario is one adversarial replay: a deterministic instance
// builder plus the checks its oracle demands.
type Scenario struct {
	// Name identifies the scenario in test output and soak reports.
	Name string
	// Description says what fault is injected and what the oracle
	// expects to surface.
	Description string
	// Info configures every server arm (protocol label, caps).
	Info server.Info
	// NewInstance builds one fresh, fully deterministic instance.
	// The harness calls it four times — once for the single-process
	// arm and once per shard — and the four replays must agree to
	// the byte, so the builder must derive everything from constants
	// and seeds.
	NewInstance func() (*Instance, error)
}

// Instance is one engine build of a scenario.
type Instance struct {
	// Eng is the engine the server arm publishes.
	Eng *engine.Engine
	// Replay drives the scenario: topology bring-up, fault injection,
	// convergence. It calls mark(label) at named points so checks can
	// pin queries to intermediate snapshot versions.
	Replay func(mark func(label string)) error
	// Checks returns the oracle checks, evaluated after Replay so a
	// scenario may derive queries from its final state.
	Checks func() []Check
	// ChurnFact builds the k-th synthetic base fact the soak
	// generator inserts (and later retracts) to keep state churning
	// under query load; nil means the scenario supports no churn.
	// The fact must be valid for the scenario's program and must not
	// disturb the tuples the checks query.
	ChurnFact func(k int) rel.Tuple
}

// Check is one oracle assertion: a provenance query, the snapshot to
// pin it to, and what the answer must reveal.
type Check struct {
	// Name identifies the check in failures.
	Name string
	// Query is the provquery text sent as {"q": ...} to /v1/query.
	Query string
	// AtMark pins the query to a recorded mark's snapshot version;
	// empty means the final state.
	AtMark string
	// WantStatus is the expected HTTP status (0 means 200).
	WantStatus int
	// WantErrCode is the expected error-envelope code when WantStatus
	// is an error status.
	WantErrCode string
	// Oracle validates a successful response body; nil means only
	// status and byte-parity are asserted.
	Oracle *Oracle
}

// Oracle states what a query answer must surface about the injected
// fault. Zero-valued fields are not asserted; which fields apply
// depends on the query type (nodes, bases, lineage, count).
type Oracle struct {
	// CauseNode must participate in the answer: in the nodes list,
	// as a base tuple's location, or as a proof-tree vertex.
	CauseNode string
	// AbsentNode must NOT participate — e.g. the legitimate origin
	// once a hijack has displaced it.
	AbsentNode string
	// AllBasesRel requires every returned base tuple to be of this
	// relation.
	AllBasesRel string
	// WithinDepth bounds where CauseNode must appear in a lineage
	// proof: within this many tuple levels of the root (0 = anywhere).
	WithinDepth int
	// MinCount is the floor for a count query's answer.
	MinCount int
}

// Links converts a routeviews AS graph into the BGP deployment's link
// list: provider→customer edges become CustomerOf (B pays A), peer
// edges PeerOf.
func Links(g *routeviews.ASGraph) []nettrails.ASLink {
	links := make([]nettrails.ASLink, 0, len(g.Edges))
	for _, e := range g.Edges {
		switch e.Kind {
		case routeviews.ProviderToCustomer:
			links = append(links, nettrails.ASLink{A: e.A, B: e.B, Rel: nettrails.CustomerOf})
		default:
			links = append(links, nettrails.ASLink{A: e.A, B: e.B, Rel: nettrails.PeerOf})
		}
	}
	return links
}

// TupleLiteral renders a tuple in the query language's literal syntax
// (addresses single-quoted, strings double-quoted, lists bracketed) so
// a check can query a tuple discovered programmatically. Values must
// be of kinds the fact grammar accepts (addresses, strings, numbers,
// lists).
func TupleLiteral(t rel.Tuple) string {
	var b strings.Builder
	b.WriteString(t.Rel)
	b.WriteByte('(')
	for i, v := range t.Vals {
		if i > 0 {
			b.WriteByte(',')
		}
		if i == 0 && v.Kind() == rel.KindAddr {
			b.WriteByte('@')
		}
		writeValueLiteral(&b, v)
	}
	b.WriteByte(')')
	return b.String()
}

func writeValueLiteral(b *strings.Builder, v rel.Value) {
	switch v.Kind() {
	case rel.KindAddr:
		fmt.Fprintf(b, "'%s'", v.String())
	case rel.KindList:
		vals, _ := v.AsList()
		b.WriteByte('[')
		for i, e := range vals {
			if i > 0 {
				b.WriteByte(',')
			}
			writeValueLiteral(b, e)
		}
		b.WriteByte(']')
	default:
		b.WriteString(v.String()) // ints, floats, bools, quoted strings
	}
}
