package scenario

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/provstore"
	"repro/internal/server"
	"repro/internal/testutil"
)

// pinnedJob is one oracle check with its snapshot version resolved to
// an explicit pin, so the identical request stays answerable — and
// must stay byte-identical — long after the ring has moved on.
type pinnedJob struct {
	name    string
	version uint64
	body    []byte
}

// pinnedJobs resolves every check of the booted deployment to an
// explicitly version-pinned query request (final-state checks pin the
// current version).
func pinnedJobs(t *testing.T, d *Deployment) []pinnedJob {
	t.Helper()
	jobs := make([]pinnedJob, 0, len(d.Checks))
	for _, c := range d.Checks {
		version, err := d.resolveMark(c.AtMark)
		if err != nil {
			t.Fatal(err)
		}
		if version == 0 {
			version = d.SinglePub.Current().Version
		}
		body, err := json.Marshal(&server.QueryRequest{Q: c.Query, Version: version})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, pinnedJob{name: c.Name, version: version, body: body})
	}
	return jobs
}

// answerAll posts every pinned job to the single process and the
// gateway, asserts status 200 and single/gateway byte-parity, and
// returns the bodies keyed by check name.
func answerAll(t *testing.T, d *Deployment, jobs []pinnedJob, label string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, j := range jobs {
		sStatus, sBody, err := post(d.Single.URL+"/v1/query", j.body)
		if err != nil {
			t.Fatalf("%s: %s: single: %v", label, j.name, err)
		}
		gStatus, gBody, err := post(d.Gateway.URL+"/v1/query", j.body)
		if err != nil {
			t.Fatalf("%s: %s: gateway: %v", label, j.name, err)
		}
		if sStatus != http.StatusOK || gStatus != http.StatusOK {
			t.Fatalf("%s: %s@%d: single %d %s / gateway %d %s",
				label, j.name, j.version, sStatus, sBody, gStatus, gBody)
		}
		if !bytes.Equal(sBody, gBody) {
			t.Fatalf("%s: %s@%d: arm parity broken:\nsingle  %s\ngateway %s",
				label, j.name, j.version, sBody, gBody)
		}
		out[j.name] = sBody
	}
	return out
}

func sameAnswers(t *testing.T, want, got map[string][]byte, label string) {
	t.Helper()
	for name, w := range want {
		if g := got[name]; !bytes.Equal(w, g) {
			t.Errorf("%s: %s drifted:\nbefore %s\nafter  %s", label, name, w, g)
		}
	}
}

// TestStoreDurableAcceptance is ISSUE 9's acceptance criterion run
// through the harness: every arm (single process and 3 shards behind
// the gateway) boots with a snapshot store, churns for >=1000 epochs
// past the ring retention, keeps answering the early pinned checks
// byte-identically from disk (never snapshot_evicted), and after a
// full restart over the same stores resumes its dense version
// sequence and still serves those pins byte-identically.
func TestStoreDurableAcceptance(t *testing.T) {
	testutil.CheckGoroutines(t)
	dir := t.TempDir()
	const retain = 8
	opts := BootOptions{
		Retain:  retain,
		DataDir: dir,
		// Batch fsyncs: the churn loop mints thousands of versions and
		// per-append durability would make the test mostly fsync.
		Store: func(o *provstore.Options) { o.SyncEvery = 256 },
	}
	d, err := BootWithOptions(RouteLeak(), opts)
	if err != nil {
		t.Fatal(err)
	}
	closed := false
	defer func() {
		if !closed {
			d.Close()
		}
	}()
	if len(d.Stores) != 1+ShardCount {
		t.Fatalf("booted %d stores, want %d", len(d.Stores), 1+ShardCount)
	}

	// Answer every check while its pinned version is still in the ring.
	jobs := pinnedJobs(t, d)
	before := answerAll(t, d, jobs, "in-ring")
	maxPin := uint64(0)
	for _, j := range jobs {
		if j.version > maxPin {
			maxPin = j.version
		}
	}

	// Churn >=1000 epochs past the retention window on every arm, in
	// lockstep (each churn event mints at least one version).
	epochs := retain + 1000
	if testing.Short() {
		epochs = retain + 60
	}
	if err := d.churn(epochs); err != nil {
		t.Fatal(err)
	}
	last := d.SinglePub.Current().Version
	if last < maxPin+uint64(epochs) {
		t.Fatalf("churn reached version %d, want >= %d", last, maxPin+uint64(epochs))
	}
	for i, pub := range d.ShardPubs {
		if got := pub.Current().Version; got != last {
			t.Fatalf("shard %d at version %d, single at %d", i, got, last)
		}
	}

	// The pins are long gone from every ring; disk answers must be
	// byte-identical on both arms.
	sameAnswers(t, before, answerAll(t, d, jobs, "after eviction"), "after eviction")

	// Restart: every process goes away, fresh engines reopen the same
	// stores, the version sequence resumes densely, and the early pins
	// still answer byte-identically.
	d.Close()
	closed = true
	opts.Resume = true
	d2, err := BootWithOptions(RouteLeak(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := d2.SinglePub.Current().Version; got != last+1 {
		t.Fatalf("restart minted version %d, want %d", got, last+1)
	}
	sameAnswers(t, before, answerAll(t, d2, jobs, "after restart"), "after restart")

	// And the restarted deployment reports the full retained range.
	oldest, newest := d2.SinglePub.Versions()
	if oldest != 1 || newest != last+1 {
		t.Fatalf("restarted versions = [%d, %d], want [1, %d]", oldest, newest, last+1)
	}
}
