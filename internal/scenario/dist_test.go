package scenario

import (
	"context"
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"

	nettrails "repro"
	"repro/internal/nettransport"
	"repro/internal/server"
	"repro/internal/testutil"
)

// The distributed TCP acceptance tier: the same replay runs once in a
// single process and once as a 3-member engine cluster over real
// loopback TCP sockets (each member a full engine + colocated shard
// publisher — in-process here, but exchanging every epoch over the
// actual wire protocol), and the runs must be indistinguishable:
// identical label→version mark maps, identical version sequences, and
// byte-identical per-node snapshot digests.

// eightASTopology is the 8-AS BGP trace topology of the acceptance
// test: a provider chain with AS8 multihomed at the bottom.
func eightASTopology() ([]string, []nettrails.ASLink) {
	ases := []string{"AS1", "AS2", "AS3", "AS4", "AS5", "AS6", "AS7", "AS8"}
	links := []nettrails.ASLink{
		{A: "AS1", B: "AS2", Rel: nettrails.PeerOf},
		{A: "AS1", B: "AS3", Rel: nettrails.CustomerOf},
		{A: "AS2", B: "AS4", Rel: nettrails.CustomerOf},
		{A: "AS3", B: "AS5", Rel: nettrails.CustomerOf},
		{A: "AS4", B: "AS6", Rel: nettrails.CustomerOf},
		{A: "AS5", B: "AS7", Rel: nettrails.CustomerOf},
		{A: "AS6", B: "AS8", Rel: nettrails.CustomerOf},
		{A: "AS7", B: "AS8", Rel: nettrails.PeerOf},
	}
	return ases, links
}

// replayBGPTrace drives the acceptance replay: originate a prefix, then
// a 40-event generated RouteViews-style trace. Fully deterministic, so
// every process replays it identically.
func replayBGPTrace(d *nettrails.BGPDeployment, mark func(string)) error {
	if err := d.Originate("AS8", "192.0.2.0/24"); err != nil {
		return err
	}
	mark("post-originate")
	trace, err := d.GenerateTrace(40, 1)
	if err != nil {
		return err
	}
	if err := d.ReplayTrace(trace); err != nil {
		return err
	}
	mark("post-trace")
	return nil
}

// tcpCluster dials a members-sized mesh of real TCP transports on
// loopback (ports bound up front so the rank→address list exists
// before any member dials).
func tcpCluster(t *testing.T, members int) []*nettransport.Transport {
	t.Helper()
	lns := make([]net.Listener, members)
	addrs := make([]string, members)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	trs := make([]*nettransport.Transport, members)
	for i := range trs {
		tr, err := nettransport.Dial(context.Background(), i, addrs, nettransport.Options{Listener: lns[i]})
		if err != nil {
			t.Fatalf("dial member %d: %v", i, err)
		}
		trs[i] = tr
	}
	t.Cleanup(func() {
		for _, tr := range trs {
			tr.Close()
		}
	})
	return trs
}

// assertDigestParity compares every owned node digest of each member
// snapshot against the reference snapshot at the same version.
func assertDigestParity(t *testing.T, what string, ref *server.Publisher, pubs []*server.Publisher, version uint64) {
	t.Helper()
	rs, ok := ref.At(version)
	if !ok {
		t.Fatalf("%s: reference lost version %d", what, version)
	}
	for i, pub := range pubs {
		ms, ok := pub.At(version)
		if !ok {
			t.Fatalf("%s: member %d lost version %d", what, i, version)
		}
		if ms.Time != rs.Time {
			t.Fatalf("%s: member %d at virtual time %d, reference at %d", what, i, ms.Time, rs.Time)
		}
		if len(ms.Nodes) == 0 {
			t.Fatalf("%s: member %d owns no nodes", what, i)
		}
		for _, addr := range ms.Nodes {
			md, _ := ms.NodeDigest(addr)
			rd, ok := rs.NodeDigest(addr)
			if !ok {
				t.Fatalf("%s: reference lacks node %s", what, addr)
			}
			if md != rd {
				t.Fatalf("%s: node %s snapshot digest diverges at member %d (version %d)", what, addr, i, version)
			}
		}
	}
}

// TestDistTCPByteParityBGPTrace is the headline acceptance test: a
// single-process run and a 3-member TCP-distributed run of the 8-AS
// BGP trace must produce identical mark maps and byte-identical
// per-node snapshot digests at every mark and at the final state.
func TestDistTCPByteParityBGPTrace(t *testing.T) {
	testutil.CheckGoroutines(t)
	ases, links := eightASTopology()

	ref, err := nettrails.NewBGPDeployment(ases, links, nettrails.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	refPub, err := server.NewPublisher(ref.Eng, markRetain)
	if err != nil {
		t.Fatal(err)
	}
	refMarks := map[string]uint64{}
	if err := replayBGPTrace(ref, func(label string) {
		refMarks[label] = refPub.Current().Version
	}); err != nil {
		t.Fatal(err)
	}

	const members = 3
	trs := tcpCluster(t, members)
	pubs := make([]*server.Publisher, members)
	marks := make([]map[string]uint64, members)
	deps := make([]*nettrails.BGPDeployment, members)
	for i := 0; i < members; i++ {
		d, err := nettrails.NewBGPDeployment(ases, links, nettrails.Config{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Eng.EnableCluster(trs[i]); err != nil {
			t.Fatal(err)
		}
		pub, err := server.NewPublisherWithOptions(d.Eng,
			server.PublisherOptions{Retain: markRetain, Shard: server.ShardSpec{Index: i, Total: members}})
		if err != nil {
			t.Fatal(err)
		}
		deps[i], pubs[i], marks[i] = d, pub, map[string]uint64{}
	}
	var wg sync.WaitGroup
	errs := make(chan error, members)
	for i := 0; i < members; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					trs[rank].Close() // fail peers' barriers loudly
					errs <- fmt.Errorf("member %d: %v", rank, r)
				}
			}()
			if err := replayBGPTrace(deps[rank], func(label string) {
				marks[rank][label] = pubs[rank].Current().Version
			}); err != nil {
				trs[rank].Close()
				errs <- fmt.Errorf("member %d: %w", rank, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	final := refPub.Current().Version
	for i := 0; i < members; i++ {
		if !reflect.DeepEqual(marks[i], refMarks) {
			t.Fatalf("member %d marks %v diverge from single-process marks %v", i, marks[i], refMarks)
		}
		if v := pubs[i].Current().Version; v != final {
			t.Fatalf("member %d at version %d, single process at %d", i, v, final)
		}
	}
	for label, v := range refMarks {
		assertDigestParity(t, "mark "+label, refPub, pubs, v)
	}
	assertDigestParity(t, "final state", refPub, pubs, final)

	// Graceful drain: every member closes cleanly after the replay.
	for i, tr := range trs {
		if err := tr.Close(); err != nil {
			t.Fatalf("member %d close: %v", i, err)
		}
	}
}

// TestDistTCPPathVectorShipsFrames runs a path-vector protocol over the
// TCP cluster. Unlike the BGP monitor (whose NDlog rules are all
// node-local, so its distributed run ships no delta frames at all),
// path-vector recursion derives tuples across node boundaries on every
// link change — this test proves real remote deltas cross the wire and
// still land byte-identically.
func TestDistTCPPathVectorShipsFrames(t *testing.T) {
	testutil.CheckGoroutines(t)
	nodes := nettrails.NodeNames(6)
	script := func(sys *nettrails.System) error {
		for i := 1; i < 6; i++ {
			if err := sys.AddLink(fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1), 1); err != nil {
				return err
			}
		}
		// Churn: break the chain in the middle and reconnect around it.
		if err := sys.RemoveLink("n3", "n4", 1); err != nil {
			return err
		}
		return sys.AddLink("n2", "n5", 1)
	}

	ref, err := nettrails.NewSystem(nettrails.PathVector, nodes, nettrails.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	refPub, err := server.NewPublisher(ref.Engine, markRetain)
	if err != nil {
		t.Fatal(err)
	}
	if err := script(ref); err != nil {
		t.Fatal(err)
	}

	const members = 3
	trs := tcpCluster(t, members)
	pubs := make([]*server.Publisher, members)
	systems := make([]*nettrails.System, members)
	for i := 0; i < members; i++ {
		sys, err := nettrails.NewSystem(nettrails.PathVector, nodes, nettrails.Config{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Engine.EnableCluster(trs[i]); err != nil {
			t.Fatal(err)
		}
		pub, err := server.NewPublisherWithOptions(sys.Engine,
			server.PublisherOptions{Retain: markRetain, Shard: server.ShardSpec{Index: i, Total: members}})
		if err != nil {
			t.Fatal(err)
		}
		systems[i], pubs[i] = sys, pub
	}
	var wg sync.WaitGroup
	errs := make(chan error, members)
	for i := 0; i < members; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					trs[rank].Close()
					errs <- fmt.Errorf("member %d: %v", rank, r)
				}
			}()
			if err := script(systems[rank]); err != nil {
				trs[rank].Close()
				errs <- fmt.Errorf("member %d: %w", rank, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	final := refPub.Current().Version
	for i := 0; i < members; i++ {
		if v := pubs[i].Current().Version; v != final {
			t.Fatalf("member %d at version %d, single process at %d", i, v, final)
		}
	}
	assertDigestParity(t, "final state", refPub, pubs, final)

	// The point of this protocol choice: remote deltas really crossed
	// the TCP wire.
	shipped := uint64(0)
	for i := 0; i < members; i++ {
		st := systems[i].Engine.ClusterStats()
		shipped += st.FramesOut
		if st.Rounds == 0 || st.Epochs == 0 {
			t.Fatalf("member %d ran no distributed rounds: %+v", i, st)
		}
	}
	if shipped == 0 {
		t.Fatal("path-vector run shipped zero delta frames — the distributed path was not exercised")
	}
}
