package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
)

// SoakOptions tunes a soak run against a booted scenario.
type SoakOptions struct {
	// Clients is how many concurrent HTTP clients replay the query
	// mix against the gateway (default 8).
	Clients int
	// Queries is the total number of queries issued across all
	// clients (default 2000).
	Queries int
	// ChurnEvents is how many base-fact churn events the load
	// generator applies to every arm's engine, in lockstep, while
	// the clients run (default 200). Churn mints snapshot versions
	// concurrently with serving, which is exactly the contention the
	// publisher's copy-on-publish design exists for.
	ChurnEvents int
}

func (o SoakOptions) withDefaults() SoakOptions {
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.Queries <= 0 {
		o.Queries = 2000
	}
	if o.ChurnEvents < 0 {
		o.ChurnEvents = 0
	}
	return o
}

// LatencySummary condenses one query's latency distribution.
type LatencySummary struct {
	Count int     `json:"count"`
	P50Us float64 `json:"p50Us"`
	P95Us float64 `json:"p95Us"`
	P99Us float64 `json:"p99Us"`
	MaxUs float64 `json:"maxUs"`
}

// SoakReport is the BENCH_scenarios.json document of one soak run.
type SoakReport struct {
	Scenario    string  `json:"scenario"`
	Clients     int     `json:"clients"`
	Queries     int     `json:"queries"`
	ChurnEvents int     `json:"churnEvents"`
	ElapsedSec  float64 `json:"elapsedSec"`

	// ChecksPassed records that the full oracle suite passed on this
	// deployment before load started.
	ChecksPassed int `json:"checksPassed"`

	// PublishedVersions is how many snapshot versions the churn loop
	// minted during the run; PublishRatePerSec normalizes it.
	PublishedVersions uint64  `json:"publishedVersions"`
	PublishRatePerSec float64 `json:"publishRatePerSec"`

	// ThroughputPerSec is queries answered per wall-clock second.
	ThroughputPerSec float64 `json:"throughputPerSec"`

	// CacheHits/CacheMisses tally the gateway's X-Cache verdicts;
	// CacheHitRate is hits over verdicts.
	CacheHits    int64   `json:"cacheHits"`
	CacheMisses  int64   `json:"cacheMisses"`
	CacheHitRate float64 `json:"cacheHitRate"`

	// Statuses counts responses by HTTP status code.
	Statuses map[string]int64 `json:"statuses"`

	// Latency summarizes per-check latency distributions, keyed by
	// check name.
	Latency map[string]LatencySummary `json:"latency"`
}

// Soak replays the scenario's query mix against the booted gateway at
// the configured concurrency while churning every arm's engine, and
// reports latency percentiles, cache behavior, and publish rate. The
// oracle checks run first — a soak over a deployment whose answers
// are wrong measures nothing.
func (d *Deployment) Soak(opts SoakOptions) (*SoakReport, error) {
	o := opts.withDefaults()
	results, err := d.RunChecks()
	if err != nil {
		return nil, fmt.Errorf("soak: oracle checks failed before load: %w", err)
	}
	if len(d.Checks) == 0 {
		return nil, fmt.Errorf("soak: scenario %s has no checks to replay", d.Scenario.Name)
	}

	// Pre-marshal one request body per check, with its pinned version
	// resolved, so workers only do HTTP.
	type job struct {
		name string
		body []byte
	}
	jobs := make([]job, len(d.Checks))
	for i, c := range d.Checks {
		version, err := d.resolveMark(c.AtMark)
		if err != nil {
			return nil, err
		}
		if version == 0 {
			// Pin final-state queries to the pre-churn snapshot so
			// every job's answer stays version-determined while the
			// churn loop advances the current version underneath.
			version = d.SinglePub.Current().Version
		}
		b, err := json.Marshal(&server.QueryRequest{Q: c.Query, Version: version})
		if err != nil {
			return nil, err
		}
		jobs[i] = job{name: c.Name, body: b}
	}

	report := &SoakReport{
		Scenario:     d.Scenario.Name,
		Clients:      o.Clients,
		Queries:      o.Queries,
		ChurnEvents:  o.ChurnEvents,
		ChecksPassed: len(results),
		Statuses:     map[string]int64{},
		Latency:      map[string]LatencySummary{},
	}

	var (
		next      atomic.Int64
		hits      atomic.Int64
		misses    atomic.Int64
		mu        sync.Mutex // guards statuses + latencies
		latencies = map[string][]float64{}
	)
	startVersion := d.SinglePub.Current().Version
	start := time.Now()

	var wg sync.WaitGroup
	errc := make(chan error, o.Clients+1)
	for w := 0; w < o.Clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{}
			for {
				k := int(next.Add(1)) - 1
				if k >= o.Queries {
					return
				}
				j := jobs[k%len(jobs)]
				t0 := time.Now()
				status, verdict, err := d.soakQuery(client, j.body)
				us := float64(time.Since(t0).Microseconds())
				if err != nil {
					errc <- fmt.Errorf("soak: query %s: %w", j.name, err)
					return
				}
				switch verdict {
				case "HIT":
					hits.Add(1)
				case "MISS":
					misses.Add(1)
				}
				mu.Lock()
				report.Statuses[fmt.Sprint(status)]++
				latencies[j.name] = append(latencies[j.name], us)
				mu.Unlock()
			}
		}()
	}

	// Churn: insert/retract a synthetic base fact in lockstep on all
	// four engines. Engines are single-threaded by contract, so every
	// mutation happens on this one goroutine; HTTP readers only ever
	// touch published snapshots.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := d.churn(o.ChurnEvents); err != nil {
			errc <- err
		}
	}()

	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		return nil, err
	}

	elapsed := time.Since(start).Seconds()
	report.ElapsedSec = elapsed
	report.PublishedVersions = d.SinglePub.Current().Version - startVersion
	if elapsed > 0 {
		report.PublishRatePerSec = float64(report.PublishedVersions) / elapsed
		report.ThroughputPerSec = float64(o.Queries) / elapsed
	}
	report.CacheHits = hits.Load()
	report.CacheMisses = misses.Load()
	if total := report.CacheHits + report.CacheMisses; total > 0 {
		report.CacheHitRate = float64(report.CacheHits) / float64(total)
	}
	for name, ls := range latencies {
		report.Latency[name] = summarize(ls)
	}
	return report, nil
}

func (d *Deployment) soakQuery(client *http.Client, body []byte) (status int, cacheVerdict string, err error) {
	resp, err := client.Post(d.Gateway.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	// Drain so the connection is reusable; the body's correctness is
	// the check suite's job, not the soak's.
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return 0, "", err
	}
	return resp.StatusCode, resp.Header.Get("X-Cache"), nil
}

// churn inserts and retracts the scenario's synthetic base facts
// across every arm, one event at a time, so all four version
// sequences stay aligned. Even events insert fact k/2, odd events
// retract it again.
func (d *Deployment) churn(events int) error {
	if events == 0 {
		return nil
	}
	if d.churnFact == nil {
		return fmt.Errorf("soak: scenario %s defines no churn fact", d.Scenario.Name)
	}
	engines := []*server.Publisher{d.SinglePub}
	engines = append(engines, d.ShardPubs...)
	for k := 0; k < events; k++ {
		fact := d.churnFact(k / 2)
		for _, pub := range engines {
			var err error
			if k%2 == 0 {
				err = pub.Engine().InsertFact(fact)
			} else {
				err = pub.Engine().DeleteFact(fact)
			}
			if err != nil {
				return fmt.Errorf("soak: churn event %d (%s): %w", k, fact, err)
			}
		}
	}
	return nil
}

func summarize(us []float64) LatencySummary {
	sort.Float64s(us)
	pick := func(q float64) float64 {
		if len(us) == 0 {
			return 0
		}
		i := int(q * float64(len(us)-1))
		return us[i]
	}
	out := LatencySummary{Count: len(us), P50Us: pick(0.50), P95Us: pick(0.95), P99Us: pick(0.99)}
	if len(us) > 0 {
		out.MaxUs = us[len(us)-1]
	}
	return out
}
