package scenario

import (
	"strings"
	"testing"

	"repro/internal/provquery"
	"repro/internal/rel"
	"repro/internal/testutil"
)

// TestCatalog is the adversarial acceptance suite: every scenario of
// the catalog boots four engine builds (single process + 3 shards
// behind the gateway), replays its fault, and answers every oracle
// check byte-identically on both arms.
func TestCatalog(t *testing.T) {
	for _, sc := range Catalog() {
		t.Run(sc.Name, func(t *testing.T) {
			testutil.CheckGoroutines(t)
			d, err := Boot(sc)
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			if len(d.Checks) < 5 {
				t.Fatalf("scenario %s has %d checks, want >= 5", sc.Name, len(d.Checks))
			}
			results, err := d.RunChecks()
			if err != nil {
				t.Fatal(err)
			}
			if len(results) != len(d.Checks) {
				t.Fatalf("ran %d of %d checks", len(results), len(d.Checks))
			}
		})
	}
}

// TestBootRejectsMarkDrift documents the determinism contract: a
// scenario whose arms replay different events must fail to boot.
func TestBootRejectsMarkDrift(t *testing.T) {
	testutil.CheckGoroutines(t)
	sc := PrefixHijack(12, 1)
	builds := 0
	inner := sc.NewInstance
	sc.NewInstance = func() (*Instance, error) {
		inst, err := inner()
		if err != nil {
			return nil, err
		}
		builds++
		if builds == 2 { // first shard arm replays one extra event
			replay := inst.Replay
			inst.Replay = func(mark func(string)) error {
				if err := replay(mark); err != nil {
					return err
				}
				eng := inst.Eng
				drift := rel.NewTuple("routeEntry", rel.Addr(eng.Nodes()[0]), rel.Str("drift"))
				return eng.InsertFact(drift)
			}
		}
		return inst, nil
	}
	d, err := Boot(sc)
	if err == nil {
		d.Close()
		t.Fatal("Boot accepted arms that replayed different event sequences")
	}
	if !strings.Contains(err.Error(), "version") && !strings.Contains(err.Error(), "marks") {
		t.Fatalf("drift error does not mention versions or marks: %v", err)
	}
}

func TestRunCheckUnknownMark(t *testing.T) {
	testutil.CheckGoroutines(t)
	d, err := Boot(RouteLeak())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.RunCheck(Check{Name: "bad", Query: "count of x(@'AS1')", AtMark: "no-such-mark"}); err == nil {
		t.Fatal("RunCheck accepted an unknown mark")
	}
}

func TestTupleLiteralRoundTrips(t *testing.T) {
	for _, tup := range []rel.Tuple{
		rel.NewTuple("routeEntry", rel.Addr("AS01"), rel.Str("203.0.113.0/24")),
		rel.NewTuple("route", rel.Addr("n1"), rel.Addr("n6"),
			rel.List(rel.Addr("n1"), rel.Addr("n2"), rel.Addr("n6"))),
		rel.NewTuple("mincost", rel.Addr("n1"), rel.Addr("n3"), rel.Int(2)),
	} {
		lit := TupleLiteral(tup)
		// The literal must parse back to the identical tuple through
		// the public facade (the same parser the HTTP server uses).
		got, err := provquery.ParseTupleLiteral(lit)
		if err != nil {
			t.Fatalf("TupleLiteral(%s) = %q does not parse: %v", tup, lit, err)
		}
		if !got.Equal(tup) {
			t.Fatalf("literal %q parsed to %s, want %s", lit, got, tup)
		}
	}
}
