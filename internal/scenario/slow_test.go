//go:build slow

package scenario

import (
	"testing"

	"repro/internal/testutil"
)

// TestPrefixHijackRouteViewsScale runs the hijack scenario over a
// generated 1000-AS topology — the RouteViews-scale acceptance bar.
// Four engine builds replay the full announce+hijack sequence and the
// oracle must still pin the attacker, byte-identically on the
// single-process and sharded arms. Run via `make scenarios-slow`
// (tier-1 stays fast; this build tag keeps it out of `go test ./...`).
func TestPrefixHijackRouteViewsScale(t *testing.T) {
	testutil.CheckGoroutines(t)
	d, err := Boot(PrefixHijack(1000, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.RunChecks(); err != nil {
		t.Fatal(err)
	}
}
