package scenario

import (
	"fmt"

	nettrails "repro"
	"repro/internal/rel"
	"repro/internal/routeviews"
	"repro/internal/server"
)

// Catalog returns the standard adversarial scenarios at tier-1 test
// sizes. Larger variants (RouteViews scale) are built directly with
// the parameterized constructors.
func Catalog() []Scenario {
	return []Scenario{
		PrefixHijack(24, 1),
		RouteLeak(),
		LinkFlapStorm(),
		ConvergencePartition(),
		DSRMobility(),
	}
}

// bgpInfo is the server configuration every BGP scenario serves under.
func bgpInfo() server.Info { return server.Info{Protocol: "bgp"} }

// bgpChurnFact builds the k-th soak churn fact for a BGP scenario: a
// base routeEntry for a reserved benchmark prefix (RFC 2544 space) at
// the given AS. Distinct from every tuple the oracles query, so churn
// never perturbs check answers.
func bgpChurnFact(as string) func(k int) rel.Tuple {
	return func(k int) rel.Tuple {
		return rel.NewTuple("routeEntry", rel.Addr(as), rel.Str(fmt.Sprintf("198.18.%d.0/24", k%256)))
	}
}

// PrefixHijack is the paper's headline forensic case at a synthetic
// RouteViews-like scale: over a generated AS graph of n nodes, a stub
// AS originates a prefix it does not own while the legitimate origin's
// announcement is live. The attacker's provider prefers the
// customer-learned forgery (Gao-Rexford localPref), so its routing
// entry silently flips — and the oracle demands that provenance
// queries on that entry surface the attacker as the root cause and
// show the legitimate origin displaced.
func PrefixHijack(n int, seed int64) Scenario {
	const prefix = "203.0.113.0/24"
	return Scenario{
		Name: fmt.Sprintf("prefix-hijack-%d", n),
		Description: fmt.Sprintf(
			"forged origin announcement over a generated %d-AS topology; lineage at the attacker's provider must name the attacker", n),
		Info: bgpInfo(),
		NewInstance: func() (*Instance, error) {
			g, err := routeviews.GenerateASGraph(routeviews.ASGraphOptions{Nodes: n, Seed: seed})
			if err != nil {
				return nil, err
			}
			d, err := nettrails.NewBGPDeployment(g.ASes, Links(g), nettrails.Config{Seed: seed})
			if err != nil {
				return nil, err
			}
			// The last two generated ASes are stubs: victim and
			// attacker. The vantage is the attacker's first provider —
			// the AS whose routing entry the hijack flips (a customer
			// route beats the legitimate route it held before).
			victim := g.ASes[len(g.ASes)-1]
			attacker := g.ASes[len(g.ASes)-2]
			provs := g.Providers(attacker)
			if len(provs) == 0 {
				return nil, fmt.Errorf("scenario: attacker %s has no provider", attacker)
			}
			vantage := provs[0]
			entry := fmt.Sprintf("routeEntry(@'%s',%q)", vantage, prefix)
			return &Instance{
				Eng:       d.Eng,
				ChurnFact: bgpChurnFact(g.ASes[0]),
				Replay: func(mark func(string)) error {
					if err := d.Originate(victim, prefix); err != nil {
						return err
					}
					mark("pre-hijack")
					return d.Originate(attacker, prefix)
				},
				Checks: func() []Check {
					return []Check{
						{
							Name:   "victim-serves-before-hijack",
							Query:  "nodes of " + entry,
							AtMark: "pre-hijack",
							Oracle: &Oracle{CauseNode: victim, AbsentNode: attacker},
						},
						{
							Name:   "hijacker-displaces-victim",
							Query:  "nodes of " + entry,
							Oracle: &Oracle{CauseNode: attacker, AbsentNode: victim},
						},
						{
							Name:   "forged-announcement-is-the-base",
							Query:  "bases of " + entry,
							Oracle: &Oracle{CauseNode: attacker, AllBasesRel: "outputRoute"},
						},
						{
							Name:   "lineage-reaches-attacker-within-bound",
							Query:  "lineage of " + entry,
							Oracle: &Oracle{CauseNode: attacker, WithinDepth: 6},
						},
						{
							Name:   "entry-still-derivable",
							Query:  "count of " + entry,
							Oracle: &Oracle{MinCount: 1},
						},
					}
				},
			}, nil
		},
	}
}

// RouteLeak reproduces the classic misconfiguration: a multihomed stub
// re-exports one provider's routes to the other ("ExportAll", the
// disabled Gao-Rexford export filter), and the second provider prefers
// the leaked customer route over its legitimate peer path. The oracle
// demands the leaker appear in the polluted entry's provenance.
func RouteLeak() Scenario {
	const prefix = "198.51.100.0/24"
	// AS1 -- AS2 tier-1 peers; origin AS3 under AS1; leaker AS4 under
	// both; AS5 under AS2 (gives AS2 a customer to advertise to, so
	// its routeEntry exists).
	ases := []string{"AS1", "AS2", "AS3", "AS4", "AS5"}
	links := []nettrails.ASLink{
		{A: "AS1", B: "AS2", Rel: nettrails.PeerOf},
		{A: "AS1", B: "AS3", Rel: nettrails.CustomerOf},
		{A: "AS1", B: "AS4", Rel: nettrails.CustomerOf},
		{A: "AS2", B: "AS4", Rel: nettrails.CustomerOf},
		{A: "AS2", B: "AS5", Rel: nettrails.CustomerOf},
	}
	entry := fmt.Sprintf("routeEntry(@'AS2',%q)", prefix)
	return Scenario{
		Name:        "route-leak",
		Description: "multihomed stub AS4 re-exports provider routes; AS2's entry must trace through the leaker",
		Info:        bgpInfo(),
		NewInstance: func() (*Instance, error) {
			d, err := nettrails.NewBGPDeployment(ases, links, nettrails.Config{Seed: 1})
			if err != nil {
				return nil, err
			}
			return &Instance{
				Eng:       d.Eng,
				ChurnFact: bgpChurnFact("AS1"),
				Replay: func(mark func(string)) error {
					if err := d.Originate("AS3", prefix); err != nil {
						return err
					}
					mark("clean")
					// The leak flag applies to routes learned after it
					// is set; flapping the origin replays the
					// announcement into the now-leaky topology.
					if err := d.SetExportAll("AS4", true); err != nil {
						return err
					}
					if err := d.Withdraw("AS3", prefix); err != nil {
						return err
					}
					return d.Originate("AS3", prefix)
				},
				Checks: func() []Check {
					return []Check{
						{
							Name:   "clean-path-avoids-leaker",
							Query:  "nodes of " + entry,
							AtMark: "clean",
							Oracle: &Oracle{CauseNode: "AS1", AbsentNode: "AS4"},
						},
						{
							Name:   "leaker-pollutes-entry",
							Query:  "nodes of " + entry,
							Oracle: &Oracle{CauseNode: "AS4"},
						},
						{
							Name:   "lineage-crosses-leaker",
							Query:  "lineage of " + entry,
							Oracle: &Oracle{CauseNode: "AS4", WithinDepth: 4},
						},
						{
							Name:   "true-origin-remains-the-base",
							Query:  "bases of " + entry,
							Oracle: &Oracle{CauseNode: "AS3", AllBasesRel: "outputRoute"},
						},
						{
							Name:   "entry-still-derivable",
							Query:  "count of " + entry,
							Oracle: &Oracle{MinCount: 1},
						},
					}
				},
			}, nil
		},
	}
}

// LinkFlapStorm withdraws and re-announces a prefix through a
// provider chain repeatedly, stressing the publisher's version ring
// and incremental provenance deletion. Marks pin queries into the
// middle of the storm — including a withdrawn instant where the entry
// must answer with a structured no_provenance error on BOTH arms.
func LinkFlapStorm() Scenario {
	const prefix = "192.0.2.0/24"
	const flaps = 8
	// Provider chain AS1 > AS2 > AS3 > AS4 > AS5; origin AS5.
	// Vantage AS3 advertises upward, so its routeEntry exists.
	ases := []string{"AS1", "AS2", "AS3", "AS4", "AS5"}
	links := []nettrails.ASLink{
		{A: "AS1", B: "AS2", Rel: nettrails.CustomerOf},
		{A: "AS2", B: "AS3", Rel: nettrails.CustomerOf},
		{A: "AS3", B: "AS4", Rel: nettrails.CustomerOf},
		{A: "AS4", B: "AS5", Rel: nettrails.CustomerOf},
	}
	entry := fmt.Sprintf("routeEntry(@'AS3',%q)", prefix)
	return Scenario{
		Name:        "link-flap-storm",
		Description: fmt.Sprintf("%d withdraw/re-announce cycles through a provider chain; marks pin mid-storm snapshots", flaps),
		Info:        bgpInfo(),
		NewInstance: func() (*Instance, error) {
			d, err := nettrails.NewBGPDeployment(ases, links, nettrails.Config{Seed: 1})
			if err != nil {
				return nil, err
			}
			return &Instance{
				Eng:       d.Eng,
				ChurnFact: bgpChurnFact("AS1"),
				Replay: func(mark func(string)) error {
					if err := d.Originate("AS5", prefix); err != nil {
						return err
					}
					mark("announced")
					for i := 0; i < flaps; i++ {
						if err := d.Withdraw("AS5", prefix); err != nil {
							return err
						}
						if i == flaps/2 {
							mark("withdrawn")
						}
						if err := d.Originate("AS5", prefix); err != nil {
							return err
						}
						mark(fmt.Sprintf("flap-%d", i+1))
					}
					return nil
				},
				Checks: func() []Check {
					return []Check{
						{
							Name:   "origin-rooted-before-storm",
							Query:  "nodes of " + entry,
							AtMark: "announced",
							Oracle: &Oracle{CauseNode: "AS5"},
						},
						{
							Name:        "withdrawn-instant-has-no-provenance",
							Query:       "lineage of " + entry,
							AtMark:      "withdrawn",
							WantStatus:  404,
							WantErrCode: "no_provenance",
						},
						{
							Name:   "mid-storm-snapshot-pins",
							Query:  "nodes of " + entry,
							AtMark: fmt.Sprintf("flap-%d", flaps/2),
							Oracle: &Oracle{CauseNode: "AS5"},
						},
						{
							Name:   "storm-settles-on-origin",
							Query:  "bases of " + entry,
							Oracle: &Oracle{CauseNode: "AS5", AllBasesRel: "outputRoute"},
						},
						{
							Name:   "entry-still-derivable",
							Query:  "count of " + entry,
							Oracle: &Oracle{MinCount: 1},
						},
					}
				},
			}, nil
		},
	}
}

// ConvergencePartition fails BGP sessions at a tier-1 triangle: the
// vantage loses its primary peer path, reconverges onto the backup,
// then is fully partitioned (no_provenance on both arms), and finally
// heals via a session restore with full-table resync. Provenance at
// each mark must name the path actually serving the route then.
func ConvergencePartition() Scenario {
	const prefix = "203.0.113.128/25"
	// Tier-1 triangle AS1/AS2/AS3; origin AS4 multihomed under AS1
	// and AS2; vantage AS3 with customer AS5.
	ases := []string{"AS1", "AS2", "AS3", "AS4", "AS5"}
	links := []nettrails.ASLink{
		{A: "AS1", B: "AS2", Rel: nettrails.PeerOf},
		{A: "AS1", B: "AS3", Rel: nettrails.PeerOf},
		{A: "AS2", B: "AS3", Rel: nettrails.PeerOf},
		{A: "AS1", B: "AS4", Rel: nettrails.CustomerOf},
		{A: "AS2", B: "AS4", Rel: nettrails.CustomerOf},
		{A: "AS3", B: "AS5", Rel: nettrails.CustomerOf},
	}
	entry := fmt.Sprintf("routeEntry(@'AS3',%q)", prefix)
	return Scenario{
		Name:        "convergence-partition",
		Description: "session failures partition the vantage tier-1, then a restore heals it; provenance tracks the serving path",
		Info:        bgpInfo(),
		NewInstance: func() (*Instance, error) {
			d, err := nettrails.NewBGPDeployment(ases, links, nettrails.Config{Seed: 1})
			if err != nil {
				return nil, err
			}
			return &Instance{
				Eng:       d.Eng,
				ChurnFact: bgpChurnFact("AS1"),
				Replay: func(mark func(string)) error {
					if err := d.Originate("AS4", prefix); err != nil {
						return err
					}
					mark("converged") // AS3 serves via AS1 (name tie-break)
					if err := d.FailSession("AS3", "AS1"); err != nil {
						return err
					}
					mark("failed-over") // backup via AS2
					if err := d.FailSession("AS3", "AS2"); err != nil {
						return err
					}
					mark("partitioned") // AS3 unreachable from the origin
					return d.RestoreSession("AS3", "AS1")
				},
				Checks: func() []Check {
					return []Check{
						{
							Name:   "primary-path-via-AS1",
							Query:  "nodes of " + entry,
							AtMark: "converged",
							Oracle: &Oracle{CauseNode: "AS1", AbsentNode: "AS2"},
						},
						{
							Name:   "failover-moves-to-AS2",
							Query:  "nodes of " + entry,
							AtMark: "failed-over",
							Oracle: &Oracle{CauseNode: "AS2", AbsentNode: "AS1"},
						},
						{
							Name:        "partition-leaves-no-provenance",
							Query:       "lineage of " + entry,
							AtMark:      "partitioned",
							WantStatus:  404,
							WantErrCode: "no_provenance",
						},
						{
							Name:   "heal-returns-to-AS1",
							Query:  "nodes of " + entry,
							Oracle: &Oracle{CauseNode: "AS1", AbsentNode: "AS2"},
						},
						{
							Name:   "healed-lineage-roots-at-origin",
							Query:  "lineage of " + entry,
							Oracle: &Oracle{CauseNode: "AS4", WithinDepth: 6},
						},
					}
				},
			}, nil
		},
	}
}

// DSRMobility drives the paper's mobile-network use case: DSR source
// routing where a node moves out of radio range (its direct link
// disappears) and re-appears elsewhere. Routes are queried by exact
// source-route value, so the oracle distinguishes the vanished direct
// route (structured no_provenance) from the multi-hop replacements,
// whose provenance must bottom out in link base tuples only.
func DSRMobility() Scenario {
	n := nettrails.NodeNames(6) // n1..n6
	chainRoute := "route(@'n1','n6',['n1','n2','n3','n4','n5','n6'])"
	directRoute := "route(@'n1','n6',['n1','n6'])"
	movedRoute := "route(@'n1','n6',['n1','n2','n3','n4','n6'])"
	return Scenario{
		Name:        "dsr-mobility",
		Description: "mobile node n6 leaves n1's radio range and reattaches near n4; route provenance follows the moves",
		Info:        server.Info{Protocol: "dsr"},
		NewInstance: func() (*Instance, error) {
			sys, err := nettrails.NewSystem(nettrails.DSR, n, nettrails.Config{Seed: 1})
			if err != nil {
				return nil, err
			}
			return &Instance{
				Eng: sys.Engine,
				// Soak churn flaps a radio link the replay never
				// creates (n2–n5): inserting it derives extra routes,
				// deleting retracts them, and none of the queried
				// source routes contain the pair, so check answers
				// are untouched.
				ChurnFact: func(k int) rel.Tuple {
					return rel.NewTuple("link", rel.Addr("n2"), rel.Addr("n5"), rel.Int(1))
				},
				Replay: func(mark func(string)) error {
					// Radio chain n1-n2-...-n6 plus the direct link
					// n1-n6 (n6 initially in n1's range).
					for i := 0; i < len(n)-1; i++ {
						if err := sys.AddLink(n[i], n[i+1], 1); err != nil {
							return err
						}
					}
					if err := sys.AddLink("n1", "n6", 1); err != nil {
						return err
					}
					mark("direct")
					// n6 moves away from n1...
					if err := sys.RemoveLink("n1", "n6", 1); err != nil {
						return err
					}
					mark("moved")
					// ...and reattaches in n4's range.
					return sys.AddLink("n4", "n6", 1)
				},
				Checks: func() []Check {
					return []Check{
						{
							Name:   "direct-route-exists-in-range",
							Query:  "bases of " + directRoute,
							AtMark: "direct",
							Oracle: &Oracle{CauseNode: "n1", AllBasesRel: "link"},
						},
						{
							Name:        "direct-route-vanishes-after-move",
							Query:       "lineage of " + directRoute,
							AtMark:      "moved",
							WantStatus:  404,
							WantErrCode: "no_provenance",
						},
						{
							Name:   "chain-route-survives",
							Query:  "bases of " + chainRoute,
							Oracle: &Oracle{CauseNode: "n5", AllBasesRel: "link"},
						},
						{
							Name:   "reattached-route-appears",
							Query:  "lineage of " + movedRoute,
							Oracle: &Oracle{CauseNode: "n4", WithinDepth: 5},
						},
						{
							Name:   "chain-route-derivable",
							Query:  "count of " + chainRoute,
							Oracle: &Oracle{MinCount: 1},
						},
					}
				},
			}, nil
		},
	}
}
