package gateway_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	nettrails "repro"
	"repro/internal/gateway"
	"repro/internal/routeviews"
	"repro/internal/server"
)

// buildBGP boots one 8-AS BGP deployment and replays the given
// RouteViews-style trace; identical parameters give byte-identical
// state and provenance, which is what lets three shard processes and
// one single process agree to the byte.
func buildBGP(t testing.TB, events []routeviews.Event) *nettrails.BGPDeployment {
	t.Helper()
	ases := make([]string, 8)
	for i := range ases {
		ases[i] = fmt.Sprintf("AS%d", i+1)
	}
	links := []nettrails.ASLink{
		{A: "AS1", B: "AS2", Rel: nettrails.PeerOf},
		{A: "AS1", B: "AS3", Rel: nettrails.CustomerOf},
		{A: "AS2", B: "AS4", Rel: nettrails.CustomerOf},
		{A: "AS3", B: "AS5", Rel: nettrails.CustomerOf},
		{A: "AS4", B: "AS6", Rel: nettrails.CustomerOf},
		{A: "AS5", B: "AS7", Rel: nettrails.CustomerOf},
		{A: "AS6", B: "AS8", Rel: nettrails.CustomerOf},
		{A: "AS7", B: "AS8", Rel: nettrails.PeerOf},
	}
	d, err := nettrails.NewBGPDeployment(ases, links, nettrails.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A sentinel prefix outside the generated 10.x pool: never
	// withdrawn, so the queried route exists in the final state.
	if err := d.Originate("AS8", "192.0.2.0/24"); err != nil {
		t.Fatal(err)
	}
	if err := d.ReplayTrace(events); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestShardedParityBGPTrace is the acceptance check of the sharded
// serving tier: after replaying the 8-AS BGP trace, a 3-shard
// deployment behind a gateway answers all four query types
// byte-identically to the single-process daemon.
func TestShardedParityBGPTrace(t *testing.T) {
	// One deterministic trace, replayed by every process.
	events, err := buildBGP(t, nil).GenerateTrace(40, 1)
	if err != nil {
		t.Fatal(err)
	}

	singlePub, err := server.NewPublisher(buildBGP(t, events).Eng, 0)
	if err != nil {
		t.Fatal(err)
	}
	single := httptest.NewServer(server.New(singlePub, server.Info{Protocol: "bgp"}))
	defer single.Close()

	urls := make([]string, 3)
	var shardPubs []*server.Publisher
	for i := 0; i < 3; i++ {
		pub, err := server.NewShardedPublisher(buildBGP(t, events).Eng, 0,
			server.ShardSpec{Index: i, Total: 3})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(server.New(pub, server.Info{Protocol: "bgp"}))
		defer ts.Close()
		shardPubs = append(shardPubs, pub)
		urls[i] = ts.URL
	}

	// Epoch agreement: every process minted the same version sequence.
	want := singlePub.Current().Version
	for i, pub := range shardPubs {
		if got := pub.Current().Version; got != want {
			t.Fatalf("shard %d at version %d, single process at %d", i, got, want)
		}
	}

	g, err := gateway.New(context.Background(), urls,
		gateway.WithInfo(server.Info{Protocol: "bgp"}))
	if err != nil {
		t.Fatal(err)
	}
	gw := httptest.NewServer(g)
	defer gw.Close()

	// The route's provenance spans the customer chain AS8..AS1 — and
	// therefore all three shards. AS addresses are single quoted, the
	// prefix is a double-quoted string (escaped inside JSON).
	tuple := `routeEntry(@'AS1',\"192.0.2.0/24\")`
	for _, q := range []string{
		fmt.Sprintf(`{"q":"lineage of %s"}`, tuple),
		fmt.Sprintf(`{"q":"bases of %s"}`, tuple),
		fmt.Sprintf(`{"q":"nodes of %s"}`, tuple),
		fmt.Sprintf(`{"q":"count of %s"}`, tuple),
		fmt.Sprintf(`{"q":"lineage of %s with threshold 1"}`, tuple),
		fmt.Sprintf(`{"q":"count of %s with dfs"}`, tuple),
	} {
		sResp, sBody := post(t, single.URL+"/v1/query", q)
		gResp, gBody := post(t, gw.URL+"/v1/query", q)
		if sResp.StatusCode != http.StatusOK {
			t.Fatalf("single %s: %d %s", q, sResp.StatusCode, sBody)
		}
		if gResp.StatusCode != sResp.StatusCode || !bytes.Equal(sBody, gBody) {
			t.Fatalf("BGP parity broken for %s:\nsingle %d %s\ngateway %d %s",
				q, sResp.StatusCode, sBody, gResp.StatusCode, gBody)
		}
	}

	// The merged node summary agrees too.
	_, sNodes := get(t, single.URL+"/v1/nodes")
	_, gNodes := get(t, gw.URL+"/v1/nodes")
	if !bytes.Equal(sNodes, gNodes) {
		t.Fatalf("/v1/nodes BGP parity broken:\nsingle %s\ngateway %s", sNodes, gNodes)
	}
}
