package gateway

import (
	"context"
	"fmt"

	"repro/client"
	"repro/internal/provenance"
	"repro/internal/provgraph"
	"repro/internal/rel"
	"repro/internal/server"
)

// fedSource adapts a sharded deployment to the provgraph walk: the
// federated face of the one-walk design. Reads for nodes the local
// shard owns resolve directly against the colocated pinned snapshot;
// reads for every other node fan out over HTTP to the owning shard's
// POST /v1/prov/read, pinned to the same snapshot version everywhere.
//
// Cross-node hops are deferred: ExpandRemote queues the expansion and
// the query driver flushes the queue in rounds, so sibling expansions
// landing on the same shard ride one batched read request instead of
// one round trip each.
//
// Cost accounting is two-ledger. The modeled ledger (msgs/bytes)
// charges every cross-node hop the identical request/response sizes
// the snapshot adapter charges, so a federated answer's stats — and
// therefore its whole response body — stay byte-identical to the
// single-process answer. The real ledger (hops) counts downstream
// HTTP requests actually issued, surfaced as the X-Shard-Hops header:
// what federation really cost, next to what the simulated network
// would have charged.
//
// One fedSource serves exactly one walk and is not safe for
// concurrent use, mirroring the walk itself.
type fedSource struct {
	g       *Gateway
	ctx     context.Context
	version uint64

	verts map[locID]vertexData
	execs map[locID]execData

	msgs  int // modeled ledger: simulated messages
	bytes int // modeled ledger: simulated bytes
	hops  int // real ledger: downstream HTTP requests issued

	pending []pendingExpand

	// err is the first transport/protocol failure; once set, the walk
	// is abandoned and the query fails as a whole (never a silently
	// partial answer).
	err error
}

type locID struct {
	loc string
	id  rel.ID
}

// vertexData mirrors one ProvVertex after decoding: the two
// independent lookups a local walk would have performed.
type vertexData struct {
	tupleOK  bool
	tuple    rel.Tuple
	derivsOK bool
	derivs   []provenance.Entry
}

type execData struct {
	ok   bool
	exec provenance.ExecEntry
}

type pendingExpand struct {
	loc     string
	rid     rel.ID
	visited []rel.ID
	cont    func(provgraph.SubResult)
}

func newFedSource(g *Gateway, ctx context.Context, version uint64) *fedSource {
	return &fedSource{
		g:       g,
		ctx:     ctx,
		version: version,
		verts:   map[locID]vertexData{},
		execs:   map[locID]execData{},
	}
}

// fail records the first downstream failure.
func (s *fedSource) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// readShard issues one batch of reads against the shard owning them:
// directly on the colocated snapshot for the local shard (no HTTP),
// over the SDK for remote ones (one real hop per request).
func (s *fedSource) readShard(shard int, ops []client.ProvReadOp) ([]client.ProvReadResult, error) {
	if s.g.localIdx == shard && s.g.localPub != nil {
		snap, ok := s.g.localPub.At(s.version)
		if !ok {
			return nil, &evictedError{shard: shard, version: s.version}
		}
		srvOps := make([]server.ProvReadOp, len(ops))
		for i, op := range ops {
			srvOps[i] = server.ProvReadOp{Op: op.Op, Loc: op.Loc, ID: op.ID}
		}
		return convertResults(snap.ProvRead(srvOps)), nil
	}
	s.hops++
	res, err := s.g.clients[shard].ProvRead(s.ctx, s.version, ops)
	if err != nil {
		return nil, err
	}
	return res.Results, nil
}

// evictedError marks a pinned version missing from one shard's
// retention ring — the cross-shard epoch-agreement failure mode.
type evictedError struct {
	shard   int
	version uint64
}

// Error names the shard and version that fell out of agreement.
func (e *evictedError) Error() string {
	return fmt.Sprintf("shard %d no longer retains version %d", e.shard, e.version)
}

// convertResults maps the server-side read results onto the SDK
// shapes, so local and remote reads decode through one path.
func convertResults(in []server.ProvReadResult) []client.ProvReadResult {
	out := make([]client.ProvReadResult, len(in))
	for i, r := range in {
		out[i] = client.ProvReadResult{
			Err:        r.Err,
			ProvVertex: convertVertex(r.ProvVertexJSON),
			ExecOK:     r.ExecOK,
		}
		if r.Exec != nil {
			out[i].Exec = &client.ProvExec{Rule: r.Exec.Rule, VIDs: r.Exec.VIDs}
		}
		for _, in := range r.Inputs {
			out[i].Inputs = append(out[i].Inputs, client.ProvInput{
				VID:        in.VID,
				ProvVertex: convertVertex(in.ProvVertexJSON),
			})
		}
	}
	return out
}

func convertVertex(v server.ProvVertexJSON) client.ProvVertex {
	out := client.ProvVertex{TupleOK: v.TupleOK, Tuple: v.Tuple, DerivsOK: v.DerivsOK}
	for _, d := range v.Derivs {
		out.Derivs = append(out.Derivs, client.ProvDeriv{RID: d.RID, RLoc: d.RLoc})
	}
	return out
}

// decodeVertex turns a wire vertex into walk-ready partition data.
func decodeVertex(vid rel.ID, pv client.ProvVertex) (vertexData, error) {
	out := vertexData{tupleOK: pv.TupleOK, derivsOK: pv.DerivsOK}
	if pv.TupleOK {
		t, err := rel.UnmarshalTuple(pv.Tuple)
		if err != nil {
			return out, fmt.Errorf("bad tuple encoding: %w", err)
		}
		out.tuple = t
	}
	if pv.DerivsOK {
		out.derivs = make([]provenance.Entry, len(pv.Derivs))
		for i, d := range pv.Derivs {
			e := provenance.Entry{VID: vid, RLoc: d.RLoc}
			if d.RID != "" {
				rid, err := rel.ParseID(d.RID)
				if err != nil {
					return out, fmt.Errorf("bad rid: %w", err)
				}
				e.RID = rid
			}
			out.derivs[i] = e
		}
	}
	return out, nil
}

// absorb decodes one read result into the source's caches.
func (s *fedSource) absorb(op client.ProvReadOp, r client.ProvReadResult) error {
	if r.Err != "" {
		return fmt.Errorf("shard read %s %s@%s failed: %s", op.Op, op.ID, op.Loc, r.Err)
	}
	id, err := rel.ParseID(op.ID)
	if err != nil {
		return err
	}
	switch op.Op {
	case client.ProvReadVertex:
		vd, err := decodeVertex(id, r.ProvVertex)
		if err != nil {
			return err
		}
		s.verts[locID{op.Loc, id}] = vd
	case client.ProvReadExec:
		ed := execData{ok: r.ExecOK}
		if r.ExecOK {
			ed.exec = provenance.ExecEntry{RID: id, Rule: r.Exec.Rule}
			for _, vs := range r.Exec.VIDs {
				vid, err := rel.ParseID(vs)
				if err != nil {
					return fmt.Errorf("bad vid: %w", err)
				}
				ed.exec.VIDs = append(ed.exec.VIDs, vid)
			}
			for _, in := range r.Inputs {
				vid, err := rel.ParseID(in.VID)
				if err != nil {
					return fmt.Errorf("bad input vid: %w", err)
				}
				vd, err := decodeVertex(vid, in.ProvVertex)
				if err != nil {
					return err
				}
				s.verts[locID{op.Loc, vid}] = vd
			}
		}
		s.execs[locID{op.Loc, id}] = ed
	}
	return nil
}

// vertex resolves (loc, vid) through the cache, with a synchronous
// single read on a miss.
func (s *fedSource) vertex(loc string, vid rel.ID) vertexData {
	key := locID{loc, vid}
	if vd, ok := s.verts[key]; ok {
		return vd
	}
	if s.err != nil {
		return vertexData{}
	}
	shard, ok := s.g.table[loc]
	if !ok {
		// The walk never reaches here for unknown nodes (derivation
		// entries only name real nodes), but fail safe.
		s.fail(fmt.Errorf("unknown node %q", loc))
		return vertexData{}
	}
	op := client.ProvReadOp{Op: client.ProvReadVertex, Loc: loc, ID: vid.String()}
	res, err := s.readShard(shard, []client.ProvReadOp{op})
	if err != nil {
		s.fail(err)
		return vertexData{}
	}
	if err := s.absorb(op, res[0]); err != nil {
		s.fail(err)
		return vertexData{}
	}
	return s.verts[key]
}

// execAt resolves (loc, rid) through the cache, with a synchronous
// single read on a miss (its input vertices arrive piggybacked).
func (s *fedSource) execAt(loc string, rid rel.ID) execData {
	key := locID{loc, rid}
	if ed, ok := s.execs[key]; ok {
		return ed
	}
	if s.err != nil {
		return execData{}
	}
	shard, ok := s.g.table[loc]
	if !ok {
		s.fail(fmt.Errorf("unknown node %q", loc))
		return execData{}
	}
	op := client.ProvReadOp{Op: client.ProvReadExec, Loc: loc, ID: rid.String()}
	res, err := s.readShard(shard, []client.ProvReadOp{op})
	if err != nil {
		s.fail(err)
		return execData{}
	}
	if err := s.absorb(op, res[0]); err != nil {
		s.fail(err)
		return execData{}
	}
	return s.execs[key]
}

// ---- provgraph.Source ---------------------------------------------------

// TupleOf resolves a pinned VID at loc (locally or via the owning
// shard).
func (s *fedSource) TupleOf(loc string, vid rel.ID) (rel.Tuple, bool) {
	vd := s.vertex(loc, vid)
	return vd.tuple, vd.tupleOK
}

// Derivations returns the derivation entries of vid at loc.
func (s *fedSource) Derivations(loc string, vid rel.ID) ([]provenance.Entry, bool) {
	vd := s.vertex(loc, vid)
	return vd.derivs, vd.derivsOK
}

// Exec returns the rule execution recorded for rid at loc.
func (s *fedSource) Exec(loc string, rid rel.ID) (provenance.ExecEntry, bool) {
	ed := s.execAt(loc, rid)
	return ed.exec, ed.ok
}

// ExpandRemote charges the modeled request/response pair the live
// traversal would have sent for the cross-node hop, then defers the
// expansion so the flush can batch it with siblings landing on the
// same shard.
func (s *fedSource) ExpandRemote(w *provgraph.Walk, from, loc string, rid rel.ID, visited []rel.ID, cont func(provgraph.SubResult)) {
	s.msgs++ // request
	s.bytes += provgraph.RequestSize(len(visited))
	s.pending = append(s.pending, pendingExpand{
		loc: loc, rid: rid, visited: visited,
		cont: func(r provgraph.SubResult) {
			s.msgs++ // response
			s.bytes += provgraph.ResponseSize(w.Type, r)
			cont(r)
		},
	})
}

// flush runs one round of deferred expansions: prefetch every missing
// exec (one batched read per shard), then re-enter the walk for each
// expansion in order. New expansions queued by the re-entry wait for
// the next round.
func (s *fedSource) flush(w *provgraph.Walk) {
	batch := s.pending
	s.pending = nil
	perShard := map[int][]client.ProvReadOp{}
	queued := map[locID]bool{}
	for _, it := range batch {
		key := locID{it.loc, it.rid}
		if _, ok := s.execs[key]; ok || queued[key] {
			continue
		}
		shard, ok := s.g.table[it.loc]
		if !ok {
			s.fail(fmt.Errorf("unknown node %q", it.loc))
			return
		}
		queued[key] = true
		perShard[shard] = append(perShard[shard],
			client.ProvReadOp{Op: client.ProvReadExec, Loc: it.loc, ID: it.rid.String()})
	}
	for shard, ops := range perShard {
		res, err := s.readShard(shard, ops)
		if err != nil {
			s.fail(err)
			return
		}
		for i, op := range ops {
			if err := s.absorb(op, res[i]); err != nil {
				s.fail(err)
				return
			}
		}
	}
	for _, it := range batch {
		if s.err != nil {
			return
		}
		w.ExpandExecLocal(it.loc, it.rid, it.visited, it.cont)
	}
}

// CacheGet always misses: per-node caching is a live-engine feature;
// federated evaluation memoizes whole results per pinned version at
// the gateway instead.
func (s *fedSource) CacheGet(string, provgraph.CacheKey) (provgraph.SubResult, bool) {
	return provgraph.SubResult{}, false
}

// CachePut is a no-op; see CacheGet.
func (s *fedSource) CachePut(string, provgraph.CacheKey, provgraph.SubResult) {}
