package gateway_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/client"
	"repro/internal/engine"
	"repro/internal/gateway"
	"repro/internal/protocols"
	"repro/internal/server"
)

// buildGrid boots one converged MINCOST engine on a side x side grid.
// Engines built with identical parameters are byte-identical — the
// determinism the sharded deployment story rests on.
func buildGrid(t testing.TB, side int) *engine.Engine {
	t.Helper()
	n := side * side
	e, err := protocols.Build(protocols.MinCost, protocols.NodeNames(n),
		protocols.GridTopology(side, side, 1), engine.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// deployment is a single-process daemon plus an equivalent N-shard
// deployment of the same deterministic run, plus a gateway over the
// shards.
type deployment struct {
	single    *httptest.Server
	singlePub *server.Publisher
	shards    []*httptest.Server
	shardSrvs []*server.Server
	shardPubs []*server.Publisher
	gw        *httptest.Server
	gwG       *gateway.Gateway
}

// deployGrid builds a single-process server and a total-shard
// deployment of the same side x side MINCOST grid, with a gateway
// federating the shards.
func deployGrid(t testing.TB, side, total int, retain int) *deployment {
	t.Helper()
	d := &deployment{}
	singlePub, err := server.NewPublisher(buildGrid(t, side), retain)
	if err != nil {
		t.Fatal(err)
	}
	d.singlePub = singlePub
	d.single = httptest.NewServer(server.New(singlePub, server.Info{Protocol: "mincost"}))
	t.Cleanup(d.single.Close)

	urls := make([]string, total)
	for i := 0; i < total; i++ {
		pub, err := server.NewShardedPublisher(buildGrid(t, side), retain,
			server.ShardSpec{Index: i, Total: total})
		if err != nil {
			t.Fatal(err)
		}
		srv := server.New(pub, server.Info{Protocol: "mincost"})
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		d.shardPubs = append(d.shardPubs, pub)
		d.shardSrvs = append(d.shardSrvs, srv)
		d.shards = append(d.shards, ts)
		urls[i] = ts.URL
	}

	g, err := gateway.New(context.Background(), urls,
		gateway.WithInfo(server.Info{Protocol: "mincost"}))
	if err != nil {
		t.Fatal(err)
	}
	d.gwG = g
	d.gw = httptest.NewServer(g)
	t.Cleanup(d.gw.Close)
	return d
}

func post(t testing.TB, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func get(t testing.TB, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// parityQueries are the request bodies the byte-parity tests sweep:
// all four query types plus option variants that exercise pruning,
// DFS order, and traversal limits.
func parityQueries(tuple string) []string {
	return []string{
		fmt.Sprintf(`{"q":"lineage of %s"}`, tuple),
		fmt.Sprintf(`{"q":"bases of %s"}`, tuple),
		fmt.Sprintf(`{"q":"nodes of %s"}`, tuple),
		fmt.Sprintf(`{"q":"count of %s"}`, tuple),
		fmt.Sprintf(`{"q":"lineage of %s with threshold 1"}`, tuple),
		fmt.Sprintf(`{"q":"count of %s with dfs"}`, tuple),
		fmt.Sprintf(`{"q":"lineage of %s with maxdepth 3"}`, tuple),
		fmt.Sprintf(`{"q":"lineage of %s with dfs, maxnodes 7"}`, tuple),
		fmt.Sprintf(`{"type":"bases","tuple":"%s"}`, tuple),
	}
}

// TestShardedParityMincost: a 3-shard gateway answers every query
// byte-identically to the single-process daemon over the same
// deterministic state — proofs, bases, node sets, counts, pruned and
// truncated flags, and the modeled message/byte stats.
func TestShardedParityMincost(t *testing.T) {
	d := deployGrid(t, 3, 3, 0)
	for _, q := range parityQueries("mincost(@'n1','n9',4)") {
		sResp, sBody := post(t, d.single.URL+"/v1/query", q)
		gResp, gBody := post(t, d.gw.URL+"/v1/query", q)
		if sResp.StatusCode != http.StatusOK {
			t.Fatalf("single %s: %d %s", q, sResp.StatusCode, sBody)
		}
		if gResp.StatusCode != sResp.StatusCode || !bytes.Equal(sBody, gBody) {
			t.Fatalf("parity broken for %s:\nsingle %d %s\ngateway %d %s",
				q, sResp.StatusCode, sBody, gResp.StatusCode, gBody)
		}
		if gResp.Header.Get("X-Shard-Hops") == "" {
			t.Fatalf("gateway response missing X-Shard-Hops for %s", q)
		}
	}

	// /v1/nodes merges the shards back into the single-process document.
	_, sNodes := get(t, d.single.URL+"/v1/nodes")
	_, gNodes := get(t, d.gw.URL+"/v1/nodes")
	if !bytes.Equal(sNodes, gNodes) {
		t.Fatalf("/v1/nodes parity broken:\nsingle %s\ngateway %s", sNodes, gNodes)
	}

	// /v1/state/{node} routes to the owning shard and re-renders
	// unchanged, for every node of the network.
	for _, node := range []string{"n1", "n2", "n3", "n5", "n9"} {
		_, sState := get(t, d.single.URL+"/v1/state/"+node+"?rel=mincost")
		_, gState := get(t, d.gw.URL+"/v1/state/"+node+"?rel=mincost")
		if !bytes.Equal(sState, gState) {
			t.Fatalf("/v1/state/%s parity broken:\nsingle %s\ngateway %s", node, sState, gState)
		}
	}

	// proof.dot: same DOT document.
	_, sDot := get(t, d.single.URL+"/v1/proof.dot?tuple=mincost(@'n1','n9',4)")
	_, gDot := get(t, d.gw.URL+"/v1/proof.dot?tuple=mincost(@'n1','n9',4)")
	if !bytes.Equal(sDot, gDot) {
		t.Fatalf("proof.dot parity broken:\nsingle %s\ngateway %s", sDot, gDot)
	}
}

// TestShardedBatchParity: a gateway batch returns, element for
// element, the identical JSON documents the single-process batch
// returns — including in-place per-element errors.
func TestShardedBatchParity(t *testing.T) {
	d := deployGrid(t, 3, 3, 0)
	batch := `{"queries":[
		{"q":"lineage of mincost(@'n1','n9',4)"},
		{"q":"bases of mincost(@'n4','n9',3)"},
		{"q":"count of mincost(@'n1','n9',99)"},
		{"type":"nodes","tuple":"mincost(@'n2','n8',3)"},
		{"q":"lineage of mincost(@'n1','n9',4)"}]}`
	sResp, sBody := post(t, d.single.URL+"/v1/query/batch", batch)
	gResp, gBody := post(t, d.gw.URL+"/v1/query/batch", batch)
	if sResp.StatusCode != http.StatusOK || gResp.StatusCode != http.StatusOK {
		t.Fatalf("batch: single %d gateway %d\n%s\n%s", sResp.StatusCode, gResp.StatusCode, sBody, gBody)
	}
	var s, g struct {
		Version uint64            `json:"version"`
		Time    int64             `json:"virtualTimeUs"`
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(sBody, &s); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(gBody, &g); err != nil {
		t.Fatal(err)
	}
	if s.Version != g.Version || s.Time != g.Time || len(s.Results) != len(g.Results) {
		t.Fatalf("batch envelopes diverged:\n%s\nvs\n%s", sBody, gBody)
	}
	for i := range s.Results {
		var sv, gv interface{}
		if err := json.Unmarshal(s.Results[i], &sv); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(g.Results[i], &gv); err != nil {
			t.Fatal(err)
		}
		sb, _ := json.Marshal(sv)
		gb, _ := json.Marshal(gv)
		if !bytes.Equal(sb, gb) {
			t.Fatalf("batch element %d diverged:\n%s\nvs\n%s", i, s.Results[i], g.Results[i])
		}
	}
	if gResp.Header.Get("X-Batch-Cache-Hits") != "1" {
		t.Fatalf("X-Batch-Cache-Hits = %q, want 1 (repeated element)",
			gResp.Header.Get("X-Batch-Cache-Hits"))
	}
}

// TestGatewayColocatedShard: a gateway colocated with shard 0
// (WithLocal) resolves local walk steps without HTTP and still
// answers byte-identically.
func TestGatewayColocatedShard(t *testing.T) {
	d := deployGrid(t, 3, 3, 0)

	// A second 3-shard deployment reusing the same deterministic build,
	// with shard 0 colocated into the gateway process.
	localPub, err := server.NewShardedPublisher(buildGrid(t, 3), 0,
		server.ShardSpec{Index: 0, Total: 3})
	if err != nil {
		t.Fatal(err)
	}
	g, err := gateway.New(context.Background(),
		[]string{d.shards[1].URL, d.shards[2].URL},
		gateway.WithLocal(localPub),
		gateway.WithInfo(server.Info{Protocol: "mincost"}))
	if err != nil {
		t.Fatal(err)
	}
	gw := httptest.NewServer(g)
	defer gw.Close()

	for _, q := range parityQueries("mincost(@'n1','n9',4)") {
		_, sBody := post(t, d.single.URL+"/v1/query", q)
		gResp, gBody := post(t, gw.URL+"/v1/query", q)
		if gResp.StatusCode != http.StatusOK || !bytes.Equal(sBody, gBody) {
			t.Fatalf("colocated parity broken for %s:\n%d %s\nvs\n%s", q, gResp.StatusCode, gBody, sBody)
		}
	}

	// A version-pinned query that starts and stays on the local
	// shard's nodes costs zero downstream HTTP hops. n1 is owned by
	// shard 0 and the link tuple is a base fact: the whole walk is
	// local. (An unpinned query would still spend hops resolving the
	// current version across the remote shards.)
	resp, body := post(t, gw.URL+"/v1/query", `{"q":"lineage of link(@'n1','n2',1)","version":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("local lineage: %d %s", resp.StatusCode, body)
	}
	if hops := resp.Header.Get("X-Shard-Hops"); hops != "0" {
		t.Fatalf("local-only walk cost %s shard hops, want 0", hops)
	}
}

// TestShardRejectsCrossShardQuery: a shard queried directly answers
// wrong_shard (421) both for a start node it does not own and for a
// traversal that escapes its partitions — never a silently partial
// result.
func TestShardRejectsCrossShardQuery(t *testing.T) {
	d := deployGrid(t, 3, 3, 0)
	assertCode := func(resp *http.Response, body []byte, wantStatus int, wantCode string) {
		t.Helper()
		if resp.StatusCode != wantStatus {
			t.Fatalf("status = %d, want %d (%s)", resp.StatusCode, wantStatus, body)
		}
		var e struct {
			Error struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error.Code != wantCode {
			t.Fatalf("error code = %q, want %q (%s)", e.Error.Code, wantCode, body)
		}
	}

	// Shard 0 of 3 owns n1, n4, n7. n2 belongs to shard 1.
	resp, body := post(t, d.shards[0].URL+"/v1/query", `{"q":"lineage of mincost(@'n2','n3',1)"}`)
	assertCode(resp, body, http.StatusMisdirectedRequest, server.ErrWrongShard)

	resp, body = get(t, d.shards[0].URL+"/v1/state/n2")
	assertCode(resp, body, http.StatusMisdirectedRequest, server.ErrWrongShard)

	// n1 is owned, but its corner-to-corner proof spans the grid: the
	// traversal escapes and must fail, not truncate.
	resp, body = post(t, d.shards[0].URL+"/v1/query", `{"q":"lineage of mincost(@'n1','n9',4)"}`)
	assertCode(resp, body, http.StatusMisdirectedRequest, server.ErrWrongShard)

	// A fully node-local query on an owned node still answers.
	resp, body = post(t, d.shards[0].URL+"/v1/query", `{"q":"lineage of link(@'n1','n2',1)"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("local query on owned node: %d %s", resp.StatusCode, body)
	}

	// Unknown nodes keep their own error, distinct from wrong_shard.
	resp, body = get(t, d.shards[0].URL+"/v1/state/ghost")
	assertCode(resp, body, http.StatusNotFound, server.ErrUnknownNode)
}

// TestGatewayPinnedVersionEviction: a version pinned at the gateway
// that any shard no longer retains answers a clean snapshot_evicted
// 410 — the documented cross-shard epoch-agreement failure mode.
func TestGatewayPinnedVersionEviction(t *testing.T) {
	d := deployGrid(t, 3, 3, 2) // retain only 2 versions per shard

	churnAll := func() {
		// Identical stimulus on every engine keeps the deterministic
		// runs aligned.
		for _, e := range d.engines() {
			if err := e.RemoveBiLink("n4", "n5", 1); err != nil {
				t.Fatal(err)
			}
			e.RunQuiescent()
			if err := e.AddBiLink("n4", "n5", 1); err != nil {
				t.Fatal(err)
			}
			e.RunQuiescent()
		}
	}
	v0 := d.shardPubs[0].Current().Version
	for i := 0; i < 4; i++ {
		churnAll()
	}
	if cur := d.shardPubs[0].Current().Version; cur <= v0 {
		t.Fatalf("churn did not advance versions: %d -> %d", v0, cur)
	}

	resp, body := post(t, d.gw.URL+"/v1/query",
		fmt.Sprintf(`{"q":"count of mincost(@'n1','n9',4)","version":%d}`, v0))
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("evicted pin: %d %s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte(server.ErrSnapshotEvicted)) {
		t.Fatalf("evicted pin body: %s", body)
	}

	// And versions stayed aligned across every process: the parity
	// queries still agree at the (new) current version.
	_, sBody := post(t, d.single.URL+"/v1/query", `{"q":"count of mincost(@'n1','n9',4)"}`)
	_, gBody := post(t, d.gw.URL+"/v1/query", `{"q":"count of mincost(@'n1','n9',4)"}`)
	if !bytes.Equal(sBody, gBody) {
		t.Fatalf("post-churn parity broken:\n%s\nvs\n%s", sBody, gBody)
	}
}

// engines digs the underlying engines back out of the deployment's
// publishers for identical churn stimulus.
func (d *deployment) engines() []*engine.Engine {
	var out []*engine.Engine
	out = append(out, d.singlePub.Engine())
	for _, pub := range d.shardPubs {
		out = append(out, pub.Engine())
	}
	return out
}

// TestCrossShardCancellation: a client disconnect at the gateway
// aborts the in-flight downstream shard requests — observed, as in
// TestCancelledBatchStopsWalk, by the shards' read counters going
// quiet far below what the full batch would have cost.
func TestCrossShardCancellation(t *testing.T) {
	d := deployGrid(t, 5, 3, 0)

	reads := func() int64 {
		var total int64
		for _, srv := range d.shardSrvs {
			total += srv.ProvReads()
		}
		return total
	}

	const items = 1000
	var sb strings.Builder
	sb.WriteString(`{"queries":[`)
	for i := 0; i < items; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		// Distinct never-pruning thresholds force a cold federated
		// traversal of the corner-to-corner proof per element.
		fmt.Fprintf(&sb,
			`{"type":"lineage","tuple":"mincost(@'n1','n25',8)","options":{"threshold":%d}}`,
			10000+i)
	}
	sb.WriteString("]}")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "POST", d.gw.URL+"/v1/query/batch",
		strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")

	// Cancel once the gateway is demonstrably fanning out (a handful
	// of downstream reads served), not on a wall-clock guess.
	go func() {
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			if reads() >= 20 {
				cancel()
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
		cancel()
	}()

	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatal("cancelled gateway batch unexpectedly completed")
	}

	// Downstream activity must stop: the shards' read counters go
	// quiet well below the full batch's cost.
	deadline := time.Now().Add(10 * time.Second)
	var last int64 = -1
	for {
		n := reads()
		if n == last {
			break
		}
		last = n
		if time.Now().After(deadline) {
			t.Fatalf("shards still serving reads 10s after client disconnect (%d reads)", n)
		}
		time.Sleep(100 * time.Millisecond)
	}
	// Every element's federated walk costs at least two downstream
	// reads (the corner-to-corner proof spans all three shards), so a
	// completed batch would exceed 2*items by far.
	if last >= 2*items {
		t.Fatalf("shards served %d reads despite the disconnect (full batch would need >= %d)", last, 2*items)
	}
	t.Logf("downstream reads stopped at %d (full batch would need >= %d)", last, 2*items)
}

// TestDiscoverShardsAffinity: the SDK's shard discovery builds the
// right routing table and ForNode routes partition-local calls to the
// owning shard.
func TestDiscoverShardsAffinity(t *testing.T) {
	d := deployGrid(t, 3, 3, 0)
	ctx := context.Background()
	urls := []string{d.shards[0].URL, d.shards[1].URL, d.shards[2].URL}
	set, err := client.DiscoverShards(ctx, urls)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 3 || len(set.Nodes()) != 9 {
		t.Fatalf("set = %d shards, %d nodes", set.Len(), len(set.Nodes()))
	}
	// Round-robin over the sorted node list: n1 n2 n3 ... -> 0 1 2 ...
	for i, addr := range set.Nodes() {
		owner, ok := set.OwnerOf(addr)
		if !ok || owner != i%3 {
			t.Fatalf("OwnerOf(%s) = %d,%v want %d", addr, owner, ok, i%3)
		}
	}
	c, ok := set.ForNode("n5")
	if !ok {
		t.Fatal("ForNode(n5) not found")
	}
	st, err := c.State(ctx, "n5", client.Rel("mincost"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Node != "n5" || len(st.Tables["mincost"]) == 0 {
		t.Fatalf("state via affinity = %+v", st)
	}
	// The non-owning shard refuses the same read with wrong_shard.
	if _, err := set.Shard(1).State(ctx, "n1"); !client.IsCode(err, client.CodeWrongShard) {
		t.Fatalf("cross-shard state error = %v, want %s", err, client.CodeWrongShard)
	}
	// Discovery with a wrong URL count fails loudly.
	if _, err := client.DiscoverShards(ctx, urls[:2]); err == nil {
		t.Fatal("discovery with 2 of 3 shard URLs unexpectedly succeeded")
	}
}
