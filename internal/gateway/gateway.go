// Package gateway federates provenance queries over a sharded
// NetTrails deployment. The serving tier may split the network's
// partitions across N nettrailsd shards (nettrailsd -shard i/N), each
// publishing snapshots of only the nodes it owns; a Gateway presents
// the same /v1 query surface as a single daemon and answers it by
// running the one provgraph walk itself — resolving walk steps
// against the colocated shard's snapshot when the vertex's node lives
// there, and fanning out batched, version-pinned partition reads
// (POST /v1/prov/read, via the repro/client SDK) to the owning shard
// when it doesn't. Cross-shard lineage traversal thus mirrors the
// paper's cross-node traversal, one tier up.
//
// Epoch agreement is by version pinning: all shards of a
// deterministic run mint the same dense snapshot-version sequence, so
// the gateway pins one version on every shard per request (an
// explicit ?version=, or the minimum of the shards' current versions)
// and surfaces snapshot_evicted when any shard no longer retains it.
// Cancellation propagates: the gateway request's context threads
// through the SDK into every downstream read, so a client disconnect
// aborts in-flight shard requests mid-walk.
package gateway

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/client"
	"repro/internal/buildinfo"
	"repro/internal/provgraph"
	"repro/internal/provquery"
	"repro/internal/rel"
	"repro/internal/server"
	"repro/internal/simnet"
	"repro/internal/viz"
)

// Gateway federates the /v1 query surface over one sharded
// deployment. It is safe for concurrent use.
type Gateway struct {
	info     server.Info
	total    int
	allNodes []string
	table    map[string]int // node -> shard index

	clients  []*client.Client // one per shard index
	localIdx int              // -1 when no colocated shard
	localPub *server.Publisher

	cache *gwCache
	times sync.Map // version -> simnet.Time (immutable once learned)
	mux   *http.ServeMux
}

// Option configures a Gateway at construction.
type Option func(*Gateway)

// WithInfo sets the gateway's protocol label, traversal caps, and
// default query timeout (same semantics as the shard server's Info).
func WithInfo(info server.Info) Option { return func(g *Gateway) { g.info = info } }

// WithLocal colocates the gateway with one shard: walk steps on nodes
// that shard owns read its published snapshots directly, with no HTTP
// and no serialization. The publisher's ShardSpec places it in the
// deployment; the remaining shards' URLs still must be given to New.
func WithLocal(pub *server.Publisher) Option { return func(g *Gateway) { g.localPub = pub } }

// New discovers a sharded deployment from the shards' base URLs and
// builds its gateway. Every shard is contacted for GET /v1/shards and
// the answers must describe one coherent deployment (each index held
// exactly once, identical node lists). With WithLocal, the colocated
// shard needs no URL: urls covers the remaining shards.
func New(ctx context.Context, urls []string, opts ...Option) (*Gateway, error) {
	g := &Gateway{localIdx: -1, cache: newGwCache()}
	for _, o := range opts {
		o(g)
	}

	if g.localPub == nil {
		// Pure-remote federation: the SDK's shard discovery already
		// validates the deployment's coherence.
		set, err := client.DiscoverShards(ctx, urls)
		if err != nil {
			return nil, fmt.Errorf("gateway: %w", err)
		}
		g.total = set.Len()
		g.allNodes = set.Nodes()
		g.clients = make([]*client.Client, g.total)
		for i := range g.clients {
			g.clients[i] = set.Shard(i)
		}
	} else {
		// Colocated: the local shard fills its own slot (served through
		// an in-process round-tripper so fan-out paths stay uniform);
		// urls covers the remaining shards, validated here.
		spec := g.localPub.Shard()
		g.total = spec.Total
		if g.total < 1 {
			g.total = 1
		}
		g.localIdx = spec.Index
		snap := g.localPub.Current()
		g.allNodes = snap.AllNodes
		g.times.Store(snap.Version, snap.Time)
		g.clients = make([]*client.Client, g.total)

		srv := server.New(g.localPub, g.info)
		c, err := client.New("http://local",
			client.WithHTTPClient(&http.Client{Transport: inprocTransport{srv.Handler()}}))
		if err != nil {
			return nil, err
		}
		g.clients[g.localIdx] = c

		for _, u := range urls {
			c, err := client.New(u)
			if err != nil {
				return nil, err
			}
			sh, err := c.Shards(ctx)
			if err != nil {
				return nil, fmt.Errorf("gateway: shard discovery at %s: %w", u, err)
			}
			if sh.Shard.Total != g.total {
				return nil, fmt.Errorf("gateway: %s reports %d shards, want %d", u, sh.Shard.Total, g.total)
			}
			if sh.Shard.Index < 0 || sh.Shard.Index >= g.total {
				return nil, fmt.Errorf("gateway: %s reports shard index %d of %d", u, sh.Shard.Index, g.total)
			}
			if g.clients[sh.Shard.Index] != nil {
				return nil, fmt.Errorf("gateway: two servers claim shard %d/%d", sh.Shard.Index, g.total)
			}
			if !equalStrings(g.allNodes, sh.AllNodes) {
				return nil, fmt.Errorf("gateway: %s disagrees about the network's node list", u)
			}
			g.clients[sh.Shard.Index] = c
		}
		for i, c := range g.clients {
			if c == nil {
				return nil, fmt.Errorf("gateway: no server for shard %d/%d", i, g.total)
			}
		}
	}
	g.table = make(map[string]int, len(g.allNodes))
	for i, addr := range g.allNodes {
		g.table[addr] = server.ShardOf(i, g.total)
	}

	g.mux = http.NewServeMux()
	g.route("GET", "/v1/healthz", g.handleHealthz)
	g.route("GET", "/v1/version", g.handleVersion)
	g.route("GET", "/v1/shards", g.handleShards)
	g.route("GET", "/v1/nodes", g.handleNodes)
	g.route("GET", "/v1/state/{node}", g.handleState)
	g.route("GET", "/v1/history/first", g.handleHistoryFirst)
	g.route("POST", "/v1/query", g.handleQuery)
	g.route("POST", "/v1/query/batch", g.handleQueryBatch)
	g.route("GET", "/v1/proof.dot", g.handleProofDOT)
	g.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		server.WriteErr(w, http.StatusNotFound, server.ErrUnknownEndpoint,
			"unknown endpoint %s", r.URL.Path)
	})
	return g, nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// route mounts one method with a structured 405 for the rest, like
// the shard server (the gateway has no legacy aliases).
func (g *Gateway) route(method, pattern string, h http.HandlerFunc) {
	g.mux.HandleFunc(method+" "+pattern, h)
	g.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", method)
		server.WriteErr(w, http.StatusMethodNotAllowed, server.ErrMethodNotAllowed,
			"method %s not allowed on %s (allow %s)", r.Method, r.URL.Path, method)
	})
}

// Handler returns the root handler for http.Serve.
func (g *Gateway) Handler() http.Handler { return g.mux }

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) { g.mux.ServeHTTP(w, r) }

// Nodes returns every node address of the federated network, sorted.
func (g *Gateway) Nodes() []string { return g.allNodes }

// Shards returns how many shards the gateway federates.
func (g *Gateway) Shards() int { return g.total }

// ---- downstream error mapping ------------------------------------------

// downstreamError maps a failed shard call to the gateway's own API
// error: structured shard answers pass through with their code and
// status, context failures become the standard cancellation errors,
// and everything else is a 502 shard_unreachable.
func downstreamError(err error) *server.APIError {
	var ee *evictedError
	if errors.As(err, &ee) {
		return server.Errf(http.StatusGone, server.ErrSnapshotEvicted, "%v", ee)
	}
	var ae *client.APIError
	if errors.As(err, &ae) {
		status := ae.Status
		if status == 0 {
			status = http.StatusBadGateway
		}
		return server.Errf(status, ae.Code, "shard: %s", ae.Message)
	}
	if ce, ok := server.CtxError(err); ok {
		return ce
	}
	return server.Errf(http.StatusBadGateway, server.ErrShardUnreachable, "%v", err)
}

// ---- version pinning ----------------------------------------------------

// forEachShard runs f for every shard concurrently — downstream calls
// are independent, and a serial sweep would pay one round trip of
// latency per shard — then returns the first error by shard order.
// isLocal tells f to answer from the colocated publisher, no HTTP.
func (g *Gateway) forEachShard(f func(i int, c *client.Client, isLocal bool) error) error {
	errs := make([]error, len(g.clients))
	var wg sync.WaitGroup
	for i, c := range g.clients {
		wg.Add(1)
		go func(i int, c *client.Client) {
			defer wg.Done()
			errs[i] = f(i, c, i == g.localIdx && g.localPub != nil)
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// remoteShards counts the shards reached over HTTP by a full fan-out.
func (g *Gateway) remoteShards() int {
	if g.localIdx >= 0 && g.localPub != nil {
		return len(g.clients) - 1
	}
	return len(g.clients)
}

// resolveVersion picks the snapshot version a request pins on every
// shard: an explicit version is used as-is; version 0 resolves to the
// minimum of the shards' current versions — the newest epoch every
// shard has reached. hops counts the downstream requests spent.
func (g *Gateway) resolveVersion(ctx context.Context, version uint64) (v uint64, hops int, apiErr *server.APIError) {
	if version > 0 {
		return version, 0, nil
	}
	versions := make([]uint64, len(g.clients))
	err := g.forEachShard(func(i int, c *client.Client, isLocal bool) error {
		if isLocal {
			versions[i] = g.localPub.Current().Version
			return nil
		}
		h, err := c.Health(ctx)
		if err != nil {
			return err
		}
		versions[i] = h.Version
		return nil
	})
	hops = g.remoteShards()
	if err != nil {
		return 0, hops, downstreamError(err)
	}
	for _, cur := range versions {
		if v == 0 || cur < v {
			v = cur
		}
	}
	return v, hops, nil
}

// timeOf resolves the virtual time of a pinned version (identical on
// every shard of a deterministic run), caching it forever — versions
// are immutable. hops counts downstream requests spent on a miss.
func (g *Gateway) timeOf(ctx context.Context, version uint64) (simnet.Time, int, *server.APIError) {
	if t, ok := g.times.Load(version); ok {
		return t.(simnet.Time), 0, nil
	}
	if g.localPub != nil {
		if snap, ok := g.localPub.At(version); ok {
			g.times.Store(version, snap.Time)
			return snap.Time, 0, nil
		}
		return 0, 0, server.Errf(http.StatusGone, server.ErrSnapshotEvicted,
			"version %d not retained by the local shard", version)
	}
	sh, err := g.clients[0].Shards(ctx, client.At(version))
	if err != nil {
		return 0, 1, downstreamError(err)
	}
	t := simnet.Time(sh.TimeUs)
	g.times.Store(version, t)
	return t, 1, nil
}

// ---- query evaluation ---------------------------------------------------

// evalResult is one federated traversal's outcome.
type evalResult struct {
	res  *provquery.Result
	time simnet.Time
	hit  bool
	hops int
}

// eval answers one query against the pinned version, through the
// gateway's per-version result cache.
func (g *Gateway) eval(ctx context.Context, version uint64, typ provquery.QueryType, at string, t rel.Tuple, opts provquery.Options) (evalResult, *server.APIError) {
	opts = g.info.ClampOptions(opts)
	timeUs, hops, apiErr := g.timeOf(ctx, version)
	if apiErr != nil {
		return evalResult{}, apiErr
	}
	key := gwKey{version: version, at: at, vid: t.VID(), typ: typ, opts: opts}
	if res, ok := g.cache.get(key); ok {
		return evalResult{res: res, time: timeUs, hit: true, hops: hops}, nil
	}
	res, walkHops, apiErr := g.runWalk(ctx, version, typ, at, t, opts)
	hops += walkHops
	if apiErr != nil {
		return evalResult{hops: hops}, apiErr
	}
	g.cache.put(key, res)
	return evalResult{res: res, time: timeUs, hops: hops}, nil
}

// runWalk executes the shared provgraph walk over the federated
// source. The result is byte-for-byte the one a single-process
// snapshot traversal of the same state produces: same walk, same
// modeled costs, only the partition reads travel.
func (g *Gateway) runWalk(ctx context.Context, version uint64, typ provquery.QueryType, at string, t rel.Tuple, opts provquery.Options) (*provquery.Result, int, *server.APIError) {
	if _, ok := g.table[at]; !ok {
		return nil, 0, server.Errf(http.StatusNotFound, server.ErrUnknownNode,
			"provquery: unknown node %s", at)
	}
	src := newFedSource(g, ctx, version)
	vid := t.VID()
	start := src.vertex(at, vid)
	if src.err != nil {
		return nil, src.hops, downstreamError(src.err)
	}
	if !start.derivsOK {
		return nil, src.hops, server.Errf(http.StatusNotFound, server.ErrNoProvenance,
			"provquery: tuple %s has no provenance at %s", t, at)
	}

	w := provgraph.NewWalkContext(ctx, src, typ, opts)
	var out *provgraph.SubResult
	w.ResolveTuple(at, vid, nil, func(r provgraph.SubResult) { out = &r })
	for out == nil && src.err == nil && w.Err() == nil {
		if len(src.pending) == 0 {
			return nil, src.hops, server.Errf(http.StatusInternalServerError, server.ErrInternal,
				"gateway: walk stalled with no pending expansions")
		}
		src.flush(w)
	}
	if err := w.Err(); err != nil {
		return nil, src.hops, server.QueryError(
			fmt.Errorf("provquery: query for %s aborted after %d vertices: %w", t, w.Resolved(), err))
	}
	if src.err != nil {
		return nil, src.hops, downstreamError(src.err)
	}
	if out == nil {
		return nil, src.hops, server.Errf(http.StatusInternalServerError, server.ErrInternal,
			"gateway: walk did not complete")
	}
	res := provgraph.NewResult(typ, *out)
	res.Stats = provquery.Stats{Messages: src.msgs, Bytes: src.bytes}
	return res, src.hops, nil
}

// ---- per-version result cache ------------------------------------------

// gwKey identifies one federated query result: pinned version,
// starting node, tuple VID, query type, and the full (clamped) option
// set — the same key shape the shard server memoizes under.
type gwKey struct {
	version uint64
	at      string
	vid     rel.ID
	typ     provquery.QueryType
	opts    provquery.Options
}

// gwCache memoizes whole federated results. Entries are immutable per
// pinned version, so there is no invalidation: when the cache fills,
// entries of versions older than the incoming one are dropped first,
// then further new keys are declined.
type gwCache struct {
	mu     sync.Mutex
	m      map[gwKey]*provquery.Result
	hits   atomic.Int64
	misses atomic.Int64
}

// maxGwCacheEntries bounds the gateway's memoized results.
const maxGwCacheEntries = 4096

func newGwCache() *gwCache { return &gwCache{m: map[gwKey]*provquery.Result{}} }

func (c *gwCache) get(key gwKey) (*provquery.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.m[key]
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return r, ok
}

func (c *gwCache) put(key gwKey, r *provquery.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.m) >= maxGwCacheEntries {
		for k := range c.m {
			if k.version < key.version {
				delete(c.m, k)
			}
		}
		if len(c.m) >= maxGwCacheEntries {
			if _, ok := c.m[key]; !ok {
				return
			}
		}
	}
	c.m[key] = r
}

// counters returns the cumulative hit/miss counts.
func (c *gwCache) counters() (hits, misses int64) { return c.hits.Load(), c.misses.Load() }

// ---- in-process transport ----------------------------------------------

// inprocTransport serves SDK calls for a colocated shard straight
// through its handler — no TCP, no listener.
type inprocTransport struct{ h http.Handler }

// RoundTrip implements http.RoundTripper over the wrapped handler.
func (t inprocTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if err := req.Context().Err(); err != nil {
		return nil, err
	}
	rec := &inprocRecorder{code: http.StatusOK, hdr: http.Header{}}
	t.h.ServeHTTP(rec, req)
	return &http.Response{
		StatusCode: rec.code,
		Status:     http.StatusText(rec.code),
		Header:     rec.hdr,
		Body:       io.NopCloser(bufio.NewReader(bytes.NewReader(rec.buf.Bytes()))),
		Request:    req,
	}, nil
}

type inprocRecorder struct {
	code  int
	wrote bool
	hdr   http.Header
	buf   bytes.Buffer
}

// Header implements http.ResponseWriter.
func (r *inprocRecorder) Header() http.Header { return r.hdr }

// WriteHeader implements http.ResponseWriter (first write wins).
func (r *inprocRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.code = code
		r.wrote = true
	}
}

// Write implements http.ResponseWriter.
func (r *inprocRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	return r.buf.Write(b)
}

// ---- HTTP handlers ------------------------------------------------------

func setHops(w http.ResponseWriter, hops int) {
	w.Header().Set("X-Shard-Hops", strconv.Itoa(hops))
}

func (g *Gateway) setCacheHeaders(w http.ResponseWriter, hit bool) {
	verdict := "MISS"
	if hit {
		verdict = "HIT"
	}
	hits, misses := g.cache.counters()
	w.Header().Set("X-Cache", verdict)
	w.Header().Set("X-Cache-Hits", strconv.FormatInt(hits, 10))
	w.Header().Set("X-Cache-Misses", strconv.FormatInt(misses, 10))
}

func versionParam(r *http.Request) (uint64, *server.APIError) {
	raw := r.URL.Query().Get("version")
	if raw == "" {
		return 0, nil
	}
	v, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, server.Errf(http.StatusBadRequest, server.ErrInvalidRequest, "bad version %q", raw)
	}
	return v, nil
}

type gwHealthzJSON struct {
	OK       bool   `json:"ok"`
	Gateway  bool   `json:"gateway"`
	Protocol string `json:"protocol"`
	Version  uint64 `json:"version"`
	Nodes    int    `json:"nodes"`
	Shards   int    `json:"shards"`
	Oldest   uint64 `json:"oldestVersion"`
}

// handleHealthz aggregates shard health: version is the newest epoch
// every shard has reached, oldestVersion the oldest every shard still
// retains (the pinnable range across the whole deployment).
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	out := gwHealthzJSON{OK: true, Gateway: true, Protocol: g.info.Protocol,
		Nodes: len(g.allNodes), Shards: g.total}
	versions := make([]uint64, len(g.clients))
	oldests := make([]uint64, len(g.clients))
	err := g.forEachShard(func(i int, c *client.Client, isLocal bool) error {
		if isLocal {
			versions[i] = g.localPub.Current().Version
			oldests[i], _ = g.localPub.Versions()
			return nil
		}
		h, err := c.Health(r.Context())
		if err != nil {
			return err
		}
		versions[i], oldests[i] = h.Version, h.Oldest
		return nil
	})
	setHops(w, g.remoteShards())
	if err != nil {
		server.WriteAPIError(w, downstreamError(err))
		return
	}
	for i := range versions {
		if out.Version == 0 || versions[i] < out.Version {
			out.Version = versions[i]
		}
		if oldests[i] > out.Oldest {
			out.Oldest = oldests[i]
		}
	}
	server.WriteJSON(w, http.StatusOK, out)
}

// handleVersion reports the gateway binary's build metadata.
func (g *Gateway) handleVersion(w http.ResponseWriter, r *http.Request) {
	server.WriteJSON(w, http.StatusOK, buildinfo.Get())
}

type gwShardJSON struct {
	Index int      `json:"index"`
	Nodes []string `json:"nodes"`
}

type gwShardsJSON struct {
	Gateway  bool          `json:"gateway"`
	Total    int           `json:"total"`
	Shards   []gwShardJSON `json:"shards"`
	AllNodes []string      `json:"allNodes"`
}

// handleShards describes the federated routing table.
func (g *Gateway) handleShards(w http.ResponseWriter, r *http.Request) {
	out := gwShardsJSON{Gateway: true, Total: g.total, AllNodes: g.allNodes}
	shards := make([]gwShardJSON, g.total)
	for i := range shards {
		shards[i].Index = i
		shards[i].Nodes = []string{}
	}
	for i, addr := range g.allNodes {
		s := server.ShardOf(i, g.total)
		shards[s].Nodes = append(shards[s].Nodes, addr)
	}
	out.Shards = shards
	server.WriteJSON(w, http.StatusOK, out)
}

// handleNodes merges every shard's owned-node summaries at one pinned
// version into the same document a single-process daemon serves.
func (g *Gateway) handleNodes(w http.ResponseWriter, r *http.Request) {
	version, apiErr := versionParam(r)
	if apiErr != nil {
		server.WriteAPIError(w, apiErr)
		return
	}
	v, hops, apiErr := g.resolveVersion(r.Context(), version)
	if apiErr != nil {
		server.WriteAPIError(w, apiErr)
		return
	}
	perShard := make([]*client.Nodes, len(g.clients))
	err := g.forEachShard(func(i int, c *client.Client, _ bool) error {
		ns, err := c.Nodes(r.Context(), client.At(v))
		if err != nil {
			return err
		}
		perShard[i] = ns
		return nil
	})
	hops += g.remoteShards() // the colocated shard's fetch is in-process, not a hop
	setHops(w, hops)
	if err != nil {
		server.WriteAPIError(w, downstreamError(err))
		return
	}
	byAddr := map[string]server.NodeJSON{}
	var timeUs int64
	for _, ns := range perShard {
		timeUs = ns.TimeUs
		for _, n := range ns.Nodes {
			byAddr[n.Addr] = server.NodeJSON{
				Addr:        n.Addr,
				Neighbors:   n.Neighbors,
				Tuples:      n.Tuples,
				ProvEntries: n.ProvEntries,
				ExecEntries: n.ExecEntries,
				SentMsgs:    n.SentMsgs,
				SentBytes:   n.SentBytes,
			}
		}
	}
	out := server.NodesJSON{Version: v, Time: timeUs, Nodes: []server.NodeJSON{}}
	for _, addr := range g.allNodes {
		if n, ok := byAddr[addr]; ok {
			out.Nodes = append(out.Nodes, n)
		}
	}
	server.WriteJSON(w, http.StatusOK, out)
}

// handleState routes a node-state read to the shard owning the node
// and re-renders its answer unchanged.
func (g *Gateway) handleState(w http.ResponseWriter, r *http.Request) {
	addr := r.PathValue("node")
	shard, ok := g.table[addr]
	if !ok {
		server.WriteErr(w, http.StatusNotFound, server.ErrUnknownNode, "unknown node %q", addr)
		return
	}
	version, apiErr := versionParam(r)
	if apiErr != nil {
		server.WriteAPIError(w, apiErr)
		return
	}
	v, hops, apiErr := g.resolveVersion(r.Context(), version)
	if apiErr != nil {
		server.WriteAPIError(w, apiErr)
		return
	}
	opts := []client.CallOption{client.At(v)}
	if rel := r.URL.Query().Get("rel"); rel != "" {
		opts = append(opts, client.Rel(rel))
	}
	if raw := r.URL.Query().Get("t"); raw != "" {
		us, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			server.WriteErr(w, http.StatusBadRequest, server.ErrInvalidRequest, "bad virtual time %q", raw)
			return
		}
		opts = append(opts, client.AtTime(us))
	}
	st, err := g.clients[shard].State(r.Context(), addr, opts...)
	hops++
	if err != nil {
		setHops(w, hops)
		server.WriteAPIError(w, downstreamError(err))
		return
	}
	out := server.StateJSON{Version: st.Version, Time: st.TimeUs, Node: st.Node,
		Tables: map[string][]server.TupleJSON{}}
	for name, ts := range st.Tables {
		rows := make([]server.TupleJSON, len(ts))
		for i, t := range ts {
			rows[i] = server.TupleJSON{Rel: t.Rel, Vals: t.Vals, Text: t.Text}
		}
		out.Tables[name] = rows
	}
	setHops(w, hops)
	server.WriteJSON(w, http.StatusOK, out)
}

// handleHistoryFirst routes a deep-history first-version probe to the
// shard owning the tuple's node and re-renders its answer unchanged —
// every shard's snapshot store mints the same dense version sequence,
// so the owning shard's answer is the deployment's answer.
func (g *Gateway) handleHistoryFirst(w http.ResponseWriter, r *http.Request) {
	lit := r.URL.Query().Get("tuple")
	if lit == "" {
		server.WriteErr(w, http.StatusBadRequest, server.ErrInvalidRequest, "missing ?tuple= literal")
		return
	}
	_, at, err := server.ResolveTupleAt(lit, r.URL.Query().Get("at"))
	if err != nil {
		server.WriteErr(w, http.StatusBadRequest, server.ErrInvalidQuery, "%v", err)
		return
	}
	shard, ok := g.table[at]
	if !ok {
		server.WriteErr(w, http.StatusNotFound, server.ErrUnknownNode, "unknown node %q", at)
		return
	}
	hf, err := g.clients[shard].HistoryFirst(r.Context(), lit, at)
	setHops(w, 1)
	if err != nil {
		server.WriteAPIError(w, downstreamError(err))
		return
	}
	server.WriteJSON(w, http.StatusOK, server.HistoryFirstJSON{
		Tuple:         server.TupleJSON{Rel: hf.Tuple.Rel, Vals: hf.Tuple.Vals, Text: hf.Tuple.Text},
		Node:          hf.Node,
		FirstVersion:  hf.FirstVersion,
		TimeUs:        hf.TimeUs,
		OldestVersion: hf.Oldest,
	})
}

// handleQuery is POST /v1/query: the single-daemon request surface,
// answered by federated traversal.
func (g *Gateway) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req server.QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		server.WriteErr(w, http.StatusBadRequest, server.ErrInvalidRequest, "bad request body: %v", err)
		return
	}
	typ, t, at, opts, apiErr := server.ResolveQueryRequest(&req)
	if apiErr != nil {
		server.WriteAPIError(w, apiErr)
		return
	}
	ctx, cancel, apiErr := server.RequestContext(r, g.info.Timeout)
	if apiErr != nil {
		server.WriteAPIError(w, apiErr)
		return
	}
	defer cancel()
	v, hops, apiErr := g.resolveVersion(ctx, req.Version)
	if apiErr != nil {
		server.WriteAPIError(w, apiErr)
		return
	}
	ev, apiErr := g.eval(ctx, v, typ, at, t, opts)
	if apiErr != nil {
		setHops(w, hops+ev.hops)
		server.WriteAPIError(w, apiErr)
		return
	}
	g.setCacheHeaders(w, ev.hit)
	setHops(w, hops+ev.hops)
	server.WriteJSON(w, http.StatusOK, server.RenderQueryResponse(v, int64(ev.time), ev.res))
}

// gwBatchRequest mirrors the shard server's batch body.
type gwBatchRequest struct {
	Version uint64                `json:"version,omitempty"`
	Queries []server.QueryRequest `json:"queries"`
}

type gwBatchResponse struct {
	Version uint64            `json:"version"`
	Time    int64             `json:"virtualTimeUs"`
	Results []json.RawMessage `json:"results"`
}

// handleQueryBatch is POST /v1/query/batch with the shard server's
// exact semantics: one pinned version for every element, per-element
// errors in place, whole-batch failure on cancellation or timeout.
func (g *Gateway) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	var req gwBatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		server.WriteErr(w, http.StatusBadRequest, server.ErrInvalidRequest, "bad request body: %v", err)
		return
	}
	if len(req.Queries) == 0 {
		server.WriteErr(w, http.StatusBadRequest, server.ErrInvalidRequest, "empty batch: need at least one query")
		return
	}
	if len(req.Queries) > server.MaxBatchQueries {
		server.WriteErr(w, http.StatusBadRequest, server.ErrInvalidRequest,
			"batch of %d queries exceeds the maximum %d", len(req.Queries), server.MaxBatchQueries)
		return
	}
	for i := range req.Queries {
		if req.Queries[i].Version != 0 {
			server.WriteErr(w, http.StatusBadRequest, server.ErrInvalidRequest,
				"queries[%d] sets version; the batch-level version pins the snapshot for every query", i)
			return
		}
	}
	ctx, cancel, apiErr := server.RequestContext(r, g.info.Timeout)
	if apiErr != nil {
		server.WriteAPIError(w, apiErr)
		return
	}
	defer cancel()
	v, hops, apiErr := g.resolveVersion(ctx, req.Version)
	if apiErr != nil {
		server.WriteAPIError(w, apiErr)
		return
	}
	timeUs, tHops, apiErr := g.timeOf(ctx, v)
	if apiErr != nil {
		server.WriteAPIError(w, apiErr)
		return
	}
	hops += tHops

	results := make([]json.RawMessage, 0, len(req.Queries))
	hits := 0
	local := map[gwKey]json.RawMessage{}
	for i := range req.Queries {
		if err := ctx.Err(); err != nil {
			ce, _ := server.CtxError(err)
			server.WriteAPIError(w, ce)
			return
		}
		typ, t, at, opts, itemErr := server.ResolveQueryRequest(&req.Queries[i])
		if itemErr == nil {
			key := gwKey{version: v, at: at, vid: t.VID(), typ: typ, opts: g.info.ClampOptions(opts)}
			if cached, ok := local[key]; ok {
				hits++
				results = append(results, cached)
				continue
			}
			ev, evalErr := g.eval(ctx, v, typ, at, t, opts)
			hops += ev.hops
			if evalErr == nil {
				if ev.hit {
					hits++
				}
				b, err := json.Marshal(server.RenderQueryResponse(v, int64(timeUs), ev.res))
				if err != nil {
					server.WriteErr(w, http.StatusInternalServerError, server.ErrInternal, "encode: %v", err)
					return
				}
				local[key] = b
				results = append(results, b)
				continue
			}
			if evalErr.Code == server.ErrQueryCancelled || evalErr.Code == server.ErrQueryTimeout {
				server.WriteAPIError(w, evalErr)
				return
			}
			itemErr = evalErr
		}
		results = append(results, server.MarshalError(itemErr))
	}

	hitsTotal, missesTotal := g.cache.counters()
	w.Header().Set("X-Batch-Cache-Hits", strconv.Itoa(hits))
	w.Header().Set("X-Cache-Hits", strconv.FormatInt(hitsTotal, 10))
	w.Header().Set("X-Cache-Misses", strconv.FormatInt(missesTotal, 10))
	setHops(w, hops)
	server.WriteJSON(w, http.StatusOK, gwBatchResponse{Version: v, Time: int64(timeUs), Results: results})
}

// handleProofDOT renders a federated lineage as Graphviz DOT, sharing
// the query result cache with /v1/query.
func (g *Gateway) handleProofDOT(w http.ResponseWriter, r *http.Request) {
	lit := r.URL.Query().Get("tuple")
	if lit == "" {
		server.WriteErr(w, http.StatusBadRequest, server.ErrInvalidRequest, "missing ?tuple= literal")
		return
	}
	t, at, err := server.ResolveTupleAt(lit, r.URL.Query().Get("at"))
	if err != nil {
		server.WriteErr(w, http.StatusBadRequest, server.ErrInvalidQuery, "%v", err)
		return
	}
	version, apiErr := versionParam(r)
	if apiErr != nil {
		server.WriteAPIError(w, apiErr)
		return
	}
	ctx, cancel, apiErr := server.RequestContext(r, g.info.Timeout)
	if apiErr != nil {
		server.WriteAPIError(w, apiErr)
		return
	}
	defer cancel()
	v, hops, apiErr := g.resolveVersion(ctx, version)
	if apiErr != nil {
		server.WriteAPIError(w, apiErr)
		return
	}
	ev, apiErr := g.eval(ctx, v, provquery.Lineage, at, t, provquery.Options{})
	if apiErr != nil {
		setHops(w, hops+ev.hops)
		server.WriteAPIError(w, apiErr)
		return
	}
	g.setCacheHeaders(w, ev.hit)
	setHops(w, hops+ev.hops)
	w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
	w.Header().Set("X-Snapshot-Version", strconv.FormatUint(v, 10))
	fmt.Fprint(w, viz.ProofDOT(ev.res.Root))
}
