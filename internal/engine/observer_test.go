package engine

import (
	"testing"

	"repro/internal/rel"
)

// TestEpochObserverFiresAtConsistentCuts attaches an observer, drives a
// topology change, and checks that (a) the observer fires at least once
// per drain, (b) it always runs at quiescent-per-epoch points where
// re-entering RunQuiescent is a no-op, and (c) the final state matches
// an observer-free run (the epoch loop it forces is state-identical).
func TestEpochObserverFiresAtConsistentCuts(t *testing.T) {
	e := newMincost(t, "n1", "n2", "n3")
	fired := 0
	e.SetEpochObserver(func() {
		fired++
		// Re-entrancy must be a no-op: the drain owns the loop.
		e.RunQuiescent()
	})
	if err := e.AddBiLink("n1", "n2", 1); err != nil {
		t.Fatal(err)
	}
	if err := e.AddBiLink("n2", "n3", 1); err != nil {
		t.Fatal(err)
	}
	if fired == 0 {
		t.Fatal("observer never fired")
	}

	plain := newMincost(t, "n1", "n2", "n3")
	if err := plain.AddBiLink("n1", "n2", 1); err != nil {
		t.Fatal(err)
	}
	if err := plain.AddBiLink("n2", "n3", 1); err != nil {
		t.Fatal(err)
	}
	got := tuplesString(e.GlobalTuples("mincost"))
	want := tuplesString(plain.GlobalTuples("mincost"))
	if got != want {
		t.Fatalf("observed run diverged:\n%s\nvs\n%s", got, want)
	}
}

// TestEpochObserverFiresOnEmptyDrain: even a drain that finds no
// pending network events must fire the observer once — callers mutate
// state immediately before RunQuiescent (e.g. a fact whose derivations
// stay local), and a publisher must get to see that cut.
func TestEpochObserverFiresOnEmptyDrain(t *testing.T) {
	e := newMincost(t, "n1")
	fired := 0
	e.SetEpochObserver(func() { fired++ })
	e.RunQuiescent()
	if fired != 1 {
		t.Fatalf("observer fired %d times on an empty drain, want 1", fired)
	}
	if err := e.InsertFact(rel.NewTuple("link", rel.Addr("n1"), rel.Addr("n1"), rel.Int(1))); err != nil {
		t.Fatal(err)
	}
	if fired < 2 {
		t.Fatalf("observer did not fire for a local-only insertion (fired=%d)", fired)
	}
}

// TestEpochObserverSeesMonotonicStateVersions: per-node store versions
// only grow across observer invocations — each cut is a later (or
// equal) state than the previous one.
func TestEpochObserverSeesMonotonicStateVersions(t *testing.T) {
	e := newMincost(t, "n1", "n2", "n3")
	last := map[string]uint64{}
	e.SetEpochObserver(func() {
		for _, addr := range e.Nodes() {
			n, _ := e.Node(addr)
			v := n.RT.Store.StateVersion()
			if v < last[addr] {
				t.Fatalf("node %s state version went backwards: %d -> %d", addr, last[addr], v)
			}
			last[addr] = v
		}
	})
	if err := e.AddBiLink("n1", "n2", 1); err != nil {
		t.Fatal(err)
	}
	if err := e.AddBiLink("n2", "n3", 1); err != nil {
		t.Fatal(err)
	}
	if err := e.RemoveBiLink("n1", "n2", 1); err != nil {
		t.Fatal(err)
	}
	e.RunQuiescent()
}
