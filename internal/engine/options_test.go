package engine

import (
	"strings"
	"testing"

	"repro/internal/rel"
)

func TestProvenanceDisabled(t *testing.T) {
	opts := DefaultOptions()
	opts.Provenance = false
	e, err := New(mincostSrc, []string{"n1", "n2"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddBiLink("n1", "n2", 1); err != nil {
		t.Fatal(err)
	}
	e.RunQuiescent()
	n1, _ := e.Node("n1")
	if n1.Prov != nil {
		t.Fatal("provenance store should be nil when disabled")
	}
	// Protocol state is unaffected.
	mc, err := n1.Tuples("mincost")
	if err != nil || len(mc) != 1 {
		t.Fatalf("mincost = %v (%v)", mc, err)
	}
	// Deletion still works without provenance.
	if err := e.RemoveBiLink("n1", "n2", 1); err != nil {
		t.Fatal(err)
	}
	e.RunQuiescent()
	if mc, _ := n1.Tuples("mincost"); len(mc) != 0 {
		t.Fatalf("mincost after removal = %v", mc)
	}
}

func TestOnEvalErrorHandlerSuppressesPanic(t *testing.T) {
	src := `
materialize(in, infinity, infinity, keys(1,2)).
materialize(out, infinity, infinity, keys(1,2)).
r1 out(@S,X) :- in(@S,L), X := f_first(L).
`
	e, err := New(src, []string{"n1"}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	e.OnEvalError = func(addr string, err error) {
		got = append(got, addr+": "+err.Error())
	}
	// Empty list: f_first fails; the handler observes it.
	if err := e.InsertFact(rel.NewTuple("in", rel.Addr("n1"), rel.List())); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !strings.Contains(got[0], "n1:") {
		t.Fatalf("handler calls = %v", got)
	}
}

func TestEvalErrorPanicsByDefault(t *testing.T) {
	src := `
materialize(in, infinity, infinity, keys(1,2)).
materialize(out, infinity, infinity, keys(1,2)).
r1 out(@S,X) :- in(@S,L), X := f_first(L).
`
	e, err := New(src, []string{"n1"}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("default eval error policy must panic")
		}
	}()
	_ = e.InsertFact(rel.NewTuple("in", rel.Addr("n1"), rel.List()))
}

func TestSourceAndLocalizedAccessors(t *testing.T) {
	e := newMincost(t, "n1")
	if len(e.Source().Rules) != 3 {
		t.Fatalf("source rules = %d", len(e.Source().Rules))
	}
	// Localization splits mc2 into two rules: 4 total.
	if len(e.Localized().Rules) != 4 {
		t.Fatalf("localized rules = %d", len(e.Localized().Rules))
	}
	if _, ok := e.Catalog().Lookup("e_mc2_Z"); !ok {
		t.Fatal("intermediate relation missing from catalog")
	}
}

func TestGlobalTuplesAggregatesAcrossNodes(t *testing.T) {
	e := newMincost(t, "n1", "n2")
	e.AddBiLink("n1", "n2", 1)
	e.RunQuiescent()
	links := e.GlobalTuples("link")
	if len(links) != 2 {
		t.Fatalf("global links = %v", links)
	}
	if got := e.GlobalTuples("nonexistent"); len(got) != 0 {
		t.Fatalf("nonexistent relation = %v", got)
	}
}

func TestDefaultLinkLatencyApplied(t *testing.T) {
	opts := Options{Seed: 1, Provenance: true} // zero latency -> defaulted
	e, err := New(mincostSrc, []string{"n1", "n2"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddBiLink("n1", "n2", 1); err != nil {
		t.Fatal(err)
	}
	l, ok := e.Net.LinkBetween("n1", "n2")
	if !ok || l.Latency <= 0 {
		t.Fatalf("link latency = %+v", l)
	}
}
