// Determinism and correctness tests for the parallel epoch scheduler.
// They live in the external test package so they can reuse the demo
// protocols and topology generators (protocols imports engine).
package engine_test

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/protocols"
	"repro/internal/rel"
	"repro/internal/simnet"
)

func tupleAddr2(relName, a, b string) rel.Tuple {
	return rel.NewTuple(relName, rel.Addr(a), rel.Addr(b))
}

// buildConverged runs a protocol to convergence on a topology at the
// given parallelism, optionally exercising churn (a link failure and
// repair mid-run, the paper's Figure 3 scenario).
func buildConverged(t testing.TB, program string, n int, edges []protocols.Edge, parallelism int, churn bool) *engine.Engine {
	t.Helper()
	eng, err := engine.New(program, protocols.NodeNames(n), engine.Options{
		Seed:        7,
		LinkLatency: simnet.Millisecond,
		Provenance:  true,
		Parallelism: parallelism,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if err := eng.AddBiLink(e.A, e.B, e.Cost); err != nil {
			t.Fatal(err)
		}
	}
	if churn {
		mid := edges[len(edges)/2]
		if err := eng.RemoveBiLink(mid.A, mid.B, mid.Cost); err != nil {
			t.Fatal(err)
		}
		if err := eng.AddBiLink(mid.A, mid.B, mid.Cost); err != nil {
			t.Fatal(err)
		}
	}
	eng.RunQuiescent()
	return eng
}

// fingerprint renders every node's full table state plus its
// provenance-partition digest, keyed by node address.
func fingerprint(t testing.TB, e *engine.Engine) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, addr := range e.Nodes() {
		n, ok := e.Node(addr)
		if !ok {
			t.Fatalf("missing node %s", addr)
		}
		var sb strings.Builder
		for _, tup := range n.RT.Store.Snapshot() {
			sb.WriteString(tup.String())
			sb.WriteByte('\n')
		}
		fmt.Fprintf(&sb, "prov-digest:%v\n", n.Prov.Digest())
		out[addr] = sb.String()
	}
	return out
}

func requireIdentical(t *testing.T, serial, parallel *engine.Engine) {
	t.Helper()
	sf, pf := fingerprint(t, serial), fingerprint(t, parallel)
	if len(sf) != len(pf) {
		t.Fatalf("node sets differ: %d vs %d", len(sf), len(pf))
	}
	for addr, want := range sf {
		if got := pf[addr]; got != want {
			t.Errorf("node %s diverged between serial and parallel runs:\nserial:\n%s\nparallel:\n%s", addr, want, got)
		}
	}
}

// TestParallelDeterminism is the determinism regression required of
// the epoch scheduler: same seed, parallelism 1 vs N must produce
// identical per-node snapshots and provenance-store contents, across
// protocols, topologies, and churn.
func TestParallelDeterminism(t *testing.T) {
	workers := runtime.NumCPU()
	if workers < 2 {
		workers = 2
	}
	cases := []struct {
		name    string
		program string
		n       int
		edges   []protocols.Edge
		churn   bool
	}{
		{"mincost-grid16", protocols.MinCost, 16, protocols.GridTopology(4, 4, 1), false},
		{"mincost-grid16-churn", protocols.MinCost, 16, protocols.GridTopology(4, 4, 1), true},
		{"pathvector-ring8", protocols.PathVector, 8, protocols.RingTopology(8, 1), false},
		{"pathvector-ring8-churn", protocols.PathVector, 8, protocols.RingTopology(8, 1), true},
		{"distvector-line8", protocols.DistanceVector, 8, protocols.LineTopology(8, 1), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial := buildConverged(t, tc.program, tc.n, tc.edges, 1, tc.churn)
			parallel := buildConverged(t, tc.program, tc.n, tc.edges, workers, tc.churn)
			requireIdentical(t, serial, parallel)
		})
	}
}

// TestParallelismLevelsAgree checks that every parallelism level — not
// just serial vs NumCPU — converges to the same state.
func TestParallelismLevelsAgree(t *testing.T) {
	edges := protocols.GridTopology(3, 3, 1)
	base := buildConverged(t, protocols.MinCost, 9, edges, 1, true)
	want := fingerprint(t, base)
	for _, p := range []int{2, 3, 8, 64} {
		eng := buildConverged(t, protocols.MinCost, 9, edges, p, true)
		got := fingerprint(t, eng)
		for addr := range want {
			if got[addr] != want[addr] {
				t.Fatalf("parallelism %d: node %s diverged", p, addr)
			}
		}
	}
}

// TestParallelCoalescingReducesMessages verifies the per-link
// coalescing actually batches wire messages: the parallel run must
// complete with fewer delta messages than the serial run while moving
// the same payload bytes.
func TestParallelCoalescingReducesMessages(t *testing.T) {
	edges := protocols.GridTopology(4, 4, 1)
	serial := buildConverged(t, protocols.MinCost, 16, edges, 1, false)
	parallel := buildConverged(t, protocols.MinCost, 16, edges, 8, false)

	sm, sb, _ := serial.Net.Totals()
	pm, pb, _ := parallel.Net.Totals()
	if pm >= sm {
		t.Errorf("parallel run sent %d messages, serial %d: coalescing should reduce the count", pm, sm)
	}
	if pb != sb {
		t.Errorf("payload bytes diverged: parallel %d, serial %d", pb, sb)
	}
}

// TestParallelPoolConcurrentPath pins GOMAXPROCS above 1 so the
// pooled (multi-goroutine) delivery path runs even on single-CPU
// machines, where the scheduler's clamp would otherwise fall back to
// the inline path. Under -race this is what proves the worker pool
// data-race-free everywhere.
func TestParallelPoolConcurrentPath(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	edges := protocols.GridTopology(4, 4, 1)
	serial := buildConverged(t, protocols.MinCost, 16, edges, 1, true)
	parallel := buildConverged(t, protocols.MinCost, 16, edges, 4, true)
	requireIdentical(t, serial, parallel)
}

// TestReentrantRunQuiescentFromService covers re-entrant drains: a
// service handler that inserts a fact mid-drain triggers a nested
// RunQuiescent (Engine.InsertFact always quiesces). Serially that
// nests Net.Run; under the epoch scheduler the nested call defers to
// the active drain. Both must converge to the same state.
func TestReentrantRunQuiescentFromService(t *testing.T) {
	build := func(par int) *engine.Engine {
		eng, err := engine.New(protocols.MinCost, protocols.NodeNames(4), engine.Options{
			Seed: 1, Provenance: true, Parallelism: par,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.RegisterService("poke", func(n *engine.Node, m simnet.Message) {
			err := n.Engine().InsertFact(rel.NewTuple("link",
				rel.Addr("n3"), rel.Addr("n4"), rel.Int(1)))
			if err != nil {
				panic(err)
			}
		}); err != nil {
			t.Fatal(err)
		}
		// Schedule a poke to land in the middle of the convergence
		// cascade the AddBiLink calls below kick off.
		eng.Net.After(simnet.Millisecond, func() {
			eng.Net.Send(simnet.Message{From: "n1", To: "n2", Kind: "poke", Reliable: true})
		})
		if err := eng.AddBiLink("n1", "n2", 1); err != nil {
			t.Fatal(err)
		}
		if err := eng.AddBiLink("n2", "n3", 1); err != nil {
			t.Fatal(err)
		}
		eng.RunQuiescent()
		return eng
	}
	serial := build(1)
	parallel := build(8)
	// The mid-drain insert must have taken effect in both modes…
	for _, eng := range []*engine.Engine{serial, parallel} {
		n3, _ := eng.Node("n3")
		links, err := n3.Tuples("link")
		if err != nil || len(links) != 2 {
			t.Fatalf("links at n3 = %v (%v), want n3→n2 and n3→n4", links, err)
		}
	}
	// …and both modes must agree on the full converged state.
	requireIdentical(t, serial, parallel)
}

// TestParallelSoftStateExpiry drives a program with a finite-lifetime
// relation under the parallel scheduler: expiry timers execute as
// serial islands between delta epochs and must behave exactly as in
// serial mode.
func TestParallelSoftStateExpiry(t *testing.T) {
	src := `
materialize(ping, 2, infinity, keys(1,2)).
materialize(seen, infinity, infinity, keys(1,2)).
p1 seen(@D,S) :- ping(@S,D).
`
	build := func(par int) *engine.Engine {
		eng, err := engine.New(src, []string{"n1", "n2"}, engine.Options{
			Seed: 1, Provenance: true, Parallelism: par,
		})
		if err != nil {
			t.Fatal(err)
		}
		n1, _ := eng.Node("n1")
		if err := n1.InsertFact(tupleAddr2("ping", "n1", "n2")); err != nil {
			t.Fatal(err)
		}
		eng.RunQuiescent()
		return eng
	}
	for _, par := range []int{1, 4} {
		eng := build(par)
		// The ping tuple has a 2-second lifetime; after quiescence the
		// expiry timer has fired and retracted it, cascading across the
		// network to the derived seen tuple at n2.
		n1, _ := eng.Node("n1")
		n2, _ := eng.Node("n2")
		if ts, err := n1.Tuples("ping"); err != nil || len(ts) != 0 {
			t.Errorf("parallelism %d: ping at n1 = %v (%v) after expiry, want empty", par, ts, err)
		}
		if ts, err := n2.Tuples("seen"); err != nil || len(ts) != 0 {
			t.Errorf("parallelism %d: seen at n2 = %v (%v) after expiry, want empty", par, ts, err)
		}
	}
}
