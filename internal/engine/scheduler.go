// Parallel epoch scheduler: the engine's answer to "one event at a
// time" discrete-event simulation. The simulated network synchronizes
// protocol traffic into waves — after a topology change, every node's
// deltas land at the same virtual instants — so the scheduler drains
// the event queue epoch by epoch (simnet.NextEpoch) and fans each
// epoch's tuple-delta deliveries out over a worker pool, one goroutine
// driving one destination node at a time.
//
// Determinism is preserved by construction rather than by luck:
//
//   - Per-node serialization: a node's deliveries are executed by a
//     single worker in schedule (seq) order, honoring eval.Runtime's
//     confinement contract, so no runtime or provenance partition is
//     ever touched by two goroutines at once.
//   - Send capture: workers never touch the shared event queue.
//     Outbound sends are captured into worker-local buffers tagged
//     with (triggering event seq, emission index) and replayed into
//     the network by the scheduler thread in exactly the order the
//     serial loop would have produced.
//   - Serial islands: timers and service messages (provenance
//     queries, snapshots, BGP control traffic) may touch shared
//     state, so runs of non-delta events execute inline on the
//     scheduler thread, interleaved with parallel delta runs in
//     schedule order.
//
// As a byproduct of the capture/replay step, the scheduler coalesces
// consecutive deltas bound for the same src→dst link into one
// DeltaBatch message, cutting per-message scheduling overhead without
// reordering any destination's delivery sequence.
package engine

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/simnet"
)

// capturedSend is one outbound message emitted while a worker was
// delivering epoch events, tagged for the deterministic merge.
type capturedSend struct {
	eventSeq uint64 // canonical rank of the delivery that produced the send
	emitIdx  int    // emission rank within that delivery
	msg      simnet.Message
}

// sendCapture buffers one node's outbound sends for the duration of a
// parallel run. It is owned by the single worker driving the node.
type sendCapture struct {
	seq   uint64
	idx   int
	sends []capturedSend
}

// netSend routes an outbound message: straight onto the network in
// serial context, or into the owning worker's capture buffer during a
// parallel epoch (the scheduler merges and enqueues deterministically
// afterwards).
func (n *Node) netSend(m simnet.Message) {
	if c := n.cap; c != nil {
		c.sends = append(c.sends, capturedSend{eventSeq: c.seq, emitIdx: c.idx, msg: m})
		c.idx++
		return
	}
	n.eng.Net.Send(m)
}

// dstGroup is the slice of one epoch's delta deliveries bound for a
// single destination node, in schedule order.
type dstGroup struct {
	node   *Node
	events []simnet.EpochEvent
	sends  []capturedSend
	panics interface{}
}

// workerPool runs destination groups on a fixed set of goroutines
// that live for one whole drain, so per-run scheduling costs one
// channel send per group instead of a pool spawn per run.
type workerPool struct {
	jobs chan *dstGroup
	wg   sync.WaitGroup
}

func newWorkerPool(net *simnet.Network, workers int) *workerPool {
	// The buffer lets the scheduler thread hand off a whole run
	// without a synchronous rendezvous per group.
	p := &workerPool{jobs: make(chan *dstGroup, 4*workers)}
	for w := 0; w < workers; w++ {
		go func() {
			for g := range p.jobs {
				g.deliver(net)
				p.wg.Done()
			}
		}()
	}
	return p
}

// run executes the groups across the pool and blocks until all are
// delivered.
func (p *workerPool) run(groups []*dstGroup) {
	p.wg.Add(len(groups))
	for _, g := range groups {
		p.jobs <- g
	}
	p.wg.Wait()
}

func (p *workerPool) close() { close(p.jobs) }

// runEpochs drains the network epoch by epoch with the given worker
// count. It is the parallel counterpart of Net.Run(0).
func (e *Engine) runEpochs(workers int) {
	// More workers than schedulable threads only adds context
	// switches; the outcome is identical at every worker count, so
	// clamping is free. On a single-CPU machine this degrades to the
	// inline capture/merge path.
	if max := runtime.GOMAXPROCS(0); workers > max {
		workers = max
	}
	e.draining = true
	var pool *workerPool
	if workers > 1 {
		pool = newWorkerPool(e.Net, workers)
	}
	defer func() {
		e.draining = false
		if pool != nil {
			pool.close()
		}
	}()
	if e.cluster != nil {
		e.clusterDrain(pool)
		return
	}
	for {
		ep, ok := e.Net.NextEpoch()
		if !ok {
			// Fire once more at quiescence: a drain may find zero
			// pending events even though the caller mutated state right
			// before RunQuiescent (e.g. a fact whose derivations stay
			// local). Observers dedup unchanged state themselves, so
			// the extra call after a final epoch is free.
			if fn := e.epochObserver.Load(); fn != nil {
				(*fn)()
			}
			return
		}
		e.executeEpoch(ep.Events, pool)
		// The epoch's events are fully delivered and no worker is
		// active: global state is a consistent cut of the execution at
		// this virtual instant. Let observers (snapshot publishers)
		// see it before the next epoch begins.
		if fn := e.epochObserver.Load(); fn != nil {
			(*fn)()
		}
	}
}

// executeEpoch canonicalizes and executes one virtual instant's events:
// maximal runs of delta deliveries fan out across the pool, everything
// else (timers, service messages) executes inline in canonical order.
func (e *Engine) executeEpoch(events []simnet.EpochEvent, pool *workerPool) {
	canonicalize(events)
	for len(events) > 0 {
		j := 0
		if e.parallelizable(events[0]) {
			for j < len(events) && e.parallelizable(events[j]) {
				j++
			}
			e.deliverParallel(events[:j], pool)
		} else {
			// Maximal run of serial events (timers, service
			// messages): execute inline, in canonical order. Their
			// sends go straight to the network, exactly as in the
			// serial loop.
			for j < len(events) && !e.parallelizable(events[j]) {
				if ev := events[j]; ev.Msg != nil {
					e.Net.Deliver(ev.Msg)
				} else {
					ev.Fn()
				}
				j++
			}
		}
		events = events[j:]
	}
}

// canonicalize sorts one epoch's events into the cluster-stable order
// and renumbers Seq to the canonical rank. Raw schedule sequence
// numbers are process-local: a distributed engine mints fresh ones when
// it injects remote deltas, so two processes never agree on absolute
// seqs. They do agree on everything the canonical key uses — the
// category of an event, its endpoints, and the relative seq order
// within one (From, To, Kind) stream (messages of a stream are emitted
// by exactly one process, in a replicated order). The order is:
//
//  1. timers/callbacks, by schedule order (they exist only in the
//     owning process and fire before the instant's deliveries);
//  2. message deliveries, destination-major by (To, From, Kind, Seq),
//     so one node's deliveries — and therefore its captured sends —
//     form a contiguous block, which keeps per-link coalescing
//     identical whether the epoch executes in one process or three.
func canonicalize(events []simnet.EpochEvent) {
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if (a.Msg == nil) != (b.Msg == nil) {
			return a.Msg == nil
		}
		if a.Msg == nil {
			return a.Seq < b.Seq
		}
		if a.Msg.To != b.Msg.To {
			return a.Msg.To < b.Msg.To
		}
		if a.Msg.From != b.Msg.From {
			return a.Msg.From < b.Msg.From
		}
		if a.Msg.Kind != b.Msg.Kind {
			return a.Msg.Kind < b.Msg.Kind
		}
		return a.Seq < b.Seq
	})
	for i := range events {
		events[i].Seq = uint64(i)
	}
}

// parallelizable reports whether an epoch event may be delivered by a
// worker: only tuple-delta messages qualify — their dispatch path
// touches nothing but the destination node's runtime and provenance
// partition.
func (e *Engine) parallelizable(ev simnet.EpochEvent) bool {
	return ev.Msg != nil && ev.Msg.Kind == KindDelta
}

// deliverParallel executes one run of delta deliveries across the
// worker pool and merges the captured sends back into the network in
// deterministic schedule order.
func (e *Engine) deliverParallel(run []simnet.EpochEvent, pool *workerPool) {
	// Group by destination, preserving schedule order within a group.
	groups := map[string]*dstGroup{}
	var order []*dstGroup
	for _, ev := range run {
		g := groups[ev.Msg.To]
		if g == nil {
			g = &dstGroup{node: e.nodes[ev.Msg.To]}
			groups[ev.Msg.To] = g
			order = append(order, g)
		}
		g.events = append(g.events, ev)
	}

	if pool == nil || len(order) == 1 {
		// A single destination (or a clamped single worker) gains
		// nothing from the pool; run inline. The capture/merge path
		// below is identical, so the outcome matches the concurrent
		// schedule exactly.
		for _, g := range order {
			g.deliver(e.Net)
		}
	} else {
		pool.run(order)
	}
	for _, g := range order {
		if g.panics != nil {
			panic(g.panics)
		}
	}

	// Deterministic merge: replay every captured send in the order the
	// serial loop would have enqueued it — by triggering event, then by
	// emission rank within that event.
	var all []capturedSend
	for _, g := range order {
		all = append(all, g.sends...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].eventSeq != all[j].eventSeq {
			return all[i].eventSeq < all[j].eventSeq
		}
		return all[i].emitIdx < all[j].emitIdx
	})
	e.enqueueCoalesced(all)
}

// deliver drives every delivery of the group on the calling worker,
// capturing the node's outbound sends. Panics are recorded and
// re-raised by the scheduler thread so -race builds and tests see
// them deterministically.
func (g *dstGroup) deliver(net *simnet.Network) {
	c := &sendCapture{}
	g.node.cap = c
	defer func() {
		g.node.cap = nil
		g.sends = c.sends
		if r := recover(); r != nil {
			g.panics = r
		}
	}()
	for _, ev := range g.events {
		c.seq = ev.Seq
		c.idx = 0
		net.Deliver(ev.Msg)
	}
}

// enqueueCoalesced sends the merged capture list, coalescing maximal
// consecutive runs bound for the same src→dst link into one DeltaBatch
// message. Because only globally-consecutive sends merge, every
// destination still observes its deltas in the exact serial order;
// the batch merely rides as one wire message (its size is the sum of
// its members, so byte accounting is preserved — message counts drop,
// which is the point).
func (e *Engine) enqueueCoalesced(sends []capturedSend) {
	for i := 0; i < len(sends); {
		j := i + 1
		for j < len(sends) &&
			sends[j].msg.From == sends[i].msg.From &&
			sends[j].msg.To == sends[i].msg.To {
			j++
		}
		if j-i == 1 {
			e.Net.Send(sends[i].msg)
			i = j
			continue
		}
		batch := DeltaBatch{Msgs: make([]DeltaMsg, 0, j-i)}
		size := 0
		for _, cs := range sends[i:j] {
			dm, ok := cs.msg.Payload.(DeltaMsg)
			if !ok {
				panic(fmt.Sprintf("engine: captured non-delta payload %T on delta path", cs.msg.Payload))
			}
			batch.Msgs = append(batch.Msgs, dm)
			size += cs.msg.Size
		}
		e.Net.Send(simnet.Message{
			From:     sends[i].msg.From,
			To:       sends[i].msg.To,
			Kind:     KindDelta,
			Reliable: true,
			Payload:  batch,
			Size:     size,
		})
		i = j
	}
}
