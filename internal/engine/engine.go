// Package engine is the distributed execution layer of NetTrails,
// playing RapidNet's role: it hosts one NDlog runtime per simulated
// node, routes derived tuples across the simnet network, and drives the
// ExSPAN provenance maintenance engine from rule-execution hooks.
//
// The compilation pipeline applied to a program is:
//
//	parse → analyze → localize → analyze → compile
//
// after which every rule body is single-location and cross-node dataflow
// happens via tuple messages carrying provenance annotations.
package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/eval"
	"repro/internal/ndlog"
	"repro/internal/provenance"
	"repro/internal/rel"
	"repro/internal/rewrite"
	"repro/internal/simnet"
)

// Message kinds used on the wire.
const (
	KindDelta = "delta" // tuple deltas between NDlog runtimes
)

// DeltaMsg is the payload of a cross-node tuple delta: the signed tuple
// plus its provenance annotation (the rule execution that produced it).
type DeltaMsg struct {
	Delta eval.Delta
	Prov  provenance.Entry
	// HasProv is false for engine-relayed base tuples.
	HasProv bool
}

// DeltaBatch is the payload of a coalesced delta message: every delta
// one epoch emitted over a single src→dst link, merged by the parallel
// scheduler into one wire message (the batch rides under KindDelta).
// Receivers apply the entries in emission order.
type DeltaBatch struct {
	Msgs []DeltaMsg
}

// Options configures an Engine.
type Options struct {
	Seed        int64
	LinkLatency simnet.Time
	// Provenance enables ExSPAN maintenance (on by default via New).
	Provenance bool
	// Parallelism is the number of worker goroutines RunQuiescent uses
	// to deliver each virtual-time epoch of tuple deltas. A worker
	// drives one destination node at a time, preserving the per-node
	// serialization contract of eval.Runtime; sends emitted during a
	// parallel epoch are merged back into the event queue in
	// deterministic schedule order, so a fixed seed converges to the
	// same per-node state for every parallelism level. Values <= 1 run
	// the classic serial discrete-event loop.
	Parallelism int
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options {
	return Options{Seed: 1, LinkLatency: simnet.Millisecond, Provenance: true, Parallelism: 1}
}

// Node is one simulated NetTrails node: an NDlog runtime plus a
// provenance partition.
type Node struct {
	Addr string
	RT   *eval.Runtime
	Prov *provenance.Store
	eng  *Engine
	// Soft-state bookkeeping: softGen is a monotonically increasing
	// per-tuple generation (never reset, so stale timers can always be
	// detected); softLive marks tuples currently base-inserted.
	softGen  map[rel.ID]uint64
	softLive map[rel.ID]bool
	// cap, when non-nil, redirects this node's outbound sends into the
	// worker-local buffer of the parallel epoch scheduler. It is only
	// set by the single worker driving this node during an epoch.
	cap *sendCapture
	// activity counts events that may have touched this node's state:
	// dispatched messages, fact inserts/deletes, and out-of-band
	// writes reported via Touch. An unchanged activity value between
	// epoch cuts proves the node's state, provenance, and traffic
	// counters are all untouched, which lets the snapshot publisher
	// skip the node without the per-table precise checks. It is
	// atomic because observation taps may Touch a *remote* node (the
	// BGP proxy records transmission provenance at the sender) while
	// that node's own worker is dispatching. Activity values may
	// differ across scheduler parallelism arms (message batching
	// differs); they gate local work only and never reach any
	// published output.
	activity atomic.Uint64
}

// Activity returns the node's event counter (see the field doc). Only
// meaningful between epochs, from the epoch-observer callback.
func (n *Node) Activity() uint64 { return n.activity.Load() }

// Touch records an out-of-band state mutation. Any code that writes to
// a node's runtime tables or provenance store directly — instead of
// going through InsertFact/DeleteFact or message dispatch — must call
// Touch on that node, or epoch-snapshot publishers will treat the node
// as unchanged and serve stale state.
func (n *Node) Touch() { n.activity.Add(1) }

// Engine couples the per-node runtimes to the simulated network.
type Engine struct {
	Net   *simnet.Network
	nodes map[string]*Node
	opts  Options

	source    *ndlog.Program // program as written
	localized *ndlog.Program // after localization
	compiled  *eval.Compiled

	services map[string]func(n *Node, m simnet.Message)

	// OnEvalError observes runtime evaluation errors (default: panic,
	// because silent evaluation errors make experiments lie).
	OnEvalError func(addr string, err error)
	// errMu serializes OnEvalError calls: evaluation errors can surface
	// concurrently from the epoch scheduler's workers.
	errMu sync.Mutex
	// draining marks an active epoch-scheduler drain. Re-entrant
	// RunQuiescent calls (a service handler inserting facts) return
	// immediately: the outer drain still runs to quiescence, and
	// deferring the new events keeps the epoch schedule identical to
	// the serial loop's, which would also finish the current instant's
	// events before the new ones.
	draining bool
	// epochObserver, when set, runs on the scheduler thread after each
	// fully-delivered virtual-time epoch (every node has consumed every
	// event of the instant, no worker is active), which is exactly when
	// global state forms a consistent cut. Snapshot publishers hook
	// here; see SetEpochObserver. Held atomically so detaching from
	// another goroutine (e.g. server shutdown) cannot race an active
	// drain's reads.
	epochObserver atomic.Pointer[func()]
	// cluster, when non-nil, runs this engine as one member of a
	// distributed deployment: RunQuiescent drains through the
	// cross-process epoch protocol (cluster.go) instead of the local
	// scheduler loop. Set once by EnableCluster.
	cluster *cluster
}

// New compiles src (NDlog text) and builds an engine with the given
// node addresses.
func New(src string, nodeAddrs []string, opts Options) (*Engine, error) {
	prog, err := ndlog.Parse(src)
	if err != nil {
		return nil, err
	}
	return NewFromProgram(prog, nodeAddrs, opts)
}

// NewFromProgram builds an engine from a parsed program.
func NewFromProgram(prog *ndlog.Program, nodeAddrs []string, opts Options) (*Engine, error) {
	if opts.LinkLatency <= 0 {
		opts.LinkLatency = simnet.Millisecond
	}
	if _, err := ndlog.Analyze(prog); err != nil {
		return nil, fmt.Errorf("engine: source program: %w", err)
	}
	localized, err := rewrite.Localize(prog)
	if err != nil {
		return nil, err
	}
	analysis, err := ndlog.Analyze(localized)
	if err != nil {
		return nil, fmt.Errorf("engine: localized program: %w", err)
	}
	compiled, err := eval.Compile(analysis)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		Net:       simnet.New(opts.Seed),
		nodes:     map[string]*Node{},
		opts:      opts,
		source:    prog,
		localized: localized,
		compiled:  compiled,
		services:  map[string]func(*Node, simnet.Message){},
	}
	for _, addr := range nodeAddrs {
		if err := e.addNode(addr); err != nil {
			return nil, err
		}
	}
	return e, nil
}

func (e *Engine) addNode(addr string) error {
	if e.cluster != nil {
		return fmt.Errorf("engine: cannot add node %s after EnableCluster froze ownership", addr)
	}
	if _, ok := e.nodes[addr]; ok {
		return fmt.Errorf("engine: duplicate node %s", addr)
	}
	rt, err := eval.NewRuntime(addr, e.compiled, nil)
	if err != nil {
		return err
	}
	n := &Node{Addr: addr, RT: rt, eng: e, softGen: map[rel.ID]uint64{}, softLive: map[rel.ID]bool{}}
	if e.opts.Provenance {
		n.Prov = provenance.NewStore(addr)
	}
	rt.ErrFn = func(err error) {
		e.errMu.Lock()
		defer e.errMu.Unlock()
		if e.OnEvalError != nil {
			e.OnEvalError(addr, err)
			return
		}
		panic(fmt.Sprintf("engine: node %s: %v", addr, err))
	}
	rt.FireFn = func(f eval.Firing) {
		if n.Prov == nil {
			return
		}
		// Transient (event) outputs are not materialized, so their
		// provenance is not tracked; only persistent heads enter the
		// graph, matching ExSPAN's table-oriented model.
		if sch, ok := rt.Store.Catalog().Lookup(f.Output.Rel); ok && sch.Persistent {
			n.Prov.RecordFiring(f)
		}
	}
	rt.SendFn = func(dst string, d eval.Delta, f *eval.Firing) {
		msg := DeltaMsg{Delta: d}
		if n.Prov != nil && f != nil {
			if sch, ok := rt.Store.Catalog().Lookup(d.Tuple.Rel); ok && sch.Persistent {
				vids := make([]rel.ID, len(f.Inputs))
				for i, in := range f.Inputs {
					vids[i] = in.VID()
				}
				rid := eval.RuleExecID(f.RuleName, addr, vids)
				msg.Prov = provenance.Entry{VID: d.Tuple.VID(), RID: rid, RLoc: addr}
				msg.HasProv = true
			}
		}
		n.netSend(simnet.Message{
			From:     addr,
			To:       dst,
			Kind:     KindDelta,
			Reliable: true,
			Payload:  msg,
			Size:     wireSize(d.Tuple),
		})
	}
	if err := e.Net.AddNode(addr, func(m simnet.Message) { e.dispatch(n, m) }); err != nil {
		return err
	}
	e.nodes[addr] = n
	return nil
}

// wireSize approximates the on-wire size of a tuple delta: the canonical
// tuple encoding plus the provenance annotation (VID+RID+loc) and
// framing.
func wireSize(t rel.Tuple) int { return len(rel.MarshalTuple(t)) + 48 }

func (e *Engine) dispatch(n *Node, m simnet.Message) {
	n.activity.Add(1)
	if m.Kind == KindDelta {
		switch dm := m.Payload.(type) {
		case DeltaMsg:
			e.applyRemoteProv(n, dm)
			n.RT.ReceiveRemote(dm.Delta)
		case DeltaBatch:
			ds := make([]eval.Delta, len(dm.Msgs))
			for i, one := range dm.Msgs {
				e.applyRemoteProv(n, one)
				ds[i] = one.Delta
			}
			n.RT.ReceiveRemoteBatch(ds)
		default:
			panic(fmt.Sprintf("engine: bad delta payload %T", m.Payload))
		}
		return
	}
	if h, ok := e.services[m.Kind]; ok {
		h(n, m)
		return
	}
	panic(fmt.Sprintf("engine: node %s: no service for message kind %q", n.Addr, m.Kind))
}

// applyRemoteProv mirrors an incoming delta's provenance annotation
// into the destination's partition before evaluation sees the delta.
func (e *Engine) applyRemoteProv(n *Node, dm DeltaMsg) {
	if n.Prov != nil && dm.HasProv {
		n.Prov.ApplyRemote(dm.Delta.Tuple, dm.Prov, dm.Delta.Sign)
	}
}

// RegisterService routes messages of the given kind (e.g. provenance
// queries, snapshot collection) to a handler.
func (e *Engine) RegisterService(kind string, h func(n *Node, m simnet.Message)) error {
	if kind == KindDelta {
		return fmt.Errorf("engine: kind %q is reserved", kind)
	}
	if _, dup := e.services[kind]; dup {
		return fmt.Errorf("engine: service %q already registered", kind)
	}
	e.services[kind] = h
	return nil
}

// Node returns the node with the given address.
func (e *Engine) Node(addr string) (*Node, bool) {
	n, ok := e.nodes[addr]
	return n, ok
}

// Nodes returns all node addresses, sorted.
func (e *Engine) Nodes() []string { return e.Net.Nodes() }

// Source returns the program as written.
func (e *Engine) Source() *ndlog.Program { return e.source }

// Localized returns the program after localization.
func (e *Engine) Localized() *ndlog.Program { return e.localized }

// Catalog returns the compiled catalog (post-localization).
func (e *Engine) Catalog() *rel.Catalog { return e.compiled.Analysis.Catalog }

// InsertFact inserts a base tuple at the node named by its location
// attribute and runs the network to quiescence.
func (e *Engine) InsertFact(t rel.Tuple) error {
	n, err := e.ownerOf(t)
	if err != nil {
		return err
	}
	if err := n.InsertFact(t); err != nil {
		return err
	}
	e.RunQuiescent()
	return nil
}

// DeleteFact retracts a base tuple previously inserted with InsertFact
// and runs the network to quiescence.
func (e *Engine) DeleteFact(t rel.Tuple) error {
	n, err := e.ownerOf(t)
	if err != nil {
		return err
	}
	if err := n.DeleteFact(t); err != nil {
		return err
	}
	e.RunQuiescent()
	return nil
}

func (e *Engine) ownerOf(t rel.Tuple) (*Node, error) {
	sch, ok := e.Catalog().Lookup(t.Rel)
	if !ok {
		return nil, fmt.Errorf("engine: undeclared relation %s", t.Rel)
	}
	loc, ok := t.Loc(sch)
	if !ok {
		return nil, fmt.Errorf("engine: tuple %s has no location attribute", t)
	}
	n, ok := e.nodes[loc]
	if !ok {
		return nil, fmt.Errorf("engine: no node %s for tuple %s", loc, t)
	}
	return n, nil
}

// LoadProgramFacts inserts every fact rule (empty body) of the source
// program at its owning node, then runs to quiescence.
func (e *Engine) LoadProgramFacts() error {
	for _, r := range e.source.Rules {
		if len(r.Body) != 0 || r.Maybe {
			continue
		}
		vals := make([]rel.Value, len(r.Head.Args))
		for i, a := range r.Head.Args {
			c, ok := a.(*ndlog.ConstArg)
			if !ok {
				return fmt.Errorf("engine: fact %s has non-constant argument", r.Head.Rel)
			}
			vals[i] = c.Val
		}
		if err := e.InsertFact(rel.Tuple{Rel: r.Head.Rel, Vals: vals}); err != nil {
			return err
		}
	}
	return nil
}

// RunQuiescent drains all pending network events. With
// Options.Parallelism > 1 — or whenever an epoch observer is attached —
// it runs the epoch scheduler, delivering each virtual instant's tuple
// deltas concurrently across destination nodes; otherwise it runs the
// classic serial discrete-event loop. Both schedules converge to the
// same state for the same seed.
func (e *Engine) RunQuiescent() {
	if e.opts.Parallelism > 1 || e.epochObserver.Load() != nil || e.cluster != nil {
		if e.draining {
			return // re-entrant: the active drain reaches quiescence
		}
		workers := e.opts.Parallelism
		if workers < 1 {
			workers = 1
		}
		e.runEpochs(workers)
		return
	}
	e.Net.Run(0)
}

// SetEpochObserver installs fn to run on the scheduler thread after
// every fully-delivered epoch, i.e. at each consistent virtual instant.
// While an observer is set, RunQuiescent always drains through the
// epoch scheduler (even at Parallelism <= 1) so the observer fires at
// true epoch granularity; per-node state is identical either way, only
// per-link message coalescing differs. fn must not re-enter the
// engine's event loop (RunQuiescent from fn is a no-op by design) and
// must confine itself to reading engine state. A nil fn detaches;
// attach/detach may happen from any goroutine (the slot is atomic),
// though fn itself only ever runs on the scheduler thread.
func (e *Engine) SetEpochObserver(fn func()) {
	if fn == nil {
		e.epochObserver.Store(nil)
		return
	}
	e.epochObserver.Store(&fn)
}

// InsertFact inserts a base tuple at this node, mirroring NDlog
// key-replacement into the provenance store. Soft-state relations
// (finite materialize lifetime) schedule an expiry; re-insertion
// refreshes it.
func (n *Node) InsertFact(t rel.Tuple) error {
	// In distributed mode the insertion script is replayed by every
	// process; only the node's owner applies it. The caller still runs
	// the (barrier-synchronized) drain, keeping all processes in step.
	if n.eng.cluster != nil && !n.eng.Owns(n.Addr) {
		return nil
	}
	n.activity.Add(1)
	if err := n.mirrorKeyReplacement(t); err != nil {
		return err
	}
	sch, hasSchema := n.RT.Store.Catalog().Lookup(t.Rel)
	soft := hasSchema && sch.Persistent && sch.LifetimeSecs > 0
	if soft {
		if n.softLive[t.VID()] {
			// Refresh: the identical tuple is already base-inserted;
			// just push the expiry out. No new derivation is added.
			n.scheduleExpiry(t, sch.LifetimeSecs)
			return nil
		}
	}
	if n.Prov != nil && hasSchema && sch.Persistent {
		n.Prov.AddBase(t)
	}
	if err := n.RT.InsertBase(t); err != nil {
		return err
	}
	if soft {
		n.scheduleExpiry(t, sch.LifetimeSecs)
	}
	return nil
}

// scheduleExpiry arms a soft-state timeout. A later re-insertion bumps
// the generation, turning stale expirations into no-ops.
func (n *Node) scheduleExpiry(t rel.Tuple, secs int64) {
	vid := t.VID()
	n.softGen[vid]++
	n.softLive[vid] = true
	gen := n.softGen[vid]
	n.eng.Net.After(simnet.Time(secs)*simnet.Second, func() {
		if n.softGen[vid] != gen || !n.softLive[vid] {
			return // refreshed or manually deleted in the meantime
		}
		if err := n.DeleteFact(t); err != nil {
			panic(fmt.Sprintf("engine: %s: soft-state expiry: %v", n.Addr, err))
		}
	})
}

// mirrorKeyReplacement removes base provenance of tuples the runtime's
// key-replacement is about to retract.
func (n *Node) mirrorKeyReplacement(t rel.Tuple) error {
	if n.Prov == nil {
		return nil
	}
	sch, ok := n.RT.Store.Catalog().Lookup(t.Rel)
	if !ok || !sch.Persistent || len(sch.KeyCols) == 0 {
		return nil
	}
	tbl, err := n.RT.Store.Table(t.Rel)
	if err != nil {
		return err
	}
	for _, old := range tbl.KeyConflicts(t) {
		n.Prov.RemoveBase(old.Tuple)
	}
	return nil
}

// DeleteFact retracts a base tuple at this node. The tuple must have
// been inserted as a fact here; retracting derived-only tuples corrupts
// the count/provenance correspondence.
func (n *Node) DeleteFact(t rel.Tuple) error {
	// Owner-only, mirroring InsertFact: see the comment there.
	if n.eng.cluster != nil && !n.eng.Owns(n.Addr) {
		return nil
	}
	n.activity.Add(1)
	sch, hasSchema := n.RT.Store.Catalog().Lookup(t.Rel)
	if hasSchema && sch.Persistent && sch.LifetimeSecs > 0 {
		// Cancel any pending soft-state expiry for this tuple. The
		// generation stays monotonic so armed timers see the change.
		n.softGen[t.VID()]++
		delete(n.softLive, t.VID())
	}
	if n.Prov != nil && hasSchema && sch.Persistent {
		n.Prov.RemoveBase(t)
	}
	return n.RT.DeleteBase(t)
}

// Engine returns the owning engine (for services).
func (n *Node) Engine() *Engine { return n.eng }

// Tuples returns the visible tuples of a relation at this node, sorted.
func (n *Node) Tuples(relName string) ([]rel.Tuple, error) {
	tbl, err := n.RT.Store.Table(relName)
	if err != nil {
		return nil, err
	}
	return tbl.Tuples(), nil
}

// AddBiLink connects two nodes in simnet and inserts symmetric
// link(@a,b,cost) tuples, the common base topology of the demo
// protocols. It runs to quiescence.
func (e *Engine) AddBiLink(a, b string, cost int64) error {
	if _, err := e.Net.Connect(a, b, e.opts.LinkLatency); err != nil {
		return err
	}
	if err := e.InsertFact(rel.NewTuple("link", rel.Addr(a), rel.Addr(b), rel.Int(cost))); err != nil {
		return err
	}
	return e.InsertFact(rel.NewTuple("link", rel.Addr(b), rel.Addr(a), rel.Int(cost)))
}

// RemoveBiLink retracts both link tuples and marks the simnet link down.
func (e *Engine) RemoveBiLink(a, b string, cost int64) error {
	if err := e.DeleteFact(rel.NewTuple("link", rel.Addr(a), rel.Addr(b), rel.Int(cost))); err != nil {
		return err
	}
	if err := e.DeleteFact(rel.NewTuple("link", rel.Addr(b), rel.Addr(a), rel.Int(cost))); err != nil {
		return err
	}
	e.Net.SetLinkUp(a, b, false)
	return nil
}

// GlobalTuples gathers a relation across every node, sorted (test and
// snapshot helper).
func (e *Engine) GlobalTuples(relName string) []rel.Tuple {
	var out []rel.Tuple
	for _, addr := range e.Nodes() {
		n := e.nodes[addr]
		if ts, err := n.Tuples(relName); err == nil {
			out = append(out, ts...)
		}
	}
	return out
}
