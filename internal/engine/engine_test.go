package engine

import (
	"strings"
	"testing"

	"repro/internal/rel"
	"repro/internal/simnet"
)

const mincostSrc = `
materialize(link, infinity, infinity, keys(1,2)).
materialize(cost, infinity, infinity, keys(1,2,3)).
materialize(mincost, infinity, infinity, keys(1,2)).

mc1 cost(@S,D,C) :- link(@S,D,C).
mc2 cost(@S,D,C) :- link(@S,Z,C1), mincost(@Z,D,C2), S != D, C := C1 + C2, C < 64.
mc3 mincost(@S,D,min<C>) :- cost(@S,D,C).
`

func newMincost(t *testing.T, nodes ...string) *Engine {
	t.Helper()
	e, err := New(mincostSrc, nodes, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func findTuple(ts []rel.Tuple, s string) bool {
	for _, tp := range ts {
		if tp.String() == s {
			return true
		}
	}
	return false
}

func TestMincostLineConverges(t *testing.T) {
	e := newMincost(t, "n1", "n2", "n3")
	for _, l := range [][2]string{{"n1", "n2"}, {"n2", "n3"}} {
		if err := e.AddBiLink(l[0], l[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	e.RunQuiescent()
	n1, _ := e.Node("n1")
	mc, err := n1.Tuples("mincost")
	if err != nil {
		t.Fatal(err)
	}
	if !findTuple(mc, "mincost(@n1, n2, 1)") || !findTuple(mc, "mincost(@n1, n3, 2)") {
		t.Fatalf("n1 mincost = %v", mc)
	}
	// Pair-wise: every node knows costs to both others.
	for _, addr := range e.Nodes() {
		n, _ := e.Node(addr)
		mc, _ := n.Tuples("mincost")
		if len(mc) != 2 {
			t.Fatalf("%s mincost = %v", addr, mc)
		}
	}
}

func TestMincostPrefersCheaperLongerPath(t *testing.T) {
	e := newMincost(t, "n1", "n2", "n3")
	// Direct n1-n3 costs 10; via n2 costs 2.
	e.AddBiLink("n1", "n3", 10)
	e.AddBiLink("n1", "n2", 1)
	e.AddBiLink("n2", "n3", 1)
	e.RunQuiescent()
	n1, _ := e.Node("n1")
	mc, _ := n1.Tuples("mincost")
	if !findTuple(mc, "mincost(@n1, n3, 2)") {
		t.Fatalf("n1 mincost = %v", mc)
	}
}

func TestTopologyChangeRecomputesIncrementally(t *testing.T) {
	e := newMincost(t, "n1", "n2", "n3")
	e.AddBiLink("n1", "n3", 10)
	e.AddBiLink("n1", "n2", 1)
	e.AddBiLink("n2", "n3", 1)
	e.RunQuiescent()
	// Remove the cheap path; mincost must fall back to the direct link.
	if err := e.RemoveBiLink("n2", "n3", 1); err != nil {
		t.Fatal(err)
	}
	e.RunQuiescent()
	n1, _ := e.Node("n1")
	mc, _ := n1.Tuples("mincost")
	if !findTuple(mc, "mincost(@n1, n3, 10)") {
		t.Fatalf("n1 mincost after removal = %v", mc)
	}
	if findTuple(mc, "mincost(@n1, n3, 2)") {
		t.Fatalf("stale mincost survived deletion: %v", mc)
	}
}

// TestIncrementalEqualsRecompute is experiment E3's core invariant: the
// state after incremental updates equals the state computed from scratch
// on the final topology.
func TestIncrementalEqualsRecompute(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4"}
	type op struct {
		add  bool
		a, b string
		c    int64
	}
	script := []op{
		{true, "n1", "n2", 1},
		{true, "n2", "n3", 1},
		{true, "n3", "n4", 1},
		{true, "n1", "n4", 5},
		{false, "n2", "n3", 1},
		{true, "n2", "n4", 2},
	}
	incr := newMincost(t, nodes...)
	for _, o := range script {
		var err error
		if o.add {
			err = incr.AddBiLink(o.a, o.b, o.c)
		} else {
			err = incr.RemoveBiLink(o.a, o.b, o.c)
		}
		if err != nil {
			t.Fatal(err)
		}
		incr.RunQuiescent()
	}
	// From scratch on the final topology.
	fresh := newMincost(t, nodes...)
	final := map[op]bool{}
	for _, o := range script {
		key := op{true, o.a, o.b, o.c}
		final[key] = o.add
	}
	for o, present := range final {
		if present {
			if err := fresh.AddBiLink(o.a, o.b, o.c); err != nil {
				t.Fatal(err)
			}
		}
	}
	fresh.RunQuiescent()
	for _, relName := range []string{"mincost", "cost", "link"} {
		a := tuplesString(incr.GlobalTuples(relName))
		b := tuplesString(fresh.GlobalTuples(relName))
		if a != b {
			t.Errorf("%s diverges:\nincremental:\n%s\nfresh:\n%s", relName, a, b)
		}
	}
}

func tuplesString(ts []rel.Tuple) string {
	var b strings.Builder
	for _, tp := range ts {
		b.WriteString(tp.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func TestProvenanceMaintainedAcrossNodes(t *testing.T) {
	e := newMincost(t, "n1", "n2")
	e.AddBiLink("n1", "n2", 3)
	e.RunQuiescent()
	n1, _ := e.Node("n1")
	// mincost(@n1,n2,3) must have provenance at n1.
	mc := rel.NewTuple("mincost", rel.Addr("n1"), rel.Addr("n2"), rel.Int(3))
	derivs, ok := n1.Prov.Derivations(mc.VID())
	if !ok || len(derivs) != 1 {
		t.Fatalf("mincost derivations = %v %v", derivs, ok)
	}
	if derivs[0].RID.IsZero() {
		t.Fatal("derived tuple has base provenance")
	}
	// The rule execution is local (mc3 runs at n1).
	exec, ok := n1.Prov.Exec(derivs[0].RID)
	if !ok || exec.Rule != "mc3" {
		t.Fatalf("exec = %+v %v", exec, ok)
	}
	// Its input is the cost tuple, also resolvable at n1.
	costT := rel.NewTuple("cost", rel.Addr("n1"), rel.Addr("n2"), rel.Int(3))
	if len(exec.VIDs) != 1 || exec.VIDs[0] != costT.VID() {
		t.Fatalf("exec inputs = %v", exec.VIDs)
	}
	if _, ok := n1.Prov.TupleOf(costT.VID()); !ok {
		t.Fatal("input tuple not pinned")
	}
	if err := n1.Prov.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestProvenanceCleanedOnDeletion(t *testing.T) {
	e := newMincost(t, "n1", "n2", "n3")
	e.AddBiLink("n1", "n2", 1)
	e.AddBiLink("n2", "n3", 1)
	e.RunQuiescent()
	e.RemoveBiLink("n2", "n3", 1)
	e.RunQuiescent()
	for _, addr := range e.Nodes() {
		n, _ := e.Node(addr)
		if err := n.Prov.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", addr, err)
		}
		// No provenance rows may reference n3-destined mincost tuples.
		for _, tp := range n.Prov.ProvTuples() {
			vid, _ := tp.Vals[1].AsID()
			pinned, ok := n.Prov.TupleOf(vid)
			if !ok {
				t.Fatalf("%s: prov row with unpinned VID", addr)
			}
			if pinned.Rel == "mincost" || pinned.Rel == "cost" {
				if d, _ := pinned.Vals[1].AsAddr(); d == "n3" && addr != "n3" {
					t.Fatalf("%s: stale provenance for %s", addr, pinned)
				}
			}
		}
	}
}

func TestRemoteDerivationProvenancePointsAcrossNodes(t *testing.T) {
	e := newMincost(t, "n1", "n2", "n3")
	e.AddBiLink("n1", "n2", 1)
	e.AddBiLink("n2", "n3", 1)
	e.RunQuiescent()
	n1, _ := e.Node("n1")
	n2, _ := e.Node("n2")
	// cost(@n1,n3,2) was derived by rule mc2 executing at... mc2 is
	// localized: link(@S,Z) joins mincost(@Z,D) at Z after shipping, so
	// the final rule execution happens at n1 or n2 depending on the
	// split. Find the derivation and check the exec is resolvable at
	// its RLoc.
	costT := rel.NewTuple("cost", rel.Addr("n1"), rel.Addr("n3"), rel.Int(2))
	derivs, ok := n1.Prov.Derivations(costT.VID())
	if !ok || len(derivs) == 0 {
		t.Fatalf("no derivations for %s", costT)
	}
	d := derivs[0]
	var execStore = n1.Prov
	if d.RLoc == "n2" {
		execStore = n2.Prov
	}
	exec, ok := execStore.Exec(d.RID)
	if !ok {
		t.Fatalf("exec %s not found at %s", d.RID.Short(), d.RLoc)
	}
	// Every input of the exec must be pinned at the executing node.
	for _, vid := range exec.VIDs {
		if _, ok := execStore.TupleOf(vid); !ok {
			t.Fatalf("input %s not pinned at %s", vid.Short(), d.RLoc)
		}
	}
}

func TestLoadProgramFacts(t *testing.T) {
	src := mincostSrc + `
f1 link(@'n1','n2',4).
f2 link(@'n2','n1',4).
`
	e, err := New(src, []string{"n1", "n2"}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	e.Net.Connect("n1", "n2", 1000)
	if err := e.LoadProgramFacts(); err != nil {
		t.Fatal(err)
	}
	e.RunQuiescent()
	n1, _ := e.Node("n1")
	mc, _ := n1.Tuples("mincost")
	if !findTuple(mc, "mincost(@n1, n2, 4)") {
		t.Fatalf("mincost = %v", mc)
	}
}

func TestEngineErrors(t *testing.T) {
	e := newMincost(t, "n1")
	if err := e.InsertFact(rel.NewTuple("ghost", rel.Addr("n1"))); err == nil {
		t.Fatal("undeclared relation must error")
	}
	if err := e.InsertFact(rel.NewTuple("link", rel.Addr("nX"), rel.Addr("n1"), rel.Int(1))); err == nil {
		t.Fatal("unknown owner node must error")
	}
	if _, err := New("not ndlog (", []string{"a"}, DefaultOptions()); err == nil {
		t.Fatal("parse error must propagate")
	}
	if _, err := New(mincostSrc, []string{"a", "a"}, DefaultOptions()); err == nil {
		t.Fatal("duplicate node must error")
	}
	if err := e.RegisterService(KindDelta, nil); err == nil {
		t.Fatal("reserved kind must be rejected")
	}
	if err := e.RegisterService("q", func(*Node, simnet.Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterService("q", func(*Node, simnet.Message) {}); err == nil {
		t.Fatal("duplicate service must be rejected")
	}
}

func TestKeyReplacementMirrorsProvenance(t *testing.T) {
	src := `
materialize(route, infinity, infinity, keys(1,2)).
materialize(copy, infinity, infinity, keys(1,2,3)).
r1 copy(@S,D,C) :- route(@S,D,C).
`
	e, err := New(src, []string{"n1"}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	n1, _ := e.Node("n1")
	old := rel.NewTuple("route", rel.Addr("n1"), rel.Addr("d"), rel.Int(9))
	newT := rel.NewTuple("route", rel.Addr("n1"), rel.Addr("d"), rel.Int(4))
	if err := n1.InsertFact(old); err != nil {
		t.Fatal(err)
	}
	if err := n1.InsertFact(newT); err != nil {
		t.Fatal(err)
	}
	e.RunQuiescent()
	if _, ok := n1.Prov.Derivations(old.VID()); ok {
		t.Fatal("replaced tuple still has provenance")
	}
	if _, ok := n1.Prov.Derivations(newT.VID()); !ok {
		t.Fatal("replacement tuple lacks provenance")
	}
	if err := n1.Prov.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaTrafficIsAccounted(t *testing.T) {
	e := newMincost(t, "n1", "n2")
	e.AddBiLink("n1", "n2", 1)
	e.RunQuiescent()
	kinds := e.Net.KindTotals()
	if kinds[KindDelta].Messages == 0 {
		t.Fatal("no delta traffic recorded")
	}
}
