package engine

import (
	"testing"

	"repro/internal/rel"
	"repro/internal/simnet"
)

// Soft state: materialize(link, 5, ...) gives base link tuples a
// 5-second lifetime; derived state drains when they expire, and
// re-insertion refreshes the lifetime — NDlog's soft-state semantics.
const softSrc = `
materialize(link, 5, infinity, keys(1,2)).
materialize(reach, infinity, infinity, keys(1,2)).
r1 reach(@S,D) :- link(@S,D,_).
`

func softLink() rel.Tuple {
	return rel.NewTuple("link", rel.Addr("n1"), rel.Addr("n2"), rel.Int(1))
}

func TestSoftStateExpires(t *testing.T) {
	e, err := New(softSrc, []string{"n1", "n2"}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	n1, _ := e.Node("n1")
	if err := n1.InsertFact(softLink()); err != nil {
		t.Fatal(err)
	}
	e.Net.RunUntil(4 * simnet.Second)
	if got, _ := n1.Tuples("reach"); len(got) != 1 {
		t.Fatalf("reach before expiry = %v", got)
	}
	e.Net.RunUntil(6 * simnet.Second)
	if got, _ := n1.Tuples("link"); len(got) != 0 {
		t.Fatalf("link after expiry = %v", got)
	}
	if got, _ := n1.Tuples("reach"); len(got) != 0 {
		t.Fatalf("reach after expiry = %v", got)
	}
	if err := n1.Prov.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if st := n1.Prov.Statistics(); st.ProvEntries != 0 {
		t.Fatalf("stale provenance after expiry: %+v", st)
	}
}

func TestSoftStateRefreshOnReinsert(t *testing.T) {
	e, err := New(softSrc, []string{"n1", "n2"}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	n1, _ := e.Node("n1")
	if err := n1.InsertFact(softLink()); err != nil {
		t.Fatal(err)
	}
	// Refresh at t=3s: the tuple must survive past the original t=5s
	// deadline and expire at t=8s instead. Note the re-insert adds a
	// second base derivation (count 2); expiry removes one support per
	// insert generation... the refresh model here is: the re-insert
	// replaces the old base support via key replacement (same key
	// columns), so the count stays 1.
	e.Net.RunUntil(3 * simnet.Second)
	if err := n1.InsertFact(softLink()); err != nil {
		t.Fatal(err)
	}
	e.Net.RunUntil(6 * simnet.Second)
	if got, _ := n1.Tuples("link"); len(got) != 1 {
		t.Fatalf("link should survive refresh window: %v", got)
	}
	e.Net.RunUntil(9 * simnet.Second)
	if got, _ := n1.Tuples("link"); len(got) != 0 {
		t.Fatalf("link after refreshed expiry = %v", got)
	}
	if err := n1.Prov.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSoftStateManualDeleteCancelsExpiry(t *testing.T) {
	e, err := New(softSrc, []string{"n1", "n2"}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	n1, _ := e.Node("n1")
	if err := n1.InsertFact(softLink()); err != nil {
		t.Fatal(err)
	}
	e.Net.RunUntil(1 * simnet.Second)
	if err := n1.DeleteFact(softLink()); err != nil {
		t.Fatal(err)
	}
	// Re-insert after the manual delete: the new insertion's expiry
	// governs; the original timer must not kill it early.
	e.Net.RunUntil(2 * simnet.Second)
	if err := n1.InsertFact(softLink()); err != nil {
		t.Fatal(err)
	}
	e.Net.RunUntil(6 * simnet.Second) // original timer would fire at 5s
	if got, _ := n1.Tuples("link"); len(got) != 1 {
		t.Fatalf("link killed by stale timer: %v", got)
	}
	e.Net.RunUntil(8 * simnet.Second) // new timer fires at 7s
	if got, _ := n1.Tuples("link"); len(got) != 0 {
		t.Fatalf("link survived its refreshed lifetime: %v", got)
	}
}

func TestBadLifetimeRejected(t *testing.T) {
	bad := `
materialize(link, -3, infinity, keys(1,2)).
r1 reach(@S,D) :- link(@S,D,_).
materialize(reach, infinity, infinity, keys(1,2)).
`
	if _, err := New(bad, []string{"n1"}, DefaultOptions()); err == nil {
		t.Fatal("negative lifetime must be rejected")
	}
}

func TestInfiniteLifetimeNeverExpires(t *testing.T) {
	e := newMincost(t, "n1", "n2")
	if err := e.AddBiLink("n1", "n2", 1); err != nil {
		t.Fatal(err)
	}
	e.Net.RunUntil(3600 * simnet.Second)
	n1, _ := e.Node("n1")
	if got, _ := n1.Tuples("link"); len(got) != 1 {
		t.Fatalf("infinite-lifetime tuple expired: %v", got)
	}
}
