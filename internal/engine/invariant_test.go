package engine

import (
	"math/rand"
	"testing"
)

// A MINCOST variant with a tight cost bound: random-churn tests delete
// links on cyclic topologies, and every deletion climbs the mutual-
// support costs up to the bound before draining (see protocols.MinCost
// for the count-to-infinity discussion). A tight bound keeps the
// worst-case churn small while exercising the same code paths.
const mincostTight = `
materialize(link, infinity, infinity, keys(1,2)).
materialize(cost, infinity, infinity, keys(1,2,3)).
materialize(mincost, infinity, infinity, keys(1,2)).

mc1 cost(@S,D,C) :- link(@S,D,C).
mc2 cost(@S,D,C) :- link(@S,Z,C1), mincost(@Z,D,C2), S != D, C := C1 + C2, C < 8.
mc3 mincost(@S,D,min<C>) :- cost(@S,D,C).
`

// TestProvenanceCountMatchesTableCount checks the central cross-layer
// invariant of the platform under random topology churn: for every
// visible tuple at every node, the table's derivation count equals the
// total support recorded in the provenance partition. If these ever
// diverge, provenance queries lie about the state.
func TestProvenanceCountMatchesTableCount(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nodes := []string{"n1", "n2", "n3", "n4"}
		e, err := New(mincostTight, nodes, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		type edge struct {
			a, b string
			c    int64
		}
		var live []edge
		for step := 0; step < 14; step++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				i := rng.Intn(len(live))
				ed := live[i]
				live = append(live[:i], live[i+1:]...)
				if err := e.RemoveBiLink(ed.a, ed.b, ed.c); err != nil {
					t.Fatal(err)
				}
			} else {
				a := nodes[rng.Intn(len(nodes))]
				b := nodes[rng.Intn(len(nodes))]
				if a == b || len(live) >= 4 {
					continue
				}
				ed := edge{a, b, 1}
				dup := false
				for _, x := range live {
					if (x.a == ed.a && x.b == ed.b) || (x.a == ed.b && x.b == ed.a) {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
				live = append(live, ed)
				if err := e.AddBiLink(ed.a, ed.b, ed.c); err != nil {
					t.Fatal(err)
				}
			}
			e.RunQuiescent()
			checkCounts(t, e, seed, step)
		}
	}
}

func checkCounts(t *testing.T, e *Engine, seed int64, step int) {
	t.Helper()
	for _, addr := range e.Nodes() {
		n, _ := e.Node(addr)
		if err := n.Prov.CheckInvariants(); err != nil {
			t.Fatalf("seed %d step %d %s: %v", seed, step, addr, err)
		}
		for _, relName := range n.RT.Store.TableNames() {
			tbl, err := n.RT.Store.Table(relName)
			if err != nil {
				t.Fatal(err)
			}
			for _, tp := range tbl.Tuples() {
				row, _ := tbl.Get(tp.VID())
				support := n.Prov.SupportCount(tp.VID())
				if row.Count != support {
					t.Fatalf("seed %d step %d %s: %s table count %d != provenance support %d",
						seed, step, addr, tp, row.Count, support)
				}
			}
		}
	}
}
