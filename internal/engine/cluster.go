// Distributed execution: N engine processes, each owning a slice of the
// simulated nodes, advance through the same virtual-time schedule in
// lockstep over a simnet.Transport.
//
// The partitioning model is replicate-control, partition-data. Every
// process builds the full engine (all nodes, the full topology) and
// replays the identical input script, so timers, topology changes, and
// service/control traffic (BGP updates, provenance queries) execute
// identically everywhere — they are cheap and keep every process's
// event schedule aligned without any coordination. Only tuple-delta
// traffic (KindDelta) is partitioned: a delta delivery executes solely
// in the process owning the destination node, and deltas bound for a
// remotely-owned node are intercepted at the send hook and shipped as
// epoch-stamped frames instead of entering the local queue.
//
// The cross-process epoch protocol is two Transport exchanges per
// round, each a barrier:
//
//	frames:  ship the deltas emitted by the last executed instant;
//	         owners inject them at their original virtual timestamps.
//	propose: every process offers its earliest pending timestamp and a
//	         "state changed since last cut" bit. The cut T is the
//	         minimum offer; the global change bit is the OR.
//
// After the propose barrier every process observes the same consistent
// cut — the previous instant is fully executed everywhere and all its
// deltas have been claimed — so the snapshot observer commits there,
// minting the same dense version sequence in every process. Then each
// process advances its clock to T and executes the instant if it owns
// events at T. Quiescence (no offers) ends the drain. Combined with the
// canonical intra-epoch event order (scheduler.go), this reproduces the
// single-process schedule exactly: same states, same provenance, same
// per-link coalescing, byte-identical snapshots.
package engine

import (
	"fmt"

	"repro/internal/simnet"
)

// DistObserver is the distributed counterpart of the epoch observer: a
// snapshot publisher split into a local scan and a cut-aligned commit.
// Probe reports whether any locally-owned node changed since the last
// Commit (sticky: repeated probes accumulate). Commit runs at a global
// cut with the OR of every process's probe bit; it must mint a version
// exactly when changed is true, even if nothing changed locally, so the
// version sequence stays dense and identical across processes.
type DistObserver interface {
	Probe() bool
	Commit(changed bool)
}

// ClusterStats counts distributed-drain work for benchmarking.
type ClusterStats struct {
	Rounds    uint64 // protocol rounds (two transport exchanges each)
	Epochs    uint64 // global virtual instants agreed and advanced to
	FramesOut uint64 // delta frames shipped to peers
	FramesIn  uint64 // delta frames claimed from peers
	BytesOut  uint64 // encoded frame payload bytes broadcast
	BytesIn   uint64 // encoded frame payload bytes received
}

// ClusterError is the loud-failure wrapper for distributed-protocol
// faults: transport errors, undecodable frames, or a node set that
// changed after ownership was frozen. The drain panics with it rather
// than risking silent divergence between processes.
type ClusterError struct {
	Op  string
	Err error
}

func (e *ClusterError) Error() string { return fmt.Sprintf("engine cluster: %s: %v", e.Op, e.Err) }
func (e *ClusterError) Unwrap() error { return e.Err }

// Exchange phases within one protocol round.
const (
	phaseFrames  uint8 = 1
	phasePropose uint8 = 2
)

type cluster struct {
	tr    simnet.Transport
	self  int
	size  int
	owner map[string]int // node addr -> owning member rank
	obs   DistObserver
	step  uint64
	// outbox accumulates remotely-owned deltas intercepted by the send
	// hook, in emission order, until the next frames exchange.
	outbox    []wireFrame
	nodeCount int
	stats     ClusterStats
}

func (c *cluster) nextStep() uint64 { c.step++; return c.step }

// EnableCluster switches the engine into distributed mode over tr.
// Node ownership is frozen at this call: the sorted node list is dealt
// round-robin across the tr.Size() members (the same rule as
// server.ShardOf, so a member's engine slice and its colocated shard
// publisher cover the same nodes). Call it after the engine is fully
// built and any pre-replay facts are loaded, and before attaching a
// snapshot publisher. Once enabled, facts inserted at nodes owned by a
// peer become local no-ops (the peer applies them), and tuple deltas
// addressed to a peer's nodes are shipped through tr during
// RunQuiescent instead of being delivered locally.
func (e *Engine) EnableCluster(tr simnet.Transport) error {
	if e.cluster != nil {
		return fmt.Errorf("engine: cluster already enabled")
	}
	size, self := tr.Size(), tr.Self()
	if size < 1 || self < 0 || self >= size {
		return fmt.Errorf("engine: bad transport shape self=%d size=%d", self, size)
	}
	c := &cluster{
		tr:        tr,
		self:      self,
		size:      size,
		owner:     make(map[string]int, len(e.nodes)),
		nodeCount: len(e.nodes),
	}
	for pos, addr := range e.Nodes() {
		c.owner[addr] = pos % size
	}
	e.cluster = c
	e.Net.SendHook = func(m simnet.Message, deliverAt simnet.Time) bool {
		if m.Kind != KindDelta || e.Owns(m.To) {
			return false
		}
		c.outbox = append(c.outbox, wireFrame{At: deliverAt, Msg: m})
		return true
	}
	return nil
}

// Clustered reports whether the engine runs in distributed mode.
func (e *Engine) Clustered() bool { return e.cluster != nil }

// ClusterSelf returns this member's rank and the cluster size; (0, 1)
// when not clustered.
func (e *Engine) ClusterSelf() (self, size int) {
	if e.cluster == nil {
		return 0, 1
	}
	return e.cluster.self, e.cluster.size
}

// Owns reports whether this process owns the named node. Every node is
// owned when the engine is not clustered.
func (e *Engine) Owns(addr string) bool {
	if e.cluster == nil {
		return true
	}
	r, ok := e.cluster.owner[addr]
	return ok && r == e.cluster.self
}

// SetDistObserver installs the distributed snapshot observer (nil
// detaches). Unlike SetEpochObserver it is only read by the drain on
// the scheduler thread; install it before the first clustered drain.
func (e *Engine) SetDistObserver(o DistObserver) {
	if e.cluster == nil {
		panic("engine: SetDistObserver on non-clustered engine")
	}
	e.cluster.obs = o
}

// ClusterStats returns a copy of the distributed-drain counters.
func (e *Engine) ClusterStats() ClusterStats {
	if e.cluster == nil {
		return ClusterStats{}
	}
	return e.cluster.stats
}

// clusterDrain is the distributed RunQuiescent: the round protocol
// described in the package comment above. Transport failures and
// undecodable peer data panic with *ClusterError — a distributed drain
// that cannot complete must fail loudly, never return a half-advanced
// engine.
func (e *Engine) clusterDrain(pool *workerPool) {
	c := e.cluster
	if len(e.nodes) != c.nodeCount {
		panic(&ClusterError{Op: "drain", Err: fmt.Errorf("node set changed after EnableCluster (%d -> %d)", c.nodeCount, len(e.nodes))})
	}
	for r := 0; ; r++ {
		c.stats.Rounds++
		out := c.outbox
		c.outbox = nil
		payload := encodeFrames(out)
		c.stats.FramesOut += uint64(len(out))
		c.stats.BytesOut += uint64(len(payload))
		reps, err := c.tr.Exchange(c.nextStep(), phaseFrames, payload)
		if err != nil {
			panic(&ClusterError{Op: "frames exchange", Err: err})
		}
		// Claim remote deltas addressed to locally-owned nodes, in
		// member-rank order so injected schedule sequence numbers are
		// deterministic per process.
		for rank := 0; rank < c.size; rank++ {
			if rank == c.self || len(reps[rank]) == 0 {
				continue
			}
			c.stats.BytesIn += uint64(len(reps[rank]))
			frames, err := decodeFrames(reps[rank])
			if err != nil {
				panic(&ClusterError{Op: fmt.Sprintf("decode frames from member %d", rank), Err: err})
			}
			for _, f := range frames {
				if !e.Owns(f.Msg.To) {
					continue
				}
				c.stats.FramesIn++
				e.Net.InjectAt(f.At, f.Msg)
			}
		}
		next, hasNext := e.Net.PeekTime()
		changed := false
		if c.obs != nil {
			changed = c.obs.Probe()
		}
		preps, err := c.tr.Exchange(c.nextStep(), phasePropose, encodePropose(next, hasNext, changed))
		if err != nil {
			panic(&ClusterError{Op: "propose exchange", Err: err})
		}
		cut, haveCut := next, hasNext
		for rank := 0; rank < c.size; rank++ {
			if rank == c.self {
				continue
			}
			pn, ph, pc, err := decodePropose(preps[rank])
			if err != nil {
				panic(&ClusterError{Op: fmt.Sprintf("decode propose from member %d", rank), Err: err})
			}
			changed = changed || pc
			if ph && (!haveCut || pn < cut) {
				cut, haveCut = pn, true
			}
		}
		// The previous instant (or, at r == 0, the caller's pre-drain
		// mutations when the drain turns out to be empty) is a global
		// consistent cut here. Round 0 with pending events commits
		// nothing: the single-process schedule also observes its first
		// cut only after the first instant executes.
		if (r > 0 || !haveCut) && c.obs != nil {
			c.obs.Commit(changed)
		}
		if !haveCut {
			return
		}
		c.stats.Epochs++
		e.Net.AdvanceTo(cut)
		if hasNext && next == cut {
			if ep, ok := e.Net.NextEpoch(); ok {
				e.executeEpoch(ep.Events, pool)
			}
		}
	}
}
