package engine

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/eval"
	"repro/internal/provenance"
	"repro/internal/rel"
	"repro/internal/simnet"
)

const clusterTestProgram = `
materialize(link, infinity, infinity, keys(1,2)).
materialize(cost, infinity, infinity, keys(1,2,3)).
materialize(mincost, infinity, infinity, keys(1,2)).

mc1 cost(@S,D,C) :- link(@S,D,C).
mc2 cost(@S,D,C) :- link(@S,Z,C1), mincost(@Z,D,C2), S != D, C := C1 + C2, C < 64.
mc3 mincost(@S,D,min<C>) :- cost(@S,D,C).
`

var clusterTestNodes = []string{"n1", "n2", "n3", "n4", "n5"}

// driveClusterScript replays the shared topology script: every process
// of a distributed run and the single-process reference run execute
// exactly this.
func driveClusterScript(t *testing.T, e *Engine) {
	t.Helper()
	type edge struct {
		a, b string
		cost int64
	}
	for _, ed := range []edge{
		{"n1", "n2", 1}, {"n2", "n3", 2}, {"n3", "n4", 1}, {"n4", "n5", 3}, {"n1", "n5", 10},
	} {
		if err := e.AddBiLink(ed.a, ed.b, ed.cost); err != nil {
			t.Fatalf("AddBiLink(%s,%s): %v", ed.a, ed.b, err)
		}
	}
	// Churn: drop the shortcut, retract a link, re-add it cheaper.
	if err := e.RemoveBiLink("n1", "n5", 10); err != nil {
		t.Fatalf("RemoveBiLink: %v", err)
	}
	if err := e.AddBiLink("n1", "n5", 2); err != nil {
		t.Fatalf("AddBiLink re-add: %v", err)
	}
}

func nodeTuples(t *testing.T, e *Engine, addr, relName string) []rel.Tuple {
	t.Helper()
	n, ok := e.Node(addr)
	if !ok {
		t.Fatalf("no node %s", addr)
	}
	ts, err := n.Tuples(relName)
	if err != nil {
		t.Fatalf("tuples %s at %s: %v", relName, addr, err)
	}
	return ts
}

// TestClusterParityMemTransport runs the same script single-process and
// as a 3-member in-memory cluster, and asserts every node's final state
// is identical at its owner.
func TestClusterParityMemTransport(t *testing.T) {
	single, err := New(clusterTestProgram, clusterTestNodes, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Drain through the epoch scheduler (what any snapshot-publishing
	// deployment runs), so per-link coalescing is comparable with the
	// distributed drain.
	single.SetEpochObserver(func() {})
	driveClusterScript(t, single)

	const members = 3
	mc := simnet.NewMemCluster(members)
	engines := make([]*Engine, members)
	var wg sync.WaitGroup
	errs := make(chan error, members)
	for i := 0; i < members; i++ {
		eng, err := New(clusterTestProgram, clusterTestNodes, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.EnableCluster(mc.Member(i)); err != nil {
			t.Fatal(err)
		}
		engines[i] = eng
		wg.Add(1)
		go func(eng *Engine, rank int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mc.Close() // unblock peers stuck in Exchange
					errs <- fmt.Errorf("member %d: %v", rank, r)
				}
			}()
			driveClusterScript(t, eng)
		}(eng, i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	sorted := single.Nodes()
	for pos, addr := range sorted {
		owner := engines[pos%members]
		if !owner.Owns(addr) {
			t.Fatalf("member %d does not own %s", pos%members, addr)
		}
		for _, relName := range []string{"link", "cost", "mincost"} {
			want := nodeTuples(t, single, addr, relName)
			got := nodeTuples(t, owner, addr, relName)
			if len(want) != len(got) {
				t.Fatalf("%s at %s: single has %d tuples, cluster owner has %d", relName, addr, len(want), len(got))
			}
			for i := range want {
				if !want[i].Equal(got[i]) {
					t.Fatalf("%s at %s tuple %d: single %s vs cluster %s", relName, addr, i, want[i], got[i])
				}
			}
		}
		// Published traffic counters must match too: coalescing parity
		// is part of the byte-identical snapshot claim.
		ws, _, _ := single.Net.NodeTraffic(addr)
		gs, _, _ := owner.Net.NodeTraffic(addr)
		if ws != gs {
			t.Fatalf("sent traffic at %s: single %+v vs cluster owner %+v", addr, ws, gs)
		}
	}
}

// TestClusterTransportFailureIsLoud verifies the protocol's loud-failure
// contract: when the transport dies mid-drain, RunQuiescent panics with
// a *ClusterError instead of returning a half-advanced engine.
func TestClusterTransportFailureIsLoud(t *testing.T) {
	mc := simnet.NewMemCluster(2)
	eng, err := New(clusterTestProgram, clusterTestNodes, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.EnableCluster(mc.Member(0)); err != nil {
		t.Fatal(err)
	}
	mc.Close()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic from drain over closed transport")
		}
		if _, ok := r.(*ClusterError); !ok {
			t.Fatalf("expected *ClusterError, got %T: %v", r, r)
		}
	}()
	_ = eng.AddBiLink("n1", "n2", 1)
}

func TestWireFramesRoundTrip(t *testing.T) {
	tup := rel.NewTuple("cost", rel.Addr("n1"), rel.Addr("n2"), rel.Int(7))
	frames := []wireFrame{
		{At: 42, Msg: simnet.Message{From: "n1", To: "n2", Kind: KindDelta, Reliable: true, Size: 33,
			Payload: DeltaMsg{Delta: eval.Delta{Tuple: tup, Sign: 1}}}},
		{At: 43, Msg: simnet.Message{From: "n2", To: "n3", Kind: KindDelta, Reliable: true, Size: 99,
			Payload: DeltaBatch{Msgs: []DeltaMsg{
				{Delta: eval.Delta{Tuple: tup, Sign: -1}},
				{Delta: eval.Delta{Tuple: tup, Sign: 1}, HasProv: true,
					Prov: provenance.Entry{VID: tup.VID(), RID: rel.HashBytes([]byte("rid")), RLoc: "n2"}},
			}}}},
	}
	got, err := decodeFrames(encodeFrames(frames))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(frames) {
		t.Fatalf("round trip count %d != %d", len(got), len(frames))
	}
	if got[0].At != 42 || got[0].Msg.From != "n1" || got[0].Msg.Size != 33 || !got[0].Msg.Reliable {
		t.Fatalf("frame 0 mangled: %+v", got[0])
	}
	dm := got[0].Msg.Payload.(DeltaMsg)
	if dm.Delta.Sign != 1 || !dm.Delta.Tuple.Equal(tup) || dm.HasProv {
		t.Fatalf("frame 0 payload mangled: %+v", dm)
	}
	batch := got[1].Msg.Payload.(DeltaBatch)
	if len(batch.Msgs) != 2 || batch.Msgs[0].Delta.Sign != -1 {
		t.Fatalf("frame 1 batch mangled: %+v", batch)
	}
	if !batch.Msgs[1].HasProv || batch.Msgs[1].Prov.RLoc != "n2" {
		t.Fatalf("frame 1 prov mangled: %+v", batch.Msgs[1])
	}

	if _, err := decodeFrames([]byte{0xff, 0xff, 0xff}); err == nil {
		t.Fatal("corrupt frames decoded without error")
	}
	if _, err := decodeFrames(append(encodeFrames(frames), 0)); err == nil {
		t.Fatal("trailing garbage decoded without error")
	}
}
