// Wire codec for the distributed epoch protocol (cluster.go): the
// deterministic binary encoding of intercepted delta messages and of
// the per-round cut proposal. These bytes are what a simnet.Transport
// carries; the TCP framing/CRC layer around them lives in
// internal/nettransport.
package engine

import (
	"encoding/binary"
	"fmt"

	"repro/internal/provenance"
	"repro/internal/rel"
	"repro/internal/simnet"
)

// wireFrame is one intercepted delta delivery: the message plus the
// absolute virtual instant it must be injected at by the owner.
type wireFrame struct {
	At  simnet.Time
	Msg simnet.Message
}

// Payload kind tags inside a frame.
const (
	wireDeltaMsg   uint8 = 1
	wireDeltaBatch uint8 = 2
)

func putUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return append(b, tmp[:binary.PutUvarint(tmp[:], v)]...)
}

func putString(b []byte, s string) []byte {
	b = putUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func putBytes(b, p []byte) []byte {
	b = putUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// wireReader decodes the varint-framed stream; all take methods set err
// once and then no-op, so decode loops stay linear.
type wireReader struct {
	b   []byte
	err error
}

func (r *wireReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: truncated or malformed %s", what)
	}
}

func (r *wireReader) takeUvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *wireReader) takeBytes(what string) []byte {
	n := r.takeUvarint(what)
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)) {
		r.fail(what)
		return nil
	}
	p := r.b[:n]
	r.b = r.b[n:]
	return p
}

func (r *wireReader) takeString(what string) string { return string(r.takeBytes(what)) }

func (r *wireReader) takeByte(what string) uint8 {
	if r.err != nil {
		return 0
	}
	if len(r.b) == 0 {
		r.fail(what)
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *wireReader) takeID(what string) rel.ID {
	var id rel.ID
	if r.err != nil {
		return id
	}
	if len(r.b) < len(id) {
		r.fail(what)
		return id
	}
	copy(id[:], r.b)
	r.b = r.b[len(id):]
	return id
}

func encodeDeltaMsg(b []byte, dm DeltaMsg) []byte {
	b = putBytes(b, rel.MarshalTuple(dm.Delta.Tuple))
	if dm.Delta.Sign >= 0 {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	if !dm.HasProv {
		return append(b, 0)
	}
	b = append(b, 1)
	b = append(b, dm.Prov.VID[:]...)
	b = append(b, dm.Prov.RID[:]...)
	return putString(b, dm.Prov.RLoc)
}

func (r *wireReader) takeDeltaMsg() DeltaMsg {
	var dm DeltaMsg
	raw := r.takeBytes("delta tuple")
	if r.err == nil {
		t, err := rel.UnmarshalTuple(raw)
		if err != nil {
			r.err = fmt.Errorf("wire: delta tuple: %w", err)
			return dm
		}
		dm.Delta.Tuple = t
	}
	if r.takeByte("delta sign") == 1 {
		dm.Delta.Sign = 1
	} else {
		dm.Delta.Sign = -1
	}
	if r.takeByte("delta hasProv") == 1 {
		dm.HasProv = true
		dm.Prov = provenance.Entry{
			VID:  r.takeID("delta prov VID"),
			RID:  r.takeID("delta prov RID"),
			RLoc: r.takeString("delta prov RLoc"),
		}
	}
	return dm
}

// encodeFrames serializes an outbox for one frames exchange. The layout
// is length-framed throughout: count, then per frame the virtual
// deliver-at instant, endpoints, accounted size, and the delta payload
// (a single DeltaMsg or a coalesced DeltaBatch).
func encodeFrames(frames []wireFrame) []byte {
	var b []byte
	b = putUvarint(b, uint64(len(frames)))
	for _, f := range frames {
		b = putUvarint(b, uint64(f.At))
		b = putString(b, f.Msg.From)
		b = putString(b, f.Msg.To)
		b = putUvarint(b, uint64(f.Msg.Size))
		switch p := f.Msg.Payload.(type) {
		case DeltaMsg:
			b = append(b, wireDeltaMsg)
			b = encodeDeltaMsg(b, p)
		case DeltaBatch:
			b = append(b, wireDeltaBatch)
			b = putUvarint(b, uint64(len(p.Msgs)))
			for _, dm := range p.Msgs {
				b = encodeDeltaMsg(b, dm)
			}
		default:
			panic(fmt.Sprintf("engine: cannot ship non-delta payload %T", f.Msg.Payload))
		}
	}
	return b
}

func decodeFrames(b []byte) ([]wireFrame, error) {
	r := &wireReader{b: b}
	n := r.takeUvarint("frame count")
	if n > uint64(len(b)) { // each frame takes >= 1 byte
		return nil, fmt.Errorf("wire: frame count %d exceeds payload", n)
	}
	frames := make([]wireFrame, 0, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		var f wireFrame
		f.At = simnet.Time(r.takeUvarint("frame at"))
		f.Msg.From = r.takeString("frame from")
		f.Msg.To = r.takeString("frame to")
		f.Msg.Size = int(r.takeUvarint("frame size"))
		f.Msg.Kind = KindDelta
		f.Msg.Reliable = true
		switch kind := r.takeByte("frame payload kind"); kind {
		case wireDeltaMsg:
			f.Msg.Payload = r.takeDeltaMsg()
		case wireDeltaBatch:
			cnt := r.takeUvarint("batch count")
			if cnt > uint64(len(b)) {
				r.err = fmt.Errorf("wire: batch count %d exceeds payload", cnt)
				break
			}
			batch := DeltaBatch{Msgs: make([]DeltaMsg, 0, cnt)}
			for j := uint64(0); j < cnt && r.err == nil; j++ {
				batch.Msgs = append(batch.Msgs, r.takeDeltaMsg())
			}
			f.Msg.Payload = batch
		default:
			if r.err == nil {
				r.err = fmt.Errorf("wire: unknown payload kind %d", kind)
			}
		}
		frames = append(frames, f)
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after frames", len(r.b))
	}
	return frames, nil
}

// encodePropose serializes one cut proposal: flag bits (bit0 = has a
// pending timestamp, bit1 = state changed since the last cut) plus the
// timestamp itself.
func encodePropose(next simnet.Time, hasNext, changed bool) []byte {
	var flags byte
	if hasNext {
		flags |= 1
	}
	if changed {
		flags |= 2
	}
	b := []byte{flags}
	return putUvarint(b, uint64(next))
}

func decodePropose(b []byte) (next simnet.Time, hasNext, changed bool, err error) {
	r := &wireReader{b: b}
	flags := r.takeByte("propose flags")
	next = simnet.Time(r.takeUvarint("propose next"))
	if r.err != nil {
		return 0, false, false, r.err
	}
	if len(r.b) != 0 {
		return 0, false, false, fmt.Errorf("wire: %d trailing bytes after propose", len(r.b))
	}
	return next, flags&1 != 0, flags&2 != 0, nil
}
