package provenance

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/rel"
)

// Groundwork for the paper's second ongoing-work item (secure network
// provenance, ref [9]): tamper-evident commitments over each node's
// provenance partition, and a cross-node consistency auditor. A full
// SNP implementation adds authenticated channels and evidence
// protocols; the commitment/audit layer below provides the integrity
// primitives those protocols check.

// Commitment binds a node to the exact contents of its provenance
// partition at a version.
type Commitment struct {
	Addr    string
	Version uint64
	Digest  rel.ID
}

// Digest computes a deterministic hash over the partition's rendered
// prov and ruleExec relations (sorted canonical encodings).
func (s *Store) Digest() rel.ID {
	var buf bytes.Buffer
	for _, t := range s.ProvTuples() {
		rel.EncodeTuple(&buf, t)
	}
	for _, t := range s.ExecTuples() {
		rel.EncodeTuple(&buf, t)
	}
	return rel.HashBytes(buf.Bytes())
}

// Commit returns the current commitment.
func (s *Store) Commit() Commitment {
	return Commitment{Addr: s.addr, Version: s.Version(), Digest: s.Digest()}
}

// VerifyCommitment recomputes the digest and compares. A mismatch at
// the same version means the partition was tampered with outside the
// maintenance API.
func VerifyCommitment(s *Store, c Commitment) error {
	if s.addr != c.Addr {
		return fmt.Errorf("provenance: commitment for %s checked against %s", c.Addr, s.addr)
	}
	if s.Version() != c.Version {
		return fmt.Errorf("provenance: version moved from %d to %d; re-commit", c.Version, s.Version())
	}
	if got := s.Digest(); got != c.Digest {
		return fmt.Errorf("provenance: digest mismatch at version %d: partition was modified", c.Version)
	}
	return nil
}

// Audit cross-checks a set of partitions (addr -> store) for
// distributed referential integrity:
//
//  1. every derived prov entry at node A names a rule execution that
//     exists at its claimed RLoc;
//  2. every rule execution's input VIDs are pinned at the executing
//     node;
//  3. every rule execution supports at least one prov entry somewhere
//     (no orphan executions).
//
// It returns human-readable findings, empty when consistent.
func Audit(stores map[string]*Store) []string {
	var findings []string
	addrs := make([]string, 0, len(stores))
	for a := range stores {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)

	referenced := map[rel.ID]bool{}
	for _, a := range addrs {
		s := stores[a]
		s.mu.RLock()
		for vid, list := range s.prov {
			for _, ce := range list {
				e := ce.entry
				if e.RID.IsZero() {
					continue
				}
				referenced[e.RID] = true
				home, ok := stores[e.RLoc]
				if !ok {
					findings = append(findings, fmt.Sprintf(
						"%s: prov entry for %s names unknown node %s", a, vid.Short(), e.RLoc))
					continue
				}
				if _, ok := home.Exec(e.RID); !ok {
					findings = append(findings, fmt.Sprintf(
						"%s: prov entry for %s references missing exec %s at %s",
						a, vid.Short(), e.RID.Short(), e.RLoc))
				}
			}
		}
		s.mu.RUnlock()
	}
	for _, a := range addrs {
		s := stores[a]
		s.mu.RLock()
		for rid, ce := range s.exec {
			for _, vid := range ce.exec.VIDs {
				if _, ok := s.pins[vid]; !ok {
					findings = append(findings, fmt.Sprintf(
						"%s: exec %s input %s not pinned", a, rid.Short(), vid.Short()))
				}
			}
			if !referenced[rid] {
				findings = append(findings, fmt.Sprintf(
					"%s: exec %s supports no prov entry anywhere", a, rid.Short()))
			}
		}
		s.mu.RUnlock()
	}
	sort.Strings(findings)
	return findings
}

// TamperAddProv injects a forged prov entry, bypassing maintenance.
// Test-only hook for exercising VerifyCommitment and Audit.
func (s *Store) TamperAddProv(t rel.Tuple, e Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.addEntryLocked(t, e)
}

// TamperAddExec injects a forged rule execution, bypassing maintenance.
// Test-only hook for exercising traversal over adversarial graphs.
func (s *Store) TamperAddExec(rid rel.ID, rule string, inputs []rel.Tuple) {
	s.mu.Lock()
	defer s.mu.Unlock()
	vids := make([]rel.ID, len(inputs))
	for i, in := range inputs {
		vids[i] = in.VID()
		s.pinTuple(in)
	}
	s.exec[rid] = &countedExec{exec: ExecEntry{RID: rid, Rule: rule, VIDs: vids}, count: 1}
	s.version++
}
