package provenance

import (
	"strings"
	"testing"

	"repro/internal/eval"
	"repro/internal/rel"
)

func twoNodeGraph(t *testing.T) (map[string]*Store, rel.Tuple, Entry) {
	t.Helper()
	a := NewStore("a")
	b := NewStore("b")
	lk := linkT("a", "b", 1)
	out := reachT("b", "a")
	a.AddBase(lk)
	e := a.RecordFiring(firing("r1", []rel.Tuple{lk}, out, "b", 1))
	b.ApplyRemote(out, e, 1)
	return map[string]*Store{"a": a, "b": b}, out, e
}

func TestCommitVerifyRoundTrip(t *testing.T) {
	stores, _, _ := twoNodeGraph(t)
	for _, s := range stores {
		c := s.Commit()
		if err := VerifyCommitment(s, c); err != nil {
			t.Fatal(err)
		}
	}
}

func TestVerifyCommitmentDetectsTamper(t *testing.T) {
	stores, _, _ := twoNodeGraph(t)
	s := stores["b"]
	c := s.Commit()
	// Forge an entry without going through maintenance, then restore
	// the version counter illusion by checking digest at same version:
	// TamperAddProv bumps nothing version-wise? It must not be
	// detectable only via version.
	forged := reachT("b", "zz")
	s.TamperAddProv(forged, Entry{VID: forged.VID()})
	if s.Version() != c.Version {
		// Tampering that moves the version is caught trivially; the
		// digest check matters when the counter is forged back.
		if err := VerifyCommitment(s, c); err == nil {
			t.Fatal("moved version must not verify")
		}
		s.version = c.Version
	}
	err := VerifyCommitment(s, c)
	if err == nil || !strings.Contains(err.Error(), "digest mismatch") {
		t.Fatalf("tamper not detected: %v", err)
	}
}

func TestVerifyCommitmentWrongNode(t *testing.T) {
	stores, _, _ := twoNodeGraph(t)
	c := stores["a"].Commit()
	if err := VerifyCommitment(stores["b"], c); err == nil {
		t.Fatal("cross-node commitment must fail")
	}
}

func TestAuditCleanSystem(t *testing.T) {
	stores, _, _ := twoNodeGraph(t)
	if findings := Audit(stores); len(findings) != 0 {
		t.Fatalf("findings on clean system: %v", findings)
	}
}

func TestAuditDetectsMissingExec(t *testing.T) {
	stores, _, _ := twoNodeGraph(t)
	// Forge a prov entry at b referencing a nonexistent exec at a.
	forged := reachT("b", "x")
	stores["b"].TamperAddProv(forged, Entry{
		VID:  forged.VID(),
		RID:  rel.HashBytes([]byte("bogus")),
		RLoc: "a",
	})
	findings := Audit(stores)
	if len(findings) == 0 {
		t.Fatal("forged derivation not detected")
	}
	found := false
	for _, f := range findings {
		if strings.Contains(f, "missing exec") {
			found = true
		}
	}
	if !found {
		t.Fatalf("findings = %v", findings)
	}
}

func TestAuditDetectsUnknownNode(t *testing.T) {
	stores, _, _ := twoNodeGraph(t)
	forged := reachT("b", "x")
	stores["b"].TamperAddProv(forged, Entry{
		VID:  forged.VID(),
		RID:  rel.HashBytes([]byte("bogus")),
		RLoc: "mallory",
	})
	findings := Audit(stores)
	if len(findings) != 1 || !strings.Contains(findings[0], "unknown node") {
		t.Fatalf("findings = %v", findings)
	}
}

func TestAuditDetectsOrphanExec(t *testing.T) {
	stores, out, e := twoNodeGraph(t)
	// Remove the prov entry at b but leave the exec at a.
	stores["b"].ApplyRemote(out, e, -1)
	findings := Audit(stores)
	if len(findings) != 1 || !strings.Contains(findings[0], "supports no prov entry") {
		t.Fatalf("findings = %v", findings)
	}
}

func TestDigestChangesWithContent(t *testing.T) {
	a := NewStore("a")
	d0 := a.Digest()
	a.AddBase(linkT("a", "b", 1))
	d1 := a.Digest()
	if d0 == d1 {
		t.Fatal("digest must change with content")
	}
	a.RemoveBase(linkT("a", "b", 1))
	if a.Digest() != d0 {
		t.Fatal("digest must return to the empty-partition value")
	}
}

func TestAuditWithEvalFirings(t *testing.T) {
	// A slightly larger graph via real firing records.
	a := NewStore("a")
	lk1 := linkT("a", "b", 1)
	lk2 := linkT("a", "c", 2)
	out := reachT("a", "b")
	a.AddBase(lk1)
	a.AddBase(lk2)
	a.RecordFiring(eval.Firing{RuleName: "r1", Inputs: []rel.Tuple{lk1, lk2}, Output: out, OutputLoc: "a", Sign: 1})
	if findings := Audit(map[string]*Store{"a": a}); len(findings) != 0 {
		t.Fatalf("findings = %v", findings)
	}
}
