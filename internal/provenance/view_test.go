package provenance

import (
	"math/rand"
	"reflect"
	"strconv"
	"testing"

	"repro/internal/eval"
	"repro/internal/rel"
)

func viewTestTuple(i int) rel.Tuple {
	return rel.NewTuple("route", rel.Addr("as"+strconv.Itoa(i%61)), rel.Int(int64(i)))
}

// checkViewMatchesStore asserts the frozen view answers every query the
// store answers (and none it doesn't), over the given key universe.
func checkViewMatchesStore(t *testing.T, s *Store, v *View, step int, universe []rel.Tuple) {
	t.Helper()
	if v.Version() != s.Version() {
		t.Fatalf("step %d: view version %d != store %d", step, v.Version(), s.Version())
	}
	if got, want := v.Statistics(), s.Statistics(); got != want {
		t.Fatalf("step %d: view stats %+v != store %+v", step, got, want)
	}
	for _, tp := range universe {
		vid := tp.VID()
		sd, sok := s.Derivations(vid)
		vd, vok := v.Derivations(vid)
		if sok != vok || len(sd) != len(vd) {
			t.Fatalf("step %d: Derivations(%s) view (%d,%v) != store (%d,%v)",
				step, vid.Short(), len(vd), vok, len(sd), sok)
		}
		for i := range sd {
			if sd[i] != vd[i] {
				t.Fatalf("step %d: Derivations(%s)[%d] mismatch", step, vid.Short(), i)
			}
		}
		st, sok := s.TupleOf(vid)
		vt, vok := v.TupleOf(vid)
		if sok != vok || (sok && st.Compare(vt) != 0) {
			t.Fatalf("step %d: TupleOf(%s) mismatch", step, vid.Short())
		}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for rid := range s.exec {
		se := s.exec[rid]
		ve, ok := v.Exec(rid)
		if !ok || ve.Rule != se.exec.Rule || len(ve.VIDs) != len(se.exec.VIDs) {
			t.Fatalf("step %d: Exec(%s) mismatch", step, rid.Short())
		}
	}
}

// TestViewIncrementalEquivalence drives a random mutation workload and
// checks after every freeze that the incrementally advanced view is
// indistinguishable from what a from-scratch rebuild would produce.
func TestViewIncrementalEquivalence(t *testing.T) {
	s := NewStore("n1")
	rng := rand.New(rand.NewSource(42))
	var universe []rel.Tuple
	for i := 0; i < 300; i++ {
		universe = append(universe, viewTestTuple(i))
	}
	live := map[int]int{}

	for step := 0; step < 4000; step++ {
		i := rng.Intn(len(universe))
		tp := universe[i]
		switch {
		case rng.Intn(3) != 0 || live[i] == 0:
			s.AddBase(tp)
			live[i]++
		default:
			s.RemoveBase(tp)
			live[i]--
		}
		if rng.Intn(5) == 0 {
			// Derived entries and rule executions via RecordFiring, both signs.
			in := universe[rng.Intn(len(universe))]
			out := universe[rng.Intn(len(universe))]
			f := eval.Firing{RuleName: "r" + strconv.Itoa(rng.Intn(4)),
				Inputs: []rel.Tuple{in}, Output: out, OutputLoc: "n1", Sign: 1}
			s.RecordFiring(f)
			if rng.Intn(2) == 0 {
				f.Sign = -1
				s.RecordFiring(f)
			}
		}
		if step%137 == 0 {
			v := s.View()
			checkViewMatchesStore(t, s, v, step, universe)
			if s.View() != v {
				t.Fatalf("step %d: View at unchanged version rebuilt", step)
			}
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	checkViewMatchesStore(t, s, s.View(), -1, universe)
}

// bucketPointers extracts the identity of every per-bucket map so tests
// can prove structural sharing across view versions.
func bucketPointers[V any](b buckets[V]) []uintptr {
	out := make([]uintptr, len(b.m))
	for i, m := range b.m {
		out[i] = reflect.ValueOf(m).Pointer()
	}
	return out
}

func sharedCount(a, b []uintptr) (shared, total int) {
	if len(a) != len(b) {
		return 0, len(b)
	}
	for i := range a {
		if a[i] == b[i] {
			shared++
		}
	}
	return shared, len(b)
}

// TestViewBucketSharing is the tentpole invariant for the provenance
// side: after a single mutation, the next view shares all but O(1)
// buckets with the previous one, and the previous view still reads its
// original contents.
func TestViewBucketSharing(t *testing.T) {
	s := NewStore("n1")
	for i := 0; i < 2000; i++ {
		s.AddBase(viewTestTuple(i))
	}
	v1 := s.View()
	if len(v1.prov.m) < 2 {
		t.Fatalf("want a multi-bucket directory, got %d buckets", len(v1.prov.m))
	}
	probe := viewTestTuple(7)
	wantDerivs, _ := v1.Derivations(probe.VID())

	s.AddBase(viewTestTuple(99991))
	v2 := s.View()
	if v1 == v2 {
		t.Fatal("mutation did not produce a new view")
	}
	shared, total := sharedCount(bucketPointers(v1.prov), bucketPointers(v2.prov))
	if total-shared > 2 {
		t.Fatalf("single mutation cloned %d of %d prov buckets (want ≤ 2)", total-shared, total)
	}
	shared, total = sharedCount(bucketPointers(v1.pins), bucketPointers(v2.pins))
	if total-shared > 2 {
		t.Fatalf("single mutation cloned %d of %d pin buckets (want ≤ 2)", total-shared, total)
	}
	// The old view is untouched by the mutation (no aliasing).
	gotDerivs, ok := v1.Derivations(probe.VID())
	if !ok || len(gotDerivs) != len(wantDerivs) {
		t.Fatal("prior view changed after store mutation")
	}
	if _, ok := v1.TupleOf(viewTestTuple(99991).VID()); ok {
		t.Fatal("prior view sees a tuple pinned after it was frozen")
	}
	if _, ok := v2.TupleOf(viewTestTuple(99991).VID()); !ok {
		t.Fatal("new view missing the new pin")
	}

	// Removal: the removed key disappears from the new view only.
	s.RemoveBase(probe)
	v3 := s.View()
	if _, ok := v3.Derivations(probe.VID()); ok {
		t.Fatal("new view still derives a removed base tuple")
	}
	if _, ok := v2.Derivations(probe.VID()); !ok {
		t.Fatal("prior view lost a derivation after a later removal")
	}
}

// TestViewGrowRebuild: when the directory outgrows its spine the next
// view rebuilds at the larger size and subsequent updates are
// incremental again at the new size.
func TestViewGrowRebuild(t *testing.T) {
	s := NewStore("n1")
	s.AddBase(viewTestTuple(0))
	v1 := s.View()
	small := len(v1.prov.m)
	for i := 1; i < 5000; i++ {
		s.AddBase(viewTestTuple(i))
	}
	v2 := s.View()
	if len(v2.prov.m) <= small {
		t.Fatalf("directory did not grow: %d -> %d buckets", small, len(v2.prov.m))
	}
	s.AddBase(viewTestTuple(99999))
	v3 := s.View()
	if len(v3.prov.m) != len(v2.prov.m) {
		t.Fatal("steady-state update changed the spine size")
	}
	shared, total := sharedCount(bucketPointers(v2.prov), bucketPointers(v3.prov))
	if total-shared > 2 {
		t.Fatalf("post-grow update cloned %d of %d buckets", total-shared, total)
	}
}
