// Package provenance implements ExSPAN's network provenance model: the
// provenance graph G(V,E) whose vertices are tuples and rule executions,
// maintained incrementally as distributed relations partitioned across
// nodes:
//
//	prov(@Loc, VID, RID, RLoc)      — tuple VID at Loc has a derivation
//	                                  produced by rule execution RID at
//	                                  RLoc; base tuples use the zero RID.
//	ruleExec(@RLoc, RID, Rule, VIDs) — rule execution RID at RLoc ran
//	                                  Rule over input tuples VIDs (all
//	                                  local to RLoc after localization).
//
// Each node owns one Store holding its partition plus a pin table
// mapping VIDs to tuple values so queries can render attributes.
package provenance

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/eval"
	"repro/internal/rel"
)

// Entry is one prov-table row: a single derivation of a tuple.
type Entry struct {
	VID  rel.ID
	RID  rel.ID // rel.ZeroID marks a base-tuple derivation
	RLoc string // node where the rule executed ("" for base)
}

// ExecEntry is one ruleExec-table row: a rule execution's inputs. The
// inputs are tuples local to the executing node.
type ExecEntry struct {
	RID  rel.ID
	Rule string
	VIDs []rel.ID
}

type countedEntry struct {
	entry Entry
	count int
}

type countedExec struct {
	exec  ExecEntry
	count int
}

type pin struct {
	tuple rel.Tuple
	refs  int
}

// Store is one node's partition of the provenance graph.
type Store struct {
	mu   sync.RWMutex
	addr string
	// prov: VID -> derivation entries (with duplicate counting).
	prov map[rel.ID][]*countedEntry
	// exec: RID -> rule execution.
	exec map[rel.ID]*countedExec
	// pins: VID -> tuple value, refcounted by prov entries and by exec
	// input references.
	pins map[rel.ID]*pin
	// version increments on every mutation; the query cache uses it for
	// conservative invalidation.
	version uint64
	// view caches the last frozen View built at the current version.
	// Rebuilding advances it incrementally: the dirty sets below record
	// which keys mutated since that view, so View() clones only the
	// buckets holding them (O(mutations), not O(partition)).
	view      *View
	dirtyProv map[rel.ID]struct{}
	dirtyExec map[rel.ID]struct{}
	dirtyPins map[rel.ID]struct{}
	// provCount tracks the number of distinct prov rows incrementally so
	// Statistics (and every published NodeInfo) is O(1), not O(prov).
	provCount int
}

// NewStore creates the provenance partition for one node.
func NewStore(addr string) *Store {
	return &Store{
		addr:      addr,
		prov:      map[rel.ID][]*countedEntry{},
		exec:      map[rel.ID]*countedExec{},
		pins:      map[rel.ID]*pin{},
		dirtyProv: map[rel.ID]struct{}{},
		dirtyExec: map[rel.ID]struct{}{},
		dirtyPins: map[rel.ID]struct{}{},
	}
}

// Addr returns the owning node's address.
func (s *Store) Addr() string { return s.addr }

// Version returns the mutation counter.
func (s *Store) Version() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

func (s *Store) pinTuple(t rel.Tuple) {
	vid := t.VID()
	if p, ok := s.pins[vid]; ok {
		p.refs++ // refcount-only change: the view's pinned value is the same
		return
	}
	s.pins[vid] = &pin{tuple: t, refs: 1}
	s.dirtyPins[vid] = struct{}{}
}

func (s *Store) unpin(vid rel.ID) {
	p, ok := s.pins[vid]
	if !ok {
		return
	}
	p.refs--
	if p.refs <= 0 {
		delete(s.pins, vid)
		s.dirtyPins[vid] = struct{}{}
	}
}

// AddBase records a base-tuple insertion at this node.
func (s *Store) AddBase(t rel.Tuple) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.version++
	s.addEntryLocked(t, Entry{VID: t.VID()})
}

// RemoveBase retracts a base-tuple derivation.
func (s *Store) RemoveBase(t rel.Tuple) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.version++
	s.removeEntryLocked(t.VID(), Entry{VID: t.VID()})
}

func (s *Store) addEntryLocked(t rel.Tuple, e Entry) {
	for _, ce := range s.prov[e.VID] {
		if ce.entry == e {
			ce.count++ // count-only change: the view's entry list is the same
			s.pinTuple(t)
			return
		}
	}
	s.prov[e.VID] = append(s.prov[e.VID], &countedEntry{entry: e, count: 1})
	s.provCount++
	s.dirtyProv[e.VID] = struct{}{}
	s.pinTuple(t)
}

func (s *Store) removeEntryLocked(vid rel.ID, e Entry) {
	list := s.prov[vid]
	for i, ce := range list {
		if ce.entry == e {
			ce.count--
			s.unpin(vid)
			if ce.count <= 0 {
				list[i] = list[len(list)-1]
				list = list[:len(list)-1]
				if len(list) == 0 {
					delete(s.prov, vid)
				} else {
					s.prov[vid] = list
				}
				s.provCount--
				s.dirtyProv[vid] = struct{}{}
			}
			return
		}
	}
}

// RecordFiring ingests one rule execution (or its retraction) that ran
// at this node. It returns the derivation entry for the output tuple so
// the engine can either apply it locally (output at this node) or attach
// it to the outgoing delta message.
func (s *Store) RecordFiring(f eval.Firing) Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.version++
	vids := make([]rel.ID, len(f.Inputs))
	for i, in := range f.Inputs {
		vids[i] = in.VID()
	}
	rid := eval.RuleExecID(f.RuleName, s.addr, vids)
	e := Entry{VID: f.Output.VID(), RID: rid, RLoc: s.addr}
	if f.Sign > 0 {
		if ce, ok := s.exec[rid]; ok {
			ce.count++ // count-only change: the view's exec row is the same
		} else {
			s.exec[rid] = &countedExec{exec: ExecEntry{RID: rid, Rule: f.RuleName, VIDs: vids}, count: 1}
			s.dirtyExec[rid] = struct{}{}
			for _, in := range f.Inputs {
				s.pinTuple(in)
			}
		}
		if f.OutputLoc == s.addr {
			s.addEntryLocked(f.Output, e)
		}
	} else {
		if ce, ok := s.exec[rid]; ok {
			ce.count--
			if ce.count <= 0 {
				delete(s.exec, rid)
				s.dirtyExec[rid] = struct{}{}
				for _, vid := range vids {
					s.unpin(vid)
				}
			}
		}
		if f.OutputLoc == s.addr {
			s.removeEntryLocked(f.Output.VID(), e)
		}
	}
	return e
}

// ApplyRemote records (or retracts) a derivation entry for a tuple that
// arrived from another node, where the rule executed.
func (s *Store) ApplyRemote(t rel.Tuple, e Entry, sign int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.version++
	if sign > 0 {
		s.addEntryLocked(t, e)
	} else {
		s.removeEntryLocked(t.VID(), e)
	}
}

// Derivations returns the derivation entries of a tuple at this node,
// sorted deterministically. ok is false when the tuple is unknown here.
func (s *Store) Derivations(vid rel.ID) ([]Entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	list, ok := s.prov[vid]
	if !ok {
		return nil, false
	}
	out := make([]Entry, len(list))
	for i, ce := range list {
		out[i] = ce.entry
	}
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].RID.Compare(out[j].RID); c != 0 {
			return c < 0
		}
		return out[i].RLoc < out[j].RLoc
	})
	return out, true
}

// SupportCount returns the total number of derivations (including
// duplicate firings of the same rule execution) currently supporting a
// tuple at this node. It equals the tuple's table derivation count when
// maintenance is consistent.
func (s *Store) SupportCount(vid rel.ID) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, ce := range s.prov[vid] {
		n += ce.count
	}
	return n
}

// Exec returns the rule execution for a RID at this node.
func (s *Store) Exec(rid rel.ID) (ExecEntry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ce, ok := s.exec[rid]
	if !ok {
		return ExecEntry{}, false
	}
	out := ce.exec
	out.VIDs = append([]rel.ID(nil), ce.exec.VIDs...)
	return out, true
}

// TupleOf resolves a pinned VID to its tuple value.
func (s *Store) TupleOf(vid rel.ID) (rel.Tuple, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.pins[vid]
	if !ok {
		return rel.Tuple{}, false
	}
	return p.tuple, true
}

// Stats summarizes the partition's size.
type Stats struct {
	ProvEntries int // distinct prov rows
	ExecEntries int // distinct ruleExec rows
	Pins        int
}

// Statistics returns partition sizes in O(1): the distinct prov-row
// count is maintained incrementally by the mutators.
func (s *Store) Statistics() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{ProvEntries: s.provCount, ExecEntries: len(s.exec), Pins: len(s.pins)}
}

// ProvTuples renders the partition as prov(@Loc,VID,RID,RLoc) tuples,
// sorted, for snapshots and assertions.
func (s *Store) ProvTuples() []rel.Tuple {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []rel.Tuple
	for _, list := range s.prov {
		for _, ce := range list {
			out = append(out, rel.NewTuple("prov",
				rel.Addr(s.addr),
				rel.IDValue(ce.entry.VID),
				rel.IDValue(ce.entry.RID),
				rel.Addr(ce.entry.RLoc)))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// ExecTuples renders the partition as ruleExec(@RLoc,RID,Rule,VIDs)
// tuples, sorted.
func (s *Store) ExecTuples() []rel.Tuple {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []rel.Tuple
	for _, ce := range s.exec {
		vids := make([]rel.Value, len(ce.exec.VIDs))
		for i, v := range ce.exec.VIDs {
			vids[i] = rel.IDValue(v)
		}
		out = append(out, rel.NewTuple("ruleExec",
			rel.Addr(s.addr),
			rel.IDValue(ce.exec.RID),
			rel.Str(ce.exec.Rule),
			rel.List(vids...)))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// CheckInvariants validates internal consistency: every prov/exec
// reference resolves to a pin; counts are positive. Used by tests and
// failure-injection suites.
func (s *Store) CheckInvariants() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := 0
	for vid, list := range s.prov {
		if len(list) == 0 {
			return fmt.Errorf("provenance: empty prov list for %s", vid.Short())
		}
		total += len(list)
		for _, ce := range list {
			if ce.count <= 0 {
				return fmt.Errorf("provenance: non-positive prov count for %s", vid.Short())
			}
			if _, ok := s.pins[vid]; !ok {
				return fmt.Errorf("provenance: prov entry for unpinned tuple %s", vid.Short())
			}
			if !ce.entry.RID.IsZero() && ce.entry.RLoc == "" {
				return fmt.Errorf("provenance: derived entry without RLoc for %s", vid.Short())
			}
		}
	}
	for rid, ce := range s.exec {
		if ce.count <= 0 {
			return fmt.Errorf("provenance: non-positive exec count for %s", rid.Short())
		}
		for _, vid := range ce.exec.VIDs {
			if _, ok := s.pins[vid]; !ok {
				return fmt.Errorf("provenance: exec %s references unpinned input %s", rid.Short(), vid.Short())
			}
		}
	}
	if total != s.provCount {
		return fmt.Errorf("provenance: provCount drift: counted %d, tracked %d", total, s.provCount)
	}
	for vid, p := range s.pins {
		if p.refs <= 0 {
			return fmt.Errorf("provenance: non-positive pin refs for %s", vid.Short())
		}
		if p.tuple.VID() != vid {
			return fmt.Errorf("provenance: pin key mismatch for %s", vid.Short())
		}
	}
	return nil
}
