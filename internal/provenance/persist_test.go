package provenance

import (
	"testing"

	"repro/internal/eval"
	"repro/internal/rel"
)

func persistFixtureView(t *testing.T, n int) *View {
	t.Helper()
	s := NewStore("n0")
	var prev rel.Tuple
	for i := 0; i < n; i++ {
		base := rel.NewTuple("link", rel.Addr("n0"), rel.Int(int64(i)))
		s.AddBase(base)
		if i > 0 {
			out := rel.NewTuple("path", rel.Addr("n0"), rel.Int(int64(i)))
			s.RecordFiring(eval.Firing{
				RuleName:  "r1",
				Inputs:    []rel.Tuple{prev, base},
				Output:    out,
				OutputLoc: "n0",
				Sign:      1,
			})
		}
		prev = base
	}
	return s.View()
}

func TestViewPersistRebuildRoundtrip(t *testing.T) {
	for _, n := range []int{0, 1, 5, 100, 900} {
		v := persistFixtureView(t, n)
		prov, exec, pins := v.PersistBuckets()
		got, err := RebuildView(v.Addr(), v.Version(), prov, exec, pins)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got.Addr() != v.Addr() || got.Version() != v.Version() {
			t.Fatalf("n=%d: identity drift", n)
		}
		if got.Statistics() != v.Statistics() {
			t.Fatalf("n=%d: stats %+v vs %+v", n, got.Statistics(), v.Statistics())
		}
		for i := 0; i < n; i++ {
			base := rel.NewTuple("link", rel.Addr("n0"), rel.Int(int64(i)))
			wantEnts, wantOK := v.Derivations(base.VID())
			gotEnts, gotOK := got.Derivations(base.VID())
			if wantOK != gotOK || len(wantEnts) != len(gotEnts) {
				t.Fatalf("n=%d: derivations for base %d drifted", n, i)
			}
			for j := range wantEnts {
				if wantEnts[j] != gotEnts[j] {
					t.Fatalf("n=%d: derivation entry %d/%d drifted", n, i, j)
				}
			}
			wantTp, ok1 := v.TupleOf(base.VID())
			gotTp, ok2 := got.TupleOf(base.VID())
			if ok1 != ok2 || (ok1 && !wantTp.Equal(gotTp)) {
				t.Fatalf("n=%d: pin for base %d drifted", n, i)
			}
			if i == 0 {
				continue
			}
			derived := rel.NewTuple("path", rel.Addr("n0"), rel.Int(int64(i)))
			ents, ok := got.Derivations(derived.VID())
			if !ok || len(ents) == 0 {
				t.Fatalf("n=%d: derived tuple %d lost its provenance", n, i)
			}
			ex, ok := got.Exec(ents[0].RID)
			if !ok {
				t.Fatalf("n=%d: exec row for %d missing", n, i)
			}
			wantEx, _ := v.Exec(ents[0].RID)
			if ex.Rule != wantEx.Rule || len(ex.VIDs) != len(wantEx.VIDs) {
				t.Fatalf("n=%d: exec row for %d drifted", n, i)
			}
			for j := range ex.VIDs {
				if ex.VIDs[j] != wantEx.VIDs[j] {
					t.Fatalf("n=%d: exec input %d/%d drifted", n, i, j)
				}
			}
		}
	}
}

func TestRebuildViewRejectsCorruptBuckets(t *testing.T) {
	v := persistFixtureView(t, 50)
	prov, exec, pins := v.PersistBuckets()

	// A non-power-of-two spine is rejected.
	if _, err := RebuildView("n0", v.Version(), prov[:len(prov)-1], exec, pins); len(prov) > 1 && err == nil {
		t.Fatal("truncated prov spine accepted")
	}
	// A bucket whose entry hashes to a different bucket is rejected:
	// swap two non-empty prov buckets.
	a, b := -1, -1
	for i, bk := range prov {
		if len(bk) == 0 {
			continue
		}
		if a < 0 {
			a = i
		} else if b < 0 {
			b = i
			break
		}
	}
	if a >= 0 && b >= 0 {
		swapped := append([][]byte(nil), prov...)
		swapped[a], swapped[b] = swapped[b], swapped[a]
		if _, err := RebuildView("n0", v.Version(), swapped, exec, pins); err == nil {
			t.Fatal("misplaced bucket entries accepted")
		}
	}
	// Trailing garbage in a bucket is rejected.
	for i, bk := range prov {
		if len(bk) == 0 {
			continue
		}
		mangled := append([][]byte(nil), prov...)
		mangled[i] = append(append([]byte(nil), bk...), 0xFF)
		if _, err := RebuildView("n0", v.Version(), mangled, exec, pins); err == nil {
			t.Fatal("trailing bucket bytes accepted")
		}
		break
	}

}
