package provenance

import (
	"testing"

	"repro/internal/eval"
	"repro/internal/rel"
)

func linkT(s, d string, c int64) rel.Tuple {
	return rel.NewTuple("link", rel.Addr(s), rel.Addr(d), rel.Int(c))
}

func reachT(s, d string) rel.Tuple {
	return rel.NewTuple("reach", rel.Addr(s), rel.Addr(d))
}

func firing(rule string, in []rel.Tuple, out rel.Tuple, loc string, sign int) eval.Firing {
	return eval.Firing{RuleName: rule, Inputs: in, Output: out, OutputLoc: loc, Sign: sign}
}

func TestBaseLifecycle(t *testing.T) {
	s := NewStore("a")
	lk := linkT("a", "b", 1)
	s.AddBase(lk)
	derivs, ok := s.Derivations(lk.VID())
	if !ok || len(derivs) != 1 || !derivs[0].RID.IsZero() {
		t.Fatalf("derivs = %v %v", derivs, ok)
	}
	if tp, ok := s.TupleOf(lk.VID()); !ok || !tp.Equal(lk) {
		t.Fatal("pin missing")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	s.RemoveBase(lk)
	if _, ok := s.Derivations(lk.VID()); ok {
		t.Fatal("base derivation survived removal")
	}
	if _, ok := s.TupleOf(lk.VID()); ok {
		t.Fatal("pin survived removal")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateBaseCounts(t *testing.T) {
	s := NewStore("a")
	lk := linkT("a", "b", 1)
	s.AddBase(lk)
	s.AddBase(lk)
	s.RemoveBase(lk)
	if _, ok := s.Derivations(lk.VID()); !ok {
		t.Fatal("second base support lost")
	}
	s.RemoveBase(lk)
	if _, ok := s.Derivations(lk.VID()); ok {
		t.Fatal("base derivation should be gone")
	}
}

func TestRecordFiringLocalOutput(t *testing.T) {
	s := NewStore("a")
	lk := linkT("a", "b", 1)
	out := reachT("a", "b")
	s.AddBase(lk)
	e := s.RecordFiring(firing("r1", []rel.Tuple{lk}, out, "a", 1))
	if e.RLoc != "a" || e.VID != out.VID() {
		t.Fatalf("entry = %+v", e)
	}
	derivs, ok := s.Derivations(out.VID())
	if !ok || len(derivs) != 1 || derivs[0].RID != e.RID {
		t.Fatalf("derivs = %v", derivs)
	}
	exec, ok := s.Exec(e.RID)
	if !ok || exec.Rule != "r1" || len(exec.VIDs) != 1 || exec.VIDs[0] != lk.VID() {
		t.Fatalf("exec = %+v", exec)
	}
	// RID must follow the shared definition.
	if e.RID != eval.RuleExecID("r1", "a", []rel.ID{lk.VID()}) {
		t.Fatal("RID does not match RuleExecID")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Retraction removes everything.
	s.RecordFiring(firing("r1", []rel.Tuple{lk}, out, "a", -1))
	if _, ok := s.Derivations(out.VID()); ok {
		t.Fatal("derivation survived retraction")
	}
	if _, ok := s.Exec(e.RID); ok {
		t.Fatal("exec survived retraction")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRecordFiringRemoteOutput(t *testing.T) {
	sender := NewStore("a")
	receiver := NewStore("b")
	lk := linkT("a", "b", 1)
	out := reachT("b", "a")
	sender.AddBase(lk)
	e := sender.RecordFiring(firing("r1", []rel.Tuple{lk}, out, "b", 1))
	// Sender has the exec but no prov entry for the remote tuple.
	if _, ok := sender.Exec(e.RID); !ok {
		t.Fatal("sender lost exec")
	}
	if _, ok := sender.Derivations(out.VID()); ok {
		t.Fatal("sender must not hold the remote tuple's prov entry")
	}
	receiver.ApplyRemote(out, e, 1)
	derivs, ok := receiver.Derivations(out.VID())
	if !ok || derivs[0].RLoc != "a" {
		t.Fatalf("receiver derivs = %v", derivs)
	}
	if err := sender.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := receiver.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	receiver.ApplyRemote(out, e, -1)
	if _, ok := receiver.Derivations(out.VID()); ok {
		t.Fatal("remote derivation survived retraction")
	}
}

func TestMultipleDerivationsOfSameTuple(t *testing.T) {
	s := NewStore("a")
	l1 := linkT("a", "b", 1)
	l2 := linkT("a", "b", 2)
	out := reachT("a", "b")
	s.AddBase(l1)
	s.AddBase(l2)
	e1 := s.RecordFiring(firing("r1", []rel.Tuple{l1}, out, "a", 1))
	e2 := s.RecordFiring(firing("r1", []rel.Tuple{l2}, out, "a", 1))
	if e1.RID == e2.RID {
		t.Fatal("different inputs must give different RIDs")
	}
	derivs, _ := s.Derivations(out.VID())
	if len(derivs) != 2 {
		t.Fatalf("derivs = %v", derivs)
	}
	s.RecordFiring(firing("r1", []rel.Tuple{l1}, out, "a", -1))
	derivs, _ = s.Derivations(out.VID())
	if len(derivs) != 1 || derivs[0].RID != e2.RID {
		t.Fatalf("derivs after retraction = %v", derivs)
	}
}

func TestIdenticalFiringCountsUp(t *testing.T) {
	s := NewStore("a")
	lk := linkT("a", "b", 1)
	out := reachT("a", "b")
	s.AddBase(lk)
	f := firing("r1", []rel.Tuple{lk}, out, "a", 1)
	s.RecordFiring(f)
	s.RecordFiring(f)
	f.Sign = -1
	s.RecordFiring(f)
	if _, ok := s.Exec(eval.RuleExecID("r1", "a", []rel.ID{lk.VID()})); !ok {
		t.Fatal("exec should survive one retraction of two")
	}
	s.RecordFiring(f)
	if _, ok := s.Exec(eval.RuleExecID("r1", "a", []rel.ID{lk.VID()})); ok {
		t.Fatal("exec should be gone")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestVersionBumpsOnChange(t *testing.T) {
	s := NewStore("a")
	v0 := s.Version()
	s.AddBase(linkT("a", "b", 1))
	if s.Version() == v0 {
		t.Fatal("version must change on AddBase")
	}
	v1 := s.Version()
	s.RemoveBase(linkT("a", "b", 1))
	if s.Version() == v1 {
		t.Fatal("version must change on RemoveBase")
	}
}

func TestStatisticsAndRendering(t *testing.T) {
	s := NewStore("a")
	lk := linkT("a", "b", 1)
	out := reachT("a", "b")
	s.AddBase(lk)
	s.RecordFiring(firing("r1", []rel.Tuple{lk}, out, "a", 1))
	st := s.Statistics()
	if st.ProvEntries != 2 || st.ExecEntries != 1 || st.Pins != 2 {
		t.Fatalf("stats = %+v", st)
	}
	pt := s.ProvTuples()
	if len(pt) != 2 {
		t.Fatalf("prov tuples = %v", pt)
	}
	for _, tp := range pt {
		if tp.Rel != "prov" || tp.Arity() != 4 {
			t.Fatalf("bad prov tuple %s", tp)
		}
	}
	et := s.ExecTuples()
	if len(et) != 1 || et[0].Rel != "ruleExec" || et[0].Arity() != 4 {
		t.Fatalf("exec tuples = %v", et)
	}
}

func TestUnknownLookups(t *testing.T) {
	s := NewStore("a")
	if _, ok := s.Derivations(rel.HashBytes([]byte("x"))); ok {
		t.Fatal("phantom derivations")
	}
	if _, ok := s.Exec(rel.HashBytes([]byte("x"))); ok {
		t.Fatal("phantom exec")
	}
	if _, ok := s.TupleOf(rel.HashBytes([]byte("x"))); ok {
		t.Fatal("phantom pin")
	}
	// Removing things that do not exist must not corrupt state.
	s.RemoveBase(linkT("a", "b", 1))
	s.ApplyRemote(reachT("a", "b"), Entry{VID: reachT("a", "b").VID()}, -1)
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSharedInputPinsSurvivePartialRetraction(t *testing.T) {
	s := NewStore("a")
	lk := linkT("a", "b", 1)
	out1 := reachT("a", "b")
	out2 := rel.NewTuple("twohop", rel.Addr("a"), rel.Addr("b"))
	s.AddBase(lk)
	s.RecordFiring(firing("r1", []rel.Tuple{lk}, out1, "a", 1))
	s.RecordFiring(firing("r2", []rel.Tuple{lk}, out2, "a", 1))
	// Retract r1's firing; lk must stay pinned for r2's exec.
	s.RecordFiring(firing("r1", []rel.Tuple{lk}, out1, "a", -1))
	if _, ok := s.TupleOf(lk.VID()); !ok {
		t.Fatal("shared input unpinned too early")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
