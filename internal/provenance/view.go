package provenance

import (
	"sort"

	"repro/internal/rel"
)

// bucketTarget is the load factor the view's bucket directory aims for:
// roughly this many keys per bucket. Buckets stay small so cloning a
// mutated bucket copies O(bucketTarget) entries, not the partition.
const bucketTarget = 16

// buckets is a persistent hash directory: a power-of-two spine of small
// maps keyed by rel.ID. Successive views share every bucket the
// mutations between them did not touch; an update clones only the dirty
// buckets (and the spine). The per-bucket maps are lazily allocated —
// a nil bucket reads as empty.
type buckets[V any] struct {
	mask uint32
	m    []map[rel.ID]V
}

func bucketIdx(id rel.ID, mask uint32) uint32 {
	return uint32(id.Hash64()) & mask
}

func (b buckets[V]) get(id rel.ID) (V, bool) {
	if len(b.m) == 0 {
		var zero V
		return zero, false
	}
	v, ok := b.m[bucketIdx(id, b.mask)][id]
	return v, ok
}

// bucketCountFor picks the spine size for n keys: the smallest power of
// two keeping buckets near bucketTarget, never below the previous size
// (grow-only, so steady-state updates are always incremental).
func bucketCountFor(n, prev int) int {
	nb := 1
	for nb*bucketTarget < n {
		nb <<= 1
	}
	if nb < prev {
		nb = prev
	}
	return nb
}

// updateBuckets derives the next version of a bucket directory. When
// the spine size is unchanged it copies the spine and clones only the
// buckets holding dirty keys, re-deriving those keys through lookup;
// on growth (or first build) it rebuilds from iterate. Either way the
// previous version's buckets are never written.
func updateBuckets[V any](old buckets[V], n int, dirty map[rel.ID]struct{},
	lookup func(rel.ID) (V, bool), iterate func(func(rel.ID, V))) buckets[V] {
	nb := bucketCountFor(n, len(old.m))
	if old.m == nil || nb != len(old.m) {
		out := buckets[V]{mask: uint32(nb - 1), m: make([]map[rel.ID]V, nb)}
		iterate(func(id rel.ID, v V) {
			i := bucketIdx(id, out.mask)
			if out.m[i] == nil {
				out.m[i] = make(map[rel.ID]V, bucketTarget)
			}
			out.m[i][id] = v
		})
		return out
	}
	out := buckets[V]{mask: old.mask, m: append([]map[rel.ID]V(nil), old.m...)}
	cloned := make(map[uint32]bool, len(dirty))
	for id := range dirty {
		i := bucketIdx(id, out.mask)
		if !cloned[i] {
			nm := make(map[rel.ID]V, len(out.m[i])+1)
			for k, v := range out.m[i] {
				nm[k] = v
			}
			out.m[i] = nm
			cloned[i] = true
		}
		if v, ok := lookup(id); ok {
			out.m[i][id] = v
		} else {
			delete(out.m[i], id)
		}
	}
	return out
}

// View is an immutable version of one node's provenance partition at a
// single instant. Views are built copy-on-publish by Store.View and
// shared freely across goroutines: nothing ever mutates a View after
// construction, so readers need no locks. Successive views share every
// bucket that no mutation touched (structural sharing), so building
// the next view costs O(mutations since the last one), not
// O(partition).
//
// nettrails:frozen (enforced by the frozenwrite analyzer)
type View struct {
	addr        string
	version     uint64
	prov        buckets[[]Entry] // per-VID lists sorted like Store.Derivations
	exec        buckets[ExecEntry]
	pins        buckets[rel.Tuple]
	provEntries int
	execEntries int
	pinEntries  int
}

// View returns a frozen version of the partition. The view is cached
// per store version: while no mutation has happened since the last
// call, the same *View is handed back. When mutations did happen, the
// previous view is advanced by cloning only the buckets holding dirty
// keys — the rest of the directory is shared between versions.
func (s *Store) View() *View {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.view != nil && s.view.version == s.version {
		return s.view
	}
	var old View
	if s.view != nil {
		old = *s.view
	}
	v := &View{
		addr:        s.addr,
		version:     s.version,
		provEntries: s.provCount,
		execEntries: len(s.exec),
		pinEntries:  len(s.pins),
	}
	v.prov = updateBuckets(old.prov, len(s.prov), s.dirtyProv,
		func(vid rel.ID) ([]Entry, bool) {
			list, ok := s.prov[vid]
			if !ok {
				return nil, false
			}
			return sortedEntries(list), true
		},
		func(emit func(rel.ID, []Entry)) {
			for vid, list := range s.prov {
				emit(vid, sortedEntries(list))
			}
		})
	v.exec = updateBuckets(old.exec, len(s.exec), s.dirtyExec,
		func(rid rel.ID) (ExecEntry, bool) {
			ce, ok := s.exec[rid]
			if !ok {
				return ExecEntry{}, false
			}
			return frozenExec(ce), true
		},
		func(emit func(rel.ID, ExecEntry)) {
			for rid, ce := range s.exec {
				emit(rid, frozenExec(ce))
			}
		})
	v.pins = updateBuckets(old.pins, len(s.pins), s.dirtyPins,
		func(vid rel.ID) (rel.Tuple, bool) {
			p, ok := s.pins[vid]
			if !ok {
				return rel.Tuple{}, false
			}
			return p.tuple, true
		},
		func(emit func(rel.ID, rel.Tuple)) {
			for vid, p := range s.pins {
				emit(vid, p.tuple)
			}
		})
	clear(s.dirtyProv)
	clear(s.dirtyExec)
	clear(s.dirtyPins)
	s.view = v
	return v
}

// sortedEntries renders one prov list in the deterministic order
// Store.Derivations uses.
func sortedEntries(list []*countedEntry) []Entry {
	out := make([]Entry, len(list))
	for i, ce := range list {
		out[i] = ce.entry
	}
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].RID.Compare(out[j].RID); c != 0 {
			return c < 0
		}
		return out[i].RLoc < out[j].RLoc
	})
	return out
}

// frozenExec snapshots one rule execution with its own VIDs backing.
func frozenExec(ce *countedExec) ExecEntry {
	e := ce.exec
	e.VIDs = append([]rel.ID(nil), ce.exec.VIDs...)
	return e
}

// Addr returns the owning node's address.
func (v *View) Addr() string { return v.addr }

// Version returns the store version the view was frozen at.
func (v *View) Version() uint64 { return v.version }

// Derivations returns the derivation entries of a tuple, sorted
// deterministically; ok is false when the tuple is unknown here. The
// returned slice is shared and must not be mutated.
func (v *View) Derivations(vid rel.ID) ([]Entry, bool) {
	return v.prov.get(vid)
}

// Exec returns the rule execution for a RID at this node.
func (v *View) Exec(rid rel.ID) (ExecEntry, bool) {
	return v.exec.get(rid)
}

// TupleOf resolves a pinned VID to its tuple value.
func (v *View) TupleOf(vid rel.ID) (rel.Tuple, bool) {
	return v.pins.get(vid)
}

// Statistics returns partition sizes, mirroring Store.Statistics.
func (v *View) Statistics() Stats {
	return Stats{ProvEntries: v.provEntries, ExecEntries: v.execEntries, Pins: v.pinEntries}
}
