package provenance

import (
	"sort"

	"repro/internal/rel"
)

// View is an immutable copy of one node's provenance partition at a
// single instant. Views are built copy-on-publish by Store.View and
// shared freely across goroutines: nothing ever mutates a View after
// construction, so readers need no locks.
//
// nettrails:frozen (enforced by the frozenwrite analyzer)
type View struct {
	addr        string
	version     uint64
	prov        map[rel.ID][]Entry // sorted like Store.Derivations
	exec        map[rel.ID]ExecEntry
	pins        map[rel.ID]rel.Tuple
	provEntries int
}

// View returns a frozen copy of the partition. The copy is cached per
// store version: while no mutation has happened since the last call,
// the same *View is handed back, so publishing an unchanged partition
// every epoch costs one lock acquisition and a counter compare.
func (s *Store) View() *View {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.view != nil && s.view.version == s.version {
		return s.view
	}
	v := &View{
		addr:    s.addr,
		version: s.version,
		prov:    make(map[rel.ID][]Entry, len(s.prov)),
		exec:    make(map[rel.ID]ExecEntry, len(s.exec)),
		pins:    make(map[rel.ID]rel.Tuple, len(s.pins)),
	}
	for vid, list := range s.prov {
		out := make([]Entry, len(list))
		for i, ce := range list {
			out[i] = ce.entry
		}
		sort.Slice(out, func(i, j int) bool {
			if c := out[i].RID.Compare(out[j].RID); c != 0 {
				return c < 0
			}
			return out[i].RLoc < out[j].RLoc
		})
		v.prov[vid] = out
		v.provEntries += len(out)
	}
	for rid, ce := range s.exec {
		e := ce.exec
		e.VIDs = append([]rel.ID(nil), ce.exec.VIDs...)
		v.exec[rid] = e
	}
	for vid, p := range s.pins {
		v.pins[vid] = p.tuple
	}
	s.view = v
	return v
}

// Addr returns the owning node's address.
func (v *View) Addr() string { return v.addr }

// Version returns the store version the view was frozen at.
func (v *View) Version() uint64 { return v.version }

// Derivations returns the derivation entries of a tuple, sorted
// deterministically; ok is false when the tuple is unknown here. The
// returned slice is shared and must not be mutated.
func (v *View) Derivations(vid rel.ID) ([]Entry, bool) {
	list, ok := v.prov[vid]
	return list, ok
}

// Exec returns the rule execution for a RID at this node.
func (v *View) Exec(rid rel.ID) (ExecEntry, bool) {
	e, ok := v.exec[rid]
	return e, ok
}

// TupleOf resolves a pinned VID to its tuple value.
func (v *View) TupleOf(vid rel.ID) (rel.Tuple, bool) {
	t, ok := v.pins[vid]
	return t, ok
}

// Statistics returns partition sizes, mirroring Store.Statistics.
func (v *View) Statistics() Stats {
	return Stats{ProvEntries: v.provEntries, ExecEntries: len(v.exec), Pins: len(v.pins)}
}
