package provenance

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"
	"sort"

	"repro/internal/rel"
)

// Persistence hooks for View: the provstore serializes a provenance
// view bucket by bucket (each non-empty bucket becomes one
// content-addressed blob, so a bucket no mutation touched re-encodes to
// the identical bytes and is stored once) and reconstructs an
// equivalent View from those buckets when materializing a historical
// version from disk. Encodings are deterministic: keys are emitted in
// ID order, entry lists in their already-deterministic stored order.

// PersistBuckets renders the view's three bucket directories as
// deterministic per-bucket encodings, parallel to the directory spines.
// Empty buckets render as nil (canonical absence), so the caller can
// skip them and a bucket's hash never depends on spine position.
func (v *View) PersistBuckets() (prov, exec, pins [][]byte) {
	prov = make([][]byte, len(v.prov.m))
	for i, m := range v.prov.m {
		if len(m) == 0 {
			continue
		}
		var buf bytes.Buffer
		putUvarint(&buf, uint64(len(m)))
		for _, vid := range sortedKeys(m) {
			buf.Write(vid[:])
			list := m[vid]
			putUvarint(&buf, uint64(len(list)))
			for _, e := range list {
				buf.Write(e.RID[:])
				putUvarint(&buf, uint64(len(e.RLoc)))
				buf.WriteString(e.RLoc)
			}
		}
		prov[i] = buf.Bytes()
	}
	exec = make([][]byte, len(v.exec.m))
	for i, m := range v.exec.m {
		if len(m) == 0 {
			continue
		}
		var buf bytes.Buffer
		putUvarint(&buf, uint64(len(m)))
		for _, rid := range sortedKeys(m) {
			buf.Write(rid[:])
			e := m[rid]
			putUvarint(&buf, uint64(len(e.Rule)))
			buf.WriteString(e.Rule)
			putUvarint(&buf, uint64(len(e.VIDs)))
			for _, vid := range e.VIDs {
				buf.Write(vid[:])
			}
		}
		exec[i] = buf.Bytes()
	}
	pins = make([][]byte, len(v.pins.m))
	for i, m := range v.pins.m {
		if len(m) == 0 {
			continue
		}
		var buf bytes.Buffer
		putUvarint(&buf, uint64(len(m)))
		for _, vid := range sortedKeys(m) {
			buf.Write(vid[:])
			rel.EncodeTuple(&buf, m[vid])
		}
		pins[i] = buf.Bytes()
	}
	return prov, exec, pins
}

// RebuildView reconstructs a View from persisted bucket encodings, as
// produced by PersistBuckets (nil entries are empty buckets). The spine
// lengths must be positive powers of two, and every decoded key must
// hash to the bucket it was stored in — violations mean corrupt or
// mis-assembled blobs and are rejected. Aggregate statistics are
// recomputed from the decoded contents.
func RebuildView(addr string, version uint64, prov, exec, pins [][]byte) (*View, error) {
	v := &View{addr: addr, version: version}
	if err := checkSpine("prov", len(prov)); err != nil {
		return nil, err
	}
	if err := checkSpine("exec", len(exec)); err != nil {
		return nil, err
	}
	if err := checkSpine("pins", len(pins)); err != nil {
		return nil, err
	}
	v.prov = buckets[[]Entry]{mask: uint32(len(prov) - 1), m: make([]map[rel.ID][]Entry, len(prov))}
	for i, enc := range prov {
		if enc == nil {
			continue
		}
		m, err := decodeBucket(enc, uint32(i), v.prov.mask, func(r *bytes.Reader, vid rel.ID) ([]Entry, error) {
			n, err := readLen(r, "prov entry count")
			if err != nil {
				return nil, err
			}
			list := make([]Entry, n)
			for k := range list {
				e := Entry{VID: vid}
				if err := readID(r, &e.RID); err != nil {
					return nil, err
				}
				s, err := readString(r, "prov rloc")
				if err != nil {
					return nil, err
				}
				e.RLoc = s
				list[k] = e
			}
			return list, nil
		})
		if err != nil {
			return nil, fmt.Errorf("provenance: rebuild prov bucket %d: %w", i, err)
		}
		v.prov.m[i] = m
		for _, list := range m {
			v.provEntries += len(list)
		}
	}
	v.exec = buckets[ExecEntry]{mask: uint32(len(exec) - 1), m: make([]map[rel.ID]ExecEntry, len(exec))}
	for i, enc := range exec {
		if enc == nil {
			continue
		}
		m, err := decodeBucket(enc, uint32(i), v.exec.mask, func(r *bytes.Reader, rid rel.ID) (ExecEntry, error) {
			e := ExecEntry{RID: rid}
			s, err := readString(r, "exec rule")
			if err != nil {
				return e, err
			}
			e.Rule = s
			n, err := readLen(r, "exec vid count")
			if err != nil {
				return e, err
			}
			e.VIDs = make([]rel.ID, n)
			for k := range e.VIDs {
				if err := readID(r, &e.VIDs[k]); err != nil {
					return e, err
				}
			}
			return e, nil
		})
		if err != nil {
			return nil, fmt.Errorf("provenance: rebuild exec bucket %d: %w", i, err)
		}
		v.exec.m[i] = m
		v.execEntries += len(m)
	}
	v.pins = buckets[rel.Tuple]{mask: uint32(len(pins) - 1), m: make([]map[rel.ID]rel.Tuple, len(pins))}
	for i, enc := range pins {
		if enc == nil {
			continue
		}
		m, err := decodeBucket(enc, uint32(i), v.pins.mask, func(r *bytes.Reader, vid rel.ID) (rel.Tuple, error) {
			return rel.DecodeTuple(r)
		})
		if err != nil {
			return nil, fmt.Errorf("provenance: rebuild pins bucket %d: %w", i, err)
		}
		v.pins.m[i] = m
		v.pinEntries += len(m)
	}
	return v, nil
}

func checkSpine(name string, n int) error {
	if n < 1 || bits.OnesCount(uint(n)) != 1 {
		return fmt.Errorf("provenance: rebuild view: %s spine length %d is not a positive power of two", name, n)
	}
	return nil
}

// decodeBucket decodes one bucket's key/value pairs, verifying each key
// hashes into this bucket and that the encoding is fully consumed.
func decodeBucket[V any](enc []byte, idx, mask uint32, dec func(*bytes.Reader, rel.ID) (V, error)) (map[rel.ID]V, error) {
	r := bytes.NewReader(enc)
	n, err := readLen(r, "key count")
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("empty bucket encoded non-nil")
	}
	m := make(map[rel.ID]V, n)
	for k := uint64(0); k < n; k++ {
		var id rel.ID
		if err := readID(r, &id); err != nil {
			return nil, err
		}
		if bucketIdx(id, mask) != idx {
			return nil, fmt.Errorf("key %s does not belong in bucket %d", id.Short(), idx)
		}
		if _, dup := m[id]; dup {
			return nil, fmt.Errorf("duplicate key %s", id.Short())
		}
		val, err := dec(r, id)
		if err != nil {
			return nil, err
		}
		m[id] = val
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%d trailing bytes", r.Len())
	}
	return m, nil
}

func sortedKeys[V any](m map[rel.ID]V) []rel.ID {
	out := make([]rel.ID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

func putUvarint(buf *bytes.Buffer, u uint64) {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(b[:], u)
	buf.Write(b[:n])
}

func readLen(r *bytes.Reader, what string) (uint64, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("decode %s: %w", what, err)
	}
	if n > uint64(r.Len()) {
		return 0, fmt.Errorf("decode %s: %d exceeds input", what, n)
	}
	return n, nil
}

func readID(r *bytes.Reader, id *rel.ID) error {
	if _, err := io.ReadFull(r, id[:]); err != nil {
		return fmt.Errorf("decode id: %w", err)
	}
	return nil
}

func readString(r *bytes.Reader, what string) (string, error) {
	n, err := readLen(r, what)
	if err != nil {
		return "", err
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", fmt.Errorf("decode %s: %w", what, err)
	}
	return string(b), nil
}
