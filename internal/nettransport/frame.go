// Package nettransport is the TCP implementation of simnet.Transport:
// the wire that carries the distributed engine's epoch protocol
// (internal/engine/cluster.go) between real processes. Frames are
// length-prefixed and CRC-checked; connections are retried with
// backoff; the exchange layer repairs dropped, duplicated, and
// reordered frames (the fault-injection tests drive exactly those
// faults through Options.SendFilter) and fails loudly with typed errors
// when repair cannot make progress.
package nettransport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame types.
const (
	// FrameHello introduces a freshly-dialed connection: it carries the
	// dialer's member rank and no payload.
	FrameHello uint8 = 1
	// FrameData carries one member's payload for one (step, phase)
	// exchange.
	FrameData uint8 = 2
	// FrameNeed asks the receiver to re-send its FrameData for the
	// given (step, phase) — the receiver-driven retransmit that repairs
	// lost frames.
	FrameNeed uint8 = 3
	// FrameBye announces a graceful teardown of the sender.
	FrameBye uint8 = 4
)

// Frame is one protocol frame of the TCP wire codec.
type Frame struct {
	Type    uint8
	From    uint16 // sender's member rank
	Phase   uint8
	Step    uint64
	Payload []byte
}

const (
	frameMagic   uint32 = 0x4e544c53 // "NTLS", NetTrails link serialization
	frameVersion uint8  = 1
	// headerLen is magic(4) + version(1) + type(1) + from(2) + phase(1)
	// + step(8) + paylen(4).
	headerLen = 21
	// MaxPayload bounds a frame's payload so a torn or hostile length
	// prefix cannot make a reader allocate unbounded memory.
	MaxPayload = 64 << 20
)

// Typed decode errors, distinguishable by errors.Is.
var (
	ErrBadMagic   = errors.New("nettransport: bad frame magic")
	ErrBadVersion = errors.New("nettransport: unsupported frame version")
	ErrBadCRC     = errors.New("nettransport: frame CRC mismatch")
	ErrOversized  = errors.New("nettransport: frame payload exceeds limit")
)

// EncodeFrame renders a frame in wire form: a fixed header, the
// payload, and a trailing CRC-32 (IEEE) over header plus payload.
func EncodeFrame(f Frame) []byte {
	b := make([]byte, headerLen+len(f.Payload)+4)
	binary.BigEndian.PutUint32(b[0:], frameMagic)
	b[4] = frameVersion
	b[5] = f.Type
	binary.BigEndian.PutUint16(b[6:], f.From)
	b[8] = f.Phase
	binary.BigEndian.PutUint64(b[9:], f.Step)
	binary.BigEndian.PutUint32(b[17:], uint32(len(f.Payload)))
	copy(b[headerLen:], f.Payload)
	crc := crc32.ChecksumIEEE(b[: headerLen+len(f.Payload) : headerLen+len(f.Payload)])
	binary.BigEndian.PutUint32(b[headerLen+len(f.Payload):], crc)
	return b
}

// DecodeFrame reads one frame from r. Torn streams surface as
// io.ErrUnexpectedEOF (or io.EOF at a clean frame boundary); corrupt
// frames surface as ErrBadMagic / ErrBadVersion / ErrOversized /
// ErrBadCRC. Any non-EOF error means the stream is unrecoverable — the
// codec has no resync points by design; the connection layer reconnects
// instead.
func DecodeFrame(r *bufio.Reader) (Frame, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return Frame{}, err // clean EOF at a frame boundary stays io.EOF
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	if binary.BigEndian.Uint32(hdr[0:]) != frameMagic {
		return Frame{}, ErrBadMagic
	}
	if hdr[4] != frameVersion {
		return Frame{}, fmt.Errorf("%w: %d", ErrBadVersion, hdr[4])
	}
	paylen := binary.BigEndian.Uint32(hdr[17:])
	if paylen > MaxPayload {
		return Frame{}, fmt.Errorf("%w: %d bytes", ErrOversized, paylen)
	}
	body := make([]byte, int(paylen)+4)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	crc := crc32.ChecksumIEEE(hdr[:])
	crc = crc32.Update(crc, crc32.IEEETable, body[:paylen])
	if crc != binary.BigEndian.Uint32(body[paylen:]) {
		return Frame{}, ErrBadCRC
	}
	f := Frame{
		Type:  hdr[5],
		From:  binary.BigEndian.Uint16(hdr[6:]),
		Phase: hdr[8],
		Step:  binary.BigEndian.Uint64(hdr[9:]),
	}
	if paylen > 0 {
		f.Payload = body[:paylen:paylen]
	}
	return f, nil
}
