package nettransport

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Options tunes a Transport. The zero value gives sane defaults.
type Options struct {
	// Listener, when non-nil, is used instead of listening on
	// peers[self] — tests use it to bind ephemeral ports before the
	// address list is assembled.
	Listener net.Listener
	// DialBackoff is the initial delay between failed dial attempts;
	// it doubles per attempt up to 32x. Default 25ms.
	DialBackoff time.Duration
	// DialTimeout bounds the total time spent connecting to one peer
	// (0 means wait until ctx is done). Default 10s.
	DialTimeout time.Duration
	// RetryInterval is how long Exchange waits for a missing peer
	// payload before re-requesting it with a FrameNeed. Default 100ms.
	RetryInterval time.Duration
	// MaxRetries bounds the re-request rounds per Exchange before it
	// fails with a StallError. Default 50.
	MaxRetries int
	// SendFilter, when non-nil, intercepts every outbound frame to dst
	// and returns the frames actually written, enabling fault
	// injection: nil drops the frame, repeating it duplicates it, and
	// buffering frames across calls reorders or delays them. Frames it
	// returns are written back-to-back. Handshake (Hello) and teardown
	// (Bye) frames bypass the filter: faults target the data plane. May
	// be called from multiple goroutines; policies must synchronize.
	// Test-only.
	SendFilter func(dst int, frame []byte) [][]byte
}

func (o *Options) withDefaults() {
	if o.DialBackoff <= 0 {
		o.DialBackoff = 25 * time.Millisecond
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 10 * time.Second
	}
	if o.RetryInterval <= 0 {
		o.RetryInterval = 100 * time.Millisecond
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 50
	}
}

// ErrClosed is returned by Exchange on a transport that was Closed (or
// whose dial context ended).
var ErrClosed = errors.New("nettransport: closed")

// PeerError reports a peer that left — gracefully (Bye) or by
// connection failure — while its payload was still needed.
type PeerError struct {
	Peer int
	Err  error
}

func (e *PeerError) Error() string {
	return fmt.Sprintf("nettransport: peer %d gone: %v", e.Peer, e.Err)
}
func (e *PeerError) Unwrap() error { return e.Err }

// StallError reports an Exchange that exhausted its re-request budget
// with peers still missing: the protocol fails loudly rather than
// waiting forever or proceeding with partial data.
type StallError struct {
	Step    uint64
	Phase   uint8
	Missing []int
}

func (e *StallError) Error() string {
	return fmt.Sprintf("nettransport: exchange step %d phase %d stalled: no payload from peers %v", e.Step, e.Phase, e.Missing)
}

type exKey struct {
	step  uint64
	phase uint8
}

type exSlot struct {
	payloads [][]byte
	got      []bool
}

// Transport is the TCP simnet.Transport: a full mesh where every member
// dials every peer (the dialed connection carries its frames out;
// accepted connections carry peers' frames in, so no connection-identity
// tie-breaking is needed). Exchange broadcasts a FrameData per peer and
// blocks until every peer's frame for the same (step, phase) arrived,
// re-requesting lost frames via FrameNeed from each sender's resend
// buffer. It implements simnet.Transport.
type Transport struct {
	self int
	size int
	opts Options

	ctx    context.Context
	cancel context.CancelFunc
	ln     net.Listener

	mu       sync.Mutex
	cond     *sync.Cond
	inbox    map[exKey]*exSlot
	resend   map[exKey][]byte // own encoded FrameData per recent exchange
	gone     []error          // per-rank: why the peer left, nil if alive
	accepted map[net.Conn]bool
	closed   bool

	sendMu []sync.Mutex
	conns  []net.Conn

	wg sync.WaitGroup
}

// Dial builds the mesh member self of the deployment described by
// peers (peers[rank] is rank's listen address). It listens first, then
// dials every peer with exponential backoff until the peer accepts,
// opts.DialTimeout elapses, or ctx is done — a peer that is slow to
// start is waited for; one that never comes up fails the whole Dial
// (with the listener and any established connections torn down again).
// ctx also scopes the transport's lifetime: cancel it and every blocked
// Exchange returns ErrClosed.
func Dial(ctx context.Context, self int, peers []string, opts Options) (*Transport, error) {
	opts.withDefaults()
	if self < 0 || self >= len(peers) {
		return nil, fmt.Errorf("nettransport: self %d out of range over %d peers", self, len(peers))
	}
	ln := opts.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", peers[self])
		if err != nil {
			return nil, fmt.Errorf("nettransport: listen %s: %w", peers[self], err)
		}
	}
	tctx, cancel := context.WithCancel(ctx)
	t := &Transport{
		self:     self,
		size:     len(peers),
		opts:     opts,
		ctx:      tctx,
		cancel:   cancel,
		ln:       ln,
		inbox:    map[exKey]*exSlot{},
		resend:   map[exKey][]byte{},
		gone:     make([]error, len(peers)),
		accepted: map[net.Conn]bool{},
		sendMu:   make([]sync.Mutex, len(peers)),
		conns:    make([]net.Conn, len(peers)),
	}
	t.cond = sync.NewCond(&t.mu)
	t.wg.Add(1)
	go t.acceptLoop()

	var dialWG sync.WaitGroup
	dialErrs := make([]error, len(peers))
	for rank := range peers {
		if rank == self {
			continue
		}
		dialWG.Add(1)
		go func(rank int) {
			defer dialWG.Done()
			dialErrs[rank] = t.dialPeer(rank, peers[rank])
		}(rank)
	}
	dialWG.Wait()
	for rank, err := range dialErrs {
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("nettransport: member %d: connect to peer %d (%s): %w", self, rank, peers[rank], err)
		}
	}
	return t, nil
}

// dialPeer connects to one peer with backoff, honoring both the dial
// deadline and context cancellation, then introduces itself.
func (t *Transport) dialPeer(rank int, addr string) error {
	backoff := t.opts.DialBackoff
	ctx, cancel := context.WithTimeout(t.ctx, t.opts.DialTimeout)
	defer cancel()
	var d net.Dialer
	for {
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			hello := EncodeFrame(Frame{Type: FrameHello, From: uint16(t.self)})
			if _, werr := conn.Write(hello); werr != nil {
				conn.Close()
				return werr
			}
			t.sendMu[rank].Lock()
			t.conns[rank] = conn
			t.sendMu[rank].Unlock()
			return nil
		}
		// Retry after backoff; the peer process may still be starting.
		// The timer is real time by necessity — this is the one layer of
		// the system that talks to an actual network.
		timer := time.NewTimer(backoff) //lint:allow walltime dial backoff over a real TCP connection
		select {
		case <-ctx.Done():
			timer.Stop()
			return fmt.Errorf("%w (last dial error: %v)", ctx.Err(), err)
		case <-timer.C:
		}
		if backoff < 32*t.opts.DialBackoff {
			backoff *= 2
		}
	}
}

func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed by Close
		}
		// Track the inbound connection so Close can unblock its reader.
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.accepted[conn] = true
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

// readLoop drains one accepted connection: a Hello introduces the
// sending peer, then its Data/Need/Bye frames are dispatched until the
// stream ends or turns corrupt.
func (t *Transport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.accepted, conn)
		t.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	hello, err := DecodeFrame(br)
	if err != nil || hello.Type != FrameHello || int(hello.From) >= t.size {
		return // not a member; drop the connection
	}
	rank := int(hello.From)
	for {
		f, err := DecodeFrame(br)
		if err != nil {
			t.peerGone(rank, err)
			return
		}
		switch f.Type {
		case FrameData:
			t.deliver(rank, f)
		case FrameNeed:
			t.handleNeed(rank, f)
		case FrameBye:
			t.peerGone(rank, errors.New("peer closed gracefully"))
			return
		}
	}
}

// peerGone records why a peer's stream ended and wakes waiters. After
// our own Close the teardown is expected and not recorded.
func (t *Transport) peerGone(rank int, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || t.gone[rank] != nil {
		return
	}
	t.gone[rank] = err
	t.cond.Broadcast()
}

// deliver stores a peer's exchange payload, first frame wins: the
// repair path re-sends frames, and a fault filter may duplicate them,
// so later copies for the same (step, phase, peer) are dropped.
func (t *Transport) deliver(rank int, f Frame) {
	k := exKey{f.Step, f.Phase}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	s := t.inbox[k]
	if s == nil {
		s = &exSlot{payloads: make([][]byte, t.size), got: make([]bool, t.size)}
		t.inbox[k] = s
	}
	if s.got[rank] {
		return
	}
	s.got[rank] = true
	s.payloads[rank] = f.Payload
	t.cond.Broadcast()
}

// handleNeed re-sends our FrameData for the requested exchange from the
// resend buffer. A request for an exchange we have not reached (or have
// already garbage-collected) is ignored; the peer re-requests.
func (t *Transport) handleNeed(rank int, f Frame) {
	k := exKey{f.Step, f.Phase}
	t.mu.Lock()
	frame := t.resend[k]
	t.mu.Unlock()
	if frame != nil {
		// Through the fault filter like any data send: a repair re-send
		// is subject to the same simulated faults as the original.
		t.sendFrame(rank, frame)
	}
}

// sendFrame routes one outbound frame through the fault filter (when
// installed) and writes the surviving frames to the peer.
func (t *Transport) sendFrame(rank int, frame []byte) {
	frames := [][]byte{frame}
	if t.opts.SendFilter != nil {
		frames = t.opts.SendFilter(rank, frame)
	}
	t.writeFrames(rank, frames)
}

// writeFrames writes raw frames to a peer, serialized per connection
// (Exchange broadcasts and Need replies run on different goroutines).
// Write errors are not reported here: a broken outbound stream shows up
// at the peer as a missing payload and is repaired — or loudly timed
// out — by the exchange protocol.
func (t *Transport) writeFrames(rank int, frames [][]byte) {
	t.sendMu[rank].Lock()
	defer t.sendMu[rank].Unlock()
	conn := t.conns[rank]
	if conn == nil {
		return
	}
	for _, fb := range frames {
		if fb == nil {
			continue
		}
		if _, err := conn.Write(fb); err != nil {
			return
		}
	}
}

// Self returns this member's rank.
func (t *Transport) Self() int { return t.self }

// Size returns the mesh size.
func (t *Transport) Size() int { return t.size }

// Exchange implements simnet.Transport: broadcast payload for (step,
// phase), gather every peer's payload for the same exchange, repair
// losses by re-requesting, and fail loudly (PeerError, StallError,
// ErrClosed) when the exchange cannot complete.
func (t *Transport) Exchange(step uint64, phase uint8, payload []byte) ([][]byte, error) {
	k := exKey{step, phase}
	own := EncodeFrame(Frame{Type: FrameData, From: uint16(t.self), Phase: phase, Step: step, Payload: payload})
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	t.resend[k] = own
	t.mu.Unlock()

	for rank := 0; rank < t.size; rank++ {
		if rank != t.self {
			t.sendFrame(rank, own)
		}
	}

	for retries := 0; ; retries++ {
		t.mu.Lock()
		// Wait until complete, closed, a needed peer left, or the retry
		// timer fires — whichever first.
		fired := false
		// Wall-clock by necessity: the retransmit timeout of a real
		// network protocol cannot run on virtual time.
		timer := time.AfterFunc(t.opts.RetryInterval, func() { //lint:allow walltime retransmit timeout of the TCP exchange protocol
			t.mu.Lock()
			fired = true
			t.cond.Broadcast()
			t.mu.Unlock()
		})
		var missing []int
		for {
			missing = t.missingLocked(k)
			if len(missing) == 0 || t.closed || fired || t.anyGoneLocked(missing) {
				break
			}
			t.cond.Wait()
		}
		timer.Stop()
		if t.closed || t.ctx.Err() != nil {
			t.mu.Unlock()
			return nil, ErrClosed
		}
		if len(missing) == 0 {
			s := t.inbox[k]
			out := make([][]byte, t.size)
			copy(out, s.payloads)
			out[t.self] = nil
			t.gcLocked(step)
			t.mu.Unlock()
			return out, nil
		}
		for _, rank := range missing {
			if err := t.gone[rank]; err != nil {
				t.mu.Unlock()
				return nil, &PeerError{Peer: rank, Err: err}
			}
		}
		if retries >= t.opts.MaxRetries {
			t.mu.Unlock()
			return nil, &StallError{Step: step, Phase: phase, Missing: missing}
		}
		t.mu.Unlock()
		// Receiver-driven repair: ask each missing peer to re-send.
		need := EncodeFrame(Frame{Type: FrameNeed, From: uint16(t.self), Phase: phase, Step: step})
		for _, rank := range missing {
			t.sendFrame(rank, need)
		}
	}
}

// missingLocked lists the peer ranks whose payload for k has not
// arrived. Caller holds mu.
func (t *Transport) missingLocked(k exKey) []int {
	s := t.inbox[k]
	var missing []int
	for rank := 0; rank < t.size; rank++ {
		if rank == t.self {
			continue
		}
		if s == nil || !s.got[rank] {
			missing = append(missing, rank)
		}
	}
	return missing
}

func (t *Transport) anyGoneLocked(ranks []int) bool {
	for _, r := range ranks {
		if t.gone[r] != nil {
			return true
		}
	}
	return false
}

// gcLocked drops inbox and resend state older than the exchange that
// just completed, keeping a two-step tail so a slower peer can still
// repair the previous exchanges. Caller holds mu.
func (t *Transport) gcLocked(step uint64) {
	if step < 2 {
		return
	}
	floor := step - 2
	var dead []exKey
	for k := range t.inbox {
		if k.step < floor {
			dead = append(dead, k)
		}
	}
	for _, k := range dead {
		delete(t.inbox, k)
	}
	dead = dead[:0]
	for k := range t.resend {
		if k.step < floor {
			dead = append(dead, k)
		}
	}
	for _, k := range dead {
		delete(t.resend, k)
	}
}

// Close tears the member down gracefully: wake local waiters, announce
// Bye to every peer (so their Exchanges fail with a PeerError instead
// of stalling), then close the listener and all connections and wait
// for every goroutine to drain. Idempotent.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.cond.Broadcast()
	t.mu.Unlock()

	bye := EncodeFrame(Frame{Type: FrameBye, From: uint16(t.self)})
	for rank := 0; rank < t.size; rank++ {
		if rank != t.self {
			t.writeFrames(rank, [][]byte{bye})
		}
	}
	t.cancel()
	t.ln.Close()
	// Close inbound connections too: their readers block in DecodeFrame
	// and would otherwise hold wg.Wait forever.
	t.mu.Lock()
	for conn := range t.accepted {
		conn.Close()
	}
	t.mu.Unlock()
	for rank := range t.conns {
		t.sendMu[rank].Lock()
		if t.conns[rank] != nil {
			t.conns[rank].Close()
			t.conns[rank] = nil
		}
		t.sendMu[rank].Unlock()
	}
	t.wg.Wait()
	return nil
}

// SplitPeers parses the -peers flag value: a comma-separated list of
// host:port addresses whose order defines member ranks (the list must
// be identical, in the same order, in every process).
func SplitPeers(s string) ([]string, error) {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			p := s[start:i]
			if p == "" {
				return nil, fmt.Errorf("nettransport: empty peer address in %q", s)
			}
			if _, _, err := net.SplitHostPort(p); err != nil {
				return nil, fmt.Errorf("nettransport: bad peer address %q: %w", p, err)
			}
			out = append(out, p)
			start = i + 1
		}
	}
	if len(out) < 2 {
		return nil, fmt.Errorf("nettransport: need at least 2 peers, got %d", len(out))
	}
	return out, nil
}
