package nettransport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/testutil"
)

var _ simnet.Transport = (*Transport)(nil)

// listenLocal binds n ephemeral loopback ports up front so the full
// rank→address list exists before any member dials.
func listenLocal(t *testing.T, n int) ([]net.Listener, []string) {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	return lns, addrs
}

// dialMesh brings up a full n-member mesh over real loopback sockets.
// optsOf lets a test give individual members distinct fault policies.
func dialMesh(t *testing.T, n int, optsOf func(rank int) Options) []*Transport {
	t.Helper()
	lns, addrs := listenLocal(t, n)
	ts := make([]*Transport, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opts := Options{}
			if optsOf != nil {
				opts = optsOf(i)
			}
			opts.Listener = lns[i]
			ts[i], errs[i] = Dial(context.Background(), i, addrs, opts)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("dial member %d: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, tr := range ts {
			if tr != nil {
				tr.Close()
			}
		}
	})
	return ts
}

// runExchanges drives every member through the same sequence of
// exchanges and asserts each sees every peer's payload, intact and
// correctly indexed by rank.
func runExchanges(t *testing.T, ts []*Transport, steps int) {
	t.Helper()
	n := len(ts)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			for step := uint64(1); step <= uint64(steps); step++ {
				for _, phase := range []uint8{1, 2} {
					payload := []byte(fmt.Sprintf("m%d/s%d/p%d", self, step, phase))
					got, err := ts[self].Exchange(step, phase, payload)
					if err != nil {
						errs <- fmt.Errorf("member %d step %d phase %d: %w", self, step, phase, err)
						return
					}
					if len(got) != n {
						errs <- fmt.Errorf("member %d: got %d slots, want %d", self, len(got), n)
						return
					}
					for rank, pl := range got {
						if rank == self {
							if pl != nil {
								errs <- fmt.Errorf("member %d: own slot not nil", self)
								return
							}
							continue
						}
						want := fmt.Sprintf("m%d/s%d/p%d", rank, step, phase)
						if string(pl) != want {
							errs <- fmt.Errorf("member %d step %d phase %d from %d: got %q want %q", self, step, phase, rank, pl, want)
							return
						}
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestExchangeOverSockets is the clean-network baseline: a 3-member
// mesh over real loopback TCP completes many exchanges with every
// payload intact, and tears down without leaking a goroutine.
func TestExchangeOverSockets(t *testing.T) {
	testutil.CheckGoroutines(t)
	ts := dialMesh(t, 3, nil)
	runExchanges(t, ts, 12)
	for _, tr := range ts {
		if err := tr.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}
}

// faultPolicy is a mutex-guarded SendFilter base for the fault tests.
type faultPolicy struct {
	mu sync.Mutex
	fn func(dst int, frame []byte) [][]byte
}

func (p *faultPolicy) filter(dst int, frame []byte) [][]byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fn(dst, frame)
}

// TestExchangeRepairsDroppedFrames drops a prefix of member 0's data
// frames; receiver-driven Need retransmits must repair the loss and the
// exchanges still converge with correct payloads.
func TestExchangeRepairsDroppedFrames(t *testing.T) {
	testutil.CheckGoroutines(t)
	drops := 3
	p := &faultPolicy{}
	p.fn = func(dst int, frame []byte) [][]byte {
		if drops > 0 {
			drops--
			return nil
		}
		return [][]byte{frame}
	}
	ts := dialMesh(t, 3, func(rank int) Options {
		if rank != 0 {
			return Options{}
		}
		return Options{RetryInterval: 20 * time.Millisecond, SendFilter: p.filter}
	})
	runExchanges(t, ts, 6)
}

// TestExchangeToleratesDuplicatesAndReorder duplicates every frame and
// holds one back per destination, releasing it in front of the next
// frame — out-of-order and double delivery at the receiver. Keep-first
// dedup and (step, phase) indexing must keep the results exact.
func TestExchangeToleratesDuplicatesAndReorder(t *testing.T) {
	testutil.CheckGoroutines(t)
	held := map[int][]byte{}
	p := &faultPolicy{}
	p.fn = func(dst int, frame []byte) [][]byte {
		prev := held[dst]
		cp := make([]byte, len(frame))
		copy(cp, frame)
		held[dst] = cp
		if prev == nil {
			return nil // delay: first frame to each peer waits for the next send
		}
		// Release current before the held older frame (reorder), each
		// twice (duplicate).
		return [][]byte{frame, frame, prev, prev}
	}
	ts := dialMesh(t, 3, func(rank int) Options {
		if rank != 1 {
			return Options{}
		}
		return Options{RetryInterval: 20 * time.Millisecond, SendFilter: p.filter}
	})
	runExchanges(t, ts, 6)
}

// TestExchangeStallsLoudly blackholes every data-plane frame out of
// member 0 (originals and Need repairs alike): member 1 must give up
// with a typed StallError naming the silent peer, not hang and not
// fabricate a result.
func TestExchangeStallsLoudly(t *testing.T) {
	testutil.CheckGoroutines(t)
	p := &faultPolicy{}
	p.fn = func(dst int, frame []byte) [][]byte { return nil }
	ts := dialMesh(t, 2, func(rank int) Options {
		if rank != 0 {
			return Options{RetryInterval: 10 * time.Millisecond, MaxRetries: 4}
		}
		return Options{RetryInterval: 10 * time.Millisecond, MaxRetries: 4, SendFilter: p.filter}
	})

	done := make(chan error, 1)
	go func() {
		_, err := ts[1].Exchange(1, 1, []byte("m1"))
		done <- err
	}()
	// Member 0 receives member 1's payload, so its own exchange
	// completes; only member 1 starves.
	if _, err := ts[0].Exchange(1, 1, []byte("m0")); err != nil {
		t.Fatalf("member 0 exchange: %v", err)
	}
	err := <-done
	var stall *StallError
	if !errors.As(err, &stall) {
		t.Fatalf("member 1: got %v, want StallError", err)
	}
	if stall.Step != 1 || stall.Phase != 1 || len(stall.Missing) != 1 || stall.Missing[0] != 0 {
		t.Fatalf("stall error mis-attributed: %+v", stall)
	}
}

// TestPeerCloseFailsExchange: a peer that goes away gracefully mid-wait
// surfaces as a typed PeerError at the blocked member.
func TestPeerCloseFailsExchange(t *testing.T) {
	testutil.CheckGoroutines(t)
	ts := dialMesh(t, 2, nil)
	done := make(chan error, 1)
	go func() {
		_, err := ts[0].Exchange(1, 1, []byte("m0"))
		done <- err
	}()
	ts[1].Close()
	err := <-done
	var pe *PeerError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want PeerError", err)
	}
	if pe.Peer != 1 {
		t.Fatalf("wrong peer blamed: %+v", pe)
	}
}

// TestCloseUnblocksOwnExchange: closing a member while it waits returns
// ErrClosed to its own blocked Exchange, and the teardown drains every
// goroutine.
func TestCloseUnblocksOwnExchange(t *testing.T) {
	testutil.CheckGoroutines(t)
	ts := dialMesh(t, 2, nil)
	done := make(chan error, 1)
	go func() {
		_, err := ts[0].Exchange(1, 1, []byte("m0"))
		done <- err
	}()
	// Let the exchange reach its wait, then tear the member down.
	time.Sleep(10 * time.Millisecond)
	ts[0].Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
	ts[1].Close()
}

// TestDialPeerNeverUp: dialing a mesh whose peer never comes up must
// honor context cancellation — the backoff loop exits promptly, Dial
// fails with the context error, and nothing leaks (listener, accept
// loop, half-established connections all torn down).
func TestDialPeerNeverUp(t *testing.T) {
	testutil.CheckGoroutines(t)
	// A dead address: bind a port, then free it again.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = Dial(ctx, 0, []string{ln.Addr().String(), deadAddr}, Options{
		Listener:    ln,
		DialBackoff: 5 * time.Millisecond,
		DialTimeout: time.Minute, // cancellation, not the deadline, must end the wait
	})
	if err == nil {
		t.Fatal("Dial succeeded against a dead peer")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled in the chain", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("dial ignored cancellation for %v", waited)
	}
}

// TestDialTimeout: with no external cancellation, DialTimeout bounds
// the retry loop.
func TestDialTimeout(t *testing.T) {
	testutil.CheckGoroutines(t)
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Dial(context.Background(), 0, []string{ln.Addr().String(), deadAddr}, Options{
		Listener:    ln,
		DialBackoff: 5 * time.Millisecond,
		DialTimeout: 50 * time.Millisecond,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded in the chain", err)
	}
}

// TestSlowJoinerIsWaitedFor: a peer that starts late is retried until
// it appears; the mesh then works normally.
func TestSlowJoinerIsWaitedFor(t *testing.T) {
	testutil.CheckGoroutines(t)
	lns, addrs := listenLocal(t, 2)
	// Member 1 joins only after member 0 has been retrying for a while.
	var ts [2]*Transport
	var errs [2]error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		ts[0], errs[0] = Dial(context.Background(), 0, addrs, Options{Listener: lns[0], DialBackoff: 5 * time.Millisecond})
	}()
	go func() {
		defer wg.Done()
		time.Sleep(60 * time.Millisecond)
		ts[1], errs[1] = Dial(context.Background(), 1, addrs, Options{Listener: lns[1], DialBackoff: 5 * time.Millisecond})
	}()
	wg.Wait()
	for i, err := range errs[:] {
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
	}
	defer ts[0].Close()
	defer ts[1].Close()
	runExchanges(t, ts[:], 3)
}

// TestSplitPeers covers the -peers flag parser.
func TestSplitPeers(t *testing.T) {
	got, err := SplitPeers("127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2] != "127.0.0.1:7003" {
		t.Fatalf("bad parse: %v", got)
	}
	for _, bad := range []string{"", "127.0.0.1:1", "a:1,,b:2", "host-no-port,x:2"} {
		if _, err := SplitPeers(bad); err == nil {
			t.Fatalf("SplitPeers(%q) accepted", bad)
		}
	}
}
