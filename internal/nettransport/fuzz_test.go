package nettransport

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzDecodeFrame hammers the TCP wire codec with arbitrary byte
// streams: torn frames, corrupted headers, hostile length prefixes.
// Invariants: DecodeFrame never panics, never returns an untyped
// error, and every frame it accepts survives an encode/decode round
// trip unchanged.
func FuzzDecodeFrame(f *testing.F) {
	// Seed with each frame type, a payload-carrying frame, and the
	// classic corruptions.
	f.Add(EncodeFrame(Frame{Type: FrameHello, From: 2}))
	f.Add(EncodeFrame(Frame{Type: FrameData, From: 1, Phase: 2, Step: 7, Payload: []byte("delta batch bytes")}))
	f.Add(EncodeFrame(Frame{Type: FrameNeed, From: 0, Phase: 1, Step: 9}))
	f.Add(EncodeFrame(Frame{Type: FrameBye, From: 3}))
	valid := EncodeFrame(Frame{Type: FrameData, From: 1, Phase: 1, Step: 1, Payload: []byte("x")})
	f.Add(valid[:len(valid)-3])                 // torn mid-CRC
	f.Add(valid[:headerLen-2])                  // torn mid-header
	f.Add(append([]byte("JUNK"), valid...))     // bad magic
	f.Add(append(bytes.Clone(valid), valid...)) // two frames back-to-back
	flip := bytes.Clone(valid)
	flip[headerLen] ^= 0xff // corrupt payload → CRC mismatch
	f.Add(flip)
	big := bytes.Clone(valid)
	big[17], big[18], big[19], big[20] = 0xff, 0xff, 0xff, 0xff // hostile length
	f.Add(big)

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		for {
			fr, err := DecodeFrame(br)
			if err != nil {
				if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) &&
					!errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrBadVersion) &&
					!errors.Is(err, ErrBadCRC) && !errors.Is(err, ErrOversized) {
					t.Fatalf("untyped decode error: %v", err)
				}
				return
			}
			if len(fr.Payload) > MaxPayload {
				t.Fatalf("payload above MaxPayload accepted: %d", len(fr.Payload))
			}
			reenc := EncodeFrame(fr)
			fr2, err := DecodeFrame(bufio.NewReader(bytes.NewReader(reenc)))
			if err != nil {
				t.Fatalf("re-decode of accepted frame failed: %v", err)
			}
			if fr2.Type != fr.Type || fr2.From != fr.From || fr2.Phase != fr.Phase ||
				fr2.Step != fr.Step || !bytes.Equal(fr2.Payload, fr.Payload) {
				t.Fatalf("round trip mangled frame: %+v vs %+v", fr, fr2)
			}
		}
	})
}
