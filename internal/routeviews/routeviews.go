// Package routeviews provides BGP update traces in the spirit of the
// RouteViews project feeds the paper's demo replays. Real RouteViews
// archives are not redistributable here, so the package contains a
// deterministic synthetic generator producing realistic
// announce/withdraw sequences (prefix reuse, bursts of instability,
// origin churn) plus a parser/serializer for a simple text format so
// externally obtained traces can be replayed too:
//
//	# comment
//	<seq> A <prefix> <originAS>
//	<seq> W <prefix> <originAS>
package routeviews

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
)

// EventType is announce or withdraw.
type EventType int

// Trace event types.
const (
	Announce EventType = iota
	Withdraw
)

func (t EventType) String() string {
	if t == Withdraw {
		return "W"
	}
	return "A"
}

// Event is one BGP trace record.
type Event struct {
	Seq    int
	Type   EventType
	Prefix string
	Origin string // originating AS
}

// String renders the event in trace format.
func (e Event) String() string {
	return fmt.Sprintf("%d %s %s %s", e.Seq, e.Type, e.Prefix, e.Origin)
}

// GenOptions tunes the synthetic generator.
type GenOptions struct {
	Events     int
	Prefixes   int      // distinct prefixes in the pool
	Origins    []string // candidate origin ASes
	WithdrawP  float64  // probability an event withdraws a live prefix
	FlapBursts int      // number of instability bursts (announce/withdraw churn)
	Seed       int64
}

// DefaultGenOptions returns a sensible small trace configuration.
func DefaultGenOptions(origins []string) GenOptions {
	return GenOptions{
		Events:     200,
		Prefixes:   32,
		Origins:    origins,
		WithdrawP:  0.25,
		FlapBursts: 3,
		Seed:       1,
	}
}

// Generate produces a synthetic trace. Invariants: withdrawals only
// target currently announced prefixes and come from the AS currently
// originating them; re-announcements may move a prefix to a new origin
// (origin churn, as seen in real tables).
func Generate(opts GenOptions) ([]Event, error) {
	if opts.Events <= 0 || opts.Prefixes <= 0 || len(opts.Origins) == 0 {
		return nil, fmt.Errorf("routeviews: invalid options %+v", opts)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	prefixes := make([]string, opts.Prefixes)
	for i := range prefixes {
		prefixes[i] = fmt.Sprintf("10.%d.%d.0/24", i/256, i%256)
	}
	liveOrigin := map[string]string{} // prefix -> current origin
	var out []Event
	seq := 0
	emit := func(t EventType, prefix, origin string) {
		out = append(out, Event{Seq: seq, Type: t, Prefix: prefix, Origin: origin})
		seq++
	}
	burstEvery := 0
	if opts.FlapBursts > 0 {
		burstEvery = opts.Events / (opts.FlapBursts + 1)
	}
	for seq < opts.Events {
		// Instability burst: flap one live prefix a few times.
		if burstEvery > 0 && seq > 0 && seq%burstEvery == 0 && len(liveOrigin) > 0 {
			p := livePick(rng, liveOrigin)
			o := liveOrigin[p]
			for i := 0; i < 3 && seq+1 < opts.Events; i++ {
				emit(Withdraw, p, o)
				emit(Announce, p, o)
			}
			liveOrigin[p] = o
			continue
		}
		if rng.Float64() < opts.WithdrawP && len(liveOrigin) > 0 {
			p := livePick(rng, liveOrigin)
			emit(Withdraw, p, liveOrigin[p])
			delete(liveOrigin, p)
			continue
		}
		p := prefixes[rng.Intn(len(prefixes))]
		if o, live := liveOrigin[p]; live {
			// Origin churn: withdraw from the old origin first.
			emit(Withdraw, p, o)
			delete(liveOrigin, p)
			if seq >= opts.Events {
				break
			}
		}
		o := opts.Origins[rng.Intn(len(opts.Origins))]
		emit(Announce, p, o)
		liveOrigin[p] = o
	}
	return out, nil
}

func livePick(rng *rand.Rand, live map[string]string) string {
	keys := make([]string, 0, len(live))
	for k := range live {
		keys = append(keys, k)
	}
	// Deterministic order before random pick.
	sortStrings(keys)
	return keys[rng.Intn(len(keys))]
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Write serializes events in trace format.
func Write(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, e := range events {
		if _, err := fmt.Fprintln(bw, e.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Parse reads a trace. Blank lines and lines starting with '#' are
// skipped.
func Parse(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return nil, fmt.Errorf("routeviews: line %d: want 4 fields, got %d", lineNo, len(fields))
		}
		seq, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("routeviews: line %d: bad seq %q", lineNo, fields[0])
		}
		var typ EventType
		switch fields[1] {
		case "A":
			typ = Announce
		case "W":
			typ = Withdraw
		default:
			return nil, fmt.Errorf("routeviews: line %d: bad type %q", lineNo, fields[1])
		}
		out = append(out, Event{Seq: seq, Type: typ, Prefix: fields[2], Origin: fields[3]})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Validate checks trace invariants: withdrawals target live prefixes
// from their current origin; sequence numbers are strictly increasing.
func Validate(events []Event) error {
	live := map[string]string{}
	lastSeq := -1
	for i, e := range events {
		if e.Seq <= lastSeq {
			return fmt.Errorf("routeviews: event %d: non-increasing seq %d", i, e.Seq)
		}
		lastSeq = e.Seq
		switch e.Type {
		case Announce:
			live[e.Prefix] = e.Origin
		case Withdraw:
			o, ok := live[e.Prefix]
			if !ok {
				return fmt.Errorf("routeviews: event %d withdraws dead prefix %s", i, e.Prefix)
			}
			if o != e.Origin {
				return fmt.Errorf("routeviews: event %d withdraws %s from %s, but origin is %s", i, e.Prefix, e.Origin, o)
			}
			delete(live, e.Prefix)
		}
	}
	return nil
}
