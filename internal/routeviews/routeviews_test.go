package routeviews

import (
	"bytes"
	"strings"
	"testing"
)

func TestGenerateValidates(t *testing.T) {
	opts := DefaultGenOptions([]string{"AS1", "AS2", "AS3"})
	events, err := Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events")
	}
	if err := Validate(events); err != nil {
		t.Fatal(err)
	}
	// Both announcements and withdrawals present.
	var a, w int
	for _, e := range events {
		switch e.Type {
		case Announce:
			a++
		case Withdraw:
			w++
		}
	}
	if a == 0 || w == 0 {
		t.Fatalf("a=%d w=%d", a, w)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	opts := DefaultGenOptions([]string{"AS1", "AS2"})
	e1, _ := Generate(opts)
	e2, _ := Generate(opts)
	if len(e1) != len(e2) {
		t.Fatal("lengths differ")
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("event %d differs: %v vs %v", i, e1[i], e2[i])
		}
	}
	opts.Seed = 99
	e3, _ := Generate(opts)
	same := len(e1) == len(e3)
	if same {
		for i := range e1 {
			if e1[i] != e3[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds gave identical traces")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(GenOptions{}); err == nil {
		t.Fatal("zero options must error")
	}
	if _, err := Generate(GenOptions{Events: 1, Prefixes: 1}); err == nil {
		t.Fatal("no origins must error")
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	events, _ := Generate(DefaultGenOptions([]string{"AS1", "AS2"}))
	var buf bytes.Buffer
	if err := Write(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("round trip lost events: %d vs %d", len(back), len(events))
	}
	for i := range back {
		if back[i] != events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestParseCommentsAndErrors(t *testing.T) {
	good := "# header\n\n0 A 10.0.0.0/24 AS1\n1 W 10.0.0.0/24 AS1\n"
	events, err := Parse(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[1].Type != Withdraw {
		t.Fatalf("events = %v", events)
	}
	bad := []string{
		"x A 10.0.0.0/24 AS1",
		"0 Z 10.0.0.0/24 AS1",
		"0 A 10.0.0.0/24",
	}
	for _, line := range bad {
		if _, err := Parse(strings.NewReader(line)); err == nil {
			t.Errorf("Parse(%q) should fail", line)
		}
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	cases := [][]Event{
		{{Seq: 0, Type: Withdraw, Prefix: "p", Origin: "AS1"}},
		{{Seq: 0, Type: Announce, Prefix: "p", Origin: "AS1"}, {Seq: 0, Type: Withdraw, Prefix: "p", Origin: "AS1"}},
		{{Seq: 0, Type: Announce, Prefix: "p", Origin: "AS1"}, {Seq: 1, Type: Withdraw, Prefix: "p", Origin: "AS2"}},
	}
	for i, evs := range cases {
		if err := Validate(evs); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}
