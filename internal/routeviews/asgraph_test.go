package routeviews

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestGenerateASGraphDeterministic(t *testing.T) {
	opts := ASGraphOptions{Nodes: 64, Seed: 7}
	a, err := GenerateASGraph(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateASGraph(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same options produced different AS graphs")
	}
	c, err := GenerateASGraph(ASGraphOptions{Nodes: 64, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Edges, c.Edges) {
		t.Fatal("different seeds produced identical AS graphs")
	}
}

func TestGenerateASGraphConnectedAtScale(t *testing.T) {
	for _, n := range []int{4, 25, 300, 2000} {
		g, err := GenerateASGraph(ASGraphOptions{Nodes: n, Seed: 1})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(g.ASes) != n {
			t.Fatalf("n=%d: got %d ASes", n, len(g.ASes))
		}
		if err := ValidateASGraph(g, true); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Zero-padded names keep lexicographic == numeric order.
		if !sortedStrings(g.ASes) {
			t.Fatalf("n=%d: AS names not sorted", n)
		}
	}
}

func TestGenerateASGraphDegreeTail(t *testing.T) {
	// Preferential attachment should concentrate customers: the busiest
	// provider of a 500-AS graph serves far more customers than the
	// median provider.
	g, err := GenerateASGraph(ASGraphOptions{Nodes: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	customers := map[string]int{}
	for _, e := range g.Edges {
		if e.Kind == ProviderToCustomer {
			customers[e.A]++
		}
	}
	max := 0
	for _, c := range customers {
		if c > max {
			max = c
		}
	}
	if max < 20 {
		t.Fatalf("busiest provider has only %d customers; degree distribution is flat", max)
	}
}

func TestASGraphRoundTrip(t *testing.T) {
	g, err := GenerateASGraph(ASGraphOptions{Nodes: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteASGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ParseASGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g, got) {
		t.Fatalf("round trip changed the graph:\nwant %+v\ngot  %+v", g, got)
	}
}

func TestParseASGraphInferredNodes(t *testing.T) {
	g, err := ParseASGraph(strings.NewReader("# free comment\nAS2|AS1|-1\n\nAS2|AS3|0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"AS1", "AS2", "AS3"}; !reflect.DeepEqual(g.ASes, want) {
		t.Fatalf("inferred ASes = %v, want %v", g.ASes, want)
	}
	if len(g.Edges) != 2 {
		t.Fatalf("got %d edges, want 2", len(g.Edges))
	}
}

func TestParseASGraphRejects(t *testing.T) {
	for _, src := range []string{
		"",                          // empty
		"AS1|AS2",                   // missing relationship
		"AS1|AS2|7",                 // unknown relationship
		"AS1|AS1|0",                 // self-loop
		"|AS2|0",                    // empty name
		"# ases AS1 AS2\nAS1|AS3|0", // undeclared AS
		"0 |0|-1",                   // whitespace in a name (fuzz-found: breaks the header round trip)
	} {
		if _, err := ParseASGraph(strings.NewReader(src)); err == nil {
			t.Errorf("ParseASGraph(%q) succeeded, want error", src)
		}
	}
}

func TestProvidersCustomers(t *testing.T) {
	g := &ASGraph{
		ASes: []string{"AS1", "AS2", "AS3"},
		Edges: []ASEdge{
			{A: "AS1", B: "AS2", Kind: ProviderToCustomer},
			{A: "AS1", B: "AS3", Kind: ProviderToCustomer},
			{A: "AS2", B: "AS3", Kind: PeerToPeer},
		},
	}
	if got := g.Customers("AS1"); !reflect.DeepEqual(got, []string{"AS2", "AS3"}) {
		t.Fatalf("Customers(AS1) = %v", got)
	}
	if got := g.Providers("AS3"); !reflect.DeepEqual(got, []string{"AS1"}) {
		t.Fatalf("Providers(AS3) = %v", got)
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return false
		}
	}
	return true
}
