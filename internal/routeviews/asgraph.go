package routeviews

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"unicode"
)

// LinkKind classifies one inter-AS adjacency in the CAIDA
// AS-relationship convention: -1 means the first AS provides transit
// to the second (provider-to-customer), 0 means settlement-free peers.
type LinkKind int

// AS relationship kinds (CAIDA serialization values).
const (
	ProviderToCustomer LinkKind = -1
	PeerToPeer         LinkKind = 0
)

// ASEdge is one edge of an AS-level topology. For ProviderToCustomer
// edges A is the provider and B the customer; for PeerToPeer the order
// carries no meaning.
type ASEdge struct {
	A, B string
	Kind LinkKind
}

// ASGraph is an AS-level topology: the sorted AS list plus its
// classified adjacencies, in the shape RouteViews-derived topologies
// (CAIDA serial-1 AS-relationship files) come in.
type ASGraph struct {
	ASes  []string
	Edges []ASEdge
}

// ASGraphOptions tunes the synthetic AS-graph generator.
type ASGraphOptions struct {
	// Nodes is the total AS count (>= 4).
	Nodes int
	// Tier1 is the size of the fully-meshed transit-free core
	// (values < 2 mean a default of min(4, Nodes)).
	Tier1 int
	// TransitFrac is the fraction of non-core ASes that are mid-tier
	// transit providers rather than stubs (default 0.15).
	TransitFrac float64
	// MaxProviders bounds how many upstreams a non-core AS buys
	// transit from; the actual count is 1 + geometric-ish noise
	// (default 2). Larger values densify the graph.
	MaxProviders int
	// PeerP is the probability that a mid-tier AS peers with another
	// randomly chosen mid-tier AS (default 0.2).
	PeerP float64
	// Seed makes generation deterministic.
	Seed int64
}

func (o ASGraphOptions) withDefaults() ASGraphOptions {
	if o.Tier1 < 2 {
		o.Tier1 = 4
	}
	if o.Tier1 > o.Nodes {
		o.Tier1 = o.Nodes
	}
	if o.TransitFrac <= 0 {
		o.TransitFrac = 0.15
	}
	if o.MaxProviders < 1 {
		o.MaxProviders = 2
	}
	if o.PeerP < 0 {
		o.PeerP = 0
	}
	return o
}

// ASName returns the canonical zero-padded AS name used by the
// generator: padding keeps the engine's lexicographic node order equal
// to numeric order at any scale.
func ASName(i, total int) string {
	width := 1
	for p := 10; p <= total; p *= 10 {
		width++
	}
	return fmt.Sprintf("AS%0*d", width, i)
}

// GenerateASGraph produces a synthetic internet-like AS topology:
// a fully-meshed tier-1 core of peers, a layer of mid-tier transit
// providers, and a majority of stub ASes, with providers drawn by
// preferential attachment so customer-cone sizes follow the heavy
// tail seen in real RouteViews/CAIDA graphs. The result is connected
// (every AS has an all-customer path from the core) and deterministic
// for a given options value.
func GenerateASGraph(opts ASGraphOptions) (*ASGraph, error) {
	o := opts.withDefaults()
	if o.Nodes < 4 {
		return nil, fmt.Errorf("routeviews: AS graph needs >= 4 nodes, got %d", o.Nodes)
	}
	rng := rand.New(rand.NewSource(o.Seed))
	g := &ASGraph{ASes: make([]string, o.Nodes)}
	for i := range g.ASes {
		g.ASes[i] = ASName(i+1, o.Nodes)
	}

	// Tier-1 core: full peer mesh.
	for i := 0; i < o.Tier1; i++ {
		for j := i + 1; j < o.Tier1; j++ {
			g.Edges = append(g.Edges, ASEdge{A: g.ASes[i], B: g.ASes[j], Kind: PeerToPeer})
		}
	}

	nTransit := int(float64(o.Nodes-o.Tier1) * o.TransitFrac)
	transitEnd := o.Tier1 + nTransit // ASes [Tier1, transitEnd) are mid-tier

	// weight[i] tracks 1 + customer count for preferential attachment.
	weight := make([]int, o.Nodes)
	for i := range weight {
		weight[i] = 1
	}
	// pickProvider draws an AS index from [0, limit) weighted by
	// customer cone, skipping self.
	pickProvider := func(limit, self int) int {
		total := 0
		for i := 0; i < limit; i++ {
			if i == self {
				continue
			}
			total += weight[i]
		}
		r := rng.Intn(total)
		for i := 0; i < limit; i++ {
			if i == self {
				continue
			}
			r -= weight[i]
			if r < 0 {
				return i
			}
		}
		panic("unreachable")
	}

	seen := map[[2]string]bool{}
	link := func(a, b int, kind LinkKind) bool {
		ka, kb := g.ASes[a], g.ASes[b]
		if ka > kb {
			ka, kb = kb, ka
		}
		key := [2]string{ka, kb}
		if seen[key] {
			return false
		}
		seen[key] = true
		g.Edges = append(g.Edges, ASEdge{A: g.ASes[a], B: g.ASes[b], Kind: kind})
		return true
	}

	for i := o.Tier1; i < o.Nodes; i++ {
		// Mid-tier ASes attach under the core or other mid-tiers that
		// came before them; stubs attach under anything non-stub.
		limit := transitEnd
		if i < transitEnd {
			limit = i
			if limit < o.Tier1 {
				limit = o.Tier1
			}
		}
		if limit > i {
			limit = i
		}
		nProv := 1
		for nProv < o.MaxProviders && rng.Float64() < 0.35 {
			nProv++
		}
		for p := 0; p < nProv; p++ {
			prov := pickProvider(limit, i)
			if link(prov, i, ProviderToCustomer) {
				weight[prov]++
			}
		}
		// Occasional lateral peering between mid-tier ASes.
		if i >= o.Tier1 && i < transitEnd && i > o.Tier1 && rng.Float64() < o.PeerP {
			peer := o.Tier1 + rng.Intn(i-o.Tier1)
			if peer != i {
				link(peer, i, PeerToPeer)
			}
		}
	}
	return g, nil
}

// Providers returns the providers of one AS, sorted.
func (g *ASGraph) Providers(as string) []string {
	var out []string
	for _, e := range g.Edges {
		if e.Kind == ProviderToCustomer && e.B == as {
			out = append(out, e.A)
		}
	}
	sort.Strings(out)
	return out
}

// Customers returns the customers of one AS, sorted.
func (g *ASGraph) Customers(as string) []string {
	var out []string
	for _, e := range g.Edges {
		if e.Kind == ProviderToCustomer && e.A == as {
			out = append(out, e.B)
		}
	}
	sort.Strings(out)
	return out
}

// WriteASGraph serializes the graph in the CAIDA serial-1 relationship
// format (`a|b|-1` provider-to-customer, `a|b|0` peer-to-peer), one
// edge per line, preceded by a comment naming every AS so isolated
// nodes survive a round trip.
func WriteASGraph(w io.Writer, g *ASGraph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# ases %s\n", strings.Join(g.ASes, " ")); err != nil {
		return err
	}
	for _, e := range g.Edges {
		if _, err := fmt.Fprintf(bw, "%s|%s|%d\n", e.A, e.B, e.Kind); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseASGraph reads the CAIDA-style relationship format produced by
// WriteASGraph (and by externally derived RouteViews/CAIDA fixtures):
// `a|b|-1` or `a|b|0` records, '#' comments (a `# ases ...` comment
// declares the node list explicitly; otherwise it is inferred from the
// edges), blank lines skipped.
func ParseASGraph(r io.Reader) (*ASGraph, error) {
	g := &ASGraph{}
	declared := false
	names := map[string]bool{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if fields := strings.Fields(strings.TrimPrefix(line, "#")); len(fields) > 1 && fields[0] == "ases" {
				declared = true
				for _, as := range fields[1:] {
					if !names[as] {
						names[as] = true
						g.ASes = append(g.ASes, as)
					}
				}
			}
			continue
		}
		parts := strings.Split(line, "|")
		if len(parts) != 3 {
			return nil, fmt.Errorf("routeviews: as-graph line %d: want a|b|rel, got %q", lineNo, line)
		}
		a, b := parts[0], parts[1]
		if a == "" || b == "" {
			return nil, fmt.Errorf("routeviews: as-graph line %d: empty AS name", lineNo)
		}
		// Names are whitespace-separated in the `# ases` header, so a
		// name containing whitespace could never round-trip.
		if strings.ContainsFunc(a+b, unicode.IsSpace) {
			return nil, fmt.Errorf("routeviews: as-graph line %d: AS name contains whitespace", lineNo)
		}
		if a == b {
			return nil, fmt.Errorf("routeviews: as-graph line %d: self-loop %s", lineNo, a)
		}
		var kind LinkKind
		switch parts[2] {
		case "-1":
			kind = ProviderToCustomer
		case "0":
			kind = PeerToPeer
		default:
			return nil, fmt.Errorf("routeviews: as-graph line %d: bad relationship %q", lineNo, parts[2])
		}
		if declared && (!names[a] || !names[b]) {
			return nil, fmt.Errorf("routeviews: as-graph line %d: edge references undeclared AS", lineNo)
		}
		if !declared {
			for _, as := range []string{a, b} {
				if !names[as] {
					names[as] = true
					g.ASes = append(g.ASes, as)
				}
			}
		}
		g.Edges = append(g.Edges, ASEdge{A: a, B: b, Kind: kind})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !declared {
		sort.Strings(g.ASes)
	}
	if len(g.ASes) == 0 {
		return nil, fmt.Errorf("routeviews: as-graph is empty")
	}
	return g, nil
}

// ValidateASGraph checks structural invariants: no duplicate edges, no
// self-loops, and (when connected is set) every AS reachable from
// every other over the undirected adjacency.
func ValidateASGraph(g *ASGraph, connected bool) error {
	names := map[string]bool{}
	for _, as := range g.ASes {
		if names[as] {
			return fmt.Errorf("routeviews: duplicate AS %s", as)
		}
		names[as] = true
	}
	adj := map[string][]string{}
	seen := map[[2]string]bool{}
	for _, e := range g.Edges {
		if !names[e.A] || !names[e.B] {
			return fmt.Errorf("routeviews: edge %s|%s references unknown AS", e.A, e.B)
		}
		if e.A == e.B {
			return fmt.Errorf("routeviews: self-loop at %s", e.A)
		}
		a, b := e.A, e.B
		if a > b {
			a, b = b, a
		}
		k := [2]string{a, b}
		if seen[k] {
			return fmt.Errorf("routeviews: duplicate edge %s|%s", e.A, e.B)
		}
		seen[k] = true
		adj[e.A] = append(adj[e.A], e.B)
		adj[e.B] = append(adj[e.B], e.A)
	}
	if connected && len(g.ASes) > 0 {
		visited := map[string]bool{g.ASes[0]: true}
		frontier := []string{g.ASes[0]}
		for len(frontier) > 0 {
			n := frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			for _, m := range adj[n] {
				if !visited[m] {
					visited[m] = true
					frontier = append(frontier, m)
				}
			}
		}
		if len(visited) != len(g.ASes) {
			return fmt.Errorf("routeviews: graph not connected (%d of %d reachable)", len(visited), len(g.ASes))
		}
	}
	return nil
}
