package routeviews

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzParseRouteViews shakes the trace parser with arbitrary input and
// enforces the parse/serialize round trip: any trace the parser
// accepts must re-serialize to a form that parses back to the
// identical events. Wired into `make fuzz`.
func FuzzParseRouteViews(f *testing.F) {
	f.Add("# comment\n0 A 10.0.0.0/24 AS1\n1 W 10.0.0.0/24 AS1\n")
	f.Add("5 A 192.0.2.0/24 AS8")
	f.Add("")
	f.Add("0 A p o\n0 W p o\n")
	f.Add("-3 A x y\n")
	f.Add("00 A é ☃\n")
	events, err := Generate(DefaultGenOptions([]string{"AS1", "AS2", "AS3"}))
	if err != nil {
		f.Fatal(err)
	}
	var seed bytes.Buffer
	if err := Write(&seed, events); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())

	f.Fuzz(func(t *testing.T, src string) {
		evs, err := Parse(strings.NewReader(src))
		if err != nil {
			return // rejected input: only panics count as failures
		}
		var buf bytes.Buffer
		if err := Write(&buf, evs); err != nil {
			t.Fatalf("Write failed on parsed events: %v", err)
		}
		again, err := Parse(&buf)
		if err != nil {
			t.Fatalf("re-parse of serialized trace failed: %v\ninput: %q\nserialized: %q", err, src, buf.String())
		}
		if len(evs) != 0 || len(again) != 0 {
			if !reflect.DeepEqual(evs, again) {
				t.Fatalf("round trip changed events:\nfirst  %v\nsecond %v", evs, again)
			}
		}
	})
}

// FuzzParseASGraph does the same for the AS-graph fixture parser.
func FuzzParseASGraph(f *testing.F) {
	f.Add("# ases AS1 AS2\nAS1|AS2|-1\n")
	f.Add("a|b|0\nb|c|-1\n")
	f.Add("#\n\n")
	g, err := GenerateASGraph(ASGraphOptions{Nodes: 12, Seed: 2})
	if err != nil {
		f.Fatal(err)
	}
	var seed bytes.Buffer
	if err := WriteASGraph(&seed, g); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())

	f.Fuzz(func(t *testing.T, src string) {
		g, err := ParseASGraph(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteASGraph(&buf, g); err != nil {
			t.Fatalf("WriteASGraph failed on parsed graph: %v", err)
		}
		again, err := ParseASGraph(&buf)
		if err != nil {
			t.Fatalf("re-parse of serialized graph failed: %v\ninput: %q\nserialized: %q", err, src, buf.String())
		}
		if !reflect.DeepEqual(g, again) {
			t.Fatalf("round trip changed graph:\nfirst  %+v\nsecond %+v", g, again)
		}
	})
}
