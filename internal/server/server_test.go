package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/protocols"
	"repro/internal/provquery"
	"repro/internal/rel"
)

// buildGrid boots a converged MINCOST engine on a side x side grid.
func buildGrid(t testing.TB, side int) *engine.Engine {
	t.Helper()
	n := side * side
	e, err := protocols.Build(protocols.MinCost, protocols.NodeNames(n),
		protocols.GridTopology(side, side, 1), engine.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func newServer(t testing.TB, e *engine.Engine, retain int) (*Publisher, *httptest.Server) {
	t.Helper()
	pub, err := NewPublisher(e, retain)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(pub, Info{Protocol: "mincost"}))
	t.Cleanup(ts.Close)
	return pub, ts
}

func get(t testing.TB, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func post(t testing.TB, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func TestHealthzAndNodes(t *testing.T) {
	e := buildGrid(t, 2)
	_, ts := newServer(t, e, 0)

	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d %s", code, body)
	}
	var h struct {
		OK       bool   `json:"ok"`
		Protocol string `json:"protocol"`
		Version  uint64 `json:"version"`
		Nodes    int    `json:"nodes"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Protocol != "mincost" || h.Nodes != 4 || h.Version == 0 {
		t.Fatalf("healthz = %+v", h)
	}

	code, body = get(t, ts.URL+"/nodes")
	if code != http.StatusOK {
		t.Fatalf("nodes: %d %s", code, body)
	}
	var ns struct {
		Nodes []struct {
			Addr      string   `json:"addr"`
			Tuples    int      `json:"tuples"`
			Neighbors []string `json:"neighbors"`
		} `json:"nodes"`
	}
	if err := json.Unmarshal(body, &ns); err != nil {
		t.Fatal(err)
	}
	if len(ns.Nodes) != 4 || ns.Nodes[0].Addr != "n1" || ns.Nodes[0].Tuples == 0 {
		t.Fatalf("nodes = %+v", ns)
	}
	if len(ns.Nodes[0].Neighbors) != 2 {
		t.Fatalf("n1 neighbors = %v", ns.Nodes[0].Neighbors)
	}
}

func TestStateEndpointAndTimeTravel(t *testing.T) {
	e := buildGrid(t, 2)
	pub, ts := newServer(t, e, 0)

	code, body := get(t, ts.URL+"/state/n1")
	if code != http.StatusOK {
		t.Fatalf("state: %d %s", code, body)
	}
	var st struct {
		Node   string `json:"node"`
		Tables map[string][]struct {
			Rel  string   `json:"rel"`
			Vals []string `json:"vals"`
			Text string   `json:"text"`
		} `json:"tables"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Node != "n1" || len(st.Tables["mincost"]) == 0 || len(st.Tables["link"]) == 0 {
		t.Fatalf("state = %s", body)
	}

	// Relation filter.
	code, body = get(t, ts.URL+"/state/n1?rel=link")
	if code != http.StatusOK {
		t.Fatalf("state?rel: %d %s", code, body)
	}
	var filtered struct {
		Tables map[string]json.RawMessage `json:"tables"`
	}
	if err := json.Unmarshal(body, &filtered); err != nil {
		t.Fatal(err)
	}
	if len(filtered.Tables) != 1 || len(filtered.Tables["link"]) == 0 {
		t.Fatalf("filtered state = %s", body)
	}

	// Unknown node.
	if code, _ := get(t, ts.URL+"/state/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown node: %d", code)
	}

	// Time travel: mutate, then read back the pre-change instant.
	preTime := pub.Current().Time
	preBody := func() []byte {
		_, b := get(t, ts.URL+"/state/n1?rel=mincost")
		return b
	}()
	if err := e.RemoveBiLink("n1", "n2", 1); err != nil {
		t.Fatal(err)
	}
	e.RunQuiescent()
	if pub.Current().Time <= preTime {
		t.Fatalf("virtual time did not advance: %d -> %d", preTime, pub.Current().Time)
	}
	code, body = get(t, fmt.Sprintf("%s/state/n1?rel=mincost&t=%d", ts.URL, int64(preTime)))
	if code != http.StatusOK {
		t.Fatalf("time travel: %d %s", code, body)
	}
	var pre, travel struct {
		Tables map[string]json.RawMessage `json:"tables"`
	}
	if err := json.Unmarshal(preBody, &pre); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body, &travel); err != nil {
		t.Fatal(err)
	}
	if string(pre.Tables["mincost"]) != string(travel.Tables["mincost"]) {
		t.Fatalf("historical read diverged:\n%s\nvs\n%s", pre.Tables["mincost"], travel.Tables["mincost"])
	}
}

func TestQueryEndpointTextAndStructured(t *testing.T) {
	e := buildGrid(t, 2)
	_, ts := newServer(t, e, 0)

	code, body := post(t, ts.URL+"/query", `{"q":"lineage of mincost(@'n1','n4',2)"}`)
	if code != http.StatusOK {
		t.Fatalf("text query: %d %s", code, body)
	}
	var q struct {
		Type  string `json:"type"`
		Proof *struct {
			Tuple *struct {
				Text string `json:"text"`
			} `json:"tuple"`
		} `json:"proof"`
		Text string `json:"text"`
	}
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatal(err)
	}
	if q.Type != "lineage" || q.Proof == nil || q.Proof.Tuple.Text != "mincost(@n1, n4, 2)" {
		t.Fatalf("query = %s", body)
	}
	if !strings.Contains(q.Text, "via rule") {
		t.Fatalf("rendered text missing rules:\n%s", q.Text)
	}

	code, body = post(t, ts.URL+"/query",
		`{"type":"count","tuple":"mincost(@'n1','n4',2)","options":{"threshold":1}}`)
	if code != http.StatusOK {
		t.Fatalf("structured query: %d %s", code, body)
	}
	var c struct {
		Count  *int `json:"count"`
		Pruned bool `json:"pruned"`
	}
	if err := json.Unmarshal(body, &c); err != nil {
		t.Fatal(err)
	}
	if c.Count == nil || *c.Count != 1 || !c.Pruned {
		t.Fatalf("pruned count = %s", body)
	}

	// Bases of a derived tuple are link facts.
	code, body = post(t, ts.URL+"/query", `{"q":"bases of mincost(@'n1','n4',2)"}`)
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"rel": "link"`)) {
		t.Fatalf("bases query: %d %s", code, body)
	}

	// Errors: bad body, malformed textual query, missing provenance,
	// bad type. Malformed queries are 400; only missing provenance in
	// an otherwise valid query is 404.
	if code, _ := post(t, ts.URL+"/query", `{`); code != http.StatusBadRequest {
		t.Fatalf("bad body: %d", code)
	}
	if code, _ := post(t, ts.URL+"/query", `{"q":"explain mincost(@'n1','n4',2)"}`); code != http.StatusBadRequest {
		t.Fatalf("malformed textual query: %d", code)
	}
	if code, _ := post(t, ts.URL+"/query", `{"q":"lineage of mincost(@'n1','n4'"}`); code != http.StatusBadRequest {
		t.Fatalf("unterminated tuple literal: %d", code)
	}
	if code, _ := post(t, ts.URL+"/query", `{"q":"lineage of mincost(@'n1','n4',99)"}`); code != http.StatusNotFound {
		t.Fatalf("unknown tuple: %d", code)
	}
	if code, _ := post(t, ts.URL+"/query", `{"type":"wat","tuple":"link(@'n1','n2',1)"}`); code != http.StatusBadRequest {
		t.Fatalf("bad type: %d", code)
	}
}

func TestProofDOTEndpoint(t *testing.T) {
	e := buildGrid(t, 2)
	_, ts := newServer(t, e, 0)
	code, body := get(t, ts.URL+"/proof.dot?tuple=mincost(@'n1','n4',2)")
	if code != http.StatusOK {
		t.Fatalf("proof.dot: %d %s", code, body)
	}
	text := string(body)
	for _, want := range []string{"digraph provenance", "shape=box", "shape=ellipse", "cluster_"} {
		if !strings.Contains(text, want) {
			t.Fatalf("DOT missing %q:\n%s", want, text)
		}
	}
}

func TestPublisherVersioningAndRetention(t *testing.T) {
	e := buildGrid(t, 2)
	pub, err := NewPublisher(e, 2)
	if err != nil {
		t.Fatal(err)
	}
	v1 := pub.Current().Version

	// Publishing without state change must not mint a version.
	pub.Publish()
	if pub.Current().Version != v1 {
		t.Fatalf("version advanced without a state change: %d -> %d", v1, pub.Current().Version)
	}

	churn := func() {
		t.Helper()
		if err := e.RemoveBiLink("n1", "n2", 1); err != nil {
			t.Fatal(err)
		}
		e.RunQuiescent()
		if err := e.AddBiLink("n1", "n2", 1); err != nil {
			t.Fatal(err)
		}
		e.RunQuiescent()
	}
	churn()
	v2 := pub.Current().Version
	if v2 <= v1 {
		t.Fatalf("version did not advance with churn: %d -> %d", v1, v2)
	}

	// retain=2: after enough churn the first version must age out.
	churn()
	if _, ok := pub.At(v1); ok {
		t.Fatalf("version %d still retained with retain=2 at newest %d", v1, pub.Current().Version)
	}
	if snap, ok := pub.At(pub.Current().Version); !ok || snap.Version != pub.Current().Version {
		t.Fatal("current version must always be pinnable")
	}
	if _, ok := pub.At(pub.Current().Version + 100); ok {
		t.Fatal("future version must not resolve")
	}
}

// TestPinnedQueriesByteIdenticalUnderChurn is the acceptance check:
// while the simulation actively advances epochs, two concurrent /query
// requests pinned to the same snapshot version return byte-identical
// JSON. Run with -race to also prove the reader/scheduler isolation.
func TestPinnedQueriesByteIdenticalUnderChurn(t *testing.T) {
	e := buildGrid(t, 3)
	pub, ts := newServer(t, e, 0)

	const rounds = 25
	done := make(chan struct{})
	go func() {
		// Simulation thread: keep tearing the grid apart and healing it.
		defer close(done)
		for i := 0; i < rounds; i++ {
			if err := e.RemoveBiLink("n4", "n5", 1); err != nil {
				t.Error(err)
				return
			}
			e.RunQuiescent()
			if err := e.AddBiLink("n4", "n5", 1); err != nil {
				t.Error(err)
				return
			}
			e.RunQuiescent()
		}
	}()

	query := func(version uint64) (int, []byte) {
		return post(t, ts.URL+"/query", fmt.Sprintf(
			`{"q":"lineage of mincost(@'n1','n9',4)","version":%d}`, version))
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	versionsSeen := map[uint64]bool{}
	compared := 0
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				v := pub.Current().Version
				type reply struct {
					code int
					body []byte
				}
				replies := make(chan reply, 2)
				var inner sync.WaitGroup
				for k := 0; k < 2; k++ {
					inner.Add(1)
					go func() {
						defer inner.Done()
						code, body := query(v)
						replies <- reply{code, body}
					}()
				}
				inner.Wait()
				close(replies)
				a := <-replies
				b := <-replies
				if a.code == http.StatusGone || b.code == http.StatusGone {
					continue // pinned version aged out mid-flight; allowed
				}
				if a.code != b.code || !bytes.Equal(a.body, b.body) {
					t.Errorf("version %d: concurrent pinned queries diverged:\n%d %s\nvs\n%d %s",
						v, a.code, a.body, b.code, b.body)
					return
				}
				mu.Lock()
				versionsSeen[v] = true
				compared++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	<-done
	if compared == 0 {
		t.Fatal("no pinned query pair ever completed")
	}
	if len(versionsSeen) < 2 {
		t.Logf("note: only %d distinct versions observed (slow machine?)", len(versionsSeen))
	}
	if got := pub.Current().Version; got < rounds {
		t.Fatalf("simulation published only %d versions over %d churn rounds", got, rounds)
	}
}

// TestSnapshotStableWhileSimulationAdvances pins one snapshot and
// checks its query answer does not change as the live system diverges.
func TestSnapshotStableWhileSimulationAdvances(t *testing.T) {
	e := buildGrid(t, 2)
	pub, ts := newServer(t, e, 0)

	v := pub.Current().Version
	q := fmt.Sprintf(`{"q":"count of mincost(@'n1','n4',2)","version":%d}`, v)
	_, before := post(t, ts.URL+"/query", q)

	if err := e.RemoveBiLink("n1", "n2", 1); err != nil {
		t.Fatal(err)
	}
	e.RunQuiescent()

	_, after := post(t, ts.URL+"/query", q)
	if !bytes.Equal(before, after) {
		t.Fatalf("pinned snapshot changed under the reader:\n%s\nvs\n%s", before, after)
	}
	// The live current snapshot, by contrast, must reflect the change.
	_, live := post(t, ts.URL+"/query", `{"q":"count of mincost(@'n1','n4',2)"}`)
	if bytes.Equal(before, live) {
		t.Fatal("current snapshot never advanced past the pinned one")
	}
}

// getFull is get plus response headers (for cache assertions).
func getFull(t testing.TB, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func postFull(t testing.TB, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestQueryCacheServesRepeatedPinnedQueries is the HTTP acceptance test
// of the per-version sub-proof cache: the first pinned query misses,
// every repeat hits, hit counters advance, and hit/miss bodies are
// byte-identical.
func TestQueryCacheServesRepeatedPinnedQueries(t *testing.T) {
	e := buildGrid(t, 3)
	pub, ts := newServer(t, e, 0)
	v := pub.Current().Version
	q := fmt.Sprintf(`{"q":"lineage of mincost(@'n1','n9',4)","version":%d}`, v)

	first, firstBody := postFull(t, ts.URL+"/query", q)
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first query: %d %s", first.StatusCode, firstBody)
	}
	if got := first.Header.Get("X-Cache"); got != "MISS" {
		t.Fatalf("first query X-Cache = %q, want MISS", got)
	}

	second, secondBody := postFull(t, ts.URL+"/query", q)
	if got := second.Header.Get("X-Cache"); got != "HIT" {
		t.Fatalf("second query X-Cache = %q, want HIT", got)
	}
	if !bytes.Equal(firstBody, secondBody) {
		t.Fatalf("cache hit body diverged from miss body:\n%s\nvs\n%s", firstBody, secondBody)
	}
	if hits := second.Header.Get("X-Cache-Hits"); hits != "1" {
		t.Fatalf("X-Cache-Hits = %q, want 1", hits)
	}
	third, _ := postFull(t, ts.URL+"/query", q)
	if hits := third.Header.Get("X-Cache-Hits"); hits != "2" {
		t.Fatalf("X-Cache-Hits = %q, want 2", hits)
	}
	if misses := third.Header.Get("X-Cache-Misses"); misses != "1" {
		t.Fatalf("X-Cache-Misses = %q, want 1", misses)
	}
	if hits, misses := pub.Current().CacheCounters(); hits != 2 || misses != 1 {
		t.Fatalf("CacheCounters = %d/%d, want 2/1", hits, misses)
	}

	// A different option set is a different sub-proof: it must miss.
	alt, _ := postFull(t, ts.URL+"/query", fmt.Sprintf(
		`{"q":"lineage of mincost(@'n1','n9',4) with threshold 1","version":%d}`, v))
	if got := alt.Header.Get("X-Cache"); got != "MISS" {
		t.Fatalf("different options X-Cache = %q, want MISS", got)
	}

	// proof.dot shares the same cache (lineage + default options).
	dot1, _ := getFull(t, fmt.Sprintf("%s/proof.dot?tuple=mincost(@'n1','n9',4)&version=%d", ts.URL, v))
	if got := dot1.Header.Get("X-Cache"); got != "HIT" {
		t.Fatalf("proof.dot after cached lineage X-Cache = %q, want HIT", got)
	}

	// Go-level counters surface in Stats on the copy CachedQuery returns.
	mc, err := nettrailsParse("mincost(@'n1','n9',4)")
	if err != nil {
		t.Fatal(err)
	}
	res, hit, err := pub.Current().CachedQuery(provquery.Lineage, "n1", mc, provquery.Options{})
	if err != nil || !hit {
		t.Fatalf("CachedQuery hit=%v err=%v", hit, err)
	}
	if res.Stats.SubProofHits == 0 || res.Stats.SubProofMisses == 0 {
		t.Fatalf("Stats cache counters not set: %+v", res.Stats)
	}
}

// nettrailsParse avoids importing the root facade: tuple literals parse
// through provquery like the HTTP handlers do.
func nettrailsParse(lit string) (rel.Tuple, error) {
	return provquery.ParseTupleLiteral(lit)
}

// TestUnknownRoutesAndMethodsAreStructuredJSON: every error the server
// emits — including unmatched paths and wrong methods — is JSON with
// the right status code.
func TestUnknownRoutesAndMethodsAreStructuredJSON(t *testing.T) {
	e := buildGrid(t, 2)
	_, ts := newServer(t, e, 0)

	assertJSONError := func(resp *http.Response, body []byte, wantCode int, wantErrCode string) {
		t.Helper()
		if resp.StatusCode != wantCode {
			t.Fatalf("status = %d, want %d (%s)", resp.StatusCode, wantCode, body)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("Content-Type = %q, want application/json", ct)
		}
		var e struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error.Code == "" || e.Error.Message == "" {
			t.Fatalf("not a structured error envelope: %s", body)
		}
		if e.Error.Code != wantErrCode {
			t.Fatalf("error code = %q, want %q (%s)", e.Error.Code, wantErrCode, body)
		}
	}

	resp, body := getFull(t, ts.URL+"/nope")
	assertJSONError(resp, body, http.StatusNotFound, ErrUnknownEndpoint)

	resp, body = postFull(t, ts.URL+"/nodes", `{}`)
	assertJSONError(resp, body, http.StatusMethodNotAllowed, ErrMethodNotAllowed)
	if allow := resp.Header.Get("Allow"); allow != "GET" {
		t.Fatalf("Allow = %q, want GET", allow)
	}
	resp, body = getFull(t, ts.URL+"/query")
	assertJSONError(resp, body, http.StatusMethodNotAllowed, ErrMethodNotAllowed)

	resp, body = getFull(t, ts.URL+"/nodes?version=banana")
	assertJSONError(resp, body, http.StatusBadRequest, ErrInvalidRequest)
	resp, body = getFull(t, ts.URL+"/state/n1?version=999999")
	assertJSONError(resp, body, http.StatusGone, ErrSnapshotEvicted)
	resp, body = getFull(t, ts.URL+"/state/ghost")
	assertJSONError(resp, body, http.StatusNotFound, ErrUnknownNode)

	// proof.dot success still carries the Graphviz content type.
	resp, _ = getFull(t, ts.URL+"/proof.dot?tuple=mincost(@'n1','n4',2)")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/vnd.graphviz") {
		t.Fatalf("proof.dot Content-Type = %q", ct)
	}
}

// TestServerTraversalCaps: server-side maxdepth/maxnodes caps clamp
// every query, and request-level limits flow through both request
// forms.
func TestServerTraversalCaps(t *testing.T) {
	e := buildGrid(t, 3)
	pub, err := NewPublisher(e, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(pub, Info{Protocol: "mincost", MaxDepth: 2}))
	t.Cleanup(ts.Close)

	code, body := post(t, ts.URL+"/query", `{"q":"lineage of mincost(@'n1','n9',4)"}`)
	if code != http.StatusOK {
		t.Fatalf("query: %d %s", code, body)
	}
	var q struct {
		Truncated bool `json:"truncated"`
	}
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatal(err)
	}
	if !q.Truncated {
		t.Fatalf("capped server did not truncate: %s", body)
	}

	// The structured form's limits also apply (tighter than the cap).
	code, body = post(t, ts.URL+"/query",
		`{"type":"lineage","tuple":"mincost(@'n1','n9',4)","options":{"maxdepth":1}}`)
	if code != http.StatusOK {
		t.Fatalf("structured query: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatal(err)
	}
	if !q.Truncated {
		t.Fatalf("structured maxdepth did not truncate: %s", body)
	}
}

// TestQueryCacheBounded: the per-snapshot sub-proof cache stops
// growing at its entry cap — request-controlled option values must not
// let a client grow server memory without bound — while already-cached
// keys keep hitting.
func TestQueryCacheBounded(t *testing.T) {
	e := buildGrid(t, 2)
	pub, err := NewPublisher(e, 0)
	if err != nil {
		t.Fatal(err)
	}
	snap := pub.Current()
	mc, err := provquery.ParseTupleLiteral("mincost(@'n1','n4',2)")
	if err != nil {
		t.Fatal(err)
	}
	// Distinct never-pruning thresholds mint distinct keys.
	for i := 0; i <= maxQueryCacheEntries; i++ {
		if _, _, err := snap.CachedQuery(provquery.DerivCount, "n1", mc,
			provquery.Options{Threshold: 1000 + i}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(snap.cache.m); got > maxQueryCacheEntries {
		t.Fatalf("cache grew to %d entries past the %d cap", got, maxQueryCacheEntries)
	}
	// A fresh key against the full cache evaluates but is not stored.
	fresh := provquery.Options{Threshold: 999999}
	if _, hit, err := snap.CachedQuery(provquery.DerivCount, "n1", mc, fresh); err != nil || hit {
		t.Fatalf("fresh key on full cache: hit=%v err=%v", hit, err)
	}
	if _, hit, err := snap.CachedQuery(provquery.DerivCount, "n1", mc, fresh); err != nil || hit {
		t.Fatalf("full cache must not store new keys: hit=%v err=%v", hit, err)
	}
	// An entry cached before the cap still hits.
	if _, hit, err := snap.CachedQuery(provquery.DerivCount, "n1", mc,
		provquery.Options{Threshold: 1000}); err != nil || !hit {
		t.Fatalf("pre-cap entry: hit=%v err=%v", hit, err)
	}
}
