// Package server turns a NetTrails simulation into a concurrent
// provenance query service: cmd/nettrailsd runs it behind an HTTP JSON
// API. Its core mechanism is epoch-snapshot isolation.
//
// The engine is single-threaded by contract — every runtime, table,
// and provenance partition belongs to the simulation thread (plus the
// epoch scheduler's confined workers). Live provquery queries are
// themselves simulation events: they travel over the simulated network
// and advance virtual time, so they cannot run concurrently with the
// simulation or with each other. A query *server* therefore never
// touches live state. Instead, a Publisher hooks the engine's epoch
// observer: after every fully-delivered virtual-time epoch — a
// consistent cut of the distributed execution — it builds an immutable
// Snapshot (copy-on-publish, with per-table and per-partition version
// tracking so unchanged state is handed off rather than re-copied) and
// swaps it into an atomic pointer. HTTP readers load the pointer and
// evaluate queries with provquery.SnapshotClient against the frozen
// views:
//
//   - readers never block the simulation loop (they take no locks the
//     publisher ever holds; publishing is one atomic store),
//   - the simulation never blocks readers (old snapshots stay valid
//     after newer ones are published),
//   - two queries pinned to the same snapshot version always see
//     byte-identical state, no matter how far the simulation has
//     advanced in between.
//
// A bounded ring of recent snapshots supports version pinning, and a
// logstore history of per-node captures supports time-travel reads
// (GET /state/{node}?t=...).
package server

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/logstore"
	"repro/internal/provenance"
	"repro/internal/provquery"
	"repro/internal/provstore"
	"repro/internal/rel"
	"repro/internal/simnet"
)

// ShardSpec places one serving process inside a sharded deployment:
// it is shard Index of Total. Node ownership is positional and
// deterministic — the network's sorted node list is dealt round-robin,
// so node k (0-based position in the sorted list) belongs to shard
// k mod Total. Every shard and every gateway derives the same routing
// table from the node list alone; no coordination service is needed.
// The zero value (and any Total <= 1) means unsharded: one process
// owns every partition.
type ShardSpec struct {
	// Index is this shard's 0-based position, 0 <= Index < Total.
	Index int
	// Total is how many shards the deployment is split across.
	Total int
}

// Unsharded reports whether the spec describes a whole-network
// (single-process) deployment.
func (s ShardSpec) Unsharded() bool { return s.Total <= 1 }

// String renders the spec in the "index/total" form the -shard flag
// accepts.
func (s ShardSpec) String() string { return fmt.Sprintf("%d/%d", s.Index, s.Total) }

// ShardOf returns which shard of total owns the node at 0-based
// position pos of the sorted node list.
func ShardOf(pos, total int) int {
	if total <= 1 {
		return 0
	}
	return pos % total
}

// OwnedNodes filters the sorted node list down to the addresses the
// spec's shard owns (all of them when unsharded).
func (s ShardSpec) OwnedNodes(sorted []string) []string {
	if s.Unsharded() {
		return sorted
	}
	var out []string
	for i, addr := range sorted {
		if ShardOf(i, s.Total) == s.Index {
			out = append(out, addr)
		}
	}
	return out
}

// NodeInfo is the per-node metadata frozen into a snapshot.
//
// nettrails:frozen
type NodeInfo struct {
	Addr      string
	Neighbors []string
	Tuples    int // visible tuples across all tables
	Prov      provenance.Stats
	SentMsgs  int
	SentBytes int
}

// nodeState is one node's frozen partition inside a snapshot: the
// persistent table views, the provenance view, and the published
// metadata. When a node processed nothing between two epochs its
// *nodeState is carried into the next snapshot untouched — the handoff
// that makes publishing O(changed nodes), not O(network).
//
// nettrails:frozen (enforced by the frozenwrite analyzer)
type nodeState struct {
	tables map[string]*rel.Frozen
	view   *provenance.View
	info   NodeInfo
}

// Snapshot is one immutable published view of the whole system at a
// consistent virtual instant. Everything reachable from a Snapshot is
// frozen: concurrent readers share it without synchronization, and
// consecutive snapshots share every per-node state (tables, views,
// history rows) that did not change between them.
//
// nettrails:frozen (enforced by the frozenwrite analyzer)
type Snapshot struct {
	// Version numbers published snapshots densely from 1; it increases
	// only when some node's state actually changed, so equal versions
	// imply identical state.
	Version uint64
	// Time is the virtual time of the epoch that produced the snapshot.
	Time simnet.Time
	// Nodes lists the node addresses this snapshot holds partitions
	// for, sorted — every node of the network when unsharded, only the
	// owned subset on a shard.
	Nodes []string
	// AllNodes lists every node address in the whole network, sorted.
	// Identical to Nodes when unsharded.
	AllNodes []string
	// Shard records which slice of the deployment this snapshot serves
	// (the zero value when unsharded).
	Shard ShardSpec
	// History is the time-indexed log of per-node captures up to and
	// including this snapshot (logstore-backed time travel).
	History *logstore.Store

	// states holds the frozen per-node partitions, parallel to Nodes;
	// index maps address -> position (one map, shared by every snapshot
	// of the publisher — the node set is fixed).
	states []*nodeState
	index  map[string]int
	query  *provquery.SnapshotClient
	// cache memoizes whole query results for this (immutable) version;
	// see querycache.go. It is evicted together with the snapshot when
	// the version ages out of the retention ring.
	cache *queryCache
}

// stateOf returns the frozen state of an owned node, nil otherwise.
func (s *Snapshot) stateOf(addr string) *nodeState {
	if i, ok := s.index[addr]; ok {
		return s.states[i]
	}
	return nil
}

// PartitionView resolves an owned node's provenance view; together
// with KnownNode this makes the snapshot itself the provquery
// ViewResolver, so no per-publish view map is materialized.
func (s *Snapshot) PartitionView(addr string) (provquery.PartitionView, bool) {
	st := s.stateOf(addr)
	if st == nil {
		return nil, false
	}
	return st.view, true
}

// KnownNode reports whether addr is a node of the wider network whose
// partition lives on another shard (always false when unsharded: every
// network node is owned, so an unresolved address is simply unknown).
func (s *Snapshot) KnownNode(addr string) bool {
	if s.Shard.Unsharded() {
		return false
	}
	pos := sort.SearchStrings(s.AllNodes, addr)
	return pos < len(s.AllNodes) && s.AllNodes[pos] == addr
}

// Query evaluates a provenance query against this snapshot. Safe for
// concurrent use.
func (s *Snapshot) Query(typ provquery.QueryType, at string, t rel.Tuple, opts provquery.Options) (*provquery.Result, error) {
	return s.query.Query(typ, at, t, opts)
}

// QueryText evaluates a textual provenance query (provquery.ParseQuery
// grammar) against this snapshot. Safe for concurrent use.
func (s *Snapshot) QueryText(src string) (*provquery.Result, error) {
	return s.query.Run(src)
}

// NodeTables returns a node's frozen tables (persistent views keyed by
// relation); ok is false for unknown nodes.
func (s *Snapshot) NodeTables(addr string) (map[string]*rel.Frozen, bool) {
	st := s.stateOf(addr)
	if st == nil {
		return nil, false
	}
	return st.tables, true
}

// viewOf returns an owned node's provenance view, nil otherwise.
func (s *Snapshot) viewOf(addr string) *provenance.View {
	if st := s.stateOf(addr); st != nil {
		return st.view
	}
	return nil
}

// misdirected returns the wrong-shard error for a node that exists in
// the network but is owned by another shard, and nil otherwise.
func (s *Snapshot) misdirected(addr string) *APIError {
	if s.Shard.Unsharded() || s.stateOf(addr) != nil {
		return nil
	}
	for i, a := range s.AllNodes {
		if a == addr {
			return Errf(http.StatusMisdirectedRequest, ErrWrongShard,
				"node %q is owned by shard %d/%d, not this shard (%s)",
				addr, ShardOf(i, s.Shard.Total), s.Shard.Total, s.Shard)
		}
	}
	return nil
}

// ring is the immutable list of retained snapshots, ascending by
// version; the last element is current. Swapped wholesale on publish.
//
// nettrails:frozen
type ring struct {
	snaps []*Snapshot
}

// Publisher builds snapshots from a live engine and publishes them for
// lock-free readers. All its methods except Current/At/Versions must
// run on the simulation thread (Publish is normally invoked via the
// engine's epoch observer and never called directly).
//
// The engine's node set is fixed once a deployment is constructed, so
// every node list, engine handle, and lookup structure is captured at
// construction; Publish itself allocates nothing per unchanged node.
type Publisher struct {
	eng    *engine.Engine
	retain int
	shard  ShardSpec

	allNodes   []string       // every node, sorted; shared by all snapshots
	nodes      []*engine.Node // parallel to allNodes
	owned      []string       // owned subset, sorted; shared by all snapshots
	ownedNodes []*engine.Node // parallel to owned
	ownedIdx   []int          // allNodes position -> owned position, -1 if unowned
	index      map[string]int // owned addr -> owned position; shared by all snapshots

	cur atomic.Pointer[ring]

	// Dirty tracking, parallel to allNodes. The activity counter gates
	// the scan: a node that processed nothing since the last publish is
	// skipped without touching its stores; when it did run, the state
	// and provenance versions decide precisely — versions are minted
	// only for visible state, so every shard of a deterministic run
	// still mints the identical dense version sequence.
	lastActivity []uint64
	lastState    []uint64
	lastProv     []uint64

	states    []*nodeState        // parallel to owned; spine copied per publish
	dirty     []int               // scratch: owned positions to rebuild this publish
	infoDirty []int               // scratch: owned positions refreshed info-only
	history   []logstore.Snapshot // append-only; wrapped via FromSorted

	// Distributed-mode (engine.DistObserver) accumulation between cuts:
	// Probe may run several times before Commit mints, so dirtiness is
	// gathered sticky here. inDirty is parallel to owned and dedups
	// pendingDirty; pendingChanged remembers that *some* owned node
	// changed since the last Commit.
	pendingDirty   []int
	inDirty        []bool
	pendingChanged bool

	// Disk persistence (nil without a store; see PublisherOptions).
	// verBase is the store's last version at attach time: minting
	// resumes at verBase+1 after a restart, and the first publish is
	// full (every owned node dirty) so the resumed chain stays
	// self-contained. pending/durableLen gate history trimming on what
	// the store has fsynced. The disk cache is the only publisher state
	// HTTP readers mutate, hence its own lock.
	store      *provstore.Store
	verBase    uint64
	pending    []histMark
	durableLen int

	diskMu    sync.Mutex
	diskCache map[uint64]*Snapshot
	diskOrder []uint64 // insertion-ordered diskCache keys (FIFO eviction)
}

// DefaultRetain is how many recent snapshot versions a publisher keeps
// for version-pinned reads when no explicit retention is given.
const DefaultRetain = 64

// NewPublisher attaches a publisher to the engine's epoch observer and
// publishes the initial snapshot (version 1) so Current never returns
// nil. retain bounds how many recent versions stay pinnable (values
// < 1 mean DefaultRetain).
func NewPublisher(eng *engine.Engine, retain int) (*Publisher, error) {
	return NewShardedPublisher(eng, retain, ShardSpec{})
}

// NewShardedPublisher is NewPublisher for one shard of a sharded
// deployment: the publisher freezes and retains only the partitions of
// the nodes the spec owns (round-robin over the sorted node list), so
// snapshot memory, history, and caches scale with the shard, not the
// network. Version numbering stays global: a snapshot is published
// whenever any node's state changed, owned or not, so every shard of
// the same deterministic run mints the same dense version sequence and
// a gateway can pin one version across all of them. Queries served
// from a sharded snapshot fail with a wrong-shard error if their
// traversal leaves the owned partitions.
func NewShardedPublisher(eng *engine.Engine, retain int, shard ShardSpec) (*Publisher, error) {
	return NewPublisherWithOptions(eng, PublisherOptions{Retain: retain, Shard: shard})
}

// Shard returns which slice of the deployment this publisher serves
// (the zero ShardSpec when unsharded).
func (p *Publisher) Shard() ShardSpec { return p.shard }

// Engine returns the engine this publisher observes. Everything but
// the snapshot accessors must run on the simulation thread; the
// engine is exposed for the process that owns that thread (churn
// loops, tests), not for HTTP readers.
func (p *Publisher) Engine() *engine.Engine { return p.eng }

// Detach removes the publisher from the engine's epoch (or, in a
// distributed engine, cut) observer. The already-published snapshots
// remain readable.
func (p *Publisher) Detach() {
	if p.eng.Clustered() {
		p.eng.SetDistObserver(nil)
		return
	}
	p.eng.SetEpochObserver(nil)
}

// Current returns the newest snapshot. Safe for concurrent use.
func (p *Publisher) Current() *Snapshot {
	r := p.cur.Load()
	return r.snaps[len(r.snaps)-1]
}

// At returns the retained snapshot with the given version; ok is false
// when it was never published or has aged out of retention. Version 0
// means current. With a snapshot store attached, versions older than
// the in-memory ring are rebuilt from disk (and cached), so pinned
// reads keep working as long as the store retains the version — even
// across a restart. Safe for concurrent use.
func (p *Publisher) At(version uint64) (*Snapshot, bool) {
	r := p.cur.Load()
	if version == 0 {
		return r.snaps[len(r.snaps)-1], true
	}
	// Versions are dense and ascending: index arithmetic, no scan.
	first := r.snaps[0].Version
	if version >= first && version <= r.snaps[len(r.snaps)-1].Version {
		return r.snaps[version-first], true
	}
	if version < first && p.store != nil {
		return p.diskAt(version)
	}
	return nil, false
}

// Versions returns the oldest and newest retained versions — oldest
// reaches back to the snapshot store's floor when one is attached.
// Safe for concurrent use.
func (p *Publisher) Versions() (oldest, newest uint64) {
	r := p.cur.Load()
	oldest, newest = r.snaps[0].Version, r.snaps[len(r.snaps)-1].Version
	if p.store != nil {
		if o := p.store.OldestVersion(); o != 0 && o < oldest {
			oldest = o
		}
	}
	return oldest, newest
}

// Publish builds a snapshot of the engine's state and publishes it.
// It runs on the simulation thread (epoch observer); between epochs no
// worker is active, so reading every node is race-free. When no node's
// state changed since the last publish, the current snapshot is
// returned unchanged — versions advance only with state. The change
// check always spans the whole network, even on a sharded publisher,
// so every shard of the same deterministic run mints the same version
// sequence (what lets a gateway pin one version everywhere); only the
// freezing is restricted to owned nodes.
func (p *Publisher) Publish() *Snapshot {
	prev := p.cur.Load()
	first := len(prev.snaps) == 0

	// Pass 1 — change scan over the whole network, gated by each node's
	// activity counter: a node that processed nothing since the last
	// publish is skipped without touching its stores. For nodes that
	// did run, the state and provenance versions decide precisely, so
	// the version-minting rule is unchanged: snapshots advance only
	// with visible state, identically on every shard.
	changed := first
	p.dirty = p.dirty[:0]
	for i, n := range p.nodes {
		act := n.Activity()
		if !first && act == p.lastActivity[i] {
			continue
		}
		p.lastActivity[i] = act
		sv, pv := n.RT.Store.StateVersion(), n.Prov.Version()
		if !first && sv == p.lastState[i] && pv == p.lastProv[i] {
			continue
		}
		p.lastState[i], p.lastProv[i] = sv, pv
		changed = true
		if oi := p.ownedIdx[i]; oi >= 0 {
			p.dirty = append(p.dirty, oi)
		}
	}
	if !changed {
		return prev.snaps[len(prev.snaps)-1]
	}

	// The first publish of a fresh deployment mints 1; after a restart
	// with a snapshot store it resumes the store's dense sequence at
	// verBase+1 (first=true made every owned node dirty above, so the
	// resumed chain's first record is self-contained).
	version := p.verBase + 1
	if !first {
		version = prev.snaps[len(prev.snaps)-1].Version + 1
	}
	return p.mint(version, p.dirty)
}

// Probe is the local half of the distributed observer contract
// (engine.DistObserver): scan the owned nodes for changes since the
// last Commit and report stickily. Only owned nodes are scanned — in a
// distributed engine the unowned replicas miss the delta traffic that
// executes at their owners, so their versions are meaningless here; the
// whole-network change verdict is assembled by the engine from every
// member's probe bit.
func (p *Publisher) Probe() bool {
	for i, n := range p.nodes {
		oi := p.ownedIdx[i]
		if oi < 0 {
			continue
		}
		act := n.Activity()
		if act == p.lastActivity[i] {
			continue
		}
		p.lastActivity[i] = act
		sv, pv := n.RT.Store.StateVersion(), n.Prov.Version()
		if sv == p.lastState[i] && pv == p.lastProv[i] {
			continue
		}
		p.lastState[i], p.lastProv[i] = sv, pv
		p.pendingChanged = true
		if !p.inDirty[oi] {
			p.inDirty[oi] = true
			p.pendingDirty = append(p.pendingDirty, oi)
		}
	}
	return p.pendingChanged
}

// Commit is the cut half of the distributed observer contract: changed
// is the OR of every member's probe bit at a global consistent cut.
// When true a version is minted even if nothing changed locally — the
// change happened at a peer, and the version sequence must stay dense
// and identical across members (exactly the sharded-publisher rule in
// Publish, with the whole-network scan replaced by the exchanged bit).
// The initial snapshot comes from the constructor's Publish call, so a
// previous version always exists.
func (p *Publisher) Commit(changed bool) {
	if !changed {
		return
	}
	sort.Ints(p.pendingDirty)
	prev := p.cur.Load().snaps
	p.mint(prev[len(prev)-1].Version+1, p.pendingDirty)
	for _, oi := range p.pendingDirty {
		p.inDirty[oi] = false
	}
	p.pendingDirty = p.pendingDirty[:0]
	p.pendingChanged = false
}

// mint builds and publishes the snapshot with the given version,
// rebuilding the owned positions listed in dirty (ascending). It is the
// shared back half of Publish and Commit.
func (p *Publisher) mint(version uint64, dirty []int) *Snapshot {
	prev := p.cur.Load()
	now := p.eng.Net.Now()

	// Pass 2 — rebuild only the dirty owned partitions. FreezeAll and
	// View are persistent handoffs (O(1) per unchanged table, O(dirty
	// buckets) per provenance partition); every clean node's *nodeState
	// rides into the new snapshot untouched.
	states := make([]*nodeState, len(p.states))
	copy(states, p.states)
	for _, oi := range dirty {
		addr := p.owned[oi]
		n := p.ownedNodes[oi]
		tables, count := n.RT.Store.FreezeAll()
		view := n.Prov.View()
		info := NodeInfo{
			Addr:      addr,
			Neighbors: p.eng.Net.Neighbors(addr),
			Tuples:    count,
			Prov:      view.Statistics(),
		}
		if sent, _, ok := p.eng.Net.NodeTraffic(addr); ok {
			info.SentMsgs = sent.Messages
			info.SentBytes = sent.Bytes
		}
		states[oi] = &nodeState{tables: tables, view: view, info: info}
		// History rows are sparse: one per state change, carried
		// forward by At()'s latest-at-or-before semantics.
		p.history = append(p.history, logstore.Snapshot{
			Time:        now,
			Node:        addr,
			Tables:      tables,
			ProvEntries: info.Prov.ProvEntries,
			ExecEntries: info.Prov.ExecEntries,
			Neighbors:   info.Neighbors,
			SentMsgs:    info.SentMsgs,
			SentBytes:   info.SentBytes,
		})
	}
	// Traffic can move without state changing anywhere on the node (a
	// collector shipping snapshots, say): refresh the published counters
	// of carried-over states with an O(1) compare per node, sharing the
	// tables and view of the previous state. Dirty nodes never retrigger
	// here — their counters were just read — so infoDirty stays disjoint
	// from dirty (and ascending, which the store's Append requires).
	p.infoDirty = p.infoDirty[:0]
	for oi, st := range states {
		if sent, _, ok := p.eng.Net.NodeTraffic(p.owned[oi]); ok &&
			(sent.Messages != st.info.SentMsgs || sent.Bytes != st.info.SentBytes) {
			info := st.info
			info.SentMsgs, info.SentBytes = sent.Messages, sent.Bytes
			states[oi] = &nodeState{tables: st.tables, view: st.view, info: info}
			p.infoDirty = append(p.infoDirty, oi)
		}
	}
	p.states = states
	if p.store != nil {
		p.teeToStore(version, now, states, dirty)
	}
	p.trimHistory()

	snap := &Snapshot{
		Version:  version,
		Time:     now,
		Nodes:    p.owned,
		AllNodes: p.allNodes,
		Shard:    p.shard,
		History:  logstore.FromSorted(p.history[:len(p.history):len(p.history)]),
		states:   states,
		index:    p.index,
	}
	// The snapshot is its own view resolver: no per-publish view map.
	snap.query = provquery.NewResolverClient(snap)
	snap.cache = newQueryCache()

	snaps := append(append([]*Snapshot{}, prev.snaps...), snap)
	if len(snaps) > p.retain {
		snaps = snaps[len(snaps)-p.retain:]
	}
	p.cur.Store(&ring{snaps: snaps})
	return snap
}

// trimHistory bounds the append-only history list. Rows are sparse —
// only state-changed nodes append — so a plain suffix cut could drop a
// quiet node's only row. Instead, once the list exceeds twice the
// retention window, it is rebuilt into a fresh backing array holding
// the window's suffix plus, for each node absent from that suffix, its
// latest earlier row (carry-forward, original time order preserved).
// The fresh array leaves every published snapshot's History intact.
//
// With a snapshot store attached, the cut additionally never crosses
// durableLen: rows whose version the store has not fsynced yet would
// be unrecoverable after a crash, so they stay in memory (the list
// temporarily overshoots its bound) until a sync catches up.
func (p *Publisher) trimHistory() {
	maxLen := p.retain * len(p.owned)
	if len(p.history) <= 2*maxLen {
		return
	}
	cut := len(p.history) - maxLen
	if p.store != nil {
		durable := p.store.DurableVersion()
		for len(p.pending) > 0 && p.pending[0].version <= durable {
			p.durableLen = p.pending[0].histLen
			p.pending = p.pending[1:]
		}
		if cut > p.durableLen {
			cut = p.durableLen
		}
		if cut <= 0 {
			return
		}
	}
	suffix := p.history[cut:]
	inSuffix := make(map[string]bool, len(p.owned))
	for i := range suffix {
		inSuffix[suffix[i].Node] = true
	}
	latest := map[string]int{}
	for i := 0; i < cut; i++ {
		if !inSuffix[p.history[i].Node] {
			latest[p.history[i].Node] = i
		}
	}
	keep := make([]int, 0, len(latest))
	for _, i := range latest {
		keep = append(keep, i)
	}
	sort.Ints(keep)
	out := make([]logstore.Snapshot, 0, len(keep)+len(suffix))
	for _, i := range keep {
		out = append(out, p.history[i])
	}
	out = append(out, suffix...)
	if p.store != nil {
		// Remap the durable watermark and pending marks onto the fresh
		// array: carried rows all came from the durable prefix (cut <=
		// durableLen), and row i >= cut now lives at len(keep)+(i-cut).
		base := len(keep)
		p.durableLen = base + (p.durableLen - cut)
		for i := range p.pending {
			p.pending[i].histLen = base + (p.pending[i].histLen - cut)
		}
	}
	p.history = out
}
