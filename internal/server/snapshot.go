// Package server turns a NetTrails simulation into a concurrent
// provenance query service: cmd/nettrailsd runs it behind an HTTP JSON
// API. Its core mechanism is epoch-snapshot isolation.
//
// The engine is single-threaded by contract — every runtime, table,
// and provenance partition belongs to the simulation thread (plus the
// epoch scheduler's confined workers). Live provquery queries are
// themselves simulation events: they travel over the simulated network
// and advance virtual time, so they cannot run concurrently with the
// simulation or with each other. A query *server* therefore never
// touches live state. Instead, a Publisher hooks the engine's epoch
// observer: after every fully-delivered virtual-time epoch — a
// consistent cut of the distributed execution — it builds an immutable
// Snapshot (copy-on-publish, with per-table and per-partition version
// tracking so unchanged state is handed off rather than re-copied) and
// swaps it into an atomic pointer. HTTP readers load the pointer and
// evaluate queries with provquery.SnapshotClient against the frozen
// views:
//
//   - readers never block the simulation loop (they take no locks the
//     publisher ever holds; publishing is one atomic store),
//   - the simulation never blocks readers (old snapshots stay valid
//     after newer ones are published),
//   - two queries pinned to the same snapshot version always see
//     byte-identical state, no matter how far the simulation has
//     advanced in between.
//
// A bounded ring of recent snapshots supports version pinning, and a
// logstore history of per-node captures supports time-travel reads
// (GET /state/{node}?t=...).
package server

import (
	"fmt"
	"net/http"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/logstore"
	"repro/internal/provenance"
	"repro/internal/provquery"
	"repro/internal/rel"
	"repro/internal/simnet"
)

// ShardSpec places one serving process inside a sharded deployment:
// it is shard Index of Total. Node ownership is positional and
// deterministic — the network's sorted node list is dealt round-robin,
// so node k (0-based position in the sorted list) belongs to shard
// k mod Total. Every shard and every gateway derives the same routing
// table from the node list alone; no coordination service is needed.
// The zero value (and any Total <= 1) means unsharded: one process
// owns every partition.
type ShardSpec struct {
	// Index is this shard's 0-based position, 0 <= Index < Total.
	Index int
	// Total is how many shards the deployment is split across.
	Total int
}

// Unsharded reports whether the spec describes a whole-network
// (single-process) deployment.
func (s ShardSpec) Unsharded() bool { return s.Total <= 1 }

// String renders the spec in the "index/total" form the -shard flag
// accepts.
func (s ShardSpec) String() string { return fmt.Sprintf("%d/%d", s.Index, s.Total) }

// ShardOf returns which shard of total owns the node at 0-based
// position pos of the sorted node list.
func ShardOf(pos, total int) int {
	if total <= 1 {
		return 0
	}
	return pos % total
}

// OwnedNodes filters the sorted node list down to the addresses the
// spec's shard owns (all of them when unsharded).
func (s ShardSpec) OwnedNodes(sorted []string) []string {
	if s.Unsharded() {
		return sorted
	}
	var out []string
	for i, addr := range sorted {
		if ShardOf(i, s.Total) == s.Index {
			out = append(out, addr)
		}
	}
	return out
}

// NodeInfo is the per-node metadata frozen into a snapshot.
//
// nettrails:frozen
type NodeInfo struct {
	Addr      string
	Neighbors []string
	Tuples    int // visible tuples across all tables
	Prov      provenance.Stats
	SentMsgs  int
	SentBytes int
}

// Snapshot is one immutable published view of the whole system at a
// consistent virtual instant. Everything reachable from a Snapshot is
// frozen: concurrent readers share it without synchronization.
//
// nettrails:frozen (enforced by the frozenwrite analyzer)
type Snapshot struct {
	// Version numbers published snapshots densely from 1; it increases
	// only when some node's state actually changed, so equal versions
	// imply identical state.
	Version uint64
	// Time is the virtual time of the epoch that produced the snapshot.
	Time simnet.Time
	// Nodes lists the node addresses this snapshot holds partitions
	// for, sorted — every node of the network when unsharded, only the
	// owned subset on a shard.
	Nodes []string
	// AllNodes lists every node address in the whole network, sorted.
	// Identical to Nodes when unsharded.
	AllNodes []string
	// Shard records which slice of the deployment this snapshot serves
	// (the zero value when unsharded).
	Shard ShardSpec
	// Tables maps node -> relation -> visible tuples (sorted).
	Tables map[string]map[string][]rel.Tuple
	// Info maps node -> frozen metadata.
	Info map[string]NodeInfo
	// History is the time-indexed log of per-node captures up to and
	// including this snapshot (logstore-backed time travel).
	History *logstore.Store

	views map[string]*provenance.View
	query *provquery.SnapshotClient
	// cache memoizes whole query results for this (immutable) version;
	// see querycache.go. It is evicted together with the snapshot when
	// the version ages out of the retention ring.
	cache *queryCache
}

// Query evaluates a provenance query against this snapshot. Safe for
// concurrent use.
func (s *Snapshot) Query(typ provquery.QueryType, at string, t rel.Tuple, opts provquery.Options) (*provquery.Result, error) {
	return s.query.Query(typ, at, t, opts)
}

// QueryText evaluates a textual provenance query (provquery.ParseQuery
// grammar) against this snapshot. Safe for concurrent use.
func (s *Snapshot) QueryText(src string) (*provquery.Result, error) {
	return s.query.Run(src)
}

// NodeTables returns a node's frozen tables; ok is false for unknown
// nodes.
func (s *Snapshot) NodeTables(addr string) (map[string][]rel.Tuple, bool) {
	t, ok := s.Tables[addr]
	return t, ok
}

// misdirected returns the wrong-shard error for a node that exists in
// the network but is owned by another shard, and nil otherwise.
func (s *Snapshot) misdirected(addr string) *APIError {
	if s.Shard.Unsharded() || s.Tables[addr] != nil {
		return nil
	}
	for i, a := range s.AllNodes {
		if a == addr {
			return Errf(http.StatusMisdirectedRequest, ErrWrongShard,
				"node %q is owned by shard %d/%d, not this shard (%s)",
				addr, ShardOf(i, s.Shard.Total), s.Shard.Total, s.Shard)
		}
	}
	return nil
}

// ring is the immutable list of retained snapshots, ascending by
// version; the last element is current. Swapped wholesale on publish.
//
// nettrails:frozen
type ring struct {
	snaps []*Snapshot
}

// Publisher builds snapshots from a live engine and publishes them for
// lock-free readers. All its methods except Current/At/Versions must
// run on the simulation thread (Publish is normally invoked via the
// engine's epoch observer and never called directly).
type Publisher struct {
	eng    *engine.Engine
	retain int
	shard  ShardSpec
	owned  map[string]bool

	cur atomic.Pointer[ring]

	// Dirty tracking: skip re-copying what did not change.
	lastState  map[string]uint64                 // node -> eval store StateVersion
	lastProv   map[string]uint64                 // node -> provenance store version
	lastTabVer map[string]map[string]uint64      // node -> relation -> table version
	lastTables map[string]map[string][]rel.Tuple // node -> last frozen tables
	history    []logstore.Snapshot               // append-only; wrapped via FromSorted
}

// DefaultRetain is how many recent snapshot versions a publisher keeps
// for version-pinned reads when no explicit retention is given.
const DefaultRetain = 64

// NewPublisher attaches a publisher to the engine's epoch observer and
// publishes the initial snapshot (version 1) so Current never returns
// nil. retain bounds how many recent versions stay pinnable (values
// < 1 mean DefaultRetain).
func NewPublisher(eng *engine.Engine, retain int) (*Publisher, error) {
	return NewShardedPublisher(eng, retain, ShardSpec{})
}

// NewShardedPublisher is NewPublisher for one shard of a sharded
// deployment: the publisher freezes and retains only the partitions of
// the nodes the spec owns (round-robin over the sorted node list), so
// snapshot memory, history, and caches scale with the shard, not the
// network. Version numbering stays global: a snapshot is published
// whenever any node's state changed, owned or not, so every shard of
// the same deterministic run mints the same dense version sequence and
// a gateway can pin one version across all of them. Queries served
// from a sharded snapshot fail with a wrong-shard error if their
// traversal leaves the owned partitions.
func NewShardedPublisher(eng *engine.Engine, retain int, shard ShardSpec) (*Publisher, error) {
	if retain < 1 {
		retain = DefaultRetain
	}
	if shard.Total < 0 || (shard.Total > 0 && (shard.Index < 0 || shard.Index >= shard.Total)) {
		return nil, fmt.Errorf("server: bad shard spec %s", shard)
	}
	if shard.Total > len(eng.Nodes()) {
		return nil, fmt.Errorf("server: %d shards over %d nodes leaves empty shards", shard.Total, len(eng.Nodes()))
	}
	p := &Publisher{
		eng:        eng,
		retain:     retain,
		shard:      shard,
		owned:      map[string]bool{},
		lastState:  map[string]uint64{},
		lastProv:   map[string]uint64{},
		lastTabVer: map[string]map[string]uint64{},
		lastTables: map[string]map[string][]rel.Tuple{},
	}
	for _, addr := range shard.OwnedNodes(eng.Nodes()) {
		p.owned[addr] = true
	}
	for _, addr := range eng.Nodes() {
		n, _ := eng.Node(addr)
		if n.Prov == nil {
			return nil, fmt.Errorf("server: node %s has no provenance store", addr)
		}
	}
	p.cur.Store(&ring{})
	p.Publish()
	eng.SetEpochObserver(func() { p.Publish() })
	return p, nil
}

// Shard returns which slice of the deployment this publisher serves
// (the zero ShardSpec when unsharded).
func (p *Publisher) Shard() ShardSpec { return p.shard }

// Engine returns the engine this publisher observes. Everything but
// the snapshot accessors must run on the simulation thread; the
// engine is exposed for the process that owns that thread (churn
// loops, tests), not for HTTP readers.
func (p *Publisher) Engine() *engine.Engine { return p.eng }

// Detach removes the publisher from the engine's epoch observer. The
// already-published snapshots remain readable.
func (p *Publisher) Detach() { p.eng.SetEpochObserver(nil) }

// Current returns the newest snapshot. Safe for concurrent use.
func (p *Publisher) Current() *Snapshot {
	r := p.cur.Load()
	return r.snaps[len(r.snaps)-1]
}

// At returns the retained snapshot with the given version; ok is false
// when it was never published or has aged out of the retention ring.
// Version 0 means current. Safe for concurrent use.
func (p *Publisher) At(version uint64) (*Snapshot, bool) {
	r := p.cur.Load()
	if version == 0 {
		return r.snaps[len(r.snaps)-1], true
	}
	// Versions are dense and ascending: index arithmetic, no scan.
	first := r.snaps[0].Version
	if version < first || version > r.snaps[len(r.snaps)-1].Version {
		return nil, false
	}
	return r.snaps[version-first], true
}

// Versions returns the oldest and newest retained versions. Safe for
// concurrent use.
func (p *Publisher) Versions() (oldest, newest uint64) {
	r := p.cur.Load()
	return r.snaps[0].Version, r.snaps[len(r.snaps)-1].Version
}

// Publish builds a snapshot of the engine's state and publishes it.
// It runs on the simulation thread (epoch observer); between epochs no
// worker is active, so reading every node is race-free. When no node's
// state changed since the last publish, the current snapshot is
// returned unchanged — versions advance only with state. The change
// check always spans the whole network, even on a sharded publisher,
// so every shard of the same deterministic run mints the same version
// sequence (what lets a gateway pin one version everywhere); only the
// freezing is restricted to owned nodes.
func (p *Publisher) Publish() *Snapshot {
	prev := p.cur.Load()
	all := p.eng.Nodes()
	changed := len(prev.snaps) == 0
	for _, addr := range all {
		n, _ := p.eng.Node(addr)
		if p.lastState[addr] != n.RT.Store.StateVersion() || p.lastProv[addr] != n.Prov.Version() {
			changed = true
			break
		}
	}
	if !changed {
		return prev.snaps[len(prev.snaps)-1]
	}

	owned := p.shard.OwnedNodes(all)
	now := p.eng.Net.Now()
	snap := &Snapshot{
		Version:  1,
		Time:     now,
		Nodes:    owned,
		AllNodes: all,
		Shard:    p.shard,
		Tables:   make(map[string]map[string][]rel.Tuple, len(owned)),
		Info:     make(map[string]NodeInfo, len(owned)),
		views:    make(map[string]*provenance.View, len(owned)),
	}
	if len(prev.snaps) > 0 {
		snap.Version = prev.snaps[len(prev.snaps)-1].Version + 1
	}

	for _, addr := range all {
		n, _ := p.eng.Node(addr)
		p.lastState[addr] = n.RT.Store.StateVersion()
		p.lastProv[addr] = n.Prov.Version()
	}

	views := make(map[string]provquery.PartitionView, len(owned))
	for _, addr := range owned {
		n, _ := p.eng.Node(addr)
		snap.Tables[addr] = p.freezeTables(addr, n)
		v := n.Prov.View() // cached inside the store while unchanged
		snap.views[addr] = v
		views[addr] = v

		info := NodeInfo{
			Addr:      addr,
			Neighbors: p.eng.Net.Neighbors(addr),
			Prov:      v.Statistics(),
		}
		for _, ts := range snap.Tables[addr] {
			info.Tuples += len(ts)
		}
		if sent, _, ok := p.eng.Net.NodeTraffic(addr); ok {
			info.SentMsgs = sent.Messages
			info.SentBytes = sent.Bytes
		}
		snap.Info[addr] = info

		p.history = append(p.history, logstore.Snapshot{
			Time:        now,
			Node:        addr,
			Tables:      snap.Tables[addr],
			ProvEntries: info.Prov.ProvEntries,
			ExecEntries: info.Prov.ExecEntries,
			Neighbors:   info.Neighbors,
			SentMsgs:    info.SentMsgs,
			SentBytes:   info.SentBytes,
		})
	}
	// Trim history to the retention window. Resliced-away prefixes stay
	// valid inside older snapshots' History stores: appends only ever
	// write past every published length.
	if maxLen := p.retain * len(owned); len(p.history) > maxLen {
		p.history = p.history[len(p.history)-maxLen:]
	}
	snap.History = logstore.FromSorted(p.history[:len(p.history):len(p.history)])
	if p.shard.Unsharded() {
		snap.query = provquery.NewSnapshotClient(views)
	} else {
		snap.query = provquery.NewPartialSnapshotClient(views, all)
	}
	snap.cache = newQueryCache()

	snaps := append(append([]*Snapshot{}, prev.snaps...), snap)
	if len(snaps) > p.retain {
		snaps = snaps[len(snaps)-p.retain:]
	}
	p.cur.Store(&ring{snaps: snaps})
	return snap
}

// freezeTables returns the node's relation -> sorted-tuples map,
// reusing the previous snapshot's slices (and, when nothing in the
// node changed, its whole map) for every table whose visibility
// version is unchanged — persistent-table handoff instead of copying.
func (p *Publisher) freezeTables(addr string, n *engine.Node) map[string][]rel.Tuple {
	names := n.RT.Store.TableNames()
	prevVer := p.lastTabVer[addr]
	prevTabs := p.lastTables[addr]
	allSame := prevTabs != nil && len(prevVer) == len(names)
	ver := make(map[string]uint64, len(names))
	tables := make(map[string][]rel.Tuple, len(names))
	for _, name := range names {
		// TableNames only lists instantiated tables, so Table cannot
		// fail here — and len(ver) == len(names) holds, which the
		// allSame handoff depends on.
		tbl, _ := n.RT.Store.Table(name)
		v := tbl.Version()
		ver[name] = v
		if prevTabs != nil && prevVer[name] == v {
			tables[name] = prevTabs[name]
		} else {
			tables[name] = tbl.Tuples()
			allSame = false
		}
	}
	p.lastTabVer[addr] = ver
	if allSame {
		return prevTabs
	}
	p.lastTables[addr] = tables
	return tables
}
