package server

import (
	"encoding/json"
	"net/http"
	"sort"

	"repro/internal/provenance"
	"repro/internal/rel"
)

// This file is the shard-federation read protocol: POST /v1/prov/read
// serves batched, version-pinned reads of the provenance partitions a
// shard owns, and GET /v1/shards describes the shard so a gateway (or
// the SDK) can build the node→shard routing table. A federating
// gateway runs the provgraph walk itself and uses these reads to
// resolve vertices on remote shards; everything it fetches is frozen
// snapshot state, so responses are immutable per version and freely
// cacheable downstream.

// Prov-read op kinds: a "vertex" read resolves one tuple VID at a node
// (its pinned tuple value plus its derivation entries); an "exec" read
// resolves one rule execution RID at the node where it ran, and
// piggybacks the vertex data of every input tuple — inputs are local
// to the executing node, so one exec read hands the walk everything it
// needs to keep going there.
const (
	ProvReadVertex = "vertex"
	ProvReadExec   = "exec"
)

// MaxProvReads bounds how many ops one POST /v1/prov/read request may
// carry.
const MaxProvReads = 4096

// ProvReadOp is one partition read inside a POST /v1/prov/read batch.
type ProvReadOp struct {
	// Op is ProvReadVertex or ProvReadExec.
	Op string `json:"op"`
	// Loc is the node address whose partition is read.
	Loc string `json:"loc"`
	// ID is the full 40-hex-digit VID (vertex) or RID (exec).
	ID string `json:"id"`
}

// ProvDerivJSON is one prov-table entry of a vertex: the rule
// execution that derived it and where that execution ran. Both fields
// are empty for a base-tuple derivation.
type ProvDerivJSON struct {
	RID  string `json:"rid,omitempty"`
	RLoc string `json:"rloc,omitempty"`
}

// ProvExecJSON is one ruleExec-table entry: the rule name and the
// VIDs of its input tuples (all local to the executing node).
type ProvExecJSON struct {
	Rule string   `json:"rule"`
	VIDs []string `json:"vids"`
}

// ProvVertexJSON is one tuple vertex as the read protocol ships it:
// the canonical binary tuple encoding (base64 on the wire) and the
// derivation entries. TupleOK/DerivsOK mirror the two independent
// partition lookups so a federated walk reproduces the exact
// missing-data behaviour of a local one.
type ProvVertexJSON struct {
	TupleOK  bool            `json:"tupleOk,omitempty"`
	Tuple    []byte          `json:"tuple,omitempty"`
	DerivsOK bool            `json:"derivsOk,omitempty"`
	Derivs   []ProvDerivJSON `json:"derivs,omitempty"`
}

// ProvInputJSON is the piggybacked vertex data of one exec input.
type ProvInputJSON struct {
	VID string `json:"vid"`
	ProvVertexJSON
}

// ProvReadResult is the answer to one ProvReadOp, in request order.
// Err is a stable error code ("wrong_shard", "unknown_node",
// "invalid_request") when the op itself was misdirected or malformed;
// data that is merely absent from the partition is not an error — it
// surfaces as TupleOK/DerivsOK/ExecOK false, exactly like the local
// lookups it mirrors.
type ProvReadResult struct {
	Err string `json:"error,omitempty"`
	ProvVertexJSON
	ExecOK bool            `json:"execOk,omitempty"`
	Exec   *ProvExecJSON   `json:"exec,omitempty"`
	Inputs []ProvInputJSON `json:"inputs,omitempty"`
}

// ProvReadRequest is the POST /v1/prov/read body.
type ProvReadRequest struct {
	// Version pins the snapshot every read resolves against (0 means
	// current; sharded federation always pins explicitly).
	Version uint64 `json:"version,omitempty"`
	// Reads are executed independently, results in request order.
	Reads []ProvReadOp `json:"reads"`
}

// ProvReadResponse is the POST /v1/prov/read body: one result per
// read, in order, all resolved against the one pinned version.
type ProvReadResponse struct {
	Version uint64           `json:"version"`
	Results []ProvReadResult `json:"results"`
}

// vertexOf assembles the ProvVertexJSON of vid at the given view.
func vertexOf(v *provenance.View, vid rel.ID) ProvVertexJSON {
	var out ProvVertexJSON
	if t, ok := v.TupleOf(vid); ok {
		out.TupleOK = true
		out.Tuple = rel.MarshalTuple(t)
	}
	if derivs, ok := v.Derivations(vid); ok {
		out.DerivsOK = true
		out.Derivs = make([]ProvDerivJSON, len(derivs))
		for i, d := range derivs {
			if !d.RID.IsZero() {
				out.Derivs[i] = ProvDerivJSON{RID: d.RID.String(), RLoc: d.RLoc}
			}
		}
	}
	return out
}

// ProvRead answers one batch of partition reads against this
// snapshot. Safe for concurrent use (the snapshot is immutable).
func (s *Snapshot) ProvRead(ops []ProvReadOp) []ProvReadResult {
	out := make([]ProvReadResult, len(ops))
	for i, op := range ops {
		out[i] = s.provReadOne(op)
	}
	return out
}

func (s *Snapshot) provReadOne(op ProvReadOp) ProvReadResult {
	v := s.viewOf(op.Loc)
	if v == nil {
		pos := sort.SearchStrings(s.AllNodes, op.Loc)
		if pos < len(s.AllNodes) && s.AllNodes[pos] == op.Loc {
			return ProvReadResult{Err: ErrWrongShard}
		}
		return ProvReadResult{Err: ErrUnknownNode}
	}
	id, err := rel.ParseID(op.ID)
	if err != nil {
		return ProvReadResult{Err: ErrInvalidRequest}
	}
	switch op.Op {
	case ProvReadVertex:
		return ProvReadResult{ProvVertexJSON: vertexOf(v, id)}
	case ProvReadExec:
		var out ProvReadResult
		exec, ok := v.Exec(id)
		if !ok {
			return out
		}
		out.ExecOK = true
		out.Exec = &ProvExecJSON{Rule: exec.Rule, VIDs: make([]string, len(exec.VIDs))}
		seen := map[rel.ID]bool{}
		for i, vid := range exec.VIDs {
			out.Exec.VIDs[i] = vid.String()
			if seen[vid] {
				continue
			}
			seen[vid] = true
			out.Inputs = append(out.Inputs, ProvInputJSON{
				VID:            vid.String(),
				ProvVertexJSON: vertexOf(v, vid),
			})
		}
		return out
	default:
		return ProvReadResult{Err: ErrInvalidRequest}
	}
}

// handleProvRead is POST /v1/prov/read: batched partition reads
// against one pinned snapshot — the wire protocol a federating
// gateway resolves remote-shard walk steps with.
func (s *Server) handleProvRead(w http.ResponseWriter, r *http.Request) {
	var req ProvReadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		WriteErr(w, http.StatusBadRequest, ErrInvalidRequest, "bad request body: %v", err)
		return
	}
	if len(req.Reads) == 0 {
		WriteErr(w, http.StatusBadRequest, ErrInvalidRequest, "empty read batch")
		return
	}
	if len(req.Reads) > MaxProvReads {
		WriteErr(w, http.StatusBadRequest, ErrInvalidRequest,
			"%d reads exceed the maximum %d", len(req.Reads), MaxProvReads)
		return
	}
	snap, apiErr := s.snapshotAt(req.Version)
	if apiErr != nil {
		WriteAPIError(w, apiErr)
		return
	}
	results := snap.ProvRead(req.Reads)
	s.provReads.Add(int64(len(req.Reads)))
	WriteJSON(w, http.StatusOK, ProvReadResponse{Version: snap.Version, Results: results})
}

// ShardJSON is the "shard" object of GET /v1/shards and /v1/healthz.
type ShardJSON struct {
	Index int `json:"index"`
	Total int `json:"total"`
}

// ShardsJSON is GET /v1/shards: which slice of the deployment this
// server holds, pinned to one snapshot version. Node→shard routing is
// positional — node k of the sorted allNodes list belongs to shard
// k mod total — so this one response is enough to route every node.
type ShardsJSON struct {
	Version uint64 `json:"version"`
	// Time is the snapshot's virtual instant in microseconds —
	// identical on every shard of a deterministic run at the same
	// version, which is how a gateway timestamps federated answers.
	Time int64 `json:"virtualTimeUs"`
	// Shard is this server's slice ({0, 1} when unsharded).
	Shard ShardJSON `json:"shard"`
	// Nodes are the node addresses this server owns, sorted.
	Nodes []string `json:"nodes"`
	// AllNodes are all node addresses of the network, sorted.
	AllNodes []string `json:"allNodes"`
}

// handleShards is GET /v1/shards: the routing-table face of a shard
// (or of an unsharded daemon, which reports itself as shard 0 of 1).
func (s *Server) handleShards(w http.ResponseWriter, r *http.Request) {
	snap, done := s.condGET(w, r)
	if done {
		return
	}
	shard := ShardJSON{Index: snap.Shard.Index, Total: snap.Shard.Total}
	if snap.Shard.Unsharded() {
		shard = ShardJSON{Index: 0, Total: 1}
	}
	WriteJSON(w, http.StatusOK, ShardsJSON{
		Version:  snap.Version,
		Time:     int64(snap.Time),
		Shard:    shard,
		Nodes:    snap.Nodes,
		AllNodes: snap.AllNodes,
	})
}

// ProvReads reports how many prov-read ops this server has answered —
// the observable downstream-activity counter the cross-shard
// cancellation tests watch.
func (s *Server) ProvReads() int64 { return s.provReads.Load() }
