package server

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/provquery"
	"repro/internal/rel"
)

// queryCache memoizes whole query results for one immutable snapshot
// version. Because a snapshot never changes after publication, entries
// need no invalidation: the cache simply lives and dies with its
// snapshot, so eviction is the retention ring dropping old versions.
//
// Keying is version-implicit (one cache per snapshot) × VID × query
// type × the full option set; every field of provquery.Options changes
// the answer (threshold and limits change the result, traversal order
// changes the modeled latency-relevant shape), so the whole struct is
// part of the key. The starting node is included because the walk's
// entry point determines the proof.
//
// Because option values are request-controlled, distinct keys are
// unbounded from the client's point of view; maxQueryCacheEntries caps
// how many results one snapshot memoizes so a client cycling option
// values (or a never-churning daemon whose snapshot never ages out)
// cannot grow server memory without bound. Once full, further distinct
// queries simply evaluate uncached.
type queryCache struct {
	mu sync.RWMutex
	m  map[queryCacheKey]*provquery.Result

	hits   atomic.Int64
	misses atomic.Int64
}

// maxQueryCacheEntries bounds one snapshot's memoized results.
const maxQueryCacheEntries = 4096

type queryCacheKey struct {
	at   string
	vid  rel.ID
	typ  provquery.QueryType
	opts provquery.Options
}

func newQueryCache() *queryCache {
	return &queryCache{m: map[queryCacheKey]*provquery.Result{}}
}

func (c *queryCache) get(key queryCacheKey) (*provquery.Result, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	r, ok := c.m[key]
	return r, ok
}

func (c *queryCache) put(key queryCacheKey, r *provquery.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.m) >= maxQueryCacheEntries {
		if _, ok := c.m[key]; !ok {
			return // full: serve this key uncached rather than grow
		}
	}
	c.m[key] = r
}

// CachedQuery evaluates a provenance query against this snapshot,
// serving repeated identical queries from the snapshot's sub-proof
// cache instead of re-traversing. Safe for concurrent use; two racing
// misses both traverse (identical immutable state gives identical
// results) and the cache keeps one of them.
//
// The returned Result's proof structures are shared with every other
// caller for the same key and MUST be treated as read-only. hit reports
// whether this call was served from the cache, and the result's
// Stats.SubProofHits/SubProofMisses carry the cache's cumulative
// counters at serve time. Errors (unknown tuples/nodes) are never
// cached; they are cheap to recompute.
func (s *Snapshot) CachedQuery(typ provquery.QueryType, at string, t rel.Tuple, opts provquery.Options) (res *provquery.Result, hit bool, err error) {
	//lint:allow ctxflow context-free compatibility entry point: callers who opt out of cancellation get a walk that runs to completion by design
	return s.CachedQueryContext(context.Background(), typ, at, t, opts)
}

// CachedQueryContext is CachedQuery with cancellation: a cancelled or
// expired ctx aborts a cache-missed traversal mid-walk (the partial
// result is discarded, never cached, and not counted as a miss) and
// returns an error wrapping ctx.Err(). A cache hit is served even
// under an expired context — it costs nothing.
func (s *Snapshot) CachedQueryContext(ctx context.Context, typ provquery.QueryType, at string, t rel.Tuple, opts provquery.Options) (res *provquery.Result, hit bool, err error) {
	key := queryCacheKey{at: at, vid: t.VID(), typ: typ, opts: opts}
	cached, ok := s.cache.get(key)
	if ok {
		s.cache.hits.Add(1)
		hit = true
	} else {
		r, qerr := s.query.QueryContext(ctx, typ, at, t, opts)
		if qerr != nil {
			return nil, false, qerr
		}
		s.cache.misses.Add(1)
		s.cache.put(key, r)
		cached = r
	}
	// Hand back a shallow copy so the hit/miss counters can be stamped
	// into Stats without mutating the shared cached value.
	out := *cached
	out.Stats.SubProofHits = int(s.cache.hits.Load())
	out.Stats.SubProofMisses = int(s.cache.misses.Load())
	return &out, hit, nil
}

// CacheCounters returns the snapshot's cumulative sub-proof cache hit
// and miss counts. Safe for concurrent use.
func (s *Snapshot) CacheCounters() (hits, misses int64) {
	return s.cache.hits.Load(), s.cache.misses.Load()
}
