package server

import (
	"fmt"
	"net/http"
	"sort"

	"repro/internal/engine"
	"repro/internal/logstore"
	"repro/internal/provquery"
	"repro/internal/provstore"
	"repro/internal/simnet"
)

// PublisherOptions configures a publisher beyond the retention ring:
// its place in a sharded deployment and, optionally, a log-structured
// on-disk snapshot store every published version is teed into.
type PublisherOptions struct {
	// Retain bounds how many recent versions stay pinnable in memory
	// (values < 1 mean DefaultRetain).
	Retain int
	// Shard places the publisher in a sharded deployment (the zero
	// value means unsharded).
	Shard ShardSpec
	// Store, when non-nil, persists every published version. Reads of
	// versions that aged out of the in-memory ring fall back to it, so
	// pinned clients never see snapshot_evicted while the store retains
	// the version — including across a process restart, when the
	// publisher resumes minting at Store.LastVersion()+1. The publisher
	// does not own the store: the process that opened it closes it
	// after the engine stops.
	Store *provstore.Store
}

// histMark remembers how long the history list was when one version
// was published, so trimming can tell which rows the store has made
// durable (every row with index < histLen is captured by versions
// <= version).
type histMark struct {
	version uint64
	histLen int
}

// NewPublisherWithOptions is the fully-optioned publisher constructor;
// NewPublisher and NewShardedPublisher are shorthands for it.
func NewPublisherWithOptions(eng *engine.Engine, opts PublisherOptions) (*Publisher, error) {
	retain := opts.Retain
	if retain < 1 {
		retain = DefaultRetain
	}
	shard := opts.Shard
	if shard.Total < 0 || (shard.Total > 0 && (shard.Index < 0 || shard.Index >= shard.Total)) {
		return nil, fmt.Errorf("server: bad shard spec %s", shard)
	}
	all := eng.Nodes()
	if shard.Total > len(all) {
		return nil, fmt.Errorf("server: %d shards over %d nodes leaves empty shards", shard.Total, len(all))
	}
	p := &Publisher{
		eng:          eng,
		retain:       retain,
		shard:        shard,
		allNodes:     all,
		nodes:        make([]*engine.Node, len(all)),
		ownedIdx:     make([]int, len(all)),
		index:        make(map[string]int),
		lastActivity: make([]uint64, len(all)),
		lastState:    make([]uint64, len(all)),
		lastProv:     make([]uint64, len(all)),
	}
	for i, addr := range all {
		n, _ := eng.Node(addr)
		if n.Prov == nil {
			return nil, fmt.Errorf("server: node %s has no provenance store", addr)
		}
		p.nodes[i] = n
		p.ownedIdx[i] = -1
		if shard.Unsharded() || ShardOf(i, shard.Total) == shard.Index {
			p.ownedIdx[i] = len(p.owned)
			p.index[addr] = len(p.owned)
			p.owned = append(p.owned, addr)
			p.ownedNodes = append(p.ownedNodes, n)
		}
	}
	if opts.Store != nil {
		// Version records address nodes by owned index, so the store's
		// identity must match this shard's exactly.
		if !sameStrings(opts.Store.Owned(), p.owned) {
			return nil, fmt.Errorf("server: snapshot store owns %d nodes, shard %s owns %d (different deployment?)",
				len(opts.Store.Owned()), shard, len(p.owned))
		}
		p.store = opts.Store
		p.verBase = opts.Store.LastVersion()
		p.diskCache = map[uint64]*Snapshot{}
	}
	p.states = make([]*nodeState, len(p.owned))
	p.inDirty = make([]bool, len(p.owned))
	p.cur.Store(&ring{})
	// The initial snapshot is built by a direct Publish either way: at
	// attach time a distributed engine's replicas are still identical
	// (nothing has diverged before the first clustered drain), so every
	// member mints a consistent version 1.
	p.Publish()
	if eng.Clustered() {
		eng.SetDistObserver(p)
	} else {
		eng.SetEpochObserver(func() { p.Publish() })
	}
	return p, nil
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Store returns the attached snapshot store (nil without one). The
// owning process uses it for shutdown syncs; handlers use it for
// deep-history queries.
func (p *Publisher) Store() *provstore.Store { return p.store }

// storeInfo converts published node metadata to the store's wire form
// (the address travels positionally, by owned index).
func storeInfo(info NodeInfo) provstore.Info {
	return provstore.Info{
		Neighbors: info.Neighbors,
		Tuples:    info.Tuples,
		Prov:      info.Prov,
		SentMsgs:  info.SentMsgs,
		SentBytes: info.SentBytes,
	}
}

// publishedInfo is storeInfo's inverse.
func publishedInfo(addr string, info provstore.Info) NodeInfo {
	return NodeInfo{
		Addr:      addr,
		Neighbors: info.Neighbors,
		Tuples:    info.Tuples,
		Prov:      info.Prov,
		SentMsgs:  info.SentMsgs,
		SentBytes: info.SentBytes,
	}
}

// teeToStore appends the version just published to the snapshot store:
// state entries for the rebuilt partitions, info updates for the
// traffic-only refreshes (both already in ascending owned order). It
// runs on the simulation thread, right after the states are built. A
// failed append is fatal — the store was requested, and continuing
// would silently break the no-eviction contract and leave a version
// gap the store can never fill.
func (p *Publisher) teeToStore(version uint64, now simnet.Time, states []*nodeState, dirty []int) {
	in := provstore.VersionInput{Version: version, Time: int64(now)}
	for _, oi := range dirty {
		st := states[oi]
		in.States = append(in.States, provstore.NodeState{
			OwnedIdx: oi,
			Info:     storeInfo(st.info),
			Tables:   st.tables,
			View:     st.view,
		})
	}
	for _, oi := range p.infoDirty {
		in.Infos = append(in.Infos, provstore.InfoUpdate{OwnedIdx: oi, Info: storeInfo(states[oi].info)})
	}
	if err := p.store.Append(in); err != nil {
		panic(fmt.Sprintf("server: snapshot store append failed at version %d: %v", version, err))
	}
	p.pending = append(p.pending, histMark{version: version, histLen: len(p.history)})
}

// diskCacheSize bounds the materialized historical snapshots kept
// alive for repeated reads (FIFO; each entry carries full rebuilt
// tables and views, so the bound is deliberately small).
const diskCacheSize = 16

// diskAt serves a version that aged out of the in-memory ring from
// the snapshot store. Safe for concurrent use; materialized snapshots
// are cached so a pinned client's request burst rebuilds once.
func (p *Publisher) diskAt(version uint64) (*Snapshot, bool) {
	p.diskMu.Lock()
	if snap, ok := p.diskCache[version]; ok {
		p.diskMu.Unlock()
		return snap, true
	}
	p.diskMu.Unlock()

	vd, err := p.store.Materialize(version)
	if err != nil {
		return nil, false
	}
	snap := p.snapshotFromDisk(vd)

	p.diskMu.Lock()
	defer p.diskMu.Unlock()
	if cached, ok := p.diskCache[version]; ok {
		// A concurrent reader built it first; share its query cache.
		return cached, true
	}
	p.diskCache[version] = snap
	p.diskOrder = append(p.diskOrder, version)
	if len(p.diskOrder) > diskCacheSize {
		delete(p.diskCache, p.diskOrder[0])
		p.diskOrder = p.diskOrder[1:]
	}
	return snap, true
}

// snapshotFromDisk rebuilds a full Snapshot from materialized store
// data. The store's contract makes the frozen tables and views
// bit-for-bit equivalent to what was teed in, so responses rendered
// from this snapshot are byte-identical to what the live ring served
// at that version. Its history is shallower than the live ring's —
// one row per node, the version that last changed its state — which
// bounds the rebuild at O(nodes) instead of O(retained rows).
func (p *Publisher) snapshotFromDisk(vd *provstore.VersionData) *Snapshot {
	states := make([]*nodeState, len(vd.Nodes))
	rows := make([]logstore.Snapshot, 0, len(vd.Nodes))
	for i := range vd.Nodes {
		nd := &vd.Nodes[i]
		states[i] = &nodeState{
			tables: nd.Tables,
			view:   nd.View,
			info:   publishedInfo(nd.Addr, nd.Info),
		}
		rows = append(rows, logstore.Snapshot{
			Time:        simnet.Time(nd.StateTime),
			Node:        nd.Addr,
			Tables:      nd.Tables,
			ProvEntries: nd.StateInfo.Prov.ProvEntries,
			ExecEntries: nd.StateInfo.Prov.ExecEntries,
			Neighbors:   nd.StateInfo.Neighbors,
			SentMsgs:    nd.StateInfo.SentMsgs,
			SentBytes:   nd.StateInfo.SentBytes,
		})
	}
	sort.SliceStable(rows, func(a, b int) bool { return rows[a].Time < rows[b].Time })
	snap := &Snapshot{
		Version:  vd.Version,
		Time:     simnet.Time(vd.Time),
		Nodes:    p.owned,
		AllNodes: p.allNodes,
		Shard:    p.shard,
		History:  logstore.FromSorted(rows),
		states:   states,
		index:    p.index,
	}
	snap.query = provquery.NewResolverClient(snap)
	snap.cache = newQueryCache()
	return snap
}

// ---- GET /v1/history/first ----------------------------------------------

// HistoryFirstJSON is the GET /v1/history/first body: the earliest
// retained version at which the tuple was visible at the node.
type HistoryFirstJSON struct {
	Tuple        TupleJSON `json:"tuple"`
	Node         string    `json:"node"`
	FirstVersion uint64    `json:"firstVersion"`
	TimeUs       int64     `json:"virtualTimeUs"`
	// OldestVersion is the store's retention floor: when FirstVersion
	// equals it, the tuple may have first appeared even earlier, in
	// history that retention has deleted.
	OldestVersion uint64 `json:"oldestVersion"`
}

// handleHistoryFirst answers the deep-history query class: the first
// version where tuple X exists at a node. It reads the snapshot
// store's per-segment first-seen indexes, not any retained snapshot,
// so there is no version pinning and no ETag — the answer can extend
// further back than the in-memory ring.
func (s *Server) handleHistoryFirst(w http.ResponseWriter, r *http.Request) {
	lit := r.URL.Query().Get("tuple")
	if lit == "" {
		WriteErr(w, http.StatusBadRequest, ErrInvalidRequest, "missing ?tuple= literal")
		return
	}
	t, at, err := ResolveTupleAt(lit, r.URL.Query().Get("at"))
	if err != nil {
		WriteErr(w, http.StatusBadRequest, ErrInvalidQuery, "%v", err)
		return
	}
	snap := s.pub.Current()
	if snap.stateOf(at) == nil {
		if apiErr := snap.misdirected(at); apiErr != nil {
			WriteAPIError(w, apiErr)
			return
		}
		WriteErr(w, http.StatusNotFound, ErrUnknownNode, "unknown node %q", at)
		return
	}
	st := s.pub.Store()
	if st == nil {
		WriteErr(w, http.StatusNotImplemented, ErrNoHistory,
			"no snapshot store attached; first-version queries need the daemon started with -data")
		return
	}
	v, ok := st.FirstVersion(at, t.VID())
	if !ok {
		WriteErr(w, http.StatusNotFound, ErrNoHistory,
			"tuple %s was never seen at %q in the retained history", t, at)
		return
	}
	out := HistoryFirstJSON{
		Tuple:         JSONTuple(t),
		Node:          at,
		FirstVersion:  v,
		OldestVersion: st.OldestVersion(),
	}
	// Best-effort: the version can age out between the index probe and
	// the time lookup; the answer itself is still valid.
	if tm, err := st.VersionTime(v); err == nil {
		out.TimeUs = tm
	}
	WriteJSON(w, http.StatusOK, out)
}
