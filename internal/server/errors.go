package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// The v1 API reports every failure as one machine-readable envelope:
//
//	{"error": {"code": "snapshot_evicted", "message": "version 3 not retained ..."}}
//
// The code is a stable contract — clients branch on it; the message is
// human-readable detail and may change freely. Legacy routes share the
// handlers, so they emit the identical envelope.
const (
	// ErrInvalidRequest: malformed body or parameters (400).
	ErrInvalidRequest = "invalid_request"
	// ErrInvalidQuery: the query text, tuple literal, or query type
	// failed to parse (400).
	ErrInvalidQuery = "invalid_query"
	// ErrInvalidOption: a traversal option (maxdepth/maxnodes/threshold)
	// or ?timeout= value is out of range (400).
	ErrInvalidOption = "invalid_option"
	// ErrUnknownNode: no such node in the snapshot (404).
	ErrUnknownNode = "unknown_node"
	// ErrNoProvenance: the tuple has no provenance at the queried node
	// in the pinned snapshot (404).
	ErrNoProvenance = "no_provenance"
	// ErrUnknownEndpoint: unmatched path (404).
	ErrUnknownEndpoint = "unknown_endpoint"
	// ErrMethodNotAllowed: wrong HTTP method (405, with an Allow header).
	ErrMethodNotAllowed = "method_not_allowed"
	// ErrSnapshotEvicted: the pinned version aged out of the retention
	// ring (410).
	ErrSnapshotEvicted = "snapshot_evicted"
	// ErrNoHistory: a deep-history query needs the on-disk snapshot
	// store and either none is attached (501) or the store has no
	// sighting of the tuple in its retained history (404).
	ErrNoHistory = "no_history"
	// ErrQueryCancelled: the client went away mid-walk; the traversal
	// was aborted (499, nginx's client-closed-request convention).
	ErrQueryCancelled = "query_cancelled"
	// ErrQueryTimeout: the ?timeout=/server-default deadline expired
	// mid-walk (504).
	ErrQueryTimeout = "query_timeout"
	// ErrInternal: a server-side fault the client cannot fix by
	// changing the request (500).
	ErrInternal = "internal_error"
	// ErrWrongShard: this server is one shard of a sharded deployment
	// and does not own the requested node's partition — or a query's
	// traversal crossed onto a partition it does not hold. Ask the
	// owning shard, or a gateway (421 Misdirected Request).
	ErrWrongShard = "wrong_shard"
	// ErrShardUnreachable: a gateway could not reach a downstream
	// shard (or the shard answered with a malformed response) while
	// federating a request (502).
	ErrShardUnreachable = "shard_unreachable"
)

// StatusClientClosedRequest is the non-standard 499 status reported
// when a cancelled client connection aborts a traversal. The client is
// gone, so the code is for logs and tests, not for the caller.
const StatusClientClosedRequest = 499

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorEnvelope struct {
	Error errorBody `json:"error"`
}

// APIError is a failure travelling inside a handler before it is
// rendered: HTTP status code, stable machine-readable error code, and
// human-readable message. It is exported so the gateway tier
// (internal/gateway) renders the exact same envelope as the shards.
type APIError struct {
	// Status is the HTTP status the envelope is written with.
	Status int
	// Code is the stable machine-readable contract (the catalog above).
	Code string
	// Message is human-readable detail; it may change freely.
	Message string
}

// Error implements the error interface with the human-readable detail.
func (e *APIError) Error() string { return e.Message }

// Errf builds an *APIError with a printf-formatted message.
func Errf(status int, code, format string, args ...interface{}) *APIError {
	return &APIError{Status: status, Code: code, Message: fmt.Sprintf(format, args...)}
}

// CtxError maps a context failure observed mid-walk to its structured
// API error; ok is false for every other error.
func CtxError(err error) (*APIError, bool) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return Errf(http.StatusGatewayTimeout, ErrQueryTimeout, "%v", err), true
	case errors.Is(err, context.Canceled):
		return Errf(StatusClientClosedRequest, ErrQueryCancelled, "%v", err), true
	}
	return nil, false
}

// WriteAPIError renders an APIError as the uniform envelope.
func WriteAPIError(w http.ResponseWriter, e *APIError) {
	WriteJSON(w, e.Status, errorEnvelope{Error: errorBody{Code: e.Code, Message: e.Message}})
}

// WriteErr is the one-shot form of WriteAPIError.
func WriteErr(w http.ResponseWriter, status int, code, format string, args ...interface{}) {
	WriteAPIError(w, Errf(status, code, format, args...))
}

// MarshalError renders an APIError as a compact JSON envelope — the
// per-item error form inside a batch response.
func MarshalError(e *APIError) json.RawMessage {
	b, _ := json.Marshal(errorEnvelope{Error: errorBody{Code: e.Code, Message: e.Message}})
	return b
}
