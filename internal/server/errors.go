package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// The v1 API reports every failure as one machine-readable envelope:
//
//	{"error": {"code": "snapshot_evicted", "message": "version 3 not retained ..."}}
//
// The code is a stable contract — clients branch on it; the message is
// human-readable detail and may change freely. Legacy routes share the
// handlers, so they emit the identical envelope.
const (
	// ErrInvalidRequest: malformed body or parameters (400).
	ErrInvalidRequest = "invalid_request"
	// ErrInvalidQuery: the query text, tuple literal, or query type
	// failed to parse (400).
	ErrInvalidQuery = "invalid_query"
	// ErrInvalidOption: a traversal option (maxdepth/maxnodes/threshold)
	// or ?timeout= value is out of range (400).
	ErrInvalidOption = "invalid_option"
	// ErrUnknownNode: no such node in the snapshot (404).
	ErrUnknownNode = "unknown_node"
	// ErrNoProvenance: the tuple has no provenance at the queried node
	// in the pinned snapshot (404).
	ErrNoProvenance = "no_provenance"
	// ErrUnknownEndpoint: unmatched path (404).
	ErrUnknownEndpoint = "unknown_endpoint"
	// ErrMethodNotAllowed: wrong HTTP method (405, with an Allow header).
	ErrMethodNotAllowed = "method_not_allowed"
	// ErrSnapshotEvicted: the pinned version aged out of the retention
	// ring (410).
	ErrSnapshotEvicted = "snapshot_evicted"
	// ErrQueryCancelled: the client went away mid-walk; the traversal
	// was aborted (499, nginx's client-closed-request convention).
	ErrQueryCancelled = "query_cancelled"
	// ErrQueryTimeout: the ?timeout=/server-default deadline expired
	// mid-walk (504).
	ErrQueryTimeout = "query_timeout"
	// ErrInternal: a server-side fault the client cannot fix by
	// changing the request (500).
	ErrInternal = "internal_error"
)

// StatusClientClosedRequest is the non-standard 499 status reported
// when a cancelled client connection aborts a traversal. The client is
// gone, so the code is for logs and tests, not for the caller.
const StatusClientClosedRequest = 499

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorEnvelope struct {
	Error errorBody `json:"error"`
}

// apiError is a failure travelling inside a handler before it is
// rendered: status code, stable error code, human message.
type apiError struct {
	status int
	code   string
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func errf(status int, code, format string, args ...interface{}) *apiError {
	return &apiError{status: status, code: code, msg: fmt.Sprintf(format, args...)}
}

// ctxError maps a context failure observed mid-walk to its structured
// API error; ok is false for every other error.
func ctxError(err error) (*apiError, bool) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return errf(http.StatusGatewayTimeout, ErrQueryTimeout, "%v", err), true
	case errors.Is(err, context.Canceled):
		return errf(StatusClientClosedRequest, ErrQueryCancelled, "%v", err), true
	}
	return nil, false
}

// writeAPIError renders an apiError as the uniform envelope.
func writeAPIError(w http.ResponseWriter, e *apiError) {
	writeJSON(w, e.status, errorEnvelope{Error: errorBody{Code: e.code, Message: e.msg}})
}

// writeErr is the one-shot form of writeAPIError.
func writeErr(w http.ResponseWriter, status int, code, format string, args ...interface{}) {
	writeAPIError(w, errf(status, code, format, args...))
}

// marshalError renders an apiError as a compact JSON envelope — the
// per-item error form inside a batch response.
func marshalError(e *apiError) json.RawMessage {
	b, _ := json.Marshal(errorEnvelope{Error: errorBody{Code: e.code, Message: e.msg}})
	return b
}
