package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"repro/internal/engine"
	"repro/internal/provstore"
)

func queryEscape(s string) string { return url.QueryEscape(s) }

// openTestStore opens a snapshot store matching the engine's node set
// (unsharded), with small segments so tests cross seal boundaries.
func openTestStore(t testing.TB, dir string, e *engine.Engine, tweak func(*provstore.Options)) *provstore.Store {
	t.Helper()
	opts := provstore.Options{AllNodes: e.Nodes(), Owned: e.Nodes(), SealVersions: 4}
	if tweak != nil {
		tweak(&opts)
	}
	st, err := provstore.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// newStoreServer boots a publisher teeing to st plus its HTTP server.
func newStoreServer(t testing.TB, e *engine.Engine, retain int, st *provstore.Store) (*Publisher, *httptest.Server) {
	t.Helper()
	pub, err := NewPublisherWithOptions(e, PublisherOptions{Retain: retain, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	pub.Detach()
	ts := httptest.NewServer(New(pub, Info{Protocol: "mincost"}))
	t.Cleanup(ts.Close)
	return pub, ts
}

// churnVersions perturbs the engine and publishes until n new versions
// exist, returning the newest.
func churnVersions(t testing.TB, pub *Publisher, n int) uint64 {
	t.Helper()
	start := pub.Current().Version
	k := 0
	for pub.Current().Version < start+uint64(n) {
		if err := pub.eng.InsertFact(churnTuple("n1", k)); err != nil {
			t.Fatal(err)
		}
		k++
		pub.Publish()
		if k > 100*n {
			t.Fatalf("churn stalled at version %d", pub.Current().Version)
		}
	}
	return pub.Current().Version
}

// markerLit is a base fact at n2 — a node the churn loop never
// touches, so it survives every epoch once inserted (churnTuple("n2",
// 3) renders to this literal).
const markerLit = "link(@'n2','n2',93)"

// pinnedBodies fetches the version-determined read surface pinned at
// v: per-node state, the nodes summary, and a lineage query of the
// marker fact.
func pinnedBodies(t testing.TB, ts *httptest.Server, pub *Publisher, v uint64) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, addr := range pub.Current().Nodes {
		url := fmt.Sprintf("%s/v1/state/%s?version=%d", ts.URL, addr, v)
		code, body := get(t, url)
		if code != http.StatusOK {
			t.Fatalf("GET %s: %d %s", url, code, body)
		}
		out["state:"+addr] = body
	}
	code, body := get(t, fmt.Sprintf("%s/v1/nodes?version=%d", ts.URL, v))
	if code != http.StatusOK {
		t.Fatalf("nodes@%d: %d %s", v, code, body)
	}
	out["nodes"] = body

	req := fmt.Sprintf(`{"type":"lineage","tuple":%q,"version":%d}`, markerLit, v)
	code, body = post(t, ts.URL+"/v1/query", req)
	if code != http.StatusOK {
		t.Fatalf("query@%d: %d %s", v, code, body)
	}
	out["query"] = body
	return out
}

func sameBodies(t *testing.T, want, got map[string][]byte, label string) {
	t.Helper()
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Fatalf("%s: %s missing", label, k)
		}
		if !bytes.Equal(w, g) {
			t.Errorf("%s: %s drifted:\nring: %s\ndisk: %s", label, k, w, g)
		}
	}
}

// TestStoreFallbackServesEvictedVersions is the tentpole contract:
// with a store attached, a version that ages out of the in-memory ring
// is served from disk with byte-identical bodies — never
// snapshot_evicted.
func TestStoreFallbackServesEvictedVersions(t *testing.T) {
	e := buildGrid(t, 2)
	st := openTestStore(t, t.TempDir(), e, nil)
	defer st.Close()
	pub, ts := newStoreServer(t, e, 4, st)

	if err := e.InsertFact(churnTuple("n2", 3)); err != nil {
		t.Fatal(err)
	}
	pub.Publish()
	churnVersions(t, pub, 1)
	pinned := pub.Current().Version // still in the ring when captured
	want := pinnedBodies(t, ts, pub, pinned)

	churnVersions(t, pub, 10) // push pinned out of the retain=4 ring
	if first := pub.cur.Load().snaps[0].Version; first <= pinned {
		t.Fatalf("test is vacuous: version %d still in the ring (first %d)", pinned, first)
	}
	oldest, _ := pub.Versions()
	if oldest != 1 {
		t.Fatalf("store-backed oldest = %d, want 1", oldest)
	}
	sameBodies(t, want, pinnedBodies(t, ts, pub, pinned), "after eviction")

	// Unpinned current reads and a too-new pin still behave.
	if _, ok := pub.At(pub.Current().Version + 1); ok {
		t.Fatal("future version resolved")
	}
	code, body := get(t, fmt.Sprintf("%s/v1/state/n1?version=%d", ts.URL, pub.Current().Version+10))
	if code != http.StatusGone {
		t.Fatalf("future pin: %d %s", code, body)
	}
}

// TestStoreRestartResumesAndServes: a restarted daemon (fresh engine,
// reopened store) resumes minting at LastVersion()+1 and serves early
// pinned versions from disk byte-identically.
func TestStoreRestartResumesAndServes(t *testing.T) {
	dir := t.TempDir()
	e1 := buildGrid(t, 2)
	st1 := openTestStore(t, dir, e1, nil)
	pub1, ts1 := newStoreServer(t, e1, 4, st1)
	if err := e1.InsertFact(churnTuple("n2", 3)); err != nil {
		t.Fatal(err)
	}
	pinned := pub1.Publish().Version // 2: long evicted from the retain=4 ring below
	last := churnVersions(t, pub1, 8)
	want := pinnedBodies(t, ts1, pub1, pinned)
	ts1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := buildGrid(t, 2)
	st2 := openTestStore(t, dir, e2, nil)
	defer st2.Close()
	pub2, ts2 := newStoreServer(t, e2, 4, st2)
	if got := pub2.Current().Version; got != last+1 {
		t.Fatalf("restart minted version %d, want %d", got, last+1)
	}
	if oldest, _ := pub2.Versions(); oldest != 1 {
		t.Fatalf("restart oldest = %d, want 1", oldest)
	}
	sameBodies(t, want, pinnedBodies(t, ts2, pub2, pinned), "after restart")

	// And the chain keeps extending densely.
	if got := churnVersions(t, pub2, 2); got != last+3 {
		t.Fatalf("post-restart churn reached %d, want %d", got, last+3)
	}
}

// TestTrimHistoryWaitsForDurability is the history-trimming fix: rows
// the store has not fsynced yet must survive trimming (the list may
// overshoot its bound), and a sync lets the next publish trim again.
func TestTrimHistoryWaitsForDurability(t *testing.T) {
	e := buildGrid(t, 2)
	st := openTestStore(t, t.TempDir(), e, func(o *provstore.Options) {
		o.SealVersions = 1 << 20 // never seal: durability advances only on explicit Sync
		o.SyncEvery = 1 << 20    // never fsync on append
	})
	defer st.Close()
	pub, err := NewPublisherWithOptions(e, PublisherOptions{Retain: 2, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	pub.Detach()

	maxLen := pub.retain * len(pub.owned)
	churnVersions(t, pub, 20)
	if st.DurableVersion() != 0 {
		t.Fatalf("durable version %d without any sync", st.DurableVersion())
	}
	if len(pub.history) <= 2*maxLen {
		t.Fatalf("test is vacuous: history %d never exceeded the trigger %d", len(pub.history), 2*maxLen)
	}

	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if st.DurableVersion() != st.LastVersion() {
		t.Fatalf("sync left durable at %d of %d", st.DurableVersion(), st.LastVersion())
	}
	churnVersions(t, pub, 1)
	// One row per publish may land after the trim; the bound is maxLen
	// plus carry-forward rows, well under the pre-sync pile-up.
	if len(pub.history) > maxLen+len(pub.owned) {
		t.Fatalf("history still %d rows after sync (bound %d)", len(pub.history), maxLen+len(pub.owned))
	}
	for i := range pub.pending {
		if pub.pending[i].histLen > len(pub.history) {
			t.Fatalf("pending mark %d points past the trimmed history (%d > %d)",
				i, pub.pending[i].histLen, len(pub.history))
		}
	}
	// Every owned node still has a history row (carry-forward held).
	seen := map[string]bool{}
	for i := range pub.history {
		seen[pub.history[i].Node] = true
	}
	for _, addr := range pub.owned {
		if !seen[addr] {
			t.Errorf("node %s lost its last history row to trimming", addr)
		}
	}
}

// TestHistoryFirstEndpoint exercises the new deep-history query class
// end to end: first version where tuple X exists.
func TestHistoryFirstEndpoint(t *testing.T) {
	e := buildGrid(t, 2)
	st := openTestStore(t, t.TempDir(), e, nil)
	defer st.Close()
	pub, ts := newStoreServer(t, e, 4, st)

	churnVersions(t, pub, 3)
	marker := churnTuple("n2", 3) // not inserted by churnVersions (it only churns n1)
	if err := e.InsertFact(marker); err != nil {
		t.Fatal(err)
	}
	inserted := pub.Publish().Version
	churnVersions(t, pub, 6) // push the insertion epoch out of the ring

	code, body := get(t, ts.URL+"/v1/history/first?tuple="+queryEscape(markerLit))
	if code != http.StatusOK {
		t.Fatalf("history/first: %d %s", code, body)
	}
	var out struct {
		Node         string `json:"node"`
		FirstVersion uint64 `json:"firstVersion"`
		TimeUs       int64  `json:"virtualTimeUs"`
		Oldest       uint64 `json:"oldestVersion"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Node != "n2" || out.FirstVersion != inserted {
		t.Fatalf("first = %+v, want node n2 at version %d", out, inserted)
	}
	if out.Oldest != 1 {
		t.Fatalf("oldestVersion = %d, want 1", out.Oldest)
	}

	// A tuple the network never saw: 404 no_history.
	code, body = get(t, ts.URL+"/v1/history/first?tuple="+queryEscape("link(@'n1','n1',424242)"))
	if code != http.StatusNotFound || !bytes.Contains(body, []byte(ErrNoHistory)) {
		t.Fatalf("unseen tuple: %d %s", code, body)
	}
	// Unknown node: 404 unknown_node.
	code, body = get(t, ts.URL+"/v1/history/first?tuple="+queryEscape("link(@'zz','zz',1)"))
	if code != http.StatusNotFound || !bytes.Contains(body, []byte(ErrUnknownNode)) {
		t.Fatalf("unknown node: %d %s", code, body)
	}
	// Missing tuple parameter: 400.
	code, _ = get(t, ts.URL+"/v1/history/first")
	if code != http.StatusBadRequest {
		t.Fatalf("missing tuple: %d", code)
	}

	// Without a store the endpoint reports 501 no_history.
	e2 := buildGrid(t, 2)
	_, bare := newServer(t, e2, 4)
	code, body = get(t, bare.URL+"/v1/history/first?tuple="+queryEscape(markerLit))
	if code != http.StatusNotImplemented || !bytes.Contains(body, []byte(ErrNoHistory)) {
		t.Fatalf("storeless daemon: %d %s", code, body)
	}
}
