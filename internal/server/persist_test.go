package server

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/logstore"
	"repro/internal/rel"
	"repro/internal/simnet"
)

// churnTuple is a base fact whose insertion perturbs the engine's
// state without needing any particular protocol meaning.
func churnTuple(node string, k int) rel.Tuple {
	return rel.NewTuple("link", rel.Addr(node), rel.Addr(node), rel.Int(int64(90+k%7)))
}

// nodeVersions records every node's (state, prov) version pair.
func nodeVersions(t *testing.T, p *Publisher) map[string][2]uint64 {
	t.Helper()
	out := map[string][2]uint64{}
	for _, addr := range p.eng.Nodes() {
		n, ok := p.eng.Node(addr)
		if !ok {
			t.Fatalf("missing node %s", addr)
		}
		out[addr] = [2]uint64{n.RT.Store.StateVersion(), n.Prov.Version()}
	}
	return out
}

// TestPublishSharesUnchangedNodeStates is the tentpole handoff
// invariant: after a publish, every node whose state did not change
// keeps its identical *nodeState (tables, view, and NodeInfo all
// shared, nothing recounted), while changed nodes get fresh ones.
func TestPublishSharesUnchangedNodeStates(t *testing.T) {
	e := buildGrid(t, 3)
	pub, err := NewPublisher(e, 8)
	if err != nil {
		t.Fatal(err)
	}
	pub.Detach()

	before := pub.Publish()
	pre := nodeVersions(t, pub)
	if err := e.InsertFact(churnTuple("n1", 0)); err != nil {
		t.Fatal(err)
	}
	after := pub.Publish()
	post := nodeVersions(t, pub)

	if after == before || after.Version != before.Version+1 {
		t.Fatalf("churn did not mint a new version: %d -> %d", before.Version, after.Version)
	}
	changed, carried := 0, 0
	for i, addr := range after.Nodes {
		if pre[addr] == post[addr] {
			carried++
			if before.states[i] != after.states[i] {
				t.Errorf("node %s unchanged but its nodeState was rebuilt", addr)
			}
		} else {
			changed++
			if before.states[i] == after.states[i] {
				t.Errorf("node %s changed but still shares the old nodeState", addr)
			}
		}
	}
	if changed == 0 {
		t.Fatal("churn changed no node")
	}
	if carried == 0 {
		t.Fatal("test is vacuous: every node changed, nothing was carried")
	}

	// The carried info (including the tuple count of satellite fame) is
	// byte-for-byte the previous epoch's — never recounted.
	for i, addr := range after.Nodes {
		if pre[addr] != post[addr] {
			continue
		}
		if got, want := fmt.Sprint(after.states[i].info), fmt.Sprint(before.states[i].info); got != want {
			t.Errorf("node %s carried info drifted: %s vs %s", addr, got, want)
		}
	}
}

// TestPublishNoChangeReturnsSameSnapshot: a publish with no state
// change anywhere returns the identical snapshot, no new version.
func TestPublishNoChangeReturnsSameSnapshot(t *testing.T) {
	e := buildGrid(t, 2)
	pub, err := NewPublisher(e, 4)
	if err != nil {
		t.Fatal(err)
	}
	pub.Detach()
	s1 := pub.Publish()
	s2 := pub.Publish()
	if s1 != s2 {
		t.Fatalf("no-op publish minted version %d after %d", s2.Version, s1.Version)
	}
}

// mallocsAround measures heap allocations performed by fn on this
// goroutine (the publisher path is single-threaded between epochs).
func mallocsAround(fn func()) uint64 {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// TestPublishAllocsBoundedByDelta drives a long churn loop and checks
// the per-publish allocation cost tracks the delta, not the state or
// the epoch count: late-loop publishes allocate no more than early
// ones, and a bigger grid costs no meaningful multiple of a small one
// for the same 1-tuple delta.
func TestPublishAllocsBoundedByDelta(t *testing.T) {
	measure := func(side, epochs int) (perPublish uint64) {
		e := buildGrid(t, side)
		pub, err := NewPublisher(e, 4)
		if err != nil {
			t.Fatal(err)
		}
		pub.Detach()
		var worst uint64
		for k := 0; k < epochs; k++ {
			tp := churnTuple("n1", k)
			if err := e.InsertFact(tp); err != nil {
				t.Fatal(err)
			}
			if err := e.DeleteFact(tp); err != nil {
				t.Fatal(err)
			}
			if m := mallocsAround(func() { pub.Publish() }); k > epochs/2 && m > worst {
				worst = m
			}
		}
		return worst
	}

	small := measure(2, 400)
	large := measure(5, 400)
	t.Logf("worst per-publish mallocs: 2x2 grid %d, 5x5 grid %d", small, large)
	// The delta is one tuple in both runs. A generous constant bound
	// catches any O(state) or O(history) regression (those would be in
	// the thousands for the 5x5 grid) without being flaky about small
	// bookkeeping differences.
	if large > 4*small+200 {
		t.Fatalf("publish allocations grew with state size: 2x2=%d 5x5=%d", small, large)
	}
}

// TestChurnLoopBounded runs a 10k-epoch churn loop against one
// publisher and checks the retained structures stay bounded: the ring
// never exceeds retain, the history list stays within its hysteresis
// window, and every owned node stays resolvable at the current instant
// (the carry-forward guarantee).
func TestChurnLoopBounded(t *testing.T) {
	const epochs = 10000
	const retain = 8
	e := buildGrid(t, 2)
	pub, err := NewPublisher(e, retain)
	if err != nil {
		t.Fatal(err)
	}
	pub.Detach()
	for k := 0; k < epochs; k++ {
		tp := churnTuple("n1", k)
		if err := e.InsertFact(tp); err != nil {
			t.Fatal(err)
		}
		if err := e.DeleteFact(tp); err != nil {
			t.Fatal(err)
		}
		pub.Publish()
	}
	snap := pub.Current()
	if oldest, newest := pub.Versions(); newest-oldest+1 > retain {
		t.Fatalf("ring grew past retain: [%d, %d]", oldest, newest)
	}
	if max := 2 * retain * len(snap.Nodes); snap.History.Len() > max {
		t.Fatalf("history grew past the hysteresis window: %d > %d", snap.History.Len(), max)
	}
	view := snap.History.At(snap.Time)
	for _, addr := range snap.Nodes {
		if _, ok := view[addr]; !ok {
			t.Fatalf("node %s lost its history row after trimming", addr)
		}
	}
}

// TestTrimHistoryCarryForward exercises the trim directly: a quiet
// node's only (early) row must survive, in time order, while the noisy
// suffix is kept as-is.
func TestTrimHistoryCarryForward(t *testing.T) {
	p := &Publisher{retain: 2, owned: []string{"loud", "quiet"}}
	row := func(node string, at int) logstore.Snapshot {
		return logstore.Snapshot{Node: node, Time: simnet.Time(at)}
	}
	p.history = append(p.history, row("quiet", 1), row("loud", 1))
	for i := 2; i <= 20; i++ {
		p.history = append(p.history, row("loud", i))
	}
	p.trimHistory()

	maxLen := p.retain * len(p.owned)
	if len(p.history) > maxLen+1 {
		t.Fatalf("trim kept %d rows, want <= %d", len(p.history), maxLen+1)
	}
	if p.history[0].Node != "quiet" || p.history[0].Time != 1 {
		t.Fatalf("quiet node's only row was dropped; head is %+v", p.history[0])
	}
	for i := 1; i < len(p.history); i++ {
		if p.history[i].Time < p.history[i-1].Time {
			t.Fatalf("trimmed history out of time order at %d", i)
		}
		if p.history[i].Node != "loud" {
			t.Fatalf("unexpected row %+v", p.history[i])
		}
	}
	if last := p.history[len(p.history)-1]; last.Time != 20 {
		t.Fatalf("newest row lost: %+v", last)
	}

	// Idempotent below the hysteresis threshold: nothing more to cut.
	before := len(p.history)
	p.trimHistory()
	if len(p.history) != before {
		t.Fatalf("second trim changed length %d -> %d", before, len(p.history))
	}
}
