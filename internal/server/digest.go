package server

import (
	"crypto/sha1"
	"encoding/binary"
	"sort"

	"repro/internal/rel"
)

// Snapshot digests: deterministic content hashes over the frozen state
// a snapshot serves, used by the distributed-engine acceptance tier to
// assert byte-parity between deployment shapes. A node digest covers
// everything published for the node — metadata, every persistent table
// tuple in canonical encoding, and the provenance view's deterministic
// persistence buckets — but deliberately not the ShardSpec, so the
// digest of node X is comparable across a single-process snapshot, a
// shard's snapshot, and a distributed member's snapshot.

func putU64(h *digestWriter, v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	h.write(b[:])
}

func putStr(h *digestWriter, s string) {
	putU64(h, uint64(len(s)))
	h.write([]byte(s))
}

// digestWriter length-frames every write so part boundaries are
// unambiguous (the same framing rule as rel.HashParts).
type digestWriter struct {
	h interface{ Write([]byte) (int, error) }
}

func (w *digestWriter) write(b []byte) { w.h.Write(b) }

func (w *digestWriter) frame(b []byte) {
	putU64(w, uint64(len(b)))
	w.write(b)
}

// NodeDigest hashes one owned node's full published partition; ok is
// false for nodes this snapshot does not hold. Two snapshots give a
// node equal digests iff they publish byte-identical state for it.
func (s *Snapshot) NodeDigest(addr string) (rel.ID, bool) {
	st := s.stateOf(addr)
	if st == nil {
		return rel.ID{}, false
	}
	h := sha1.New()
	w := &digestWriter{h: h}
	putStr(w, st.info.Addr)
	putU64(w, uint64(len(st.info.Neighbors)))
	for _, nb := range st.info.Neighbors {
		putStr(w, nb)
	}
	putU64(w, uint64(st.info.Tuples))
	putU64(w, uint64(st.info.Prov.ProvEntries))
	putU64(w, uint64(st.info.Prov.ExecEntries))
	putU64(w, uint64(st.info.Prov.Pins))
	putU64(w, uint64(st.info.SentMsgs))
	putU64(w, uint64(st.info.SentBytes))

	names := make([]string, 0, len(st.tables))
	for name := range st.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	putU64(w, uint64(len(names)))
	for _, name := range names {
		putStr(w, name)
		st.tables[name].Runs(func(ts []rel.Tuple) {
			for _, t := range ts {
				w.frame(rel.MarshalTuple(t))
			}
		})
	}

	prov, exec, pins := st.view.PersistBuckets()
	for _, dir := range [][][]byte{prov, exec, pins} {
		putU64(w, uint64(len(dir)))
		for _, bucket := range dir {
			w.frame(bucket)
		}
	}

	var id rel.ID
	copy(id[:], h.Sum(nil))
	return id, true
}

// Digest hashes the whole snapshot: version, virtual time, and every
// owned node's digest in address order. Two snapshots of the same
// shard shape are byte-identical iff their digests match; across
// shapes, compare per-node digests instead.
func (s *Snapshot) Digest() rel.ID {
	parts := make([][]byte, 0, 2+len(s.Nodes))
	var hdr [16]byte
	binary.BigEndian.PutUint64(hdr[:8], s.Version)
	binary.BigEndian.PutUint64(hdr[8:], uint64(s.Time))
	parts = append(parts, hdr[:])
	for _, addr := range s.Nodes {
		d, _ := s.NodeDigest(addr)
		parts = append(parts, d[:])
	}
	return rel.HashParts(parts...)
}
