package server

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/protocols"
	"repro/internal/provquery"
)

func TestShardSpecOwnedNodes(t *testing.T) {
	nodes := []string{"a", "b", "c", "d", "e"}
	for _, tc := range []struct {
		name   string
		spec   ShardSpec
		sorted []string
		want   []string
	}{
		{"unsharded-zero-value", ShardSpec{}, nodes, nodes},
		{"single-shard", ShardSpec{Index: 0, Total: 1}, nodes, nodes},
		{"first-of-three", ShardSpec{Index: 0, Total: 3}, nodes, []string{"a", "d"}},
		{"middle-of-three", ShardSpec{Index: 1, Total: 3}, nodes, []string{"b", "e"}},
		{"last-of-three", ShardSpec{Index: 2, Total: 3}, nodes, []string{"c"}},
		{"shards-equal-nodes", ShardSpec{Index: 4, Total: 5}, nodes, []string{"e"}},
		{"empty-network", ShardSpec{}, nil, nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.spec.OwnedNodes(tc.sorted)
			if len(got) != len(tc.want) {
				t.Fatalf("OwnedNodes = %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("OwnedNodes = %v, want %v", got, tc.want)
				}
			}
		})
	}
}

func TestShardSpecRoundRobinCovers(t *testing.T) {
	// Every node lands on exactly one shard, whatever the split.
	nodes := []string{"a", "b", "c", "d", "e", "f", "g"}
	for total := 1; total <= len(nodes); total++ {
		seen := map[string]int{}
		for i := 0; i < total; i++ {
			for _, n := range (ShardSpec{Index: i, Total: total}).OwnedNodes(nodes) {
				seen[n]++
			}
		}
		if len(seen) != len(nodes) {
			t.Fatalf("total=%d: %d of %d nodes owned", total, len(seen), len(nodes))
		}
		for n, c := range seen {
			if c != 1 {
				t.Fatalf("total=%d: node %s owned by %d shards", total, n, c)
			}
		}
	}
}

// TestNewShardedPublisherRejects pins the constructor's edge cases:
// more shards than nodes (an empty shard can never serve its slice),
// and malformed specs.
func TestNewShardedPublisherRejects(t *testing.T) {
	eng, err := engine.New(protocols.MinCost, []string{"n1", "n2", "n3"},
		engine.Options{Seed: 1, Provenance: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		spec ShardSpec
	}{
		{"shards-exceed-nodes", ShardSpec{Index: 0, Total: 4}},
		{"negative-index", ShardSpec{Index: -1, Total: 2}},
		{"index-past-total", ShardSpec{Index: 2, Total: 2}},
		{"negative-total", ShardSpec{Index: 0, Total: -1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewShardedPublisher(eng, 1, tc.spec); err == nil {
				t.Fatalf("NewShardedPublisher(%s) succeeded, want error", tc.spec)
			}
		})
	}
	// The boundary case that must work: exactly one node per shard.
	pub, err := NewShardedPublisher(eng, 1, ShardSpec{Index: 2, Total: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := pub.Current().Nodes; len(got) != 1 || got[0] != "n3" {
		t.Fatalf("3/3 shard over 3 nodes owns %v, want [n3]", got)
	}
	pub.Detach()
}

func TestClampOptionsTable(t *testing.T) {
	for _, tc := range []struct {
		name string
		info Info
		in   provquery.Options
		want provquery.Options
	}{
		{"no-caps-passthrough", Info{}, provquery.Options{MaxDepth: 9, MaxNodes: 9}, provquery.Options{MaxDepth: 9, MaxNodes: 9}},
		{"unlimited-request-clamped", Info{MaxDepth: 4, MaxNodes: 8}, provquery.Options{}, provquery.Options{MaxDepth: 4, MaxNodes: 8}},
		{"looser-request-clamped", Info{MaxDepth: 4, MaxNodes: 8}, provquery.Options{MaxDepth: 100, MaxNodes: 100}, provquery.Options{MaxDepth: 4, MaxNodes: 8}},
		{"tighter-request-wins", Info{MaxDepth: 4, MaxNodes: 8}, provquery.Options{MaxDepth: 2, MaxNodes: 3}, provquery.Options{MaxDepth: 2, MaxNodes: 3}},
		{"equal-request-kept", Info{MaxDepth: 4}, provquery.Options{MaxDepth: 4}, provquery.Options{MaxDepth: 4}},
		{"threshold-untouched", Info{MaxDepth: 4}, provquery.Options{Threshold: 7}, provquery.Options{Threshold: 7, MaxDepth: 4}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.info.ClampOptions(tc.in); got != tc.want {
				t.Fatalf("ClampOptions(%+v) = %+v, want %+v", tc.in, got, tc.want)
			}
		})
	}
}

func TestValidateOptionsTable(t *testing.T) {
	for _, tc := range []struct {
		name     string
		in       provquery.Options
		wantCode string // "" means valid
	}{
		{"zero-valid", provquery.Options{}, ""},
		{"max-boundary-valid", provquery.Options{MaxDepth: maxOptionValue}, ""},
		{"negative-threshold", provquery.Options{Threshold: -1}, ErrInvalidOption},
		{"negative-maxdepth", provquery.Options{MaxDepth: -5}, ErrInvalidOption},
		{"negative-maxnodes", provquery.Options{MaxNodes: -1}, ErrInvalidOption},
		{"absurd-maxnodes", provquery.Options{MaxNodes: maxOptionValue + 1}, ErrInvalidOption},
		{"absurd-threshold", provquery.Options{Threshold: 1 << 30}, ErrInvalidOption},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := validateOptions(tc.in)
			if tc.wantCode == "" {
				if err != nil {
					t.Fatalf("validateOptions(%+v) = %v, want nil", tc.in, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validateOptions(%+v) succeeded, want %s", tc.in, tc.wantCode)
			}
			if err.Code != tc.wantCode || err.Status != 400 {
				t.Fatalf("validateOptions(%+v) = %d %s, want 400 %s", tc.in, err.Status, err.Code, tc.wantCode)
			}
		})
	}
}
