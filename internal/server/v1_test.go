package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/provquery"
	"repro/internal/testutil"
)

// decodeEnvelope parses the uniform v1 error envelope.
func decodeEnvelope(t *testing.T, body []byte) (code, msg string) {
	t.Helper()
	var e struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error.Code == "" {
		t.Fatalf("not an error envelope: %s", body)
	}
	return e.Error.Code, e.Error.Message
}

// TestV1AndLegacyBodiesByteIdentical: every legacy route is a thin
// alias of its /v1/ twin — same handler, byte-identical success body —
// and announces its deprecation in headers.
func TestV1AndLegacyBodiesByteIdentical(t *testing.T) {
	e := buildGrid(t, 2)
	pub, ts := newServer(t, e, 0)
	v := pub.Current().Version

	queryBody := fmt.Sprintf(`{"q":"lineage of mincost(@'n1','n4',2)","version":%d}`, v)
	cases := []struct {
		name, method, path, body string
	}{
		{"healthz", "GET", "/healthz", ""},
		{"nodes", "GET", fmt.Sprintf("/nodes?version=%d", v), ""},
		{"state", "GET", fmt.Sprintf("/state/n1?rel=mincost&version=%d", v), ""},
		{"query", "POST", "/query", queryBody},
		{"proof.dot", "GET", fmt.Sprintf("/proof.dot?tuple=mincost(@'n1','n4',2)&version=%d", v), ""},
	}
	do := func(method, url, body string) (*http.Response, []byte) {
		t.Helper()
		if method == "POST" {
			return postFull(t, url, body)
		}
		return getFull(t, url)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			legacyResp, legacyBody := do(tc.method, ts.URL+tc.path, tc.body)
			v1Resp, v1Body := do(tc.method, ts.URL+"/v1"+tc.path, tc.body)
			if legacyResp.StatusCode != http.StatusOK || v1Resp.StatusCode != http.StatusOK {
				t.Fatalf("status legacy=%d v1=%d (%s)", legacyResp.StatusCode, v1Resp.StatusCode, legacyBody)
			}
			if !bytes.Equal(legacyBody, v1Body) {
				t.Fatalf("legacy and v1 bodies diverged:\n%s\nvs\n%s", legacyBody, v1Body)
			}
			if dep := legacyResp.Header.Get("Deprecation"); dep != "true" {
				t.Fatalf("legacy Deprecation header = %q, want true", dep)
			}
			if link := legacyResp.Header.Get("Link"); !strings.Contains(link, "/v1/") ||
				!strings.Contains(link, "successor-version") {
				t.Fatalf("legacy Link header = %q", link)
			}
			if dep := v1Resp.Header.Get("Deprecation"); dep != "" {
				t.Fatalf("v1 route marked deprecated: %q", dep)
			}
		})
	}
}

// TestVersionEndpoint: GET /v1/version reports the build metadata of
// the running binary, and there is deliberately no legacy alias.
func TestVersionEndpoint(t *testing.T) {
	e := buildGrid(t, 2)
	_, ts := newServer(t, e, 0)

	code, body := get(t, ts.URL+"/v1/version")
	if code != http.StatusOK {
		t.Fatalf("version: %d %s", code, body)
	}
	var info buildinfo.Info
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Module != "repro" || !strings.HasPrefix(info.GoVersion, "go") {
		t.Fatalf("version info = %+v", info)
	}
	if code, _ := get(t, ts.URL+"/version"); code != http.StatusNotFound {
		t.Fatalf("legacy /version must not exist, got %d", code)
	}
}

// TestETagConditionalGET: snapshot-determined GET responses carry a
// strong ETag; If-None-Match answers 304 with no body, legacy and v1
// spellings of the same request share the tag, and a different
// snapshot version mints a different one.
func TestETagConditionalGET(t *testing.T) {
	e := buildGrid(t, 2)
	pub, ts := newServer(t, e, 0)
	v := pub.Current().Version

	for _, path := range []string{
		fmt.Sprintf("/v1/nodes?version=%d", v),
		fmt.Sprintf("/v1/state/n1?rel=mincost&version=%d", v),
		fmt.Sprintf("/v1/proof.dot?tuple=mincost(@'n1','n4',2)&version=%d", v),
	} {
		resp, body := getFull(t, ts.URL+path)
		etag := resp.Header.Get("ETag")
		if resp.StatusCode != http.StatusOK || etag == "" {
			t.Fatalf("%s: status %d etag %q", path, resp.StatusCode, etag)
		}
		req, err := http.NewRequest("GET", ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("If-None-Match", etag)
		cond, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		condBody := new(bytes.Buffer)
		_, _ = condBody.ReadFrom(cond.Body)
		cond.Body.Close()
		if cond.StatusCode != http.StatusNotModified || condBody.Len() != 0 {
			t.Fatalf("%s: conditional GET = %d (%d body bytes), want 304 empty",
				path, cond.StatusCode, condBody.Len())
		}
		if got := cond.Header.Get("ETag"); got != etag {
			t.Fatalf("%s: 304 ETag = %q, want %q", path, got, etag)
		}
		// A stale validator still gets the full body.
		req.Header.Set("If-None-Match", `"0-stale"`)
		full, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		fullBody := new(bytes.Buffer)
		_, _ = fullBody.ReadFrom(full.Body)
		full.Body.Close()
		if full.StatusCode != http.StatusOK || !bytes.Equal(fullBody.Bytes(), body) {
			t.Fatalf("%s: stale-validator GET = %d, body diverged", path, full.StatusCode)
		}
	}

	// Legacy alias and the unpinned spelling share the v1 tag (same
	// resolved version, same normalized request).
	pinned, _ := getFull(t, fmt.Sprintf("%s/v1/nodes?version=%d", ts.URL, v))
	legacy, _ := getFull(t, fmt.Sprintf("%s/nodes?version=%d", ts.URL, v))
	current, _ := getFull(t, ts.URL+"/v1/nodes")
	if lt, vt := legacy.Header.Get("ETag"), pinned.Header.Get("ETag"); lt != vt {
		t.Fatalf("legacy ETag %q != v1 ETag %q", lt, vt)
	}
	if ct, vt := current.Header.Get("ETag"), pinned.Header.Get("ETag"); ct != vt {
		t.Fatalf("current-version ETag %q != pinned ETag %q for the same snapshot", ct, vt)
	}
	// A different parameter set is a different resource.
	other, _ := getFull(t, fmt.Sprintf("%s/v1/state/n1?rel=link&version=%d", ts.URL, v))
	mc, _ := getFull(t, fmt.Sprintf("%s/v1/state/n1?rel=mincost&version=%d", ts.URL, v))
	if other.Header.Get("ETag") == mc.Header.Get("ETag") {
		t.Fatal("different rel filters share an ETag")
	}
}

// TestOptionValidationRejections: out-of-range traversal options and
// unknown query types are rejected at the API boundary with the 400
// envelope — never silently clamped, never a panic.
func TestOptionValidationRejections(t *testing.T) {
	e := buildGrid(t, 2)
	_, ts := newServer(t, e, 0)

	cases := []struct {
		name, body, wantCode string
	}{
		{"negative maxdepth", `{"type":"lineage","tuple":"mincost(@'n1','n4',2)","options":{"maxdepth":-1}}`, ErrInvalidOption},
		{"negative maxnodes", `{"type":"lineage","tuple":"mincost(@'n1','n4',2)","options":{"maxnodes":-7}}`, ErrInvalidOption},
		{"negative threshold", `{"type":"count","tuple":"mincost(@'n1','n4',2)","options":{"threshold":-2}}`, ErrInvalidOption},
		{"absurd maxdepth", `{"type":"lineage","tuple":"mincost(@'n1','n4',2)","options":{"maxdepth":2000000}}`, ErrInvalidOption},
		{"absurd maxnodes", `{"type":"lineage","tuple":"mincost(@'n1','n4',2)","options":{"maxnodes":99999999}}`, ErrInvalidOption},
		{"unknown type", `{"type":"explain","tuple":"mincost(@'n1','n4',2)"}`, ErrInvalidQuery},
		{"unknown textual type", `{"q":"explain of mincost(@'n1','n4',2)"}`, ErrInvalidQuery},
		{"neither form", `{"at":"n1"}`, ErrInvalidRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postFull(t, ts.URL+"/v1/query", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (%s)", resp.StatusCode, body)
			}
			if code, _ := decodeEnvelope(t, body); code != tc.wantCode {
				t.Fatalf("error code = %q, want %q (%s)", code, tc.wantCode, body)
			}
		})
	}

	// Bad ?timeout= values are invalid_option too.
	resp, body := postFull(t, ts.URL+"/v1/query?timeout=banana",
		`{"q":"count of mincost(@'n1','n4',2)"}`)
	if code, _ := decodeEnvelope(t, body); resp.StatusCode != http.StatusBadRequest || code != ErrInvalidOption {
		t.Fatalf("bad timeout: %d %s", resp.StatusCode, body)
	}
	resp, body = postFull(t, ts.URL+"/v1/query?timeout=-5s",
		`{"q":"count of mincost(@'n1','n4',2)"}`)
	if code, _ := decodeEnvelope(t, body); resp.StatusCode != http.StatusBadRequest || code != ErrInvalidOption {
		t.Fatalf("negative timeout: %d %s", resp.StatusCode, body)
	}
}

// TestErrorCodesConsistentAcrossEndpoints: the same defect earns the
// same stable code on every query-evaluating route — an SDK caller
// branching on a code must not get different answers per endpoint.
func TestErrorCodesConsistentAcrossEndpoints(t *testing.T) {
	e := buildGrid(t, 2)
	_, ts := newServer(t, e, 0)

	// Unknown starting node: unknown_node everywhere.
	resp, body := postFull(t, ts.URL+"/v1/query",
		`{"type":"lineage","tuple":"mincost(@'ghost','n4',2)"}`)
	qCode, _ := decodeEnvelope(t, body)
	resp2, body2 := getFull(t, ts.URL+"/v1/proof.dot?tuple=mincost(@'ghost','n4',2)")
	dCode, _ := decodeEnvelope(t, body2)
	if qCode != ErrUnknownNode || dCode != qCode || resp.StatusCode != resp2.StatusCode {
		t.Fatalf("unknown node: /query = %d %q, /proof.dot = %d %q",
			resp.StatusCode, qCode, resp2.StatusCode, dCode)
	}

	// Unknown tuple at a real node: no_provenance everywhere.
	_, body = postFull(t, ts.URL+"/v1/query",
		`{"type":"lineage","tuple":"mincost(@'n1','n4',99)"}`)
	qCode, _ = decodeEnvelope(t, body)
	_, body2 = getFull(t, ts.URL+"/v1/proof.dot?tuple=mincost(@'n1','n4',99)")
	dCode, _ = decodeEnvelope(t, body2)
	if qCode != ErrNoProvenance || dCode != qCode {
		t.Fatalf("unknown tuple: /query = %q, /proof.dot = %q", qCode, dCode)
	}
}

// normalizeJSON re-indents a JSON document exactly as WriteJSON does,
// so a batch result element can be compared byte-for-byte against the
// equivalent individual response body.
func normalizeJSON(t *testing.T, raw []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Indent(&buf, raw, "", "  "); err != nil {
		t.Fatalf("normalize %s: %v", raw, err)
	}
	buf.WriteByte('\n')
	return buf.Bytes()
}

// TestBatchMatchesSequential is the batch acceptance test: a batch
// over a pinned snapshot returns, element by element, the identical
// JSON documents the equivalent sequential /v1/query requests return —
// and the batch's queries share the snapshot's sub-proof cache.
func TestBatchMatchesSequential(t *testing.T) {
	e := buildGrid(t, 3)
	pub, ts := newServer(t, e, 0)
	v := pub.Current().Version

	queries := []string{
		`{"q":"lineage of mincost(@'n1','n9',4)"}`,
		`{"type":"bases","tuple":"mincost(@'n1','n9',4)"}`,
		`{"q":"nodes of mincost(@'n1','n9',4)"}`,
		`{"q":"count of mincost(@'n1','n9',4) with threshold 1"}`,
		`{"q":"lineage of mincost(@'n1','n9',4)"}`, // repeat: in-batch cache hit
	}

	// Sequential ground truth, each pinned to v.
	sequential := make([][]byte, len(queries))
	for i, q := range queries {
		pinned := strings.TrimSuffix(q, "}") + fmt.Sprintf(`,"version":%d}`, v)
		code, body := post(t, ts.URL+"/v1/query", pinned)
		if code != http.StatusOK {
			t.Fatalf("sequential query %d: %d %s", i, code, body)
		}
		sequential[i] = body
	}

	batchBody := fmt.Sprintf(`{"version":%d,"queries":[%s]}`, v, strings.Join(queries, ","))
	resp, body := postFull(t, ts.URL+"/v1/query/batch", batchBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, body)
	}
	var batch struct {
		Version uint64            `json:"version"`
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	if batch.Version != v || len(batch.Results) != len(queries) {
		t.Fatalf("batch = version %d, %d results", batch.Version, len(batch.Results))
	}
	for i := range queries {
		if got := normalizeJSON(t, batch.Results[i]); !bytes.Equal(got, sequential[i]) {
			t.Fatalf("batch result %d diverged from the sequential body:\n%s\nvs\n%s",
				i, got, sequential[i])
		}
	}
	// Every batch element was served from the cache the sequential
	// requests warmed.
	if got := resp.Header.Get("X-Batch-Cache-Hits"); got != fmt.Sprint(len(queries)) {
		t.Fatalf("X-Batch-Cache-Hits = %q, want %d", got, len(queries))
	}

	// A batch with fresh cache keys shares sub-proofs within itself:
	// the repeated element hits the entry its first occurrence minted.
	fresh := fmt.Sprintf(`{"version":%d,"queries":[`+
		`{"type":"count","tuple":"mincost(@'n1','n9',4)","options":{"threshold":7777}},`+
		`{"type":"count","tuple":"mincost(@'n1','n9',4)","options":{"threshold":7777}}]}`, v)
	resp, body = postFull(t, ts.URL+"/v1/query/batch", fresh)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh batch: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Batch-Cache-Hits"); got != "1" {
		t.Fatalf("fresh batch X-Batch-Cache-Hits = %q, want 1 (miss then hit)", got)
	}
}

// TestBatchSharesResultsWhenSnapshotCacheFull: the in-batch sharing
// guarantee must not depend on the snapshot's bounded query cache
// having room — once that cache is saturated with other keys, a
// repeated query inside one batch is still served from the batch's
// own overlay, byte-identically.
func TestBatchSharesResultsWhenSnapshotCacheFull(t *testing.T) {
	e := buildGrid(t, 2)
	pub, err := NewPublisher(e, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(pub, Info{Protocol: "mincost"}))
	t.Cleanup(ts.Close)
	snap := pub.Current()
	mc, err := nettrailsParse("mincost(@'n1','n4',2)")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= maxQueryCacheEntries; i++ {
		if _, _, err := snap.CachedQuery(provquery.DerivCount, "n1", mc,
			provquery.Options{Threshold: 10000 + i}); err != nil {
			t.Fatal(err)
		}
	}

	// A fresh key the full cache will decline, repeated in one batch.
	body := fmt.Sprintf(`{"version":%d,"queries":[
		{"type":"count","tuple":"mincost(@'n1','n4',2)","options":{"threshold":777}},
		{"type":"count","tuple":"mincost(@'n1','n4',2)","options":{"threshold":777}}]}`, snap.Version)
	resp, out := postFull(t, ts.URL+"/v1/query/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, out)
	}
	if got := resp.Header.Get("X-Batch-Cache-Hits"); got != "1" {
		t.Fatalf("X-Batch-Cache-Hits = %q on a full snapshot cache, want 1", got)
	}
	var batch struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(out, &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 2 || !bytes.Equal(batch.Results[0], batch.Results[1]) {
		t.Fatalf("overlay-served repeat diverged:\n%s\nvs\n%s", batch.Results[0], batch.Results[1])
	}
}

// TestBatchErrors: batch-level failures are whole-request envelopes;
// per-query failures are error envelopes in the results array, in
// position, without failing the neighbours.
func TestBatchErrors(t *testing.T) {
	e := buildGrid(t, 2)
	pub, ts := newServer(t, e, 0)

	resp, body := postFull(t, ts.URL+"/v1/query/batch", `{"queries":[]}`)
	if code, _ := decodeEnvelope(t, body); resp.StatusCode != http.StatusBadRequest || code != ErrInvalidRequest {
		t.Fatalf("empty batch: %d %s", resp.StatusCode, body)
	}

	resp, body = postFull(t, ts.URL+"/v1/query/batch",
		`{"queries":[{"q":"count of mincost(@'n1','n4',2)","version":1}]}`)
	if code, _ := decodeEnvelope(t, body); resp.StatusCode != http.StatusBadRequest || code != ErrInvalidRequest {
		t.Fatalf("per-item version: %d %s", resp.StatusCode, body)
	}

	resp, body = postFull(t, ts.URL+"/v1/query/batch", `{"version":999999,"queries":[{"q":"count of mincost(@'n1','n4',2)"}]}`)
	if code, _ := decodeEnvelope(t, body); resp.StatusCode != http.StatusGone || code != ErrSnapshotEvicted {
		t.Fatalf("evicted version: %d %s", resp.StatusCode, body)
	}

	// One bad element among good ones: the good ones still answer.
	v := pub.Current().Version
	resp, body = postFull(t, ts.URL+"/v1/query/batch", fmt.Sprintf(`{"version":%d,"queries":[
		{"q":"count of mincost(@'n1','n4',2)"},
		{"q":"count of mincost(@'n1','n4',99)"},
		{"type":"lineage","tuple":"mincost(@'n1','n4',2)","options":{"maxdepth":-3}},
		{"q":"nodes of mincost(@'n1','n4',2)"}]}`, v))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mixed batch: %d %s", resp.StatusCode, body)
	}
	var batch struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 4 {
		t.Fatalf("mixed batch: %d results", len(batch.Results))
	}
	var ok0 struct {
		Count *int `json:"count"`
	}
	if err := json.Unmarshal(batch.Results[0], &ok0); err != nil || ok0.Count == nil {
		t.Fatalf("results[0] = %s", batch.Results[0])
	}
	if code, _ := decodeEnvelope(t, batch.Results[1]); code != ErrNoProvenance {
		t.Fatalf("results[1] code = %q, want %q", code, ErrNoProvenance)
	}
	if code, _ := decodeEnvelope(t, batch.Results[2]); code != ErrInvalidOption {
		t.Fatalf("results[2] code = %q, want %q", code, ErrInvalidOption)
	}
	var ok3 struct {
		Nodes []string `json:"nodes"`
	}
	if err := json.Unmarshal(batch.Results[3], &ok3); err != nil || len(ok3.Nodes) == 0 {
		t.Fatalf("results[3] = %s", batch.Results[3])
	}
}

// TestQueryDeadlineAndCancellationStructured: an expired traversal
// deadline answers the structured query_timeout envelope; a request
// whose own context is already dead answers query_cancelled. Both
// abort before resolving the proof.
func TestQueryDeadlineAndCancellationStructured(t *testing.T) {
	testutil.CheckGoroutines(t)
	e := buildGrid(t, 4)
	pub, err := NewPublisher(e, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(pub, Info{Protocol: "mincost"})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	// ?timeout=1ns expires before the cold walk can finish the
	// corner-to-corner proof.
	resp, body := postFull(t, ts.URL+"/v1/query?timeout=1ns",
		`{"q":"lineage of mincost(@'n1','n16',6)"}`)
	if code, _ := decodeEnvelope(t, body); resp.StatusCode != http.StatusGatewayTimeout || code != ErrQueryTimeout {
		t.Fatalf("expired deadline: %d %s", resp.StatusCode, body)
	}

	// A dead client context aborts with query_cancelled (nginx's 499).
	req := httptest.NewRequest("POST", "/v1/query",
		strings.NewReader(`{"q":"bases of mincost(@'n1','n16',6)"}`))
	ctx, cancel := context.WithCancel(req.Context())
	cancel()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req.WithContext(ctx))
	if code, _ := decodeEnvelope(t, rec.Body.Bytes()); rec.Code != StatusClientClosedRequest || code != ErrQueryCancelled {
		t.Fatalf("cancelled request: %d %s", rec.Code, rec.Body.Bytes())
	}

	// The batch endpoint reports the same envelopes.
	resp, body = postFull(t, ts.URL+"/v1/query/batch?timeout=1ns",
		`{"queries":[{"q":"lineage of mincost(@'n1','n16',6)"}]}`)
	if code, _ := decodeEnvelope(t, body); resp.StatusCode != http.StatusGatewayTimeout || code != ErrQueryTimeout {
		t.Fatalf("batch expired deadline: %d %s", resp.StatusCode, body)
	}

	// Aborted traversals never cache partial results: the same query
	// without a deadline succeeds with a fresh full walk.
	code, body := post(t, ts.URL+"/v1/query", `{"q":"lineage of mincost(@'n1','n16',6)"}`)
	if code != http.StatusOK {
		t.Fatalf("query after aborts: %d %s", code, body)
	}
	var q struct {
		Truncated bool `json:"truncated"`
		Proof     json.RawMessage
	}
	if err := json.Unmarshal(body, &q); err != nil || q.Truncated {
		t.Fatalf("post-abort proof damaged: %v %s", err, body)
	}
}

// TestCancelledBatchStopsWalk is the acceptance check for cancellation
// plumbing: a client that disconnects mid-batch observably stops the
// server-side traversal. Every batch element is a distinct cold cache
// key, so the per-snapshot miss counter counts evaluated queries; after
// the disconnect it must go quiet far below the batch size.
func TestCancelledBatchStopsWalk(t *testing.T) {
	testutil.CheckGoroutines(t)
	e := buildGrid(t, 5)
	pub, ts := newServer(t, e, 0)
	snap := pub.Current()

	const items = 1000
	var sb strings.Builder
	fmt.Fprintf(&sb, `{"version":%d,"queries":[`, snap.Version)
	for i := 0; i < items; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		// Distinct never-pruning thresholds force a full cold traversal
		// of the deep corner-to-corner proof per element.
		fmt.Fprintf(&sb,
			`{"type":"lineage","tuple":"mincost(@'n1','n25',8)","options":{"threshold":%d}}`,
			10000+i)
	}
	sb.WriteString("]}")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/query/batch",
		strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")

	// Cancel once the server is demonstrably mid-batch (a handful of
	// elements evaluated), not on a wall-clock guess.
	go func() {
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			if _, misses := snap.CacheCounters(); misses >= 20 {
				cancel()
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
		cancel()
	}()

	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatal("cancelled batch request unexpectedly completed")
	}

	// The walk must stop: the evaluated-query counter goes quiet well
	// below the batch size.
	deadline := time.Now().Add(10 * time.Second)
	var last int64 = -1
	for {
		_, misses := snap.CacheCounters()
		if misses == last {
			break
		}
		last = misses
		if time.Now().After(deadline) {
			t.Fatalf("server still evaluating %ds after client disconnect (%d misses)", 10, misses)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if last >= items {
		t.Fatalf("server evaluated all %d batch elements despite the disconnect", items)
	}
	t.Logf("batch stopped after %d/%d elements", last, items)
}

// TestEvictionRacingPinnedReaders: under aggressive retention churn, a
// pinned query either returns the byte-identical body every time or a
// clean structured snapshot_evicted 410 — never a partial or mixed
// response. Run with -race to check the reader/publisher isolation.
func TestEvictionRacingPinnedReaders(t *testing.T) {
	e := buildGrid(t, 3)
	pub, err := NewPublisher(e, 2) // aggressive: only 2 versions pinnable
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(pub, Info{Protocol: "mincost"}))
	t.Cleanup(ts.Close)

	const rounds = 30
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < rounds; i++ {
			if err := e.RemoveBiLink("n4", "n5", 1); err != nil {
				t.Error(err)
				return
			}
			e.RunQuiescent()
			if err := e.AddBiLink("n4", "n5", 1); err != nil {
				t.Error(err)
				return
			}
			e.RunQuiescent()
		}
	}()

	var bodies sync.Map // version -> first 200 body seen
	var served, evicted int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				v := pub.Current().Version
				resp, body := postFull(t, ts.URL+"/v1/query", fmt.Sprintf(
					`{"q":"lineage of mincost(@'n1','n9',4)","version":%d}`, v))
				switch resp.StatusCode {
				case http.StatusOK:
					if prev, loaded := bodies.LoadOrStore(v, string(body)); loaded && prev.(string) != string(body) {
						t.Errorf("version %d served two different bodies:\n%s\nvs\n%s",
							v, prev, body)
						return
					}
					mu.Lock()
					served++
					mu.Unlock()
				case http.StatusGone:
					code, msg := decodeEnvelope(t, body)
					if code != ErrSnapshotEvicted || !strings.Contains(msg, "not retained") {
						t.Errorf("410 body not a clean snapshot_evicted envelope: %s", body)
						return
					}
					mu.Lock()
					evicted++
					mu.Unlock()
				default:
					t.Errorf("pinned query: unexpected status %d: %s", resp.StatusCode, body)
					return
				}
			}
		}()
	}
	wg.Wait()
	<-done
	if served == 0 {
		t.Fatal("no pinned query ever succeeded")
	}
	t.Logf("served=%d evicted=%d", served, evicted)
}
