package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/provquery"
	"repro/internal/rel"
	"repro/internal/simnet"
	"repro/internal/viz"
)

// Info configures a server instance: its /healthz label plus the
// traversal caps applied to every query it serves.
type Info struct {
	// Protocol is the human-readable workload name (e.g. "mincost",
	// "bgp").
	Protocol string
	// MaxDepth / MaxNodes cap the traversal limits of every query
	// served over HTTP (0 = uncapped). Requests may ask for tighter
	// limits; absent or looser limits are clamped down to the cap and
	// the result is marked truncated where the cap bites.
	MaxDepth int
	MaxNodes int
	// Timeout is the server-default deadline for each query's
	// traversal, and the cap on the per-request ?timeout= override
	// (tighter requests win, looser ones are clamped). 0 means no
	// default deadline and no cap. A deadline that expires mid-walk
	// aborts the traversal with a structured query_timeout error;
	// a client disconnect aborts it with query_cancelled.
	Timeout time.Duration
}

// Server is the HTTP JSON face of a Publisher. The canonical surface
// is versioned under /v1/; the original unversioned routes remain as
// thin deprecated aliases that run the identical handlers (so their
// bodies stay byte-identical) while flagging themselves with a
// Deprecation header. All handlers read published snapshots only; none
// ever touches live engine state, so any number of requests run
// concurrently with the simulation.
type Server struct {
	pub  *Publisher
	info Info
	mux  *http.ServeMux

	// provReads counts prov-read ops served (see provread.go).
	provReads atomic.Int64
}

// New builds the HTTP API over a publisher.
func New(pub *Publisher, info Info) *Server {
	s := &Server{pub: pub, info: info, mux: http.NewServeMux()}
	s.route("GET", "/healthz", s.handleHealthz, true)
	s.route("GET", "/nodes", s.handleNodes, true)
	s.route("GET", "/state/{node}", s.handleState, true)
	s.route("POST", "/query", s.handleQuery, true)
	s.route("GET", "/proof.dot", s.handleProofDOT, true)
	// v1-only endpoints: no legacy alias ever existed for these.
	s.route("GET", "/version", s.handleVersion, false)
	s.route("POST", "/query/batch", s.handleQueryBatch, false)
	s.route("GET", "/shards", s.handleShards, false)
	s.route("POST", "/prov/read", s.handleProvRead, false)
	s.route("GET", "/history/first", s.handleHistoryFirst, false)
	// Anything else is a structured JSON 404, not the mux's plain-text
	// default.
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		WriteErr(w, http.StatusNotFound, ErrUnknownEndpoint, "unknown endpoint %s", r.URL.Path)
	})
	return s
}

// route registers a handler for one method under /v1/<pattern> — plus,
// when legacy is set, under the pre-v1 path as a deprecated alias —
// and a structured JSON 405 (with the Allow header) for every other
// method on the same patterns.
func (s *Server) route(method, pattern string, h http.HandlerFunc, legacy bool) {
	notAllowed := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", method)
		WriteErr(w, http.StatusMethodNotAllowed, ErrMethodNotAllowed,
			"method %s not allowed on %s (allow %s)", r.Method, r.URL.Path, method)
	}
	s.mux.HandleFunc(method+" /v1"+pattern, h)
	s.mux.HandleFunc("/v1"+pattern, notAllowed)
	if legacy {
		s.mux.HandleFunc(method+" "+pattern, deprecated(h))
		s.mux.HandleFunc(pattern, notAllowed)
	}
}

// deprecated wraps a canonical handler for its legacy mount: the body
// is produced by the very same handler (byte-identical to the /v1
// twin), with headers announcing the successor route.
func deprecated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("</v1%s>; rel=\"successor-version\"", r.URL.Path))
		h(w, r)
	}
}

// ClampOptions applies the Info's traversal caps to a request's
// options: absent or looser request limits are clamped down to the
// caps, tighter ones win.
func (i Info) ClampOptions(o provquery.Options) provquery.Options {
	if i.MaxDepth > 0 && (o.MaxDepth == 0 || o.MaxDepth > i.MaxDepth) {
		o.MaxDepth = i.MaxDepth
	}
	if i.MaxNodes > 0 && (o.MaxNodes == 0 || o.MaxNodes > i.MaxNodes) {
		o.MaxNodes = i.MaxNodes
	}
	return o
}

// clampOpts applies the server's traversal caps to a request's options.
func (s *Server) clampOpts(o provquery.Options) provquery.Options {
	return s.info.ClampOptions(o)
}

// maxOptionValue bounds request-supplied traversal options. Values
// past it cannot describe a real proof in any scenario this system
// runs; they are configuration mistakes and are rejected up front
// rather than silently accepted.
const maxOptionValue = 1 << 20

// validateOptions rejects out-of-range traversal options at the API
// boundary: negative values (which the walk would silently treat as
// "unlimited") and absurdly large ones. The textual grammar rejects
// these at parse time; this guards the structured form.
func validateOptions(o provquery.Options) *APIError {
	for _, f := range []struct {
		name string
		v    int
	}{{"threshold", o.Threshold}, {"maxdepth", o.MaxDepth}, {"maxnodes", o.MaxNodes}} {
		if f.v < 0 {
			return Errf(http.StatusBadRequest, ErrInvalidOption,
				"%s must be >= 0, got %d", f.name, f.v)
		}
		if f.v > maxOptionValue {
			return Errf(http.StatusBadRequest, ErrInvalidOption,
				"%s %d exceeds the maximum %d", f.name, f.v, maxOptionValue)
		}
	}
	return nil
}

// RequestContext derives the traversal context for one request: the
// client's own context (so a disconnect cancels the walk) bounded by
// the ?timeout= deadline or the serverDefault, whichever is tighter.
// Shared by the shard server and the gateway so timeout semantics
// cannot drift between tiers.
func RequestContext(r *http.Request, serverDefault time.Duration) (context.Context, context.CancelFunc, *APIError) {
	d := serverDefault
	if raw := r.URL.Query().Get("timeout"); raw != "" {
		td, err := time.ParseDuration(raw)
		if err != nil || td <= 0 {
			return nil, nil, Errf(http.StatusBadRequest, ErrInvalidOption,
				"bad timeout %q (want a positive Go duration like 500ms)", raw)
		}
		if d == 0 || td < d {
			d = td
		}
	}
	if d > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		return ctx, cancel, nil
	}
	return r.Context(), func() {}, nil
}

// queryContext is RequestContext under this server's -timeout default.
func (s *Server) queryContext(r *http.Request) (context.Context, context.CancelFunc, *APIError) {
	return RequestContext(r, s.info.Timeout)
}

// Handler returns the root handler for http.Serve.
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// ---- JSON shapes -------------------------------------------------------

// TupleJSON is the wire form of a tuple: the relation name, each
// attribute rendered as its NDlog literal, and the full literal text.
type TupleJSON struct {
	Rel  string   `json:"rel"`
	Vals []string `json:"vals"`
	Text string   `json:"text"`
}

// JSONTuple renders one tuple as its wire form.
func JSONTuple(t rel.Tuple) TupleJSON {
	out := TupleJSON{Rel: t.Rel, Vals: make([]string, len(t.Vals)), Text: t.String()}
	for i, v := range t.Vals {
		out.Vals[i] = v.String()
	}
	return out
}

// ProofJSON is the wire form of a proof-tree vertex.
type ProofJSON struct {
	Tuple     *TupleJSON  `json:"tuple,omitempty"` // nil for unresolved vertices
	VID       string      `json:"vid"`
	Loc       string      `json:"loc"`
	Base      bool        `json:"base,omitempty"`
	Cycle     bool        `json:"cycle,omitempty"`
	Pruned    bool        `json:"pruned,omitempty"`
	Truncated bool        `json:"truncated,omitempty"`
	Derivs    []DerivJSON `json:"derivs,omitempty"`
}

// DerivJSON is one derivation step: the rule, where it executed, and
// the input tuples' sub-proofs.
type DerivJSON struct {
	Rule     string      `json:"rule"`
	Loc      string      `json:"loc"`
	RID      string      `json:"rid"`
	Children []ProofJSON `json:"children,omitempty"`
}

// JSONProof renders one proof-tree vertex (recursively) as its wire
// form.
func JSONProof(p *provquery.ProofNode) ProofJSON {
	out := ProofJSON{
		VID:       p.VID.Short(),
		Loc:       p.Loc,
		Base:      p.Base,
		Cycle:     p.Cycle,
		Pruned:    p.Pruned,
		Truncated: p.Truncated,
	}
	if p.Tuple.Rel != "" {
		t := JSONTuple(p.Tuple)
		out.Tuple = &t
	}
	for _, d := range p.Derivs {
		dj := DerivJSON{Rule: d.Rule, Loc: d.RLoc, RID: d.RID.Short()}
		for _, c := range d.Children {
			dj.Children = append(dj.Children, JSONProof(c))
		}
		out.Derivs = append(out.Derivs, dj)
	}
	return out
}

// WriteJSON writes v as the canonical two-space-indented JSON body
// every tier of the API serves, so shard and gateway bodies can be
// compared byte for byte.
func WriteJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// snapshotAt resolves the snapshot a request is pinned to: an explicit
// version selects a retained one; absent or 0 means current. A missing
// version is the structured snapshot_evicted 410 with the retained
// range.
func (s *Server) snapshotAt(version uint64) (*Snapshot, *APIError) {
	snap, ok := s.pub.At(version)
	if !ok {
		oldest, newest := s.pub.Versions()
		return nil, Errf(http.StatusGone, ErrSnapshotEvicted,
			"version %d not retained (oldest %d, newest %d)", version, oldest, newest)
	}
	return snap, nil
}

func versionParam(r *http.Request) (uint64, *APIError) {
	raw := r.URL.Query().Get("version")
	if raw == "" {
		return 0, nil
	}
	v, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, Errf(http.StatusBadRequest, ErrInvalidRequest, "bad version %q", raw)
	}
	return v, nil
}

// ---- conditional GETs --------------------------------------------------

// requestETag is the strong validator of a snapshot-determined GET
// response. Snapshots are immutable and response bodies are a pure
// function of (resolved version, path, parameters), so the ETag never
// needs to see the body — conditional requests are answered before any
// traversal work. The /v1 prefix is stripped and the version parameter
// replaced by the resolved version, so a legacy alias, its /v1 twin,
// and pinned/current spellings of the same snapshot all validate
// against the same tag.
func requestETag(snap *Snapshot, r *http.Request) string {
	q := r.URL.Query()
	q.Del("version")
	// The timeout bounds evaluation wall-clock, never the body: two
	// clients with different timeouts must revalidate each other.
	q.Del("timeout")
	h := fnv.New64a()
	_, _ = io.WriteString(h, strings.TrimPrefix(r.URL.Path, "/v1"))
	_, _ = io.WriteString(h, "?")
	_, _ = io.WriteString(h, q.Encode()) // Encode sorts keys: canonical
	return fmt.Sprintf(`"%d-%016x"`, snap.Version, h.Sum64())
}

// etagMatches compares If-None-Match candidates against the computed
// tag. The "*" form is deliberately not honored: it matches only when
// a current representation exists (RFC 9110), and condGET runs before
// node/tuple existence checks — answering 304 for a resource whose
// unconditional GET is a 404 would pin stale caches forever. Declining
// "*" merely costs the full body.
func etagMatches(ifNoneMatch, etag string) bool {
	for _, cand := range strings.Split(ifNoneMatch, ",") {
		if strings.TrimSpace(cand) == etag {
			return true
		}
	}
	return false
}

// condGET resolves a GET request's pinned snapshot and runs the
// conditional-GET machinery: the response's ETag is always set, and a
// matching If-None-Match is answered 304 with no body (done=true, with
// every validation error already written).
func (s *Server) condGET(w http.ResponseWriter, r *http.Request) (*Snapshot, bool) {
	version, apiErr := versionParam(r)
	if apiErr != nil {
		WriteAPIError(w, apiErr)
		return nil, true
	}
	snap, apiErr := s.snapshotAt(version)
	if apiErr != nil {
		WriteAPIError(w, apiErr)
		return nil, true
	}
	etag := requestETag(snap, r)
	w.Header().Set("ETag", etag)
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, etag) {
		w.WriteHeader(http.StatusNotModified)
		return nil, true
	}
	return snap, false
}

// ---- endpoints ---------------------------------------------------------

type healthzJSON struct {
	OK       bool   `json:"ok"`
	Protocol string `json:"protocol"`
	Version  uint64 `json:"version"`
	Time     int64  `json:"virtualTimeUs"`
	Nodes    int    `json:"nodes"`
	Oldest   uint64 `json:"oldestVersion"`
	// Shard appears only on sharded servers, so single-process bodies
	// are unchanged.
	Shard *ShardJSON `json:"shard,omitempty"`
	// Store appears only when a durable snapshot store is attached
	// (-data), so storeless bodies are unchanged.
	Store *StoreHealthJSON `json:"store,omitempty"`
}

// StoreHealthJSON is the healthz view of the attached snapshot store:
// the oldest version still on disk and the newest one made durable.
type StoreHealthJSON struct {
	Oldest  uint64 `json:"oldestVersion"`
	Durable uint64 `json:"durableVersion"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.pub.Current()
	oldest, _ := s.pub.Versions()
	out := healthzJSON{
		OK:       true,
		Protocol: s.info.Protocol,
		Version:  snap.Version,
		Time:     int64(snap.Time),
		Nodes:    len(snap.Nodes),
		Oldest:   oldest,
	}
	if !snap.Shard.Unsharded() {
		out.Shard = &ShardJSON{Index: snap.Shard.Index, Total: snap.Shard.Total}
	}
	if st := s.pub.Store(); st != nil {
		out.Store = &StoreHealthJSON{Oldest: st.OldestVersion(), Durable: st.DurableVersion()}
	}
	WriteJSON(w, http.StatusOK, out)
}

// handleVersion reports the server binary's build metadata
// (debug.ReadBuildInfo): module path/version, Go toolchain, and build
// settings.
func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, http.StatusOK, buildinfo.Get())
}

// NodeJSON is one element of GET /v1/nodes.
type NodeJSON struct {
	Addr        string   `json:"addr"`
	Neighbors   []string `json:"neighbors"`
	Tuples      int      `json:"tuples"`
	ProvEntries int      `json:"provEntries"`
	ExecEntries int      `json:"execEntries"`
	SentMsgs    int      `json:"sentMsgs"`
	SentBytes   int      `json:"sentBytes"`
}

// NodesJSON is the GET /v1/nodes body.
type NodesJSON struct {
	Version uint64     `json:"version"`
	Time    int64      `json:"virtualTimeUs"`
	Nodes   []NodeJSON `json:"nodes"`
}

func (s *Server) handleNodes(w http.ResponseWriter, r *http.Request) {
	snap, done := s.condGET(w, r)
	if done {
		return
	}
	// Nodes is always a JSON array, never null.
	out := NodesJSON{Version: snap.Version, Time: int64(snap.Time), Nodes: []NodeJSON{}}
	for i, addr := range snap.Nodes {
		info := snap.states[i].info
		out.Nodes = append(out.Nodes, NodeJSON{
			Addr:        addr,
			Neighbors:   info.Neighbors,
			Tuples:      info.Tuples,
			ProvEntries: info.Prov.ProvEntries,
			ExecEntries: info.Prov.ExecEntries,
			SentMsgs:    info.SentMsgs,
			SentBytes:   info.SentBytes,
		})
	}
	WriteJSON(w, http.StatusOK, out)
}

// StateJSON is the GET /v1/state/{node} body.
type StateJSON struct {
	Version uint64                 `json:"version"`
	Time    int64                  `json:"virtualTimeUs"`
	Node    string                 `json:"node"`
	Tables  map[string][]TupleJSON `json:"tables"`
}

func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	snap, done := s.condGET(w, r)
	if done {
		return
	}
	addr := r.PathValue("node")
	tables, ok := snap.NodeTables(addr)
	if !ok {
		if apiErr := snap.misdirected(addr); apiErr != nil {
			WriteAPIError(w, apiErr)
			return
		}
		WriteErr(w, http.StatusNotFound, ErrUnknownNode, "unknown node %q", addr)
		return
	}
	out := StateJSON{Version: snap.Version, Time: int64(snap.Time), Node: addr}

	// ?t=<virtual time in us> time-travels through the logstore history
	// instead of reading the snapshot's own instant.
	if raw := r.URL.Query().Get("t"); raw != "" {
		us, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			WriteErr(w, http.StatusBadRequest, ErrInvalidRequest, "bad virtual time %q", raw)
			return
		}
		view := snap.History.At(simnet.Time(us))
		sn, ok := view[addr]
		if !ok {
			WriteErr(w, http.StatusNotFound, ErrUnknownNode,
				"no capture of %q at or before t=%dus in the retained history", addr, us)
			return
		}
		tables = sn.Tables
		out.Time = int64(sn.Time)
	}

	relFilter := r.URL.Query().Get("rel")
	out.Tables = map[string][]TupleJSON{}
	for name, ts := range tables {
		if relFilter != "" && name != relFilter {
			continue
		}
		rows := make([]TupleJSON, ts.Len())
		for i, t := range ts.Tuples() {
			rows[i] = JSONTuple(t)
		}
		out.Tables[name] = rows
	}
	WriteJSON(w, http.StatusOK, out)
}

// QueryRequest is the /query body (and one element of a batch's
// queries array). Either q (the textual query language) or type+tuple
// (structured form) must be set. Inside a batch, version must be unset
// — the batch pins one snapshot for every query it carries.
type QueryRequest struct {
	Q       string `json:"q,omitempty"`
	Type    string `json:"type,omitempty"`
	Tuple   string `json:"tuple,omitempty"`
	At      string `json:"at,omitempty"`
	Version uint64 `json:"version,omitempty"`
	Options struct {
		Threshold  int  `json:"threshold,omitempty"`
		Sequential bool `json:"sequential,omitempty"`
		MaxDepth   int  `json:"maxdepth,omitempty"`
		MaxNodes   int  `json:"maxnodes,omitempty"`
	} `json:"options"`
}

// QueryStatsJSON is the modeled-traffic object of a query response.
type QueryStatsJSON struct {
	Messages int `json:"messages"`
	Bytes    int `json:"bytes"`
}

// QueryResponse is the /query body. It contains only version-determined
// fields: two requests pinned to the same snapshot version always get
// byte-identical bodies, whether served from the sub-proof cache or by
// a fresh traversal — and a batch result element renders the identical
// JSON for the identical query. Cache observability travels in the
// X-Cache, X-Cache-Hits, and X-Cache-Misses response headers instead.
type QueryResponse struct {
	Version   uint64         `json:"version"`
	Time      int64          `json:"virtualTimeUs"`
	Type      string         `json:"type"`
	Pruned    bool           `json:"pruned,omitempty"`
	Truncated bool           `json:"truncated,omitempty"`
	Proof     *ProofJSON     `json:"proof,omitempty"`
	Text      string         `json:"text,omitempty"`
	Bases     []TupleJSON    `json:"bases,omitempty"`
	Nodes     []string       `json:"nodes,omitempty"`
	Count     *int           `json:"count,omitempty"`
	Stats     QueryStatsJSON `json:"stats"`
}

// setCacheHeaders reports a CachedQuery outcome on the response.
func setCacheHeaders(w http.ResponseWriter, snap *Snapshot, hit bool) {
	verdict := "MISS"
	if hit {
		verdict = "HIT"
	}
	hits, misses := snap.CacheCounters()
	w.Header().Set("X-Cache", verdict)
	w.Header().Set("X-Cache-Hits", strconv.FormatInt(hits, 10))
	w.Header().Set("X-Cache-Misses", strconv.FormatInt(misses, 10))
}

// ResolveTupleAt parses a tuple literal and resolves the node to query
// at: the explicit at argument, else the tuple's location attribute.
func ResolveTupleAt(lit, at string) (rel.Tuple, string, error) {
	t, err := provquery.ParseTupleLiteral(lit)
	if err != nil {
		return rel.Tuple{}, "", err
	}
	if at == "" {
		loc, ok := t.LocCol0()
		if !ok {
			return rel.Tuple{}, "", fmt.Errorf("tuple has no location attribute; pass an explicit node")
		}
		at = loc
	}
	return t, at, nil
}

// ResolveQueryRequest turns one query request body into walk inputs:
// both
// request forms reduce to (type, tuple, at, opts) before any
// evaluation, so every malformed query is a 400 and only missing
// provenance is a 404.
func ResolveQueryRequest(req *QueryRequest) (typ provquery.QueryType, t rel.Tuple, at string, opts provquery.Options, apiErr *APIError) {
	switch {
	case req.Q != "":
		parsed, err := provquery.ParseQuery(req.Q)
		if err != nil {
			return 0, rel.Tuple{}, "", opts, Errf(http.StatusBadRequest, ErrInvalidQuery, "%v", err)
		}
		typ, t, at, opts = parsed.Type, parsed.Tuple, parsed.At, parsed.Opts
	case req.Type != "" && req.Tuple != "":
		var err error
		typ, err = provquery.ParseQueryType(req.Type)
		if err != nil {
			return 0, rel.Tuple{}, "", opts, Errf(http.StatusBadRequest, ErrInvalidQuery, "%v", err)
		}
		t, at, err = ResolveTupleAt(req.Tuple, req.At)
		if err != nil {
			return 0, rel.Tuple{}, "", opts, Errf(http.StatusBadRequest, ErrInvalidQuery, "%v", err)
		}
		opts = provquery.Options{
			Threshold:  req.Options.Threshold,
			Sequential: req.Options.Sequential,
			MaxDepth:   req.Options.MaxDepth,
			MaxNodes:   req.Options.MaxNodes,
		}
	default:
		return 0, rel.Tuple{}, "", opts,
			Errf(http.StatusBadRequest, ErrInvalidRequest, `need "q" or "type"+"tuple"`)
	}
	if apiErr := validateOptions(opts); apiErr != nil {
		return 0, rel.Tuple{}, "", opts, apiErr
	}
	return typ, t, at, opts, nil
}

// QueryError maps a traversal failure to its stable API error: the
// one mapping shared by every query-evaluating endpoint (and by the
// gateway), so the same defect never earns different codes on
// different routes.
func QueryError(err error) *APIError {
	if ce, ok := CtxError(err); ok {
		return ce
	}
	if errors.Is(err, provquery.ErrUnknownNode) {
		return Errf(http.StatusNotFound, ErrUnknownNode, "%v", err)
	}
	if errors.Is(err, provquery.ErrNotOwned) {
		return Errf(http.StatusMisdirectedRequest, ErrWrongShard,
			"%v (query a gateway, or the owning shard)", err)
	}
	// Unknown tuples surface here; the snapshot simply has no
	// provenance for them.
	return Errf(http.StatusNotFound, ErrNoProvenance, "%v", err)
}

// RenderQueryResponse renders a finished traversal as the
// version-determined /v1/query response document. The shard server
// and the gateway share this renderer, which is what makes federated
// answers byte-identical to single-process ones.
func RenderQueryResponse(version uint64, timeUs int64, res *provquery.Result) *QueryResponse {
	out := &QueryResponse{
		Version:   version,
		Time:      timeUs,
		Type:      res.Type.String(),
		Pruned:    res.Pruned,
		Truncated: res.Truncated,
		Stats:     QueryStatsJSON{Messages: res.Stats.Messages, Bytes: res.Stats.Bytes},
	}
	switch res.Type {
	case provquery.Lineage:
		pj := JSONProof(res.Root)
		out.Proof = &pj
		out.Text = viz.ProofTree(res.Root, viz.ProofTreeOptions{})
	case provquery.BaseTuples:
		out.Bases = []TupleJSON{}
		for _, b := range res.Bases {
			tj := JSONTuple(b.Tuple)
			out.Bases = append(out.Bases, tj)
		}
	case provquery.Nodes:
		out.Nodes = res.Nodes
	case provquery.DerivCount:
		out.Count = &res.Count
	}
	return out
}

// evalQuery runs one resolved query against snap (through the
// per-version sub-proof cache) and renders the version-determined
// response.
func (s *Server) evalQuery(ctx context.Context, snap *Snapshot, typ provquery.QueryType, at string, t rel.Tuple, opts provquery.Options) (*QueryResponse, bool, *APIError) {
	res, hit, err := snap.CachedQueryContext(ctx, typ, at, t, s.clampOpts(opts))
	if err != nil {
		return nil, false, QueryError(err)
	}
	return RenderQueryResponse(snap.Version, int64(snap.Time), res), hit, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		WriteErr(w, http.StatusBadRequest, ErrInvalidRequest, "bad request body: %v", err)
		return
	}
	snap, apiErr := s.snapshotAt(req.Version)
	if apiErr != nil {
		WriteAPIError(w, apiErr)
		return
	}
	typ, t, at, opts, apiErr := ResolveQueryRequest(&req)
	if apiErr != nil {
		WriteAPIError(w, apiErr)
		return
	}
	ctx, cancel, apiErr := s.queryContext(r)
	if apiErr != nil {
		WriteAPIError(w, apiErr)
		return
	}
	defer cancel()
	out, hit, apiErr := s.evalQuery(ctx, snap, typ, at, t, opts)
	if apiErr != nil {
		WriteAPIError(w, apiErr)
		return
	}
	setCacheHeaders(w, snap, hit)
	WriteJSON(w, http.StatusOK, out)
}

// ---- POST /v1/query/batch ----------------------------------------------

// batchRequest evaluates many queries against one pinned snapshot. All
// queries share the snapshot's sub-proof cache, so repeated or
// overlapping queries inside one batch are answered without
// re-traversal — and the whole batch costs one HTTP round trip.
type batchRequest struct {
	Version uint64         `json:"version,omitempty"`
	Queries []QueryRequest `json:"queries"`
}

// batchResponse carries one result element per query, in order. Each
// element is either the exact QueryResponse document the equivalent
// individual POST /v1/query would have returned (identical JSON modulo
// indentation depth) or an error envelope in the uniform shape.
type batchResponse struct {
	Version uint64            `json:"version"`
	Time    int64             `json:"virtualTimeUs"`
	Results []json.RawMessage `json:"results"`
}

// MaxBatchQueries bounds one batch request.
const MaxBatchQueries = 1024

func (s *Server) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		WriteErr(w, http.StatusBadRequest, ErrInvalidRequest, "bad request body: %v", err)
		return
	}
	if len(req.Queries) == 0 {
		WriteErr(w, http.StatusBadRequest, ErrInvalidRequest, "empty batch: need at least one query")
		return
	}
	if len(req.Queries) > MaxBatchQueries {
		WriteErr(w, http.StatusBadRequest, ErrInvalidRequest,
			"batch of %d queries exceeds the maximum %d", len(req.Queries), MaxBatchQueries)
		return
	}
	for i := range req.Queries {
		if req.Queries[i].Version != 0 {
			WriteErr(w, http.StatusBadRequest, ErrInvalidRequest,
				"queries[%d] sets version; the batch-level version pins the snapshot for every query", i)
			return
		}
	}
	snap, apiErr := s.snapshotAt(req.Version)
	if apiErr != nil {
		WriteAPIError(w, apiErr)
		return
	}
	ctx, cancel, apiErr := s.queryContext(r)
	if apiErr != nil {
		WriteAPIError(w, apiErr)
		return
	}
	defer cancel()

	results := make([]json.RawMessage, 0, len(req.Queries))
	hits := 0
	// local is the batch's own result overlay. The snapshot's query
	// cache is bounded (it declines new keys once full), so the
	// batch's documented guarantee — repeated queries inside one batch
	// never re-traverse — must not depend on it having room.
	local := map[queryCacheKey]json.RawMessage{}
	for i := range req.Queries {
		// A dead client or an expired deadline aborts the whole batch
		// with a structured error — never a partial results array.
		if err := ctx.Err(); err != nil {
			ce, _ := CtxError(err)
			WriteAPIError(w, ce)
			return
		}
		typ, t, at, opts, itemErr := ResolveQueryRequest(&req.Queries[i])
		if itemErr == nil {
			key := queryCacheKey{at: at, vid: t.VID(), typ: typ, opts: s.clampOpts(opts)}
			if cached, ok := local[key]; ok {
				hits++
				results = append(results, cached)
				continue
			}
			out, hit, evalErr := s.evalQuery(ctx, snap, typ, at, t, opts)
			if evalErr == nil {
				if hit {
					hits++
				}
				b, err := json.Marshal(out)
				if err != nil {
					WriteErr(w, http.StatusInternalServerError, ErrInternal, "encode: %v", err)
					return
				}
				local[key] = b
				results = append(results, b)
				continue
			}
			if evalErr.Code == ErrQueryCancelled || evalErr.Code == ErrQueryTimeout {
				WriteAPIError(w, evalErr)
				return
			}
			itemErr = evalErr
		}
		results = append(results, MarshalError(itemErr))
	}

	hitsTotal, missesTotal := snap.CacheCounters()
	w.Header().Set("X-Batch-Cache-Hits", strconv.Itoa(hits))
	w.Header().Set("X-Cache-Hits", strconv.FormatInt(hitsTotal, 10))
	w.Header().Set("X-Cache-Misses", strconv.FormatInt(missesTotal, 10))
	WriteJSON(w, http.StatusOK, batchResponse{
		Version: snap.Version,
		Time:    int64(snap.Time),
		Results: results,
	})
}

// handleProofDOT renders the lineage of ?tuple= (optionally ?at=,
// ?version=) as a Graphviz DOT document.
func (s *Server) handleProofDOT(w http.ResponseWriter, r *http.Request) {
	snap, done := s.condGET(w, r)
	if done {
		return
	}
	lit := r.URL.Query().Get("tuple")
	if lit == "" {
		WriteErr(w, http.StatusBadRequest, ErrInvalidRequest, "missing ?tuple= literal")
		return
	}
	t, at, err := ResolveTupleAt(lit, r.URL.Query().Get("at"))
	if err != nil {
		WriteErr(w, http.StatusBadRequest, ErrInvalidQuery, "%v", err)
		return
	}
	ctx, cancel, apiErr := s.queryContext(r)
	if apiErr != nil {
		WriteAPIError(w, apiErr)
		return
	}
	defer cancel()
	res, hit, err := snap.CachedQueryContext(ctx, provquery.Lineage, at, t, s.clampOpts(provquery.Options{}))
	if err != nil {
		WriteAPIError(w, QueryError(err))
		return
	}
	setCacheHeaders(w, snap, hit)
	w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
	w.Header().Set("X-Snapshot-Version", strconv.FormatUint(snap.Version, 10))
	fmt.Fprint(w, viz.ProofDOT(res.Root))
}
