package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/provquery"
	"repro/internal/rel"
	"repro/internal/simnet"
	"repro/internal/viz"
)

// Info configures a server instance: its /healthz label plus the
// traversal caps applied to every query it serves.
type Info struct {
	// Protocol is the human-readable workload name (e.g. "mincost",
	// "bgp").
	Protocol string
	// MaxDepth / MaxNodes cap the traversal limits of every query
	// served over HTTP (0 = uncapped). Requests may ask for tighter
	// limits; absent or looser limits are clamped down to the cap and
	// the result is marked truncated where the cap bites.
	MaxDepth int
	MaxNodes int
}

// Server is the HTTP JSON face of a Publisher. All handlers read
// published snapshots only; none ever touches live engine state, so
// any number of requests run concurrently with the simulation.
type Server struct {
	pub  *Publisher
	info Info
	mux  *http.ServeMux
}

// New builds the HTTP API over a publisher.
func New(pub *Publisher, info Info) *Server {
	s := &Server{pub: pub, info: info, mux: http.NewServeMux()}
	s.route("GET", "/healthz", s.handleHealthz)
	s.route("GET", "/nodes", s.handleNodes)
	s.route("GET", "/state/{node}", s.handleState)
	s.route("POST", "/query", s.handleQuery)
	s.route("GET", "/proof.dot", s.handleProofDOT)
	// Anything else is a structured JSON 404, not the mux's plain-text
	// default.
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, http.StatusNotFound, "unknown endpoint %s", r.URL.Path)
	})
	return s
}

// route registers a handler for one method and a structured JSON 405
// (with the Allow header) for every other method on the same pattern.
func (s *Server) route(method, pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(method+" "+pattern, h)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", method)
		writeErr(w, http.StatusMethodNotAllowed,
			"method %s not allowed on %s (allow %s)", r.Method, r.URL.Path, method)
	})
}

// clampOpts applies the server's traversal caps to a request's options.
func (s *Server) clampOpts(o provquery.Options) provquery.Options {
	if s.info.MaxDepth > 0 && (o.MaxDepth == 0 || o.MaxDepth > s.info.MaxDepth) {
		o.MaxDepth = s.info.MaxDepth
	}
	if s.info.MaxNodes > 0 && (o.MaxNodes == 0 || o.MaxNodes > s.info.MaxNodes) {
		o.MaxNodes = s.info.MaxNodes
	}
	return o
}

// Handler returns the root handler for http.Serve.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// ---- JSON shapes -------------------------------------------------------

// tupleJSON is the wire form of a tuple: the relation name, each
// attribute rendered as its NDlog literal, and the full literal text.
type tupleJSON struct {
	Rel  string   `json:"rel"`
	Vals []string `json:"vals"`
	Text string   `json:"text"`
}

func jsonTuple(t rel.Tuple) tupleJSON {
	out := tupleJSON{Rel: t.Rel, Vals: make([]string, len(t.Vals)), Text: t.String()}
	for i, v := range t.Vals {
		out.Vals[i] = v.String()
	}
	return out
}

// proofJSON is the wire form of a proof-tree vertex.
type proofJSON struct {
	Tuple     *tupleJSON  `json:"tuple,omitempty"` // nil for unresolved vertices
	VID       string      `json:"vid"`
	Loc       string      `json:"loc"`
	Base      bool        `json:"base,omitempty"`
	Cycle     bool        `json:"cycle,omitempty"`
	Pruned    bool        `json:"pruned,omitempty"`
	Truncated bool        `json:"truncated,omitempty"`
	Derivs    []derivJSON `json:"derivs,omitempty"`
}

// derivJSON is one derivation step: the rule, where it executed, and
// the input tuples' sub-proofs.
type derivJSON struct {
	Rule     string      `json:"rule"`
	Loc      string      `json:"loc"`
	RID      string      `json:"rid"`
	Children []proofJSON `json:"children,omitempty"`
}

func jsonProof(p *provquery.ProofNode) proofJSON {
	out := proofJSON{
		VID:       p.VID.Short(),
		Loc:       p.Loc,
		Base:      p.Base,
		Cycle:     p.Cycle,
		Pruned:    p.Pruned,
		Truncated: p.Truncated,
	}
	if p.Tuple.Rel != "" {
		t := jsonTuple(p.Tuple)
		out.Tuple = &t
	}
	for _, d := range p.Derivs {
		dj := derivJSON{Rule: d.Rule, Loc: d.RLoc, RID: d.RID.Short()}
		for _, c := range d.Children {
			dj.Children = append(dj.Children, jsonProof(c))
		}
		out.Derivs = append(out.Derivs, dj)
	}
	return out
}

type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...interface{}) {
	writeJSON(w, code, errorJSON{Error: fmt.Sprintf(format, args...)})
}

// snapshotFor resolves the snapshot a request is pinned to: the
// ?version= query parameter (or, for /query, the JSON field) selects a
// retained version; absent or 0 means current. A missing version
// reports 410 Gone with the retained range.
func (s *Server) snapshotFor(w http.ResponseWriter, version uint64) (*Snapshot, bool) {
	snap, ok := s.pub.At(version)
	if !ok {
		oldest, newest := s.pub.Versions()
		writeErr(w, http.StatusGone,
			"version %d not retained (oldest %d, newest %d)", version, oldest, newest)
		return nil, false
	}
	return snap, true
}

func versionParam(r *http.Request) (uint64, error) {
	raw := r.URL.Query().Get("version")
	if raw == "" {
		return 0, nil
	}
	v, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad version %q", raw)
	}
	return v, nil
}

// ---- endpoints ---------------------------------------------------------

type healthzJSON struct {
	OK       bool   `json:"ok"`
	Protocol string `json:"protocol"`
	Version  uint64 `json:"version"`
	Time     int64  `json:"virtualTimeUs"`
	Nodes    int    `json:"nodes"`
	Oldest   uint64 `json:"oldestVersion"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.pub.Current()
	oldest, _ := s.pub.Versions()
	writeJSON(w, http.StatusOK, healthzJSON{
		OK:       true,
		Protocol: s.info.Protocol,
		Version:  snap.Version,
		Time:     int64(snap.Time),
		Nodes:    len(snap.Nodes),
		Oldest:   oldest,
	})
}

type nodeJSON struct {
	Addr        string   `json:"addr"`
	Neighbors   []string `json:"neighbors"`
	Tuples      int      `json:"tuples"`
	ProvEntries int      `json:"provEntries"`
	ExecEntries int      `json:"execEntries"`
	SentMsgs    int      `json:"sentMsgs"`
	SentBytes   int      `json:"sentBytes"`
}

type nodesJSON struct {
	Version uint64     `json:"version"`
	Time    int64      `json:"virtualTimeUs"`
	Nodes   []nodeJSON `json:"nodes"`
}

func (s *Server) handleNodes(w http.ResponseWriter, r *http.Request) {
	version, err := versionParam(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	snap, ok := s.snapshotFor(w, version)
	if !ok {
		return
	}
	// Nodes is always a JSON array, never null.
	out := nodesJSON{Version: snap.Version, Time: int64(snap.Time), Nodes: []nodeJSON{}}
	for _, addr := range snap.Nodes {
		info := snap.Info[addr]
		out.Nodes = append(out.Nodes, nodeJSON{
			Addr:        addr,
			Neighbors:   info.Neighbors,
			Tuples:      info.Tuples,
			ProvEntries: info.Prov.ProvEntries,
			ExecEntries: info.Prov.ExecEntries,
			SentMsgs:    info.SentMsgs,
			SentBytes:   info.SentBytes,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

type stateJSON struct {
	Version uint64                 `json:"version"`
	Time    int64                  `json:"virtualTimeUs"`
	Node    string                 `json:"node"`
	Tables  map[string][]tupleJSON `json:"tables"`
}

func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	version, err := versionParam(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	snap, ok := s.snapshotFor(w, version)
	if !ok {
		return
	}
	addr := r.PathValue("node")
	tables, ok := snap.NodeTables(addr)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown node %q", addr)
		return
	}
	out := stateJSON{Version: snap.Version, Time: int64(snap.Time), Node: addr}

	// ?t=<virtual time in us> time-travels through the logstore history
	// instead of reading the snapshot's own instant.
	if raw := r.URL.Query().Get("t"); raw != "" {
		us, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad virtual time %q", raw)
			return
		}
		view := snap.History.At(simnet.Time(us))
		sn, ok := view[addr]
		if !ok {
			writeErr(w, http.StatusNotFound,
				"no capture of %q at or before t=%dus in the retained history", addr, us)
			return
		}
		tables = sn.Tables
		out.Time = int64(sn.Time)
	}

	relFilter := r.URL.Query().Get("rel")
	out.Tables = map[string][]tupleJSON{}
	for name, ts := range tables {
		if relFilter != "" && name != relFilter {
			continue
		}
		rows := make([]tupleJSON, len(ts))
		for i, t := range ts {
			rows[i] = jsonTuple(t)
		}
		out.Tables[name] = rows
	}
	writeJSON(w, http.StatusOK, out)
}

// queryRequest is the /query body. Either q (the textual query
// language) or type+tuple (structured form) must be set.
type queryRequest struct {
	Q       string `json:"q,omitempty"`
	Type    string `json:"type,omitempty"`
	Tuple   string `json:"tuple,omitempty"`
	At      string `json:"at,omitempty"`
	Version uint64 `json:"version,omitempty"`
	Options struct {
		Threshold  int  `json:"threshold,omitempty"`
		Sequential bool `json:"sequential,omitempty"`
		MaxDepth   int  `json:"maxdepth,omitempty"`
		MaxNodes   int  `json:"maxnodes,omitempty"`
	} `json:"options"`
}

type queryStatsJSON struct {
	Messages int `json:"messages"`
	Bytes    int `json:"bytes"`
}

// queryResponse is the /query body. It contains only version-determined
// fields: two requests pinned to the same snapshot version always get
// byte-identical bodies, whether served from the sub-proof cache or by
// a fresh traversal. Cache observability travels in the X-Cache,
// X-Cache-Hits, and X-Cache-Misses response headers instead.
type queryResponse struct {
	Version   uint64         `json:"version"`
	Time      int64          `json:"virtualTimeUs"`
	Type      string         `json:"type"`
	Pruned    bool           `json:"pruned,omitempty"`
	Truncated bool           `json:"truncated,omitempty"`
	Proof     *proofJSON     `json:"proof,omitempty"`
	Text      string         `json:"text,omitempty"`
	Bases     []tupleJSON    `json:"bases,omitempty"`
	Nodes     []string       `json:"nodes,omitempty"`
	Count     *int           `json:"count,omitempty"`
	Stats     queryStatsJSON `json:"stats"`
}

// setCacheHeaders reports a CachedQuery outcome on the response.
func setCacheHeaders(w http.ResponseWriter, snap *Snapshot, hit bool) {
	verdict := "MISS"
	if hit {
		verdict = "HIT"
	}
	hits, misses := snap.CacheCounters()
	w.Header().Set("X-Cache", verdict)
	w.Header().Set("X-Cache-Hits", strconv.FormatInt(hits, 10))
	w.Header().Set("X-Cache-Misses", strconv.FormatInt(misses, 10))
}

// resolveTupleAt parses a tuple literal and resolves the node to query
// at: the explicit at argument, else the tuple's location attribute.
func resolveTupleAt(lit, at string) (rel.Tuple, string, error) {
	t, err := provquery.ParseTupleLiteral(lit)
	if err != nil {
		return rel.Tuple{}, "", err
	}
	if at == "" {
		loc, ok := t.LocCol0()
		if !ok {
			return rel.Tuple{}, "", fmt.Errorf("tuple has no location attribute; pass an explicit node")
		}
		at = loc
	}
	return t, at, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	snap, ok := s.snapshotFor(w, req.Version)
	if !ok {
		return
	}

	// Resolve both request forms to (type, tuple, at, opts) before
	// evaluating, so every malformed query is a 400 and only missing
	// provenance is a 404.
	var typ provquery.QueryType
	var t rel.Tuple
	var at string
	var opts provquery.Options
	switch {
	case req.Q != "":
		parsed, err := provquery.ParseQuery(req.Q)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		typ, t, at, opts = parsed.Type, parsed.Tuple, parsed.At, parsed.Opts
	case req.Type != "" && req.Tuple != "":
		var err error
		typ, err = provquery.ParseQueryType(req.Type)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		t, at, err = resolveTupleAt(req.Tuple, req.At)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		opts = provquery.Options{
			Threshold:  req.Options.Threshold,
			Sequential: req.Options.Sequential,
			MaxDepth:   req.Options.MaxDepth,
			MaxNodes:   req.Options.MaxNodes,
		}
	default:
		writeErr(w, http.StatusBadRequest, `need "q" or "type"+"tuple"`)
		return
	}

	res, hit, err := snap.CachedQuery(typ, at, t, s.clampOpts(opts))
	if err != nil {
		// Unknown tuples/nodes surface here; the snapshot simply has no
		// provenance for them.
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	setCacheHeaders(w, snap, hit)

	out := queryResponse{
		Version:   snap.Version,
		Time:      int64(snap.Time),
		Type:      res.Type.String(),
		Pruned:    res.Pruned,
		Truncated: res.Truncated,
		Stats:     queryStatsJSON{Messages: res.Stats.Messages, Bytes: res.Stats.Bytes},
	}
	switch res.Type {
	case provquery.Lineage:
		pj := jsonProof(res.Root)
		out.Proof = &pj
		out.Text = viz.ProofTree(res.Root, viz.ProofTreeOptions{})
	case provquery.BaseTuples:
		out.Bases = []tupleJSON{}
		for _, b := range res.Bases {
			tj := jsonTuple(b.Tuple)
			out.Bases = append(out.Bases, tj)
		}
	case provquery.Nodes:
		out.Nodes = res.Nodes
	case provquery.DerivCount:
		out.Count = &res.Count
	}
	writeJSON(w, http.StatusOK, out)
}

// handleProofDOT renders the lineage of ?tuple= (optionally ?at=,
// ?version=) as a Graphviz DOT document.
func (s *Server) handleProofDOT(w http.ResponseWriter, r *http.Request) {
	version, err := versionParam(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	snap, ok := s.snapshotFor(w, version)
	if !ok {
		return
	}
	lit := r.URL.Query().Get("tuple")
	if lit == "" {
		writeErr(w, http.StatusBadRequest, "missing ?tuple= literal")
		return
	}
	t, at, err := resolveTupleAt(lit, r.URL.Query().Get("at"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, hit, err := snap.CachedQuery(provquery.Lineage, at, t, s.clampOpts(provquery.Options{}))
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	setCacheHeaders(w, snap, hit)
	w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
	w.Header().Set("X-Snapshot-Version", strconv.FormatUint(snap.Version, 10))
	fmt.Fprint(w, viz.ProofDOT(res.Root))
}
