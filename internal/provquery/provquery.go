// Package provquery is ExSPAN's distributed provenance query engine:
// user-customizable queries evaluated by traversing the distributed
// provenance graph across nodes. Supported query types mirror the
// paper's demonstration — full lineage (proof trees), the set of
// contributing base tuples, the set of participating nodes, and the
// total number of alternative derivations — together with the
// optimizations the demo highlights: caching of previously queried
// results, alternative traversal orders (parallel vs. sequential),
// threshold-based pruning, and uniform traversal limits.
//
// The traversal itself — merge, cycle detection, pruning, limits —
// lives in internal/provgraph as a single continuation-passing walk
// over a Source. This package provides its two faces: the live Client,
// whose queries execute as messages over the same simulated network as
// the protocols themselves (so the traffic reductions from the
// optimizations are directly measurable), and the SnapshotClient in
// snapshot.go, which evaluates against frozen partition views.
package provquery

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/engine"
	"repro/internal/provenance"
	"repro/internal/provgraph"
	"repro/internal/rel"
	"repro/internal/simnet"
)

// The query vocabulary is defined once in internal/provgraph and
// re-exported here so existing callers (server, viz, cmd, facade) keep
// one import.
type (
	// QueryType selects what the traversal computes.
	QueryType = provgraph.QueryType
	// Options tunes a query.
	Options = provgraph.Options
	// TupleAt is a tuple together with its home node.
	TupleAt = provgraph.TupleAt
	// ProofDeriv is one derivation step in a proof tree.
	ProofDeriv = provgraph.ProofDeriv
	// ProofNode is one tuple vertex in a proof tree.
	ProofNode = provgraph.ProofNode
	// Stats reports a query's cost.
	Stats = provgraph.Stats
	// Result is a completed query.
	Result = provgraph.Result
)

// Query types offered by the demonstration.
const (
	Lineage    = provgraph.Lineage
	BaseTuples = provgraph.BaseTuples
	Nodes      = provgraph.Nodes
	DerivCount = provgraph.DerivCount
)

// MsgKind is the simnet message kind used by query traffic.
const MsgKind = "provquery"

// Sentinel errors wrapped by every query entry point, so serving
// layers can map failures to distinct API error codes with errors.Is
// instead of string matching.
var (
	// ErrUnknownNode: the starting node does not exist in this system
	// or snapshot.
	ErrUnknownNode = errors.New("unknown node")
	// ErrNoProvenance: the node exists but records no provenance for
	// the queried tuple.
	ErrNoProvenance = errors.New("no provenance")
	// ErrNotOwned: the node exists in the network but its provenance
	// partition is not held by this (sharded) snapshot — the query
	// must be answered by the owning shard or a federating gateway.
	ErrNotOwned = errors.New("partition not held here")
)

type request struct {
	qid     uint64
	typ     QueryType
	opts    Options
	rid     rel.ID   // rule execution to expand at the receiver
	visited []rel.ID // tuple VIDs on the path, for cycle detection
	replyTo string
}

type response struct {
	qid uint64
	res provgraph.SubResult
}

// Service handles query traffic at one node.
type Service struct {
	addr    string
	store   *provenance.Store
	net     *simnet.Network
	client  *Client
	nextQID uint64
	pending map[uint64]func(provgraph.SubResult)
	cache   map[provgraph.CacheKey]*cacheVal
}

type cacheVal struct {
	res     provgraph.SubResult
	version uint64
}

// Client coordinates queries over an engine's nodes. It is the live
// asynchronous adapter of the provgraph walk: cross-node expansions
// travel as request/response messages over the simulated network, and
// the walk's continuations fire on message delivery.
type Client struct {
	eng      *engine.Engine
	services map[string]*Service
	// walk is the active traversal; queries run one at a time on the
	// simulation thread, so every service handling a message belongs to
	// the same walk.
	walk *provgraph.Walk
	// cacheHits accumulates across the most recent query.
	cacheHits int
}

// Attach registers the provenance query service on every engine node.
func Attach(eng *engine.Engine) (*Client, error) {
	c := &Client{eng: eng, services: map[string]*Service{}}
	for _, addr := range eng.Nodes() {
		n, _ := eng.Node(addr)
		if n.Prov == nil {
			return nil, fmt.Errorf("provquery: node %s has no provenance store", addr)
		}
		c.services[addr] = &Service{
			addr:    addr,
			store:   n.Prov,
			net:     eng.Net,
			client:  c,
			pending: map[uint64]func(provgraph.SubResult){},
			cache:   map[provgraph.CacheKey]*cacheVal{},
		}
	}
	err := eng.RegisterService(MsgKind, func(n *engine.Node, m simnet.Message) {
		svc, ok := c.services[n.Addr]
		if !ok {
			panic("provquery: message for unattached node " + n.Addr)
		}
		svc.handle(m)
	})
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Query runs a provenance query for the tuple at its owning node and
// drives the network until the result is complete.
func (c *Client) Query(typ QueryType, at string, t rel.Tuple, opts Options) (*Result, error) {
	//lint:allow ctxflow context-free compatibility entry point: callers who opt out of cancellation get a walk that runs to completion by design
	return c.QueryContext(context.Background(), typ, at, t, opts)
}

// QueryContext is Query with cancellation: once ctx is cancelled or
// its deadline passes, the walk stops expanding — every in-flight
// sub-query unwinds with an empty result — and the call returns an
// error wrapping ctx.Err() instead of a partial Result.
func (c *Client) QueryContext(ctx context.Context, typ QueryType, at string, t rel.Tuple, opts Options) (*Result, error) {
	svc, ok := c.services[at]
	if !ok {
		return nil, fmt.Errorf("provquery: %w %s", ErrUnknownNode, at)
	}
	vid := t.VID()
	if _, ok := svc.store.Derivations(vid); !ok {
		return nil, fmt.Errorf("provquery: tuple %s has %w at %s", t, ErrNoProvenance, at)
	}
	c.cacheHits = 0
	startMsgs, startBytes, _ := kindTotals(c.eng.Net)
	startTime := c.eng.Net.Now()

	w := provgraph.NewWalkContext(ctx, liveSource{c}, typ, opts)
	c.walk = w
	defer func() { c.walk = nil }()
	var out *provgraph.SubResult
	w.ResolveTuple(at, vid, nil, func(r provgraph.SubResult) { out = &r })
	c.eng.Net.Run(0)
	if err := w.Err(); err != nil {
		return nil, fmt.Errorf("provquery: query for %s aborted after %d vertices: %w", t, w.Resolved(), err)
	}
	if out == nil {
		return nil, fmt.Errorf("provquery: query for %s did not complete", t)
	}
	endMsgs, endBytes, _ := kindTotals(c.eng.Net)
	res := provgraph.NewResult(typ, *out)
	res.Stats = Stats{
		Messages:  endMsgs - startMsgs,
		Bytes:     endBytes - startBytes,
		Latency:   c.eng.Net.Now() - startTime,
		CacheHits: c.cacheHits,
	}
	return res, nil
}

func kindTotals(net *simnet.Network) (msgs, bytes, drops int) {
	k := net.KindTotals()[MsgKind]
	return k.Messages, k.Bytes, 0
}

// InvalidateCaches clears every node's query cache (tests/benches).
func (c *Client) InvalidateCaches() {
	for _, svc := range c.services {
		svc.cache = map[provgraph.CacheKey]*cacheVal{}
	}
}

// ---- the live Source ---------------------------------------------------

// liveSource adapts the engine's per-node provenance stores to the
// provgraph walk. Partition reads are only ever issued for the location
// the walk is currently at — its own store in the distributed design —
// and cross-node hops become real simnet messages.
type liveSource struct{ c *Client }

func (ls liveSource) TupleOf(loc string, vid rel.ID) (rel.Tuple, bool) {
	return ls.c.services[loc].store.TupleOf(vid)
}

func (ls liveSource) Derivations(loc string, vid rel.ID) ([]provenance.Entry, bool) {
	return ls.c.services[loc].store.Derivations(vid)
}

func (ls liveSource) Exec(loc string, rid rel.ID) (provenance.ExecEntry, bool) {
	return ls.c.services[loc].store.Exec(rid)
}

// ExpandRemote sends the expansion request to the executing node; the
// continuation is parked in the requesting service's pending table and
// fires when the response message is delivered.
func (ls liveSource) ExpandRemote(w *provgraph.Walk, from, loc string, rid rel.ID, visited []rel.ID, cont func(provgraph.SubResult)) {
	s := ls.c.services[from]
	qid := s.nextQIDFn()
	s.pending[qid] = cont
	req := request{qid: qid, typ: w.Type, opts: w.Opts, rid: rid, visited: visited, replyTo: s.addr}
	s.net.Send(simnet.Message{
		From:     s.addr,
		To:       loc,
		Kind:     MsgKind,
		Reliable: true,
		Payload:  req,
		Size:     requestSize(req),
	})
}

func (ls liveSource) CacheGet(loc string, key provgraph.CacheKey) (provgraph.SubResult, bool) {
	s := ls.c.services[loc]
	if cv, ok := s.cache[key]; ok && cv.version == s.store.Version() {
		ls.c.cacheHits++
		return cv.res, true
	}
	return provgraph.SubResult{}, false
}

func (ls liveSource) CachePut(loc string, key provgraph.CacheKey, res provgraph.SubResult) {
	s := ls.c.services[loc]
	s.cache[key] = &cacheVal{res: res, version: s.store.Version()}
}

// ---- service internals -------------------------------------------------

func (s *Service) handle(m simnet.Message) {
	switch p := m.Payload.(type) {
	case request:
		s.expandExec(p)
	case response:
		cont, ok := s.pending[p.qid]
		if !ok {
			return // stale response (should not happen in simulation)
		}
		delete(s.pending, p.qid)
		cont(p.res)
	default:
		panic(fmt.Sprintf("provquery: bad payload %T", m.Payload))
	}
}

func (s *Service) nextQIDFn() uint64 {
	s.nextQID++
	return s.nextQID
}

// expandExec handles a remote expansion request by re-entering the
// query's walk at this node. The request carries the query parameters a
// real deployment would rebuild its walk from; in the simulation all
// services share the client's single active walk (which also carries
// the query-wide node budget).
func (s *Service) expandExec(req request) {
	s.client.walk.ExpandExecLocal(s.addr, req.rid, req.visited, func(r provgraph.SubResult) {
		resp := response{qid: req.qid, res: r}
		s.net.Send(simnet.Message{
			From:     s.addr,
			To:       req.replyTo,
			Kind:     MsgKind,
			Reliable: true,
			Payload:  resp,
			Size:     responseSize(req.typ, r),
		})
	})
}

// requestSize approximates the wire size of a query request.
func requestSize(r request) int { return provgraph.RequestSize(len(r.visited)) }

// responseSize approximates the wire size of a sub-result by type.
func responseSize(typ QueryType, r provgraph.SubResult) int { return provgraph.ResponseSize(typ, r) }
