// Package provquery is ExSPAN's distributed provenance query engine:
// user-customizable queries evaluated by traversing the distributed
// provenance graph across nodes. Supported query types mirror the
// paper's demonstration — full lineage (proof trees), the set of
// contributing base tuples, the set of participating nodes, and the
// total number of alternative derivations — together with the
// optimizations the demo highlights: caching of previously queried
// results, alternative traversal orders (parallel vs. sequential), and
// threshold-based pruning.
//
// Queries execute as messages over the same simulated network as the
// protocols themselves, so the traffic reductions from the
// optimizations are directly measurable.
package provquery

import (
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/provenance"
	"repro/internal/rel"
	"repro/internal/simnet"
)

// QueryType selects what the traversal computes.
type QueryType int

// Query types offered by the demonstration.
const (
	// Lineage returns the full proof tree of a tuple.
	Lineage QueryType = iota
	// BaseTuples returns the set of base tuples the result depends on.
	BaseTuples
	// Nodes returns the set of nodes that participated in any
	// derivation of the tuple.
	Nodes
	// DerivCount returns the total number of alternative proof trees.
	DerivCount
)

func (t QueryType) String() string {
	switch t {
	case Lineage:
		return "lineage"
	case BaseTuples:
		return "base-tuples"
	case Nodes:
		return "nodes"
	case DerivCount:
		return "deriv-count"
	}
	return "unknown"
}

// Options tunes a query.
type Options struct {
	// UseCache reuses previously computed sub-results at each node
	// (invalidated whenever the node's provenance partition changes).
	UseCache bool
	// Threshold, when > 0, bounds the number of alternative derivations
	// explored per tuple; results are then lower bounds marked Pruned.
	Threshold int
	// Sequential explores children one at a time (DFS order) instead of
	// issuing all sub-queries concurrently (BFS). Message counts match;
	// latency differs.
	Sequential bool
}

// TupleAt is a tuple together with its home node.
type TupleAt struct {
	Tuple rel.Tuple
	Loc   string
}

// ProofDeriv is one derivation step in a proof tree.
type ProofDeriv struct {
	RID      rel.ID
	Rule     string
	RLoc     string
	Children []*ProofNode
}

// ProofNode is one tuple vertex in a proof tree.
type ProofNode struct {
	VID    rel.ID
	Tuple  rel.Tuple
	Loc    string
	Base   bool
	Cycle  bool // traversal met this tuple again on its own path
	Pruned bool // some derivations were not explored (threshold)
	Derivs []*ProofDeriv
}

// Size counts the tuple vertices in the proof tree.
func (p *ProofNode) Size() int {
	n := 1
	for _, d := range p.Derivs {
		for _, c := range d.Children {
			n += c.Size()
		}
	}
	return n
}

// Depth returns the longest derivation chain length.
func (p *ProofNode) Depth() int {
	max := 0
	for _, d := range p.Derivs {
		for _, c := range d.Children {
			if d := c.Depth(); d > max {
				max = d
			}
		}
	}
	return max + 1
}

// Stats reports a query's cost.
type Stats struct {
	Messages int
	Bytes    int
	Latency  simnet.Time
	// CacheHits counts sub-results served from node caches.
	CacheHits int
}

// Result is a completed query.
type Result struct {
	Type   QueryType
	Root   *ProofNode // Lineage
	Bases  []TupleAt  // BaseTuples
	Nodes  []string   // Nodes
	Count  int        // DerivCount
	Pruned bool
	Stats  Stats
}

// subResult travels between nodes during traversal.
type subResult struct {
	Node   *ProofNode
	Bases  []TupleAt
	Nodes  map[string]bool
	Count  int
	Pruned bool
}

// MsgKind is the simnet message kind used by query traffic.
const MsgKind = "provquery"

type request struct {
	qid     uint64
	typ     QueryType
	opts    Options
	rid     rel.ID   // rule execution to expand at the receiver
	visited []rel.ID // tuple VIDs on the path, for cycle detection
	replyTo string
}

type response struct {
	qid uint64
	res subResult
}

// Service handles query traffic at one node.
type Service struct {
	addr    string
	store   *provenance.Store
	net     *simnet.Network
	client  *Client
	nextQID uint64
	pending map[uint64]func(subResult)
	cache   map[cacheKey]*cacheVal
}

type cacheKey struct {
	vid       rel.ID
	typ       QueryType
	threshold int
}

type cacheVal struct {
	res     subResult
	version uint64
}

// Client coordinates queries over an engine's nodes.
type Client struct {
	eng      *engine.Engine
	services map[string]*Service
	// cacheHits accumulates across the most recent query.
	cacheHits int
}

// Attach registers the provenance query service on every engine node.
func Attach(eng *engine.Engine) (*Client, error) {
	c := &Client{eng: eng, services: map[string]*Service{}}
	for _, addr := range eng.Nodes() {
		n, _ := eng.Node(addr)
		if n.Prov == nil {
			return nil, fmt.Errorf("provquery: node %s has no provenance store", addr)
		}
		c.services[addr] = &Service{
			addr:    addr,
			store:   n.Prov,
			net:     eng.Net,
			client:  c,
			pending: map[uint64]func(subResult){},
			cache:   map[cacheKey]*cacheVal{},
		}
	}
	err := eng.RegisterService(MsgKind, func(n *engine.Node, m simnet.Message) {
		svc, ok := c.services[n.Addr]
		if !ok {
			panic("provquery: message for unattached node " + n.Addr)
		}
		svc.handle(m)
	})
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Query runs a provenance query for the tuple at its owning node and
// drives the network until the result is complete.
func (c *Client) Query(typ QueryType, at string, t rel.Tuple, opts Options) (*Result, error) {
	svc, ok := c.services[at]
	if !ok {
		return nil, fmt.Errorf("provquery: unknown node %s", at)
	}
	vid := t.VID()
	if _, ok := svc.store.Derivations(vid); !ok {
		return nil, fmt.Errorf("provquery: tuple %s has no provenance at %s", t, at)
	}
	c.cacheHits = 0
	startMsgs, startBytes, _ := kindTotals(c.eng.Net)
	startTime := c.eng.Net.Now()

	var out *subResult
	svc.resolveTuple(vid, nil, typ, opts, func(r subResult) { out = &r })
	c.eng.Net.Run(0)
	if out == nil {
		return nil, fmt.Errorf("provquery: query for %s did not complete", t)
	}
	endMsgs, endBytes, _ := kindTotals(c.eng.Net)
	res := &Result{
		Type:   typ,
		Pruned: out.Pruned,
		Stats: Stats{
			Messages:  endMsgs - startMsgs,
			Bytes:     endBytes - startBytes,
			Latency:   c.eng.Net.Now() - startTime,
			CacheHits: c.cacheHits,
		},
	}
	switch typ {
	case Lineage:
		res.Root = out.Node
	case BaseTuples:
		res.Bases = dedupBases(out.Bases)
	case Nodes:
		for n := range out.Nodes {
			res.Nodes = append(res.Nodes, n)
		}
		sort.Strings(res.Nodes)
	case DerivCount:
		res.Count = out.Count
	}
	return res, nil
}

func kindTotals(net *simnet.Network) (msgs, bytes, drops int) {
	k := net.KindTotals()[MsgKind]
	return k.Messages, k.Bytes, 0
}

func dedupBases(in []TupleAt) []TupleAt {
	seen := map[rel.ID]bool{}
	var out []TupleAt
	for _, b := range in {
		vid := b.Tuple.VID()
		if !seen[vid] {
			seen[vid] = true
			out = append(out, b)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tuple.Compare(out[j].Tuple) < 0 })
	return out
}

// InvalidateCaches clears every node's query cache (tests/benches).
func (c *Client) InvalidateCaches() {
	for _, svc := range c.services {
		svc.cache = map[cacheKey]*cacheVal{}
	}
}

// ---- service internals -------------------------------------------------

func (s *Service) handle(m simnet.Message) {
	switch p := m.Payload.(type) {
	case request:
		s.expandExec(p)
	case response:
		cont, ok := s.pending[p.qid]
		if !ok {
			return // stale response (should not happen in simulation)
		}
		delete(s.pending, p.qid)
		cont(p.res)
	default:
		panic(fmt.Sprintf("provquery: bad payload %T", m.Payload))
	}
}

// resolveTuple computes the sub-result for a tuple stored at this node.
func (s *Service) resolveTuple(vid rel.ID, visited []rel.ID, typ QueryType, opts Options, cont func(subResult)) {
	for _, v := range visited {
		if v == vid {
			tuple, _ := s.store.TupleOf(vid)
			cont(cycleResult(vid, tuple, s.addr, typ))
			return
		}
	}
	if opts.UseCache {
		key := cacheKey{vid: vid, typ: typ, threshold: opts.Threshold}
		if cv, ok := s.cache[key]; ok && cv.version == s.store.Version() {
			s.client.cacheHits++
			cont(cv.res)
			return
		}
	}
	tuple, ok := s.store.TupleOf(vid)
	if !ok {
		cont(missingResult(vid, s.addr, typ))
		return
	}
	derivs, ok := s.store.Derivations(vid)
	if !ok {
		cont(missingResult(vid, s.addr, typ))
		return
	}
	pruned := false
	if opts.Threshold > 0 && len(derivs) > opts.Threshold {
		derivs = derivs[:opts.Threshold]
		pruned = true
	}
	node := &ProofNode{VID: vid, Tuple: tuple, Loc: s.addr, Pruned: pruned}
	acc := subResult{
		Node:   node,
		Nodes:  map[string]bool{s.addr: true},
		Pruned: pruned,
	}
	childVisited := append(append([]rel.ID(nil), visited...), vid)

	var thunks []func(cont func(subResult))
	for _, d := range derivs {
		d := d
		if d.RID.IsZero() {
			node.Base = true
			acc.Bases = append(acc.Bases, TupleAt{Tuple: tuple, Loc: s.addr})
			acc.Count++
			continue
		}
		thunks = append(thunks, func(cont func(subResult)) {
			s.expandDeriv(d, childVisited, typ, opts, cont)
		})
	}
	finish := func(results []subResult) {
		for _, r := range results {
			mergeInto(&acc, r)
		}
		if opts.UseCache {
			key := cacheKey{vid: vid, typ: typ, threshold: opts.Threshold}
			s.cache[key] = &cacheVal{res: acc, version: s.store.Version()}
		}
		cont(acc)
	}
	runAll(thunks, opts.Sequential, finish)
}

// expandDeriv resolves one derivation: locally when the rule executed
// here, otherwise by querying the executing node.
func (s *Service) expandDeriv(d provenance.Entry, visited []rel.ID, typ QueryType, opts Options, cont func(subResult)) {
	if d.RLoc == s.addr {
		s.expandExecLocal(d.RID, visited, typ, opts, cont)
		return
	}
	qid := s.nextQIDFn()
	s.pending[qid] = cont
	req := request{qid: qid, typ: typ, opts: opts, rid: d.RID, visited: visited, replyTo: s.addr}
	s.net.Send(simnet.Message{
		From:     s.addr,
		To:       d.RLoc,
		Kind:     MsgKind,
		Reliable: true,
		Payload:  req,
		Size:     requestSize(req),
	})
}

func (s *Service) nextQIDFn() uint64 {
	s.nextQID++
	return s.nextQID
}

// expandExec handles a remote expansion request.
func (s *Service) expandExec(req request) {
	s.expandExecLocal(req.rid, req.visited, req.typ, req.opts, func(r subResult) {
		resp := response{qid: req.qid, res: r}
		s.net.Send(simnet.Message{
			From:     s.addr,
			To:       req.replyTo,
			Kind:     MsgKind,
			Reliable: true,
			Payload:  resp,
			Size:     responseSize(req.typ, r),
		})
	})
}

// expandExecLocal resolves a rule execution at this node: all its input
// tuples are local; each is resolved (possibly recursing to other
// nodes) and combined into a derivation-level result.
func (s *Service) expandExecLocal(rid rel.ID, visited []rel.ID, typ QueryType, opts Options, cont func(subResult)) {
	exec, ok := s.store.Exec(rid)
	if !ok {
		cont(missingResult(rid, s.addr, typ))
		return
	}
	var thunks []func(cont func(subResult))
	for _, vid := range exec.VIDs {
		vid := vid
		thunks = append(thunks, func(cont func(subResult)) {
			s.resolveTuple(vid, visited, typ, opts, cont)
		})
	}
	runAll(thunks, opts.Sequential, func(results []subResult) {
		deriv := &ProofDeriv{RID: rid, Rule: exec.Rule, RLoc: s.addr}
		out := subResult{
			Nodes: map[string]bool{s.addr: true},
			Count: 1,
		}
		for _, r := range results {
			if r.Node != nil {
				deriv.Children = append(deriv.Children, r.Node)
			}
			out.Bases = append(out.Bases, r.Bases...)
			for n := range r.Nodes {
				out.Nodes[n] = true
			}
			out.Count *= r.Count
			out.Pruned = out.Pruned || r.Pruned
		}
		out.Node = &ProofNode{Derivs: []*ProofDeriv{deriv}} // carrier; merged by caller
		cont(out)
	})
}

// mergeInto folds a derivation-level result into a tuple-level result.
func mergeInto(acc *subResult, r subResult) {
	if r.Node != nil && acc.Node != nil {
		acc.Node.Derivs = append(acc.Node.Derivs, r.Node.Derivs...)
	}
	acc.Bases = append(acc.Bases, r.Bases...)
	for n := range r.Nodes {
		acc.Nodes[n] = true
	}
	acc.Count += r.Count
	acc.Pruned = acc.Pruned || r.Pruned
}

// runAll executes thunks either concurrently (all issued before any
// completion) or sequentially (each issued from the previous one's
// continuation), then calls done with results in order.
func runAll(thunks []func(cont func(subResult)), sequential bool, done func([]subResult)) {
	n := len(thunks)
	if n == 0 {
		done(nil)
		return
	}
	results := make([]subResult, n)
	if sequential {
		var step func(i int)
		step = func(i int) {
			if i == n {
				done(results)
				return
			}
			thunks[i](func(r subResult) {
				results[i] = r
				step(i + 1)
			})
		}
		step(0)
		return
	}
	remaining := n
	for i, th := range thunks {
		i := i
		th(func(r subResult) {
			results[i] = r
			remaining--
			if remaining == 0 {
				done(results)
			}
		})
	}
}

func cycleResult(vid rel.ID, tuple rel.Tuple, loc string, typ QueryType) subResult {
	return subResult{
		Node:  &ProofNode{VID: vid, Tuple: tuple, Loc: loc, Cycle: true},
		Nodes: map[string]bool{loc: true},
		Count: 0,
	}
}

func missingResult(id rel.ID, loc string, typ QueryType) subResult {
	return subResult{
		Node:  &ProofNode{VID: id, Loc: loc},
		Nodes: map[string]bool{loc: true},
		Count: 0,
	}
}

// requestSize approximates the wire size of a query request.
func requestSize(r request) int { return 64 + 20*len(r.visited) }

// responseSize approximates the wire size of a sub-result by type:
// lineage ships tree structure, base-tuples ships tuples, nodes ships
// addresses, counts ship integers. This is what makes the cheaper query
// types measurably cheaper, as in ExSPAN.
func responseSize(typ QueryType, r subResult) int {
	switch typ {
	case Lineage:
		n := 0
		if r.Node != nil {
			for _, d := range r.Node.Derivs {
				for _, c := range d.Children {
					n += c.Size()
				}
			}
		}
		return 48 + 96*n
	case BaseTuples:
		n := 48
		for _, b := range r.Bases {
			n += len(rel.MarshalTuple(b.Tuple)) + 8
		}
		return n
	case Nodes:
		return 48 + 16*len(r.Nodes)
	case DerivCount:
		return 56
	}
	return 48
}
