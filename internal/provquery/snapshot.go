package provquery

import (
	"fmt"
	"sort"

	"repro/internal/provenance"
	"repro/internal/rel"
)

// This file is the snapshot-isolated face of the query engine. The live
// Client executes queries as messages inside the discrete-event
// simulation, which makes every query a simulation event: it advances
// virtual time and must run on the simulation thread. A SnapshotClient
// instead evaluates the same query types against frozen, immutable
// provenance views (provenance.View), so any number of goroutines can
// query concurrently — and lock-free — while the simulation keeps
// advancing. nettrailsd serves every HTTP query this way.

// PartitionView is the read-only surface of one node's provenance
// partition that snapshot query evaluation needs. Both the live
// *provenance.Store and the frozen *provenance.View implement it; the
// latter is what makes concurrent evaluation safe without locks.
type PartitionView interface {
	Derivations(vid rel.ID) ([]provenance.Entry, bool)
	Exec(rid rel.ID) (provenance.ExecEntry, bool)
	TupleOf(vid rel.ID) (rel.Tuple, bool)
}

var (
	_ PartitionView = (*provenance.Store)(nil)
	_ PartitionView = (*provenance.View)(nil)
)

// SnapshotClient answers provenance queries against a fixed set of
// per-node partition views. It is immutable after construction; a
// single SnapshotClient may serve many goroutines concurrently when
// its views are immutable (e.g. provenance.View).
type SnapshotClient struct {
	views map[string]PartitionView
}

// NewSnapshotClient builds a client over per-node views keyed by node
// address. The map is used as-is and must not be mutated afterwards.
func NewSnapshotClient(views map[string]PartitionView) *SnapshotClient {
	return &SnapshotClient{views: views}
}

// Query evaluates a provenance query of the given type for the tuple at
// node `at`, entirely against the frozen views. Result semantics match
// the live Client.Query: identical proof trees, base-tuple sets, node
// sets, and derivation counts for the same state. Stats are modeled,
// not measured: Messages/Bytes count the request/response traffic the
// live traversal would have sent (each cross-node expansion is one
// request plus one response); Latency is zero because no virtual time
// passes in a snapshot.
func (c *SnapshotClient) Query(typ QueryType, at string, t rel.Tuple, opts Options) (*Result, error) {
	v, ok := c.views[at]
	if !ok {
		return nil, fmt.Errorf("provquery: unknown node %s", at)
	}
	vid := t.VID()
	if _, ok := v.Derivations(vid); !ok {
		return nil, fmt.Errorf("provquery: tuple %s has no provenance at %s", t, at)
	}
	e := &snapEval{client: c, typ: typ, opts: opts}
	out := e.resolveTuple(at, v, vid, nil)
	res := &Result{
		Type:   typ,
		Pruned: out.Pruned,
		Stats:  Stats{Messages: e.msgs, Bytes: e.bytes},
	}
	switch typ {
	case Lineage:
		res.Root = out.Node
	case BaseTuples:
		res.Bases = dedupBases(out.Bases)
	case Nodes:
		for n := range out.Nodes {
			res.Nodes = append(res.Nodes, n)
		}
		sort.Strings(res.Nodes)
	case DerivCount:
		res.Count = out.Count
	}
	return res, nil
}

// Run parses and executes a textual query (see ParseQuery).
func (c *SnapshotClient) Run(src string) (*Result, error) {
	q, err := ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return c.Query(q.Type, q.At, q.Tuple, q.Opts)
}

// snapEval carries one query's options and traffic model through the
// recursive traversal.
type snapEval struct {
	client *SnapshotClient
	typ    QueryType
	opts   Options
	msgs   int
	bytes  int
}

// resolveTuple mirrors Service.resolveTuple on a frozen view: cycle
// detection on the visited path, threshold pruning, and one derivation
// branch per prov entry.
func (e *snapEval) resolveTuple(at string, v PartitionView, vid rel.ID, visited []rel.ID) subResult {
	for _, seen := range visited {
		if seen == vid {
			tuple, _ := v.TupleOf(vid)
			return cycleResult(vid, tuple, at, e.typ)
		}
	}
	tuple, ok := v.TupleOf(vid)
	if !ok {
		return missingResult(vid, at, e.typ)
	}
	derivs, ok := v.Derivations(vid)
	if !ok {
		return missingResult(vid, at, e.typ)
	}
	pruned := false
	if e.opts.Threshold > 0 && len(derivs) > e.opts.Threshold {
		derivs = derivs[:e.opts.Threshold]
		pruned = true
	}
	node := &ProofNode{VID: vid, Tuple: tuple, Loc: at, Pruned: pruned}
	acc := subResult{
		Node:   node,
		Nodes:  map[string]bool{at: true},
		Pruned: pruned,
	}
	childVisited := append(append([]rel.ID(nil), visited...), vid)
	for _, d := range derivs {
		if d.RID.IsZero() {
			node.Base = true
			acc.Bases = append(acc.Bases, TupleAt{Tuple: tuple, Loc: at})
			acc.Count++
			continue
		}
		r := e.expandDeriv(at, d, childVisited)
		mergeInto(&acc, r)
	}
	return acc
}

// expandDeriv resolves one derivation: locally when the rule executed
// here, otherwise at the executing node's view, charging one simulated
// request/response pair for the hop.
func (e *snapEval) expandDeriv(at string, d provenance.Entry, visited []rel.ID) subResult {
	loc := d.RLoc
	if loc == at {
		return e.expandExecLocal(at, e.client.views[at], d.RID, visited)
	}
	v, ok := e.client.views[loc]
	if !ok {
		return missingResult(d.RID, loc, e.typ)
	}
	e.msgs++ // request
	e.bytes += requestSize(request{rid: d.RID, visited: visited})
	r := e.expandExecLocal(loc, v, d.RID, visited)
	e.msgs++ // response
	e.bytes += responseSize(e.typ, r)
	return r
}

// expandExecLocal mirrors Service.expandExecLocal: resolve every input
// tuple of the rule execution and combine into one derivation branch.
func (e *snapEval) expandExecLocal(at string, v PartitionView, rid rel.ID, visited []rel.ID) subResult {
	exec, ok := v.Exec(rid)
	if !ok {
		return missingResult(rid, at, e.typ)
	}
	deriv := &ProofDeriv{RID: rid, Rule: exec.Rule, RLoc: at}
	out := subResult{
		Nodes: map[string]bool{at: true},
		Count: 1,
	}
	for _, vid := range exec.VIDs {
		r := e.resolveTuple(at, v, vid, visited)
		if r.Node != nil {
			deriv.Children = append(deriv.Children, r.Node)
		}
		out.Bases = append(out.Bases, r.Bases...)
		for n := range r.Nodes {
			out.Nodes[n] = true
		}
		out.Count *= r.Count
		out.Pruned = out.Pruned || r.Pruned
	}
	out.Node = &ProofNode{Derivs: []*ProofDeriv{deriv}} // carrier; merged by caller
	return out
}
