package provquery

import (
	"context"
	"fmt"

	"repro/internal/provenance"
	"repro/internal/provgraph"
	"repro/internal/rel"
)

// This file is the snapshot-isolated face of the query engine. The live
// Client executes queries as messages inside the discrete-event
// simulation, which makes every query a simulation event: it advances
// virtual time and must run on the simulation thread. A SnapshotClient
// instead evaluates the same provgraph walk against frozen, immutable
// provenance views (provenance.View), so any number of goroutines can
// query concurrently — and lock-free — while the simulation keeps
// advancing. nettrailsd serves every HTTP query this way.

// PartitionView is the read-only surface of one node's provenance
// partition that snapshot query evaluation needs. Both the live
// *provenance.Store and the frozen *provenance.View implement it; the
// latter is what makes concurrent evaluation safe without locks.
type PartitionView interface {
	Derivations(vid rel.ID) ([]provenance.Entry, bool)
	Exec(rid rel.ID) (provenance.ExecEntry, bool)
	TupleOf(vid rel.ID) (rel.Tuple, bool)
}

var (
	_ PartitionView = (*provenance.Store)(nil)
	_ PartitionView = (*provenance.View)(nil)
)

// ViewResolver resolves node addresses to partition views. It is the
// pluggable lookup behind SnapshotClient: the snapshot publisher hands
// its own (O(1), allocation-free) resolver straight to the client
// instead of materializing a map of views on every publish.
// Implementations must be immutable once a client is built over them.
type ViewResolver interface {
	// PartitionView returns the view of addr's partition; ok is false
	// when this resolver does not hold it.
	PartitionView(addr string) (PartitionView, bool)
	// KnownNode reports whether addr is a node of the wider network even
	// though its partition may not be held here (a sharded deployment).
	// Resolvers that hold the whole network return false: an unresolved
	// address is then simply unknown.
	KnownNode(addr string) bool
}

// SnapshotClient answers provenance queries against a fixed resolver of
// per-node partition views. It is immutable after construction; a
// single SnapshotClient may serve many goroutines concurrently when
// its views are immutable (e.g. provenance.View). Each Query builds its
// own walk state, so no state is shared between concurrent queries.
type SnapshotClient struct {
	src ViewResolver
}

// mapViewSet is the map-backed ViewResolver the legacy constructors
// wrap: views keyed by address, plus the optional known-node set of a
// sharded deployment (nil known = views cover the whole network).
type mapViewSet struct {
	views map[string]PartitionView
	known map[string]bool
}

func (m mapViewSet) PartitionView(addr string) (PartitionView, bool) {
	v, ok := m.views[addr]
	return v, ok
}

func (m mapViewSet) KnownNode(addr string) bool { return m.known[addr] }

// NewResolverClient builds a client directly over a ViewResolver. The
// resolver must be immutable for the client's lifetime.
func NewResolverClient(src ViewResolver) *SnapshotClient {
	return &SnapshotClient{src: src}
}

// NewSnapshotClient builds a client over per-node views keyed by node
// address. The map is used as-is and must not be mutated afterwards.
func NewSnapshotClient(views map[string]PartitionView) *SnapshotClient {
	return NewResolverClient(mapViewSet{views: views})
}

// NewPartialSnapshotClient builds a client over one shard's subset of
// the network's partitions. allNodes lists every node address in the
// whole network; queries whose traversal stays inside the held views
// answer exactly as an unsharded client would, while a walk that
// reaches a node in allNodes without a held view fails with an error
// wrapping ErrNotOwned (never a silently partial result).
func NewPartialSnapshotClient(views map[string]PartitionView, allNodes []string) *SnapshotClient {
	known := make(map[string]bool, len(allNodes))
	for _, addr := range allNodes {
		known[addr] = true
	}
	return NewResolverClient(mapViewSet{views: views, known: known})
}

// Query evaluates a provenance query of the given type for the tuple at
// node `at`, entirely against the frozen views. Result semantics match
// the live Client.Query — both run the identical provgraph walk, so
// proof trees, base-tuple sets, node sets, derivation counts, and
// truncation frontiers (for path-based limits, and for the node budget
// under Sequential order) are the same for the same state. Stats are
// modeled, not measured: Messages/Bytes count the request/response
// traffic the live traversal would have sent (each cross-node expansion
// is one request plus one response); Latency is zero because no virtual
// time passes in a snapshot. Options.UseCache is a no-op here: the
// per-node caches belong to live nodes, and serving-layer memoization
// is provided per snapshot version by internal/server instead.
func (c *SnapshotClient) Query(typ QueryType, at string, t rel.Tuple, opts Options) (*Result, error) {
	//lint:allow ctxflow context-free compatibility entry point: callers who opt out of cancellation get a walk that runs to completion by design
	return c.QueryContext(context.Background(), typ, at, t, opts)
}

// QueryContext is Query with cancellation: once ctx is cancelled or
// its deadline passes, the synchronous walk stops expanding at the
// next vertex and the call returns an error wrapping ctx.Err() instead
// of a partial Result.
func (c *SnapshotClient) QueryContext(ctx context.Context, typ QueryType, at string, t rel.Tuple, opts Options) (*Result, error) {
	v, ok := c.src.PartitionView(at)
	if !ok {
		if c.src.KnownNode(at) {
			return nil, fmt.Errorf("provquery: node %s: %w", at, ErrNotOwned)
		}
		return nil, fmt.Errorf("provquery: %w %s", ErrUnknownNode, at)
	}
	vid := t.VID()
	if _, ok := v.Derivations(vid); !ok {
		return nil, fmt.Errorf("provquery: tuple %s has %w at %s", t, ErrNoProvenance, at)
	}
	src := &snapSource{src: c.src}
	w := provgraph.NewWalkContext(ctx, src, typ, opts)
	var out provgraph.SubResult
	w.ResolveTuple(at, vid, nil, func(r provgraph.SubResult) { out = r })
	if err := w.Err(); err != nil {
		return nil, fmt.Errorf("provquery: query for %s aborted after %d vertices: %w", t, w.Resolved(), err)
	}
	if src.notOwned != "" {
		return nil, fmt.Errorf("provquery: query for %s crossed to node %s: %w", t, src.notOwned, ErrNotOwned)
	}
	res := provgraph.NewResult(typ, out)
	res.Stats = Stats{Messages: src.msgs, Bytes: src.bytes}
	return res, nil
}

// Run parses and executes a textual query (see ParseQuery).
func (c *SnapshotClient) Run(src string) (*Result, error) {
	q, err := ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return c.Query(q.Type, q.At, q.Tuple, q.Opts)
}

// snapSource adapts frozen per-node views to the provgraph walk. All
// continuations fire synchronously, and each cross-node hop charges the
// modeled request/response pair the live traversal would have sent.
// One snapSource serves exactly one query; its counters are the walk's
// traffic model.
type snapSource struct {
	src   ViewResolver
	msgs  int
	bytes int
	// notOwned records the first known-but-unheld node the walk read,
	// turning the whole query into an ErrNotOwned failure.
	notOwned string
}

// view resolves loc's partition view, recording a cross-shard escape
// when loc is a known network node whose partition is not held here.
func (s *snapSource) view(loc string) (PartitionView, bool) {
	v, ok := s.src.PartitionView(loc)
	if !ok && s.src.KnownNode(loc) && s.notOwned == "" {
		s.notOwned = loc
	}
	return v, ok
}

func (s *snapSource) TupleOf(loc string, vid rel.ID) (rel.Tuple, bool) {
	v, ok := s.view(loc)
	if !ok {
		return rel.Tuple{}, false
	}
	return v.TupleOf(vid)
}

func (s *snapSource) Derivations(loc string, vid rel.ID) ([]provenance.Entry, bool) {
	v, ok := s.view(loc)
	if !ok {
		return nil, false
	}
	return v.Derivations(vid)
}

func (s *snapSource) Exec(loc string, rid rel.ID) (provenance.ExecEntry, bool) {
	v, ok := s.view(loc)
	if !ok {
		return provenance.ExecEntry{}, false
	}
	return v.Exec(rid)
}

// ExpandRemote re-enters the walk at the executing node's view,
// charging one simulated request/response pair for the hop.
func (s *snapSource) ExpandRemote(w *provgraph.Walk, from, loc string, rid rel.ID, visited []rel.ID, cont func(provgraph.SubResult)) {
	if _, ok := s.view(loc); !ok {
		cont(provgraph.MissingResult(rid, loc))
		return
	}
	s.msgs++ // request
	s.bytes += provgraph.RequestSize(len(visited))
	w.ExpandExecLocal(loc, rid, visited, func(r provgraph.SubResult) {
		s.msgs++ // response
		s.bytes += provgraph.ResponseSize(w.Type, r)
		cont(r)
	})
}

// Snapshots have no per-node caches: views are immutable, so the
// serving layer (internal/server) memoizes whole sub-proofs per
// snapshot version instead.
func (s *snapSource) CacheGet(string, provgraph.CacheKey) (provgraph.SubResult, bool) {
	return provgraph.SubResult{}, false
}
func (s *snapSource) CachePut(string, provgraph.CacheKey, provgraph.SubResult) {}
