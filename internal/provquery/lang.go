package provquery

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ndlog"
	"repro/internal/rel"
)

// A small textual provenance query language, a first step toward the
// distributed ProQL variant the paper lists as ongoing work. Queries
// name a query type, a tuple pattern, and optional execution knobs:
//
//	lineage of mincost(@'n1','n3',2)
//	bases   of mincost(@'n1','n3',2) at 'n1'
//	nodes   of routeEntry(@'AS3',"10.0.0.0/24")
//	count   of mincost(@'n1','n4',2) with cache, threshold 2, dfs
//	lineage of mincost(@'n1','n9',4) with maxdepth 3, maxnodes 50
//
// Grammar:
//
//	query   := type "of" tuple [ "at" addr ] [ "with" opt { "," opt } ]
//	type    := "lineage" | "bases" | "nodes" | "count"
//	tuple   := NDlog fact literal (addresses in single quotes)
//	opt     := "cache" | "dfs" | "threshold" INT
//	         | "maxdepth" INT | "maxnodes" INT
//
// maxdepth bounds the derivation chain below the queried tuple;
// maxnodes bounds the total tuple vertices resolved. Either limit
// leaves unexplored structure marked Truncated in the result.

// ParsedQuery is the outcome of ParseQuery.
type ParsedQuery struct {
	Type  QueryType
	Tuple rel.Tuple
	// At is the node to query at; empty means the tuple's location.
	At   string
	Opts Options
}

// ParseQueryType resolves a query-type keyword (with its aliases,
// case-insensitively) to a QueryType. It is the single name table for
// both the textual grammar and structured API requests.
func ParseQueryType(word string) (QueryType, error) {
	switch strings.ToLower(word) {
	case "lineage":
		return Lineage, nil
	case "bases", "basetuples":
		return BaseTuples, nil
	case "nodes":
		return Nodes, nil
	case "count", "derivations":
		return DerivCount, nil
	}
	return 0, fmt.Errorf("provquery: unknown query type %q (want lineage/bases/nodes/count)", word)
}

// ParseQuery parses a textual provenance query.
func ParseQuery(src string) (*ParsedQuery, error) {
	s := strings.TrimSpace(src)
	typWord, rest, ok := cutWord(s)
	if !ok {
		return nil, fmt.Errorf("provquery: empty query")
	}
	q := &ParsedQuery{}
	typ, err := ParseQueryType(typWord)
	if err != nil {
		return nil, err
	}
	q.Type = typ
	ofWord, rest, ok := cutWord(rest)
	if !ok || strings.ToLower(ofWord) != "of" {
		return nil, fmt.Errorf("provquery: expected 'of' after query type")
	}
	// The tuple literal ends at the matching close paren.
	open := strings.IndexByte(rest, '(')
	if open < 0 {
		return nil, fmt.Errorf("provquery: expected tuple literal, got %q", rest)
	}
	depth := 0
	end := -1
	inStr := byte(0)
	for i := open; i < len(rest); i++ {
		c := rest[i]
		if inStr != 0 {
			if c == inStr {
				inStr = 0
			}
			continue
		}
		switch c {
		case '\'', '"':
			inStr = c
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				end = i
			}
		}
		if end >= 0 {
			break
		}
	}
	if end < 0 {
		return nil, fmt.Errorf("provquery: unterminated tuple literal in %q", src)
	}
	tupleLit := strings.TrimSpace(rest[:end+1])
	tail := strings.TrimSpace(rest[end+1:])
	t, err := parseTupleLiteral(tupleLit)
	if err != nil {
		return nil, err
	}
	q.Tuple = t

	for tail != "" {
		word, rest2, _ := cutWord(tail)
		switch strings.ToLower(word) {
		case "at":
			addr, rest3, ok := cutWord(rest2)
			if !ok {
				return nil, fmt.Errorf("provquery: expected node after 'at'")
			}
			q.At = strings.Trim(addr, "'\"")
			tail = rest3
		case "with":
			opts, err := parseOpts(rest2)
			if err != nil {
				return nil, err
			}
			q.Opts = opts
			tail = ""
		default:
			return nil, fmt.Errorf("provquery: unexpected token %q", word)
		}
	}
	if q.At == "" {
		loc, ok := q.Tuple.LocCol0()
		if !ok || loc == "" {
			return nil, fmt.Errorf("provquery: tuple has no location attribute; add 'at NODE'")
		}
		q.At = loc
	}
	return q, nil
}

func cutWord(s string) (word, rest string, ok bool) {
	s = strings.TrimSpace(s)
	if s == "" {
		return "", "", false
	}
	i := strings.IndexAny(s, " \t\n")
	if i < 0 {
		return s, "", true
	}
	return s[:i], strings.TrimSpace(s[i:]), true
}

func parseOpts(s string) (Options, error) {
	var o Options
	for _, part := range strings.Split(s, ",") {
		fields := strings.Fields(strings.TrimSpace(part))
		if len(fields) == 0 {
			continue
		}
		switch strings.ToLower(fields[0]) {
		case "cache", "cached", "caching":
			o.UseCache = true
		case "dfs", "sequential":
			o.Sequential = true
		case "bfs", "parallel":
			o.Sequential = false
		case "threshold", "prune":
			n, err := optInt("threshold", fields)
			if err != nil {
				return o, err
			}
			o.Threshold = n
		case "maxdepth", "max-depth":
			n, err := optInt("maxdepth", fields)
			if err != nil {
				return o, err
			}
			o.MaxDepth = n
		case "maxnodes", "max-nodes":
			n, err := optInt("maxnodes", fields)
			if err != nil {
				return o, err
			}
			o.MaxNodes = n
		default:
			return o, fmt.Errorf("provquery: unknown option %q", fields[0])
		}
	}
	return o, nil
}

// optInt parses the single positive integer argument of an option.
func optInt(name string, fields []string) (int, error) {
	if len(fields) != 2 {
		return 0, fmt.Errorf("provquery: %s needs a value", name)
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil || n < 1 {
		return 0, fmt.Errorf("provquery: bad %s %q", name, fields[1])
	}
	return n, nil
}

// ParseTupleLiteral parses an NDlog fact literal such as
// mincost(@'n1','n3',2) into a tuple (addresses in single quotes,
// strings in double quotes) — the tuple syntax of the query language.
func ParseTupleLiteral(src string) (rel.Tuple, error) { return parseTupleLiteral(src) }

func parseTupleLiteral(src string) (rel.Tuple, error) {
	// The literal must name its relation: without this check an input
	// like ('x') would parse as a fact of the synthetic label below.
	if i := strings.IndexByte(src, '('); i <= 0 || strings.TrimSpace(src[:i]) == "" {
		return rel.Tuple{}, fmt.Errorf("provquery: %q is not a fact literal", src)
	}
	prog, err := ndlog.Parse("q " + src + ".")
	if err != nil {
		return rel.Tuple{}, fmt.Errorf("provquery: bad tuple literal %q: %v", src, err)
	}
	if len(prog.Rules) != 1 || len(prog.Rules[0].Body) != 0 {
		return rel.Tuple{}, fmt.Errorf("provquery: %q is not a fact literal", src)
	}
	head := prog.Rules[0].Head
	vals := make([]rel.Value, len(head.Args))
	for i, a := range head.Args {
		c, ok := a.(*ndlog.ConstArg)
		if !ok {
			return rel.Tuple{}, fmt.Errorf("provquery: tuple literal %q has non-constant argument", src)
		}
		vals[i] = c.Val
	}
	return rel.Tuple{Rel: head.Rel, Vals: vals}, nil
}

// Run parses and executes a textual query.
func (c *Client) Run(src string) (*Result, error) {
	q, err := ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return c.Query(q.Type, q.At, q.Tuple, q.Opts)
}
