package provquery

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/protocols"
	"repro/internal/provenance"
	"repro/internal/rel"
)

// TestDeepChainLineage walks a 12-node line: the derivation chain hops
// through 11 intermediate stages across nodes.
func TestDeepChainLineage(t *testing.T) {
	const n = 12
	_, c := buildLine(t, n)
	mc := mincostTuple("n1", protocols.NodeName(n), int64(n-1))
	res, err := c.Query(Lineage, "n1", mc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Depth: mincost -> cost -> (e + mincost) recursively; at least
	// 3 levels per hop.
	if res.Root.Depth() < 2*(n-1) {
		t.Fatalf("depth = %d for %d hops", res.Root.Depth(), n-1)
	}
	// Bases: all n-1 forward links.
	bres, err := c.Query(BaseTuples, "n1", mc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(bres.Bases) != n-1 {
		t.Fatalf("bases = %d, want %d", len(bres.Bases), n-1)
	}
	// Sequential traversal agrees and has higher latency than parallel
	// on a deep chain... actually on a pure chain they are equal; just
	// verify agreement.
	sres, err := c.Query(BaseTuples, "n1", mc, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(sres.Bases) != len(bres.Bases) {
		t.Fatal("sequential result differs")
	}
}

// TestCycleGuard feeds the traversal an artificially cyclic provenance
// graph (impossible via the maintenance engine, possible from forged
// data) and checks termination with Cycle-marked nodes.
func TestCycleGuard(t *testing.T) {
	e, err := engine.New(`
materialize(a, infinity, infinity, keys(1,2)).
materialize(b, infinity, infinity, keys(1,2)).
r1 b(@N,X) :- a(@N,X).
`, []string{"n1"}, engine.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	c, err := Attach(e)
	if err != nil {
		t.Fatal(err)
	}
	n1, _ := e.Node("n1")
	ta := rel.NewTuple("a", rel.Addr("n1"), rel.Int(1))
	tb := rel.NewTuple("b", rel.Addr("n1"), rel.Int(1))
	// Forge: a derived from b, b derived from a.
	ridAB := rel.HashBytes([]byte("ab"))
	ridBA := rel.HashBytes([]byte("ba"))
	n1.Prov.TamperAddProv(ta, provenance.Entry{VID: ta.VID(), RID: ridAB, RLoc: "n1"})
	n1.Prov.TamperAddProv(tb, provenance.Entry{VID: tb.VID(), RID: ridBA, RLoc: "n1"})
	n1.Prov.TamperAddExec(ridAB, "forged1", []rel.Tuple{tb})
	n1.Prov.TamperAddExec(ridBA, "forged2", []rel.Tuple{ta})

	res, err := c.Query(Lineage, "n1", ta, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Traversal terminated; somewhere a Cycle marker exists.
	found := false
	var visit func(p *ProofNode)
	visit = func(p *ProofNode) {
		if p.Cycle {
			found = true
		}
		for _, d := range p.Derivs {
			for _, ch := range d.Children {
				visit(ch)
			}
		}
	}
	visit(res.Root)
	if !found {
		t.Fatal("cyclic provenance not marked")
	}
	// Derivation count treats cycles as 0 contributions.
	cres, err := c.Query(DerivCount, "n1", ta, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cres.Count != 0 {
		t.Fatalf("cyclic-only derivation count = %d, want 0", cres.Count)
	}
	// And the auditor is fine with it structurally (execs exist), so
	// cycle detection is the query engine's job — assert both layers
	// behave independently.
	if findings := provenance.Audit(map[string]*provenance.Store{"n1": n1.Prov}); len(findings) != 0 {
		t.Fatalf("audit findings = %v", findings)
	}
}

// TestMissingExecProducesUnresolvedNode covers traversal over a forged
// derivation whose exec does not exist.
func TestMissingExecProducesUnresolvedNode(t *testing.T) {
	_, c := buildLine(t, 2)
	e := c.eng
	n1, _ := e.Node("n1")
	forged := rel.NewTuple("mincost", rel.Addr("n1"), rel.Addr("nX"), rel.Int(9))
	n1.Prov.TamperAddProv(forged, provenance.Entry{
		VID: forged.VID(), RID: rel.HashBytes([]byte("ghost")), RLoc: "n2",
	})
	res, err := c.Query(Lineage, "n1", forged, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The child under the forged derivation is an unresolved carrier
	// with zero count.
	cres, err := c.Query(DerivCount, "n1", forged, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cres.Count != 0 {
		t.Fatalf("count through missing exec = %d", cres.Count)
	}
	if res.Root == nil {
		t.Fatal("no root")
	}
}
