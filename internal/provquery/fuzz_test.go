package provquery

import "testing"

// FuzzParseQuery hammers the provenance query-language parser (and,
// through its tuple literals, the NDlog fact parser) with arbitrary
// input. The invariants are: ParseQuery never panics, an accepted
// query always resolves a target node, and rendering its tuple never
// panics. (The rendered tuple is display form, not source form, so it
// is not asserted to re-parse.)
func FuzzParseQuery(f *testing.F) {
	for _, seed := range []string{
		"lineage of mincost(@'n1','n3',2)",
		"bases   of mincost(@'n1','n3',2) at 'n1'",
		`nodes   of routeEntry(@'AS3',"10.0.0.0/24")`,
		"count   of mincost(@'n1','n4',2) with cache, threshold 2, dfs",
		"lineage of mincost(@'n1','n9',4) with maxdepth 3, maxnodes 50",
		"count of x(@'a') with dfs, bfs",
		`nodes of routeEntry(@'AS3',"10.0.0.0/24 (test)")`,
		"baseTuples of link(@'a','b',1)",
		"derivations of link(@'a','b',1) at n2",
		"lineage of x(@'a'",
		"lineage of x(X)",
		"lineage of x(@'a') with threshold 0",
		"",
		"lineage of",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := ParseQuery(src)
		if err != nil {
			return
		}
		if q.At == "" {
			t.Fatalf("accepted query %q has no target node", src)
		}
		_ = q.Tuple.String()
	})
}
