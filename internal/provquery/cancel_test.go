package provquery

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/provenance"
	"repro/internal/rel"
)

// countingView wraps a PartitionView, counting Derivations lookups and
// cancelling the query's context once a threshold is crossed — the
// snapshot analogue of a client disconnecting mid-traversal.
type countingView struct {
	PartitionView
	calls  *atomic.Int64
	after  int64
	cancel context.CancelFunc
}

func (v countingView) Derivations(vid rel.ID) ([]provenance.Entry, bool) {
	if n := v.calls.Add(1); v.after > 0 && n == v.after {
		v.cancel()
	}
	return v.PartitionView.Derivations(vid)
}

// TestSnapshotQueryCancelledMidWalk: cancelling the context while the
// snapshot walk is inside a deep proof returns a structured error (no
// partial Result) and provably stops the traversal early.
func TestSnapshotQueryCancelledMidWalk(t *testing.T) {
	e, c, err := buildGrid(4)
	if err != nil {
		t.Fatal(err)
	}
	_ = c

	// Baseline: how many partition lookups does the full walk make?
	var baseline atomic.Int64
	views := map[string]PartitionView{}
	for _, addr := range e.Nodes() {
		n, _ := e.Node(addr)
		views[addr] = countingView{PartitionView: n.Prov.View(), calls: &baseline}
	}
	corner := rel.NewTuple("mincost", rel.Addr("n1"), rel.Addr("n16"), rel.Int(6))
	if _, err := NewSnapshotClient(views).Query(Lineage, "n1", corner, Options{}); err != nil {
		t.Fatal(err)
	}
	if baseline.Load() < 20 {
		t.Fatalf("proof too shallow for a meaningful cancellation test: %d lookups", baseline.Load())
	}

	// Now cancel after a handful of lookups, mid-walk.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	const after = 5
	cviews := map[string]PartitionView{}
	for _, addr := range e.Nodes() {
		n, _ := e.Node(addr)
		cviews[addr] = countingView{PartitionView: n.Prov.View(), calls: &calls, after: after, cancel: cancel}
	}
	res, err := NewSnapshotClient(cviews).QueryContext(ctx, Lineage, "n1", corner, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryContext = (%v, %v), want context.Canceled", res, err)
	}
	if res != nil {
		t.Fatal("cancelled query must not return a partial Result")
	}
	if got := calls.Load(); got >= baseline.Load() {
		t.Fatalf("cancelled walk made %d lookups, full walk makes %d — it never stopped",
			got, baseline.Load())
	}
}

// TestLiveQueryCancelled: the live distributed client honors a dead
// context before issuing any query traffic.
func TestLiveQueryCancelled(t *testing.T) {
	_, c := buildLine(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	mc := rel.NewTuple("mincost", rel.Addr("n1"), rel.Addr("n4"), rel.Int(3))
	res, err := c.QueryContext(ctx, Lineage, "n1", mc, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryContext = (%v, %v), want context.Canceled", res, err)
	}
	// The same query without the dead context still works: the abort
	// left no residue in the services.
	if _, err := c.Query(Lineage, "n1", mc, Options{}); err != nil {
		t.Fatalf("query after aborted query: %v", err)
	}
}
