package provquery

import (
	"strings"
	"testing"
)

func TestParseQueryBasics(t *testing.T) {
	q, err := ParseQuery("lineage of mincost(@'n1','n3',2)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Type != Lineage || q.At != "n1" {
		t.Fatalf("q = %+v", q)
	}
	if q.Tuple.String() != "mincost(@n1, n3, 2)" {
		t.Fatalf("tuple = %s", q.Tuple)
	}
}

func TestParseQueryTypesAndAliases(t *testing.T) {
	cases := map[string]QueryType{
		"lineage":     Lineage,
		"bases":       BaseTuples,
		"baseTuples":  BaseTuples,
		"nodes":       Nodes,
		"count":       DerivCount,
		"derivations": DerivCount,
	}
	for word, want := range cases {
		q, err := ParseQuery(word + " of link(@'a','b',1)")
		if err != nil {
			t.Fatalf("%s: %v", word, err)
		}
		if q.Type != want {
			t.Fatalf("%s parsed as %v", word, q.Type)
		}
	}
}

func TestParseQueryAtAndOptions(t *testing.T) {
	q, err := ParseQuery("count of mincost(@'n1','n4',2) at 'n2' with cache, threshold 3, dfs")
	if err != nil {
		t.Fatal(err)
	}
	if q.At != "n2" {
		t.Fatalf("at = %q", q.At)
	}
	if !q.Opts.UseCache || !q.Opts.Sequential || q.Opts.Threshold != 3 {
		t.Fatalf("opts = %+v", q.Opts)
	}
	// bfs resets sequential.
	q, err = ParseQuery("count of x(@'a') with dfs, bfs")
	if err != nil {
		t.Fatal(err)
	}
	if q.Opts.Sequential {
		t.Fatal("bfs should clear sequential")
	}
}

func TestParseQueryTraversalLimits(t *testing.T) {
	q, err := ParseQuery("lineage of mincost(@'n1','n9',4) with maxdepth 3, maxnodes 50")
	if err != nil {
		t.Fatal(err)
	}
	if q.Opts.MaxDepth != 3 || q.Opts.MaxNodes != 50 {
		t.Fatalf("opts = %+v", q.Opts)
	}
	for _, src := range []string{
		"lineage of x(@'a') with maxdepth",
		"lineage of x(@'a') with maxdepth 0",
		"lineage of x(@'a') with maxdepth -1",
		"lineage of x(@'a') with maxnodes many",
	} {
		if _, err := ParseQuery(src); err == nil {
			t.Errorf("ParseQuery(%q) should fail", src)
		}
	}
}

func TestParseQueryStringsWithParens(t *testing.T) {
	q, err := ParseQuery(`nodes of routeEntry(@'AS3',"10.0.0.0/24 (test)")`)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := q.Tuple.Vals[1].AsString(); s != "10.0.0.0/24 (test)" {
		t.Fatalf("string arg = %q", s)
	}
}

func TestParseQueryErrors(t *testing.T) {
	bad := []string{
		"",
		"frobnicate of x(@'a')",
		"lineage x(@'a')",
		"lineage of",
		"lineage of x(@'a'",
		"lineage of x(@'a') banana",
		"lineage of x(@'a') at",
		"lineage of x(@'a') with warp",
		"lineage of x(@'a') with threshold",
		"lineage of x(@'a') with threshold zero",
		"lineage of x(@'a') with threshold 0",
		"lineage of x(X)",
		`lineage of x("a")`,
		"lineage of ('a')",   // fact literal without a relation name
		"lineage of x(@'')",  // empty location resolves to no node
		"lineage of  (@'a')", // leading paren, no relation
	}
	for _, src := range bad {
		if _, err := ParseQuery(src); err == nil {
			t.Errorf("ParseQuery(%q) should fail", src)
		}
	}
}

func TestRunTextQuery(t *testing.T) {
	_, c := buildLine(t, 3)
	res, err := c.Run("bases of mincost(@'n1','n3',2)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bases) == 0 {
		t.Fatal("no bases")
	}
	res, err = c.Run("count of mincost(@'n1','n3',2) with cache")
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 1 {
		t.Fatalf("count = %d", res.Count)
	}
	if _, err := c.Run("count of ghost(@'n1')"); err == nil {
		t.Fatal("unknown tuple must error")
	}
	if _, err := c.Run("nonsense"); err == nil {
		t.Fatal("parse error must propagate")
	}
}

func TestQueryTypeString(t *testing.T) {
	for typ, want := range map[QueryType]string{
		Lineage: "lineage", BaseTuples: "base-tuples", Nodes: "nodes",
		DerivCount: "deriv-count", QueryType(99): "unknown",
	} {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
	if !strings.Contains(Lineage.String(), "lineage") {
		t.Fatal("sanity")
	}
}
