package provquery

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/protocols"
	"repro/internal/provenance"
	"repro/internal/rel"
)

// snapClientOf freezes every node's provenance partition of a live
// engine into a SnapshotClient.
func snapClientOf(t *testing.T, e *engine.Engine) *SnapshotClient {
	t.Helper()
	views := map[string]PartitionView{}
	for _, addr := range e.Nodes() {
		n, _ := e.Node(addr)
		if n.Prov == nil {
			t.Fatalf("node %s has no provenance store", addr)
		}
		views[addr] = n.Prov.View()
	}
	return NewSnapshotClient(views)
}

// canonProof renders a proof tree into a canonical string for
// structural comparison (the viz package cannot be imported here).
func canonProof(p *ProofNode, b *strings.Builder, indent string) {
	if p == nil {
		b.WriteString(indent + "<nil>\n")
		return
	}
	fmt.Fprintf(b, "%s%s @%s base=%v cycle=%v pruned=%v trunc=%v\n",
		indent, p.Tuple, p.Loc, p.Base, p.Cycle, p.Pruned, p.Truncated)
	for _, d := range p.Derivs {
		fmt.Fprintf(b, "%s  rule %s @%s\n", indent, d.Rule, d.RLoc)
		for _, c := range d.Children {
			canonProof(c, b, indent+"    ")
		}
	}
}

func proofString(p *ProofNode) string {
	var b strings.Builder
	canonProof(p, &b, "")
	return b.String()
}

// TestSnapshotMatchesLiveQueries runs every query type both live (over
// the simulated network) and against a frozen snapshot, and requires
// identical results — proof structure, base sets, node sets, counts,
// and the modeled message/byte traffic.
func TestSnapshotMatchesLiveQueries(t *testing.T) {
	e, c, err := buildGrid(3)
	if err != nil {
		t.Fatal(err)
	}
	snap := snapClientOf(t, e)
	mc := mincostTuple("n1", "n9", 4)

	for _, tc := range []struct {
		name string
		typ  QueryType
		opts Options
	}{
		{"lineage", Lineage, Options{}},
		{"bases", BaseTuples, Options{}},
		{"nodes", Nodes, Options{}},
		{"count", DerivCount, Options{}},
		{"lineage-threshold", Lineage, Options{Threshold: 1}},
		{"count-threshold", DerivCount, Options{Threshold: 1}},
		{"bases-sequential", BaseTuples, Options{Sequential: true}},
		// maxdepth truncation is path-based: identical frontier in every
		// traversal order.
		{"lineage-maxdepth", Lineage, Options{MaxDepth: 3}},
		{"count-maxdepth", DerivCount, Options{MaxDepth: 2}},
		// the maxnodes budget is consumed in visit order, so its
		// frontier parity holds under Sequential (DFS) evaluation.
		{"lineage-maxnodes", Lineage, Options{MaxNodes: 6, Sequential: true}},
		{"bases-maxnodes", BaseTuples, Options{MaxNodes: 10, Sequential: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			live, err := c.Query(tc.typ, "n1", mc, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			frozen, err := snap.Query(tc.typ, "n1", mc, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := proofString(frozen.Root), proofString(live.Root); got != want {
				t.Errorf("proof trees diverge:\n--- live ---\n%s--- snapshot ---\n%s", want, got)
			}
			if got, want := fmt.Sprint(frozen.Bases), fmt.Sprint(live.Bases); got != want {
				t.Errorf("bases: snapshot %s, live %s", got, want)
			}
			if got, want := fmt.Sprint(frozen.Nodes), fmt.Sprint(live.Nodes); got != want {
				t.Errorf("nodes: snapshot %s, live %s", got, want)
			}
			if frozen.Count != live.Count {
				t.Errorf("count: snapshot %d, live %d", frozen.Count, live.Count)
			}
			if frozen.Pruned != live.Pruned {
				t.Errorf("pruned: snapshot %v, live %v", frozen.Pruned, live.Pruned)
			}
			if frozen.Truncated != live.Truncated {
				t.Errorf("truncated: snapshot %v, live %v", frozen.Truncated, live.Truncated)
			}
			if frozen.Stats.Messages != live.Stats.Messages {
				t.Errorf("modeled messages %d, live %d", frozen.Stats.Messages, live.Stats.Messages)
			}
			if frozen.Stats.Bytes != live.Stats.Bytes {
				t.Errorf("modeled bytes %d, live %d", frozen.Stats.Bytes, live.Stats.Bytes)
			}
		})
	}
}

func buildGrid(side int) (*engine.Engine, *Client, error) {
	n := side * side
	e, err := protocols.Build(protocols.MinCost, protocols.NodeNames(n),
		protocols.GridTopology(side, side, 1), engine.DefaultOptions())
	if err != nil {
		return nil, nil, err
	}
	c, err := Attach(e)
	if err != nil {
		return nil, nil, err
	}
	return e, c, nil
}

// TestSnapshotTextQuery exercises the textual query path end to end on
// a frozen snapshot.
func TestSnapshotTextQuery(t *testing.T) {
	e, _, err := buildGrid(2)
	if err != nil {
		t.Fatal(err)
	}
	snap := snapClientOf(t, e)
	res, err := snap.Run("bases of mincost(@'n1','n4',2)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bases) == 0 {
		t.Fatal("no base tuples")
	}
	for _, b := range res.Bases {
		if b.Tuple.Rel != "link" {
			t.Errorf("unexpected base %s", b.Tuple)
		}
	}
}

// TestSnapshotViewIsolatedFromLaterMutation freezes a view, mutates the
// live system, and requires the frozen query result to be unchanged —
// the essence of snapshot isolation.
func TestSnapshotViewIsolatedFromLaterMutation(t *testing.T) {
	e, _, err := buildGrid(2)
	if err != nil {
		t.Fatal(err)
	}
	snap := snapClientOf(t, e)
	mc := mincostTuple("n1", "n4", 2)
	before, err := snap.Query(DerivCount, "n1", mc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Tear the grid apart under the frozen view.
	if err := e.RemoveBiLink("n1", "n2", 1); err != nil {
		t.Fatal(err)
	}
	e.RunQuiescent()
	after, err := snap.Query(DerivCount, "n1", mc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if before.Count != after.Count {
		t.Fatalf("frozen view changed: %d -> %d", before.Count, after.Count)
	}
	if before.Count != 2 {
		t.Fatalf("expected 2 alternative derivations on the 2x2 grid, got %d", before.Count)
	}
}

// TestSnapshotConcurrentQueries hammers one frozen snapshot from many
// goroutines (meaningful under -race: a View must be safely shareable).
func TestSnapshotConcurrentQueries(t *testing.T) {
	e, _, err := buildGrid(3)
	if err != nil {
		t.Fatal(err)
	}
	snap := snapClientOf(t, e)
	mc := mincostTuple("n1", "n9", 4)
	want, err := snap.Query(DerivCount, "n1", mc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				res, err := snap.Query(DerivCount, "n1", mc, Options{})
				if err != nil {
					errs <- err
					return
				}
				if res.Count != want.Count {
					errs <- fmt.Errorf("count %d != %d", res.Count, want.Count)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestStoreImplementsPartitionView: a live store can back a
// SnapshotClient directly (single-threaded use, e.g. tests).
func TestStoreImplementsPartitionView(t *testing.T) {
	st := provenance.NewStore("n1")
	tp := rel.NewTuple("link", rel.Addr("n1"), rel.Addr("n2"), rel.Int(1))
	st.AddBase(tp)
	snap := NewSnapshotClient(map[string]PartitionView{"n1": st})
	res, err := snap.Query(Lineage, "n1", tp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Root.Base {
		t.Fatalf("expected base proof, got %+v", res.Root)
	}
}
