package provquery

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/protocols"
	"repro/internal/rel"
)

// buildLine creates a MINCOST engine over a line topology n1-...-nN with
// unit costs and attaches the query service.
func buildLine(t *testing.T, n int) (*engine.Engine, *Client) {
	t.Helper()
	e, err := protocols.Build(protocols.MinCost, protocols.NodeNames(n),
		protocols.LineTopology(n, 1), engine.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	c, err := Attach(e)
	if err != nil {
		t.Fatal(err)
	}
	return e, c
}

func mincostTuple(s, d string, c int64) rel.Tuple {
	return rel.NewTuple("mincost", rel.Addr(s), rel.Addr(d), rel.Int(c))
}

func TestLineageOfBaseTuple(t *testing.T) {
	_, c := buildLine(t, 2)
	link := rel.NewTuple("link", rel.Addr("n1"), rel.Addr("n2"), rel.Int(1))
	res, err := c.Query(Lineage, "n1", link, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Root.Base || len(res.Root.Derivs) != 0 {
		t.Fatalf("base tuple proof = %+v", res.Root)
	}
	if res.Stats.Messages != 0 {
		t.Fatalf("local base query sent %d messages", res.Stats.Messages)
	}
}

func TestLineageOfDerivedTuple(t *testing.T) {
	_, c := buildLine(t, 3)
	mc := mincostTuple("n1", "n3", 2)
	res, err := c.Query(Lineage, "n1", mc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	root := res.Root
	if root.Base || root.Cycle {
		t.Fatalf("root flags wrong: %+v", root)
	}
	if root.Tuple.String() != "mincost(@n1, n3, 2)" {
		t.Fatalf("root tuple = %s", root.Tuple)
	}
	if len(root.Derivs) == 0 {
		t.Fatal("derived tuple has no derivations in proof")
	}
	// The proof tree must bottom out in link base tuples only.
	var checkLeaves func(p *ProofNode)
	var leafRels []string
	checkLeaves = func(p *ProofNode) {
		if p.Base {
			leafRels = append(leafRels, p.Tuple.Rel)
			return
		}
		if p.Cycle {
			return
		}
		if len(p.Derivs) == 0 {
			t.Fatalf("non-base leaf %s", p.Tuple)
		}
		for _, d := range p.Derivs {
			if d.Rule == "" || d.RLoc == "" {
				t.Fatalf("derivation missing rule/loc: %+v", d)
			}
			for _, ch := range d.Children {
				checkLeaves(ch)
			}
		}
	}
	checkLeaves(root)
	if len(leafRels) == 0 {
		t.Fatal("no base leaves found")
	}
	for _, r := range leafRels {
		if r != "link" {
			t.Fatalf("unexpected base relation %s", r)
		}
	}
	if res.Stats.Messages == 0 {
		t.Fatal("cross-node lineage should require messages")
	}
	if root.Depth() < 3 {
		t.Fatalf("depth = %d, want >= 3 (mincost<-cost<-...<-link)", root.Depth())
	}
}

func TestBaseTuplesQuery(t *testing.T) {
	_, c := buildLine(t, 3)
	mc := mincostTuple("n1", "n3", 2)
	res, err := c.Query(BaseTuples, "n1", mc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bases) == 0 {
		t.Fatal("no base tuples")
	}
	// mincost(n1,n3) depends at least on link(n1,n2) and link(n2,n3).
	want := map[string]bool{
		"link(@n1, n2, 1)": false,
		"link(@n2, n3, 1)": false,
	}
	for _, b := range res.Bases {
		if b.Tuple.Rel != "link" {
			t.Fatalf("non-link base tuple %s", b.Tuple)
		}
		if _, ok := want[b.Tuple.String()]; ok {
			want[b.Tuple.String()] = true
		}
		// Base tuples live at their location.
		if loc, _ := b.Tuple.LocCol0(); loc != b.Loc {
			t.Fatalf("base tuple %s reported at %s", b.Tuple, b.Loc)
		}
	}
	for k, seen := range want {
		if !seen {
			t.Fatalf("missing base tuple %s in %v", k, res.Bases)
		}
	}
}

func TestNodesQuery(t *testing.T) {
	_, c := buildLine(t, 4)
	mc := mincostTuple("n1", "n4", 3)
	res, err := c.Query(Nodes, "n1", mc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// n1, n2, n3 execute rules for this derivation; n4's link tuples
	// live at n3, so n4 itself does not participate.
	if len(res.Nodes) != 3 || res.Nodes[0] != "n1" || res.Nodes[1] != "n2" || res.Nodes[2] != "n3" {
		t.Fatalf("nodes = %v", res.Nodes)
	}
}

func TestDerivCountSingleAndMultiple(t *testing.T) {
	// Line: unique derivation.
	_, c := buildLine(t, 3)
	res, err := c.Query(DerivCount, "n1", mincostTuple("n1", "n3", 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 1 {
		t.Fatalf("line count = %d", res.Count)
	}
	// Diamond: n1-n2-n4 and n1-n3-n4, two equal-cost paths.
	e2, err := protocols.Build(protocols.MinCost, protocols.NodeNames(4), []protocols.Edge{
		{A: "n1", B: "n2", Cost: 1},
		{A: "n1", B: "n3", Cost: 1},
		{A: "n2", B: "n4", Cost: 1},
		{A: "n3", B: "n4", Cost: 1},
	}, engine.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Attach(e2)
	if err != nil {
		t.Fatal(err)
	}
	res, err = c2.Query(DerivCount, "n1", mincostTuple("n1", "n4", 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 2 {
		t.Fatalf("diamond count = %d, want 2 alternative derivations", res.Count)
	}
}

func TestQueryUnknownTupleErrors(t *testing.T) {
	_, c := buildLine(t, 2)
	_, err := c.Query(Lineage, "n1", mincostTuple("n1", "n9", 1), Options{})
	if err == nil {
		t.Fatal("query for unknown tuple must error")
	}
	_, err = c.Query(Lineage, "zz", mincostTuple("n1", "n2", 1), Options{})
	if err == nil {
		t.Fatal("query at unknown node must error")
	}
}

func TestCachingReducesTraffic(t *testing.T) {
	_, c := buildLine(t, 5)
	mc := mincostTuple("n1", "n5", 4)
	cold, err := c.Query(BaseTuples, "n1", mc, Options{UseCache: true})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := c.Query(BaseTuples, "n1", mc, Options{UseCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.Messages == 0 {
		t.Fatal("cold query should use messages")
	}
	if warm.Stats.Messages != 0 {
		t.Fatalf("warm query sent %d messages, want 0 (root-level cache hit)", warm.Stats.Messages)
	}
	if warm.Stats.CacheHits == 0 {
		t.Fatal("warm query recorded no cache hits")
	}
	// Results identical.
	if len(cold.Bases) != len(warm.Bases) {
		t.Fatalf("cached result differs: %v vs %v", cold.Bases, warm.Bases)
	}
	// Without cache, traffic recurs.
	c.InvalidateCaches()
	again, err := c.Query(BaseTuples, "n1", mc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if again.Stats.Messages != cold.Stats.Messages {
		t.Fatalf("uncached re-query %d msgs, cold %d", again.Stats.Messages, cold.Stats.Messages)
	}
}

func TestCacheInvalidatedByProvenanceChange(t *testing.T) {
	e, c := buildLine(t, 3)
	mc := mincostTuple("n1", "n3", 2)
	if _, err := c.Query(BaseTuples, "n1", mc, Options{UseCache: true}); err != nil {
		t.Fatal(err)
	}
	// Change topology: n1's provenance partition changes, so the cached
	// root entry must not be served.
	if err := e.AddBiLink("n1", "n3", 9); err != nil {
		t.Fatal(err)
	}
	e.RunQuiescent()
	res, err := c.Query(DerivCount, "n1", mincostTuple("n1", "n3", 2), Options{UseCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count < 1 {
		t.Fatalf("count = %d", res.Count)
	}
}

func TestThresholdPruning(t *testing.T) {
	// Diamond topology gives 2 derivations; threshold 1 prunes.
	e, err := protocols.Build(protocols.MinCost, protocols.NodeNames(4), []protocols.Edge{
		{A: "n1", B: "n2", Cost: 1},
		{A: "n1", B: "n3", Cost: 1},
		{A: "n2", B: "n4", Cost: 1},
		{A: "n3", B: "n4", Cost: 1},
	}, engine.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	c, err := Attach(e)
	if err != nil {
		t.Fatal(err)
	}
	mc := mincostTuple("n1", "n4", 2)
	full, err := c.Query(DerivCount, "n1", mc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := c.Query(DerivCount, "n1", mc, Options{Threshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !pruned.Pruned {
		t.Fatal("pruned query not marked")
	}
	if full.Pruned {
		t.Fatal("full query wrongly marked pruned")
	}
	if pruned.Count >= full.Count {
		t.Fatalf("pruned count %d !< full count %d", pruned.Count, full.Count)
	}
	if pruned.Stats.Messages >= full.Stats.Messages {
		t.Fatalf("pruning did not reduce traffic: %d vs %d", pruned.Stats.Messages, full.Stats.Messages)
	}
}

func TestSequentialAndParallelAgree(t *testing.T) {
	_, c := buildLine(t, 5)
	mc := mincostTuple("n1", "n5", 4)
	par, err := c.Query(BaseTuples, "n1", mc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := c.Query(BaseTuples, "n1", mc, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Bases) != len(seq.Bases) {
		t.Fatalf("results differ: %v vs %v", par.Bases, seq.Bases)
	}
	for i := range par.Bases {
		if !par.Bases[i].Tuple.Equal(seq.Bases[i].Tuple) {
			t.Fatalf("base %d differs", i)
		}
	}
	if par.Stats.Messages != seq.Stats.Messages {
		t.Fatalf("message counts should match: %d vs %d", par.Stats.Messages, seq.Stats.Messages)
	}
}

func TestLineageSurvivesTopologyChurn(t *testing.T) {
	e, c := buildLine(t, 4)
	// Remove and re-add the middle link, then query.
	if err := e.RemoveBiLink("n2", "n3", 1); err != nil {
		t.Fatal(err)
	}
	e.RunQuiescent()
	if err := e.AddBiLink("n2", "n3", 1); err != nil {
		t.Fatal(err)
	}
	e.RunQuiescent()
	res, err := c.Query(Lineage, "n1", mincostTuple("n1", "n4", 3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Root.Size() < 4 {
		t.Fatalf("proof size = %d", res.Root.Size())
	}
}

func TestQueryTrafficAccountedSeparatelyFromDeltas(t *testing.T) {
	e, c := buildLine(t, 3)
	before := e.Net.KindTotals()[engine.KindDelta].Messages
	if _, err := c.Query(Nodes, "n1", mincostTuple("n1", "n3", 2), Options{}); err != nil {
		t.Fatal(err)
	}
	after := e.Net.KindTotals()[engine.KindDelta].Messages
	if before != after {
		t.Fatal("query must not generate delta traffic")
	}
	if e.Net.KindTotals()[MsgKind].Messages == 0 {
		t.Fatal("query traffic not accounted under provquery kind")
	}
}

func TestTraversalLimitsLive(t *testing.T) {
	_, c := buildLine(t, 6)
	mc := mincostTuple("n1", "n6", 5)

	full, err := c.Query(Lineage, "n1", mc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Truncated {
		t.Fatal("unlimited query reported truncation")
	}

	// maxdepth: the proof stops MaxDepth levels below the root, the
	// frontier vertex is marked, and less query traffic is sent.
	shallow, err := c.Query(Lineage, "n1", mc, Options{MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !shallow.Truncated {
		t.Fatal("expected Truncated with maxdepth 2")
	}
	if got, max := shallow.Root.Depth(), 3; got > max {
		t.Fatalf("depth = %d, want <= %d", got, max)
	}
	if shallow.Stats.Messages >= full.Stats.Messages {
		t.Fatalf("maxdepth did not cut traffic: %d vs %d messages",
			shallow.Stats.Messages, full.Stats.Messages)
	}

	// maxnodes: the vertex budget bounds proof size.
	bounded, err := c.Query(Lineage, "n1", mc, Options{MaxNodes: 4, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bounded.Truncated {
		t.Fatal("expected Truncated with maxnodes 4")
	}
	if got, max := bounded.Root.Size(), 4+4; got > max {
		// At most MaxNodes resolved vertices plus their truncated
		// frontier children.
		t.Fatalf("size = %d, want <= %d", got, max)
	}
	// A generous budget changes nothing.
	free, err := c.Query(Lineage, "n1", mc, Options{MaxNodes: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if free.Truncated || free.Root.Size() != full.Root.Size() {
		t.Fatalf("generous budget altered the proof: %+v", free)
	}
}
