// Package rel implements the relational data model shared by every
// NetTrails component: typed values, tuples, content-addressed tuple
// identifiers (VIDs), schemas, and materialized tables with derivation
// counting. It corresponds to the tuple layer of RapidNet/ExSPAN.
package rel

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the value types supported by NDlog.
type Kind uint8

// Supported value kinds.
const (
	KindInvalid Kind = iota
	KindInt
	KindFloat
	KindBool
	KindString
	KindAddr // a node address (location specifier values)
	KindID   // a content hash (VID / RID)
	KindList // an ordered list of values (e.g. AS paths)
)

// String returns a human-readable kind name.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	case KindString:
		return "string"
	case KindAddr:
		return "addr"
	case KindID:
		return "id"
	case KindList:
		return "list"
	default:
		return "invalid"
	}
}

// Value is a dynamically typed NDlog value. The zero Value is invalid.
// Values are immutable once constructed; List never aliases caller slices.
type Value struct {
	kind Kind
	num  int64 // int; bool (0/1)
	f    float64
	str  string // string; addr
	id   ID
	list []Value
}

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, num: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Bool returns a boolean value.
func Bool(v bool) Value {
	var n int64
	if v {
		n = 1
	}
	return Value{kind: KindBool, num: n}
}

// String_ returns a string value. (Named with a trailing underscore to
// leave Value.String free for fmt.Stringer.)
func String_(v string) Value { return Value{kind: KindString, str: v} }

// Str is shorthand for String_.
func Str(v string) Value { return String_(v) }

// Addr returns a node-address value used for location attributes.
func Addr(v string) Value { return Value{kind: KindAddr, str: v} }

// IDValue wraps a content hash as a value.
func IDValue(id ID) Value { return Value{kind: KindID, id: id} }

// List returns a list value holding a copy of vs.
func List(vs ...Value) Value {
	cp := make([]Value, len(vs))
	copy(cp, vs)
	return Value{kind: KindList, list: cp}
}

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsValid reports whether the value has a kind.
func (v Value) IsValid() bool { return v.kind != KindInvalid }

// AsInt returns the integer payload.
func (v Value) AsInt() (int64, bool) { return v.num, v.kind == KindInt }

// AsFloat returns the float payload; integers convert implicitly.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindFloat:
		return v.f, true
	case KindInt:
		return float64(v.num), true
	}
	return 0, false
}

// AsBool returns the boolean payload.
func (v Value) AsBool() (bool, bool) { return v.num != 0, v.kind == KindBool }

// AsString returns the string payload of a string or addr value.
func (v Value) AsString() (string, bool) {
	return v.str, v.kind == KindString || v.kind == KindAddr
}

// AsAddr returns the address payload.
func (v Value) AsAddr() (string, bool) { return v.str, v.kind == KindAddr }

// AsID returns the content-hash payload.
func (v Value) AsID() (ID, bool) { return v.id, v.kind == KindID }

// AsList returns the list payload. The returned slice must not be mutated.
func (v Value) AsList() ([]Value, bool) { return v.list, v.kind == KindList }

// Numeric reports whether the value is an int or float.
func (v Value) Numeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Equal reports deep equality between two values. Ints and floats of
// equal magnitude are distinct values (different kinds).
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// Compare defines a total order over all values: first by kind, then by
// payload. Lists compare lexicographically.
func (v Value) Compare(o Value) int {
	if v.kind != o.kind {
		if v.kind < o.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindInt, KindBool:
		switch {
		case v.num < o.num:
			return -1
		case v.num > o.num:
			return 1
		}
		return 0
	case KindFloat:
		switch {
		case v.f < o.f:
			return -1
		case v.f > o.f:
			return 1
		case math.IsNaN(v.f) && !math.IsNaN(o.f):
			return -1
		case !math.IsNaN(v.f) && math.IsNaN(o.f):
			return 1
		}
		return 0
	case KindString, KindAddr:
		return strings.Compare(v.str, o.str)
	case KindID:
		return v.id.Compare(o.id)
	case KindList:
		n := len(v.list)
		if len(o.list) < n {
			n = len(o.list)
		}
		for i := 0; i < n; i++ {
			if c := v.list[i].Compare(o.list[i]); c != 0 {
				return c
			}
		}
		switch {
		case len(v.list) < len(o.list):
			return -1
		case len(v.list) > len(o.list):
			return 1
		}
		return 0
	}
	return 0
}

// Hash64 returns an FNV-1a hash of the value, suitable for join indexes.
func (v Value) Hash64() uint64 {
	h := fnv.New64a()
	v.hashInto(h)
	return h.Sum64()
}

type hasher interface{ Write(p []byte) (int, error) }

func (v Value) hashInto(h hasher) {
	var kindByte = [1]byte{byte(v.kind)}
	h.Write(kindByte[:])
	switch v.kind {
	case KindInt, KindBool:
		var b [8]byte
		putUint64(b[:], uint64(v.num))
		h.Write(b[:])
	case KindFloat:
		var b [8]byte
		putUint64(b[:], math.Float64bits(v.f))
		h.Write(b[:])
	case KindString, KindAddr:
		h.Write([]byte(v.str))
	case KindID:
		h.Write(v.id[:])
	case KindList:
		for _, e := range v.list {
			e.hashInto(h)
		}
	}
}

func putUint64(b []byte, u uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * uint(i)))
	}
}

// String renders the value in NDlog literal syntax.
func (v Value) String() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.num, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindBool:
		if v.num != 0 {
			return "true"
		}
		return "false"
	case KindString:
		return strconv.Quote(v.str)
	case KindAddr:
		return v.str
	case KindID:
		return v.id.Short()
	case KindList:
		parts := make([]string, len(v.list))
		for i, e := range v.list {
			parts[i] = e.String()
		}
		return "[" + strings.Join(parts, ", ") + "]"
	default:
		return "<invalid>"
	}
}

// SortValues sorts a slice of values in place by Compare order.
func SortValues(vs []Value) {
	sort.Slice(vs, func(i, j int) bool { return vs[i].Compare(vs[j]) < 0 })
}

// Arith applies a binary arithmetic operator to two numeric values.
// Integer operands produce integers except for "/" with a remainder,
// which promotes to float. Mixed operands promote to float.
func Arith(op string, a, b Value) (Value, error) {
	if !a.Numeric() || !b.Numeric() {
		return Value{}, fmt.Errorf("rel: arithmetic %q on non-numeric operands %s, %s", op, a.Kind(), b.Kind())
	}
	if a.kind == KindInt && b.kind == KindInt {
		x, y := a.num, b.num
		switch op {
		case "+":
			return Int(x + y), nil
		case "-":
			return Int(x - y), nil
		case "*":
			return Int(x * y), nil
		case "/":
			if y == 0 {
				return Value{}, fmt.Errorf("rel: division by zero")
			}
			if x%y == 0 {
				return Int(x / y), nil
			}
			return Float(float64(x) / float64(y)), nil
		case "%":
			if y == 0 {
				return Value{}, fmt.Errorf("rel: modulo by zero")
			}
			return Int(x % y), nil
		}
		return Value{}, fmt.Errorf("rel: unknown operator %q", op)
	}
	x, _ := a.AsFloat()
	y, _ := b.AsFloat()
	switch op {
	case "+":
		return Float(x + y), nil
	case "-":
		return Float(x - y), nil
	case "*":
		return Float(x * y), nil
	case "/":
		if y == 0 {
			return Value{}, fmt.Errorf("rel: division by zero")
		}
		return Float(x / y), nil
	case "%":
		return Value{}, fmt.Errorf("rel: modulo on float operands")
	}
	return Value{}, fmt.Errorf("rel: unknown operator %q", op)
}
