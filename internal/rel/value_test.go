package rel

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if v, ok := Int(42).AsInt(); !ok || v != 42 {
		t.Fatalf("Int accessor: got %v %v", v, ok)
	}
	if v, ok := Float(2.5).AsFloat(); !ok || v != 2.5 {
		t.Fatalf("Float accessor: got %v %v", v, ok)
	}
	if v, ok := Int(3).AsFloat(); !ok || v != 3 {
		t.Fatalf("Int should convert to float: got %v %v", v, ok)
	}
	if v, ok := Bool(true).AsBool(); !ok || !v {
		t.Fatalf("Bool accessor: got %v %v", v, ok)
	}
	if v, ok := Str("hi").AsString(); !ok || v != "hi" {
		t.Fatalf("Str accessor: got %q %v", v, ok)
	}
	if v, ok := Addr("n1").AsAddr(); !ok || v != "n1" {
		t.Fatalf("Addr accessor: got %q %v", v, ok)
	}
	if _, ok := Str("x").AsAddr(); ok {
		t.Fatal("string must not be an addr")
	}
	if _, ok := Addr("x").AsString(); !ok {
		t.Fatal("addr should read as string")
	}
	id := HashBytes([]byte("x"))
	if v, ok := IDValue(id).AsID(); !ok || v != id {
		t.Fatalf("ID accessor: got %v %v", v, ok)
	}
	l := List(Int(1), Str("a"))
	if vs, ok := l.AsList(); !ok || len(vs) != 2 {
		t.Fatalf("List accessor: got %v %v", vs, ok)
	}
	var zero Value
	if zero.IsValid() {
		t.Fatal("zero Value must be invalid")
	}
}

func TestListCopiesInput(t *testing.T) {
	in := []Value{Int(1), Int(2)}
	l := List(in...)
	in[0] = Int(99)
	vs, _ := l.AsList()
	if got, _ := vs[0].AsInt(); got != 1 {
		t.Fatalf("List aliased caller slice: got %d", got)
	}
}

func TestCompareTotalOrder(t *testing.T) {
	vals := []Value{
		Int(-5), Int(0), Int(7),
		Float(math.Inf(-1)), Float(0), Float(1.5),
		Bool(false), Bool(true),
		Str(""), Str("a"), Str("b"),
		Addr("n1"), Addr("n2"),
		IDValue(HashBytes([]byte("a"))), IDValue(HashBytes([]byte("b"))),
		List(), List(Int(1)), List(Int(1), Int(2)), List(Int(2)),
	}
	for i, a := range vals {
		for j, b := range vals {
			ab, ba := a.Compare(b), b.Compare(a)
			if ab != -ba {
				t.Fatalf("antisymmetry violated for %v vs %v: %d %d", a, b, ab, ba)
			}
			if i == j && ab != 0 {
				t.Fatalf("reflexivity violated for %v", a)
			}
			if ab == 0 != a.Equal(b) {
				t.Fatalf("Equal inconsistent with Compare for %v vs %v", a, b)
			}
		}
	}
	// Transitivity spot check across the whole matrix.
	for _, a := range vals {
		for _, b := range vals {
			for _, c := range vals {
				if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
					t.Fatalf("transitivity violated: %v <= %v <= %v but a > c", a, b, c)
				}
			}
		}
	}
}

func TestCompareDifferentKinds(t *testing.T) {
	if Int(1).Compare(Float(1)) == 0 {
		t.Fatal("int and float of equal magnitude must not be equal")
	}
	if Str("a").Compare(Addr("a")) == 0 {
		t.Fatal("string and addr must differ")
	}
}

func TestHashConsistentWithEqual(t *testing.T) {
	a := List(Int(1), Str("x"), Addr("n1"))
	b := List(Int(1), Str("x"), Addr("n1"))
	if a.Hash64() != b.Hash64() {
		t.Fatal("equal values must hash equal")
	}
	c := List(Int(1), Str("x"), Addr("n2"))
	if a.Hash64() == c.Hash64() {
		t.Fatal("distinct values unexpectedly collided (possible, but deterministic test input should not)")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(7), "7"},
		{Float(1.5), "1.5"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Str("hi"), `"hi"`},
		{Addr("n3"), "n3"},
		{List(Int(1), Int(2)), "[1, 2]"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v.Kind(), got, c.want)
		}
	}
}

func TestArithInt(t *testing.T) {
	cases := []struct {
		op   string
		a, b int64
		want int64
	}{
		{"+", 2, 3, 5}, {"-", 2, 3, -1}, {"*", 4, 3, 12}, {"/", 6, 3, 2}, {"%", 7, 3, 1},
	}
	for _, c := range cases {
		got, err := Arith(c.op, Int(c.a), Int(c.b))
		if err != nil {
			t.Fatalf("%d %s %d: %v", c.a, c.op, c.b, err)
		}
		if n, _ := got.AsInt(); n != c.want {
			t.Errorf("%d %s %d = %v, want %d", c.a, c.op, c.b, got, c.want)
		}
	}
}

func TestArithPromotion(t *testing.T) {
	got, err := Arith("/", Int(7), Int(2))
	if err != nil {
		t.Fatal(err)
	}
	if f, ok := got.AsFloat(); !ok || f != 3.5 {
		t.Fatalf("7/2 should promote to float 3.5, got %v", got)
	}
	got, err = Arith("+", Int(1), Float(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := got.AsFloat(); f != 1.5 {
		t.Fatalf("mixed add: got %v", got)
	}
}

func TestArithErrors(t *testing.T) {
	if _, err := Arith("/", Int(1), Int(0)); err == nil {
		t.Fatal("division by zero must error")
	}
	if _, err := Arith("%", Int(1), Int(0)); err == nil {
		t.Fatal("modulo by zero must error")
	}
	if _, err := Arith("+", Str("a"), Int(1)); err == nil {
		t.Fatal("arith on string must error")
	}
	if _, err := Arith("%", Float(1), Float(2)); err == nil {
		t.Fatal("float modulo must error")
	}
	if _, err := Arith("^", Int(1), Int(2)); err == nil {
		t.Fatal("unknown op must error")
	}
}

// randomValue builds an arbitrary value of bounded depth for property tests.
func randomValue(r *rand.Rand, depth int) Value {
	k := r.Intn(7)
	if depth <= 0 && k == 6 {
		k = r.Intn(6)
	}
	switch k {
	case 0:
		return Int(r.Int63n(1000) - 500)
	case 1:
		return Float(r.Float64()*100 - 50)
	case 2:
		return Bool(r.Intn(2) == 0)
	case 3:
		return Str(randString(r))
	case 4:
		return Addr("n" + randString(r))
	case 5:
		return IDValue(HashBytes([]byte(randString(r))))
	default:
		n := r.Intn(4)
		vs := make([]Value, n)
		for i := range vs {
			vs[i] = randomValue(r, depth-1)
		}
		return List(vs...)
	}
}

func randString(r *rand.Rand) string {
	n := r.Intn(8)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return string(b)
}

func TestPropertyCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomValue(r, 3)
		var buf bytes.Buffer
		EncodeValue(&buf, v)
		got, err := DecodeValue(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Logf("decode error for %v: %v", v, err)
			return false
		}
		return got.Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyHashAgreesWithEqual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomValue(r, 3)
		w := randomValue(r, 3)
		if v.Equal(w) && v.Hash64() != w.Hash64() {
			return false
		}
		// Re-encoding the same value must be deterministic.
		return v.Hash64() == v.Hash64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSortValues(t *testing.T) {
	vs := []Value{Int(3), Int(1), Int(2)}
	SortValues(vs)
	for i, want := range []int64{1, 2, 3} {
		if got, _ := vs[i].AsInt(); got != want {
			t.Fatalf("sorted[%d] = %v, want %d", i, vs[i], want)
		}
	}
}
