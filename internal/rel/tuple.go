package rel

import (
	"bytes"
	"fmt"
	"strings"
)

// Tuple is a fact: a relation name plus an ordered list of values.
// By NDlog convention the location attribute, if any, is identified by
// the relation's schema (usually column 0, written @X in rules).
type Tuple struct {
	Rel  string
	Vals []Value
}

// NewTuple builds a tuple; the values slice is copied.
func NewTuple(relName string, vals ...Value) Tuple {
	cp := make([]Value, len(vals))
	copy(cp, vals)
	return Tuple{Rel: relName, Vals: cp}
}

// Arity returns the number of attributes.
func (t Tuple) Arity() int { return len(t.Vals) }

// Equal reports deep equality of relation name and all values.
func (t Tuple) Equal(o Tuple) bool {
	if t.Rel != o.Rel || len(t.Vals) != len(o.Vals) {
		return false
	}
	for i := range t.Vals {
		if !t.Vals[i].Equal(o.Vals[i]) {
			return false
		}
	}
	return true
}

// Compare totally orders tuples by relation name then attribute values.
func (t Tuple) Compare(o Tuple) int {
	if c := strings.Compare(t.Rel, o.Rel); c != 0 {
		return c
	}
	n := len(t.Vals)
	if len(o.Vals) < n {
		n = len(o.Vals)
	}
	for i := 0; i < n; i++ {
		if c := t.Vals[i].Compare(o.Vals[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t.Vals) < len(o.Vals):
		return -1
	case len(t.Vals) > len(o.Vals):
		return 1
	}
	return 0
}

// VID returns the tuple's content hash — its vertex ID in the provenance
// graph. Identical tuples always share a VID, across nodes and runs.
func (t Tuple) VID() ID {
	var buf bytes.Buffer
	EncodeTuple(&buf, t)
	return HashBytes(buf.Bytes())
}

// String renders the tuple in NDlog syntax, marking the location
// attribute of column 0 when it is an address: rel(@loc, v1, ...).
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteString(t.Rel)
	b.WriteByte('(')
	for i, v := range t.Vals {
		if i > 0 {
			b.WriteString(", ")
		}
		if i == 0 && v.kind == KindAddr {
			b.WriteByte('@')
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Loc returns the tuple's location attribute per the schema; ok is false
// when the relation has no location attribute or the column is not an
// address.
func (t Tuple) Loc(s *Schema) (string, bool) {
	if s == nil || s.LocIndex < 0 || s.LocIndex >= len(t.Vals) {
		return "", false
	}
	return t.Vals[s.LocIndex].AsAddr()
}

// LocCol0 returns the address in column 0, the overwhelmingly common
// NDlog convention, without consulting a schema.
func (t Tuple) LocCol0() (string, bool) {
	if len(t.Vals) == 0 {
		return "", false
	}
	return t.Vals[0].AsAddr()
}

// KeyHash hashes the projection of t onto the given columns (used for
// primary-key replacement semantics and join indexes).
func (t Tuple) KeyHash(cols []int) (uint64, error) {
	var buf bytes.Buffer
	for _, c := range cols {
		if c < 0 || c >= len(t.Vals) {
			return 0, fmt.Errorf("rel: key column %d out of range for %s/%d", c, t.Rel, len(t.Vals))
		}
		EncodeValue(&buf, t.Vals[c])
	}
	return HashBytes(buf.Bytes()).Hash64(), nil
}

// Hash64 folds the first 8 bytes of an ID into a uint64.
func (id ID) Hash64() uint64 {
	var u uint64
	for i := 0; i < 8; i++ {
		u |= uint64(id[i]) << (8 * uint(i))
	}
	return u
}

// KeyEqual reports whether two tuples agree on the given columns.
func KeyEqual(a, b Tuple, cols []int) bool {
	for _, c := range cols {
		if c >= len(a.Vals) || c >= len(b.Vals) {
			return false
		}
		if !a.Vals[c].Equal(b.Vals[c]) {
			return false
		}
	}
	return true
}
