package rel

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary codec for values and tuples. The encoding is deterministic (the
// same value always encodes to the same bytes), which makes it usable for
// both wire transfer and content hashing (VIDs).

// EncodeValue appends the canonical binary encoding of v to buf.
func EncodeValue(buf *bytes.Buffer, v Value) {
	buf.WriteByte(byte(v.kind))
	switch v.kind {
	case KindInt, KindBool:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(v.num))
		buf.Write(b[:])
	case KindFloat:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.f))
		buf.Write(b[:])
	case KindString, KindAddr:
		writeUvarint(buf, uint64(len(v.str)))
		buf.WriteString(v.str)
	case KindID:
		buf.Write(v.id[:])
	case KindList:
		writeUvarint(buf, uint64(len(v.list)))
		for _, e := range v.list {
			EncodeValue(buf, e)
		}
	}
}

// DecodeValue reads one value from r.
func DecodeValue(r *bytes.Reader) (Value, error) {
	kb, err := r.ReadByte()
	if err != nil {
		return Value{}, fmt.Errorf("rel: decode kind: %w", err)
	}
	k := Kind(kb)
	switch k {
	case KindInt, KindBool:
		var b [8]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return Value{}, fmt.Errorf("rel: decode int: %w", err)
		}
		return Value{kind: k, num: int64(binary.LittleEndian.Uint64(b[:]))}, nil
	case KindFloat:
		var b [8]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return Value{}, fmt.Errorf("rel: decode float: %w", err)
		}
		return Value{kind: k, f: math.Float64frombits(binary.LittleEndian.Uint64(b[:]))}, nil
	case KindString, KindAddr:
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return Value{}, fmt.Errorf("rel: decode string len: %w", err)
		}
		if n > uint64(r.Len()) {
			return Value{}, fmt.Errorf("rel: decode string: length %d exceeds input", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return Value{}, fmt.Errorf("rel: decode string: %w", err)
		}
		return Value{kind: k, str: string(b)}, nil
	case KindID:
		var id ID
		if _, err := io.ReadFull(r, id[:]); err != nil {
			return Value{}, fmt.Errorf("rel: decode id: %w", err)
		}
		return Value{kind: k, id: id}, nil
	case KindList:
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return Value{}, fmt.Errorf("rel: decode list len: %w", err)
		}
		if n > uint64(r.Len()) {
			return Value{}, fmt.Errorf("rel: decode list: length %d exceeds input", n)
		}
		list := make([]Value, n)
		for i := range list {
			e, err := DecodeValue(r)
			if err != nil {
				return Value{}, err
			}
			list[i] = e
		}
		return Value{kind: k, list: list}, nil
	default:
		return Value{}, fmt.Errorf("rel: decode: unknown kind %d", kb)
	}
}

// EncodeTuple appends the canonical binary encoding of t to buf.
func EncodeTuple(buf *bytes.Buffer, t Tuple) {
	writeUvarint(buf, uint64(len(t.Rel)))
	buf.WriteString(t.Rel)
	writeUvarint(buf, uint64(len(t.Vals)))
	for _, v := range t.Vals {
		EncodeValue(buf, v)
	}
}

// DecodeTuple reads one tuple from r.
func DecodeTuple(r *bytes.Reader) (Tuple, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return Tuple{}, fmt.Errorf("rel: decode rel len: %w", err)
	}
	if n > uint64(r.Len()) {
		return Tuple{}, fmt.Errorf("rel: decode rel name: length %d exceeds input", n)
	}
	name := make([]byte, n)
	if _, err := io.ReadFull(r, name); err != nil {
		return Tuple{}, fmt.Errorf("rel: decode rel name: %w", err)
	}
	arity, err := binary.ReadUvarint(r)
	if err != nil {
		return Tuple{}, fmt.Errorf("rel: decode arity: %w", err)
	}
	if arity > uint64(r.Len()) {
		return Tuple{}, fmt.Errorf("rel: decode tuple: arity %d exceeds input", arity)
	}
	vals := make([]Value, arity)
	for i := range vals {
		v, err := DecodeValue(r)
		if err != nil {
			return Tuple{}, err
		}
		vals[i] = v
	}
	return Tuple{Rel: string(name), Vals: vals}, nil
}

// MarshalTuple returns the canonical binary encoding of t.
func MarshalTuple(t Tuple) []byte {
	var buf bytes.Buffer
	EncodeTuple(&buf, t)
	return buf.Bytes()
}

// UnmarshalTuple decodes a tuple from b, requiring full consumption.
func UnmarshalTuple(b []byte) (Tuple, error) {
	r := bytes.NewReader(b)
	t, err := DecodeTuple(r)
	if err != nil {
		return Tuple{}, err
	}
	if r.Len() != 0 {
		return Tuple{}, fmt.Errorf("rel: %d trailing bytes after tuple", r.Len())
	}
	return t, nil
}

func writeUvarint(buf *bytes.Buffer, u uint64) {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(b[:], u)
	buf.Write(b[:n])
}
