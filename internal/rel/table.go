package rel

import (
	"fmt"
	"sort"
)

// Transition describes how a delta changed a row's visibility.
type Transition uint8

// Transition outcomes of applying a delta to a table.
const (
	// NoChange: the row existed before and still exists (count moved
	// between positive values), or a delete removed a non-final support.
	NoChange Transition = iota
	// Appeared: the row became visible (count went 0 -> positive).
	Appeared
	// Disappeared: the row vanished (count went positive -> 0).
	Disappeared
	// Rejected: a delete targeted a tuple that is not present.
	Rejected
)

func (tr Transition) String() string {
	switch tr {
	case NoChange:
		return "nochange"
	case Appeared:
		return "appeared"
	case Disappeared:
		return "disappeared"
	case Rejected:
		return "rejected"
	}
	return "unknown"
}

// Row is one materialized tuple with its derivation count (the number of
// currently valid derivations supporting it — counting-based incremental
// view maintenance per ExSPAN).
type Row struct {
	Tuple Tuple
	Count int
}

// Table is a materialized relation instance at one node: a set of rows
// keyed by VID, with optional hash indexes on column subsets for joins.
type Table struct {
	schema  *Schema
	rows    map[ID]*Row
	indexes map[string]*index // key: canonical column-list string
	// version counts visibility transitions (Appeared/Disappeared), so
	// snapshot publishers can skip re-copying unchanged tables.
	version uint64

	// chunks is the persistent sorted spine of visible tuples (see
	// frozen.go): maintained incrementally on every visibility
	// transition, handed off wholesale by Freeze. gen is the current
	// write generation; chunks whose gen is older are shared with a
	// frozen version and are copied before any in-place edit. spineGen
	// tracks the generation the chunk-pointer slice itself was last
	// copied for.
	chunks   []*chunk
	gen      uint64
	spineGen uint64
	frozen   *Frozen
}

type index struct {
	cols    []int
	buckets map[uint64][]ID
}

// NewTable creates an empty table for the schema.
func NewTable(s *Schema) *Table {
	return &Table{schema: s, rows: map[ID]*Row{}, indexes: map[string]*index{}, gen: 1, spineGen: 1}
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// Version returns the visibility-transition counter: it increases
// exactly when the set of visible tuples changes, so two equal versions
// of the same table imply identical Tuples() output.
func (t *Table) Version() uint64 { return t.version }

// Len returns the number of visible rows.
func (t *Table) Len() int { return len(t.rows) }

// TotalCount returns the sum of derivation counts over all rows.
func (t *Table) TotalCount() int {
	n := 0
	for _, r := range t.rows {
		n += r.Count
	}
	return n
}

// Get returns the row for the tuple with the given VID.
func (t *Table) Get(vid ID) (*Row, bool) {
	r, ok := t.rows[vid]
	return r, ok
}

// Contains reports whether an identical tuple is visible.
func (t *Table) Contains(tp Tuple) bool {
	_, ok := t.rows[tp.VID()]
	return ok
}

func colsKey(cols []int) string {
	b := make([]byte, 0, len(cols)*3)
	for _, c := range cols {
		b = append(b, byte('0'+c/10), byte('0'+c%10), ',')
	}
	return string(b)
}

// EnsureIndex creates (or reuses) a hash index on the given columns and
// backfills it from the current rows.
func (t *Table) EnsureIndex(cols []int) error {
	k := colsKey(cols)
	if _, ok := t.indexes[k]; ok {
		return nil
	}
	for _, c := range cols {
		if c < 0 || c >= t.schema.Arity {
			return fmt.Errorf("rel: index column %d out of range for %s/%d", c, t.schema.Name, t.schema.Arity)
		}
	}
	idx := &index{cols: append([]int(nil), cols...), buckets: map[uint64][]ID{}}
	// Backfill in sorted-VID order: bucket contents then have one
	// run-independent order, so Probe (and every join built on it)
	// iterates identically across runs. Backfilling straight from the
	// row-map range would capture Go's randomized iteration order.
	vids := make([]ID, 0, len(t.rows))
	for vid := range t.rows {
		vids = append(vids, vid)
	}
	sort.Slice(vids, func(i, j int) bool { return vids[i].Compare(vids[j]) < 0 })
	for _, vid := range vids {
		h, err := t.rows[vid].Tuple.KeyHash(idx.cols)
		if err != nil {
			return err
		}
		idx.buckets[h] = append(idx.buckets[h], vid)
	}
	t.indexes[k] = idx
	return nil
}

// Probe returns the visible rows whose projection onto cols matches the
// given key values. An index on cols must exist (EnsureIndex); without
// one Probe falls back to a scan.
func (t *Table) Probe(cols []int, key []Value) []*Row {
	if len(cols) != len(key) {
		return nil
	}
	if idx, ok := t.indexes[colsKey(cols)]; ok {
		probe := Tuple{Rel: t.schema.Name, Vals: make([]Value, t.schema.Arity)}
		for i, c := range cols {
			probe.Vals[c] = key[i]
		}
		h, err := probe.KeyHash(cols)
		if err != nil {
			return nil
		}
		var out []*Row
		for _, vid := range idx.buckets[h] {
			r, ok := t.rows[vid]
			if !ok {
				continue
			}
			if matchCols(r.Tuple, cols, key) {
				out = append(out, r)
			}
		}
		return out
	}
	// Fallback scan: sort the matches so the unindexed path is as
	// deterministic as the indexed one — map iteration order must not
	// decide the order joins see their matches in.
	var out []*Row
	for _, r := range t.rows {
		if matchCols(r.Tuple, cols, key) {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tuple.Compare(out[j].Tuple) < 0 })
	return out
}

func matchCols(tp Tuple, cols []int, key []Value) bool {
	for i, c := range cols {
		if c >= len(tp.Vals) || !tp.Vals[c].Equal(key[i]) {
			return false
		}
	}
	return true
}

// Apply adds delta (+n derivations or -n) for the tuple and reports the
// visibility transition. Deleting below zero is clamped and Rejected.
func (t *Table) Apply(tp Tuple, delta int) Transition {
	vid := tp.VID()
	r, ok := t.rows[vid]
	if delta > 0 {
		if !ok {
			r = &Row{Tuple: tp, Count: delta}
			t.rows[vid] = r
			t.indexAdd(vid, tp)
			t.chunkInsert(tp)
			t.version++
			return Appeared
		}
		r.Count += delta
		return NoChange
	}
	if delta < 0 {
		if !ok {
			return Rejected
		}
		r.Count += delta
		if r.Count <= 0 {
			delete(t.rows, vid)
			t.indexRemove(vid, r.Tuple)
			t.chunkRemove(r.Tuple)
			t.version++
			return Disappeared
		}
		return NoChange
	}
	return NoChange
}

func (t *Table) indexAdd(vid ID, tp Tuple) {
	for _, idx := range t.indexes {
		h, err := tp.KeyHash(idx.cols)
		if err != nil {
			continue
		}
		idx.buckets[h] = append(idx.buckets[h], vid)
	}
}

func (t *Table) indexRemove(vid ID, tp Tuple) {
	for _, idx := range t.indexes {
		h, err := tp.KeyHash(idx.cols)
		if err != nil {
			continue
		}
		b := idx.buckets[h]
		for i, v := range b {
			if v == vid {
				b[i] = b[len(b)-1]
				idx.buckets[h] = b[:len(b)-1]
				break
			}
		}
		if len(idx.buckets[h]) == 0 {
			delete(idx.buckets, h)
		}
	}
}

// KeyConflicts returns the visible rows that share tp's primary key but
// are not equal to tp. Used to implement NDlog's key-replacement
// semantics for base-table updates.
func (t *Table) KeyConflicts(tp Tuple) []*Row {
	key := t.schema.EffectiveKey()
	vals := make([]Value, len(key))
	for i, c := range key {
		if c >= len(tp.Vals) {
			return nil
		}
		vals[i] = tp.Vals[c]
	}
	var out []*Row
	for _, r := range t.Probe(key, vals) {
		if !r.Tuple.Equal(tp) {
			out = append(out, r)
		}
	}
	return out
}

// Scan visits every visible row; returning false stops the scan. The
// iteration order is unspecified.
func (t *Table) Scan(f func(*Row) bool) {
	for _, r := range t.rows {
		if !f(r) {
			return
		}
	}
}

// Rows returns all visible rows sorted by tuple order (deterministic).
func (t *Table) Rows() []*Row {
	ts := t.Freeze().Tuples()
	out := make([]*Row, len(ts))
	for i, tp := range ts {
		out[i] = t.rows[tp.VID()]
	}
	return out
}

// Tuples returns all visible tuples sorted deterministically. The
// result is the current frozen version's shared slice: already sorted,
// memoized while the table's Version() is unchanged, and read-only to
// callers.
func (t *Table) Tuples() []Tuple {
	return t.Freeze().Tuples()
}
