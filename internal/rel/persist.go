package rel

import (
	"fmt"
	"sort"
)

// Persistence hooks for Frozen: the provstore serializes a frozen table
// as its chunk runs (each run becomes one content-addressed blob, so an
// unchanged chunk re-encodes to the identical bytes and is stored once)
// and reconstructs an equivalent Frozen from those runs when
// materializing a historical version from disk.

// Runs visits each chunk's sorted run in spine order. The visited
// slices are shared with the frozen version (and possibly with the live
// table): callers must treat them as read-only. A nil or empty Frozen
// visits nothing.
func (f *Frozen) Runs(fn func([]Tuple)) {
	if f == nil {
		return
	}
	for _, c := range f.chunks {
		fn(c.ts[:len(c.ts):len(c.ts)])
	}
}

// Contains reports whether the frozen set holds a tuple equal to t, in
// O(log n): a binary search over the chunk spine (each chunk's last
// tuple bounds it) and then within the chunk.
func (f *Frozen) Contains(t Tuple) bool {
	if f == nil || f.n == 0 {
		return false
	}
	i := sort.Search(len(f.chunks), func(i int) bool {
		run := f.chunks[i].ts
		return run[len(run)-1].Compare(t) >= 0
	})
	if i == len(f.chunks) {
		return false
	}
	run := f.chunks[i].ts
	k := sort.Search(len(run), func(k int) bool { return run[k].Compare(t) >= 0 })
	return k < len(run) && run[k].Compare(t) == 0
}

// RebuildFrozen reconstructs a Frozen from decoded chunk runs, as
// produced by Runs. The runs must be non-empty, individually sorted,
// and globally ascending (strictly — distinct tuples never compare
// equal); violations mean a corrupt or mis-assembled record and are
// rejected rather than silently producing a table whose binary searches
// lie. The run slices are retained (capacity-capped) — callers must not
// mutate them afterwards.
func RebuildFrozen(version uint64, runs [][]Tuple) (*Frozen, error) {
	chunks := make([]*chunk, 0, len(runs))
	n := 0
	var last Tuple
	for ri, run := range runs {
		if len(run) == 0 {
			return nil, fmt.Errorf("rel: rebuild frozen: empty run %d", ri)
		}
		for k, tp := range run {
			if (ri > 0 || k > 0) && last.Compare(tp) >= 0 {
				return nil, fmt.Errorf("rel: rebuild frozen: tuples out of order at run %d index %d", ri, k)
			}
			last = tp
		}
		n += len(run)
		chunks = append(chunks, &chunk{ts: run[:len(run):len(run)]})
	}
	return &Frozen{version: version, chunks: chunks, n: n}, nil
}
