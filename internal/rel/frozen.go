package rel

import (
	"sort"
	"sync"
)

// Persistent sorted storage for Table: the visible tuple set is kept in
// deterministic Tuple.Compare order *incrementally*, as a spine of
// small sorted chunks with generation-based copy-on-write. Freeze()
// hands the current spine off as an immutable Frozen in O(1); the next
// mutation copies only the touched chunk (and the spine once per
// generation), so a publish after a k-tuple delta shares every
// untouched chunk with the previous version instead of re-copying and
// re-sorting the relation. Distinct tuples never compare equal (Compare
// is total over content, and identical content means the same VID and
// the same row), so insertion-maintained order is byte-identical to the
// sort.Slice output the eager path used to produce.
const (
	// chunkMax splits a chunk that grew past it; chunkMerge triggers a
	// merge attempt with a neighbor once a chunk shrinks below it.
	chunkMax   = 256
	chunkMerge = 32
	// chunkSlack is the extra capacity a copied chunk gets so follow-up
	// same-generation edits append in place instead of reallocating.
	chunkSlack = 8
)

// chunk is one sorted run of the table's tuple spine. It is writable in
// place only while its generation matches the table's current one;
// after a Freeze the table's generation moves on and every surviving
// chunk is shared with the frozen version, so the table copies it
// before the next edit.
type chunk struct {
	gen uint64
	ts  []Tuple
}

// Frozen is one immutable version of a table's visible tuple set,
// produced by Table.Freeze. It shares every unchanged chunk with the
// live table and with neighboring versions (structural sharing), and is
// safe for concurrent readers without locks. All methods tolerate a nil
// receiver (an absent table reads as empty).
//
// nettrails:frozen (enforced by the frozenwrite analyzer)
type Frozen struct {
	version uint64
	chunks  []*chunk
	n       int

	// flat memoizes the flattened sorted tuple slice; it is built by
	// the first reader that needs the contiguous form and shared by all
	// later ones, so rendering cost is paid per version, not per call.
	flatOnce sync.Once
	flat     []Tuple
}

// Version returns the table visibility version this view was frozen at.
func (f *Frozen) Version() uint64 {
	if f == nil {
		return 0
	}
	return f.version
}

// Len returns the number of visible tuples, in O(1).
func (f *Frozen) Len() int {
	if f == nil {
		return 0
	}
	return f.n
}

// Tuples returns all visible tuples in deterministic sorted order. The
// slice is memoized per frozen version and shared: callers must treat
// it as read-only. Two calls at the same version return the identical
// slice (no re-sort, no re-copy).
func (f *Frozen) Tuples() []Tuple {
	if f == nil {
		return nil
	}
	f.flatOnce.Do(func() {
		var flat []Tuple
		if len(f.chunks) == 1 {
			// Single chunk: share its run directly. The table never
			// mutates a chunk of a frozen generation in place, so the
			// capped reslice stays valid forever.
			flat = f.chunks[0].ts[:f.n:f.n]
		} else {
			flat = make([]Tuple, 0, f.n)
			for _, c := range f.chunks {
				flat = append(flat, c.ts...)
			}
		}
		//lint:allow frozenwrite sync.Once memoization: the field is written exactly once, before Do returns, and no reader sees it earlier
		f.flat = flat
	})
	return f.flat
}

// Scan visits the tuples in sorted order without materializing the
// flat slice; returning false stops the scan.
func (f *Frozen) Scan(fn func(Tuple) bool) {
	if f == nil {
		return
	}
	for _, c := range f.chunks {
		for _, tp := range c.ts {
			if !fn(tp) {
				return
			}
		}
	}
}

// Freeze returns the table's current visible tuple set as an immutable
// structurally-shared version. Freezing is O(1): it captures the chunk
// spine and bumps the table's generation so any later mutation copies
// before writing. While the table's version is unchanged, Freeze
// returns the identical *Frozen (the persistent handoff snapshot
// publishers rely on).
func (t *Table) Freeze() *Frozen {
	if t.frozen != nil && t.frozen.version == t.version {
		return t.frozen
	}
	f := &Frozen{version: t.version, chunks: t.chunks, n: len(t.rows)}
	t.gen++ // every chunk (and the spine) is shared now; edits must copy
	t.frozen = f
	return f
}

// ensureSpine makes the chunk spine writable for the current
// generation: the first structural edit after a Freeze copies the
// pointer slice once, so frozen versions keep their own spine.
func (t *Table) ensureSpine() {
	if t.spineGen == t.gen {
		return
	}
	t.chunks = append(make([]*chunk, 0, len(t.chunks)+1), t.chunks...)
	t.spineGen = t.gen
}

// findChunk returns the index of the first chunk whose last tuple
// orders at or after tp — the only chunk that can contain tp.
func (t *Table) findChunk(tp Tuple) int {
	return sort.Search(len(t.chunks), func(i int) bool {
		run := t.chunks[i].ts
		return run[len(run)-1].Compare(tp) >= 0
	})
}

// writableChunk returns chunk i ready for in-place edits, copying it
// out of the shared generation first if needed.
func (t *Table) writableChunk(i int) *chunk {
	c := t.chunks[i]
	if c.gen == t.gen {
		return c
	}
	t.ensureSpine()
	ts := make([]Tuple, len(c.ts), len(c.ts)+chunkSlack)
	copy(ts, c.ts)
	c = &chunk{gen: t.gen, ts: ts}
	t.chunks[i] = c
	return c
}

// chunkInsert places a newly visible tuple into the sorted spine.
func (t *Table) chunkInsert(tp Tuple) {
	if len(t.chunks) == 0 {
		t.ensureSpine()
		t.chunks = append(t.chunks, &chunk{gen: t.gen, ts: []Tuple{tp}})
		return
	}
	i := t.findChunk(tp)
	if i == len(t.chunks) {
		i--
	}
	c := t.writableChunk(i)
	pos := sort.Search(len(c.ts), func(k int) bool { return c.ts[k].Compare(tp) >= 0 })
	c.ts = append(c.ts, Tuple{})
	copy(c.ts[pos+1:], c.ts[pos:])
	c.ts[pos] = tp
	if len(c.ts) > chunkMax {
		t.splitChunk(i)
	}
}

// chunkRemove deletes a no-longer-visible tuple from the sorted spine.
// The caller has already established presence via the row map.
func (t *Table) chunkRemove(tp Tuple) {
	i := t.findChunk(tp)
	if i == len(t.chunks) {
		return // unreachable when row bookkeeping is consistent
	}
	c := t.writableChunk(i)
	pos := sort.Search(len(c.ts), func(k int) bool { return c.ts[k].Compare(tp) >= 0 })
	if pos == len(c.ts) || c.ts[pos].Compare(tp) != 0 {
		return // unreachable when row bookkeeping is consistent
	}
	copy(c.ts[pos:], c.ts[pos+1:])
	c.ts[len(c.ts)-1] = Tuple{} // release the value for GC
	c.ts = c.ts[:len(c.ts)-1]
	if len(c.ts) == 0 {
		t.ensureSpine()
		t.chunks = append(t.chunks[:i], t.chunks[i+1:]...)
		return
	}
	if len(c.ts) < chunkMerge {
		t.maybeMerge(i)
	}
}

// splitChunk halves an oversized chunk. The chunk is freshly writable
// (splits only follow an insert), so the halves may share its backing
// array: their regions are disjoint and capacity-capped, and any
// growth reallocates.
func (t *Table) splitChunk(i int) {
	t.ensureSpine()
	c := t.chunks[i]
	mid := len(c.ts) / 2
	right := &chunk{gen: t.gen, ts: c.ts[mid:len(c.ts):len(c.ts)]}
	c.ts = c.ts[:mid:mid]
	t.chunks = append(t.chunks, nil)
	copy(t.chunks[i+2:], t.chunks[i+1:])
	t.chunks[i+1] = right
}

// maybeMerge folds chunk i into a neighbor when their combined size is
// comfortably under the split threshold, keeping the spine from
// fragmenting under sustained deletion.
func (t *Table) maybeMerge(i int) {
	j := -1
	if i > 0 && len(t.chunks[i-1].ts)+len(t.chunks[i].ts) <= chunkMax/2 {
		j = i - 1
	} else if i+1 < len(t.chunks) && len(t.chunks[i].ts)+len(t.chunks[i+1].ts) <= chunkMax/2 {
		j = i
	}
	if j < 0 {
		return
	}
	t.ensureSpine()
	a, b := t.chunks[j], t.chunks[j+1]
	ts := make([]Tuple, 0, len(a.ts)+len(b.ts)+chunkSlack)
	ts = append(append(ts, a.ts...), b.ts...)
	t.chunks[j] = &chunk{gen: t.gen, ts: ts}
	t.chunks = append(t.chunks[:j+1], t.chunks[j+2:]...)
}
