package rel

import "testing"

func persistTuple(k int) Tuple {
	return NewTuple("link", Addr("n0"), Int(int64(k)))
}

func TestFrozenRunsRebuildRoundtrip(t *testing.T) {
	for _, n := range []int{0, 1, 3, 255, 256, 257, 1000, 5000} {
		tbl := NewTable(NewSchema("link", 2))
		for i := 0; i < n; i++ {
			tbl.Apply(persistTuple(i), 1)
		}
		f := tbl.Freeze()
		var runs [][]Tuple
		f.Runs(func(run []Tuple) {
			runs = append(runs, run)
		})
		got, err := RebuildFrozen(f.Version(), runs)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got.Len() != f.Len() || got.Version() != f.Version() {
			t.Fatalf("n=%d: len/version drift: %d/%d vs %d/%d",
				n, got.Len(), got.Version(), f.Len(), f.Version())
		}
		want := f.Tuples()
		have := got.Tuples()
		for i := range want {
			if !have[i].Equal(want[i]) {
				t.Fatalf("n=%d: tuple %d differs", n, i)
			}
		}
	}
}

func TestFrozenRunsAreCapacityCapped(t *testing.T) {
	// Appending to a visited run must never scribble into the frozen
	// chunk's backing array: the callback slices are capacity-capped.
	tbl := NewTable(NewSchema("link", 2))
	for i := 0; i < 600; i++ {
		tbl.Apply(persistTuple(i), 1)
	}
	f := tbl.Freeze()
	want := f.Tuples()
	f.Runs(func(run []Tuple) {
		_ = append(run, persistTuple(999999))
	})
	have := f.Tuples()
	for i := range want {
		if !have[i].Equal(want[i]) {
			t.Fatalf("Runs callback append mutated frozen tuple %d", i)
		}
	}
}

func TestFrozenContains(t *testing.T) {
	tbl := NewTable(NewSchema("link", 2))
	for i := 0; i < 700; i += 2 {
		tbl.Apply(persistTuple(i), 1)
	}
	f := tbl.Freeze()
	for i := 0; i < 700; i++ {
		want := i%2 == 0
		if f.Contains(persistTuple(i)) != want {
			t.Fatalf("Contains(%d) != %v", i, want)
		}
	}
	if f.Contains(persistTuple(-1)) || f.Contains(persistTuple(700)) {
		t.Fatal("Contains hit outside the stored range")
	}
	var empty *Frozen = NewTable(NewSchema("link", 2)).Freeze()
	if empty.Contains(persistTuple(0)) {
		t.Fatal("empty frozen contains a tuple")
	}
}

func TestRebuildFrozenRejectsMalformedRuns(t *testing.T) {
	if _, err := RebuildFrozen(1, [][]Tuple{{}}); err == nil {
		t.Fatal("empty run accepted")
	}
	if _, err := RebuildFrozen(1, [][]Tuple{{persistTuple(2)}, {persistTuple(1)}}); err == nil {
		t.Fatal("descending runs accepted")
	}
	if _, err := RebuildFrozen(1, [][]Tuple{{persistTuple(1), persistTuple(1)}}); err == nil {
		t.Fatal("duplicate tuple accepted")
	}
	if _, err := RebuildFrozen(1, [][]Tuple{{persistTuple(1)}, {persistTuple(1)}}); err == nil {
		t.Fatal("duplicate across runs accepted")
	}
}
