package rel

import (
	"bytes"
	"crypto/sha1"
	"encoding/hex"
	"fmt"
)

// ID is a 160-bit content hash identifying a tuple (VID) or a rule
// execution (RID) in the provenance graph, following ExSPAN's
// content-addressed vertex scheme.
type ID [20]byte

// ZeroID is the all-zero ID, used as the "no rule" marker for base tuples.
var ZeroID ID

// Compare defines a total order over IDs (byte-lexicographic).
func (id ID) Compare(o ID) int { return bytes.Compare(id[:], o[:]) }

// IsZero reports whether the ID is the zero ID.
func (id ID) IsZero() bool { return id == ZeroID }

// String returns the full hex form.
func (id ID) String() string { return hex.EncodeToString(id[:]) }

// Short returns an abbreviated hex form for display.
func (id ID) Short() string { return hex.EncodeToString(id[:4]) }

// ParseID parses a full 40-hex-digit ID.
func ParseID(s string) (ID, error) {
	var id ID
	b, err := hex.DecodeString(s)
	if err != nil {
		return id, fmt.Errorf("rel: bad id %q: %v", s, err)
	}
	if len(b) != len(id) {
		return id, fmt.Errorf("rel: bad id length %d, want %d", len(b), len(id))
	}
	copy(id[:], b)
	return id, nil
}

// HashBytes returns the SHA-1 of b as an ID.
func HashBytes(b []byte) ID { return sha1.Sum(b) }

// HashParts hashes a sequence of byte slices with length framing so that
// part boundaries are unambiguous.
func HashParts(parts ...[]byte) ID {
	h := sha1.New()
	var lenBuf [8]byte
	for _, p := range parts {
		putUint64(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:])
		h.Write(p)
	}
	var id ID
	copy(id[:], h.Sum(nil))
	return id
}
