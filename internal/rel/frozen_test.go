package rel

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func newFrozenTestTable(t *testing.T) *Table {
	t.Helper()
	s := NewSchema("route", 3, 0)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return NewTable(s)
}

func routeTuple(i int) Tuple {
	return NewTuple("route", Addr("as"+itoa(i%97)), Addr("as"+itoa(i%53)), Int(int64(i)))
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

// TestFrozenModel drives a long random insert/delete sequence against
// both the chunked table and a plain sorted-reference model, checking
// the persistent spine's view matches the reference after every freeze.
func TestFrozenModel(t *testing.T) {
	tbl := newFrozenTestTable(t)
	rng := rand.New(rand.NewSource(8))
	var ref []Tuple
	counts := map[ID]int{} // VID -> derivation count (visible while > 0)

	refHas := func(tp Tuple) bool { return counts[tp.VID()] > 0 }
	refAdd := func(tp Tuple) {
		k := tp.VID()
		counts[k]++
		if counts[k] == 1 {
			ref = append(ref, tp)
		}
	}
	refDel := func(tp Tuple) {
		k := tp.VID()
		counts[k]--
		if counts[k] <= 0 {
			delete(counts, k)
			for i, r := range ref {
				if r.Compare(tp) == 0 {
					ref = append(ref[:i], ref[i+1:]...)
					break
				}
			}
		}
	}

	check := func(step int) {
		f := tbl.Freeze()
		got := f.Tuples()
		want := append([]Tuple(nil), ref...)
		sort.Slice(want, func(i, j int) bool { return want[i].Compare(want[j]) < 0 })
		if len(got) != len(want) {
			t.Fatalf("step %d: len=%d want %d", step, len(got), len(want))
		}
		if f.Len() != len(want) {
			t.Fatalf("step %d: Len()=%d want %d", step, f.Len(), len(want))
		}
		for i := range got {
			if got[i].Compare(want[i]) != 0 {
				t.Fatalf("step %d: tuple %d = %v want %v", step, i, got[i], want[i])
			}
		}
		// The sorted view must also match what a scratch re-sort of the
		// row map produces (the old eager path's output).
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Compare(got[j]) < 0 }) {
			t.Fatalf("step %d: frozen view not sorted", step)
		}
	}

	for step := 0; step < 6000; step++ {
		tp := routeTuple(rng.Intn(1500))
		if rng.Intn(3) == 0 && refHas(tp) {
			tr := tbl.Apply(tp, -1)
			if tr == Rejected {
				t.Fatalf("step %d: unexpected reject", step)
			}
			refDel(tp)
		} else {
			tbl.Apply(tp, 1)
			refAdd(tp)
		}
		if step%250 == 0 {
			check(step)
		}
	}
	check(-1)
	// Drain everything: spine must collapse to empty and stay consistent.
	for _, tp := range append([]Tuple(nil), ref...) {
		for refHas(tp) {
			tbl.Apply(tp, -1)
			refDel(tp)
		}
	}
	if got := tbl.Freeze().Tuples(); len(got) != 0 {
		t.Fatalf("drained table still has %d tuples", len(got))
	}
}

// TestFrozenIdentityAtUnchangedVersion is the satellite-1 regression
// test: at an unchanged Version(), Tuples()/Rows() must not re-sort or
// re-copy — repeated calls return the identical memoized slice, and
// Freeze returns the identical *Frozen.
func TestFrozenIdentityAtUnchangedVersion(t *testing.T) {
	tbl := newFrozenTestTable(t)
	for i := 0; i < 700; i++ {
		tbl.Apply(routeTuple(i), 1)
	}
	v := tbl.Version()
	f1 := tbl.Freeze()
	f2 := tbl.Freeze()
	if f1 != f2 {
		t.Fatal("Freeze at unchanged version returned a different *Frozen")
	}
	ts1 := tbl.Tuples()
	ts2 := tbl.Tuples()
	if len(ts1) == 0 {
		t.Fatal("empty view")
	}
	if &ts1[0] != &ts2[0] || len(ts1) != len(ts2) {
		t.Fatal("Tuples at unchanged version re-copied the slice")
	}
	if tbl.Version() != v {
		t.Fatal("read path bumped the version")
	}
	// Count-only churn (NoChange transitions) must not invalidate the view.
	tbl.Apply(routeTuple(3), 1)
	tbl.Apply(routeTuple(3), -1)
	if tbl.Version() != v {
		t.Fatal("count-only churn bumped version")
	}
	ts3 := tbl.Tuples()
	if &ts1[0] != &ts3[0] {
		t.Fatal("count-only churn re-copied the sorted view")
	}
	// A real transition produces a fresh version and a fresh view...
	tbl.Apply(routeTuple(9001), 1)
	f3 := tbl.Freeze()
	if f3 == f1 || f3.Version() == f1.Version() {
		t.Fatal("visibility transition did not produce a new frozen version")
	}
	// ...whose flatten allocates once and is then memoized again.
	allocs := testing.AllocsPerRun(50, func() {
		_ = tbl.Tuples()
	})
	if allocs != 0 {
		t.Fatalf("Tuples at unchanged version allocates (%v allocs/op)", allocs)
	}
}

// TestFrozenAliasing is the satellite-4 structural-sharing invariant:
// mutating a table after a freeze never changes what a prior frozen
// version reads, even with concurrent readers (run under -race).
func TestFrozenAliasing(t *testing.T) {
	tbl := newFrozenTestTable(t)
	for i := 0; i < 1200; i++ {
		tbl.Apply(routeTuple(i), 1)
	}
	f := tbl.Freeze()
	want := append([]Tuple(nil), f.Tuples()...)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got := f.Tuples()
				if len(got) != len(want) {
					t.Errorf("frozen view length changed: %d != %d", len(got), len(want))
					return
				}
				if f.Len() != len(want) {
					t.Errorf("frozen Len changed")
					return
				}
			}
		}()
	}
	rng := rand.New(rand.NewSource(99))
	for step := 0; step < 4000; step++ {
		tp := routeTuple(rng.Intn(2400))
		if rng.Intn(2) == 0 {
			tbl.Apply(tp, 1)
		} else {
			tbl.Apply(tp, -1)
		}
	}
	close(stop)
	wg.Wait()

	got := f.Tuples()
	for i := range want {
		if got[i].Compare(want[i]) != 0 {
			t.Fatalf("prior version mutated at %d: %v != %v", i, got[i], want[i])
		}
	}
	// Scan must agree with Tuples.
	n := 0
	f.Scan(func(tp Tuple) bool {
		if tp.Compare(want[n]) != 0 {
			t.Fatalf("Scan diverged at %d", n)
		}
		n++
		return true
	})
	if n != len(want) {
		t.Fatalf("Scan visited %d of %d", n, len(want))
	}
}

// TestFrozenNilSafety: absent tables read as empty via nil handles.
func TestFrozenNilSafety(t *testing.T) {
	var f *Frozen
	if f.Len() != 0 || f.Version() != 0 || f.Tuples() != nil {
		t.Fatal("nil Frozen must read as empty")
	}
	f.Scan(func(Tuple) bool { t.Fatal("nil Scan visited a tuple"); return false })
}

// TestFreezeDeltaAllocs bounds the per-freeze cost after a small delta
// on a large table: the next freeze copies only the touched chunk and
// the spine, not the relation.
func TestFreezeDeltaAllocs(t *testing.T) {
	tbl := newFrozenTestTable(t)
	for i := 0; i < 20000; i++ {
		tbl.Apply(routeTuple(i), 1)
	}
	tbl.Freeze()
	i := 20000
	allocs := testing.AllocsPerRun(200, func() {
		tbl.Apply(routeTuple(i), 1)
		i++
		tbl.Freeze()
	})
	// One tuple + one row + chunk COW + spine copy + frozen handle: far
	// below the ~20k-element copy the eager path would need, and flat in
	// table size.
	if allocs > 40 {
		t.Fatalf("per-delta freeze allocates %v allocs/op (want O(delta), not O(table))", allocs)
	}
}
