package rel

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func linkTuple(from, to string, cost int64) Tuple {
	return NewTuple("link", Addr(from), Addr(to), Int(cost))
}

func TestSchemaValidate(t *testing.T) {
	if err := NewSchema("r", 3, 0, 1).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Schema{
		{Name: "", Arity: 1},
		{Name: "r", Arity: -1},
		{Name: "r", Arity: 1, LocIndex: 2},
		{Name: "r", Arity: 2, KeyCols: []int{5}},
		{Name: "r", Arity: 2, KeyCols: []int{0, 0}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad schema %d validated", i)
		}
	}
}

func TestSchemaEffectiveKey(t *testing.T) {
	s := NewSchema("r", 3, 0, 1)
	if got := s.EffectiveKey(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("EffectiveKey = %v", got)
	}
	s2 := NewSchema("r", 3)
	if got := s2.EffectiveKey(); len(got) != 3 {
		t.Fatalf("default key must be all columns, got %v", got)
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	s := NewSchema("link", 3, 0, 1)
	if err := c.Define(s); err != nil {
		t.Fatal(err)
	}
	if err := c.Define(s); err != nil {
		t.Fatal("idempotent redefinition should succeed:", err)
	}
	if err := c.Define(NewSchema("link", 4)); err == nil {
		t.Fatal("conflicting redefinition must fail")
	}
	if _, ok := c.Lookup("link"); !ok {
		t.Fatal("lookup failed")
	}
	if _, ok := c.Lookup("nope"); ok {
		t.Fatal("phantom relation")
	}
	if err := c.Define(EventSchema("ev", 2)); err != nil {
		t.Fatal(err)
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "ev" || names[1] != "link" {
		t.Fatalf("Names = %v", names)
	}
	cl := c.Clone()
	if _, ok := cl.Lookup("link"); !ok {
		t.Fatal("clone lost relation")
	}
}

func TestCatalogCheckTuple(t *testing.T) {
	c := NewCatalog()
	if err := c.Define(NewSchema("link", 3, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckTuple(linkTuple("a", "b", 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckTuple(NewTuple("link", Addr("a"), Addr("b"))); err == nil {
		t.Fatal("arity mismatch must fail")
	}
	if err := c.CheckTuple(NewTuple("link", Str("a"), Addr("b"), Int(1))); err == nil {
		t.Fatal("non-addr location must fail")
	}
	if err := c.CheckTuple(NewTuple("ghost", Int(1))); err == nil {
		t.Fatal("undeclared relation must fail")
	}
	if err := c.CheckTuple(Tuple{Rel: "link", Vals: []Value{Addr("a"), {}, Int(1)}}); err == nil {
		t.Fatal("invalid value must fail")
	}
}

func TestTableApplyCounting(t *testing.T) {
	tb := NewTable(NewSchema("link", 3, 0, 1))
	tp := linkTuple("a", "b", 1)
	if tr := tb.Apply(tp, 1); tr != Appeared {
		t.Fatalf("first insert: %v", tr)
	}
	if tr := tb.Apply(tp, 1); tr != NoChange {
		t.Fatalf("second derivation: %v", tr)
	}
	if tb.Len() != 1 || tb.TotalCount() != 2 {
		t.Fatalf("len=%d count=%d", tb.Len(), tb.TotalCount())
	}
	if tr := tb.Apply(tp, -1); tr != NoChange {
		t.Fatalf("first delete: %v", tr)
	}
	if tr := tb.Apply(tp, -1); tr != Disappeared {
		t.Fatalf("final delete: %v", tr)
	}
	if tb.Len() != 0 {
		t.Fatalf("table should be empty, len=%d", tb.Len())
	}
	if tr := tb.Apply(tp, -1); tr != Rejected {
		t.Fatalf("deleting absent tuple: %v", tr)
	}
	if tr := tb.Apply(tp, 0); tr != NoChange {
		t.Fatalf("zero delta: %v", tr)
	}
}

func TestTableGetContains(t *testing.T) {
	tb := NewTable(NewSchema("link", 3, 0, 1))
	tp := linkTuple("a", "b", 1)
	tb.Apply(tp, 1)
	if !tb.Contains(tp) {
		t.Fatal("Contains failed")
	}
	r, ok := tb.Get(tp.VID())
	if !ok || !r.Tuple.Equal(tp) || r.Count != 1 {
		t.Fatalf("Get = %+v %v", r, ok)
	}
}

func TestTableIndexProbe(t *testing.T) {
	tb := NewTable(NewSchema("link", 3, 0, 1))
	if err := tb.EnsureIndex([]int{0}); err != nil {
		t.Fatal(err)
	}
	tb.Apply(linkTuple("a", "b", 1), 1)
	tb.Apply(linkTuple("a", "c", 2), 1)
	tb.Apply(linkTuple("b", "c", 3), 1)
	got := tb.Probe([]int{0}, []Value{Addr("a")})
	if len(got) != 2 {
		t.Fatalf("probe a: %d rows", len(got))
	}
	got = tb.Probe([]int{0}, []Value{Addr("z")})
	if len(got) != 0 {
		t.Fatalf("probe z: %d rows", len(got))
	}
	// Index maintained under delete.
	tb.Apply(linkTuple("a", "b", 1), -1)
	got = tb.Probe([]int{0}, []Value{Addr("a")})
	if len(got) != 1 {
		t.Fatalf("probe after delete: %d rows", len(got))
	}
}

func TestTableIndexBackfillAndErrors(t *testing.T) {
	tb := NewTable(NewSchema("link", 3, 0, 1))
	tb.Apply(linkTuple("a", "b", 1), 1)
	if err := tb.EnsureIndex([]int{1}); err != nil {
		t.Fatal(err)
	}
	got := tb.Probe([]int{1}, []Value{Addr("b")})
	if len(got) != 1 {
		t.Fatalf("backfilled probe: %d rows", len(got))
	}
	if err := tb.EnsureIndex([]int{1}); err != nil {
		t.Fatal("re-ensure must be a no-op:", err)
	}
	if err := tb.EnsureIndex([]int{9}); err == nil {
		t.Fatal("out-of-range index column must error")
	}
	// Probe without an index falls back to scan.
	got = tb.Probe([]int{2}, []Value{Int(1)})
	if len(got) != 1 {
		t.Fatalf("scan probe: %d rows", len(got))
	}
	if got := tb.Probe([]int{0, 1}, []Value{Addr("a")}); got != nil {
		t.Fatal("mismatched cols/key must return nil")
	}
}

func TestTableKeyConflicts(t *testing.T) {
	tb := NewTable(NewSchema("bestPath", 3, 0, 1)) // key (loc, dst)
	old := NewTuple("bestPath", Addr("a"), Addr("d"), Int(10))
	tb.Apply(old, 1)
	newer := NewTuple("bestPath", Addr("a"), Addr("d"), Int(5))
	conflicts := tb.KeyConflicts(newer)
	if len(conflicts) != 1 || !conflicts[0].Tuple.Equal(old) {
		t.Fatalf("KeyConflicts = %v", conflicts)
	}
	if got := tb.KeyConflicts(old); len(got) != 0 {
		t.Fatal("a tuple must not conflict with itself")
	}
}

func TestTableRowsDeterministic(t *testing.T) {
	tb := NewTable(NewSchema("link", 3, 0, 1))
	tb.Apply(linkTuple("b", "c", 3), 1)
	tb.Apply(linkTuple("a", "b", 1), 1)
	tb.Apply(linkTuple("a", "c", 2), 1)
	tuples := tb.Tuples()
	for i := 1; i < len(tuples); i++ {
		if tuples[i-1].Compare(tuples[i]) >= 0 {
			t.Fatal("Tuples() not sorted")
		}
	}
}

func TestTableScanEarlyStop(t *testing.T) {
	tb := NewTable(NewSchema("link", 3, 0, 1))
	tb.Apply(linkTuple("a", "b", 1), 1)
	tb.Apply(linkTuple("a", "c", 2), 1)
	n := 0
	tb.Scan(func(*Row) bool { n++; return false })
	if n != 1 {
		t.Fatalf("scan visited %d rows after early stop", n)
	}
}

// Property: a random interleaving of inserts and deletes keeps the table
// consistent with a reference multiset implementation.
func TestPropertyTableMatchesReferenceMultiset(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tb := NewTable(NewSchema("link", 3, 0, 1))
		_ = tb.EnsureIndex([]int{0})
		ref := map[ID]int{}
		tuples := map[ID]Tuple{}
		for i := 0; i < 200; i++ {
			tp := linkTuple("n"+string(rune('a'+r.Intn(4))), "n"+string(rune('a'+r.Intn(4))), int64(r.Intn(3)))
			vid := tp.VID()
			tuples[vid] = tp
			if r.Intn(3) == 0 {
				tr := tb.Apply(tp, -1)
				switch {
				case ref[vid] == 0 && tr != Rejected:
					return false
				case ref[vid] == 1 && tr != Disappeared:
					return false
				case ref[vid] > 1 && tr != NoChange:
					return false
				}
				if ref[vid] > 0 {
					ref[vid]--
				}
			} else {
				tr := tb.Apply(tp, 1)
				if (ref[vid] == 0) != (tr == Appeared) {
					return false
				}
				ref[vid]++
			}
		}
		visible := 0
		total := 0
		for vid, n := range ref {
			if n > 0 {
				visible++
				total += n
				row, ok := tb.Get(vid)
				if !ok || row.Count != n || !row.Tuple.Equal(tuples[vid]) {
					return false
				}
			} else if _, ok := tb.Get(vid); ok {
				return false
			}
		}
		return tb.Len() == visible && tb.TotalCount() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
