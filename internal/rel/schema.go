package rel

import (
	"fmt"
	"sort"
)

// Schema describes one relation: its arity, which column (if any) holds
// the location specifier, its primary key, and whether it is materialized
// (a table) or a transient event stream. This mirrors NDlog's
// materialize(name, lifetime, size, keys(...)) declarations.
type Schema struct {
	Name     string
	Arity    int
	LocIndex int   // column of the @location attribute; -1 if none
	KeyCols  []int // primary key columns; nil/empty means the whole tuple
	// Persistent relations are materialized; transient ones are events
	// consumed by rule evaluation and never stored.
	Persistent bool
	// LifetimeSecs is the soft-state lifetime of base tuples in
	// simulated seconds; 0 means infinity. Re-inserting a tuple
	// refreshes its lifetime (classic NDlog soft state).
	LifetimeSecs int64
}

// NewSchema builds a persistent schema with location column 0.
func NewSchema(name string, arity int, keyCols ...int) *Schema {
	return &Schema{Name: name, Arity: arity, LocIndex: 0, KeyCols: keyCols, Persistent: true}
}

// EventSchema builds a transient (event) schema with location column 0.
func EventSchema(name string, arity int) *Schema {
	return &Schema{Name: name, Arity: arity, LocIndex: 0, Persistent: false}
}

// Validate checks internal consistency.
func (s *Schema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("rel: schema with empty name")
	}
	if s.Arity < 0 {
		return fmt.Errorf("rel: schema %s: negative arity", s.Name)
	}
	if s.LocIndex >= s.Arity {
		return fmt.Errorf("rel: schema %s: loc index %d out of range (arity %d)", s.Name, s.LocIndex, s.Arity)
	}
	seen := map[int]bool{}
	for _, k := range s.KeyCols {
		if k < 0 || k >= s.Arity {
			return fmt.Errorf("rel: schema %s: key column %d out of range (arity %d)", s.Name, k, s.Arity)
		}
		if seen[k] {
			return fmt.Errorf("rel: schema %s: duplicate key column %d", s.Name, k)
		}
		seen[k] = true
	}
	return nil
}

// EffectiveKey returns the primary key columns, defaulting to all columns.
func (s *Schema) EffectiveKey() []int {
	if len(s.KeyCols) > 0 {
		return s.KeyCols
	}
	all := make([]int, s.Arity)
	for i := range all {
		all[i] = i
	}
	return all
}

// Catalog maps relation names to schemas.
type Catalog struct {
	m map[string]*Schema
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog { return &Catalog{m: map[string]*Schema{}} }

// Define registers a schema, rejecting conflicting redefinitions.
// Re-defining an identical schema is a no-op.
func (c *Catalog) Define(s *Schema) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if old, ok := c.m[s.Name]; ok {
		if old.Arity != s.Arity || old.LocIndex != s.LocIndex || old.Persistent != s.Persistent {
			return fmt.Errorf("rel: conflicting redefinition of relation %s", s.Name)
		}
		return nil
	}
	c.m[s.Name] = s
	return nil
}

// Lookup finds a schema by relation name.
func (c *Catalog) Lookup(name string) (*Schema, bool) {
	s, ok := c.m[name]
	return s, ok
}

// MustLookup finds a schema or panics; for internal relations that are
// always registered by construction.
func (c *Catalog) MustLookup(name string) *Schema {
	s, ok := c.m[name]
	if !ok {
		panic(fmt.Sprintf("rel: relation %s not in catalog", name))
	}
	return s
}

// Names returns all relation names in sorted order.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.m))
	for n := range c.m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the catalog (schemas are shared; they are
// immutable after Define).
func (c *Catalog) Clone() *Catalog {
	out := NewCatalog()
	for k, v := range c.m {
		out.m[k] = v
	}
	return out
}

// CheckTuple verifies that t conforms to its schema in the catalog.
func (c *Catalog) CheckTuple(t Tuple) error {
	s, ok := c.Lookup(t.Rel)
	if !ok {
		return fmt.Errorf("rel: tuple for undeclared relation %s", t.Rel)
	}
	if len(t.Vals) != s.Arity {
		return fmt.Errorf("rel: tuple %s has arity %d, schema wants %d", t.Rel, len(t.Vals), s.Arity)
	}
	for i, v := range t.Vals {
		if !v.IsValid() {
			return fmt.Errorf("rel: tuple %s column %d is invalid", t.Rel, i)
		}
	}
	if s.LocIndex >= 0 {
		if _, ok := t.Vals[s.LocIndex].AsAddr(); !ok {
			return fmt.Errorf("rel: tuple %s column %d must be an address, got %s", t.Rel, s.LocIndex, t.Vals[s.LocIndex].Kind())
		}
	}
	return nil
}
