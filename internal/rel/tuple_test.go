package rel

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTupleBasics(t *testing.T) {
	tp := NewTuple("link", Addr("n1"), Addr("n2"), Int(3))
	if tp.Arity() != 3 {
		t.Fatalf("arity = %d", tp.Arity())
	}
	if got := tp.String(); got != "link(@n1, n2, 3)" {
		t.Fatalf("String = %q", got)
	}
	if loc, ok := tp.LocCol0(); !ok || loc != "n1" {
		t.Fatalf("LocCol0 = %q %v", loc, ok)
	}
}

func TestNewTupleCopies(t *testing.T) {
	vals := []Value{Int(1)}
	tp := NewTuple("r", vals...)
	vals[0] = Int(9)
	if got, _ := tp.Vals[0].AsInt(); got != 1 {
		t.Fatal("NewTuple aliased input slice")
	}
}

func TestVIDStableAndDistinct(t *testing.T) {
	a := NewTuple("link", Addr("n1"), Addr("n2"), Int(3))
	b := NewTuple("link", Addr("n1"), Addr("n2"), Int(3))
	c := NewTuple("link", Addr("n1"), Addr("n2"), Int(4))
	d := NewTuple("path", Addr("n1"), Addr("n2"), Int(3))
	if a.VID() != b.VID() {
		t.Fatal("identical tuples must share VID")
	}
	if a.VID() == c.VID() || a.VID() == d.VID() {
		t.Fatal("distinct tuples must have distinct VIDs")
	}
}

func TestTupleCompare(t *testing.T) {
	a := NewTuple("a", Int(1))
	b := NewTuple("b", Int(1))
	if a.Compare(b) >= 0 || b.Compare(a) <= 0 {
		t.Fatal("relation name must dominate compare")
	}
	short := NewTuple("a", Int(1))
	long := NewTuple("a", Int(1), Int(2))
	if short.Compare(long) >= 0 {
		t.Fatal("shorter prefix tuple must compare less")
	}
	if !a.Equal(NewTuple("a", Int(1))) {
		t.Fatal("Equal failed on identical tuples")
	}
	if a.Equal(long) {
		t.Fatal("Equal must consider arity")
	}
}

func TestTupleLocWithSchema(t *testing.T) {
	s := NewSchema("route", 3, 0, 1)
	tp := NewTuple("route", Addr("n2"), Str("p"), Int(1))
	if loc, ok := tp.Loc(s); !ok || loc != "n2" {
		t.Fatalf("Loc = %q %v", loc, ok)
	}
	noLoc := &Schema{Name: "x", Arity: 1, LocIndex: -1}
	if _, ok := NewTuple("x", Int(1)).Loc(noLoc); ok {
		t.Fatal("LocIndex -1 must yield no location")
	}
}

func TestKeyHashAndKeyEqual(t *testing.T) {
	a := NewTuple("r", Addr("n1"), Str("k"), Int(1))
	b := NewTuple("r", Addr("n1"), Str("k"), Int(2))
	ha, err := a.KeyHash([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.KeyHash([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatal("tuples agreeing on key columns must hash equal")
	}
	if !KeyEqual(a, b, []int{0, 1}) {
		t.Fatal("KeyEqual on shared key failed")
	}
	if KeyEqual(a, b, []int{2}) {
		t.Fatal("KeyEqual must detect differing column")
	}
	if _, err := a.KeyHash([]int{5}); err == nil {
		t.Fatal("out-of-range key column must error")
	}
}

func TestPropertyTupleCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(6)
		vals := make([]Value, n)
		for i := range vals {
			vals[i] = randomValue(r, 2)
		}
		tp := Tuple{Rel: "rel" + randString(r), Vals: vals}
		got, err := UnmarshalTuple(MarshalTuple(tp))
		if err != nil {
			return false
		}
		return got.Equal(tp) && got.VID() == tp.VID()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalTupleErrors(t *testing.T) {
	if _, err := UnmarshalTuple(nil); err == nil {
		t.Fatal("empty input must error")
	}
	good := MarshalTuple(NewTuple("r", Int(1)))
	if _, err := UnmarshalTuple(append(good, 0x00)); err == nil {
		t.Fatal("trailing bytes must error")
	}
	if _, err := UnmarshalTuple(good[:len(good)-1]); err == nil {
		t.Fatal("truncated input must error")
	}
	// Huge declared length must not allocate/panic.
	if _, err := UnmarshalTuple([]byte{0xff, 0xff, 0xff, 0xff, 0x0f}); err == nil {
		t.Fatal("oversized length must error")
	}
}

func TestParseID(t *testing.T) {
	id := HashBytes([]byte("hello"))
	back, err := ParseID(id.String())
	if err != nil {
		t.Fatal(err)
	}
	if back != id {
		t.Fatal("ParseID round trip failed")
	}
	if _, err := ParseID("zz"); err == nil {
		t.Fatal("bad hex must error")
	}
	if _, err := ParseID("abcd"); err == nil {
		t.Fatal("short id must error")
	}
	if ZeroID.IsZero() != true || id.IsZero() {
		t.Fatal("IsZero misbehaves")
	}
	if len(id.Short()) != 8 {
		t.Fatalf("Short length = %d", len(id.Short()))
	}
}

func TestHashParts(t *testing.T) {
	a := HashParts([]byte("ab"), []byte("c"))
	b := HashParts([]byte("a"), []byte("bc"))
	if a == b {
		t.Fatal("HashParts must frame part boundaries")
	}
	if HashParts([]byte("x")) != HashParts([]byte("x")) {
		t.Fatal("HashParts must be deterministic")
	}
}
